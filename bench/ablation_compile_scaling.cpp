// Ablation: how the pipeline's stages scale with program size. The paper's
// Table 1 shows inference growing linearly with the number of loops while
// solving stays in the milliseconds; this sweep generates synthetic
// programs of k loops (mixing the access patterns of the benchmarks) and
// reports the per-stage times, with and without unification.

#include <iomanip>
#include <iostream>

#include "parallelize/parallelize.hpp"
#include "support/rng.hpp"

using namespace dpart;

namespace {

void buildWorld(region::World& w) {
  auto& a = w.addRegion("A", 256);
  auto& b = w.addRegion("B", 128);
  a.addField("a0", region::FieldType::F64);
  a.addField("a1", region::FieldType::F64);
  a.addField("ptr", region::FieldType::Idx);
  b.addField("b0", region::FieldType::F64);
  b.addField("b1", region::FieldType::F64);
  auto ptr = a.idx("ptr");
  Rng rng(7);
  for (region::Index i = 0; i < 256; ++i) {
    ptr[static_cast<std::size_t>(i)] = rng.range(0, 128);
  }
  w.defineFieldFn("A", "ptr", "B");
  w.defineAffineFn("gB", "A", "B",
                   [](region::Index i) { return (i * 3 + 5) % 128; });
}

ir::Program makeProgram(int loops) {
  ir::Program prog;
  prog.name = "synthetic";
  for (int l = 0; l < loops; ++l) {
    const std::string ln = "l" + std::to_string(l);
    switch (l % 3) {
      case 0: {  // centered map
        ir::LoopBuilder b(ln, "i", "A");
        b.loadF64("x", "A", "a0", "i");
        b.compute("y", {"x"}, [](auto v) { return v[0] + 1; });
        b.store("A", "a1", "i", "y");
        prog.loops.push_back(b.build());
        break;
      }
      case 1: {  // pointer-chasing reads
        ir::LoopBuilder b(ln, "i", "A");
        b.loadIdx("j", "A", "ptr", "i");
        b.loadF64("x", "B", "b0", "j");
        b.store("A", "a1", "i", "x");
        prog.loops.push_back(b.build());
        break;
      }
      default: {  // double uncentered reduction
        ir::LoopBuilder b(ln, "i", "A");
        b.loadF64("x", "A", "a0", "i");
        b.loadIdx("j1", "A", "ptr", "i");
        b.apply("j2", "gB", "i");
        b.reduce("B", "b1", "j1", "x");
        b.reduce("B", "b1", "j2", "x");
        prog.loops.push_back(b.build());
        break;
      }
    }
  }
  return prog;
}

}  // namespace

int main() {
  std::cout << "== Ablation: compile-time scaling with program size ==\n";
  std::cout << std::left << std::setw(8) << "loops" << std::setw(12)
            << "infer(ms)" << std::setw(14) << "solve(ms)" << std::setw(14)
            << "rewrite(ms)" << std::setw(18) << "solve,no-unify(ms)"
            << "partitions (unify/no)\n";
  for (int loops : {1, 2, 4, 8, 16, 32, 64}) {
    region::World world;
    buildWorld(world);
    ir::Program prog = makeProgram(loops);

    parallelize::AutoParallelizer ap(world);
    auto plan = ap.plan(prog);

    parallelize::Options off;
    off.enableUnification = false;
    parallelize::AutoParallelizer apOff(world, off);
    auto planOff = apOff.plan(prog);

    std::cout << std::setw(8) << loops << std::setw(12) << std::setprecision(4)
              << plan.stats.inferMs << std::setw(14) << plan.stats.solveMs
              << std::setw(14) << plan.stats.rewriteMs << std::setw(18)
              << planOff.stats.solveMs << plan.dpl.constructedPartitions()
              << " / " << planOff.dpl.constructedPartitions() << '\n';
  }
  std::cout << "\nInference is linear in program size (Algorithm 1).\n"
               "Unification (Algorithm 3) pays for itself twice over: it\n"
               "collapses isomorphic per-loop systems before resolution, so\n"
               "Algorithm 2 solves a small system instead of backtracking\n"
               "through a large flat one.\n";
  return 0;
}
