// Figure 14e: PENNANT weak scaling — Manual vs Auto+Hint2 vs Auto+Hint1 vs
// Auto. Auto keeps up only to ~4 nodes (shared-points-first layout under
// equal(rp)); Hint1 fixes placement but its deeply derived partitions incur
// runtime handling costs past ~32-64 nodes; Hint2 additionally reuses the
// generator's side/zone partitions and private-point partition and matches
// Manual.

#include "scaling_common.hpp"

#include <cstring>

#include "apps/pennant.hpp"

int main(int argc, char** argv) {
  using namespace dpart;
  if (argc == 3 && std::strcmp(argv[1], "--proof") == 0) {
    apps::PennantApp::Params p;
    p.zx = 8;
    p.zyPerPiece = 8;
    p.pieces = 4;
    apps::PennantApp app(p);
    return bench::emitProof(app.program(), app.world(), p.pieces, argv[2]);
  }
  sim::MachineConfig cfg;
  std::vector<std::unique_ptr<apps::PennantApp>> keep;

  auto makeParams = [](int nodes) {
    apps::PennantApp::Params p;
    p.zx = 48;
    p.zyPerPiece = 48;
    p.pieces = static_cast<std::size_t>(nodes);
    return p;
  };
  auto nodes = bench::nodeCounts();
  auto run = [&](const char* name, auto makeSetup) {
    return bench::runVariant(name, nodes, cfg, [&, makeSetup](int n) {
      keep.push_back(std::make_unique<apps::PennantApp>(makeParams(n)));
      apps::PennantApp& app = *keep.back();
      bench::VariantRun vr;
      vr.setup = makeSetup(app);
      vr.workPerNode = app.workPerPiece();  // zones per node
      vr.world = &app.world();
      return vr;
    });
  };
  auto manual =
      run("Manual", [](apps::PennantApp& a) { return a.manualSetup(); });
  auto hint2 =
      run("Auto+Hint2", [](apps::PennantApp& a) { return a.hint2Setup(); });
  auto hint1 =
      run("Auto+Hint1", [](apps::PennantApp& a) { return a.hint1Setup(); });
  auto autoS =
      run("Auto", [](apps::PennantApp& a) { return a.autoSetup(); });

  bench::printSeries("Figure 14e: PENNANT weak scaling", "zones/s",
                     {manual, hint2, hint1, autoS});
  return 0;
}
