// Figure 14b: Stencil weak scaling, Manual vs Auto. The paper reports 98%
// vs 93% parallel efficiency at 256 nodes with the auto version ~3% slower
// on average, caused by the manual halo consolidation (one transfer per
// direction instead of two).

#include "scaling_common.hpp"

#include <cstring>

#include "apps/stencil.hpp"

int main(int argc, char** argv) {
  using namespace dpart;
  if (argc == 3 && std::strcmp(argv[1], "--proof") == 0) {
    apps::StencilApp::Params p;
    p.rowsPerPiece = 32;
    p.cols = 32;
    p.pieces = 4;
    apps::StencilApp app(p);
    return bench::emitProof(app.program(), app.world(), p.pieces, argv[2]);
  }
  sim::MachineConfig cfg;
  std::vector<std::unique_ptr<apps::StencilApp>> keep;

  auto makeParams = [](int nodes) {
    apps::StencilApp::Params p;
    p.rowsPerPiece = 128;
    p.cols = 128;
    p.pieces = static_cast<std::size_t>(nodes);
    return p;
  };
  auto nodes = bench::nodeCounts();
  auto manual = bench::runVariant("Manual", nodes, cfg, [&](int n) {
    keep.push_back(std::make_unique<apps::StencilApp>(makeParams(n)));
    apps::StencilApp& app = *keep.back();
    bench::VariantRun run;
    run.setup = app.manualSetup();
    run.workPerNode = app.workPerPiece();  // grid points per node
    run.world = &app.world();
    return run;
  });
  auto autoSeries = bench::runVariant("Auto", nodes, cfg, [&](int n) {
    keep.push_back(std::make_unique<apps::StencilApp>(makeParams(n)));
    apps::StencilApp& app = *keep.back();
    bench::VariantRun run;
    run.setup = app.autoSetup();
    run.workPerNode = app.workPerPiece();
    run.world = &app.world();
    return run;
  });

  bench::printSeries("Figure 14b: Stencil weak scaling", "points/s",
                     {manual, autoSeries});
  const double gap = 1.0 - autoSeries.points.back().throughputPerNode /
                               manual.points.back().throughputPerNode;
  std::cout << "auto vs manual at " << nodes.back()
            << " nodes: " << gap * 100 << "% slower (paper: ~3%)\n";
  return 0;
}
