// Plan-service benchmark: cold vs warm plan latency through the full
// socket stack, and throughput/p50/p99 under a large concurrent client
// wave (the BENCH_service.json rows; docs/service.md).
//
// Three claims are enforced by exit code, not just reported:
//   1. a warm (plan-cache hit) request is >= 10x faster than the cold
//      solve of the same program, measured server-side;
//   2. every response of a cached plan is bitwise identical to the cold
//      plan's DPL program;
//   3. every client in the concurrent wave is served (no failures).
//
// Rows (JSON lines on stdout):
//   {"bench":"service","op":"plan_cold","loops":L,...,"mode":"serial",...}
//   {"bench":"service","op":"plan_warm","loops":L,...,"mode":"serial",...}
//   {"bench":"service","op":"plan_concurrent",...,"mode":"parallel",...}
//   {"bench":"service_summary",...}
//
// Only the "serial" rows feed the tools/bench_check regression gate; the
// parallel row carries the concurrency percentiles for the perf
// trajectory.
//
// Run: service_bench [--quick] [--clients N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ir/ir.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

using namespace dpart;
using namespace dpart::service;

constexpr int kLoops = 24;
constexpr std::uint64_t kPieces = 8;

/// A solver-heavy world: every loop chases its own pointer field through
/// its own field function, so no two loop systems are isomorphic and
/// unification cannot collapse them — the cold solve must resolve the full
/// constraint graph, which is exactly the work the plan cache saves.
void buildWorld(region::World& world, int loops) {
  auto& a = world.addRegion("A", 4096);
  auto& b = world.addRegion("B", 2048);
  a.addField("val", region::FieldType::F64);
  b.addField("acc", region::FieldType::F64);
  for (int l = 0; l < loops; ++l) {
    const std::string ptr = "ptr" + std::to_string(l);
    a.addField(ptr, region::FieldType::Idx);
    world.defineFieldFn("A", ptr, "B");
  }
}

ir::Program makeProgram(int loops) {
  ir::Program prog;
  prog.name = "service_bench";
  for (int l = 0; l < loops; ++l) {
    const std::string ptr = "ptr" + std::to_string(l);
    ir::LoopBuilder lb("loop" + std::to_string(l), "i", "A");
    lb.loadF64("x", "A", "val", "i");
    lb.loadIdx("j", "A", ptr, "i");
    lb.reduce("B", "acc", "j", "x");
    prog.loops.push_back(lb.build());
  }
  return prog;
}

PlanRequest makeRequest(const std::string& tenant, int loops) {
  region::World world;
  buildWorld(world, loops);
  PlanRequest req;
  req.tenant = tenant;
  req.pieces = kPieces;
  req.world = WorldShape::describe(world);
  req.program = makeProgram(loops);
  return req;
}

ServerOptions serverOptions() {
  ServerOptions opts;
  opts.tcpPort = 0;  // kernel-assigned loopback port
  opts.workers = 4;
  opts.queueCapacity = 4096;
  opts.recvTimeoutMicros = 120'000'000;
  return opts;
}

void emitSerial(const char* op, double ms, int reps) {
  std::printf(
      "{\"bench\":\"service\",\"op\":\"%s\",\"loops\":%d,\"pieces\":%d,"
      "\"threads\":1,\"mode\":\"serial\",\"ms\":%g,\"runs\":%d}\n",
      op, kLoops, int(kPieces), ms, reps);
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int clients = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      clients = 128;
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--clients N]\n", argv[0]);
      return 2;
    }
  }
  const int reps = quick ? 3 : 5;

  // ---- Cold: first-ever compile of the program, fresh server (and thus
  // fresh cache) per rep so every sample pays the full solve.
  double coldBest = 1e300;
  std::string coldDpl;
  for (int r = 0; r < reps; ++r) {
    PlanServer server(serverOptions());
    server.start();
    PlanClient client = PlanClient::connectTcp(server.port());
    const PlanResponse resp = client.parallelize(makeRequest("bench", kLoops));
    if (resp.cacheHit) {
      std::fprintf(stderr, "service_bench: FAIL: cold request hit the cache\n");
      return 1;
    }
    coldBest = std::min(coldBest, resp.serverMs);
    coldDpl = resp.dpl;
    if (r == 0) {
      std::fprintf(stderr,
                   "service_bench: cold phases infer=%.2f canon=%.2f "
                   "unify=%.2f solve=%.2f rewrite=%.2f server=%.2f\n",
                   resp.inferMs, resp.canonMs, resp.unifyMs, resp.solveMs,
                   resp.rewriteMs, resp.serverMs);
    }
    server.stop();
  }
  emitSerial("plan_cold", coldBest, reps);

  // ---- Warm: same program against a warmed cache, one shared server.
  PlanServer server(serverOptions());
  server.start();
  double warmBest = 1e300;
  {
    PlanClient client = PlanClient::connectTcp(server.port());
    (void)client.parallelize(makeRequest("bench", kLoops));  // warm the cache
    for (int r = 0; r < reps; ++r) {
      const PlanResponse resp =
          client.parallelize(makeRequest("bench", kLoops));
      if (!resp.cacheHit) {
        std::fprintf(stderr,
                     "service_bench: FAIL: warm request missed the cache\n");
        return 1;
      }
      if (resp.dpl != coldDpl) {
        std::fprintf(stderr,
                     "service_bench: FAIL: cached plan differs from the "
                     "cold plan\n");
        return 1;
      }
      warmBest = std::min(warmBest, resp.serverMs);
      if (r == 0) {
        std::fprintf(stderr,
                     "service_bench: warm phases infer=%.2f canon=%.2f "
                     "unify=%.2f solve=%.2f rewrite=%.2f server=%.2f\n",
                     resp.inferMs, resp.canonMs, resp.unifyMs, resp.solveMs,
                     resp.rewriteMs, resp.serverMs);
      }
    }
  }
  emitSerial("plan_warm", warmBest, reps);

  const double speedup = coldBest / std::max(1e-9, warmBest);
  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "service_bench: FAIL: warm plan only %.1fx faster than cold "
                 "(cold %.3fms, warm %.3fms; need >= 10x)\n",
                 speedup, coldBest, warmBest);
    return 1;
  }

  // ---- Concurrent wave: `clients` simultaneous connections against the
  // warmed server, measuring client-observed latency end to end.
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<double> latencies(static_cast<std::size_t>(clients), 0.0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto waveStart = std::chrono::steady_clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      try {
        const auto t0 = std::chrono::steady_clock::now();
        PlanClient c = PlanClient::connectTcp(server.port(), 120'000'000);
        const PlanResponse r = c.parallelize(
            makeRequest("tenant-" + std::to_string(i % 8), kLoops));
        const auto t1 = std::chrono::steady_clock::now();
        latencies[static_cast<std::size_t>(i)] =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r.dpl != coldDpl) mismatches.fetch_add(1);
      } catch (const Error& e) {
        std::fprintf(stderr, "service_bench: client %d failed: %s\n", i,
                     e.what());
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double waveMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - waveStart)
                            .count();
  server.stop();

  if (failures.load() != 0 || mismatches.load() != 0) {
    std::fprintf(stderr,
                 "service_bench: FAIL: %d failures, %d plan mismatches in "
                 "the concurrent wave\n",
                 failures.load(), mismatches.load());
    return 1;
  }

  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double plansPerSec =
      1000.0 * static_cast<double>(clients) / std::max(1e-9, waveMs);
  std::printf(
      "{\"bench\":\"service\",\"op\":\"plan_concurrent\",\"loops\":%d,"
      "\"pieces\":%d,\"clients\":%d,\"threads\":%d,\"mode\":\"parallel\","
      "\"ms\":%g,\"p50_ms\":%g,\"p99_ms\":%g,\"plans_per_sec\":%g}\n",
      kLoops, int(kPieces), clients, clients, p99, p50, p99, plansPerSec);
  std::printf(
      "{\"bench\":\"service_summary\",\"clients\":%d,\"cold_ms\":%g,"
      "\"warm_ms\":%g,\"warm_speedup\":%g,\"p50_ms\":%g,\"p99_ms\":%g,"
      "\"plans_per_sec\":%g}\n",
      clients, coldBest, warmBest, speedup, p50, p99, plansPerSec);
  return 0;
}
