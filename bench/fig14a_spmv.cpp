// Figure 14a: SpMV weak scaling (auto-parallelized only). The paper reports
// 99% parallel efficiency on 256 nodes with a balanced diagonal matrix of
// 0.4e9 non-zeros per node; we scale the per-node size down (see
// EXPERIMENTS.md) and reproduce the flat throughput-per-node curve.
//
// With `--trace <out.json>` the bench instead performs one real (non-
// simulated) small-scale Session run of the SpMV program with tracing on,
// an injected task crash (so the timeline shows a task replay) and
// end-of-launch checkpoints, and writes a Chrome trace_event JSON. Open it
// in chrome://tracing or https://ui.perfetto.dev; see EXPERIMENTS.md.
//
// With `--skewed` the bench runs the adaptive-repartitioning experiment on
// a power-law (skewed row length) matrix: real Session runs with and
// without `.adaptive()`, per-launch critical-path time and imbalance in
// JSON-lines form, a uniform control (must trigger zero rebalances), and a
// 256-node ClusterSim projection of the weighted partition's win. Exits
// non-zero unless the steady-state critical path improves >= 1.3x.

#include "scaling_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "apps/spmv.hpp"
#include "dpl/evaluator.hpp"
#include "region/dpl_ops.hpp"
#include "runtime/rebalance.hpp"
#include "runtime/session.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace {

int runTraced(const char* traceFile) {
  using namespace dpart;
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 2048;
  p.nnzPerRow = 5;
  p.pieces = 4;
  apps::SpmvApp app(p);

  // One deterministic crash at a pinned task site: the trace then contains
  // the failed task span, a task.replay instant and the retry span.
  FaultInjector injector(42);
  FaultSpec crash;
  crash.kind = FaultKind::Crash;
  crash.afterArrivals = 1;
  crash.maxFires = 1;
  injector.arm("task:spmv:2", crash);

  const std::filesystem::path ckptDir =
      std::filesystem::temp_directory_path() / "fig14a_trace_ckpt";
  std::filesystem::remove_all(ckptDir);

  runtime::ExecOptions opts;
  opts.resilience.taskReplay = true;
  opts.resilience.maxTaskRetries = 3;
  opts.resilience.faultInjector = &injector;
  opts.checkpoint.dir = ckptDir.string();
  opts.checkpoint.everyNLaunches = 1;
  opts.observability.traceFile = traceFile;

  Session session = Session::parallelize(app.program())
                        .pieces(p.pieces)
                        .options(opts)
                        .run(app.world());
  session.run();  // a second launch, for a multi-launch timeline
  runtime::PlanExecutor& exec = session.executor();

  std::cout << "trace written to " << traceFile
            << " (launches: " << exec.launchesDone()
            << ", replays: " << exec.taskReplays() << ", checkpoints: "
            << exec.checkpointManager()->generations() << ")\n";
  std::filesystem::remove_all(ckptDir);
  if (exec.taskReplays() < 1 || exec.checkpointManager()->generations() < 1) {
    std::cout << "FAIL: expected at least one replay and one checkpoint\n";
    return 1;
  }
  return 0;
}

// One measured Session launch: wall time plus the per-piece task seconds
// (gauge deltas), from which the critical path (max piece time — the
// distributed-launch time a real cluster would see) and the imbalance
// follow.
struct LaunchSample {
  double wallSeconds = 0;
  double criticalSeconds = 0;
  double imbalance = 0;
};

LaunchSample measureLaunch(dpart::Session& session, const std::string& loop,
                           std::size_t pieces) {
  using namespace dpart;
  MetricsRegistry& mx = session.metrics();
  std::vector<double> before(pieces);
  for (std::size_t j = 0; j < pieces; ++j) {
    before[j] = runtime::taskSecondsGauge(mx, loop, j).value();
  }
  Timer wall;
  session.run();
  LaunchSample s;
  s.wallSeconds = wall.seconds();
  double total = 0;
  for (std::size_t j = 0; j < pieces; ++j) {
    const double t = runtime::taskSecondsGauge(mx, loop, j).value() - before[j];
    total += t;
    s.criticalSeconds = std::max(s.criticalSeconds, t);
  }
  const double mean = total / static_cast<double>(pieces);
  s.imbalance = mean > 0 ? s.criticalSeconds / mean : 1.0;
  return s;
}

void printLaunchJson(const char* series, int launch, const LaunchSample& s,
                     std::size_t rebalances) {
  std::cout << "{\"bench\":\"spmv_skew\",\"series\":\"" << series
            << "\",\"launch\":" << launch << ",\"criticalPathMs\":"
            << s.criticalSeconds * 1e3 << ",\"wallMs\":" << s.wallSeconds * 1e3
            << ",\"imbalance\":" << s.imbalance
            << ",\"rebalances\":" << rebalances << "}\n";
}

int runSkewed() {
  using namespace dpart;
  constexpr int kLaunches = 10;
  constexpr int kSteady = 4;  // launches averaged for the steady-state figure
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 8192;
  p.nnzPerRow = 8;
  p.pieces = 8;
  p.skew = 1.0;  // heavy prefix: the first piece owns most non-zeros

  runtime::RebalancePolicy policy;
  policy.minTaskSeconds = 1e-4;  // ignore sub-0.1ms launches (noise)

  auto steadyState = [&](const char* series, double skew,
                         bool adaptive) -> std::pair<double, LaunchSample> {
    apps::SpmvApp::Params params = p;
    params.skew = skew;
    apps::SpmvApp app(params);
    runtime::ExecOptions opts;
    opts.verifyPartitions = true;
    SessionBuilder builder =
        Session::parallelize(app.program()).pieces(params.pieces).options(
            opts);
    if (adaptive) builder.adaptive(policy);
    Session session = builder.build(app.world());
    double steadySum = 0;
    LaunchSample first;
    for (int i = 0; i < kLaunches; ++i) {
      const LaunchSample s = measureLaunch(session, "spmv", params.pieces);
      if (i == 0) first = s;
      if (i >= kLaunches - kSteady) steadySum += s.criticalSeconds;
      printLaunchJson(series, i, s, session.rebalances());
    }
    if (adaptive && skew > 0 && session.rebalances() < 1) {
      std::cout << "FAIL: skewed adaptive run never rebalanced\n";
      std::exit(1);
    }
    if (adaptive && skew == 0 && session.rebalances() != 0) {
      std::cout << "FAIL: uniform workload triggered "
                << session.rebalances() << " rebalance(s)\n";
      std::exit(1);
    }
    return {steadySum / kSteady, first};
  };

  const auto [baselineSteady, baselineFirst] =
      steadyState("baseline", p.skew, /*adaptive=*/false);
  const auto [adaptiveSteady, adaptiveFirst] =
      steadyState("adaptive", p.skew, /*adaptive=*/true);
  const auto [uniformSteady, uniformFirst] =
      steadyState("uniform", /*skew=*/0, /*adaptive=*/true);

  const double speedup = baselineSteady / adaptiveSteady;
  std::cout << "{\"bench\":\"spmv_skew\",\"series\":\"summary\""
            << ",\"beforeImbalance\":" << adaptiveFirst.imbalance
            << ",\"baselineSteadyMs\":" << baselineSteady * 1e3
            << ",\"adaptiveSteadyMs\":" << adaptiveSteady * 1e3
            << ",\"speedup\":" << speedup
            << ",\"uniformSteadyMs\":" << uniformSteady * 1e3 << "}\n";

  // 256-node projection: simulate the skewed matrix on the cluster model,
  // feed the simulated per-task times through the same weight estimator the
  // runtime uses, and re-simulate on the weighted base partition
  // (re-evaluation of the same DPL program — Section 3.3, no re-solve).
  {
    const int nodes = 256;
    apps::SpmvApp::Params params = p;
    params.rowsPerPiece = 2048;
    params.pieces = static_cast<std::size_t>(nodes);
    apps::SpmvApp app(params);
    apps::SimSetup setup = app.autoSetup();
    sim::MachineConfig cfg;
    sim::ClusterSim cluster(app.world(), cfg);
    for (const auto& [r, o] : setup.owners) cluster.setOwner(r, o);
    const auto depths = sim::ClusterSim::depthsOf(setup.plan.dpl);
    const parallelize::PlannedLoop& loop = setup.plan.loops[0];

    const sim::LoopSimResult before =
        cluster.simulateLoop(loop, setup.partitions, depths);

    const std::string base = parallelize::equalBaseSymbol(setup.plan, loop);
    if (base.empty()) {
      std::cout << "FAIL: simulated plan has no equal base to rebalance\n";
      return 1;
    }
    const region::Partition& iter = setup.partitions.at(loop.iterPartition);
    const std::vector<double> weights = runtime::Rebalancer::estimateWeights(
        iter, before.taskSeconds, app.world().region("Y").size());
    dpl::Evaluator ev(app.world(), params.pieces);
    ev.bind(base, region::equalWeighted(app.world(), "Y", weights,
                                        params.pieces));
    auto rebalanced = ev.run(setup.plan.dpl.withoutDefinitions({base}));
    rebalanced.emplace("pX_owner", setup.partitions.at("pX_owner"));

    const sim::LoopSimResult after =
        cluster.simulateLoop(loop, rebalanced, depths);
    std::cout << "{\"bench\":\"spmv_skew\",\"series\":\"sim256\",\"nodes\":"
              << nodes << ",\"beforeImbalance\":" << before.imbalance()
              << ",\"afterImbalance\":" << after.imbalance()
              << ",\"beforeSeconds\":" << before.seconds
              << ",\"afterSeconds\":" << after.seconds
              << ",\"projectedSpeedup\":" << before.seconds / after.seconds
              << "}\n";
  }

  if (speedup < 1.3) {
    std::cout << "FAIL: steady-state critical-path speedup " << speedup
              << " < 1.3\n";
    return 1;
  }
  std::cout << "OK: adaptive repartitioning speedup " << speedup << "x\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpart;
  if (argc == 3 && std::strcmp(argv[1], "--trace") == 0) {
    return runTraced(argv[2]);
  }
  if (argc == 2 && std::strcmp(argv[1], "--skewed") == 0) {
    return runSkewed();
  }
  if (argc == 3 && std::strcmp(argv[1], "--proof") == 0) {
    apps::SpmvApp::Params p;
    p.rowsPerPiece = 256;
    p.nnzPerRow = 5;
    p.pieces = 4;
    apps::SpmvApp app(p);
    return bench::emitProof(app.program(), app.world(), p.pieces, argv[2]);
  }
  sim::MachineConfig cfg;

  struct Holder {
    std::unique_ptr<apps::SpmvApp> app;
  };
  std::vector<std::unique_ptr<apps::SpmvApp>> keep;

  auto makeSetup = [&](int nodes) {
    apps::SpmvApp::Params p;
    p.rowsPerPiece = 16384;
    p.nnzPerRow = 5;
    p.pieces = static_cast<std::size_t>(nodes);
    keep.push_back(std::make_unique<apps::SpmvApp>(p));
    apps::SpmvApp& app = *keep.back();
    bench::VariantRun run;
    run.setup = app.autoSetup();
    run.workPerNode = app.workPerPiece();  // non-zeros per node
    run.world = &app.world();
    return run;
  };

  auto series = bench::runVariant("Auto", bench::nodeCounts(), cfg, makeSetup);

  // Resilient variant: one node failure per day of node-time quantifies the
  // snapshot + expected-replay overhead of the fault-tolerant executor.
  sim::MachineConfig faulty = cfg;
  faulty.nodeMtbfSeconds = 86400;
  auto resilient =
      bench::runVariant("Auto (resilient)", bench::nodeCounts(), faulty,
                        makeSetup, bench::FailureMode::Replay);

  // Checkpointed variant: same failure rate, but recovery is durable
  // checkpoint/restart at the Young/Daly-optimal interval (survives
  // permanent node loss, unlike in-place replay).
  auto checkpointed =
      bench::runVariant("Auto (checkpointed)", bench::nodeCounts(), faulty,
                        makeSetup, bench::FailureMode::Checkpoint);

  bench::printSeries("Figure 14a: SpMV weak scaling", "nnz/s",
                     {series, resilient, checkpointed});
  const double eff = series.points.back().throughputPerNode /
                     series.points.front().throughputPerNode;
  std::cout << "parallel efficiency at " << series.points.back().nodes
            << " nodes: " << eff * 100 << "% (paper: 99%)\n";
  const double overhead = resilient.points.back().stepSeconds /
                              series.points.back().stepSeconds -
                          1.0;
  std::cout << "resilience overhead at " << resilient.points.back().nodes
            << " nodes (MTBF 1 day/node): " << overhead * 100 << "%\n";

  const int maxNodes = series.points.back().nodes;
  {
    bench::VariantRun run = makeSetup(maxNodes);
    sim::ClusterSim sim(*run.world, faulty);
    for (const auto& [r, o] : run.setup.owners) sim.setOwner(r, o);
    const sim::CheckpointCost cc =
        sim.checkpointCost(maxNodes, series.points.back().stepSeconds);
    const double ckptOverhead = checkpointed.points.back().stepSeconds /
                                    series.points.back().stepSeconds -
                                1.0;
    std::cout << "checkpoint overhead at " << maxNodes
              << " nodes (Young/Daly interval " << cc.intervalSeconds
              << " s, write " << cc.checkpointSeconds * 1e3 << " ms, "
              << cc.stateBytesPerNode / 1e6 << " MB/node): "
              << ckptOverhead * 100 << "%\n";
  }
  return 0;
}
