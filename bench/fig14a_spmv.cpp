// Figure 14a: SpMV weak scaling (auto-parallelized only). The paper reports
// 99% parallel efficiency on 256 nodes with a balanced diagonal matrix of
// 0.4e9 non-zeros per node; we scale the per-node size down (see
// EXPERIMENTS.md) and reproduce the flat throughput-per-node curve.
//
// With `--trace <out.json>` the bench instead performs one real (non-
// simulated) small-scale Session run of the SpMV program with tracing on,
// an injected task crash (so the timeline shows a task replay) and
// end-of-launch checkpoints, and writes a Chrome trace_event JSON. Open it
// in chrome://tracing or https://ui.perfetto.dev; see EXPERIMENTS.md.

#include "scaling_common.hpp"

#include <cstring>
#include <filesystem>

#include "apps/spmv.hpp"
#include "runtime/session.hpp"
#include "support/fault.hpp"

namespace {

int runTraced(const char* traceFile) {
  using namespace dpart;
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 2048;
  p.nnzPerRow = 5;
  p.pieces = 4;
  apps::SpmvApp app(p);

  // One deterministic crash at a pinned task site: the trace then contains
  // the failed task span, a task.replay instant and the retry span.
  FaultInjector injector(42);
  FaultSpec crash;
  crash.kind = FaultKind::Crash;
  crash.afterArrivals = 1;
  crash.maxFires = 1;
  injector.arm("task:spmv:2", crash);

  const std::filesystem::path ckptDir =
      std::filesystem::temp_directory_path() / "fig14a_trace_ckpt";
  std::filesystem::remove_all(ckptDir);

  runtime::ExecOptions opts;
  opts.resilience.taskReplay = true;
  opts.resilience.maxTaskRetries = 3;
  opts.resilience.faultInjector = &injector;
  opts.checkpoint.dir = ckptDir.string();
  opts.checkpoint.everyNLaunches = 1;
  opts.observability.traceFile = traceFile;

  Session session = Session::parallelize(app.program())
                        .pieces(p.pieces)
                        .options(opts)
                        .run(app.world());
  session.run();  // a second launch, for a multi-launch timeline
  runtime::PlanExecutor& exec = session.executor();

  std::cout << "trace written to " << traceFile
            << " (launches: " << exec.launchesDone()
            << ", replays: " << exec.taskReplays() << ", checkpoints: "
            << exec.checkpointManager()->generations() << ")\n";
  std::filesystem::remove_all(ckptDir);
  if (exec.taskReplays() < 1 || exec.checkpointManager()->generations() < 1) {
    std::cout << "FAIL: expected at least one replay and one checkpoint\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpart;
  if (argc == 3 && std::strcmp(argv[1], "--trace") == 0) {
    return runTraced(argv[2]);
  }
  sim::MachineConfig cfg;

  struct Holder {
    std::unique_ptr<apps::SpmvApp> app;
  };
  std::vector<std::unique_ptr<apps::SpmvApp>> keep;

  auto makeSetup = [&](int nodes) {
    apps::SpmvApp::Params p;
    p.rowsPerPiece = 16384;
    p.nnzPerRow = 5;
    p.pieces = static_cast<std::size_t>(nodes);
    keep.push_back(std::make_unique<apps::SpmvApp>(p));
    apps::SpmvApp& app = *keep.back();
    bench::VariantRun run;
    run.setup = app.autoSetup();
    run.workPerNode = app.workPerPiece();  // non-zeros per node
    run.world = &app.world();
    return run;
  };

  auto series = bench::runVariant("Auto", bench::nodeCounts(), cfg, makeSetup);

  // Resilient variant: one node failure per day of node-time quantifies the
  // snapshot + expected-replay overhead of the fault-tolerant executor.
  sim::MachineConfig faulty = cfg;
  faulty.nodeMtbfSeconds = 86400;
  auto resilient =
      bench::runVariant("Auto (resilient)", bench::nodeCounts(), faulty,
                        makeSetup, bench::FailureMode::Replay);

  // Checkpointed variant: same failure rate, but recovery is durable
  // checkpoint/restart at the Young/Daly-optimal interval (survives
  // permanent node loss, unlike in-place replay).
  auto checkpointed =
      bench::runVariant("Auto (checkpointed)", bench::nodeCounts(), faulty,
                        makeSetup, bench::FailureMode::Checkpoint);

  bench::printSeries("Figure 14a: SpMV weak scaling", "nnz/s",
                     {series, resilient, checkpointed});
  const double eff = series.points.back().throughputPerNode /
                     series.points.front().throughputPerNode;
  std::cout << "parallel efficiency at " << series.points.back().nodes
            << " nodes: " << eff * 100 << "% (paper: 99%)\n";
  const double overhead = resilient.points.back().stepSeconds /
                              series.points.back().stepSeconds -
                          1.0;
  std::cout << "resilience overhead at " << resilient.points.back().nodes
            << " nodes (MTBF 1 day/node): " << overhead * 100 << "%\n";

  const int maxNodes = series.points.back().nodes;
  {
    bench::VariantRun run = makeSetup(maxNodes);
    sim::ClusterSim sim(*run.world, faulty);
    for (const auto& [r, o] : run.setup.owners) sim.setOwner(r, o);
    const sim::CheckpointCost cc =
        sim.checkpointCost(maxNodes, series.points.back().stepSeconds);
    const double ckptOverhead = checkpointed.points.back().stepSeconds /
                                    series.points.back().stepSeconds -
                                1.0;
    std::cout << "checkpoint overhead at " << maxNodes
              << " nodes (Young/Daly interval " << cc.intervalSeconds
              << " s, write " << cc.checkpointSeconds * 1e3 << " ms, "
              << cc.stateBytesPerNode / 1e6 << " MB/node): "
              << ckptOverhead * 100 << "%\n";
  }
  return 0;
}
