// Table 1: compilation-time breakdown of the auto-parallelizer on the five
// benchmark programs — constraint inference, constraint solving (including
// unification), and the parallel-code rewrite — plus the number of
// auto-parallelized loops. The paper's "binary generation" row has no analog
// here (we emit execution plans, not CUDA binaries); the key claim this
// table reproduces is that inference + solving + rewriting stay small in
// absolute terms (milliseconds) and grow with program size.
//
// Paper reference (Piz Daint, Regent compiler):
//            SpMV   Stencil  Circuit  MiniAero  PENNANT
//   infer    1.7ms  5.0ms    28.4ms   58.5ms    110.7ms
//   solver   1.7ms  4.0ms    4.3ms    5.8ms     13.1ms
//   rewrite  49ms   0.3s     0.3s     1.6s      1.9s
//   loops    1      2        3        26        37

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "apps/circuit.hpp"
#include "apps/miniaero.hpp"
#include "apps/pennant.hpp"
#include "apps/spmv.hpp"
#include "apps/stencil.hpp"
#include "parallelize/parallelize.hpp"

namespace {

using dpart::parallelize::AutoParallelizer;
using dpart::parallelize::CompileStats;

struct Row {
  std::string name;
  CompileStats stats;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

template <typename MakeApp>
void benchCompile(benchmark::State& state, const std::string& name,
                  MakeApp make) {
  CompileStats last{};
  for (auto _ : state) {
    auto app = make();
    AutoParallelizer ap(app->world());
    auto plan = ap.plan(app->program());
    last = plan.stats;
    benchmark::DoNotOptimize(plan);
  }
  state.counters["infer_ms"] = last.inferMs;
  state.counters["unify_ms"] = last.unifyMs;
  state.counters["solve_ms"] = last.solveMs;
  state.counters["rewrite_ms"] = last.rewriteMs;
  state.counters["loops"] = last.parallelLoops;
  rows().push_back(Row{name, last});
}

void BM_Spmv(benchmark::State& state) {
  benchCompile(state, "SpMV", [] {
    dpart::apps::SpmvApp::Params p;
    p.rowsPerPiece = 1024;
    p.pieces = 4;
    return std::make_unique<dpart::apps::SpmvApp>(p);
  });
}

void BM_Stencil(benchmark::State& state) {
  benchCompile(state, "Stencil", [] {
    dpart::apps::StencilApp::Params p;
    p.rowsPerPiece = 64;
    p.cols = 64;
    p.pieces = 4;
    return std::make_unique<dpart::apps::StencilApp>(p);
  });
}

void BM_Circuit(benchmark::State& state) {
  benchCompile(state, "Circuit", [] {
    dpart::apps::CircuitApp::Params p;
    p.pieces = 4;
    return std::make_unique<dpart::apps::CircuitApp>(p);
  });
}

void BM_MiniAero(benchmark::State& state) {
  benchCompile(state, "MiniAero", [] {
    dpart::apps::MiniAeroApp::Params p;
    p.nx = 8;
    p.ny = 8;
    p.nzPerPiece = 8;
    p.pieces = 4;
    return std::make_unique<dpart::apps::MiniAeroApp>(p);
  });
}

void BM_Pennant(benchmark::State& state) {
  benchCompile(state, "PENNANT", [] {
    dpart::apps::PennantApp::Params p;
    p.pieces = 4;
    return std::make_unique<dpart::apps::PennantApp>(p);
  });
}

BENCHMARK(BM_Spmv)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Stencil)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Circuit)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MiniAero)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Pennant)->Unit(benchmark::kMillisecond);

void printTable() {
  std::cout << "\n== Table 1: compilation time breakdown (this repro) ==\n";
  std::cout << std::left << std::setw(12) << "app" << std::setw(14)
            << "inference" << std::setw(14) << "unify" << std::setw(14)
            << "solver" << std::setw(14) << "rewrite" << std::setw(8)
            << "loops" << '\n';
  // Keep only the last measurement per app (benchmark reruns accumulate).
  std::map<std::string, Row> dedup;
  for (const Row& r : rows()) dedup[r.name] = r;
  for (const char* name :
       {"SpMV", "Stencil", "Circuit", "MiniAero", "PENNANT"}) {
    auto it = dedup.find(name);
    if (it == dedup.end()) continue;
    const CompileStats& s = it->second.stats;
    std::cout << std::setw(12) << name << std::setw(14)
              << (std::to_string(s.inferMs) + "ms") << std::setw(14)
              << (std::to_string(s.unifyMs) + "ms") << std::setw(14)
              << (std::to_string(s.solveMs) + "ms") << std::setw(14)
              << (std::to_string(s.rewriteMs) + "ms") << std::setw(8)
              << s.parallelLoops << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable();
  return 0;
}
