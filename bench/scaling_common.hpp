#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "apps/app_common.hpp"
#include "sim/cluster.hpp"

namespace dpart::bench {

/// Node counts used by every weak-scaling figure (the paper's x-axis).
inline std::vector<int> nodeCounts(int maxNodes = 256) {
  std::vector<int> out;
  for (int n = 1; n <= maxNodes; n *= 2) out.push_back(n);
  return out;
}

/// Runs one variant across node counts. `makeSetup(nodes)` must build the
/// app at that scale (weak scaling: per-node size fixed) and return the
/// setup plus the app's work-per-node count; the returned series holds
/// work/s/node from the cluster simulator.
struct VariantRun {
  apps::SimSetup setup;
  double workPerNode = 0;
  const region::World* world = nullptr;
};

/// When `resilient` is true the series reports the failure-model step time
/// (task snapshot + expected replay under cfg.nodeMtbfSeconds) instead of
/// the fault-free time.
inline apps::ScalingSeries runVariant(
    const std::string& name, const std::vector<int>& nodes,
    const sim::MachineConfig& cfg,
    const std::function<VariantRun(int)>& makeSetup,
    bool resilient = false) {
  apps::ScalingSeries series;
  series.name = name;
  for (int n : nodes) {
    VariantRun run = makeSetup(n);
    sim::ClusterSim sim(*run.world, cfg);
    for (const auto& [r, o] : run.setup.owners) sim.setOwner(r, o);
    const sim::StepSimResult step =
        sim.simulateStepResilient(run.setup.plan, run.setup.partitions);
    const double sec = resilient ? step.resilientSeconds : step.seconds;
    series.points.push_back(apps::ScalingPoint{
        n, sec, run.workPerNode / sec});
  }
  return series;
}

inline void printSeries(const std::string& title, const std::string& unit,
                        const std::vector<apps::ScalingSeries>& series) {
  std::cout << apps::renderScaling(title, unit, series) << std::endl;
}

}  // namespace dpart::bench
