#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "apps/app_common.hpp"
#include "runtime/session.hpp"
#include "sim/cluster.hpp"

namespace dpart::bench {

/// `--proof <out.dprf>` handler shared by the Figure 14 benches: compile the
/// app's program once at a small scale with proof-certificate emission
/// (docs/solver.md) and exit. CI replays each certificate through
/// tools/proof_check and archives it as a build artifact.
inline int emitProof(const ir::Program& program, region::World& world,
                     std::size_t pieces, const char* file) {
  Plan plan = Session::parallelize(program)
                  .pieces(pieces)
                  .proof(file)
                  .compile(world);
  std::cout << "proof certificate written to " << file
            << " (events=" << plan.stats().proofEvents
            << ", bytes=" << plan.stats().proofBytes << ")\n";
  return plan.stats().proofEvents > 0 ? 0 : 1;
}

/// Node counts used by every weak-scaling figure (the paper's x-axis).
inline std::vector<int> nodeCounts(int maxNodes = 256) {
  std::vector<int> out;
  for (int n = 1; n <= maxNodes; n *= 2) out.push_back(n);
  return out;
}

/// Runs one variant across node counts. `makeSetup(nodes)` must build the
/// app at that scale (weak scaling: per-node size fixed) and return the
/// setup plus the app's work-per-node count; the returned series holds
/// work/s/node from the cluster simulator.
struct VariantRun {
  apps::SimSetup setup;
  double workPerNode = 0;
  const region::World* world = nullptr;
};

/// What a variant's step time includes on top of the fault-free model.
enum class FailureMode {
  None,        ///< fault-free step time
  Replay,      ///< task snapshot + expected in-place replay
  Checkpoint,  ///< Young/Daly-interval checkpointing + expected restarts
};

inline apps::ScalingSeries runVariant(
    const std::string& name, const std::vector<int>& nodes,
    const sim::MachineConfig& cfg,
    const std::function<VariantRun(int)>& makeSetup,
    FailureMode mode = FailureMode::None) {
  apps::ScalingSeries series;
  series.name = name;
  for (int n : nodes) {
    VariantRun run = makeSetup(n);
    sim::ClusterSim sim(*run.world, cfg);
    for (const auto& [r, o] : run.setup.owners) sim.setOwner(r, o);
    const sim::StepSimResult step =
        sim.simulateStepResilient(run.setup.plan, run.setup.partitions);
    double sec = step.seconds;
    if (mode == FailureMode::Replay) sec = step.resilientSeconds;
    if (mode == FailureMode::Checkpoint) {
      // Checkpoint/restart replaces in-place replay (a restore rolls the
      // whole machine back past any per-task recovery), so the waste
      // fraction applies to the plain step time.
      sec = sim.checkpointCost(n, step.seconds).checkpointedSeconds;
    }
    series.points.push_back(apps::ScalingPoint{
        n, sec, run.workPerNode / sec});
  }
  return series;
}

inline void printSeries(const std::string& title, const std::string& unit,
                        const std::vector<apps::ScalingSeries>& series) {
  std::cout << apps::renderScaling(title, unit, series) << std::endl;
}

}  // namespace dpart::bench
