// Ablation: what each design choice of the solver pipeline buys.
//
//  - Unification (Algorithm 3) vs none: number of partitions the DPL
//    program constructs (partition reuse is the paper's stated goal).
//  - Section 5.1 relaxation on/off: reduction-buffer elements in MiniAero.
//  - Section 5.2 private sub-partitions on/off: buffered elements in
//    Circuit.

#include <iomanip>
#include <iostream>

#include "apps/circuit.hpp"
#include "apps/miniaero.hpp"
#include "apps/pennant.hpp"
#include "parallelize/parallelize.hpp"
#include "runtime/executor.hpp"
#include "support/timer.hpp"

using namespace dpart;

namespace {

void unificationAblation() {
  std::cout << "== Ablation: unification (constructed partitions) ==\n";
  std::cout << std::left << std::setw(12) << "app" << std::setw(16)
            << "unified" << std::setw(16) << "no-unify" << '\n';
  auto report = [](const std::string& name, region::World& world,
                   const ir::Program& prog) {
    parallelize::Options on;
    parallelize::Options off;
    off.enableUnification = false;
    parallelize::AutoParallelizer apOn(world, on);
    parallelize::AutoParallelizer apOff(world, off);
    const auto planOn = apOn.plan(prog);
    const auto planOff = apOff.plan(prog);
    std::cout << std::setw(12) << name << std::setw(16)
              << planOn.dpl.constructedPartitions() << std::setw(16)
              << planOff.dpl.constructedPartitions() << '\n';
  };
  {
    apps::CircuitApp::Params p;
    p.pieces = 4;
    apps::CircuitApp app(p);
    report("Circuit", app.world(), app.program());
  }
  {
    apps::MiniAeroApp::Params p;
    p.nx = 8;
    p.ny = 8;
    p.nzPerPiece = 8;
    p.pieces = 4;
    apps::MiniAeroApp app(p);
    report("MiniAero", app.world(), app.program());
  }
  {
    apps::PennantApp::Params p;
    p.zx = 12;
    p.zyPerPiece = 12;
    p.pieces = 4;
    apps::PennantApp app(p);
    report("PENNANT", app.world(), app.program());
  }
  std::cout << '\n';
}

void relaxationAblation() {
  std::cout << "== Ablation: Sec 5.1 relaxation (MiniAero buffered elems, "
               "4 pieces, one step) ==\n";
  for (bool relax : {true, false}) {
    apps::MiniAeroApp::Params p;
    p.nx = 8;
    p.ny = 8;
    p.nzPerPiece = 8;
    p.pieces = 4;
    apps::MiniAeroApp app(p);
    parallelize::Options opts;
    opts.enableRelaxation = relax;
    parallelize::AutoParallelizer ap(app.world(), opts);
    auto plan = ap.plan(app.program());
    runtime::PlanExecutor exec(app.world(), plan, p.pieces);
    exec.run();
    std::cout << (relax ? "relaxation on:  " : "relaxation off: ")
              << exec.bufferedElements() << " buffered elements\n";
  }
  std::cout << '\n';
}

void privateSubPartitionAblation() {
  std::cout << "== Ablation: Sec 5.2 private sub-partitions (Circuit "
               "buffered elems, 4 pieces, one step) ==\n";
  for (bool priv : {true, false}) {
    apps::CircuitApp::Params p;
    p.pieces = 4;
    apps::CircuitApp app(p);
    parallelize::Options opts;
    opts.enablePrivateSubPartitions = priv;
    parallelize::AutoParallelizer ap(app.world(), opts);
    auto plan = ap.plan(app.program());
    runtime::PlanExecutor exec(app.world(), plan, p.pieces);
    exec.run();
    std::cout << (priv ? "private subparts on:  " : "private subparts off: ")
              << exec.bufferedElements() << " buffered elements\n";
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  unificationAblation();
  relaxationAblation();
  privateSubPartitionAblation();
  return 0;
}
