// Figure 14d: Circuit weak scaling — Manual vs Auto+Hint vs Auto. Without
// the user constraint, equal(rn) puts every shared node in one subregion
// and the auto version collapses past 8 nodes. With the constraint the
// auto-parallelized code stays within 5% of Manual and beats it up to ~64
// nodes thanks to tight private sub-partitions (Manual buffers the whole
// reachable shared block).

#include "scaling_common.hpp"

#include <cstring>

#include "apps/circuit.hpp"

int main(int argc, char** argv) {
  using namespace dpart;
  if (argc == 3 && std::strcmp(argv[1], "--proof") == 0) {
    apps::CircuitApp::Params p;
    p.pieces = 4;
    p.nodesPerCluster = 64;
    p.wiresPerCluster = 256;
    apps::CircuitApp app(p);
    return bench::emitProof(app.program(), app.world(), p.pieces, argv[2]);
  }
  sim::MachineConfig cfg;
  std::vector<std::unique_ptr<apps::CircuitApp>> keep;

  auto makeParams = [](int nodes) {
    apps::CircuitApp::Params p;
    p.pieces = static_cast<std::size_t>(nodes);
    p.nodesPerCluster = 2048;
    p.wiresPerCluster = 8192;
    return p;
  };
  auto nodes = bench::nodeCounts();
  auto run = [&](const char* name, auto makeSetup) {
    return bench::runVariant(name, nodes, cfg, [&, makeSetup](int n) {
      keep.push_back(std::make_unique<apps::CircuitApp>(makeParams(n)));
      apps::CircuitApp& app = *keep.back();
      bench::VariantRun vr;
      vr.setup = makeSetup(app);
      vr.workPerNode = app.workPerPiece();  // wires per node
      vr.world = &app.world();
      return vr;
    });
  };
  auto manual =
      run("Manual", [](apps::CircuitApp& a) { return a.manualSetup(); });
  auto hint =
      run("Auto+Hint", [](apps::CircuitApp& a) { return a.hintSetup(); });
  auto autoS = run("Auto", [](apps::CircuitApp& a) { return a.autoSetup(); });

  bench::printSeries("Figure 14d: Circuit weak scaling", "wires/s",
                     {manual, hint, autoS});
  std::cout << "Auto collapse factor at " << nodes.back() << " nodes: "
            << autoS.points.front().throughputPerNode /
                   autoS.points.back().throughputPerNode
            << "x below its 1-node throughput\n";
  return 0;
}
