// Figure 14c: MiniAero weak scaling, Manual vs Auto. Both achieve ~98%
// parallel efficiency in the paper; the auto version is ~2% slower because
// its face subregions are non-contiguously indexed (the sequential mesh),
// while the hand-optimized mesh generator duplicates slab-boundary faces to
// keep each piece's faces contiguous.

#include "scaling_common.hpp"

#include <cstring>

#include "apps/miniaero.hpp"

int main(int argc, char** argv) {
  using namespace dpart;
  if (argc == 3 && std::strcmp(argv[1], "--proof") == 0) {
    apps::MiniAeroApp::Params p;
    p.nx = 6;
    p.ny = 6;
    p.nzPerPiece = 6;
    p.pieces = 4;
    apps::MiniAeroApp app(p);
    return bench::emitProof(app.program(), app.world(), p.pieces, argv[2]);
  }
  sim::MachineConfig cfg;
  std::vector<std::unique_ptr<apps::MiniAeroApp>> keep;

  auto makeParams = [](int nodes) {
    apps::MiniAeroApp::Params p;
    p.nx = 24;
    p.ny = 24;
    p.nzPerPiece = 24;
    p.pieces = static_cast<std::size_t>(nodes);
    return p;
  };
  auto nodes = bench::nodeCounts();
  auto manual = bench::runVariant("Manual", nodes, cfg, [&](int n) {
    keep.push_back(std::make_unique<apps::MiniAeroApp>(
        makeParams(n), /*duplicatedFaces=*/true));
    apps::MiniAeroApp& app = *keep.back();
    bench::VariantRun run;
    run.setup = app.manualSetup();
    run.workPerNode = app.workPerPiece();  // cells per node
    run.world = &app.world();
    return run;
  });
  auto autoSeries = bench::runVariant("Auto", nodes, cfg, [&](int n) {
    keep.push_back(std::make_unique<apps::MiniAeroApp>(makeParams(n)));
    apps::MiniAeroApp& app = *keep.back();
    bench::VariantRun run;
    run.setup = app.autoSetup();
    run.workPerNode = app.workPerPiece();
    run.world = &app.world();
    return run;
  });

  bench::printSeries("Figure 14c: MiniAero weak scaling", "cells/s",
                     {manual, autoSeries});
  const double gap = 1.0 - autoSeries.points.back().throughputPerNode /
                               manual.points.back().throughputPerNode;
  std::cout << "auto vs manual at " << nodes.back()
            << " nodes: " << gap * 100 << "% slower (paper: ~2%)\n";
  return 0;
}
