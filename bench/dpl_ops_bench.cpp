// Microbenchmark for the DPL operator kernels: times each operator at
// several region sizes and piece counts, serial vs pooled, and emits one
// machine-readable JSON line per measurement (the seed for the BENCH_*.json
// perf trajectory). Also times raw IndexSet set algebra across density
// variants (interval-shaped, blocky, sparse, dense-random, alternating
// singletons) — the rows the hybrid-representation speedup target and the
// tools/bench_check CI regression gate are judged on — and demonstrates the
// evaluator's expression memo cache on a program with shared subexpressions.
//
// Run: dpl_ops_bench [--quick]

#include <algorithm>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dpl/evaluator.hpp"
#include "region/dpl_ops.hpp"
#include "support/perf_counters.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace {

using dpart::Rng;
using dpart::ThreadPool;
using dpart::Timer;
using dpart::region::FieldType;
using dpart::region::Index;
using dpart::region::IndexSet;
using dpart::region::Partition;
using dpart::region::Region;
using dpart::region::Run;
using dpart::region::World;

struct Workload {
  std::unique_ptr<World> world;
  Partition src;  // equal partition of Src, the operand of image/set-ops
  Partition dst;  // equal partition of Dst, the operand of preimage
};

// Src -> Dst via a clustered pointer field (CSR-flavoured locality with a
// sprinkle of remote references, like the circuit generator) plus a
// range-valued field for the generalized IMAGE/PREIMAGE path.
Workload makeWorkload(Index n, std::size_t pieces) {
  Workload w;
  w.world = std::make_unique<World>();
  Region& src = w.world->addRegion("Src", n);
  w.world->addRegion("Dst", n);
  src.addField("to", FieldType::Idx);
  src.addField("span", FieldType::Range);
  auto to = src.idx("to");
  auto span = src.range("span");
  Rng rng(0x5eed);
  for (Index i = 0; i < n; ++i) {
    const bool remote = rng.chance(0.05);
    to[static_cast<std::size_t>(i)] =
        remote ? rng.range(0, n) : std::min<Index>(n - 1, i + rng.range(0, 16));
    const Index lo = std::min<Index>(n - 1, i);
    span[static_cast<std::size_t>(i)] = Run{lo, std::min<Index>(n, lo + 4)};
  }
  w.world->defineFieldFn("Src", "to", "Dst");
  w.world->defineRangeFn("Src", "span", "Dst");
  w.src = dpart::region::equalPartition(*w.world, "Src", pieces);
  w.dst = dpart::region::equalPartition(*w.world, "Dst", pieces);
  return w;
}

double bestOfMs(int reps, const std::function<Partition()>& op,
                std::uint64_t* runsOut) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    Partition p = op();
    best = std::min(best, t.millis());
    std::uint64_t runs = 0;
    for (std::size_t j = 0; j < p.count(); ++j) runs += p.sub(j).runCount();
    *runsOut = runs;
  }
  return best;
}

void emit(const std::string& op, Index n, std::size_t pieces,
          std::size_t threads, const char* mode, double ms,
          std::uint64_t runs) {
  std::cout << "{\"bench\":\"dpl_ops\",\"op\":\"" << op << "\",\"n\":" << n
            << ",\"pieces\":" << pieces << ",\"threads\":" << threads
            << ",\"mode\":\"" << mode << "\",\"ms\":" << ms
            << ",\"runs\":" << runs << "}\n";
}

struct Speedup {
  std::string op;
  double serialMs = 0;
  double parallelMs = 0;
};

void benchSize(Index n, std::size_t pieces, ThreadPool& pool, int reps,
               std::vector<Speedup>& table) {
  Workload w = makeWorkload(n, pieces);
  const World& world = *w.world;
  const std::size_t threads = pool.threadCount();

  struct OpCase {
    std::string name;
    std::function<Partition(ThreadPool*)> run;
  };
  const Partition shifted = dpart::region::imagePartition(
      world, w.src, "Src[.].to", "Dst");  // a second, fragmented operand
  std::vector<OpCase> cases;
  cases.push_back({"image", [&](ThreadPool* p) {
                     return dpart::region::imagePartition(world, w.src,
                                                          "Src[.].to", "Dst", p);
                   }});
  cases.push_back({"IMAGE", [&](ThreadPool* p) {
                     return dpart::region::imagePartition(
                         world, w.src, "Src[.].span", "Dst", p);
                   }});
  cases.push_back({"preimage", [&](ThreadPool* p) {
                     return dpart::region::preimagePartition(
                         world, "Src", "Src[.].to", w.dst, p);
                   }});
  cases.push_back({"PREIMAGE", [&](ThreadPool* p) {
                     return dpart::region::preimagePartition(
                         world, "Src", "Src[.].span", w.dst, p);
                   }});
  cases.push_back({"union", [&](ThreadPool* p) {
                     return dpart::region::unionPartitions(w.dst, shifted, p);
                   }});
  cases.push_back({"intersect", [&](ThreadPool* p) {
                     return dpart::region::intersectPartitions(w.dst, shifted,
                                                               p);
                   }});
  cases.push_back({"subtract", [&](ThreadPool* p) {
                     return dpart::region::subtractPartitions(w.dst, shifted,
                                                              p);
                   }});

  for (const OpCase& c : cases) {
    std::uint64_t runsSerial = 0;
    std::uint64_t runsParallel = 0;
    const double serialMs =
        bestOfMs(reps, [&] { return c.run(nullptr); }, &runsSerial);
    const double parallelMs =
        bestOfMs(reps, [&] { return c.run(&pool); }, &runsParallel);
    if (runsSerial != runsParallel) {
      std::cerr << "MISMATCH: " << c.name << " serial/parallel runs differ\n";
      std::exit(1);
    }
    emit(c.name, n, pieces, 1, "serial", serialMs, runsSerial);
    emit(c.name, n, pieces, threads, "parallel", parallelMs, runsParallel);
    table.push_back({c.name, serialMs, parallelMs});
  }
}

// ---- Raw IndexSet set algebra across density variants ----
//
// The DPL kernels above measure whole-partition materialization; these rows
// isolate the per-IndexSet set-op cost at the representation level. The
// "dense" and "alt" variants are the regimes where a flat run vector
// degenerates to one run per element or two.

struct SetPair {
  IndexSet a;
  IndexSet b;
};

SetPair makeSetPair(const std::string& variant, Index n) {
  Rng rng(0xa15e ^ static_cast<std::uint64_t>(n));
  if (variant == "interval") {
    // One run each, large overlap: the shape equal/affine partitions take.
    return {IndexSet::interval(0, n - n / 4), IndexSet::interval(n / 4, n)};
  }
  if (variant == "blocks") {
    // Mesh-ish: medium runs with partial overlap between the operands.
    dpart::region::IndexSetBuilder ba;
    dpart::region::IndexSetBuilder bb;
    for (Index lo = 0; lo < n; lo += 256) {
      ba.addRun(lo, std::min<Index>(n, lo + 192));
      bb.addRun(std::min<Index>(n, lo + 96), std::min<Index>(n, lo + 288));
    }
    return {ba.build(), bb.build()};
  }
  if (variant == "sparse") {
    // ~1.5% density scattered singletons (GRAPHOPT-style remote references).
    dpart::region::IndexSetBuilder ba;
    dpart::region::IndexSetBuilder bb;
    for (Index i = 0; i < n; ++i) {
      if (rng.chance(1.0 / 64)) ba.add(i);
      if (rng.chance(1.0 / 64)) bb.add(i);
    }
    return {ba.build(), bb.build()};
  }
  if (variant == "dense") {
    // ~50% density random membership: worst case for run-length encoding.
    dpart::region::IndexSetBuilder ba;
    dpart::region::IndexSetBuilder bb;
    for (Index i = 0; i < n; ++i) {
      if (rng.chance(0.5)) ba.add(i);
      if (rng.chance(0.5)) bb.add(i);
    }
    return {ba.build(), bb.build()};
  }
  if (variant == "alt") {
    // Adversarial alternating singletons: n/2 runs per operand.
    dpart::region::IndexSetBuilder ba;
    dpart::region::IndexSetBuilder bb;
    for (Index i = 0; i < n; i += 2) {
      ba.add(i);
      bb.add(i + 1);
    }
    return {ba.build(), bb.build()};
  }
  std::cerr << "unknown set variant " << variant << '\n';
  std::exit(1);
}

void emitSetRow(const std::string& op, const std::string& variant, Index n,
                double ms, Index card, std::uint64_t runs) {
  std::cout << "{\"bench\":\"set_algebra\",\"op\":\"" << op << "\",\"variant\":\""
            << variant << "\",\"n\":" << n << ",\"ms\":" << ms
            << ",\"card\":" << card << ",\"runs\":" << runs << "}\n";
}

void benchSetAlgebra(Index n, int reps) {
  const std::vector<std::string> variants = {"interval", "blocks", "sparse",
                                             "dense", "alt"};
  for (const std::string& variant : variants) {
    const SetPair p = makeSetPair(variant, n);
    const IndexSet sup = p.a.unionWith(p.b);          // superset of both
    const IndexSet disjoint = p.b.subtract(p.a);      // shares nothing with a

    struct SetCase {
      std::string op;
      std::function<std::pair<Index, std::uint64_t>()> run;  // {card, runs}
    };
    std::vector<SetCase> cases;
    cases.push_back({"union", [&] {
                       const IndexSet r = p.a.unionWith(p.b);
                       return std::make_pair(r.size(),
                                             std::uint64_t(r.runCount()));
                     }});
    cases.push_back({"intersect", [&] {
                       const IndexSet r = p.a.intersectWith(p.b);
                       return std::make_pair(r.size(),
                                             std::uint64_t(r.runCount()));
                     }});
    cases.push_back({"subtract", [&] {
                       const IndexSet r = p.a.subtract(p.b);
                       return std::make_pair(r.size(),
                                             std::uint64_t(r.runCount()));
                     }});
    // True containment: the scan cannot bail early, so this is the full
    // per-element (seed) vs word-at-a-time (hybrid) comparison.
    cases.push_back({"containsAll", [&] {
                       const bool ok = sup.containsAll(p.a);
                       return std::make_pair(Index(ok ? 1 : 0),
                                             std::uint64_t(0));
                     }});
    // Provably-disjoint probe: intersects() must scan everything to say no.
    cases.push_back({"intersects", [&] {
                       const bool hit = p.a.intersects(disjoint);
                       return std::make_pair(Index(hit ? 1 : 0),
                                             std::uint64_t(0));
                     }});

    for (const SetCase& c : cases) {
      double best = 1e300;
      Index card = 0;
      std::uint64_t runs = 0;
      for (int r = 0; r < reps; ++r) {
        Timer t;
        const auto [cardNow, runsNow] = c.run();
        best = std::min(best, t.millis());
        card = cardNow;
        runs = runsNow;
      }
      emitSetRow(c.op, variant, n, best, card, runs);
    }
  }
}

// A program whose RHSs share subtrees the way unified constraint graphs do;
// evaluating it twice shows the memo cache short-circuiting the second pass.
void benchMemoization(Index n, std::size_t pieces, std::size_t threads) {
  Workload w = makeWorkload(n, pieces);
  dpart::dpl::Program prog;
  using namespace dpart::dpl;
  prog.append("PD", equalOf("Dst"));
  prog.append("P1", preimage("Src", "Src[.].to", symbol("PD")));
  prog.append("P2", unionOf(preimage("Src", "Src[.].to", symbol("PD")),
                            preimage("Src", "Src[.].span", symbol("PD"))));
  prog.append("P3", intersectOf(image(symbol("P2"), "Src[.].to", "Dst"),
                                image(symbol("P2"), "Src[.].to", "Dst")));

  Evaluator cold(*w.world, pieces);
  cold.setMemoize(false);
  Timer tCold;
  cold.run(prog);
  const double coldMs = tCold.millis();

  Evaluator warm(*w.world, pieces, threads);
  Timer tWarm;
  warm.run(prog);
  const double warmMs = tWarm.millis();

  bool identical = true;
  for (const auto& [name, part] : cold.env()) {
    identical = identical && part == warm.partition(name);
  }

  // The counters JSON has a fixed schema: every declared operator plus the
  // cache and injected-stall tallies must appear even at zero, so the perf
  // trajectory scrapers never see a moving column set.
  const std::string countersJson = warm.counters().toJson();
  auto require = [&](const std::string& key) {
    if (countersJson.find('"' + key + '"') == std::string::npos) {
      std::cerr << "SCHEMA: counters JSON is missing \"" << key
                << "\": " << countersJson << '\n';
      std::exit(1);
    }
  };
  for (std::size_t i = 0; i < dpart::PerfCounters::kNumOps; ++i) {
    require(dpart::PerfCounters::opName(i));
  }
  require("cache_hits");
  require("cache_misses");
  require("injected_stall_us");

  std::cout << "{\"bench\":\"dpl_memo\",\"n\":" << n
            << ",\"pieces\":" << pieces << ",\"threads\":" << threads
            << ",\"serial_nomemo_ms\":" << coldMs
            << ",\"parallel_memo_ms\":" << warmMs
            << ",\"cache_hits\":" << warm.counters().cacheHits
            << ",\"cache_misses\":" << warm.counters().cacheMisses
            << ",\"injected_stall_us\":" << warm.counters().injectedStallMicros
            << ",\"identical\":" << (identical ? "true" : "false")
            << ",\"counters\":" << countersJson << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick =
      argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  ThreadPool pool(0);  // hardware concurrency
  const int reps = quick ? 2 : 3;

  std::vector<Speedup> table;
  struct Config {
    Index n;
    std::size_t pieces;
  };
  // --quick runs a subset of the full configuration grid (same keys), so a
  // quick run's rows can be compared against a committed full-run baseline.
  std::vector<Config> configs = quick
      ? std::vector<Config>{{1 << 16, 16}}
      : std::vector<Config>{{1 << 16, 16}, {1 << 18, 16}, {1 << 20, 16},
                            {1 << 20, 64}};
  for (const Config& cfg : configs) {
    benchSize(cfg.n, cfg.pieces, pool, reps, table);
  }
  benchSetAlgebra(1 << 18, reps);
  if (!quick) benchSetAlgebra(1 << 20, reps);
  benchMemoization(quick ? 1 << 16 : 1 << 20, 16, pool.threadCount());

  double serialTotal = 0;
  double parallelTotal = 0;
  for (const Speedup& s : table) {
    serialTotal += s.serialMs;
    parallelTotal += s.parallelMs;
  }
  std::cout << "{\"bench\":\"dpl_ops_summary\",\"threads\":"
            << pool.threadCount() << ",\"serial_total_ms\":" << serialTotal
            << ",\"parallel_total_ms\":" << parallelTotal
            << ",\"speedup\":" << (serialTotal / std::max(1e-9, parallelTotal))
            << "}\n";
  return 0;
}
