# Empty compiler generated dependencies file for dpl_parser_test.
# This may be replaced when dependencies are built.
