file(REMOVE_RECURSE
  "CMakeFiles/dpl_parser_test.dir/dpl_parser_test.cpp.o"
  "CMakeFiles/dpl_parser_test.dir/dpl_parser_test.cpp.o.d"
  "dpl_parser_test"
  "dpl_parser_test.pdb"
  "dpl_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
