file(REMOVE_RECURSE
  "CMakeFiles/parallelizable_test.dir/parallelizable_test.cpp.o"
  "CMakeFiles/parallelizable_test.dir/parallelizable_test.cpp.o.d"
  "parallelizable_test"
  "parallelizable_test.pdb"
  "parallelizable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelizable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
