# Empty compiler generated dependencies file for parallelizable_test.
# This may be replaced when dependencies are built.
