file(REMOVE_RECURSE
  "CMakeFiles/index_set_test.dir/index_set_test.cpp.o"
  "CMakeFiles/index_set_test.dir/index_set_test.cpp.o.d"
  "index_set_test"
  "index_set_test.pdb"
  "index_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
