# Empty dependencies file for index_set_test.
# This may be replaced when dependencies are built.
