# Empty compiler generated dependencies file for parallelize_test.
# This may be replaced when dependencies are built.
