file(REMOVE_RECURSE
  "CMakeFiles/parallelize_test.dir/parallelize_test.cpp.o"
  "CMakeFiles/parallelize_test.dir/parallelize_test.cpp.o.d"
  "parallelize_test"
  "parallelize_test.pdb"
  "parallelize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
