file(REMOVE_RECURSE
  "CMakeFiles/dpl_evaluator_test.dir/dpl_evaluator_test.cpp.o"
  "CMakeFiles/dpl_evaluator_test.dir/dpl_evaluator_test.cpp.o.d"
  "dpl_evaluator_test"
  "dpl_evaluator_test.pdb"
  "dpl_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpl_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
