# Empty compiler generated dependencies file for dpl_evaluator_test.
# This may be replaced when dependencies are built.
