# Empty compiler generated dependencies file for reduction_opt_test.
# This may be replaced when dependencies are built.
