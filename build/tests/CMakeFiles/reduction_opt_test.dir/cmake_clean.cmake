file(REMOVE_RECURSE
  "CMakeFiles/reduction_opt_test.dir/reduction_opt_test.cpp.o"
  "CMakeFiles/reduction_opt_test.dir/reduction_opt_test.cpp.o.d"
  "reduction_opt_test"
  "reduction_opt_test.pdb"
  "reduction_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
