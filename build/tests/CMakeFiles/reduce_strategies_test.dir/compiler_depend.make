# Empty compiler generated dependencies file for reduce_strategies_test.
# This may be replaced when dependencies are built.
