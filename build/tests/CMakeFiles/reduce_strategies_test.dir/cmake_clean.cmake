file(REMOVE_RECURSE
  "CMakeFiles/reduce_strategies_test.dir/reduce_strategies_test.cpp.o"
  "CMakeFiles/reduce_strategies_test.dir/reduce_strategies_test.cpp.o.d"
  "reduce_strategies_test"
  "reduce_strategies_test.pdb"
  "reduce_strategies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduce_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
