# Empty compiler generated dependencies file for dpl_expr_test.
# This may be replaced when dependencies are built.
