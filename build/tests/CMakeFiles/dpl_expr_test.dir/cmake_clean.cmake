file(REMOVE_RECURSE
  "CMakeFiles/dpl_expr_test.dir/dpl_expr_test.cpp.o"
  "CMakeFiles/dpl_expr_test.dir/dpl_expr_test.cpp.o.d"
  "dpl_expr_test"
  "dpl_expr_test.pdb"
  "dpl_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpl_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
