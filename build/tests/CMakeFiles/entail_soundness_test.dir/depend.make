# Empty dependencies file for entail_soundness_test.
# This may be replaced when dependencies are built.
