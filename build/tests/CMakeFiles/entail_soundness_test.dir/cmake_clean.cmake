file(REMOVE_RECURSE
  "CMakeFiles/entail_soundness_test.dir/entail_soundness_test.cpp.o"
  "CMakeFiles/entail_soundness_test.dir/entail_soundness_test.cpp.o.d"
  "entail_soundness_test"
  "entail_soundness_test.pdb"
  "entail_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entail_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
