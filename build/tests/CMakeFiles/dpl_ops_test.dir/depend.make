# Empty dependencies file for dpl_ops_test.
# This may be replaced when dependencies are built.
