file(REMOVE_RECURSE
  "CMakeFiles/dpl_ops_test.dir/dpl_ops_test.cpp.o"
  "CMakeFiles/dpl_ops_test.dir/dpl_ops_test.cpp.o.d"
  "dpl_ops_test"
  "dpl_ops_test.pdb"
  "dpl_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpl_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
