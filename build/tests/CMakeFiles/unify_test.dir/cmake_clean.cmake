file(REMOVE_RECURSE
  "CMakeFiles/unify_test.dir/unify_test.cpp.o"
  "CMakeFiles/unify_test.dir/unify_test.cpp.o.d"
  "unify_test"
  "unify_test.pdb"
  "unify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
