# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/index_set_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/dpl_ops_test[1]_include.cmake")
include("/root/repo/build/tests/dpl_expr_test[1]_include.cmake")
include("/root/repo/build/tests/dpl_evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/parallelizable_test[1]_include.cmake")
include("/root/repo/build/tests/infer_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/unify_test[1]_include.cmake")
include("/root/repo/build/tests/reduction_opt_test[1]_include.cmake")
include("/root/repo/build/tests/parallelize_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/random_program_test[1]_include.cmake")
include("/root/repo/build/tests/reduce_strategies_test[1]_include.cmake")
include("/root/repo/build/tests/dpl_parser_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/entail_soundness_test[1]_include.cmake")
include("/root/repo/build/tests/figure_shapes_test[1]_include.cmake")
