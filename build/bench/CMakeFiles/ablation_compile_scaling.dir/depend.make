# Empty dependencies file for ablation_compile_scaling.
# This may be replaced when dependencies are built.
