file(REMOVE_RECURSE
  "CMakeFiles/ablation_compile_scaling.dir/ablation_compile_scaling.cpp.o"
  "CMakeFiles/ablation_compile_scaling.dir/ablation_compile_scaling.cpp.o.d"
  "ablation_compile_scaling"
  "ablation_compile_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compile_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
