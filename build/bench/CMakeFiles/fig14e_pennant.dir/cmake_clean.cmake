file(REMOVE_RECURSE
  "CMakeFiles/fig14e_pennant.dir/fig14e_pennant.cpp.o"
  "CMakeFiles/fig14e_pennant.dir/fig14e_pennant.cpp.o.d"
  "fig14e_pennant"
  "fig14e_pennant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14e_pennant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
