# Empty compiler generated dependencies file for fig14e_pennant.
# This may be replaced when dependencies are built.
