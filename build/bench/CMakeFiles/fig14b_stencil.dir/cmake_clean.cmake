file(REMOVE_RECURSE
  "CMakeFiles/fig14b_stencil.dir/fig14b_stencil.cpp.o"
  "CMakeFiles/fig14b_stencil.dir/fig14b_stencil.cpp.o.d"
  "fig14b_stencil"
  "fig14b_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14b_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
