# Empty compiler generated dependencies file for fig14b_stencil.
# This may be replaced when dependencies are built.
