# Empty dependencies file for fig14d_circuit.
# This may be replaced when dependencies are built.
