file(REMOVE_RECURSE
  "CMakeFiles/fig14d_circuit.dir/fig14d_circuit.cpp.o"
  "CMakeFiles/fig14d_circuit.dir/fig14d_circuit.cpp.o.d"
  "fig14d_circuit"
  "fig14d_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14d_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
