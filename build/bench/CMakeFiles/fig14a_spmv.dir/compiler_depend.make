# Empty compiler generated dependencies file for fig14a_spmv.
# This may be replaced when dependencies are built.
