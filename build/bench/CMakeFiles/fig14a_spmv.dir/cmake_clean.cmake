file(REMOVE_RECURSE
  "CMakeFiles/fig14a_spmv.dir/fig14a_spmv.cpp.o"
  "CMakeFiles/fig14a_spmv.dir/fig14a_spmv.cpp.o.d"
  "fig14a_spmv"
  "fig14a_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14a_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
