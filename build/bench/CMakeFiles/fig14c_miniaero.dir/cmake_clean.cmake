file(REMOVE_RECURSE
  "CMakeFiles/fig14c_miniaero.dir/fig14c_miniaero.cpp.o"
  "CMakeFiles/fig14c_miniaero.dir/fig14c_miniaero.cpp.o.d"
  "fig14c_miniaero"
  "fig14c_miniaero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14c_miniaero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
