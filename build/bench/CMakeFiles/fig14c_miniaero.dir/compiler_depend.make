# Empty compiler generated dependencies file for fig14c_miniaero.
# This may be replaced when dependencies are built.
