file(REMOVE_RECURSE
  "CMakeFiles/relaxation_demo.dir/relaxation_demo.cpp.o"
  "CMakeFiles/relaxation_demo.dir/relaxation_demo.cpp.o.d"
  "relaxation_demo"
  "relaxation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relaxation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
