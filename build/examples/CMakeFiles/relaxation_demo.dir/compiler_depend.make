# Empty compiler generated dependencies file for relaxation_demo.
# This may be replaced when dependencies are built.
