file(REMOVE_RECURSE
  "CMakeFiles/spmv_csr.dir/spmv_csr.cpp.o"
  "CMakeFiles/spmv_csr.dir/spmv_csr.cpp.o.d"
  "spmv_csr"
  "spmv_csr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
