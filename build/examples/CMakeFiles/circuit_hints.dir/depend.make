# Empty dependencies file for circuit_hints.
# This may be replaced when dependencies are built.
