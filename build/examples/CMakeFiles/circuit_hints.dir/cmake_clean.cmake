file(REMOVE_RECURSE
  "CMakeFiles/circuit_hints.dir/circuit_hints.cpp.o"
  "CMakeFiles/circuit_hints.dir/circuit_hints.cpp.o.d"
  "circuit_hints"
  "circuit_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
