file(REMOVE_RECURSE
  "CMakeFiles/particles_cells.dir/particles_cells.cpp.o"
  "CMakeFiles/particles_cells.dir/particles_cells.cpp.o.d"
  "particles_cells"
  "particles_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particles_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
