# Empty compiler generated dependencies file for particles_cells.
# This may be replaced when dependencies are built.
