file(REMOVE_RECURSE
  "libdpart_dpl.a"
)
