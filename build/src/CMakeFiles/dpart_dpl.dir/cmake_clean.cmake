file(REMOVE_RECURSE
  "CMakeFiles/dpart_dpl.dir/dpl/evaluator.cpp.o"
  "CMakeFiles/dpart_dpl.dir/dpl/evaluator.cpp.o.d"
  "CMakeFiles/dpart_dpl.dir/dpl/expr.cpp.o"
  "CMakeFiles/dpart_dpl.dir/dpl/expr.cpp.o.d"
  "CMakeFiles/dpart_dpl.dir/dpl/parser.cpp.o"
  "CMakeFiles/dpart_dpl.dir/dpl/parser.cpp.o.d"
  "CMakeFiles/dpart_dpl.dir/dpl/program.cpp.o"
  "CMakeFiles/dpart_dpl.dir/dpl/program.cpp.o.d"
  "libdpart_dpl.a"
  "libdpart_dpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpart_dpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
