# Empty dependencies file for dpart_dpl.
# This may be replaced when dependencies are built.
