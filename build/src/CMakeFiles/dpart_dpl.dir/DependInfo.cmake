
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpl/evaluator.cpp" "src/CMakeFiles/dpart_dpl.dir/dpl/evaluator.cpp.o" "gcc" "src/CMakeFiles/dpart_dpl.dir/dpl/evaluator.cpp.o.d"
  "/root/repo/src/dpl/expr.cpp" "src/CMakeFiles/dpart_dpl.dir/dpl/expr.cpp.o" "gcc" "src/CMakeFiles/dpart_dpl.dir/dpl/expr.cpp.o.d"
  "/root/repo/src/dpl/parser.cpp" "src/CMakeFiles/dpart_dpl.dir/dpl/parser.cpp.o" "gcc" "src/CMakeFiles/dpart_dpl.dir/dpl/parser.cpp.o.d"
  "/root/repo/src/dpl/program.cpp" "src/CMakeFiles/dpart_dpl.dir/dpl/program.cpp.o" "gcc" "src/CMakeFiles/dpart_dpl.dir/dpl/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpart_region.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
