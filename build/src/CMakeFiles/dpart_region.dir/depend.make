# Empty dependencies file for dpart_region.
# This may be replaced when dependencies are built.
