file(REMOVE_RECURSE
  "libdpart_region.a"
)
