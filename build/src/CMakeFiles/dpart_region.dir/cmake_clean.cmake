file(REMOVE_RECURSE
  "CMakeFiles/dpart_region.dir/region/dpl_ops.cpp.o"
  "CMakeFiles/dpart_region.dir/region/dpl_ops.cpp.o.d"
  "CMakeFiles/dpart_region.dir/region/index_set.cpp.o"
  "CMakeFiles/dpart_region.dir/region/index_set.cpp.o.d"
  "CMakeFiles/dpart_region.dir/region/partition.cpp.o"
  "CMakeFiles/dpart_region.dir/region/partition.cpp.o.d"
  "CMakeFiles/dpart_region.dir/region/region.cpp.o"
  "CMakeFiles/dpart_region.dir/region/region.cpp.o.d"
  "CMakeFiles/dpart_region.dir/region/world.cpp.o"
  "CMakeFiles/dpart_region.dir/region/world.cpp.o.d"
  "libdpart_region.a"
  "libdpart_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpart_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
