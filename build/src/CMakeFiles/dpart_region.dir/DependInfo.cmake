
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/region/dpl_ops.cpp" "src/CMakeFiles/dpart_region.dir/region/dpl_ops.cpp.o" "gcc" "src/CMakeFiles/dpart_region.dir/region/dpl_ops.cpp.o.d"
  "/root/repo/src/region/index_set.cpp" "src/CMakeFiles/dpart_region.dir/region/index_set.cpp.o" "gcc" "src/CMakeFiles/dpart_region.dir/region/index_set.cpp.o.d"
  "/root/repo/src/region/partition.cpp" "src/CMakeFiles/dpart_region.dir/region/partition.cpp.o" "gcc" "src/CMakeFiles/dpart_region.dir/region/partition.cpp.o.d"
  "/root/repo/src/region/region.cpp" "src/CMakeFiles/dpart_region.dir/region/region.cpp.o" "gcc" "src/CMakeFiles/dpart_region.dir/region/region.cpp.o.d"
  "/root/repo/src/region/world.cpp" "src/CMakeFiles/dpart_region.dir/region/world.cpp.o" "gcc" "src/CMakeFiles/dpart_region.dir/region/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
