# Empty dependencies file for dpart_parallelize.
# This may be replaced when dependencies are built.
