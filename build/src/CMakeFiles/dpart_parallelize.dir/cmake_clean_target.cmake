file(REMOVE_RECURSE
  "libdpart_parallelize.a"
)
