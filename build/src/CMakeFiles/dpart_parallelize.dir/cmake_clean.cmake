file(REMOVE_RECURSE
  "CMakeFiles/dpart_parallelize.dir/parallelize/parallelize.cpp.o"
  "CMakeFiles/dpart_parallelize.dir/parallelize/parallelize.cpp.o.d"
  "libdpart_parallelize.a"
  "libdpart_parallelize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpart_parallelize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
