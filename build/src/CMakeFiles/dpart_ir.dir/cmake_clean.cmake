file(REMOVE_RECURSE
  "CMakeFiles/dpart_ir.dir/ir/interp.cpp.o"
  "CMakeFiles/dpart_ir.dir/ir/interp.cpp.o.d"
  "CMakeFiles/dpart_ir.dir/ir/ir.cpp.o"
  "CMakeFiles/dpart_ir.dir/ir/ir.cpp.o.d"
  "libdpart_ir.a"
  "libdpart_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpart_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
