file(REMOVE_RECURSE
  "libdpart_ir.a"
)
