# Empty dependencies file for dpart_ir.
# This may be replaced when dependencies are built.
