# Empty compiler generated dependencies file for dpart_ir.
# This may be replaced when dependencies are built.
