# Empty dependencies file for dpart_optimize.
# This may be replaced when dependencies are built.
