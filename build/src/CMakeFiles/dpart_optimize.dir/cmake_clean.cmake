file(REMOVE_RECURSE
  "CMakeFiles/dpart_optimize.dir/optimize/reduction_opt.cpp.o"
  "CMakeFiles/dpart_optimize.dir/optimize/reduction_opt.cpp.o.d"
  "libdpart_optimize.a"
  "libdpart_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpart_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
