file(REMOVE_RECURSE
  "libdpart_optimize.a"
)
