file(REMOVE_RECURSE
  "libdpart_sim.a"
)
