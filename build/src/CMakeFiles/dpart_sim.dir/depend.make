# Empty dependencies file for dpart_sim.
# This may be replaced when dependencies are built.
