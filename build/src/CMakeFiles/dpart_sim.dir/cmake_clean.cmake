file(REMOVE_RECURSE
  "CMakeFiles/dpart_sim.dir/sim/cluster.cpp.o"
  "CMakeFiles/dpart_sim.dir/sim/cluster.cpp.o.d"
  "libdpart_sim.a"
  "libdpart_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpart_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
