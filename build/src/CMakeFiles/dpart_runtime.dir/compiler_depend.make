# Empty compiler generated dependencies file for dpart_runtime.
# This may be replaced when dependencies are built.
