file(REMOVE_RECURSE
  "libdpart_runtime.a"
)
