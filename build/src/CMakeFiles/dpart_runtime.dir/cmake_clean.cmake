file(REMOVE_RECURSE
  "CMakeFiles/dpart_runtime.dir/runtime/executor.cpp.o"
  "CMakeFiles/dpart_runtime.dir/runtime/executor.cpp.o.d"
  "CMakeFiles/dpart_runtime.dir/runtime/privileges.cpp.o"
  "CMakeFiles/dpart_runtime.dir/runtime/privileges.cpp.o.d"
  "CMakeFiles/dpart_runtime.dir/runtime/thread_pool.cpp.o"
  "CMakeFiles/dpart_runtime.dir/runtime/thread_pool.cpp.o.d"
  "libdpart_runtime.a"
  "libdpart_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpart_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
