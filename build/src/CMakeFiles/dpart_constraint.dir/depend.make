# Empty dependencies file for dpart_constraint.
# This may be replaced when dependencies are built.
