file(REMOVE_RECURSE
  "libdpart_constraint.a"
)
