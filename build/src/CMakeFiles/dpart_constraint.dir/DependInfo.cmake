
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraint/entail.cpp" "src/CMakeFiles/dpart_constraint.dir/constraint/entail.cpp.o" "gcc" "src/CMakeFiles/dpart_constraint.dir/constraint/entail.cpp.o.d"
  "/root/repo/src/constraint/graphviz.cpp" "src/CMakeFiles/dpart_constraint.dir/constraint/graphviz.cpp.o" "gcc" "src/CMakeFiles/dpart_constraint.dir/constraint/graphviz.cpp.o.d"
  "/root/repo/src/constraint/solver.cpp" "src/CMakeFiles/dpart_constraint.dir/constraint/solver.cpp.o" "gcc" "src/CMakeFiles/dpart_constraint.dir/constraint/solver.cpp.o.d"
  "/root/repo/src/constraint/system.cpp" "src/CMakeFiles/dpart_constraint.dir/constraint/system.cpp.o" "gcc" "src/CMakeFiles/dpart_constraint.dir/constraint/system.cpp.o.d"
  "/root/repo/src/constraint/unify.cpp" "src/CMakeFiles/dpart_constraint.dir/constraint/unify.cpp.o" "gcc" "src/CMakeFiles/dpart_constraint.dir/constraint/unify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpart_dpl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpart_region.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
