file(REMOVE_RECURSE
  "CMakeFiles/dpart_constraint.dir/constraint/entail.cpp.o"
  "CMakeFiles/dpart_constraint.dir/constraint/entail.cpp.o.d"
  "CMakeFiles/dpart_constraint.dir/constraint/graphviz.cpp.o"
  "CMakeFiles/dpart_constraint.dir/constraint/graphviz.cpp.o.d"
  "CMakeFiles/dpart_constraint.dir/constraint/solver.cpp.o"
  "CMakeFiles/dpart_constraint.dir/constraint/solver.cpp.o.d"
  "CMakeFiles/dpart_constraint.dir/constraint/system.cpp.o"
  "CMakeFiles/dpart_constraint.dir/constraint/system.cpp.o.d"
  "CMakeFiles/dpart_constraint.dir/constraint/unify.cpp.o"
  "CMakeFiles/dpart_constraint.dir/constraint/unify.cpp.o.d"
  "libdpart_constraint.a"
  "libdpart_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpart_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
