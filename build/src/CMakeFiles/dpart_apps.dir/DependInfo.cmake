
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_common.cpp" "src/CMakeFiles/dpart_apps.dir/apps/app_common.cpp.o" "gcc" "src/CMakeFiles/dpart_apps.dir/apps/app_common.cpp.o.d"
  "/root/repo/src/apps/circuit.cpp" "src/CMakeFiles/dpart_apps.dir/apps/circuit.cpp.o" "gcc" "src/CMakeFiles/dpart_apps.dir/apps/circuit.cpp.o.d"
  "/root/repo/src/apps/miniaero.cpp" "src/CMakeFiles/dpart_apps.dir/apps/miniaero.cpp.o" "gcc" "src/CMakeFiles/dpart_apps.dir/apps/miniaero.cpp.o.d"
  "/root/repo/src/apps/pennant.cpp" "src/CMakeFiles/dpart_apps.dir/apps/pennant.cpp.o" "gcc" "src/CMakeFiles/dpart_apps.dir/apps/pennant.cpp.o.d"
  "/root/repo/src/apps/spmv.cpp" "src/CMakeFiles/dpart_apps.dir/apps/spmv.cpp.o" "gcc" "src/CMakeFiles/dpart_apps.dir/apps/spmv.cpp.o.d"
  "/root/repo/src/apps/stencil.cpp" "src/CMakeFiles/dpart_apps.dir/apps/stencil.cpp.o" "gcc" "src/CMakeFiles/dpart_apps.dir/apps/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpart_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpart_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpart_parallelize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpart_optimize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpart_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpart_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpart_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpart_dpl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dpart_region.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
