file(REMOVE_RECURSE
  "CMakeFiles/dpart_apps.dir/apps/app_common.cpp.o"
  "CMakeFiles/dpart_apps.dir/apps/app_common.cpp.o.d"
  "CMakeFiles/dpart_apps.dir/apps/circuit.cpp.o"
  "CMakeFiles/dpart_apps.dir/apps/circuit.cpp.o.d"
  "CMakeFiles/dpart_apps.dir/apps/miniaero.cpp.o"
  "CMakeFiles/dpart_apps.dir/apps/miniaero.cpp.o.d"
  "CMakeFiles/dpart_apps.dir/apps/pennant.cpp.o"
  "CMakeFiles/dpart_apps.dir/apps/pennant.cpp.o.d"
  "CMakeFiles/dpart_apps.dir/apps/spmv.cpp.o"
  "CMakeFiles/dpart_apps.dir/apps/spmv.cpp.o.d"
  "CMakeFiles/dpart_apps.dir/apps/stencil.cpp.o"
  "CMakeFiles/dpart_apps.dir/apps/stencil.cpp.o.d"
  "libdpart_apps.a"
  "libdpart_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpart_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
