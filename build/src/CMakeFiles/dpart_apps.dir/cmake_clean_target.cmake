file(REMOVE_RECURSE
  "libdpart_apps.a"
)
