# Empty compiler generated dependencies file for dpart_apps.
# This may be replaced when dependencies are built.
