file(REMOVE_RECURSE
  "libdpart_analysis.a"
)
