file(REMOVE_RECURSE
  "CMakeFiles/dpart_analysis.dir/analysis/infer.cpp.o"
  "CMakeFiles/dpart_analysis.dir/analysis/infer.cpp.o.d"
  "CMakeFiles/dpart_analysis.dir/analysis/parallelizable.cpp.o"
  "CMakeFiles/dpart_analysis.dir/analysis/parallelizable.cpp.o.d"
  "libdpart_analysis.a"
  "libdpart_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpart_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
