# Empty compiler generated dependencies file for dpart_analysis.
# This may be replaced when dependencies are built.
