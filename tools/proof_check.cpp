// proof_check: independent verifier for DPRF 1 proof certificates
// (docs/solver.md).
//
// The checker shares no code with the solver. It re-parses the certificate's
// ground model (region sizes, full fn tables), re-implements the DPL
// operators as naive set semantics (the Fig. 5 reference definitions), and
// re-derives every arithmetic justification with its own interval bounds:
//
//  - solution certificates: every open symbol is assigned exactly once, in
//    dependency order; every required conjunct whose value is ground is
//    checked semantically (PART / DISJ / COMP / subset); every vocabulary
//    constraint (capacity / replication / co-location / anti-affinity) is
//    checked against the evaluated partitions; the plan section's DPL
//    program re-evaluates to the same partitions as the raw assignments,
//    and the embedded runtime expectations hold on them.
//  - infeasibility certificates: the final attempt's search tree is
//    replayed — every candidate at every node must be pruned (justification
//    re-derived), deduplicated (an identical equality was branched at the
//    node) or branched into a failing subtree; refutations (capacity
//    pigeonhole, replication windows, anti-affinity self-conflicts) are
//    re-derived from the model; no budget event may truncate the trail.
//
// Conjuncts or expectations whose value depends on a fixed external symbol
// are conditional on the caller's hypotheses; they are reported as skipped
// (fatal under --strict). Usage:
//
//   proof_check [--strict] cert.dprf...
//
// Prints one "OK: ..." line per valid certificate; prints the violations and
// exits non-zero otherwise.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr std::size_t kMax = static_cast<std::size_t>(-1);

std::size_t satAdd(std::size_t a, std::size_t b) {
  return a > kMax - b ? kMax : a + b;
}
std::size_t satMul(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kMax || b == kMax) return kMax;
  return a > kMax / b ? kMax : a * b;
}
std::size_t satSub(std::size_t a, std::size_t b) { return a > b ? a - b : 0; }
std::size_t ceilDiv(std::size_t s, std::size_t n) {
  if (n == 0) return s == 0 ? 0 : kMax;
  if (s == kMax) return kMax;
  return (s + n - 1) / n;
}

// ---- expression AST + parser (the Expr::toString grammar) -----------------

struct PExpr;
using PExprPtr = std::shared_ptr<PExpr>;

struct PExpr {
  enum class Kind { Symbol, Union, Intersect, Subtract, Image, Preimage,
                    Equal };
  Kind kind = Kind::Symbol;
  std::string name;    // Symbol
  std::string fn;      // Image / Preimage
  std::string region;  // Image / Preimage / Equal
  PExprPtr lhs, rhs;   // binary ops
  PExprPtr arg;        // Image / Preimage
};

class ExprParser {
 public:
  explicit ExprParser(const std::string& text) : s_(text) {}

  // Returns nullptr (with an error message) on malformed input.
  PExprPtr parseAll(std::string& error) {
    PExprPtr e = parse();
    if (e != nullptr && pos_ != s_.size()) {
      fail("trailing characters at offset " + std::to_string(pos_));
      e = nullptr;
    }
    error = error_;
    return e;
  }

 private:
  PExprPtr parse() {
    if (pos_ >= s_.size()) return fail("unexpected end of expression");
    if (s_[pos_] == '(') {
      ++pos_;
      PExprPtr lhs = parse();
      if (lhs == nullptr) return nullptr;
      if (!expect(" ")) return nullptr;
      if (pos_ >= s_.size()) return fail("missing operator");
      const char op = s_[pos_++];
      if (op != 'u' && op != 'n' && op != '-') {
        return fail(std::string("unknown operator '") + op + "'");
      }
      if (!expect(" ")) return nullptr;
      PExprPtr rhs = parse();
      if (rhs == nullptr) return nullptr;
      if (!expect(")")) return nullptr;
      auto e = std::make_shared<PExpr>();
      e->kind = op == 'u'   ? PExpr::Kind::Union
                : op == 'n' ? PExpr::Kind::Intersect
                            : PExpr::Kind::Subtract;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      return e;
    }
    const std::string word = peekWord();
    if (word == "image" && lookahead(word.size()) == '(') {
      pos_ += word.size() + 1;
      auto e = std::make_shared<PExpr>();
      e->kind = PExpr::Kind::Image;
      e->arg = parse();
      if (e->arg == nullptr) return nullptr;
      if (!expect(", ")) return nullptr;
      e->fn = takeUntil(',');
      if (!expect(", ")) return nullptr;
      e->region = takeUntil(')');
      if (!expect(")")) return nullptr;
      return e;
    }
    if (word == "preimage" && lookahead(word.size()) == '(') {
      pos_ += word.size() + 1;
      auto e = std::make_shared<PExpr>();
      e->kind = PExpr::Kind::Preimage;
      e->region = takeUntil(',');
      if (!expect(", ")) return nullptr;
      e->fn = takeUntil(',');
      if (!expect(", ")) return nullptr;
      e->arg = parse();
      if (e->arg == nullptr) return nullptr;
      if (!expect(")")) return nullptr;
      return e;
    }
    if (word == "equal" && lookahead(word.size()) == '(') {
      pos_ += word.size() + 1;
      auto e = std::make_shared<PExpr>();
      e->kind = PExpr::Kind::Equal;
      e->region = takeUntil(')');
      if (!expect(")")) return nullptr;
      return e;
    }
    if (word.empty()) return fail("expected a symbol");
    pos_ += word.size();
    auto e = std::make_shared<PExpr>();
    e->kind = PExpr::Kind::Symbol;
    e->name = word;
    return e;
  }

  // A symbol / keyword: everything up to a structural delimiter. Fn ids can
  // contain brackets and dots ("R[.].field"), so only the grammar's own
  // delimiters stop the scan.
  std::string peekWord() const {
    std::size_t end = pos_;
    while (end < s_.size() && s_[end] != '(' && s_[end] != ')' &&
           s_[end] != ',' && s_[end] != ' ') {
      ++end;
    }
    return s_.substr(pos_, end - pos_);
  }

  char lookahead(std::size_t ahead) const {
    return pos_ + ahead < s_.size() ? s_[pos_ + ahead] : '\0';
  }

  std::string takeUntil(char stop) {
    std::size_t end = pos_;
    while (end < s_.size() && s_[end] != stop) ++end;
    std::string out = s_.substr(pos_, end - pos_);
    pos_ = end;
    return out;
  }

  bool expect(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) {
      fail("expected '" + lit + "' at offset " + std::to_string(pos_));
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  PExprPtr fail(const std::string& msg) {
    if (error_.empty()) error_ = msg + " in '" + s_ + "'";
    return nullptr;
  }

  std::string s_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::string exprToString(const PExpr& e) {
  switch (e.kind) {
    case PExpr::Kind::Symbol: return e.name;
    case PExpr::Kind::Union:
      return "(" + exprToString(*e.lhs) + " u " + exprToString(*e.rhs) + ")";
    case PExpr::Kind::Intersect:
      return "(" + exprToString(*e.lhs) + " n " + exprToString(*e.rhs) + ")";
    case PExpr::Kind::Subtract:
      return "(" + exprToString(*e.lhs) + " - " + exprToString(*e.rhs) + ")";
    case PExpr::Kind::Image:
      return "image(" + exprToString(*e.arg) + ", " + e.fn + ", " + e.region +
             ")";
    case PExpr::Kind::Preimage:
      return "preimage(" + e.region + ", " + e.fn + ", " +
             exprToString(*e.arg) + ")";
    case PExpr::Kind::Equal: return "equal(" + e.region + ")";
  }
  return "?";
}

// ---- certificate model ----------------------------------------------------

struct FnTable {
  bool rangeValued = false;
  std::string domain, range;
  std::vector<long long> points;                      // point-valued
  std::vector<std::pair<long long, long long>> runs;  // range-valued
};

struct SymbolDecl {
  bool fixed = false;
  std::string region;
};

struct Conjunct {
  enum class Kind { Part, Disj, Comp, Subset };
  Kind kind = Kind::Part;
  bool assumed = false;
  std::string region;
  std::string exprText, lhsText, rhsText;
  PExprPtr expr, lhs, rhs;
};

struct SymbolPair {
  std::string symA, symB, fieldA, fieldB;
};

struct Event {
  enum class Type { Restart, Node, Cand, Dedup, Prune, Refute, Branch,
                    LeafOk, LeafBad, Backtrack, Exhausted, Budget };
  Type type{};
  std::size_t node = 0;
  std::size_t parent = 0;     // Node
  std::size_t idx = 0;        // Cand / Dedup / Prune / Branch
  std::string symbol;         // Node (branched) / Cand / Refute
  std::string exprText;       // Cand
  PExprPtr expr;              // Cand
  std::string rule, detail;   // Prune / Refute
  std::size_t line = 0;       // 1-based source line for messages
};

struct Cert {
  std::size_t pieces = 0;
  std::map<std::string, std::size_t> regions;
  std::map<std::string, FnTable> fns;
  std::map<std::string, SymbolDecl> symbols;
  std::vector<Conjunct> conjuncts;
  std::map<std::string, std::size_t> capacity;
  std::map<std::string, std::pair<double, double>> replication;
  std::vector<SymbolPair> colocated, antiAffine;
  std::vector<Event> trail;
  bool sawBeginSearch = false;
  bool hasSolution = false;
  std::vector<std::pair<std::string, PExprPtr>> assigns;
  bool hasInfeasible = false;
  std::string infeasibleDetail;
  std::vector<std::pair<std::string, PExprPtr>> dplStmts;
  std::vector<std::map<std::string, std::string>> expectations;
  std::size_t declaredEnd = 0;
  std::size_t lineCount = 0;
};

// ---- reporting ------------------------------------------------------------

struct Report {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;  // fatal under --strict
  std::size_t checkedConjuncts = 0;
  std::size_t skippedConjuncts = 0;
  std::size_t rederivedJustifications = 0;

  void error(const std::string& m) { errors.push_back(m); }
  void warn(const std::string& m) { warnings.push_back(m); }
};

// ---- parser ---------------------------------------------------------------

std::vector<std::string> splitTokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string t;
  while (is >> t) out.push_back(t);
  return out;
}

PExprPtr parseExprOrError(const std::string& text, std::size_t line,
                          Report& rep) {
  std::string error;
  PExprPtr e = ExprParser(text).parseAll(error);
  if (e == nullptr) {
    rep.error("line " + std::to_string(line) + ": bad expression: " + error);
  }
  return e;
}

bool parseCert(std::istream& in, Cert& cert, Report& rep) {
  std::string line;
  std::size_t lineNo = 0;
  bool sawHeader = false;
  bool sawEnd = false;
  while (std::getline(in, line)) {
    ++lineNo;
    ++cert.lineCount;
    if (sawEnd) {
      rep.error("line " + std::to_string(lineNo) + ": content after 'end'");
      return false;
    }
    std::vector<std::string> tok = splitTokens(line);
    if (tok.empty()) {
      rep.error("line " + std::to_string(lineNo) + ": empty line");
      return false;
    }
    const std::string& kw = tok[0];
    auto rest = [&](std::size_t nTokens) {
      // Raw remainder of the line after the first nTokens tokens (expression
      // payloads contain spaces).
      std::size_t pos = 0;
      for (std::size_t i = 0; i < nTokens; ++i) {
        pos = line.find(' ', pos);
        if (pos == std::string::npos) return std::string();
        ++pos;
      }
      return line.substr(pos);
    };
    if (kw == "cert") {
      if (tok.size() != 3 || tok[1] != "DPRF" || tok[2] != "1") {
        rep.error("line 1: not a DPRF 1 certificate");
        return false;
      }
      sawHeader = true;
    } else if (!sawHeader) {
      rep.error("line 1: certificate must start with 'cert DPRF 1'");
      return false;
    } else if (kw == "pieces" && tok.size() == 2) {
      cert.pieces = std::stoull(tok[1]);
    } else if (kw == "region" && tok.size() == 3) {
      cert.regions[tok[1]] = std::stoull(tok[2]);
    } else if (kw == "fn" && tok.size() >= 5) {
      FnTable ft;
      ft.rangeValued = tok[2] == "range";
      ft.domain = tok[3];
      ft.range = tok[4];
      for (std::size_t i = 5; i < tok.size(); ++i) {
        if (ft.rangeValued) {
          const auto colon = tok[i].find(':');
          if (colon == std::string::npos) {
            rep.error("line " + std::to_string(lineNo) +
                      ": range fn entry without ':'");
            return false;
          }
          ft.runs.emplace_back(std::stoll(tok[i].substr(0, colon)),
                               std::stoll(tok[i].substr(colon + 1)));
        } else {
          ft.points.push_back(std::stoll(tok[i]));
        }
      }
      cert.fns[tok[1]] = std::move(ft);
    } else if (kw == "symbol" && tok.size() == 4) {
      cert.symbols[tok[1]] = SymbolDecl{tok[2] == "fixed", tok[3]};
    } else if (kw == "conjunct" && tok.size() >= 3) {
      Conjunct c;
      c.assumed = tok[1] == "assumed";
      if (tok[2] == "part" || tok[2] == "comp") {
        c.kind = tok[2] == "part" ? Conjunct::Kind::Part
                                  : Conjunct::Kind::Comp;
        c.region = tok[3];
        c.exprText = rest(4);
      } else if (tok[2] == "disj") {
        c.kind = Conjunct::Kind::Disj;
        c.exprText = rest(3);
      } else if (tok[2] == "subset") {
        c.kind = Conjunct::Kind::Subset;
        const std::string both = rest(3);
        const auto sep = both.find(" <= ");
        if (sep == std::string::npos) {
          rep.error("line " + std::to_string(lineNo) +
                    ": subset conjunct without ' <= '");
          return false;
        }
        c.lhsText = both.substr(0, sep);
        c.rhsText = both.substr(sep + 4);
      } else {
        rep.error("line " + std::to_string(lineNo) +
                  ": unknown conjunct kind '" + tok[2] + "'");
        return false;
      }
      if (c.kind == Conjunct::Kind::Subset) {
        c.lhs = parseExprOrError(c.lhsText, lineNo, rep);
        c.rhs = parseExprOrError(c.rhsText, lineNo, rep);
        if (c.lhs == nullptr || c.rhs == nullptr) return false;
      } else {
        c.expr = parseExprOrError(c.exprText, lineNo, rep);
        if (c.expr == nullptr) return false;
      }
      cert.conjuncts.push_back(std::move(c));
    } else if (kw == "vocab" && tok.size() >= 3) {
      if (tok[1] == "capacity" && tok.size() == 4) {
        cert.capacity[tok[2]] = std::stoull(tok[3]);
      } else if (tok[1] == "replicate" && tok.size() == 5) {
        cert.replication[tok[2]] = {std::stod(tok[3]), std::stod(tok[4])};
      } else if ((tok[1] == "colocate" || tok[1] == "anti") &&
                 tok.size() == 6) {
        SymbolPair p{tok[2], tok[3], tok[4], tok[5]};
        (tok[1] == "colocate" ? cert.colocated : cert.antiAffine)
            .push_back(std::move(p));
      } else {
        rep.error("line " + std::to_string(lineNo) + ": bad vocab line");
        return false;
      }
    } else if (kw == "begin" && tok.size() == 2 && tok[1] == "search") {
      cert.sawBeginSearch = true;
    } else if (kw == "restart" && tok.size() == 4) {
      Event e;
      e.type = Event::Type::Restart;
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "node" && tok.size() == 4) {
      Event e;
      e.type = Event::Type::Node;
      e.node = std::stoull(tok[1]);
      e.parent = std::stoull(tok[2]);
      e.symbol = tok[3] == "-" ? std::string() : tok[3];
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "cand" && tok.size() >= 5) {
      Event e;
      e.type = Event::Type::Cand;
      e.node = std::stoull(tok[1]);
      e.idx = std::stoull(tok[2]);
      e.symbol = tok[3];
      e.exprText = rest(4);
      e.expr = parseExprOrError(e.exprText, lineNo, rep);
      if (e.expr == nullptr) return false;
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "dedup" && tok.size() == 3) {
      Event e;
      e.type = Event::Type::Dedup;
      e.node = std::stoull(tok[1]);
      e.idx = std::stoull(tok[2]);
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "prune" && tok.size() >= 4) {
      Event e;
      e.type = Event::Type::Prune;
      e.node = std::stoull(tok[1]);
      e.idx = std::stoull(tok[2]);
      e.rule = tok[3];
      e.detail = rest(4);
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "refute" && tok.size() >= 4) {
      Event e;
      e.type = Event::Type::Refute;
      e.node = std::stoull(tok[1]);
      e.symbol = tok[2];
      e.rule = tok[3];
      e.detail = rest(4);
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "branch" && tok.size() == 3) {
      Event e;
      e.type = Event::Type::Branch;
      e.node = std::stoull(tok[1]);
      e.idx = std::stoull(tok[2]);
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "leaf" && tok.size() >= 3) {
      Event e;
      e.type = tok[2] == "ok" ? Event::Type::LeafOk : Event::Type::LeafBad;
      e.node = std::stoull(tok[1]);
      e.detail = tok[2] == "ok" ? std::string() : rest(3);
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "backtrack" && tok.size() == 2) {
      Event e;
      e.type = Event::Type::Backtrack;
      e.node = std::stoull(tok[1]);
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "exhausted" && tok.size() == 2) {
      Event e;
      e.type = Event::Type::Exhausted;
      e.node = std::stoull(tok[1]);
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "budget" && tok.size() == 2) {
      Event e;
      e.type = Event::Type::Budget;
      e.node = std::stoull(tok[1]);
      e.line = lineNo;
      cert.trail.push_back(std::move(e));
    } else if (kw == "solution") {
      cert.hasSolution = true;
    } else if (kw == "assign" && tok.size() >= 3) {
      PExprPtr e = parseExprOrError(rest(2), lineNo, rep);
      if (e == nullptr) return false;
      cert.assigns.emplace_back(tok[1], std::move(e));
    } else if (kw == "infeasible") {
      cert.hasInfeasible = true;
      cert.infeasibleDetail = rest(1);
    } else if (kw == "dplstmt" && tok.size() >= 3) {
      PExprPtr e = parseExprOrError(rest(2), lineNo, rep);
      if (e == nullptr) return false;
      cert.dplStmts.emplace_back(tok[1], std::move(e));
    } else if (kw == "expect" && tok.size() >= 2) {
      std::map<std::string, std::string> kv;
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        if (eq == std::string::npos) {
          rep.error("line " + std::to_string(lineNo) +
                    ": expect token without '='");
          return false;
        }
        kv[tok[i].substr(0, eq)] = tok[i].substr(eq + 1);
      }
      cert.expectations.push_back(std::move(kv));
    } else if (kw == "end" && tok.size() == 2) {
      cert.declaredEnd = std::stoull(tok[1]);
      sawEnd = true;
    } else {
      rep.error("line " + std::to_string(lineNo) + ": unknown event '" + kw +
                "'");
      return false;
    }
  }
  if (!sawEnd) {
    rep.error("certificate is truncated: no 'end' line");
    return false;
  }
  if (cert.declaredEnd != cert.lineCount) {
    rep.error("end count " + std::to_string(cert.declaredEnd) +
              " does not match " + std::to_string(cert.lineCount) +
              " certificate lines");
  }
  return true;
}

// ---- interval bounds (independent re-implementation) ----------------------

struct Bounds {
  std::size_t maxPieceLo = 0, maxPieceHi = kMax;
  std::size_t totalLo = 0, totalHi = kMax;
};

std::size_t certSize(const Cert& cert, const std::string& region) {
  auto it = cert.regions.find(region);
  return it == cert.regions.end() ? kMax : it->second;
}

std::string certRegionOf(const Cert& cert, const PExpr& e) {
  switch (e.kind) {
    case PExpr::Kind::Equal:
    case PExpr::Kind::Image:
    case PExpr::Kind::Preimage:
      return e.region;
    case PExpr::Kind::Symbol: {
      auto it = cert.symbols.find(e.name);
      return it == cert.symbols.end() ? std::string() : it->second.region;
    }
    case PExpr::Kind::Union:
    case PExpr::Kind::Intersect:
    case PExpr::Kind::Subtract: {
      std::string t = certRegionOf(cert, *e.lhs);
      return t.empty() ? certRegionOf(cert, *e.rhs) : t;
    }
  }
  return {};
}

bool isRangeFn(const Cert& cert, const std::string& fn) {
  auto it = cert.fns.find(fn);
  return it != cert.fns.end() && it->second.rangeValued;
}

Bounds boundsOf(const Cert& cert, const PExpr& e) {
  const std::size_t n = cert.pieces;
  Bounds out;
  switch (e.kind) {
    case PExpr::Kind::Equal: {
      const std::size_t s = certSize(cert, e.region);
      if (s == kMax) break;
      const std::size_t mp = ceilDiv(s, n);
      return Bounds{mp, mp, s, s};
    }
    case PExpr::Kind::Symbol: {
      const std::size_t s = certSize(cert, certRegionOf(cert, e));
      out.maxPieceHi = s;
      out.totalHi = satMul(n, s);
      break;
    }
    case PExpr::Kind::Union: {
      const Bounds a = boundsOf(cert, *e.lhs);
      const Bounds b = boundsOf(cert, *e.rhs);
      out.maxPieceLo = std::max(a.maxPieceLo, b.maxPieceLo);
      out.maxPieceHi = satAdd(a.maxPieceHi, b.maxPieceHi);
      out.totalLo = std::max(a.totalLo, b.totalLo);
      out.totalHi = satAdd(a.totalHi, b.totalHi);
      break;
    }
    case PExpr::Kind::Intersect: {
      const Bounds a = boundsOf(cert, *e.lhs);
      const Bounds b = boundsOf(cert, *e.rhs);
      out.maxPieceHi = std::min(a.maxPieceHi, b.maxPieceHi);
      out.totalHi = std::min(a.totalHi, b.totalHi);
      break;
    }
    case PExpr::Kind::Subtract: {
      const Bounds a = boundsOf(cert, *e.lhs);
      const Bounds b = boundsOf(cert, *e.rhs);
      out.maxPieceLo = satSub(a.maxPieceLo, b.maxPieceHi);
      out.maxPieceHi = a.maxPieceHi;
      out.totalLo = satSub(a.totalLo, b.totalHi);
      out.totalHi = a.totalHi;
      break;
    }
    case PExpr::Kind::Image: {
      const Bounds a = boundsOf(cert, *e.arg);
      const std::size_t sT = certSize(cert, e.region);
      const bool ranged = isRangeFn(cert, e.fn);
      out.maxPieceHi = ranged ? sT : std::min(a.maxPieceHi, sT);
      out.totalHi = ranged ? satMul(n, sT) : std::min(a.totalHi,
                                                      satMul(n, sT));
      break;
    }
    case PExpr::Kind::Preimage: {
      const std::size_t sS = certSize(cert, e.region);
      out.maxPieceHi = sS;
      out.totalHi = satMul(n, sS);
      break;
    }
  }
  const std::size_t sTarget = certSize(cert, certRegionOf(cert, e));
  out.maxPieceHi = std::min(out.maxPieceHi, sTarget);
  out.maxPieceLo = std::max(out.maxPieceLo, ceilDiv(out.totalLo, n));
  out.maxPieceHi = std::min(out.maxPieceHi, out.totalHi);
  return out;
}

// ---- naive set evaluation (the Fig. 5 reference semantics) ----------------

struct Value {
  std::vector<std::set<long long>> pieces;
  /// False when any leaf was a fixed external symbol: the value is then a
  /// synthesized witness, not ground truth, and semantic checks skip it.
  bool ground = true;
};

using Env = std::map<std::string, Value>;

Value equalValue(const Cert& cert, const std::string& region) {
  Value v;
  const std::size_t s = certSize(cert, region);
  const std::size_t n = cert.pieces;
  v.pieces.assign(n, {});
  const std::size_t base = n == 0 ? 0 : s / n;
  const std::size_t rem = n == 0 ? 0 : s % n;
  long long lo = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t len = base + (j < rem ? 1 : 0);
    for (std::size_t k = 0; k < len; ++k) v.pieces[j].insert(lo++);
  }
  return v;
}

std::optional<Value> evaluate(const Cert& cert, const PExpr& e, const Env& env,
                              Report& rep) {
  const std::size_t n = cert.pieces;
  switch (e.kind) {
    case PExpr::Kind::Symbol: {
      auto it = env.find(e.name);
      if (it != env.end()) return it->second;
      auto sit = cert.symbols.find(e.name);
      if (sit == cert.symbols.end()) {
        rep.error("expression references undeclared symbol '" + e.name + "'");
        return std::nullopt;
      }
      if (!sit->second.fixed) {
        rep.error("expression references open symbol '" + e.name +
                  "' with no value");
        return std::nullopt;
      }
      // Witness for a fixed external: round-robin over the region. Any
      // check that touches it is conditional on the caller's hypotheses.
      Value v;
      v.ground = false;
      v.pieces.assign(n, {});
      const std::size_t s = certSize(cert, sit->second.region);
      for (std::size_t i = 0; s != kMax && i < s; ++i) {
        v.pieces[n == 0 ? 0 : i % n].insert(static_cast<long long>(i));
      }
      return v;
    }
    case PExpr::Kind::Equal:
      return equalValue(cert, e.region);
    case PExpr::Kind::Union:
    case PExpr::Kind::Intersect:
    case PExpr::Kind::Subtract: {
      auto a = evaluate(cert, *e.lhs, env, rep);
      auto b = evaluate(cert, *e.rhs, env, rep);
      if (!a || !b) return std::nullopt;
      Value v;
      v.ground = a->ground && b->ground;
      v.pieces.assign(n, {});
      for (std::size_t j = 0; j < n; ++j) {
        const std::set<long long>& x = a->pieces[j];
        const std::set<long long>& y = b->pieces[j];
        std::set<long long>& out = v.pieces[j];
        if (e.kind == PExpr::Kind::Union) {
          out = x;
          out.insert(y.begin(), y.end());
        } else if (e.kind == PExpr::Kind::Intersect) {
          for (long long k : x) {
            if (y.contains(k)) out.insert(k);
          }
        } else {
          for (long long k : x) {
            if (!y.contains(k)) out.insert(k);
          }
        }
      }
      return v;
    }
    case PExpr::Kind::Image: {
      auto a = evaluate(cert, *e.arg, env, rep);
      if (!a) return std::nullopt;
      const std::size_t sT = certSize(cert, e.region);
      Value v;
      v.ground = a->ground;
      v.pieces.assign(n, {});
      if (e.fn == "f_ID") {
        for (std::size_t j = 0; j < n; ++j) {
          for (long long k : a->pieces[j]) {
            if (k >= 0 && static_cast<std::size_t>(k) < sT) {
              v.pieces[j].insert(k);
            }
          }
        }
        return v;
      }
      auto fit = cert.fns.find(e.fn);
      if (fit == cert.fns.end()) {
        rep.error("image references fn '" + e.fn +
                  "' missing from the certificate");
        return std::nullopt;
      }
      const FnTable& ft = fit->second;
      for (std::size_t j = 0; j < n; ++j) {
        for (long long k : a->pieces[j]) {
          if (k < 0) continue;
          const auto ki = static_cast<std::size_t>(k);
          if (ft.rangeValued) {
            if (ki >= ft.runs.size()) continue;
            for (long long l = ft.runs[ki].first; l < ft.runs[ki].second;
                 ++l) {
              if (l >= 0 && static_cast<std::size_t>(l) < sT) {
                v.pieces[j].insert(l);
              }
            }
          } else {
            if (ki >= ft.points.size()) continue;
            const long long l = ft.points[ki];
            if (l >= 0 && static_cast<std::size_t>(l) < sT) {
              v.pieces[j].insert(l);
            }
          }
        }
      }
      return v;
    }
    case PExpr::Kind::Preimage: {
      auto a = evaluate(cert, *e.arg, env, rep);
      if (!a) return std::nullopt;
      const std::size_t sS = certSize(cert, e.region);
      Value v;
      v.ground = a->ground;
      v.pieces.assign(n, {});
      if (e.fn == "f_ID") {
        for (std::size_t j = 0; j < n; ++j) {
          for (long long k : a->pieces[j]) {
            if (k >= 0 && static_cast<std::size_t>(k) < sS) {
              v.pieces[j].insert(k);
            }
          }
        }
        return v;
      }
      auto fit = cert.fns.find(e.fn);
      if (fit == cert.fns.end()) {
        rep.error("preimage references fn '" + e.fn +
                  "' missing from the certificate");
        return std::nullopt;
      }
      const FnTable& ft = fit->second;
      const std::size_t dom =
          ft.rangeValued ? ft.runs.size() : ft.points.size();
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < dom && k < sS; ++k) {
          if (ft.rangeValued) {
            bool hit = false;
            for (long long l = ft.runs[k].first;
                 !hit && l < ft.runs[k].second; ++l) {
              hit = a->pieces[j].contains(l);
            }
            if (hit) v.pieces[j].insert(static_cast<long long>(k));
          } else if (a->pieces[j].contains(ft.points[k])) {
            v.pieces[j].insert(static_cast<long long>(k));
          }
        }
      }
      return v;
    }
  }
  return std::nullopt;
}

// ---- semantic checks ------------------------------------------------------

std::size_t totalElems(const Value& v) {
  std::size_t t = 0;
  for (const auto& p : v.pieces) t += p.size();
  return t;
}

void checkConjunct(const Cert& cert, const Conjunct& c, const Env& env,
                   Report& rep) {
  if (c.assumed) return;  // hypothesis, not an obligation
  auto evalOne = [&](const PExprPtr& e) { return evaluate(cert, *e, env, rep); };
  if (c.kind == Conjunct::Kind::Subset) {
    auto l = evalOne(c.lhs);
    auto r = evalOne(c.rhs);
    if (!l || !r) return;
    if (!l->ground || !r->ground) {
      ++rep.skippedConjuncts;
      return;
    }
    ++rep.checkedConjuncts;
    for (std::size_t j = 0; j < cert.pieces; ++j) {
      for (long long k : l->pieces[j]) {
        if (!r->pieces[j].contains(k)) {
          rep.error("subset violated at piece " + std::to_string(j) +
                    ", index " + std::to_string(k) + ": " + c.lhsText +
                    " <= " + c.rhsText);
          return;
        }
      }
    }
    return;
  }
  auto v = evalOne(c.expr);
  if (!v) return;
  if (!v->ground) {
    ++rep.skippedConjuncts;
    return;
  }
  ++rep.checkedConjuncts;
  const std::size_t s = certSize(cert, c.region);
  switch (c.kind) {
    case Conjunct::Kind::Part:
      for (std::size_t j = 0; j < cert.pieces; ++j) {
        for (long long k : v->pieces[j]) {
          if (k < 0 || static_cast<std::size_t>(k) >= s) {
            rep.error("PART violated: index " + std::to_string(k) +
                      " outside [0, " + std::to_string(s) + ") in " +
                      c.exprText);
            return;
          }
        }
      }
      break;
    case Conjunct::Kind::Disj: {
      std::set<long long> claimed;
      for (std::size_t j = 0; j < cert.pieces; ++j) {
        for (long long k : v->pieces[j]) {
          if (!claimed.insert(k).second) {
            rep.error("DISJ violated: index " + std::to_string(k) +
                      " in two pieces of " + c.exprText);
            return;
          }
        }
      }
      break;
    }
    case Conjunct::Kind::Comp: {
      std::set<long long> covered;
      for (const auto& p : v->pieces) covered.insert(p.begin(), p.end());
      for (std::size_t k = 0; k < s; ++k) {
        if (!covered.contains(static_cast<long long>(k))) {
          rep.error("COMP violated: index " + std::to_string(k) +
                    " of region '" + c.region + "' uncovered in " +
                    c.exprText);
          return;
        }
      }
      break;
    }
    case Conjunct::Kind::Subset:
      break;  // handled above
  }
}

void checkVocabulary(const Cert& cert, const Env& env, Report& rep) {
  auto lookup = [&](const std::string& sym) -> const Value* {
    auto it = env.find(sym);
    return it == env.end() || !it->second.ground ? nullptr : &it->second;
  };
  for (const auto& [sym, cap] : cert.capacity) {
    const Value* v = lookup(sym);
    if (v == nullptr) continue;
    for (std::size_t j = 0; j < v->pieces.size(); ++j) {
      if (v->pieces[j].size() > cap) {
        rep.error("capacity violated: '" + sym + "' piece " +
                  std::to_string(j) + " holds " +
                  std::to_string(v->pieces[j].size()) + " > " +
                  std::to_string(cap));
        break;
      }
    }
  }
  for (const auto& [sym, window] : cert.replication) {
    const Value* v = lookup(sym);
    if (v == nullptr) continue;
    auto sit = cert.symbols.find(sym);
    const std::size_t s =
        sit == cert.symbols.end() ? kMax : certSize(cert, sit->second.region);
    if (s == kMax) continue;
    const double total = static_cast<double>(totalElems(*v));
    const double base = static_cast<double>(s);
    if (window.first > 0 && total + 1e-9 < window.first * base) {
      rep.error("replication floor violated: '" + sym + "' materializes " +
                std::to_string(totalElems(*v)) + " elements, needs >= " +
                std::to_string(window.first) + " x " + std::to_string(s));
    }
    if (window.second > 0 && total > window.second * base + 1e-9) {
      rep.error("replication ceiling violated: '" + sym +
                "' materializes " + std::to_string(totalElems(*v)) +
                " elements, allows <= " + std::to_string(window.second) +
                " x " + std::to_string(s));
    }
  }
  for (const SymbolPair& p : cert.colocated) {
    const Value* a = lookup(p.symA);
    const Value* b = lookup(p.symB);
    if (a == nullptr || b == nullptr) continue;
    for (std::size_t j = 0; j < cert.pieces; ++j) {
      if (a->pieces[j] != b->pieces[j]) {
        rep.error("co-location violated at piece " + std::to_string(j) +
                  ": " + p.symA + " vs " + p.symB + " (fields " + p.fieldA +
                  ", " + p.fieldB + ")");
        break;
      }
    }
  }
  for (const SymbolPair& p : cert.antiAffine) {
    const Value* a = lookup(p.symA);
    const Value* b = lookup(p.symB);
    if (a == nullptr || b == nullptr) continue;
    for (std::size_t j = 0; j < cert.pieces; ++j) {
      bool overlap = false;
      for (long long k : a->pieces[j]) {
        if (b->pieces[j].contains(k)) {
          overlap = true;
          break;
        }
      }
      if (overlap) {
        rep.error("anti-affinity violated at piece " + std::to_string(j) +
                  ": " + p.symA + " overlaps " + p.symB + " (fields " +
                  p.fieldA + ", " + p.fieldB + ")");
        break;
      }
    }
  }
}

void collectSymbols(const PExpr& e, std::set<std::string>& out) {
  switch (e.kind) {
    case PExpr::Kind::Symbol: out.insert(e.name); break;
    case PExpr::Kind::Union:
    case PExpr::Kind::Intersect:
    case PExpr::Kind::Subtract:
      collectSymbols(*e.lhs, out);
      collectSymbols(*e.rhs, out);
      break;
    case PExpr::Kind::Image:
    case PExpr::Kind::Preimage:
      collectSymbols(*e.arg, out);
      break;
    case PExpr::Kind::Equal: break;
  }
}

void checkSolution(const Cert& cert, Report& rep) {
  // Every open symbol assigned exactly once, in dependency order.
  std::set<std::string> assigned;
  for (const auto& [sym, expr] : cert.assigns) {
    auto sit = cert.symbols.find(sym);
    if (sit == cert.symbols.end()) {
      rep.error("assign to undeclared symbol '" + sym + "'");
      continue;
    }
    if (sit->second.fixed) {
      rep.error("assign to fixed symbol '" + sym + "'");
    }
    if (!assigned.insert(sym).second) {
      rep.error("symbol '" + sym + "' assigned twice");
    }
    std::set<std::string> refs;
    collectSymbols(*expr, refs);
    for (const std::string& r : refs) {
      auto rit = cert.symbols.find(r);
      if (rit == cert.symbols.end()) {
        rep.error("assign of '" + sym + "' references undeclared '" + r +
                  "'");
      } else if (!rit->second.fixed && !assigned.contains(r)) {
        rep.error("assign of '" + sym + "' references '" + r +
                  "' before its assignment (order violates dependencies)");
      }
    }
  }
  for (const auto& [sym, decl] : cert.symbols) {
    if (!decl.fixed && !assigned.contains(sym)) {
      rep.error("open symbol '" + sym + "' has no assignment");
    }
  }

  // Evaluate assignments and check every conjunct + vocabulary constraint.
  Env env;
  for (const auto& [sym, expr] : cert.assigns) {
    auto v = evaluate(cert, *expr, env, rep);
    if (v) env[sym] = std::move(*v);
  }
  for (const Conjunct& c : cert.conjuncts) checkConjunct(cert, c, env, rep);
  checkVocabulary(cert, env, rep);

  // Plan section: the DPL program must re-derive the assigned partitions,
  // and the embedded runtime expectations must hold.
  Env dplEnv;
  for (const auto& [name, expr] : cert.dplStmts) {
    auto v = evaluate(cert, *expr, dplEnv, rep);
    if (v) dplEnv[name] = std::move(*v);
  }
  for (const auto& [sym, v] : env) {
    auto it = dplEnv.find(sym);
    if (it == dplEnv.end()) {
      if (!cert.dplStmts.empty()) {
        rep.error("assigned symbol '" + sym +
                  "' is not defined by the plan's DPL program");
      }
      continue;
    }
    if (v.ground && it->second.ground && v.pieces != it->second.pieces) {
      rep.error("plan cross-validation failed: DPL value of '" + sym +
                "' differs from the solver's assignment");
    }
  }
  auto dplLookup = [&](const std::string& name) -> const Value* {
    auto it = dplEnv.find(name);
    if (it != dplEnv.end()) return &it->second;
    return nullptr;
  };
  for (const auto& kv : cert.expectations) {
    auto get = [&](const char* key) {
      auto it = kv.find(key);
      return it == kv.end() ? std::string() : it->second;
    };
    const std::string part = get("partition");
    const Value* v = dplLookup(part);
    if (v == nullptr) {
      auto sit = cert.symbols.find(part);
      if (sit == cert.symbols.end() || !sit->second.fixed) {
        rep.error("expectation names partition '" + part +
                  "' that the plan never defines");
      }
      continue;
    }
    if (!v->ground) {
      ++rep.skippedConjuncts;
      continue;
    }
    const std::string regionName = get("region");
    const std::size_t s = certSize(cert, regionName);
    if (!regionName.empty() && s == kMax) {
      rep.error("expectation on '" + part + "' names unknown region '" +
                regionName + "'");
      continue;
    }
    if (!regionName.empty()) {
      for (const auto& piece : v->pieces) {
        for (long long k : piece) {
          if (k < 0 || static_cast<std::size_t>(k) >= s) {
            rep.error("expectation violated: '" + part + "' has index " +
                      std::to_string(k) + " outside [0, " +
                      std::to_string(s) + ")");
            break;
          }
        }
      }
    }
    if (get("disjoint") == "1") {
      std::set<long long> claimed;
      for (const auto& piece : v->pieces) {
        for (long long k : piece) {
          if (!claimed.insert(k).second) {
            rep.error("expectation violated: '" + part + "' not disjoint");
            break;
          }
        }
      }
    }
    if (get("complete") == "1" && !regionName.empty()) {
      std::set<long long> covered;
      for (const auto& piece : v->pieces) {
        covered.insert(piece.begin(), piece.end());
      }
      if (covered.size() < s) {
        rep.error("expectation violated: '" + part + "' not complete over '" +
                  regionName + "'");
      }
    }
    const std::string within = get("containedIn");
    if (!within.empty()) {
      const Value* outer = dplLookup(within);
      if (outer != nullptr && outer->ground) {
        for (std::size_t j = 0; j < cert.pieces; ++j) {
          for (long long k : v->pieces[j]) {
            if (!outer->pieces[j].contains(k)) {
              rep.error("expectation violated: '" + part +
                        "' escapes containment in '" + within + "'");
              break;
            }
          }
        }
      }
    }
    const std::string cap = get("capacity");
    if (!cap.empty()) {
      const std::size_t capN = std::stoull(cap);
      for (const auto& piece : v->pieces) {
        if (piece.size() > capN) {
          rep.error("expectation violated: '" + part + "' piece exceeds " +
                    cap + " elements");
          break;
        }
      }
    }
    const std::string repMin = get("replicationMin");
    const std::string repMax = get("replicationMax");
    if ((!repMin.empty() || !repMax.empty()) && !regionName.empty()) {
      const double total = static_cast<double>(totalElems(*v));
      const double base = static_cast<double>(s);
      if (!repMin.empty() && total + 1e-9 < std::stod(repMin) * base) {
        rep.error("expectation violated: '" + part +
                  "' below replication floor");
      }
      if (!repMax.empty() && total > std::stod(repMax) * base + 1e-9) {
        rep.error("expectation violated: '" + part +
                  "' above replication ceiling");
      }
    }
    const std::string colo = get("colocateWith");
    if (!colo.empty()) {
      const Value* other = dplLookup(colo);
      if (other != nullptr && other->ground && v->pieces != other->pieces) {
        rep.error("expectation violated: '" + part + "' not co-located with '" +
                  colo + "'");
      }
    }
    const std::string anti = get("antiAffineWith");
    if (!anti.empty()) {
      const Value* other = dplLookup(anti);
      if (other != nullptr && other->ground) {
        for (std::size_t j = 0; j < cert.pieces; ++j) {
          for (long long k : v->pieces[j]) {
            if (other->pieces[j].contains(k)) {
              rep.error("expectation violated: '" + part + "' overlaps '" +
                        anti + "' at piece " + std::to_string(j));
              break;
            }
          }
        }
      }
    }
  }
}

// ---- infeasibility replay -------------------------------------------------

std::map<std::string, std::string> parseDetail(const std::string& detail) {
  std::map<std::string, std::string> kv;
  for (const std::string& tok : splitTokens(detail)) {
    const auto eq = tok.find('=');
    if (eq != std::string::npos) kv[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return kv;
}

struct ReplayNode {
  std::size_t parent = 0;
  std::string branchedSymbol;
  std::vector<std::pair<std::string, PExprPtr>> cands;  // idx -> (sym, expr)
  std::set<std::size_t> pruned, dedup, branched;
  std::set<std::string> branchedEqualities;
  bool refuted = false, leafBad = false, exhausted = false;
  std::size_t branches = 0, backtracks = 0;
  std::size_t line = 0;
};

bool hasCompConjunct(const Cert& cert, const std::string& sym) {
  return std::any_of(cert.conjuncts.begin(), cert.conjuncts.end(),
                     [&](const Conjunct& c) {
                       return c.kind == Conjunct::Kind::Comp &&
                              c.exprText == sym;
                     });
}

bool hasDisjConjunct(const Cert& cert, const std::string& sym) {
  return std::any_of(cert.conjuncts.begin(), cert.conjuncts.end(),
                     [&](const Conjunct& c) {
                       return c.kind == Conjunct::Kind::Disj &&
                              c.exprText == sym;
                     });
}

void checkRefutation(const Cert& cert, const Event& e, Report& rep) {
  const auto kv = parseDetail(e.detail);
  auto where = [&] { return "line " + std::to_string(e.line) + ": "; };
  auto sit = cert.symbols.find(e.symbol);
  const std::size_t s =
      sit == cert.symbols.end() ? kMax : certSize(cert, sit->second.region);
  if (e.rule == "capacity-comp") {
    auto cit = cert.capacity.find(e.symbol);
    if (cit == cert.capacity.end()) {
      rep.error(where() + "capacity refutation of '" + e.symbol +
                "' without a capacity vocab entry");
      return;
    }
    if (!hasCompConjunct(cert, e.symbol)) {
      rep.error(where() + "capacity pigeonhole needs a COMP conjunct on '" +
                e.symbol + "'");
      return;
    }
    if (s == kMax || cert.pieces == 0 ||
        ceilDiv(s, cert.pieces) <= cit->second) {
      rep.error(where() + "capacity pigeonhole does not hold: ceil(" +
                std::to_string(s) + "/" + std::to_string(cert.pieces) +
                ") <= " + std::to_string(cit->second));
      return;
    }
    ++rep.rederivedJustifications;
  } else if (e.rule == "replicate-comp" || e.rule == "replicate-disj") {
    auto rit = cert.replication.find(e.symbol);
    if (rit == cert.replication.end()) {
      rep.error(where() + "replication refutation of '" + e.symbol +
                "' without a replication vocab entry");
      return;
    }
    if (s == kMax || s == 0) {
      rep.error(where() + "replication refutation needs a known non-empty "
                          "region for '" + e.symbol + "'");
      return;
    }
    if (e.rule == "replicate-comp") {
      if (!(rit->second.second > 0 && rit->second.second < 1.0) ||
          !hasCompConjunct(cert, e.symbol)) {
        rep.error(where() + "replicate-comp refutation does not hold for '" +
                  e.symbol + "'");
        return;
      }
    } else {
      if (!(rit->second.first > 1.0) || !hasDisjConjunct(cert, e.symbol)) {
        rep.error(where() + "replicate-disj refutation does not hold for '" +
                  e.symbol + "'");
        return;
      }
    }
    ++rep.rederivedJustifications;
  } else if (e.rule == "anti-self") {
    const bool selfPair = std::any_of(
        cert.antiAffine.begin(), cert.antiAffine.end(), [&](const SymbolPair& p) {
          return p.symA == e.symbol && p.symB == e.symbol;
        });
    if (!selfPair || s == kMax || s == 0 ||
        !hasCompConjunct(cert, e.symbol)) {
      rep.error(where() + "anti-self refutation does not hold for '" +
                e.symbol + "'");
      return;
    }
    ++rep.rederivedJustifications;
  } else {
    rep.warn(where() + "unknown refutation rule '" + e.rule +
             "' (not re-derived)");
    (void)kv;
  }
}

void checkPrune(const Cert& cert, const ReplayNode& node, const Event& e,
                Report& rep) {
  auto where = [&] { return "line " + std::to_string(e.line) + ": "; };
  if (e.idx >= node.cands.size()) {
    rep.error(where() + "prune of candidate " + std::to_string(e.idx) +
              " beyond the node's candidate list");
    return;
  }
  const auto& [sym, expr] = node.cands[e.idx];
  const Bounds b = boundsOf(cert, *expr);
  if (e.rule == "capacity") {
    auto cit = cert.capacity.find(sym);
    if (cit == cert.capacity.end() || b.maxPieceLo <= cit->second) {
      rep.error(where() + "capacity prune unjustified: maxPieceLo=" +
                std::to_string(b.maxPieceLo) + " for " + exprToString(*expr));
      return;
    }
    ++rep.rederivedJustifications;
  } else if (e.rule == "replicate-max" || e.rule == "replicate-min") {
    auto rit = cert.replication.find(sym);
    auto sit = cert.symbols.find(sym);
    const std::size_t s =
        sit == cert.symbols.end() ? kMax : certSize(cert, sit->second.region);
    if (rit == cert.replication.end() || s == kMax) {
      rep.error(where() + "replication prune without a vocab entry / known "
                          "region size for '" + sym + "'");
      return;
    }
    const double base = static_cast<double>(s);
    if (e.rule == "replicate-max") {
      if (!(rit->second.second > 0 &&
            static_cast<double>(b.totalLo) > rit->second.second * base)) {
        rep.error(where() + "replicate-max prune unjustified: totalLo=" +
                  std::to_string(b.totalLo) + " for " + exprToString(*expr));
        return;
      }
    } else {
      if (!(rit->second.first > 0 && b.totalHi != kMax &&
            static_cast<double>(b.totalHi) < rit->second.first * base)) {
        rep.error(where() + "replicate-min prune unjustified: totalHi=" +
                  std::to_string(b.totalHi) + " for " + exprToString(*expr));
        return;
      }
    }
    ++rep.rederivedJustifications;
  } else if (e.rule == "anti-self" || e.rule == "anti") {
    if (b.totalLo == 0) {
      rep.error(where() + "anti prune unjustified: candidate can be empty (" +
                exprToString(*expr) + ")");
      return;
    }
    ++rep.rederivedJustifications;
  } else if (e.rule == "colocate") {
    const auto kv = parseDetail(e.detail);
    auto wit = kv.find("want");
    if (wit == kv.end()) {
      rep.warn(where() + "colocate prune without a want= justification");
      return;
    }
    // The justification must actually differ from the pruned candidate
    // (otherwise the identical expression was wrongly removed). 'want' was
    // emitted with spaces, which token parsing strips; compare prefixes.
    const std::string candText = exprToString(*expr);
    if (candText == e.detail.substr(e.detail.find("want=") + 5)) {
      rep.error(where() + "colocate prune removed the matching expression " +
                candText);
      return;
    }
    ++rep.rederivedJustifications;
  } else {
    rep.warn(where() + "unknown prune rule '" + e.rule +
             "' (not re-derived)");
  }
}

void checkInfeasible(const Cert& cert, Report& rep) {
  // Only the final attempt proves exhaustion; earlier attempts ended on
  // their restart budgets.
  std::size_t start = 0;
  for (std::size_t i = 0; i < cert.trail.size(); ++i) {
    if (cert.trail[i].type == Event::Type::Restart) start = i + 1;
  }
  std::map<std::size_t, ReplayNode> nodes;
  for (std::size_t i = start; i < cert.trail.size(); ++i) {
    const Event& e = cert.trail[i];
    auto where = [&] { return "line " + std::to_string(e.line) + ": "; };
    switch (e.type) {
      case Event::Type::Restart: break;
      case Event::Type::Node: {
        ReplayNode n;
        n.parent = e.parent;
        n.branchedSymbol = e.symbol;
        n.line = e.line;
        nodes[e.node] = std::move(n);
        break;
      }
      case Event::Type::Cand: {
        ReplayNode& n = nodes[e.node];
        if (e.idx != n.cands.size()) {
          rep.error(where() + "candidate indices out of order at node " +
                    std::to_string(e.node));
        }
        n.cands.emplace_back(e.symbol, e.expr);
        break;
      }
      case Event::Type::Dedup: {
        ReplayNode& n = nodes[e.node];
        if (e.idx >= n.cands.size()) {
          rep.error(where() + "dedup beyond the candidate list");
          break;
        }
        const std::string eq = n.cands[e.idx].first + " = " +
                               exprToString(*n.cands[e.idx].second);
        if (!n.branchedEqualities.contains(eq)) {
          rep.error(where() + "dedup of '" + eq +
                    "' without a prior branch on the same equality");
        }
        n.dedup.insert(e.idx);
        break;
      }
      case Event::Type::Prune: {
        ReplayNode& n = nodes[e.node];
        checkPrune(cert, n, e, rep);
        if (!n.pruned.insert(e.idx).second) {
          rep.error(where() + "candidate " + std::to_string(e.idx) +
                    " pruned twice");
        }
        break;
      }
      case Event::Type::Refute:
        checkRefutation(cert, e, rep);
        nodes[e.node].refuted = true;
        break;
      case Event::Type::Branch: {
        ReplayNode& n = nodes[e.node];
        if (e.idx >= n.cands.size()) {
          rep.error(where() + "branch beyond the candidate list");
          break;
        }
        if (n.pruned.contains(e.idx)) {
          rep.error(where() + "branch on pruned candidate " +
                    std::to_string(e.idx));
        }
        n.branched.insert(e.idx);
        n.branchedEqualities.insert(n.cands[e.idx].first + " = " +
                                    exprToString(*n.cands[e.idx].second));
        ++n.branches;
        break;
      }
      case Event::Type::LeafOk:
        rep.error(where() + "infeasibility certificate contains a "
                            "successful leaf");
        break;
      case Event::Type::LeafBad:
        nodes[e.node].leafBad = true;
        break;
      case Event::Type::Backtrack:
        ++nodes[e.node].backtracks;
        break;
      case Event::Type::Exhausted:
        nodes[e.node].exhausted = true;
        break;
      case Event::Type::Budget:
        rep.error(where() + "final attempt was truncated by the step "
                            "budget; the trail proves nothing");
        break;
    }
  }
  if (nodes.empty()) {
    rep.error("infeasibility certificate records no search nodes");
    return;
  }
  for (const auto& [id, n] : nodes) {
    auto where = [&, id = id] {
      return "node " + std::to_string(id) + " (line " +
             std::to_string(n.line) + "): ";
    };
    if (n.refuted || n.leafBad) continue;  // decisively failed
    if (!n.exhausted) {
      rep.error(where() + "neither refuted, failed as a leaf, nor "
                          "exhausted");
      continue;
    }
    if (n.branches != n.backtracks) {
      rep.error(where() + std::to_string(n.branches) + " branches but " +
                std::to_string(n.backtracks) + " backtracks");
    }
    for (std::size_t idx = 0; idx < n.cands.size(); ++idx) {
      if (!n.pruned.contains(idx) && !n.dedup.contains(idx) &&
          !n.branched.contains(idx)) {
        rep.error(where() + "candidate " + std::to_string(idx) + " (" +
                  n.cands[idx].first + " = " +
                  exprToString(*n.cands[idx].second) +
                  ") was never pruned, deduplicated or branched — the "
                  "search was not exhaustive");
      }
    }
  }
}

// ---- driver ---------------------------------------------------------------

bool checkFile(const std::string& path, bool strict) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "proof_check: cannot open '" << path << "'\n";
    return false;
  }
  Cert cert;
  Report rep;
  if (parseCert(in, cert, rep)) {
    if (cert.pieces == 0) rep.warn("certificate declares pieces=0");
    if (!cert.sawBeginSearch) rep.error("missing 'begin search'");
    if (cert.hasSolution == cert.hasInfeasible) {
      rep.error("certificate must end in exactly one verdict "
                "(solution xor infeasible)");
    } else if (cert.hasSolution) {
      checkSolution(cert, rep);
    } else {
      checkInfeasible(cert, rep);
    }
    for (const auto& [id, ft] : cert.fns) {
      const std::size_t dom = certSize(cert, ft.domain);
      const std::size_t n = ft.rangeValued ? ft.runs.size()
                                           : ft.points.size();
      if (dom != kMax && n != dom) {
        rep.error("fn '" + id + "' table has " + std::to_string(n) +
                  " entries for a domain of " + std::to_string(dom));
      }
    }
  }
  if (strict) {
    for (const std::string& w : rep.warnings) rep.errors.push_back(w);
    rep.warnings.clear();
    if (rep.skippedConjuncts > 0) {
      rep.errors.push_back(std::to_string(rep.skippedConjuncts) +
                           " conjunct(s)/expectation(s) skipped as "
                           "conditional on external hypotheses");
    }
  }
  for (const std::string& w : rep.warnings) {
    std::cerr << path << ": warning: " << w << "\n";
  }
  if (!rep.errors.empty()) {
    for (const std::string& e : rep.errors) {
      std::cerr << path << ": " << e << "\n";
    }
    return false;
  }
  std::cout << "OK: " << path << " verdict="
            << (cert.hasSolution ? "solution" : "infeasible")
            << " lines=" << cert.lineCount
            << " checked=" << rep.checkedConjuncts
            << " skipped=" << rep.skippedConjuncts
            << " rederived=" << rep.rederivedJustifications << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: proof_check [--strict] cert.dprf...\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: proof_check [--strict] cert.dprf...\n";
    return 2;
  }
  bool ok = true;
  for (const std::string& f : files) ok = checkFile(f, strict) && ok;
  return ok ? 0 : 1;
}
