// bench_check — CI regression gate for the dpl_ops microbenchmarks.
//
// Usage: bench_check <baseline.json> <current.json> [tolerance]
//
// Both inputs are JSON-lines files as emitted by bench/dpl_ops_bench: one
// object per row with "bench", "op", "ms" and shape keys ("n", "pieces",
// "variant", "mode", ...). Rows are matched on every string/number key
// except "ms", "threads" (runner-dependent), and the measured outputs
// ("runs", "card"). Only deterministic-timing rows participate: serial-mode
// dpl rows and the single-threaded set_algebra rows; "parallel" rows depend
// on the runner's core count and are skipped.
//
// Repeated rows with the same identity are collapsed to their fastest
// sample on BOTH sides, so CI can concatenate several quick runs into the
// current file and gate on best-of-N — scheduling noise slows a sample
// down, never speeds it up, so min-vs-min is the stable comparison. A row
// regresses when current_ms > baseline_ms * (1 + tolerance) AND the
// absolute slowdown exceeds a small noise floor (100us) — the band keeps
// sub-microsecond rows from flapping on noisy shared runners. The current
// file may be a subset of the baseline (the CI quick run), but at least one
// row must match, and every current row must exist in the baseline so a
// renamed op cannot silently drop out of the gate.
//
// Exits 0 when clean; prints one line per violation and exits 1 otherwise.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace {

constexpr double kNoiseFloorMs = 0.1;

struct Row {
  std::string key;  // canonical identity: every field except the measurements
  double ms = 0;
};

bool eligible(const dpart::json::Value& obj) {
  const dpart::json::Value* mode = obj.find("mode");
  if (mode != nullptr && mode->str != "serial") return false;
  return obj.has("bench") && obj.has("op") && obj.has("ms");
}

std::string identityOf(const dpart::json::Value& obj) {
  // Ordered map so key order in the file doesn't matter.
  std::map<std::string, std::string> parts;
  for (const auto& [k, v] : obj.members) {
    if (k == "ms" || k == "threads" || k == "runs" || k == "card") continue;
    std::ostringstream os;
    if (v.isString()) {
      os << v.str;
    } else if (v.isNumber()) {
      os << v.number;
    }
    parts[k] = os.str();
  }
  std::ostringstream os;
  for (const auto& [k, v] : parts) os << k << '=' << v << ' ';
  return os.str();
}

std::vector<Row> load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "bench_check: cannot open '" << path << "'\n";
    std::exit(2);
  }
  std::vector<Row> rows;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    dpart::json::Value obj;
    try {
      obj = dpart::json::parse(line);
    } catch (const dpart::Error& e) {
      std::cerr << "bench_check: " << path << ':' << lineNo << ": "
                << e.what() << '\n';
      std::exit(2);
    }
    if (!obj.isObject() || !eligible(obj)) continue;
    rows.push_back(Row{identityOf(obj), obj.at("ms").number});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: bench_check <baseline.json> <current.json> "
                 "[tolerance]\n";
    return 2;
  }
  const double tolerance = argc == 4 ? std::stod(argv[3]) : 0.10;

  std::map<std::string, double> baseline;
  for (const Row& r : load(argv[1])) {
    // Keep the fastest baseline sample per identity (repeated rows).
    auto [it, inserted] = baseline.emplace(r.key, r.ms);
    if (!inserted && r.ms < it->second) it->second = r.ms;
  }

  std::map<std::string, double> current;
  for (const Row& r : load(argv[2])) {
    // Best-of-N: keep the fastest current sample per identity as well.
    auto [it, inserted] = current.emplace(r.key, r.ms);
    if (!inserted && r.ms < it->second) it->second = r.ms;
  }

  int regressions = 0;
  int unmatched = 0;
  int compared = 0;
  for (const auto& [key, ms] : current) {
    const Row r{key, ms};
    const auto it = baseline.find(r.key);
    if (it == baseline.end()) {
      std::cerr << "bench_check: no baseline row for: " << r.key << '\n';
      ++unmatched;
      continue;
    }
    ++compared;
    const double limit = it->second * (1.0 + tolerance);
    if (r.ms > limit && r.ms - it->second > kNoiseFloorMs) {
      std::cerr << "bench_check: REGRESSION " << r.key << ": " << r.ms
                << " ms vs baseline " << it->second << " ms (limit " << limit
                << " ms)\n";
      ++regressions;
    }
  }

  if (compared == 0) {
    std::cerr << "bench_check: no comparable rows between '" << argv[1]
              << "' and '" << argv[2] << "'\n";
    return 2;
  }
  std::cout << "bench_check: " << compared << " row(s) compared, "
            << regressions << " regression(s), " << unmatched
            << " unmatched\n";
  return (regressions > 0 || unmatched > 0) ? 1 : 0;
}
