// dpart-serve: the partitioning-as-a-service daemon (docs/service.md).
//
// Binds an AF_UNIX or loopback-TCP listening socket, serves parallelize
// requests through the shared plan cache until a client sends a Shutdown
// frame (or SIGINT/SIGTERM arrives), then prints the service metrics
// rollup and optionally writes a Chrome trace of every request served.
//
//   dpart-serve --unix /tmp/dpart.sock
//   dpart-serve --tcp 7070 --workers 8 --trace service_trace.json

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.hpp"
#include "support/trace.hpp"

namespace {

dpart::service::PlanServer* g_server = nullptr;

void onSignal(int) {
  // async-signal-safe enough for a daemon: stop() only flips a flag and
  // shuts the listen socket down from the handler's perspective (the full
  // join happens on the main thread after waitForStopRequest returns).
  if (g_server != nullptr) g_server->requestStop();
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--unix PATH | --tcp PORT] [--workers N] [--queue N]\n"
      "          [--cache N] [--trace FILE] [--print-port]\n"
      "\n"
      "  --unix PATH    listen on an AF_UNIX socket at PATH\n"
      "  --tcp PORT     listen on loopback TCP (0 = kernel-assigned)\n"
      "  --workers N    concurrent compile workers (default 4)\n"
      "  --queue N      admission queue capacity (default 256)\n"
      "  --cache N      plan cache capacity in entries (default 1024)\n"
      "  --trace FILE   write a Chrome trace of served requests to FILE\n"
      "  --print-port   print the bound TCP port to stdout and flush\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  dpart::service::ServerOptions opts;
  std::string traceFile;
  bool printPort = false;
  bool haveEndpoint = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      opts.unixPath = next();
      haveEndpoint = true;
    } else if (arg == "--tcp") {
      opts.tcpPort = static_cast<std::uint16_t>(std::atoi(next()));
      haveEndpoint = true;
    } else if (arg == "--workers") {
      opts.workers = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--queue") {
      opts.queueCapacity = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--cache") {
      opts.cacheCapacity = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--trace") {
      traceFile = next();
    } else if (arg == "--print-port") {
      printPort = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (!haveEndpoint) {
    usage(argv[0]);
    return 2;
  }

  dpart::Tracer tracer;
  if (!traceFile.empty()) {
    tracer.enable();
    opts.tracer = &tracer;
  }

  try {
    dpart::service::PlanServer server(std::move(opts));
    server.start();
    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    if (server.unixPath().empty()) {
      std::fprintf(stderr, "dpart-serve: listening on 127.0.0.1:%u\n",
                   unsigned(server.port()));
      if (printPort) {
        std::printf("%u\n", unsigned(server.port()));
        std::fflush(stdout);
      }
    } else {
      std::fprintf(stderr, "dpart-serve: listening on %s\n",
                   server.unixPath().c_str());
    }

    server.waitForStopRequest();
    g_server = nullptr;
    server.stop();

    if (!traceFile.empty()) {
      tracer.writeChromeTrace(traceFile);
      std::fprintf(stderr, "dpart-serve: trace written to %s\n",
                   traceFile.c_str());
    }
    std::fprintf(stderr, "dpart-serve: final stats\n%s\n",
                 server.statsJson("").c_str());
    return 0;
  } catch (const dpart::Error& e) {
    std::fprintf(stderr, "dpart-serve: fatal: %s\n", e.what());
    return 1;
  }
}
