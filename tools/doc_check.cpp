// doc_check — CI gate for the repository's documentation.
//
// Usage: doc_check <repo-root>
//
// Walks every Markdown file in the repository (skipping build trees) and
// enforces two invariants, so the docs cannot silently rot as the code
// moves:
//
//   1. Every relative Markdown link [text](target) resolves to an existing
//      file or directory. External links (http/https/mailto) and pure
//      anchors (#...) are ignored; fragments are stripped before checking.
//
//   2. Every repo path the docs mention — `src/...`, `docs/...`,
//      `tests/...`, `bench/...`, `examples/...`, `tools/...` tokens in
//      prose, diagrams or code fences, and every `#include "..."` line in a
//      fenced snippet — names a real file or directory (a bare `foo/bar`
//      also matches foo/bar.cpp or foo/bar.hpp, so diagrams may cite a
//      translation unit by stem). `build/...` paths are exempt: they only
//      exist after a build.
//
//   3. Every `ns::Symbol` reference in inline code spans of docs/ files
//      must occur somewhere in the src/ tree, so renamed APIs cannot leave
//      stale mentions behind.
//
// Exits 0 when clean; prints one line per violation and exits 1 otherwise.

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line;
  std::string what;
};

std::vector<Violation> violations;

void report(const fs::path& file, std::size_t line, const std::string& what) {
  violations.push_back({file.string(), line, what});
}

std::string readFile(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool skippedDir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == ".claude" || name.rfind("build", 0) == 0;
}

bool isExternalLink(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0 || target.rfind("#", 0) == 0;
}

/// A repo path exists as given, or as the stem of a translation unit.
bool repoPathExists(const fs::path& root, std::string token) {
  while (!token.empty() &&
         (token.back() == '.' || token.back() == ',' || token.back() == ':' ||
          token.back() == ';' || token.back() == ')')) {
    token.pop_back();
  }
  if (token.empty()) return true;
  const fs::path p = root / token;
  return fs::exists(p) || fs::exists(p.string() + ".cpp") ||
         fs::exists(p.string() + ".hpp");
}

bool pathChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '/' || c == '.' || c == '-';
}

/// Checks [text](target) links outside code fences.
void checkLinks(const fs::path& root, const fs::path& file,
                const std::vector<std::string>& lines) {
  bool inFence = false;
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const std::string& line = lines[ln];
    if (line.rfind("```", 0) == 0) {
      inFence = !inFence;
      continue;
    }
    if (inFence) continue;
    for (std::size_t i = 0; i + 1 < line.size(); ++i) {
      if (line[i] != ']' || line[i + 1] != '(') continue;
      const std::size_t close = line.find(')', i + 2);
      if (close == std::string::npos) continue;
      std::string target = line.substr(i + 2, close - i - 2);
      if (target.empty() || isExternalLink(target)) continue;
      const std::size_t frag = target.find('#');
      if (frag != std::string::npos) target = target.substr(0, frag);
      if (target.empty()) continue;
      const fs::path resolved = file.parent_path() / target;
      if (!fs::exists(resolved)) {
        report(file, ln + 1, "broken link: (" + target + ")");
      }
      static_cast<void>(root);
    }
  }
}

/// Checks every src/tests/docs/bench/examples/tools path token, anywhere in
/// the file (prose, tables, diagrams and code fences alike).
void checkPathTokens(const fs::path& root, const fs::path& file,
                     const std::vector<std::string>& lines) {
  static const std::vector<std::string> kRoots = {
      "src/", "docs/", "tests/", "bench/", "examples/", "tools/"};
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const std::string& line = lines[ln];
    for (const std::string& prefix : kRoots) {
      for (std::size_t pos = line.find(prefix); pos != std::string::npos;
           pos = line.find(prefix, pos + 1)) {
        // Reject mid-path matches like build/bench/ or ./src (the latter is
        // fine: "./" still names the repo root in our docs).
        if (pos > 0 && (pathChar(line[pos - 1]) || line[pos - 1] == '/')) {
          continue;
        }
        std::size_t end = pos;
        while (end < line.size() && pathChar(line[end])) ++end;
        const std::string token = line.substr(pos, end - pos);
        if (!repoPathExists(root, token)) {
          report(file, ln + 1, "stale path: " + token);
        }
      }
    }
  }
}

/// In docs/: every #include "..." inside a fence must name a real header,
/// and every `ns::Symbol` inline-code mention must occur in src/.
void checkDocsSnippets(const fs::path& root, const fs::path& file,
                       const std::vector<std::string>& lines,
                       const std::string& srcCorpus) {
  bool inFence = false;
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const std::string& line = lines[ln];
    if (line.rfind("```", 0) == 0) {
      inFence = !inFence;
      continue;
    }
    if (inFence) {
      const std::size_t inc = line.find("#include \"");
      if (inc != std::string::npos) {
        const std::size_t start = inc + 10;
        const std::size_t end = line.find('"', start);
        if (end != std::string::npos) {
          const std::string header = line.substr(start, end - start);
          if (!fs::exists(root / "src" / header)) {
            report(file, ln + 1, "snippet includes missing header: " + header);
          }
        }
      }
      continue;
    }
    // Inline code spans: `...::...`.
    for (std::size_t tick = line.find('`'); tick != std::string::npos;
         tick = line.find('`', tick + 1)) {
      const std::size_t close = line.find('`', tick + 1);
      if (close == std::string::npos) break;
      const std::string span = line.substr(tick + 1, close - tick - 1);
      tick = close;
      const std::size_t sep = span.find("::");
      if (sep == std::string::npos) continue;
      // The identifier after the last :: is the symbol to look up.
      std::size_t idStart = span.rfind("::") + 2;
      std::size_t idEnd = idStart;
      while (idEnd < span.size() &&
             (std::isalnum(static_cast<unsigned char>(span[idEnd])) != 0 ||
              span[idEnd] == '_')) {
        ++idEnd;
      }
      const std::string id = span.substr(idStart, idEnd - idStart);
      if (id.empty()) continue;
      if (srcCorpus.find(id) == std::string::npos) {
        report(file, ln + 1, "unknown symbol in docs: `" + span + "`");
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: doc_check <repo-root>\n";
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::exists(root / "README.md")) {
    std::cerr << "doc_check: " << root << " does not look like the repo root\n";
    return 2;
  }

  // Concatenate src/ (headers and sources) once for symbol lookups.
  std::string srcCorpus;
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    srcCorpus += readFile(entry.path());
  }

  std::size_t files = 0;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && skippedDir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file() || it->path().extension() != ".md") continue;
    ++files;
    const std::string text = readFile(it->path());
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) lines.push_back(cur);

    checkLinks(root, it->path(), lines);
    checkPathTokens(root, it->path(), lines);
    const fs::path rel = fs::relative(it->path(), root);
    if (!rel.empty() && rel.begin()->string() == "docs") {
      checkDocsSnippets(root, it->path(), lines, srcCorpus);
    }
  }

  for (const Violation& v : violations) {
    std::cerr << v.file << ":" << v.line << ": " << v.what << "\n";
  }
  if (violations.empty()) {
    std::cout << "doc_check: " << files << " Markdown files clean\n";
    return 0;
  }
  std::cerr << "doc_check: " << violations.size() << " violation(s) in "
            << files << " files\n";
  return 1;
}
