// Validates a Chrome trace_event JSON produced by dpart::Tracer — the CI
// trace-smoke gate. Checks that the document parses, that every event
// carries the required Chrome fields, that Begin/End events balance per
// thread, that timestamps never run backwards within a thread, and that
// every span name passed as an extra argument appears at least once.
//
// Usage: trace_check <trace.json> [required-span-name...]
// Exit 0 on a well-formed trace, 1 with a diagnostic otherwise.

#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/json.hpp"

namespace {

int fail(const std::string& what) {
  std::cerr << "trace_check: " << what << '\n';
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: trace_check <trace.json> [required-span-name...]\n";
    return 2;
  }

  std::ifstream in(argv[1], std::ios::binary);
  if (!in.good()) return fail(std::string("cannot open ") + argv[1]);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());

  dpart::json::Value doc;
  try {
    doc = dpart::json::parse(text);
  } catch (const dpart::Error& e) {
    return fail(e.what());
  }

  if (!doc.isObject() || !doc.has("traceEvents")) {
    return fail("top-level object with a traceEvents array expected");
  }
  const dpart::json::Value& events = doc.at("traceEvents");
  if (!events.isArray()) return fail("traceEvents is not an array");
  if (events.items.empty()) return fail("traceEvents is empty");

  std::map<double, std::vector<std::string>> openStacks;  // tid -> span names
  std::map<double, double> lastTs;                        // tid -> microseconds
  std::set<std::string> seenNames;
  std::size_t index = 0;
  for (const dpart::json::Value& e : events.items) {
    const std::string at = " (event " + std::to_string(index++) + ")";
    if (!e.isObject()) return fail("event is not an object" + at);
    for (const char* key : {"ph", "ts", "pid", "tid", "cat"}) {
      if (!e.has(key)) {
        return fail("event missing required key '" + std::string(key) + "'" +
                    at);
      }
    }
    if (!e.at("ph").isString() || e.at("ph").str.size() != 1) {
      return fail("ph is not a single-character string" + at);
    }
    const char ph = e.at("ph").str[0];
    if (ph != 'B' && ph != 'E' && ph != 'i' && ph != 'C') {
      return fail(std::string("unexpected phase '") + ph + "'" + at);
    }
    if (!e.at("ts").isNumber()) return fail("ts is not a number" + at);
    const double tid = e.at("tid").number;
    const double ts = e.at("ts").number;
    if (lastTs.contains(tid) && ts < lastTs[tid]) {
      return fail("timestamps run backwards on tid " +
                  std::to_string(static_cast<long long>(tid)) + at);
    }
    lastTs[tid] = ts;

    if (ph != 'E') {
      if (!e.has("name") || !e.at("name").isString()) {
        return fail("non-End event missing its name" + at);
      }
      seenNames.insert(e.at("name").str);
    }
    if (ph == 'B') {
      openStacks[tid].push_back(e.has("name") ? e.at("name").str : "");
    } else if (ph == 'E') {
      if (openStacks[tid].empty()) {
        return fail("End with no open span on tid " +
                    std::to_string(static_cast<long long>(tid)) + at);
      }
      openStacks[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : openStacks) {
    if (!stack.empty()) {
      return fail("span '" + stack.back() + "' never closed on tid " +
                  std::to_string(static_cast<long long>(tid)));
    }
  }

  for (int i = 2; i < argc; ++i) {
    if (!seenNames.contains(argv[i])) {
      return fail("required span '" + std::string(argv[i]) +
                  "' not found in the trace");
    }
  }

  std::cout << "trace_check: OK — " << events.items.size() << " events, "
            << openStacks.size() << " thread(s), " << seenNames.size()
            << " distinct names\n";
  return 0;
}
