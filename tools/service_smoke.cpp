// service_smoke: CI smoke client for dpart-serve (docs/service.md).
//
// Hammers a running plan server with N concurrent clients (default 64)
// spread over four tenants — plus one hostile client that writes a
// malformed frame — then asserts through the stats endpoint that every
// well-formed request was served, the cross-tenant plan cache got hits,
// and every response carried the identical DPL program. Exits nonzero on
// any violation, so CI can gate on it directly.
//
//   dpart-serve --tcp 0 --print-port > port.txt &
//   service_smoke --tcp $(cat port.txt) --clients 64 --shutdown

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ir/ir.hpp"
#include "service/client.hpp"
#include "support/framing.hpp"

namespace {

using namespace dpart;
using namespace dpart::service;

struct Endpoint {
  std::string unixPath;
  std::uint16_t tcpPort = 0;
};

PlanClient connectWithRetry(const Endpoint& ep, int attempts = 100) {
  for (int i = 0;; ++i) {
    try {
      return ep.unixPath.empty() ? PlanClient::connectTcp(ep.tcpPort)
                                 : PlanClient::connectUnix(ep.unixPath);
    } catch (const TransportError&) {
      if (i >= attempts) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

PlanRequest makeRequest(const std::string& tenant) {
  PlanRequest req;
  req.tenant = tenant;
  req.pieces = 8;

  RegionShape particles;
  particles.name = "Particles";
  particles.size = 4096;
  particles.fields.push_back(FieldShape{"cell", region::FieldType::Idx});
  particles.fields.push_back(FieldShape{"pos", region::FieldType::F64});
  RegionShape cells;
  cells.name = "Cells";
  cells.size = 256;
  cells.fields.push_back(FieldShape{"vel", region::FieldType::F64});
  req.world.regions = {particles, cells};

  FnShape cellOf;
  cellOf.id = "fld:Particles.cell";
  cellOf.kind = region::FnKind::FieldPtr;
  cellOf.domainRegion = "Particles";
  cellOf.rangeRegion = "Cells";
  cellOf.field = "cell";
  req.world.fns = {cellOf};

  ir::LoopBuilder b("update", "p", "Particles");
  b.loadIdx("c", "Particles", "cell", "p");
  b.loadF64("v", "Cells", "vel", "c");
  b.compute("dp", {"v"}, [](auto v) { return v[0]; });
  b.reduce("Particles", "pos", "p", "dp");
  req.program.name = "service_smoke";
  req.program.loops.push_back(b.build());
  return req;
}

/// One hostile connection: raw garbage instead of a DPMG frame. The server
/// must drop only this connection.
void sendMalformedFrame(const Endpoint& ep) {
  if (!ep.unixPath.empty()) {
    // The TCP path covers CI; skip the hand-rolled unix connect here.
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ep.tcpPort);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const char garbage[] = "NOPE this is not a frame";
    (void)!::write(fd, garbage, sizeof(garbage));
  }
  ::close(fd);
}

/// Pulls a counter value out of the stats JSON
/// ({"name":"<name>","type":"counter","value":N}).
long statsCounter(const std::string& json, const std::string& name) {
  const std::string needle = "\"name\":\"" + name + "\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return -1;
  const std::size_t value = json.find("\"value\":", at);
  if (value == std::string::npos) return -1;
  return std::atol(json.c_str() + value + 8);
}

}  // namespace

int main(int argc, char** argv) {
  Endpoint ep;
  int clients = 64;
  bool shutdown = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--unix PATH | --tcp PORT] [--clients N] "
                     "[--shutdown]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      ep.unixPath = next();
    } else if (arg == "--tcp") {
      ep.tcpPort = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--clients") {
      clients = std::atoi(next());
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      std::fprintf(stderr, "service_smoke: unknown argument %s\n",
                   arg.c_str());
      return 2;
    }
  }
  if (ep.unixPath.empty() && ep.tcpPort == 0) {
    std::fprintf(stderr, "service_smoke: need --unix PATH or --tcp PORT\n");
    return 2;
  }

  try {
    // Wait for the server, then warm the cache with one canonical request
    // so the concurrent wave below is mostly hits.
    PlanClient warmup = connectWithRetry(ep);
    const PlanResponse first = warmup.parallelize(makeRequest("tenant-0"));
    std::fprintf(stderr,
                 "service_smoke: warmed cache, key=%llu coldMs=%.2f\n",
                 static_cast<unsigned long long>(first.cacheKey),
                 first.serverMs);

    std::atomic<int> failures{0};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int i = 0; i < clients; ++i) {
      threads.emplace_back([&, i] {
        try {
          PlanClient c = connectWithRetry(ep);
          const PlanResponse r =
              c.parallelize(makeRequest("tenant-" + std::to_string(i % 4)));
          if (r.dpl != first.dpl || r.cacheKey != first.cacheKey) {
            mismatches.fetch_add(1);
          }
        } catch (const Error& e) {
          std::fprintf(stderr, "service_smoke: client %d failed: %s\n", i,
                       e.what());
          failures.fetch_add(1);
        }
      });
    }
    // The hostile client rides along with the legitimate wave.
    std::thread hostile([&] { sendMalformedFrame(ep); });
    for (std::thread& t : threads) t.join();
    hostile.join();

    const std::string stats = warmup.stats();
    const long requests = statsCounter(stats, "service.requests");
    const long hits = statsCounter(stats, "service.cache.hits");
    std::fprintf(stderr,
                 "service_smoke: %d clients done, requests=%ld hits=%ld "
                 "failures=%d mismatches=%d\n",
                 clients, requests, hits, failures.load(),
                 mismatches.load());

    bool ok = true;
    if (failures.load() != 0) {
      std::fprintf(stderr, "service_smoke: FAIL: %d client failures\n",
                   failures.load());
      ok = false;
    }
    if (mismatches.load() != 0) {
      std::fprintf(stderr,
                   "service_smoke: FAIL: %d plan mismatches (cached plans "
                   "must be identical)\n",
                   mismatches.load());
      ok = false;
    }
    if (requests < clients + 1) {
      std::fprintf(stderr,
                   "service_smoke: FAIL: server counted %ld requests, "
                   "expected >= %d\n",
                   requests, clients + 1);
      ok = false;
    }
    if (hits < 1) {
      std::fprintf(stderr,
                   "service_smoke: FAIL: no plan-cache hits recorded\n");
      ok = false;
    }

    if (shutdown) warmup.shutdownServer();
    return ok ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "service_smoke: fatal: %s\n", e.what());
    return 1;
  }
}
