// Randomized differential suite for the hybrid (run/bitmap chunked) IndexSet
// representation: every operation is checked against a naive sorted-vector
// reference model across sparse, dense, and adversarial input shapes, plus
// directed cases at the container-switch crossover and snapshot round-trips
// of both container kinds.

#include "region/index_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "region/snapshot.hpp"
#include "support/rng.hpp"
#include "support/serialize.hpp"

namespace dpart::region {
namespace {

// Inside TEST bodies the unqualified name Run resolves to the inherited
// testing::Test::Run() member, so run-list construction lives in these
// namespace-scope helpers.
using RunVec = std::vector<Run>;

Run makeRun(Index lo, Index hi) { return Run{lo, hi}; }

/// Singleton runs {i, i+1} for i in [lo, hi) stepping by `step`.
RunVec singletons(Index lo, Index hi, Index step) {
  RunVec out;
  for (Index i = lo; i < hi; i += step) out.push_back(Run{i, i + 1});
  return out;
}

// ---- Naive reference model: a sorted vector of indices ----

using Model = std::vector<Index>;

Model modelUnion(const Model& a, const Model& b) {
  Model out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

Model modelIntersect(const Model& a, const Model& b) {
  Model out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

Model modelSubtract(const Model& a, const Model& b) {
  Model out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool modelIncludes(const Model& a, const Model& b) {
  return std::includes(a.begin(), a.end(), b.begin(), b.end());
}

bool modelIntersects(const Model& a, const Model& b) {
  return !modelIntersect(a, b).empty();
}

std::size_t modelRunCount(const Model& m) {
  std::size_t runs = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (i == 0 || m[i] != m[i - 1] + 1) ++runs;
  }
  return runs;
}

/// Full structural audit of one set against its model: cardinality, logical
/// run count, ordering of runs(), per-chunk canonicality (container choice
/// must match the crossover rule), and point membership at the edges.
void auditAgainstModel(const IndexSet& s, const Model& m) {
  ASSERT_EQ(s.size(), static_cast<Index>(m.size()));
  ASSERT_EQ(s.toVector(), m);
  ASSERT_EQ(s.runCount(), modelRunCount(m));
  // runs() must be the canonical (sorted, disjoint, non-adjacent) sequence
  // covering exactly size() elements.
  Index covered = 0;
  const auto runs = s.runs();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ASSERT_LT(runs[i].lo, runs[i].hi);
    if (i > 0) ASSERT_LT(runs[i - 1].hi, runs[i].lo);
    covered += runs[i].size();
  }
  ASSERT_EQ(covered, s.size());
  ASSERT_EQ(runs.size(), s.runCount());
  // Canonical container rule: every chunk past the crossover is a bitmap,
  // everything at or below it is runs.
  s.visitChunks([](const IndexSet::ChunkView& c) {
    if (!c.words.empty()) {
      ASSERT_TRUE(c.runs.empty());
      ASSERT_EQ(c.words.size(), detail::kChunkWords);
    } else {
      ASSERT_FALSE(c.runs.empty());
      ASSERT_LE(c.runs.size(), detail::kRunCrossover);
    }
  });
  if (!m.empty()) {
    ASSERT_EQ(s.lowerBound(), m.front());
    ASSERT_EQ(s.upperBound(), m.back() + 1);
    ASSERT_TRUE(s.contains(m.front()));
    ASSERT_TRUE(s.contains(m.back()));
    ASSERT_FALSE(s.contains(m.front() - 1));
    ASSERT_FALSE(s.contains(m.back() + 1));
  }
}

// ---- Random input shapes ----

enum class Shape { Sparse, Dense, Blocks, AltSingles, Interval };

Model randomModel(Rng& rng, Shape shape, Index universe) {
  Model m;
  switch (shape) {
    case Shape::Sparse:
      for (Index i = 0; i < universe; ++i) {
        if (rng.chance(1.0 / 64)) m.push_back(i);
      }
      break;
    case Shape::Dense:
      for (Index i = 0; i < universe; ++i) {
        if (rng.chance(0.5)) m.push_back(i);
      }
      break;
    case Shape::Blocks: {
      Index i = 0;
      while (i < universe) {
        const Index len = rng.range(1, 200);
        const Index hi = std::min(universe, i + len);
        if (rng.chance(0.5)) {
          for (Index k = i; k < hi; ++k) m.push_back(k);
        }
        i = hi;
      }
      break;
    }
    case Shape::AltSingles: {
      // Adversarial: alternating singletons, worst case for run containers
      // (maximal run count) — must flip every touched chunk to bitmap.
      const Index phase = rng.range(0, 2);
      for (Index i = phase; i < universe; i += 2) m.push_back(i);
      break;
    }
    case Shape::Interval: {
      const Index lo = rng.range(0, universe);
      const Index hi = rng.range(lo, universe + 1);
      for (Index i = lo; i < hi; ++i) m.push_back(i);
      break;
    }
  }
  return m;
}

IndexSet fromModel(const Model& m) {
  return IndexSet::fromIndices(Model(m));
}

TEST(IndexSetHybrid, DifferentialAgainstModel) {
  constexpr Shape kShapes[] = {Shape::Sparse, Shape::Dense, Shape::Blocks,
                               Shape::AltSingles, Shape::Interval};
  Rng rng(0xc0ffee);
  for (int round = 0; round < 40; ++round) {
    // Universe straddles several chunks so chunk-boundary coalescing and the
    // galloping directory merge both get exercised.
    const Index universe = 3 * detail::kChunkBits + rng.range(0, 1000);
    const Shape sa = kShapes[rng.below(std::size(kShapes))];
    const Shape sb = kShapes[rng.below(std::size(kShapes))];
    const Model ma = randomModel(rng, sa, universe);
    const Model mb = randomModel(rng, sb, universe);
    const IndexSet a = fromModel(ma);
    const IndexSet b = fromModel(mb);
    ASSERT_NO_FATAL_FAILURE(auditAgainstModel(a, ma));
    ASSERT_NO_FATAL_FAILURE(auditAgainstModel(b, mb));

    ASSERT_NO_FATAL_FAILURE(
        auditAgainstModel(a.unionWith(b), modelUnion(ma, mb)));
    ASSERT_NO_FATAL_FAILURE(
        auditAgainstModel(a.intersectWith(b), modelIntersect(ma, mb)));
    ASSERT_NO_FATAL_FAILURE(
        auditAgainstModel(a.subtract(b), modelSubtract(ma, mb)));
    ASSERT_NO_FATAL_FAILURE(
        auditAgainstModel(b.subtract(a), modelSubtract(mb, ma)));

    ASSERT_EQ(a.containsAll(b), modelIncludes(ma, mb));
    ASSERT_EQ(b.containsAll(a), modelIncludes(mb, ma));
    ASSERT_EQ(a.intersects(b), modelIntersects(ma, mb));
    ASSERT_EQ(b.intersects(a), modelIntersects(mb, ma));

    // Algebraic cross-checks that hold for any pair.
    ASSERT_TRUE(a.unionWith(b).containsAll(a));
    ASSERT_TRUE(a.containsAll(a.intersectWith(b)));
    ASSERT_FALSE(a.subtract(b).intersects(b));
    ASSERT_EQ(a.subtract(b).unionWith(a.intersectWith(b)), a);

    // Canonical representation: equal contents compare equal regardless of
    // construction route.
    RunVec viaRuns(a.runs().begin(), a.runs().end());
    ASSERT_EQ(IndexSet::fromRuns(std::move(viaRuns)), a);
  }
}

TEST(IndexSetHybrid, ContainerSwitchBoundary) {
  // Exactly kRunCrossover chunk-local runs must stay a run container; one
  // more must switch to a bitmap. Singleton runs spaced by 2 give precise
  // control of the chunk-local run count.
  for (std::uint32_t nruns :
       {detail::kRunCrossover, detail::kRunCrossover + 1}) {
    const RunVec runs = singletons(0, static_cast<Index>(2 * nruns), 2);
    ASSERT_EQ(runs.size(), nruns);
    const IndexSet s = IndexSet::fromRuns(runs);
    ASSERT_EQ(s.chunkCount(), 1u);
    EXPECT_EQ(s.bitmapChunkCount(), nruns > detail::kRunCrossover ? 1u : 0u);
    EXPECT_EQ(s.runCount(), nruns);
    EXPECT_EQ(s.size(), static_cast<Index>(nruns));
  }
}

TEST(IndexSetHybrid, OpResultsConvertBackAcrossCrossover) {
  // a: alternating singletons (bitmap chunk); removing the odd singletons
  // leaves one run — the result must convert back to a run container.
  const IndexSet evens = IndexSet::fromRuns(singletons(0, detail::kChunkBits, 2));
  ASSERT_EQ(evens.bitmapChunkCount(), 1u);

  // Union with the odds fills the chunk: dense but 1 run -> run container.
  const IndexSet odds = IndexSet::fromRuns(singletons(1, detail::kChunkBits, 2));
  const IndexSet full = evens.unionWith(odds);
  EXPECT_EQ(full, IndexSet::interval(0, detail::kChunkBits));
  EXPECT_EQ(full.bitmapChunkCount(), 0u);
  EXPECT_EQ(full.runCount(), 1u);

  // Subtracting the evens from the full interval reproduces the odds, which
  // must flip back to a bitmap container.
  const IndexSet backToOdds = full.subtract(evens);
  EXPECT_EQ(backToOdds, odds);
  EXPECT_EQ(backToOdds.bitmapChunkCount(), 1u);
}

TEST(IndexSetHybrid, RunsSplitAcrossChunkBoundariesStayLogical) {
  // One logical run spanning three chunks: physically split per chunk, but
  // runCount()/runs() must still report a single run.
  const Index lo = detail::kChunkBits / 2;
  const Index hi = 5 * detail::kChunkBits / 2;
  const IndexSet s = IndexSet::interval(lo, hi);
  EXPECT_EQ(s.chunkCount(), 3u);
  EXPECT_EQ(s.runCount(), 1u);
  ASSERT_EQ(s.runs().size(), 1u);
  EXPECT_EQ(s.runs()[0], makeRun(lo, hi));
  EXPECT_EQ(s, IndexSet::fromIndices(s.toVector()));
}

TEST(IndexSetHybrid, NegativeIndicesUseFloorChunkIds) {
  const IndexSet s = IndexSet::interval(-detail::kChunkBits - 5, 7);
  EXPECT_EQ(s.runCount(), 1u);
  EXPECT_EQ(s.size(), detail::kChunkBits + 12);
  EXPECT_TRUE(s.contains(-detail::kChunkBits - 5));
  EXPECT_TRUE(s.contains(-1));
  EXPECT_TRUE(s.contains(6));
  EXPECT_FALSE(s.contains(7));
  EXPECT_FALSE(s.contains(-detail::kChunkBits - 6));
  EXPECT_EQ(s.lowerBound(), -detail::kChunkBits - 5);
  EXPECT_EQ(s.upperBound(), 7);
}

TEST(IndexSetHybrid, SnapshotRoundTripBothContainerKinds) {
  // One set holding a run chunk, a bitmap chunk, and a chunk-spanning run:
  // the v2 encoding must reproduce it bit-exactly through the framed binary
  // stream, for both the run-list and the chunked form.
  RunVec runs;
  runs.push_back(makeRun(10, 40));  // sparse chunk 0: run container
  // chunk 1: alternating singletons -> bitmap container
  const RunVec alt = singletons(detail::kChunkBits, 2 * detail::kChunkBits, 2);
  runs.insert(runs.end(), alt.begin(), alt.end());
  runs.push_back(makeRun(2 * detail::kChunkBits + 100,
                         4 * detail::kChunkBits - 100));  // spans chunks 2..3
  const IndexSet original = IndexSet::fromRuns(std::move(runs));
  ASSERT_GT(original.bitmapChunkCount(), 0u);
  ASSERT_LT(original.bitmapChunkCount(), original.chunkCount());

  BinaryWriter w;
  writeIndexSet(w, original);
  const std::vector<std::uint8_t> payload = w.take();
  BinaryReader r(payload);
  const IndexSet restored = readIndexSet(r);
  r.expectEnd();
  EXPECT_EQ(restored, original);
  EXPECT_EQ(restored.bitmapChunkCount(), original.bitmapChunkCount());

  // Pure-run set round-trips through the compact run-list encoding.
  const IndexSet interval = IndexSet::interval(0, 1'000'000);
  BinaryWriter w2;
  writeIndexSet(w2, interval);
  EXPECT_LT(w2.size(), 100u);  // no bitmap explosion for interval data
  const std::vector<std::uint8_t> payload2 = w2.take();
  BinaryReader r2(payload2);
  EXPECT_EQ(readIndexSet(r2), interval);
}

TEST(IndexSetHybrid, V1RunLengthStreamStillDecodes) {
  // A hand-built v1 payload (bare run list, no container tag) must decode
  // once the reader is branched to the old format version.
  BinaryWriter w;
  w.u64(2);
  w.i64(3);
  w.i64(8);
  w.i64(4096);
  w.i64(4100);
  const std::vector<std::uint8_t> payload = w.take();
  BinaryReader r(payload);
  r.setFormatVersion(1);
  const IndexSet decoded = readIndexSet(r);
  r.expectEnd();
  EXPECT_EQ(decoded,
            IndexSet::fromRuns({{3, 8}, {4096, 4100}}));
}

TEST(IndexSetHybrid, StatsCountersAdvance) {
  const IndexSet::Stats before = IndexSet::stats();
  // Alternating singletons: the chunk switches to a bitmap container.
  const IndexSet a = IndexSet::fromRuns(singletons(0, detail::kChunkBits, 2));
  const IndexSet b = IndexSet::interval(0, detail::kChunkBits);
  const IndexSet both = a.intersectWith(b);  // bitmap path: word-at-a-time
  EXPECT_EQ(both, a);
  const IndexSet::Stats after = IndexSet::stats();
  EXPECT_GT(after.containerSwitches, before.containerSwitches);
  EXPECT_GT(after.bitmapOpWords, before.bitmapOpWords);
}

TEST(IndexSetHybrid, LazyRunsCacheIsStableAndCopied) {
  const IndexSet s =
      IndexSet::fromRuns(singletons(0, 3 * detail::kChunkBits, 2));
  ASSERT_GT(s.bitmapChunkCount(), 0u);
  const auto first = s.runs();
  const auto second = s.runs();
  EXPECT_EQ(first.data(), second.data());  // cached, not rebuilt
  IndexSet copy = s;  // copies contents, not the cache
  EXPECT_EQ(copy, s);
  EXPECT_EQ(RunVec(copy.runs().begin(), copy.runs().end()),
            RunVec(first.begin(), first.end()));
  const IndexSet moved = std::move(copy);
  EXPECT_EQ(moved, s);
}

}  // namespace
}  // namespace dpart::region
