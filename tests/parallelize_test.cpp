#include "parallelize/parallelize.hpp"

#include <gtest/gtest.h>

#include "ir/interp.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

namespace dpart::parallelize {
namespace {

using region::FieldType;
using region::Index;
using region::IndexSet;
using region::Partition;
using region::World;

constexpr double kTol = 1e-9;

// Compares an f64 field between two worlds (serial reference vs parallel).
void expectFieldNear(const World& a, const World& b, const std::string& r,
                     const std::string& f) {
  auto fa = a.region(r).f64(f);
  auto fb = b.region(r).f64(f);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_NEAR(fa[i], fb[i], kTol) << r << "." << f << "[" << i << "]";
  }
}

// The paper's Figure 1 program: particles/cells with pointer and neighbor
// accesses, two loops.
struct Figure1App {
  static constexpr Index kParticles = 64;
  static constexpr Index kCells = 16;

  static void build(World& world, std::uint64_t seed) {
    auto& p = world.addRegion("Particles", kParticles);
    auto& c = world.addRegion("Cells", kCells);
    p.addField("cell", FieldType::Idx);
    p.addField("pos", FieldType::F64);
    c.addField("vel", FieldType::F64);
    c.addField("acc", FieldType::F64);
    Rng rng(seed);
    auto cell = p.idx("cell");
    auto pos = p.f64("pos");
    for (Index i = 0; i < kParticles; ++i) {
      cell[static_cast<std::size_t>(i)] = rng.range(0, kCells);
      pos[static_cast<std::size_t>(i)] = rng.uniform();
    }
    auto vel = c.f64("vel");
    auto acc = c.f64("acc");
    for (Index i = 0; i < kCells; ++i) {
      vel[static_cast<std::size_t>(i)] = rng.uniform();
      acc[static_cast<std::size_t>(i)] = rng.uniform();
    }
    world.defineFieldFn("Particles", "cell", "Cells");
    world.defineAffineFn("h", "Cells", "Cells",
                         [](Index i) { return (i + 1) % kCells; });
  }

  static ir::Program program() {
    ir::Program prog;
    prog.name = "figure1";
    {
      ir::LoopBuilder b("update_particles", "p", "Particles");
      b.loadIdx("c", "Particles", "cell", "p");
      b.loadF64("v1", "Cells", "vel", "c");
      b.apply("c2", "h", "c");
      b.loadF64("v2", "Cells", "vel", "c2");
      b.compute("d", {"v1", "v2"},
                [](auto a) { return 0.25 * a[0] + 0.125 * a[1]; });
      b.reduce("Particles", "pos", "p", "d");
      prog.loops.push_back(b.build());
    }
    {
      ir::LoopBuilder b("update_cells", "c", "Cells");
      b.loadF64("a1", "Cells", "acc", "c");
      b.apply("c2", "h", "c");
      b.loadF64("a2", "Cells", "acc", "c2");
      b.compute("d", {"a1", "a2"},
                [](auto a) { return 0.5 * a[0] + 0.25 * a[1]; });
      b.reduce("Cells", "vel", "c", "d");
      prog.loops.push_back(b.build());
    }
    return prog;
  }
};

TEST(Parallelize, Figure1PlanShape) {
  World world;
  Figure1App::build(world, 1);
  AutoParallelizer ap(world);
  ParallelPlan plan = ap.plan(Figure1App::program());

  EXPECT_EQ(plan.stats.parallelLoops, 2);
  // Program B of Figure 2: three constructed partitions after unification
  // (equal on Cells, preimage on Particles, image under h).
  EXPECT_EQ(plan.dpl.constructedPartitions(), 3u);
  const std::string prog = plan.dpl.toString();
  EXPECT_NE(prog.find("equal(Cells)"), std::string::npos);
  EXPECT_NE(prog.find("preimage(Particles, Particles[.].cell"),
            std::string::npos);
  EXPECT_NE(prog.find("h, Cells)"), std::string::npos);
  // Both loops share the Cells partition: loop 2's iteration partition is
  // the same symbol as loop 1's uncentered-read partition target.
  EXPECT_EQ(plan.loops.size(), 2u);
}

TEST(Parallelize, Figure1ExecutionMatchesSerial) {
  for (std::size_t pieces : {1u, 2u, 4u, 8u}) {
    World serial, parallel;
    Figure1App::build(serial, 7);
    Figure1App::build(parallel, 7);
    ir::Program prog = Figure1App::program();

    // Run three "time steps" each way.
    for (int step = 0; step < 3; ++step) ir::runSerial(serial, prog);

    AutoParallelizer ap(parallel);
    ParallelPlan plan = ap.plan(prog);
    runtime::ExecOptions opts;
    opts.validateAccesses = true;
    runtime::PlanExecutor exec(parallel, plan, pieces, opts);
    for (int step = 0; step < 3; ++step) exec.run();

    expectFieldNear(serial, parallel, "Particles", "pos");
    expectFieldNear(serial, parallel, "Cells", "vel");
  }
}

TEST(Parallelize, Figure1PartitionsAreLegal) {
  World world;
  Figure1App::build(world, 3);
  AutoParallelizer ap(world);
  ParallelPlan plan = ap.plan(Figure1App::program());
  runtime::PlanExecutor exec(world, plan, 4);
  exec.preparePartitions();
  // Iteration partitions are complete; loop 2's is also disjoint.
  const Partition& cells = exec.partition(plan.loops[1].iterPartition);
  EXPECT_TRUE(cells.isComplete(Figure1App::kCells));
  EXPECT_TRUE(cells.isDisjoint());
  const Partition& particles = exec.partition(plan.loops[0].iterPartition);
  EXPECT_TRUE(particles.isComplete(Figure1App::kParticles));
  EXPECT_TRUE(particles.isDisjoint());
}

// Figure 4 / Example 6: external constraint discharges all constraints
// except the h-image.
TEST(Parallelize, ExternalConstraintReusesUserPartitions) {
  World world;
  Figure1App::build(world, 5);

  // User partitions: pCells = contiguous blocks, pParticles = particles
  // grouped by cell ownership (the invariant of Figure 4's exchange code).
  const std::size_t pieces = 4;
  std::vector<IndexSet> cellSubs, particleSubs;
  auto cell = world.region("Particles").idx("cell");
  for (std::size_t j = 0; j < pieces; ++j) {
    const Index lo = static_cast<Index>(j) * Figure1App::kCells / 4;
    const Index hi = static_cast<Index>(j + 1) * Figure1App::kCells / 4;
    cellSubs.push_back(IndexSet::interval(lo, hi));
    std::vector<Index> mine;
    for (Index p = 0; p < Figure1App::kParticles; ++p) {
      if (cell[static_cast<std::size_t>(p)] >= lo &&
          cell[static_cast<std::size_t>(p)] < hi) {
        mine.push_back(p);
      }
    }
    particleSubs.push_back(IndexSet::fromIndices(std::move(mine)));
  }
  Partition pCells("Cells", std::move(cellSubs));
  Partition pParticles("Particles", std::move(particleSubs));

  constraint::System ext;
  ext.declareSymbol("pParticles", "Particles", /*fixed=*/true);
  ext.declareSymbol("pCells", "Cells", /*fixed=*/true);
  ext.addSubset(dpl::image(dpl::symbol("pParticles"), "Particles[.].cell",
                           "Cells"),
                dpl::symbol("pCells"));
  ext.addComp(dpl::symbol("pParticles"), "Particles");
  ext.addDisj(dpl::symbol("pParticles"));
  ext.addComp(dpl::symbol("pCells"), "Cells");
  ext.addDisj(dpl::symbol("pCells"));

  AutoParallelizer ap(world);
  ap.addExternalConstraint(ext);
  ParallelPlan plan = ap.plan(Figure1App::program());

  // Example 6's outcome: only the h-image partition is constructed.
  EXPECT_EQ(plan.dpl.constructedPartitions(), 1u);
  EXPECT_NE(plan.dpl.toString().find("image(pCells, h, Cells)"),
            std::string::npos);
  EXPECT_EQ(plan.loops[0].iterPartition, "pParticles");

  // And the parallel execution with the user partitions matches serial.
  World serial;
  Figure1App::build(serial, 5);
  ir::Program prog = Figure1App::program();
  ir::runSerial(serial, prog);

  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(world, plan, pieces, opts);
  exec.bindExternal("pCells", pCells);
  exec.bindExternal("pParticles", pParticles);
  exec.run();
  expectFieldNear(serial, world, "Particles", "pos");
  expectFieldNear(serial, world, "Cells", "vel");
}

TEST(Parallelize, MissingExternalBindingThrows) {
  World world;
  Figure1App::build(world, 5);
  constraint::System ext;
  ext.declareSymbol("pCells", "Cells", /*fixed=*/true);
  ext.addComp(dpl::symbol("pCells"), "Cells");
  ext.addDisj(dpl::symbol("pCells"));
  AutoParallelizer ap(world);
  ap.addExternalConstraint(ext);
  ParallelPlan plan = ap.plan(Figure1App::program());
  runtime::PlanExecutor exec(world, plan, 2);
  EXPECT_THROW(exec.preparePartitions(), Error);
}

// Figure 7: single uncentered reduction — the disjoint-reduction strategy
// eliminates the buffer entirely (Section 5.1, Example 3).
TEST(Parallelize, SingleUncenteredReductionGoesDirect) {
  World world;
  world.addRegion("R", 40).addField("val", FieldType::F64);
  world.addRegion("S", 10).addField("acc", FieldType::F64);
  world.defineAffineFn("quarter", "R", "S", [](Index i) { return i / 4; });
  auto val = world.region("R").f64("val");
  for (Index i = 0; i < 40; ++i) val[static_cast<std::size_t>(i)] = double(i);

  ir::Program prog;
  ir::LoopBuilder b("scatter", "i", "R");
  b.apply("j", "quarter", "i");
  b.loadF64("x", "R", "val", "i");
  // A second loop makes R's iteration partition non-relaxable? No — this
  // single loop is relaxable, so disable relaxation to exercise the
  // disjoint-reduction path specifically.
  b.reduce("S", "acc", "j", "x");
  prog.loops.push_back(b.build());

  Options opts;
  opts.enableRelaxation = false;
  AutoParallelizer ap(world, opts);
  ParallelPlan plan = ap.plan(prog);
  ASSERT_EQ(plan.loops[0].reduces.size(), 1u);
  const auto& rp = plan.loops[0].reduces.begin()->second;
  EXPECT_EQ(rp.strategy, optimize::ReduceStrategy::Direct);
  // Iteration partition is the preimage of the equal reduction partition.
  EXPECT_NE(plan.dpl.toString().find("preimage(R, quarter"),
            std::string::npos);

  World serial;
  serial.addRegion("R", 40).addField("val", FieldType::F64);
  serial.addRegion("S", 10).addField("acc", FieldType::F64);
  serial.defineAffineFn("quarter", "R", "S", [](Index i) { return i / 4; });
  auto sval = serial.region("R").f64("val");
  for (Index i = 0; i < 40; ++i) sval[static_cast<std::size_t>(i)] = double(i);
  ir::runSerial(serial, prog);

  runtime::ExecOptions eopts;
  eopts.validateAccesses = true;
  runtime::PlanExecutor exec(world, plan, 5, eopts);
  exec.run();
  EXPECT_EQ(exec.bufferedElements(), 0u);  // no reduction buffers used
  expectFieldNear(serial, world, "S", "acc");
}

// Figure 11: two uncentered reductions — relaxation kicks in, the loop runs
// with guards, and results match serial execution.
TEST(Parallelize, Figure11RelaxedExecutionMatchesSerial) {
  auto buildWorld = [](World& world) {
    world.addRegion("R", 60).addField("val", FieldType::F64);
    world.addRegion("S", 30).addField("acc", FieldType::F64);
    world.defineAffineFn("f2", "R", "S", [](Index i) { return i / 2; });
    world.defineAffineFn("g2", "R", "S",
                         [](Index i) { return (i / 2 + 7) % 30; });
    auto val = world.region("R").f64("val");
    for (Index i = 0; i < 60; ++i) {
      val[static_cast<std::size_t>(i)] = 0.5 + double(i % 13);
    }
  };
  ir::Program prog;
  ir::LoopBuilder b("fig11", "i", "R");
  b.apply("j1", "f2", "i");
  b.apply("j2", "g2", "i");
  b.loadF64("x", "R", "val", "i");
  b.reduce("S", "acc", "j1", "x");
  b.reduce("S", "acc", "j2", "x");
  prog.loops.push_back(b.build());

  World serial;
  buildWorld(serial);
  ir::runSerial(serial, prog);

  World parallel;
  buildWorld(parallel);
  AutoParallelizer ap(parallel);
  ParallelPlan plan = ap.plan(prog);
  EXPECT_TRUE(plan.loops[0].relaxed);
  for (const auto& [_, rp] : plan.loops[0].reduces) {
    EXPECT_EQ(rp.strategy, optimize::ReduceStrategy::Guarded);
  }

  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(parallel, plan, 6, opts);
  exec.run();
  EXPECT_EQ(exec.bufferedElements(), 0u);  // guards eliminate all buffers
  expectFieldNear(serial, parallel, "S", "acc");

  // The relaxed iteration partition is aliased but complete.
  const Partition& iter = exec.partition(plan.loops[0].iterPartition);
  EXPECT_TRUE(iter.isComplete(60));
}

// Two uncentered reductions in a loop that is NOT relaxable (it also has a
// centered write): private sub-partitions shrink the buffers (Section 5.2).
TEST(Parallelize, PrivateSubPartitionShrinksBuffers) {
  auto buildWorld = [](World& world) {
    world.addRegion("W", 40).addField("cur", FieldType::F64);
    world.addRegion("N", 20).addField("chg", FieldType::F64);
    // Wire i touches nodes i/2 and (i/2 + 1) % 20: mostly private with a
    // one-node overlap between neighboring pieces.
    world.defineAffineFn("inp", "W", "N", [](Index i) { return i / 2; });
    world.defineAffineFn("outp", "W", "N",
                         [](Index i) { return (i / 2 + 1) % 20; });
    auto cur = world.region("W").f64("cur");
    for (Index i = 0; i < 40; ++i) {
      cur[static_cast<std::size_t>(i)] = double(i % 5) + 0.25;
    }
  };
  ir::Program prog;
  ir::LoopBuilder b("distribute", "i", "W");
  b.loadF64("x", "W", "cur", "i");
  b.apply("n1", "inp", "i");
  b.apply("n2", "outp", "i");
  b.reduce("N", "chg", "n1", "x");
  b.reduce("N", "chg", "n2", "x");
  b.store("W", "cur", "i", "x");  // centered write blocks relaxation
  prog.loops.push_back(b.build());

  World serial;
  buildWorld(serial);
  ir::runSerial(serial, prog);

  World parallel;
  buildWorld(parallel);
  AutoParallelizer ap(parallel);
  ParallelPlan plan = ap.plan(prog);
  EXPECT_FALSE(plan.loops[0].relaxed);
  for (const auto& [_, rp] : plan.loops[0].reduces) {
    EXPECT_EQ(rp.strategy, optimize::ReduceStrategy::PrivateSplit);
    EXPECT_FALSE(rp.privatePart.empty());
    EXPECT_FALSE(rp.sharedPart.empty());
  }

  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(parallel, plan, 4, opts);
  exec.run();
  expectFieldNear(serial, parallel, "N", "chg");

  // The shared parts are tiny (one boundary node per piece boundary), so
  // buffered traffic must be far below the full partition size.
  EXPECT_GT(exec.bufferedElements(), 0u);
  EXPECT_LE(exec.bufferedElements(), 16u);

  // Without private sub-partitions, everything is buffered.
  World baseline;
  buildWorld(baseline);
  Options noPriv;
  noPriv.enablePrivateSubPartitions = false;
  AutoParallelizer ap2(baseline, noPriv);
  ParallelPlan plan2 = ap2.plan(prog);
  runtime::PlanExecutor exec2(baseline, plan2, 4);
  exec2.run();
  EXPECT_GT(exec2.bufferedElements(), exec.bufferedElements() * 2);
  expectFieldNear(serial, baseline, "N", "chg");
}

// SpMV (Figure 10) end to end, including the generalized IMAGE.
TEST(Parallelize, SpmvEndToEnd) {
  constexpr Index kRows = 32;
  constexpr Index kNnzPerRow = 3;
  auto buildWorld = [](World& world) {
    auto& y = world.addRegion("Y", kRows);
    auto& ranges = world.addRegion("Ranges", kRows);
    auto& mat = world.addRegion("Mat", kRows * kNnzPerRow);
    auto& x = world.addRegion("X", kRows);
    y.addField("val", FieldType::F64);
    ranges.addField("span", FieldType::Range);
    mat.addField("val", FieldType::F64);
    mat.addField("ind", FieldType::Idx);
    x.addField("val", FieldType::F64);
    world.defineRangeFn("Ranges", "span", "Mat");
    world.defineFieldFn("Mat", "ind", "X");
    auto span = ranges.range("span");
    auto mval = mat.f64("val");
    auto mind = mat.idx("ind");
    auto xval = x.f64("val");
    for (Index r = 0; r < kRows; ++r) {
      span[static_cast<std::size_t>(r)] =
          region::Run{r * kNnzPerRow, (r + 1) * kNnzPerRow};
      xval[static_cast<std::size_t>(r)] = 1.0 + double(r % 7);
      for (Index k = 0; k < kNnzPerRow; ++k) {
        const auto idx = static_cast<std::size_t>(r * kNnzPerRow + k);
        mval[idx] = double(k + 1);
        mind[idx] = (r + k) % kRows;  // banded
      }
    }
  };
  ir::Program prog;
  ir::LoopBuilder b("spmv", "i", "Y");
  b.loadRange("rg", "Ranges", "span", "i");
  b.beginInner("k", "rg");
  b.loadF64("a", "Mat", "val", "k");
  b.loadIdx("col", "Mat", "ind", "k");
  b.loadF64("xv", "X", "val", "col");
  b.compute("prod", {"a", "xv"}, [](auto v) { return v[0] * v[1]; });
  b.reduce("Y", "val", "i", "prod");
  b.endInner();
  prog.loops.push_back(b.build());

  World serial;
  buildWorld(serial);
  ir::runSerial(serial, prog);

  World parallel;
  buildWorld(parallel);
  AutoParallelizer ap(parallel);
  ParallelPlan plan = ap.plan(prog);
  // Figure 10b: exactly 4 constructed partitions (Y, Ranges, Mat, X) — the
  // Mat[k].ind access folds onto the Mat[k].val partition via unification.
  EXPECT_EQ(plan.dpl.constructedPartitions(), 4u);

  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(parallel, plan, 4, opts);
  exec.run();
  expectFieldNear(serial, parallel, "Y", "val");
}

TEST(Parallelize, NonParallelizableLoopThrows) {
  World world;
  world.addRegion("R", 10).addField("a", FieldType::F64);
  world.addRegion("S", 10).addField("b", FieldType::F64);
  world.defineAffineFn("g", "R", "S", [](Index i) { return i; });
  ir::Program prog;
  ir::LoopBuilder b("bad", "i", "R");
  b.apply("j", "g", "i");
  b.loadF64("x", "R", "a", "i");
  b.store("S", "b", "j", "x");  // uncentered write
  prog.loops.push_back(b.build());
  AutoParallelizer ap(world);
  EXPECT_THROW(ap.plan(prog), Error);
}

TEST(Parallelize, CompileStatsArePopulated) {
  World world;
  Figure1App::build(world, 11);
  AutoParallelizer ap(world);
  ParallelPlan plan = ap.plan(Figure1App::program());
  EXPECT_EQ(plan.stats.parallelLoops, 2);
  EXPECT_GE(plan.stats.inferMs, 0.0);
  EXPECT_GE(plan.stats.unifyMs, 0.0);
  EXPECT_GE(plan.stats.solveMs, 0.0);
  // solveMs includes the relaxation pass, so it dominates pure resolution
  // and stays comparable with the paper's Table 1 "solver" row.
  EXPECT_GE(plan.stats.rewriteMs, 0.0);
}

}  // namespace
}  // namespace dpart::parallelize
