#include "region/partition.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dpart::region {
namespace {

Partition makePartition(std::vector<IndexSet> subs) {
  return Partition("R", std::move(subs));
}

TEST(Partition, DisjointAndComplete) {
  Partition p = makePartition(
      {IndexSet::interval(0, 5), IndexSet::interval(5, 10)});
  EXPECT_TRUE(p.isDisjoint());
  EXPECT_TRUE(p.isComplete(10));
  EXPECT_FALSE(p.isComplete(11));
}

TEST(Partition, AliasedIsNotDisjoint) {
  Partition p = makePartition(
      {IndexSet::interval(0, 6), IndexSet::interval(5, 10)});
  EXPECT_FALSE(p.isDisjoint());
  EXPECT_TRUE(p.isComplete(10));
}

TEST(Partition, IncompleteWithHole) {
  Partition p = makePartition(
      {IndexSet::interval(0, 4), IndexSet::interval(6, 10)});
  EXPECT_TRUE(p.isDisjoint());
  EXPECT_FALSE(p.isComplete(10));
}

TEST(Partition, EmptySubregionsAreDisjoint) {
  Partition p = makePartition({IndexSet{}, IndexSet{}, IndexSet{}});
  EXPECT_TRUE(p.isDisjoint());
  EXPECT_FALSE(p.isComplete(1));
  EXPECT_TRUE(p.isComplete(0));
}

TEST(Partition, TotalElementsCountsAliases) {
  Partition p = makePartition(
      {IndexSet::interval(0, 6), IndexSet::interval(4, 8)});
  EXPECT_EQ(p.totalElements(), 10);
  EXPECT_EQ(p.unionAll(), IndexSet::interval(0, 8));
}

TEST(Partition, MaxRunCount) {
  Partition p = makePartition(
      {IndexSet::fromIndices({0, 2, 4}), IndexSet::interval(10, 20)});
  EXPECT_EQ(p.maxRunCount(), 3u);
}

TEST(Partition, SubOutOfRangeThrows) {
  Partition p = makePartition({IndexSet::interval(0, 2)});
  EXPECT_NO_THROW((void)p.sub(0));
  EXPECT_THROW((void)p.sub(1), Error);
}

// Property: isDisjoint agrees with the quadratic pairwise definition.
class PartitionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionPropertyTest, DisjointMatchesPairwiseDefinition) {
  Rng rng(GetParam());
  std::vector<IndexSet> subs;
  const int parts = 2 + static_cast<int>(rng.below(5));
  for (int j = 0; j < parts; ++j) {
    std::vector<Index> idx;
    const int n = static_cast<int>(rng.below(20));
    for (int i = 0; i < n; ++i) idx.push_back(rng.range(0, 60));
    subs.push_back(IndexSet::fromIndices(std::move(idx)));
  }
  Partition p = makePartition(subs);
  bool pairwiseDisjoint = true;
  for (std::size_t a = 0; a < subs.size(); ++a) {
    for (std::size_t b = a + 1; b < subs.size(); ++b) {
      if (subs[a].intersects(subs[b])) pairwiseDisjoint = false;
    }
  }
  EXPECT_EQ(p.isDisjoint(), pairwiseDisjoint);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace dpart::region
