#include "optimize/reduction_opt.hpp"

#include <gtest/gtest.h>

#include "constraint/solver.hpp"
#include "dpl/evaluator.hpp"
#include "support/rng.hpp"

namespace dpart::optimize {
namespace {

using analysis::LoopConstraints;
using analysis::ParallelizableResult;
using region::FieldType;
using region::Index;
using region::IndexSet;
using region::Partition;
using region::World;

// Builds the Figure 11a loop: for (i in R): S[f(i)] += R[i]; S[g(i)] += R[i].
struct Fig11Setup {
  World world;
  ir::Loop loop;
  ParallelizableResult accesses;
  LoopConstraints constraints;

  Fig11Setup() {
    world.addRegion("R", 20).addField("val", FieldType::F64);
    world.addRegion("S", 20).addField("acc", FieldType::F64);
    world.defineAffineFn("f", "R", "S", [](Index i) { return i; });
    world.defineAffineFn("g", "R", "S",
                         [](Index i) { return (i + 3) % 20; });
    ir::LoopBuilder b("fig11", "i", "R");
    b.apply("j1", "f", "i");
    b.apply("j2", "g", "i");
    b.loadF64("x", "R", "val", "i");
    b.reduce("S", "acc", "j1", "x");
    b.reduce("S", "acc", "j2", "x");
    loop = b.build();
    accesses = analysis::checkParallelizable(world, loop);
    constraint::SymbolGen gen;
    constraints = analysis::inferConstraints(world, loop, gen);
  }
};

TEST(Relaxation, Figure11LoopIsRelaxable) {
  Fig11Setup s;
  ASSERT_TRUE(s.accesses.ok) << s.accesses.reason;
  EXPECT_TRUE(isRelaxable(s.accesses, s.constraints));
}

TEST(Relaxation, CenteredWriteBlocksRelaxation) {
  World world;
  world.addRegion("R", 10).addField("val", FieldType::F64);
  world.addRegion("S", 10).addField("acc", FieldType::F64);
  world.defineAffineFn("f", "R", "S", [](Index i) { return i; });
  ir::LoopBuilder b("l", "i", "R");
  b.apply("j", "f", "i");
  b.loadF64("x", "R", "val", "i");
  b.reduce("S", "acc", "j", "x");
  b.store("R", "val", "i", "x");  // centered write
  ir::Loop loop = b.build();
  auto acc = analysis::checkParallelizable(world, loop);
  ASSERT_TRUE(acc.ok);
  constraint::SymbolGen gen;
  auto lc = analysis::inferConstraints(world, loop, gen);
  EXPECT_FALSE(isRelaxable(acc, lc));
}

TEST(Relaxation, CenteredReductionBlocksRelaxation) {
  World world;
  world.addRegion("R", 10).addField("val", FieldType::F64);
  world.addRegion("S", 10).addField("acc", FieldType::F64);
  world.defineAffineFn("f", "R", "S", [](Index i) { return i; });
  ir::LoopBuilder b("l", "i", "R");
  b.apply("j", "f", "i");
  b.loadF64("x", "R", "val", "i");
  b.reduce("S", "acc", "j", "x");
  b.reduce("R", "val", "i", "x");  // centered reduce: double-counts if dup'd
  ir::Loop loop = b.build();
  auto acc = analysis::checkParallelizable(world, loop);
  ASSERT_TRUE(acc.ok);
  constraint::SymbolGen gen;
  auto lc = analysis::inferConstraints(world, loop, gen);
  EXPECT_FALSE(isRelaxable(acc, lc));
}

TEST(Relaxation, NoUncenteredReduceNotRelaxable) {
  World world;
  world.addRegion("R", 10).addField("val", FieldType::F64);
  ir::LoopBuilder b("l", "i", "R");
  b.loadF64("x", "R", "val", "i");
  b.reduce("R", "val", "i", "x");
  ir::Loop loop = b.build();
  auto acc = analysis::checkParallelizable(world, loop);
  constraint::SymbolGen gen;
  auto lc = analysis::inferConstraints(world, loop, gen);
  EXPECT_FALSE(isRelaxable(acc, lc));
}

TEST(Relaxation, RelaxLoopRewritesConstraints) {
  Fig11Setup s;
  LoopReductionPlan plan = relaxLoop(s.accesses, s.constraints);
  EXPECT_TRUE(plan.relaxed);
  ASSERT_EQ(plan.reduces.size(), 2u);
  EXPECT_EQ(plan.reduces[0].strategy, ReduceStrategy::Guarded);

  const constraint::System& sys = s.constraints.system;
  // DISJ on the iteration space is gone.
  EXPECT_FALSE(sys.requiresDisj(s.constraints.iterSymbol));
  // Reduction partitions became disjoint + complete with preimage coverage.
  const std::string& p1 = plan.reduces[0].partition;
  const std::string& p2 = plan.reduces[1].partition;
  EXPECT_TRUE(sys.requiresDisj(p1));
  EXPECT_TRUE(sys.requiresComp(p1));
  EXPECT_TRUE(sys.requiresDisj(p2));
  bool foundCoverage = false;
  for (const auto& sc : sys.subsets()) {
    if (sc.rhs->kind == dpl::ExprKind::Symbol &&
        sc.rhs->name == s.constraints.iterSymbol &&
        sc.lhs->kind == dpl::ExprKind::Preimage) {
      foundCoverage = true;
    }
  }
  EXPECT_TRUE(foundCoverage);

  // The relaxed system is solvable (Example 7's outcome).
  constraint::Solver solver(sys, {});
  auto sol = solver.solve();
  EXPECT_TRUE(sol.ok) << sol.failure;
}

// ---- Theorem 5.1 property test ----

class PrivateSubPartitionTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PrivateSubPartitionTest, Theorem51HoldsOnRandomData) {
  Rng rng(GetParam());
  const Index nR = 30 + static_cast<Index>(rng.below(30));
  const Index nS = 20 + static_cast<Index>(rng.below(20));
  World world;
  world.addRegion("R", nR);
  world.addRegion("S", nS);
  std::vector<Index> table(static_cast<std::size_t>(nR));
  for (auto& v : table) v = rng.range(0, nS);
  world.defineAffineFn("f", "R", "S",
                       [&table](Index i) { return table[static_cast<std::size_t>(i)]; });

  // Random disjoint (not necessarily complete) partition P of R.
  const std::size_t pieces = 2 + rng.below(4);
  std::vector<std::vector<Index>> groups(pieces);
  for (Index i = 0; i < nR; ++i) {
    const std::size_t owner = rng.below(pieces + 1);  // may be unassigned
    if (owner < pieces) groups[owner].push_back(i);
  }
  std::vector<IndexSet> subs;
  for (auto& g : groups) subs.push_back(IndexSet::fromIndices(std::move(g)));
  Partition p("R", std::move(subs));
  ASSERT_TRUE(p.isDisjoint());

  dpl::Evaluator ev(world, pieces);
  ev.bind("P", p);
  dpl::ExprPtr privExpr = privateSubPartitionExpr(dpl::symbol("P"), "f",
                                                  "R", "S");
  Partition priv = ev.eval(privExpr);
  Partition img = ev.eval(dpl::image(dpl::symbol("P"), "f", "S"));

  // (1) Pp is a sub-partition of f_S(P): Pp[i] <= f_S(P)[i].
  for (std::size_t j = 0; j < pieces; ++j) {
    EXPECT_TRUE(img.sub(j).containsAll(priv.sub(j)));
  }
  // (2) Pp is disjoint.
  EXPECT_TRUE(priv.isDisjoint());
  // (3) Privacy: an element of Pp[j] is pointed to only from P[j] —
  //     it appears in no other subregion's image.
  for (std::size_t j = 0; j < pieces; ++j) {
    for (std::size_t k = 0; k < pieces; ++k) {
      if (j == k) continue;
      EXPECT_FALSE(priv.sub(j).intersects(img.sub(k)))
          << "private element of " << j << " is imaged by " << k;
    }
  }
  // (4) Maximality on this data: every image element NOT in Pp[j] really is
  //     reachable from outside P[j] — from another subregion or from an
  //     element the (incomplete) partition left unassigned.
  IndexSet assigned = p.unionAll();
  std::vector<Index> unassignedTargets;
  for (Index i = 0; i < nR; ++i) {
    if (!assigned.contains(i)) {
      unassignedTargets.push_back(table[static_cast<std::size_t>(i)]);
    }
  }
  IndexSet outsideImage = IndexSet::fromIndices(std::move(unassignedTargets));
  for (std::size_t j = 0; j < pieces; ++j) {
    IndexSet sharedPart = img.sub(j).subtract(priv.sub(j));
    sharedPart.forEach([&](Index e) {
      bool shared = outsideImage.contains(e);
      for (std::size_t k = 0; k < pieces; ++k) {
        if (k != j && img.sub(k).contains(e)) shared = true;
      }
      EXPECT_TRUE(shared) << "element " << e
                          << " was excluded from the private part of " << j
                          << " but is not shared";
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrivateSubPartitionTest,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(PrivateSubPartition, ExpressionShape) {
  dpl::ExprPtr e = privateSubPartitionExpr(dpl::symbol("P"), "f", "R", "S");
  EXPECT_EQ(e->toString(),
            "(image(P, f, S) - "
            "image((preimage(R, f, image(P, f, S)) - P), f, S))");
}

}  // namespace
}  // namespace dpart::optimize
