// Cross-product coverage: every reduction operator (Sum/Min/Max) through
// every execution strategy the optimizer can pick (Direct via disjoint
// reduction partitions, Guarded via relaxation, Buffered, PrivateSplit),
// always validated against serial execution.

#include <gtest/gtest.h>

#include "ir/interp.hpp"
#include "parallelize/parallelize.hpp"
#include "runtime/executor.hpp"

namespace dpart {
namespace {

using optimize::ReduceStrategy;
using region::FieldType;
using region::Index;
using region::World;

void buildWorld(World& w) {
  w.addRegion("R", 48).addField("val", FieldType::F64);
  w.addRegion("S", 16).addField("acc", FieldType::F64);
  w.defineAffineFn("f", "R", "S", [](Index i) { return i / 3; });
  w.defineAffineFn("g", "R", "S", [](Index i) { return (i / 3 + 5) % 16; });
  auto val = w.region("R").f64("val");
  for (Index i = 0; i < 48; ++i) {
    val[static_cast<std::size_t>(i)] = double((i * 13) % 29) - 14.0;
  }
  auto acc = w.region("S").f64("acc");
  for (Index i = 0; i < 16; ++i) {
    acc[static_cast<std::size_t>(i)] = double(i % 3);
  }
}

// One uncentered reduction; optionally a centered store in the same loop to
// block relaxation (forcing Direct via disjointification), optionally a
// second reduction through g to force Buffered/PrivateSplit.
ir::Program makeProgram(ir::ReduceOp op, bool blockRelaxation,
                        bool twoReductions) {
  ir::Program prog;
  prog.name = "reduce";
  ir::LoopBuilder b("scatter", "i", "R");
  b.loadF64("x", "R", "val", "i");
  b.apply("j", "f", "i");
  b.reduce("S", "acc", "j", "x", op);
  if (twoReductions) {
    b.apply("j2", "g", "i");
    b.reduce("S", "acc", "j2", "x", op);
  }
  if (blockRelaxation) {
    b.store("R", "val", "i", "x");  // idempotent, but blocks relaxation
  }
  prog.loops.push_back(b.build());
  return prog;
}

struct Config {
  ir::ReduceOp op;
  bool blockRelaxation;
  bool twoReductions;
  ReduceStrategy expected;
};

class ReduceStrategyTest : public ::testing::TestWithParam<Config> {};

TEST_P(ReduceStrategyTest, MatchesSerialUnderEveryStrategy) {
  const Config& cfg = GetParam();
  ir::Program prog =
      makeProgram(cfg.op, cfg.blockRelaxation, cfg.twoReductions);

  World serial;
  buildWorld(serial);
  ir::runSerial(serial, prog);

  World parallel;
  buildWorld(parallel);
  parallelize::AutoParallelizer ap(parallel);
  parallelize::ParallelPlan plan = ap.plan(prog);
  ASSERT_FALSE(plan.loops[0].reduces.empty());
  for (const auto& [_, rp] : plan.loops[0].reduces) {
    EXPECT_EQ(rp.strategy, cfg.expected)
        << "got " << optimize::toString(rp.strategy);
  }

  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(parallel, plan, 4, opts);
  exec.run();

  auto want = serial.region("S").f64("acc");
  auto got = parallel.region("S").f64("acc");
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(want[i], got[i], 1e-12) << "S.acc[" << i << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ReduceStrategyTest,
    ::testing::Values(
        // Single reduction, relaxable loop -> Guarded.
        Config{ir::ReduceOp::Sum, false, false, ReduceStrategy::Guarded},
        Config{ir::ReduceOp::Min, false, false, ReduceStrategy::Guarded},
        Config{ir::ReduceOp::Max, false, false, ReduceStrategy::Guarded},
        // Single reduction, relaxation blocked -> Direct (disjointified).
        Config{ir::ReduceOp::Sum, true, false, ReduceStrategy::Direct},
        Config{ir::ReduceOp::Max, true, false, ReduceStrategy::Direct},
        // Two reductions, relaxable -> Guarded on both.
        Config{ir::ReduceOp::Sum, false, true, ReduceStrategy::Guarded},
        // Two reductions, blocked -> PrivateSplit (Theorem 5.1).
        Config{ir::ReduceOp::Sum, true, true, ReduceStrategy::PrivateSplit},
        Config{ir::ReduceOp::Min, true, true,
               ReduceStrategy::PrivateSplit}));

TEST(ReduceStrategies, BufferedFallbackWithoutOptimizations) {
  // With every Section 5 optimization disabled, uncentered reductions fall
  // back to plain per-task buffers — and still match serial.
  ir::Program prog = makeProgram(ir::ReduceOp::Sum, true, true);
  World serial;
  buildWorld(serial);
  ir::runSerial(serial, prog);

  World parallel;
  buildWorld(parallel);
  parallelize::Options options;
  options.enableRelaxation = false;
  options.enableDisjointReduction = false;
  options.enablePrivateSubPartitions = false;
  parallelize::AutoParallelizer ap(parallel, options);
  parallelize::ParallelPlan plan = ap.plan(prog);
  for (const auto& [_, rp] : plan.loops[0].reduces) {
    EXPECT_EQ(rp.strategy, ReduceStrategy::Buffered);
  }
  runtime::PlanExecutor exec(parallel, plan, 4);
  exec.run();
  EXPECT_GT(exec.bufferedElements(), 0u);
  auto want = serial.region("S").f64("acc");
  auto got = parallel.region("S").f64("acc");
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(want[i], got[i], 1e-12);
  }
}

}  // namespace
}  // namespace dpart
