// Differential acceptance tests for the multi-process backend
// (runtime/distributed): the same program, world and plan executed on the
// in-process thread pool and on real forked worker processes must leave
// every F64 field *bitwise* identical — including runs where a worker is
// SIGKILLed mid-step and recovery goes through checkpoint restore + elastic
// shrink, where frames are corrupted on the wire, and where a worker stops
// answering heartbeats.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/spmv.hpp"
#include "apps/stencil.hpp"
#include "parallelize/parallelize.hpp"
#include "runtime/distributed/coordinator.hpp"
#include "runtime/executor.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace dpart {
namespace {

// TSan cannot follow a fork() that then starts threads: the worker's
// heartbeat thread collides with the cloned thread registry ("dup
// thread") and the child dies. Multi-process tests therefore skip under
// TSan — the plain and ASan/UBSan jobs still run them for real.
#if defined(__SANITIZE_THREAD__)
#define DPART_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPART_TSAN 1
#endif
#endif
#if defined(DPART_TSAN)
#define DPART_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "fork-based backend unsupported under TSan"
#else
#define DPART_SKIP_UNDER_TSAN() (void)0
#endif

namespace fs = std::filesystem;

using region::FieldType;
using region::Index;
using region::World;
using runtime::ExecBackend;
using runtime::ExecOptions;
using runtime::PlanExecutor;

constexpr int kSteps = 3;
constexpr std::size_t kPieces = 4;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("dpart_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
  fs::path path;
};

void expectWorldsBitwiseEqual(World& want, World& got) {
  for (const std::string& rn : want.regionNames()) {
    for (const std::string& fn : want.region(rn).fieldNames()) {
      if (want.region(rn).fieldType(fn) != FieldType::F64) continue;
      auto a = want.region(rn).f64(fn);
      auto b = got.region(rn).f64(fn);
      ASSERT_EQ(a.size(), b.size()) << rn << "." << fn;
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                  std::bit_cast<std::uint64_t>(b[i]))
            << rn << "." << fn << "[" << i << "] " << a[i] << " != " << b[i];
      }
    }
  }
}

ExecOptions backendOptions(ExecBackend backend) {
  ExecOptions o;
  // One pool thread: the multi-process coordinator forks, and the
  // differential partner should share scheduling behavior anyway — the
  // comparison is about the backends, not the pool.
  o.threads = 1;
  o.distributed.backend = backend;
  return o;
}

/// Mixed-strategy pipeline on small regions (same shapes as the
/// elastic-shrink tests: f = i/3 onto S, ops bitwise shrink-safe).
void buildPipelineWorld(World& w, std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const Index nS = 12 + static_cast<Index>(rng.below(9));
  const Index nR = 3 * nS;
  region::Region& r = w.addRegion("R", nR);
  r.addField("val", FieldType::F64);
  r.addField("tmp", FieldType::F64);
  region::Region& s = w.addRegion("S", nS);
  s.addField("acc", FieldType::F64);
  s.addField("acc2", FieldType::F64);
  w.defineAffineFn("f", "R", "S", [](Index i) { return i / 3; });
  w.defineAffineFn("g", "R", "S", [nS](Index i) { return (i / 3 + 5) % nS; });
  for (const char* field : {"val", "tmp"}) {
    auto col = w.region("R").f64(field);
    for (std::size_t i = 0; i < col.size(); ++i) {
      col[i] = double(rng.range(-50, 50)) * 0.5;
    }
  }
  for (const char* field : {"acc", "acc2"}) {
    auto col = w.region("S").f64(field);
    for (std::size_t i = 0; i < col.size(); ++i) {
      col[i] = double(rng.range(-10, 10));
    }
  }
}

ir::Program makePipeline() {
  ir::Program prog;
  prog.name = "pipeline";
  {
    ir::LoopBuilder b("centered", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.store("R", "tmp", "i", "x");
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("gather", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.apply("j", "g", "i");
    b.reduce("S", "acc", "j", "x", ir::ReduceOp::Sum);
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("blocked", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.apply("j", "f", "i");
    b.reduce("S", "acc2", "j", "x", ir::ReduceOp::Sum);
    b.store("R", "val", "i", "x");
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("psplit", "i", "R");
    b.loadF64("x", "R", "tmp", "i");
    b.apply("j", "f", "i");
    b.reduce("S", "acc2", "j", "x", ir::ReduceOp::Min);
    b.apply("j2", "g", "i");
    b.reduce("S", "acc2", "j2", "x", ir::ReduceOp::Min);
    b.store("R", "tmp", "i", "x");
    prog.loops.push_back(b.build());
  }
  return prog;
}

void runSteps(World& w, const ir::Program& prog, std::size_t pieces,
              ExecOptions opts, int steps = kSteps) {
  parallelize::AutoParallelizer ap(w);
  parallelize::ParallelPlan plan = ap.plan(prog);
  PlanExecutor exec(w, plan, pieces, std::move(opts));
  for (int s = 0; s < steps; ++s) exec.run();
}

TEST(DistributedExec, PipelineMatchesInProcessBitwise) {
  DPART_SKIP_UNDER_TSAN();
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    World inproc;
    buildPipelineWorld(inproc, seed);
    runSteps(inproc, makePipeline(), kPieces,
             backendOptions(ExecBackend::InProcess));

    World multi;
    buildPipelineWorld(multi, seed);
    runSteps(multi, makePipeline(), kPieces,
             backendOptions(ExecBackend::MultiProcess));

    expectWorldsBitwiseEqual(inproc, multi);
  }
}

TEST(DistributedExec, SkewedSpmvMatchesInProcessBitwise) {
  DPART_SKIP_UNDER_TSAN();
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 96;
  p.nnzPerRow = 5;
  p.pieces = kPieces;
  p.skew = 1.2;  // heavy prefix rows: uneven refresh slices per piece

  apps::SpmvApp inproc(p);
  runSteps(inproc.world(), inproc.program(), kPieces,
           backendOptions(ExecBackend::InProcess));

  apps::SpmvApp multi(p);
  runSteps(multi.world(), multi.program(), kPieces,
           backendOptions(ExecBackend::MultiProcess));

  expectWorldsBitwiseEqual(inproc.world(), multi.world());
}

TEST(DistributedExec, StencilMatchesInProcessBitwise) {
  DPART_SKIP_UNDER_TSAN();
  apps::StencilApp::Params p;
  p.rowsPerPiece = 12;
  p.cols = 24;
  p.pieces = kPieces;

  apps::StencilApp inproc(p);
  runSteps(inproc.world(), inproc.program(), kPieces,
           backendOptions(ExecBackend::InProcess));

  apps::StencilApp multi(p);
  runSteps(multi.world(), multi.program(), kPieces,
           backendOptions(ExecBackend::MultiProcess));

  expectWorldsBitwiseEqual(inproc.world(), multi.world());
}

/// The headline recovery differential: node 2's worker process is really
/// SIGKILLed mid-run (second launch), the coordinator escalates it as
/// NodeLossError, and the executor recovers through checkpoint restore +
/// elastic shrink to kPieces - 1 — finishing bitwise identical to a
/// fault-free run at the surviving piece count, under the partition
/// legality verifier.
TEST(DistributedExec, WorkerSigkillMidRunRecoversBitwise) {
  DPART_SKIP_UNDER_TSAN();
  const std::uint64_t seed = 7;

  World clean;
  buildPipelineWorld(clean, seed);
  runSteps(clean, makePipeline(), kPieces - 1,
           backendOptions(ExecBackend::InProcess));

  TempDir ckpt("dist_kill");
  World faulty;
  buildPipelineWorld(faulty, seed);
  const ir::Program prog = makePipeline();
  parallelize::AutoParallelizer ap(faulty);
  parallelize::ParallelPlan plan = ap.plan(prog);

  FaultInjector inj(seed);
  FaultSpec loss;
  loss.kind = FaultKind::PermanentCrash;
  loss.afterArrivals = 5;  // node 2's 5th launch: mid second exec.run()
  loss.maxFires = 1;
  inj.arm("node:2", loss);

  ExecOptions opts = backendOptions(ExecBackend::MultiProcess);
  opts.verifyPartitions = true;
  opts.resilience.faultInjector = &inj;
  opts.checkpoint.dir = ckpt.str();
  PlanExecutor exec(faulty, plan, kPieces, opts);
  for (int s = 0; s < kSteps; ++s) exec.run();

  EXPECT_EQ(inj.totalFires(), 1u);
  EXPECT_EQ(exec.checkpointRestores(), 1u);
  EXPECT_EQ(exec.elasticShrinks(), 1u);
  EXPECT_EQ(exec.pieces(), kPieces - 1);
  expectWorldsBitwiseEqual(clean, faulty);
}

/// A worker that stops answering heartbeats (SIGSTOP: the process is alive
/// but silent) is SIGKILLed by the coordinator and escalated exactly like a
/// permanent node crash.
TEST(DistributedExec, HeartbeatTimeoutEscalatesAsNodeLoss) {
  DPART_SKIP_UNDER_TSAN();
  World w;
  buildPipelineWorld(w, 11);
  const ir::Program prog = makePipeline();
  parallelize::AutoParallelizer ap(w);
  parallelize::ParallelPlan plan = ap.plan(prog);

  ExecOptions opts = backendOptions(ExecBackend::MultiProcess);
  opts.distributed.heartbeatIntervalMicros = 5'000;
  opts.distributed.heartbeatTimeoutMicros = 200'000;
  PlanExecutor exec(w, plan, kPieces, opts);
  exec.run();  // healthy step; the fleet is now up
  ASSERT_NE(exec.coordinator(), nullptr);
  const pid_t victim = exec.coordinator()->workerPid(1);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGSTOP), 0);

  try {
    exec.runLoop(plan.loops[0]);
    FAIL() << "silent worker did not escalate";
  } catch (const runtime::NodeLossError& e) {
    EXPECT_EQ(e.node(), 1u);
    EXPECT_NE(std::string(e.what()).find("heartbeat"), std::string::npos);
  }
  // The coordinator SIGKILLed and reaped the stopped process; its pid slot
  // is cleared.
  EXPECT_EQ(exec.coordinator()->workerPid(1), -1);
}

/// A frame corrupted on the wire (injected "net:" Poison site) makes the
/// worker reject it by CRC and die; the coordinator respawns it with capped
/// exponential backoff routed through the sleep hook, resends, and the run
/// completes bitwise identical to a clean one.
TEST(DistributedExec, WireCorruptionRecoversViaReconnect) {
  DPART_SKIP_UNDER_TSAN();
  const std::uint64_t seed = 13;
  World clean;
  buildPipelineWorld(clean, seed);
  runSteps(clean, makePipeline(), kPieces,
           backendOptions(ExecBackend::InProcess));

  World faulty;
  buildPipelineWorld(faulty, seed);
  const ir::Program prog = makePipeline();
  parallelize::AutoParallelizer ap(faulty);
  parallelize::ParallelPlan plan = ap.plan(prog);

  FaultInjector inj(seed);
  FaultSpec poison;
  poison.kind = FaultKind::Poison;
  poison.maxFires = 1;
  inj.arm("net:gather:1", poison);

  std::vector<std::uint64_t> sleeps;
  MetricsRegistry metrics;
  ExecOptions opts = backendOptions(ExecBackend::MultiProcess);
  opts.resilience.faultInjector = &inj;
  opts.resilience.sleepMicros = [&sleeps](std::uint64_t us) {
    sleeps.push_back(us);
  };
  opts.observability.metrics = &metrics;
  opts.distributed.reconnectBackoffMicros = 1'000;
  opts.distributed.maxBackoffMicros = 3'000;
  PlanExecutor exec(faulty, plan, kPieces, opts);
  for (int s = 0; s < kSteps; ++s) exec.run();

  EXPECT_EQ(inj.totalFires(), 1u);
  EXPECT_GE(metrics.counter("executor.net.reconnectsTotal").value(), 1u);
  // The reconnect backoff went through the hook (no real sleeping), with
  // the capped exponential schedule's base as its first value.
  ASSERT_FALSE(sleeps.empty());
  EXPECT_EQ(sleeps.front(), 1'000u);
  for (std::uint64_t us : sleeps) EXPECT_LE(us, 3'000u);
  expectWorldsBitwiseEqual(clean, faulty);
}

/// Exhausting maxReconnects escalates to NodeLossError carrying the node id
/// (here: every resend is corrupted again).
TEST(DistributedExec, ReconnectExhaustionEscalates) {
  DPART_SKIP_UNDER_TSAN();
  World w;
  buildPipelineWorld(w, 17);
  const ir::Program prog = makePipeline();
  parallelize::AutoParallelizer ap(w);
  parallelize::ParallelPlan plan = ap.plan(prog);

  FaultInjector inj(17);
  FaultSpec poison;
  poison.kind = FaultKind::Poison;
  poison.probability = 1.0;  // every dispatch to this worker is corrupted
  inj.arm("net:centered:2", poison);

  ExecOptions opts = backendOptions(ExecBackend::MultiProcess);
  opts.resilience.faultInjector = &inj;
  opts.resilience.sleepMicros = [](std::uint64_t) {};
  opts.distributed.maxReconnects = 2;
  PlanExecutor exec(w, plan, kPieces, opts);

  try {
    exec.run();
    FAIL() << "endless corruption did not escalate";
  } catch (const runtime::NodeLossError& e) {
    EXPECT_EQ(e.node(), 2u);
    EXPECT_NE(std::string(e.what()).find("reconnect"), std::string::npos);
  }
}

/// Injected task faults replay on the distributed backend with the same
/// counters as in-process, and the replayed run stays bitwise correct.
TEST(DistributedExec, TaskReplayOnDistributedBackend) {
  DPART_SKIP_UNDER_TSAN();
  const std::uint64_t seed = 23;
  World clean;
  buildPipelineWorld(clean, seed);
  runSteps(clean, makePipeline(), kPieces,
           backendOptions(ExecBackend::InProcess));

  World faulty;
  buildPipelineWorld(faulty, seed);
  const ir::Program prog = makePipeline();
  parallelize::AutoParallelizer ap(faulty);
  parallelize::ParallelPlan plan = ap.plan(prog);

  FaultInjector inj(seed);
  FaultSpec crash;
  crash.kind = FaultKind::Crash;
  crash.maxFires = 2;
  inj.arm("task:gather:0", crash);

  ExecOptions opts = backendOptions(ExecBackend::MultiProcess);
  opts.verifyPartitions = true;
  opts.resilience.faultInjector = &inj;
  opts.resilience.taskReplay = true;
  PlanExecutor exec(faulty, plan, kPieces, opts);
  for (int s = 0; s < kSteps; ++s) exec.run();

  EXPECT_EQ(exec.taskReplays(), 2u);
  expectWorldsBitwiseEqual(clean, faulty);
}

}  // namespace
}  // namespace dpart
