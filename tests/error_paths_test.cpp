// Error-path coverage: malformed DPL through the parser, unbound external
// partitions at preparePartitions(), and World lookups of missing names —
// asserting the *content* of the thrown messages, not just the throw.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dpl/parser.hpp"
#include "ir/ir.hpp"
#include "region/world.hpp"
#include "runtime/executor.hpp"
#include "support/check.hpp"

namespace dpart {
namespace {

using region::FieldType;
using region::World;

// Runs fn, which must throw dpart::Error (or a subclass), and returns the
// message for content assertions.
template <typename Fn>
std::string messageOf(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected dpart::Error";
  return "";
}

TEST(ErrorPaths, ParserReportsOffsetOfMalformedDpl) {
  const std::string truncated =
      messageOf([] { (void)dpl::parseExpr("image(P1, h"); });
  EXPECT_NE(truncated.find("DPL parse error at offset"), std::string::npos);

  const std::string danglingOp =
      messageOf([] { (void)dpl::parseExpr("(A u )"); });
  EXPECT_NE(danglingOp.find("DPL parse error"), std::string::npos);

  const std::string program = messageOf([] {
    (void)dpl::parseProgram("P = equal(R)\nQ = image(P, f,");
  });
  EXPECT_NE(program.find("DPL parse error"), std::string::npos);
}

TEST(ErrorPaths, ParserRejectsUnexpectedCharacters) {
  const std::string msg = messageOf([] { (void)dpl::parseExpr("A $ B"); });
  EXPECT_NE(msg.find("unexpected character '$'"), std::string::npos);
}

TEST(ErrorPaths, UnboundExternalPartitionNamedAtPrepare) {
  World w;
  w.addRegion("R", 8).addField("val", FieldType::F64);
  parallelize::ParallelPlan plan;
  plan.program = std::make_shared<const ir::Program>();
  plan.externalSymbols = {"PExt"};
  runtime::PlanExecutor exec(w, plan, 2);
  const std::string msg = messageOf([&] { exec.preparePartitions(); });
  EXPECT_NE(msg.find("external partition 'PExt' was not bound"),
            std::string::npos);
}

TEST(ErrorPaths, WorldLookupsNameTheMissingEntity) {
  World w;
  w.addRegion("R", 8).addField("val", FieldType::F64);

  const std::string region = messageOf([&] { (void)w.region("nope"); });
  EXPECT_NE(region.find("unknown region 'nope'"), std::string::npos);

  const std::string field =
      messageOf([&] { (void)w.region("R").f64("ghost"); });
  EXPECT_NE(field.find("no field 'ghost' on region R"), std::string::npos);

  const std::string fn = messageOf([&] { (void)w.fn("missing"); });
  EXPECT_NE(fn.find("unknown function 'missing'"), std::string::npos);
}

}  // namespace
}  // namespace dpart
