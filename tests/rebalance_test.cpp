// Tests for the skew-aware adaptive repartitioning layer: the Rebalancer's
// policy machinery (warmup, trigger, hysteresis, cooldown, cap) driven by
// synthetic metrics, the per-index weight estimator, the equal-base
// resolution on real plans, and an end-to-end skewed-SpMV Session run that
// must rebalance, stay legal, and compute bitwise-identical results to the
// serial reference.

#include "runtime/rebalance.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/spmv.hpp"
#include "dpl/expr.hpp"
#include "dpl/program.hpp"
#include "ir/interp.hpp"
#include "parallelize/parallelize.hpp"
#include "region/dpl_ops.hpp"
#include "runtime/session.hpp"
#include "support/metrics.hpp"

namespace dpart::runtime {
namespace {

using region::Index;
using region::IndexSet;
using region::Partition;
using region::World;

// Writes one synthetic launch's per-piece seconds into the registry, the
// way the executor does after a real launch.
void publishLaunch(MetricsRegistry& mx, const std::string& loop,
                   const std::vector<double>& pieceSeconds) {
  for (std::size_t j = 0; j < pieceSeconds.size(); ++j) {
    taskSecondsGauge(mx, loop, j).add(pieceSeconds[j]);
  }
  launchCounter(mx, loop).inc();
}

RebalancePolicy testPolicy() {
  RebalancePolicy p;
  p.enabled = true;
  p.triggerImbalance = 1.5;
  p.hysteresis = 0.2;
  p.warmupLaunches = 2;
  p.cooldownLaunches = 3;
  p.maxRebalances = 2;
  return p;
}

TEST(Rebalancer, WarmupBlocksEarlyTrigger) {
  MetricsRegistry mx;
  Rebalancer rb(testPolicy(), mx);
  rb.observe("l", 2);  // establishes the window baseline (zero so far)
  publishLaunch(mx, "l", {4.0, 1.0});  // imbalance 1.6 >= trigger
  rb.observe("l", 2);
  EXPECT_FALSE(rb.shouldRebalance("l")) << "one launch is inside warmup";
  publishLaunch(mx, "l", {4.0, 1.0});
  rb.observe("l", 2);
  EXPECT_TRUE(rb.shouldRebalance("l"));
  EXPECT_NEAR(rb.imbalance("l"), 1.6, 1e-9);
}

TEST(Rebalancer, BalancedLoopNeverTriggers) {
  MetricsRegistry mx;
  Rebalancer rb(testPolicy(), mx);
  for (int i = 0; i < 10; ++i) {
    publishLaunch(mx, "l", {1.0, 1.05, 0.95, 1.0});
    rb.observe("l", 4);
    EXPECT_FALSE(rb.shouldRebalance("l")) << "launch " << i;
  }
}

TEST(Rebalancer, CooldownAndHysteresisAfterFirstRebalance) {
  MetricsRegistry mx;
  Rebalancer rb(testPolicy(), mx);
  World world;
  world.addRegion("R", 8);
  const Partition iter = region::equalPartition(world, "R", 2);

  rb.observe("l", 2);  // establishes the window baseline
  publishLaunch(mx, "l", {4.0, 1.0});
  publishLaunch(mx, "l", {4.0, 1.0});
  rb.observe("l", 2);
  ASSERT_TRUE(rb.shouldRebalance("l"));
  const Partition weighted = rb.rebuild(world, "R", iter, "l");
  EXPECT_EQ(rb.rebalances(), 1u);
  // The heavy piece 0 shrinks: weights 4/4=1 per index vs 1/4 per index,
  // so the balanced cut lands after ~2 of the 8 indices.
  EXPECT_LT(weighted.sub(0).size(), iter.sub(0).size());

  // rebuild() restarted the window at the current metric values. The same
  // skew must now survive the cooldown (max(warmup, cooldown) = 3 launches)
  // AND beat the widened threshold 1.5 * 1.2 = 1.8.
  publishLaunch(mx, "l", {4.0, 1.0});  // imbalance 1.6 < 1.8
  publishLaunch(mx, "l", {4.0, 1.0});
  publishLaunch(mx, "l", {4.0, 1.0});
  rb.observe("l", 2);
  EXPECT_FALSE(rb.shouldRebalance("l")) << "hysteresis band must hold";

  // A genuinely worse skew beats the widened threshold: window means mix
  // 3x{4,1} with 3x{20,1} -> piece 0 mean 12, imbalance 12/6.5 = 1.846.
  for (int i = 0; i < 3; ++i) publishLaunch(mx, "l", {20.0, 1.0});
  rb.observe("l", 2);
  EXPECT_TRUE(rb.shouldRebalance("l"));
  static_cast<void>(rb.rebuild(world, "R", iter, "l"));
  EXPECT_EQ(rb.rebalances(), 2u);
  // The cap (2) now blocks any further trigger, however bad the skew.
  for (int i = 0; i < 5; ++i) publishLaunch(mx, "l", {20.0, 1.0});
  rb.observe("l", 2);
  EXPECT_FALSE(rb.shouldRebalance("l")) << "maxRebalances cap must hold";
}

TEST(Rebalancer, PieceCountChangeDiscardsWindow) {
  MetricsRegistry mx;
  Rebalancer rb(testPolicy(), mx);
  rb.observe("l", 2);  // establishes the window baseline
  publishLaunch(mx, "l", {4.0, 1.0});
  publishLaunch(mx, "l", {4.0, 1.0});
  rb.observe("l", 2);
  ASSERT_TRUE(rb.shouldRebalance("l"));
  // Elastic shrink to 1 piece: the old times describe a different machine.
  rb.observe("l", 1);
  EXPECT_FALSE(rb.shouldRebalance("l"));
}

TEST(Rebalancer, MinTaskSecondsFiltersNoise) {
  RebalancePolicy p = testPolicy();
  p.minTaskSeconds = 0.5;
  MetricsRegistry mx;
  Rebalancer rb(p, mx);
  rb.observe("l", 2);  // establishes the window baseline
  for (int i = 0; i < 4; ++i) publishLaunch(mx, "l", {0.004, 0.001});
  rb.observe("l", 2);
  EXPECT_FALSE(rb.shouldRebalance("l"))
      << "sub-threshold launches are noise, not signal";
  EXPECT_EQ(rb.imbalance("l"), 0.0);
}

TEST(Rebalancer, EstimateWeightsSpreadsPieceTimeOverIndices) {
  World world;
  world.addRegion("R", 10);
  const Partition iter(
      "R", {IndexSet::interval(0, 5), IndexSet::interval(5, 10)});
  const std::vector<double> weights =
      Rebalancer::estimateWeights(iter, {5.0, 1.0}, 10);
  ASSERT_EQ(weights.size(), 10u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(weights[i], 1.0, 1e-12);
  for (std::size_t i = 5; i < 10; ++i) EXPECT_NEAR(weights[i], 0.2, 1e-12);
}

TEST(Rebalancer, EstimateWeightsFillsUncoveredWithMean) {
  World world;
  world.addRegion("R", 10);
  // Pieces cover only [0, 6); the tail gets the mean covered weight.
  const Partition iter(
      "R", {IndexSet::interval(0, 2), IndexSet::interval(2, 6)});
  const std::vector<double> weights =
      Rebalancer::estimateWeights(iter, {4.0, 4.0}, 10);
  // Covered: 2 indices at 2.0, 4 indices at 1.0 -> mean 8/6.
  for (std::size_t i = 6; i < 10; ++i) {
    EXPECT_NEAR(weights[i], 8.0 / 6.0, 1e-12);
  }
}

TEST(EqualBase, ResolvedOnSpmvPlanAndMissingOnForeignSymbol) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 64;
  p.pieces = 2;
  apps::SpmvApp app(p);
  parallelize::AutoParallelizer ap(app.world());
  const parallelize::ParallelPlan plan = ap.plan(app.program());
  ASSERT_FALSE(plan.loops.empty());

  const std::string base =
      parallelize::equalBaseSymbol(plan, plan.loops[0]);
  ASSERT_FALSE(base.empty());
  bool foundEqualDef = false;
  for (const dpl::Stmt& s : plan.dpl.stmts()) {
    if (s.lhs == base) {
      EXPECT_EQ(s.rhs->kind, dpl::ExprKind::Equal);
      EXPECT_EQ(s.rhs->region, plan.loops[0].loop->iterRegion);
      foundEqualDef = true;
    }
  }
  EXPECT_TRUE(foundEqualDef);

  parallelize::PlannedLoop foreign = plan.loops[0];
  foreign.iterPartition = "no_such_symbol";
  EXPECT_EQ(parallelize::equalBaseSymbol(plan, foreign), "");
}

TEST(ProgramSurgery, WithoutDefinitionsDropsOnlyNamedSymbols) {
  dpl::Program prog;
  prog.append("A", dpl::equalOf("R"));
  prog.append("B", dpl::image(dpl::symbol("A"), "f", "S"));
  prog.append("C", dpl::symbol("B"));
  const dpl::Program cut = prog.withoutDefinitions({"A"});
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_EQ(cut.stmts()[0].lhs, "B");
  EXPECT_EQ(cut.stmts()[1].lhs, "C");
}

// End-to-end: a heavily skewed SpMV must trigger at least one rebalance,
// keep every partition legal (verifyPartitions is on, and rebalances verify
// unconditionally), and keep the computed vector bitwise identical to the
// serial reference — the rebalance only moves work, never changes it.
TEST(AdaptiveSession, SkewedSpmvRebalancesAndStaysCorrect) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 512;
  p.nnzPerRow = 6;
  p.pieces = 4;
  p.skew = 1.0;
  constexpr int kLaunches = 6;

  apps::SpmvApp reference(p);
  for (int i = 0; i < kLaunches; ++i) {
    ir::runSerial(reference.world(), reference.program());
  }

  apps::SpmvApp app(p);
  runtime::ExecOptions opts;
  opts.verifyPartitions = true;
  RebalancePolicy policy;
  policy.warmupLaunches = 2;
  policy.triggerImbalance = 1.3;
  Session session = Session::parallelize(app.program())
                        .pieces(p.pieces)
                        .options(opts)
                        .adaptive(policy)
                        .build(app.world());
  for (int i = 0; i < kLaunches; ++i) session.run();

  EXPECT_GE(session.rebalances(), 1u);
  EXPECT_EQ(session.executor().rebalances(), session.rebalances());
  EXPECT_GE(session.metrics().gauge("executor.rebalances").value(), 1.0);

  auto want = reference.world().region("Y").f64("val");
  auto got = app.world().region("Y").f64("val");
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got[i]) << "Y.val diverges at " << i;
  }

  // The rebalanced iteration partition is weighted: the heavy prefix piece
  // must have shrunk below the unweighted share.
  const std::string iterSym = session.plan().loops[0].iterPartition;
  const Partition& iter = session.partition(iterSym);
  EXPECT_LT(static_cast<Index>(iter.sub(0).size()),
            app.rows() / static_cast<Index>(p.pieces));
}

// Uniform workloads must never rebalance (the trigger + hysteresis have to
// reject scheduler noise). Large pieces keep per-task times well above
// timing jitter.
TEST(AdaptiveSession, UniformSpmvNeverRebalances) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 8192;
  p.nnzPerRow = 6;
  p.pieces = 4;
  p.skew = 0;

  apps::SpmvApp app(p);
  RebalancePolicy policy;
  policy.warmupLaunches = 1;
  policy.minTaskSeconds = 1e-5;
  Session session = Session::parallelize(app.program())
                        .pieces(p.pieces)
                        .adaptive(policy)
                        .build(app.world());
  for (int i = 0; i < 6; ++i) session.run();
  EXPECT_EQ(session.rebalances(), 0u);
}

// A direct PlanExecutor with adaptive mode but no metrics registry must
// create its own (the signal has to live somewhere) and still rebalance.
TEST(AdaptiveSession, BareExecutorOwnsItsRegistry) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 512;
  p.nnzPerRow = 6;
  p.pieces = 4;
  p.skew = 1.0;
  apps::SpmvApp app(p);
  parallelize::AutoParallelizer ap(app.world());
  const parallelize::ParallelPlan plan = ap.plan(app.program());
  ExecOptions opts;
  opts.adaptive.enabled = true;
  opts.adaptive.warmupLaunches = 2;
  PlanExecutor exec(app.world(), plan, p.pieces, opts);
  for (int i = 0; i < 6; ++i) exec.run();
  EXPECT_GE(exec.rebalances(), 1u);
}

}  // namespace
}  // namespace dpart::runtime
