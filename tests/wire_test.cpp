// Wire-protocol unit tests (runtime/distributed/wire): frame round trips
// over a real socketpair, oversized declared payloads rejected before any
// allocation, truncation and bit flips surfacing as TransportError carrying
// the worker id, and the message codecs round-tripping bit-exactly.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "region/index_set.hpp"
#include "runtime/distributed/wire.hpp"
#include "support/check.hpp"
#include "support/serialize.hpp"

namespace dpart::runtime::dist {
namespace {

using region::IndexSet;

/// A connected AF_UNIX stream pair, closed on destruction.
struct SocketPair {
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void closeA() {
    ::close(a);
    a = -1;
  }
  int a = -1;
  int b = -1;
};

constexpr std::uint64_t kCap = 1 << 20;
constexpr std::uint64_t kTimeout = 2'000'000;

TEST(Wire, FrameRoundTripsWithCounters) {
  SocketPair s;
  NetCounters sendC;
  NetCounters recvC;
  std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
  sendFrame(s.a, MsgType::Task, payload, /*node=*/7, &sendC);
  auto frame = recvFrame(s.b, kTimeout, kCap, 7, &recvC);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::Task);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(sendC.messagesSent, 1u);
  EXPECT_EQ(recvC.messagesRecv, 1u);
  EXPECT_EQ(sendC.bytesSent, recvC.bytesRecv);
  EXPECT_GT(sendC.bytesSent, payload.size());

  // Empty payloads are legal (Ping/Pong/Shutdown).
  sendFrame(s.a, MsgType::Ping, {}, 7);
  frame = recvFrame(s.b, kTimeout, kCap, 7);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::Ping);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(Wire, CleanEofAtFrameBoundaryIsNullopt) {
  SocketPair s;
  s.closeA();
  EXPECT_FALSE(recvFrame(s.b, kTimeout, kCap, 3).has_value());
}

TEST(Wire, EofMidFrameThrowsWithNodeId) {
  SocketPair s;
  // A valid header promising 100 payload bytes, then silence and EOF.
  std::vector<std::uint8_t> header = {'D', 'P', 'M', 'G',
                                      static_cast<std::uint8_t>(MsgType::Task),
                                      100, 0, 0, 0, 0, 0, 0, 0,
                                      0,   0, 0, 0};
  ASSERT_EQ(::send(s.a, header.data(), header.size(), 0),
            static_cast<ssize_t>(header.size()));
  s.closeA();
  try {
    (void)recvFrame(s.b, kTimeout, kCap, /*node=*/5);
    FAIL() << "mid-frame EOF went undetected";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.node(), 5u);
    EXPECT_NE(std::string(e.what()).find("mid-frame"), std::string::npos);
  }
}

TEST(Wire, OversizedDeclarationRejectedBeforeAllocation) {
  SocketPair s;
  // Declares ~1 TiB; the cap check must fire off the header alone — no
  // payload bytes follow, so any attempt to read (or allocate) them would
  // hang or die instead of failing fast.
  std::vector<std::uint8_t> header = {'D', 'P', 'M', 'G',
                                      static_cast<std::uint8_t>(MsgType::Task),
                                      0, 0, 0, 0, 0, 1, 0, 0,
                                      0, 0, 0, 0};
  ASSERT_EQ(::send(s.a, header.data(), header.size(), 0),
            static_cast<ssize_t>(header.size()));
  try {
    (void)recvFrame(s.b, kTimeout, kCap, /*node=*/2);
    FAIL() << "oversized declaration went undetected";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.node(), 2u);
    EXPECT_NE(std::string(e.what()).find("cap"), std::string::npos);
  }
}

TEST(Wire, BadMagicAndUnknownTypeRejected) {
  for (bool badMagic : {true, false}) {
    SocketPair s;
    std::vector<std::uint8_t> header(17, 0);
    header[0] = badMagic ? 'X' : 'D';
    header[1] = 'P';
    header[2] = 'M';
    header[3] = 'G';
    header[4] = badMagic ? static_cast<std::uint8_t>(MsgType::Task) : 99;
    ASSERT_EQ(::send(s.a, header.data(), header.size(), 0),
              static_cast<ssize_t>(header.size()));
    EXPECT_THROW((void)recvFrame(s.b, kTimeout, kCap, 0), TransportError);
  }
}

TEST(Wire, TamperedPayloadFailsCrc) {
  std::vector<std::uint8_t> payload(64, 0xAB);
  for (std::size_t flip = 0; flip < payload.size(); flip += 7) {
    SocketPair s;
    sendFrame(s.a, MsgType::Result, payload, /*node=*/4, nullptr,
              [flip](std::vector<std::uint8_t>& bytes) {
                bytes[flip] ^= 0x01;
              });
    try {
      (void)recvFrame(s.b, kTimeout, kCap, 4);
      FAIL() << "bit flip at " << flip << " went undetected";
    } catch (const TransportError& e) {
      EXPECT_EQ(e.node(), 4u);
      EXPECT_NE(std::string(e.what()).find("CRC32"), std::string::npos);
    }
  }
}

TEST(Wire, RecvTimesOutOnSilentPeer) {
  SocketPair s;
  // One header byte, then silence: the deadline must fire.
  const std::uint8_t d = 'D';
  ASSERT_EQ(::send(s.a, &d, 1, 0), 1);
  try {
    (void)recvFrame(s.b, /*timeoutMicros=*/50'000, kCap, /*node=*/9);
    FAIL() << "silent peer did not time out";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.node(), 9u);
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
}

TEST(Wire, TaskMessageRoundTripsBitExactly) {
  TaskMsg m;
  m.seq = 41;
  m.loop = "flux";
  m.piece = 3;
  FieldSlice slice;
  slice.region = "R";
  slice.field = "val";
  slice.indices = IndexSet::fromIndices({0, 1, 5, 6, 7, 100});
  slice.values = {1.5, -0.0, std::bit_cast<double>(std::uint64_t{0x7ff8000000000001ULL}),
                  1e-300, 3.25, -7.0};
  m.refresh.push_back(slice);

  const std::vector<std::uint8_t> taskBytes = encodeTask(m);
  BinaryReader r(taskBytes);
  const TaskMsg got = decodeTask(r);
  EXPECT_EQ(got.seq, m.seq);
  EXPECT_EQ(got.loop, m.loop);
  EXPECT_EQ(got.piece, m.piece);
  ASSERT_EQ(got.refresh.size(), 1u);
  EXPECT_EQ(got.refresh[0].indices, slice.indices);
  ASSERT_EQ(got.refresh[0].values.size(), slice.values.size());
  for (std::size_t i = 0; i < slice.values.size(); ++i) {
    // Bit patterns, not value equality: NaNs and signed zeros must survive.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.refresh[0].values[i]),
              std::bit_cast<std::uint64_t>(slice.values[i]));
  }
  EXPECT_EQ(sliceElements(m.refresh), 6u);
}

TEST(Wire, ResultAndTaskErrorRoundTrip) {
  ResultMsg m;
  m.seq = 8;
  m.piece = 2;
  ReduceSlice rs;
  rs.stmtId = 12;
  rs.op = 1;
  rs.entries = {{3, 0.5}, {9, -2.25}};
  m.reduces.push_back(rs);
  m.taskSeconds = 0.125;
  const std::vector<std::uint8_t> resultBytes = encodeResult(m);
  BinaryReader r(resultBytes);
  const ResultMsg got = decodeResult(r);
  EXPECT_EQ(got.seq, 8u);
  EXPECT_EQ(got.piece, 2u);
  ASSERT_EQ(got.reduces.size(), 1u);
  EXPECT_EQ(got.reduces[0].stmtId, 12);
  EXPECT_EQ(got.reduces[0].entries, rs.entries);
  EXPECT_EQ(got.taskSeconds, 0.125);

  TaskErrorMsg e{7, 1, "TaskFailure", "injected fault",
                 ErrorCode::TaskFailure};
  const std::vector<std::uint8_t> errBytes = encodeTaskError(e);
  BinaryReader er(errBytes);
  const TaskErrorMsg gotE = decodeTaskError(er);
  EXPECT_EQ(gotE.kind, "TaskFailure");
  EXPECT_EQ(gotE.what, "injected fault");
  EXPECT_EQ(gotE.code, ErrorCode::TaskFailure);

  // Truncated payloads must fail decoding, not read garbage.
  std::vector<std::uint8_t> bytes = encodeResult(m);
  bytes.resize(bytes.size() / 2);
  BinaryReader bad(bytes);
  EXPECT_THROW((void)decodeResult(bad), CheckpointCorruption);
}

}  // namespace
}  // namespace dpart::runtime::dist
