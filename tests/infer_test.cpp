#include "analysis/infer.hpp"

#include <gtest/gtest.h>

#include "analysis/parallelizable.hpp"

namespace dpart::analysis {
namespace {

using ir::LoopBuilder;
using region::FieldType;
using region::Index;
using region::World;

// Finds whether a subset constraint with the given printed form exists.
bool hasSubset(const constraint::System& sys, const std::string& printed) {
  for (const auto& sc : sys.subsets()) {
    if (sc.toString() == printed) return true;
  }
  return false;
}

// Figure 6 / Example 1 world: Particles point into Cells.
class Figure6Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& p = world.addRegion("Particles", 12);
    auto& c = world.addRegion("Cells", 6);
    p.addField("cell", FieldType::Idx);
    p.addField("pos", FieldType::F64);
    c.addField("vel", FieldType::F64);
    c.addField("acc", FieldType::F64);
    auto cell = p.idx("cell");
    for (Index i = 0; i < 12; ++i) cell[static_cast<std::size_t>(i)] = i / 2;
    world.defineFieldFn("Particles", "cell", "Cells");
    world.defineAffineFn("h", "Cells", "Cells",
                         [](Index c2) { return (c2 + 1) % 6; });
  }

  World world;
};

TEST_F(Figure6Test, Example1ConstraintShapes) {
  // for (p in Particles): c = Particles[p].cell;
  //                       Particles[p].pos += f(Cells[c].vel)
  LoopBuilder b("loop", "p", "Particles");
  b.loadIdx("c", "Particles", "cell", "p");
  b.loadF64("v", "Cells", "vel", "c");
  b.compute("d", {"v"}, [](auto a) { return a[0]; });
  b.reduce("Particles", "pos", "p", "d");
  ir::Loop loop = b.build();
  ASSERT_TRUE(checkParallelizable(world, loop).ok);

  constraint::SymbolGen gen;
  LoopConstraints lc = inferConstraints(world, loop, gen);
  const constraint::System& sys = lc.system;

  // Iteration symbol P1 over Particles with COMP; no DISJ (reduction is
  // centered).
  EXPECT_EQ(lc.iterSymbol, "P1");
  EXPECT_EQ(sys.regionOf("P1"), "Particles");
  EXPECT_TRUE(sys.requiresComp("P1"));
  EXPECT_FALSE(sys.requiresDisj("P1"));

  // Figure 6's constraint set: P1 <= P2 (centered read of cell),
  // image(P1, cell, Cells) <= P3 (uncentered read of vel), P1 <= P4
  // (centered reduce of pos).
  EXPECT_TRUE(hasSubset(sys, "P1 <= P2"));
  EXPECT_TRUE(
      hasSubset(sys, "image(P1, Particles[.].cell, Cells) <= P3"));
  EXPECT_TRUE(hasSubset(sys, "P1 <= P4"));
  EXPECT_EQ(sys.regionOf("P2"), "Particles");
  EXPECT_EQ(sys.regionOf("P3"), "Cells");
  EXPECT_EQ(sys.regionOf("P4"), "Particles");
}

TEST_F(Figure6Test, Figure1ChainedConstraint) {
  // Full first loop of Figure 1a, including Cells[h(c)].vel: the h access
  // must chain from the symbol of the Cells[c] access (Example 5's graph).
  LoopBuilder b("loop1", "p", "Particles");
  b.loadIdx("c", "Particles", "cell", "p");
  b.loadF64("v1", "Cells", "vel", "c");
  b.apply("c2", "h", "c");
  b.loadF64("v2", "Cells", "vel", "c2");
  b.compute("d", {"v1", "v2"}, [](auto a) { return a[0] + a[1]; });
  b.reduce("Particles", "pos", "p", "d");
  ir::Loop loop = b.build();

  constraint::SymbolGen gen;
  LoopConstraints lc = inferConstraints(world, loop, gen);
  // P1 iter, P2 cell-read (Particles), P3 Cells[c], P4 Cells[h(c)], P5 pos.
  EXPECT_TRUE(hasSubset(lc.system, "image(P1, Particles[.].cell, Cells) <= P3"));
  EXPECT_TRUE(hasSubset(lc.system, "image(P3, h, Cells) <= P4"));
  EXPECT_TRUE(hasSubset(lc.system, "P1 <= P5"));
}

TEST_F(Figure6Test, Figure7DisjointnessPredicate) {
  // for (i in R): S[g(i)] += R[i]  — uncentered reduction forces DISJ on
  // the iteration-space partition.
  auto& r = world.addRegion("R", 10);
  auto& s = world.addRegion("S", 10);
  r.addField("val", FieldType::F64);
  s.addField("acc", FieldType::F64);
  world.defineAffineFn("g", "R", "S", [](Index i) { return i; });

  LoopBuilder b("red", "i", "R");
  b.apply("j", "g", "i");
  b.loadF64("x", "R", "val", "i");
  b.reduce("S", "acc", "j", "x");
  ir::Loop loop = b.build();

  constraint::SymbolGen gen;
  LoopConstraints lc = inferConstraints(world, loop, gen);
  EXPECT_TRUE(lc.system.requiresComp(lc.iterSymbol));
  EXPECT_TRUE(lc.system.requiresDisj(lc.iterSymbol));
  EXPECT_TRUE(hasSubset(lc.system, "image(P1, g, S) <= P3"));
}

TEST_F(Figure6Test, CenteredReductionAddsNoDisj) {
  LoopBuilder b("l", "p", "Particles");
  b.loadF64("x", "Particles", "pos", "p");
  b.reduce("Particles", "pos", "p", "x");
  constraint::SymbolGen gen;
  LoopConstraints lc = inferConstraints(world, b.build(), gen);
  EXPECT_FALSE(lc.system.requiresDisj(lc.iterSymbol));
}

TEST_F(Figure6Test, StmtSymbolMapCoversAllAccesses) {
  LoopBuilder b("loop", "p", "Particles");
  b.loadIdx("c", "Particles", "cell", "p");
  b.loadF64("v", "Cells", "vel", "c");
  b.compute("d", {"v"}, [](auto a) { return a[0]; });
  b.reduce("Particles", "pos", "p", "d");
  ir::Loop loop = b.build();
  constraint::SymbolGen gen;
  LoopConstraints lc = inferConstraints(world, loop, gen);
  // Three region accesses -> three stmt symbols (ids 0, 1, 3).
  EXPECT_EQ(lc.stmtSymbol.size(), 3u);
  EXPECT_TRUE(lc.stmtSymbol.contains(0));
  EXPECT_TRUE(lc.stmtSymbol.contains(1));
  EXPECT_TRUE(lc.stmtSymbol.contains(3));
}

// SpMV (Figure 10a) inference.
class SpmvInferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& y = world.addRegion("Y", 4);
    auto& ranges = world.addRegion("Ranges", 4);
    auto& mat = world.addRegion("Mat", 12);
    auto& x = world.addRegion("X", 4);
    y.addField("val", FieldType::F64);
    ranges.addField("span", FieldType::Range);
    mat.addField("val", FieldType::F64);
    mat.addField("ind", FieldType::Idx);
    x.addField("val", FieldType::F64);
    world.defineRangeFn("Ranges", "span", "Mat");
    world.defineFieldFn("Mat", "ind", "X");
  }

  ir::Loop buildSpmv() {
    LoopBuilder b("spmv", "i", "Y");
    b.loadRange("rg", "Ranges", "span", "i");
    b.beginInner("k", "rg");
    b.loadF64("a", "Mat", "val", "k");
    b.loadIdx("col", "Mat", "ind", "k");
    b.loadF64("xv", "X", "val", "col");
    b.compute("prod", {"a", "xv"}, [](auto v) { return v[0] * v[1]; });
    b.reduce("Y", "val", "i", "prod");
    b.endInner();
    return b.build();
  }

  World world;
};

TEST_F(SpmvInferTest, Figure10Constraints) {
  ir::Loop loop = buildSpmv();
  ASSERT_TRUE(checkParallelizable(world, loop).ok);
  constraint::SymbolGen gen;
  LoopConstraints lc = inferConstraints(world, loop, gen);
  const constraint::System& sys = lc.system;
  // P1 = iteration over Y; P2 bounds the centered Ranges access via the
  // cross-region identity image; P3 bounds the Mat accesses via the
  // generalized IMAGE; P5 bounds X via Mat[.].ind.
  EXPECT_TRUE(hasSubset(sys, "image(P1, f_ID, Ranges) <= P2"));
  EXPECT_TRUE(hasSubset(
      sys, "image(image(P1, f_ID, Ranges), Ranges[.].span, Mat) <= P3"));
  // Chaining through the rebound Mat symbol (P3 covers Mat[k].val; P4 is
  // Mat[k].ind which collapses onto the same bound expression).
  EXPECT_TRUE(hasSubset(sys, "image(P3, Mat[.].ind, X) <= P5"));
}

TEST_F(SpmvInferTest, InferenceIsLinearAndDeterministic) {
  ir::Loop loop = buildSpmv();
  constraint::SymbolGen g1, g2;
  LoopConstraints a = inferConstraints(world, loop, g1);
  LoopConstraints bconstraints = inferConstraints(world, loop, g2);
  EXPECT_EQ(a.system.toString(), bconstraints.system.toString());
}

}  // namespace
}  // namespace dpart::analysis
