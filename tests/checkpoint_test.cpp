// Checkpoint subsystem tests: the framed binary stream (corruption must be
// detected, never parsed), region-layer snapshot/restore (bitwise round
// trips, structural validation), and the CheckpointManager's retention,
// manifest, and newest-to-oldest fallback across corrupt generations.

#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "region/snapshot.hpp"
#include "runtime/checkpoint.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "support/serialize.hpp"

namespace dpart {
namespace {

namespace fs = std::filesystem;

using region::FieldType;
using region::Index;
using region::IndexSet;
using region::Partition;
using region::Run;
using region::World;

/// Fresh temp directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("dpart_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
  fs::path path;
};

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(BinaryStream, RoundTripsEveryType) {
  BinaryWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(-0.0);
  w.f64(3.141592653589793);
  w.str("hello\0world");  // truncated at the NUL by the literal, still fine
  w.str("");

  BinaryReader r(w.payload());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expectEnd());
}

TEST(BinaryStream, ReadPastEndThrowsCheckpointCorruption) {
  BinaryWriter w;
  w.u32(7);
  BinaryReader r(w.payload());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW((void)r.u8(), CheckpointCorruption);

  BinaryReader r2(w.payload());
  EXPECT_THROW((void)r2.u64(), CheckpointCorruption);

  // A length-prefixed string whose length exceeds the remaining bytes.
  BinaryWriter w3;
  w3.u64(1000);
  BinaryReader r3(w3.payload());
  EXPECT_THROW(r3.str(), CheckpointCorruption);
}

TEST(BinaryStream, TrailingBytesAreRejected) {
  BinaryWriter w;
  w.u32(1);
  w.u32(2);
  BinaryReader r(w.payload());
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_THROW(r.expectEnd(), CheckpointCorruption);
}

TEST(FramedFile, RoundTrips) {
  TempDir dir("framed");
  const std::string path = (dir.path / "blob.dpc").string();
  BinaryWriter w;
  for (int i = 0; i < 100; ++i) w.u32(static_cast<std::uint32_t>(i * i));
  writeFramedFile(path, w.payload());
  EXPECT_EQ(readFramedFile(path), std::vector<std::uint8_t>(
                                      w.payload().begin(), w.payload().end()));
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "atomic write left its temp";
}

TEST(FramedFile, DetectsEveryBitFlip) {
  TempDir dir("flip");
  const std::string path = (dir.path / "blob.dpc").string();
  BinaryWriter w;
  w.str("payload worth protecting");
  writeFramedFile(path, w.payload());
  const std::vector<std::uint8_t> file = slurp(path);
  // Flip one bit at a time across the whole file — header and payload —
  // and require the reader to reject every variant.
  for (std::size_t at = 0; at < file.size(); ++at) {
    std::vector<std::uint8_t> damaged = file;
    damaged[at] ^= 1u << (at % 8);
    dump(path, damaged);
    EXPECT_THROW((void)readFramedFile(path), CheckpointCorruption)
        << "bit flip at byte " << at << " went undetected";
  }
}

TEST(FramedFile, DetectsTruncationAndBadMagic) {
  TempDir dir("trunc");
  const std::string path = (dir.path / "blob.dpc").string();
  BinaryWriter w;
  w.u64(123456789);
  writeFramedFile(path, w.payload());
  const std::vector<std::uint8_t> file = slurp(path);

  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{19},
                           file.size() - 1}) {
    dump(path, {file.begin(), file.begin() + static_cast<long>(keep)});
    EXPECT_THROW((void)readFramedFile(path), CheckpointCorruption)
        << "truncation to " << keep << " bytes went undetected";
  }

  std::vector<std::uint8_t> badMagic = file;
  badMagic[0] = 'X';
  dump(path, badMagic);
  EXPECT_THROW((void)readFramedFile(path), CheckpointCorruption);

  EXPECT_THROW((void)readFramedFile((dir.path / "missing.dpc").string()),
               CheckpointCorruption);
}

TEST(FramedFile, OversizedDeclaredPayloadFailsBeforeAllocation) {
  TempDir dir("oversize");
  const std::string path = (dir.path / "blob.dpc").string();
  BinaryWriter w;
  w.u64(42);
  writeFramedFile(path, w.payload());

  // Hand-craft a header whose size field (offset 8, little-endian u64)
  // declares an absurd ~1 TiB payload. The reader must reject it against
  // the frame cap instead of letting the declared size drive an allocation
  // (the file is 28 bytes; resize(1 TiB) would throw bad_alloc or OOM).
  const std::vector<std::uint8_t> intact = slurp(path);
  std::vector<std::uint8_t> oversized = intact;
  const std::uint64_t huge = std::uint64_t{1} << 40;
  for (int i = 0; i < 8; ++i) {
    oversized[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  }
  dump(path, oversized);
  try {
    (void)readFramedFile(path);
    FAIL() << "oversized declared payload went undetected";
  } catch (const CheckpointCorruption& e) {
    EXPECT_NE(std::string(e.what()).find("frame cap"), std::string::npos)
        << e.what();
  }

  // A caller-supplied cap tightens the default: the intact 8-byte payload
  // is over a 4-byte budget.
  dump(path, intact);
  EXPECT_EQ(readFramedFile(path), std::vector<std::uint8_t>(w.payload().begin(),
                                                            w.payload().end()));
  EXPECT_THROW((void)readFramedFile(path, nullptr, /*maxPayloadBytes=*/4),
               CheckpointCorruption);
}

TEST(FramedFile, TamperHookCorruptsAfterChecksum) {
  TempDir dir("tamper");
  const std::string path = (dir.path / "blob.dpc").string();
  BinaryWriter w;
  w.str("bytes that will be damaged in flight");
  writeFramedFile(path, w.payload(), [](std::vector<std::uint8_t>& blob) {
    blob[blob.size() / 2] ^= 0xFF;
  });
  // The CRC was computed over the intact payload, so the read must fail.
  EXPECT_THROW((void)readFramedFile(path), CheckpointCorruption);
}

TEST(Snapshot, IndexSetRoundTripsRandomized) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    region::IndexSetBuilder b;
    Index at = 0;
    const int runs = static_cast<int>(rng.below(8));
    for (int i = 0; i < runs; ++i) {
      at += static_cast<Index>(1 + rng.below(20));
      const Index len = static_cast<Index>(1 + rng.below(30));
      b.addRun(at, at + len);
      at += len;
    }
    const IndexSet set = b.build();
    BinaryWriter w;
    region::writeIndexSet(w, set);
    BinaryReader r(w.payload());
    EXPECT_EQ(region::readIndexSet(r), set);
    EXPECT_NO_THROW(r.expectEnd());
  }
}

TEST(Snapshot, IndexSetUsesRunLengthFastPath) {
  // A contiguous million-element interval is one run: a few dozen bytes,
  // not a megabyte of indices.
  BinaryWriter w;
  region::writeIndexSet(w, IndexSet::interval(0, 1'000'000));
  EXPECT_LT(w.size(), 100u);
}

TEST(Snapshot, PartitionMapRoundTrips) {
  std::map<std::string, Partition> parts;
  parts.emplace("p_block",
                Partition("R", {IndexSet::interval(0, 10),
                                IndexSet::interval(10, 25)}));
  parts.emplace("p_sparse",
                Partition("S", {IndexSet{1, 3, 5}, IndexSet{},
                                IndexSet::interval(7, 9)}));
  BinaryWriter w;
  region::writePartitionMap(w, parts);
  BinaryReader r(w.payload());
  EXPECT_EQ(region::readPartitionMap(r), parts);
  EXPECT_NO_THROW(r.expectEnd());
}

/// World with every field type, randomized contents.
void buildWorld(World& w, std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const Index nR = 16 + static_cast<Index>(rng.below(48));
  const Index nS = 8 + static_cast<Index>(rng.below(8));
  region::Region& r = w.addRegion("R", nR);
  r.addField("val", FieldType::F64);
  r.addField("owner", FieldType::Idx);
  region::Region& s = w.addRegion("S", nS);
  s.addField("acc", FieldType::F64);
  s.addField("span", FieldType::Range);
  w.defineFieldFn("R", "owner", "S");
  auto val = w.region("R").f64("val");
  auto owner = w.region("R").idx("owner");
  for (Index i = 0; i < nR; ++i) {
    val[static_cast<std::size_t>(i)] = rng.uniform() * 100 - 50;
    owner[static_cast<std::size_t>(i)] =
        static_cast<Index>(rng.below(static_cast<std::uint64_t>(nS)));
  }
  auto acc = w.region("S").f64("acc");
  auto span = w.region("S").range("span");
  for (Index i = 0; i < nS; ++i) {
    acc[static_cast<std::size_t>(i)] = rng.uniform();
    const Index lo = static_cast<Index>(rng.below(static_cast<std::uint64_t>(nR)));
    span[static_cast<std::size_t>(i)] =
        Run{lo, lo + static_cast<Index>(rng.below(5))};
  }
}

void scramble(World& w, std::uint64_t seed) {
  Rng rng(seed);
  for (const std::string& rn : w.regionNames()) {
    region::Region& r = w.region(rn);
    for (const std::string& f : r.fieldNames()) {
      switch (r.fieldType(f)) {
        case FieldType::F64:
          for (double& v : r.f64(f)) v = rng.uniform() * 1e6;
          break;
        case FieldType::Idx:
          for (Index& v : r.idx(f)) v = static_cast<Index>(rng.below(1000));
          break;
        case FieldType::Range:
          for (Run& v : r.range(f)) v = Run{0, static_cast<Index>(rng.below(9))};
          break;
      }
    }
  }
}

void expectWorldsBitwiseEqual(const World& want, const World& got) {
  ASSERT_EQ(want.regionNames(), got.regionNames());
  for (const std::string& rn : want.regionNames()) {
    const region::Region& a = want.region(rn);
    const region::Region& b = got.region(rn);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.fieldNames(), b.fieldNames());
    for (const std::string& f : a.fieldNames()) {
      ASSERT_EQ(a.fieldType(f), b.fieldType(f));
      switch (a.fieldType(f)) {
        case FieldType::F64: {
          auto ca = a.f64(f);
          auto cb = b.f64(f);
          for (std::size_t i = 0; i < ca.size(); ++i) {
            EXPECT_EQ(std::bit_cast<std::uint64_t>(ca[i]),
                      std::bit_cast<std::uint64_t>(cb[i]))
                << rn << "." << f << "[" << i << "]";
          }
          break;
        }
        case FieldType::Idx: {
          auto ca = a.idx(f);
          auto cb = b.idx(f);
          for (std::size_t i = 0; i < ca.size(); ++i) {
            EXPECT_EQ(ca[i], cb[i]) << rn << "." << f << "[" << i << "]";
          }
          break;
        }
        case FieldType::Range: {
          auto ca = a.range(f);
          auto cb = b.range(f);
          for (std::size_t i = 0; i < ca.size(); ++i) {
            EXPECT_EQ(ca[i], cb[i]) << rn << "." << f << "[" << i << "]";
          }
          break;
        }
      }
    }
  }
}

TEST(Snapshot, WorldRoundTripsBitwise) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    World original;
    buildWorld(original, seed);
    BinaryWriter w;
    region::snapshotWorld(w, original);

    // Same structure, different data: the restore must overwrite all of it.
    World target;
    buildWorld(target, seed);
    scramble(target, seed + 99);

    BinaryReader r(w.payload());
    region::restoreWorld(r, target);
    expectWorldsBitwiseEqual(original, target);
  }
}

TEST(Snapshot, StructureMismatchThrowsWithoutPartialRestore) {
  World original;
  buildWorld(original, 1);
  BinaryWriter w;
  region::snapshotWorld(w, original);

  // Different region size.
  {
    World other;
    other.addRegion("R", 5).addField("val", FieldType::F64);
    BinaryReader r(w.payload());
    EXPECT_THROW(region::restoreWorld(r, other), CheckpointCorruption);
  }
  // Same regions, different field type.
  {
    World other;
    buildWorld(other, 1);
    scramble(other, 7);
    // Truncate the payload: decode must fail before any column is written.
    const auto full = w.payload();
    BinaryReader r(full.subspan(0, full.size() / 2));
    const std::vector<double> before(other.region("R").f64("val").begin(),
                                     other.region("R").f64("val").end());
    EXPECT_THROW(region::restoreWorld(r, other), CheckpointCorruption);
    const std::vector<double> after(other.region("R").f64("val").begin(),
                                    other.region("R").f64("val").end());
    EXPECT_EQ(before, after) << "failed restore must not touch the World";
  }
}

TEST(CheckpointManager, RetainsLastKAndWritesManifest) {
  TempDir dir("mgr");
  World w;
  buildWorld(w, 3);
  std::map<std::string, Partition> externals;
  externals.emplace("p_ext", Partition("R", {w.region("R").indexSpace()}));

  runtime::CheckpointManager mgr(dir.str(), /*retain=*/3);
  for (std::uint64_t launch = 1; launch <= 5; ++launch) {
    mgr.write(w, externals, launch, /*planHash=*/42, /*pieces=*/4);
  }
  EXPECT_EQ(mgr.generations(), 3u);
  EXPECT_EQ(mgr.latestGeneration(), 5u);

  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("ckpt-")) ++files;
  }
  EXPECT_EQ(files, 3u);

  std::ifstream manifest(dir.path / "MANIFEST");
  ASSERT_TRUE(manifest.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(manifest, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("launch=3"), std::string::npos) << lines[0];
  EXPECT_NE(lines[2].find("launch=5"), std::string::npos) << lines[2];
  EXPECT_NE(lines[2].find("plan=42"), std::string::npos) << lines[2];
  EXPECT_NE(lines[2].find("pieces=4"), std::string::npos) << lines[2];
}

TEST(CheckpointManager, RestoresLatestAndSurvivesRestart) {
  TempDir dir("restore");
  World w;
  buildWorld(w, 4);
  std::map<std::string, Partition> externals;
  externals.emplace("p_ext", Partition("R", {w.region("R").indexSpace()}));

  {
    runtime::CheckpointManager mgr(dir.str());
    mgr.write(w, externals, /*launchIndex=*/7, /*planHash=*/9, /*pieces=*/2);
  }

  // A brand-new manager (fresh process) must find the generation on disk.
  runtime::CheckpointManager mgr(dir.str());
  EXPECT_EQ(mgr.generations(), 1u);

  World target;
  buildWorld(target, 4);
  scramble(target, 11);
  const auto restored = mgr.restoreLatest(target, /*planHash=*/9);
  EXPECT_EQ(restored.meta.launchIndex, 7u);
  EXPECT_EQ(restored.meta.pieces, 2u);
  EXPECT_EQ(restored.fallbacks, 0);
  EXPECT_EQ(restored.externals, externals);
  expectWorldsBitwiseEqual(w, target);
}

TEST(CheckpointManager, FallsBackPastCorruptGenerations) {
  TempDir dir("fallback");
  World w;
  buildWorld(w, 5);
  const std::vector<double> launch1Val(w.region("R").f64("val").begin(),
                                       w.region("R").f64("val").end());

  runtime::CheckpointManager mgr(dir.str(), /*retain=*/4);
  mgr.write(w, {}, 1, 0, 2);
  scramble(w, 21);  // generation 2 checkpoints different data
  mgr.write(w, {}, 2, 0, 2);

  // Corrupt the newest generation on disk (flip payload bytes).
  const std::string newest = (dir.path / "ckpt-000002.dpc").string();
  std::vector<std::uint8_t> file = slurp(newest);
  ASSERT_GT(file.size(), 64u);
  for (std::size_t i = 40; i < 48; ++i) file[i] ^= 0xFF;
  dump(newest, file);

  World target;
  buildWorld(target, 5);
  scramble(target, 33);
  const auto restored = mgr.restoreLatest(target);
  EXPECT_EQ(restored.meta.launchIndex, 1u);
  EXPECT_EQ(restored.fallbacks, 1);
  const std::vector<double> got(target.region("R").f64("val").begin(),
                                target.region("R").f64("val").end());
  EXPECT_EQ(got, launch1Val);
}

TEST(CheckpointManager, ThrowsWhenEveryGenerationIsCorrupt) {
  TempDir dir("allbad");
  World w;
  buildWorld(w, 6);
  runtime::CheckpointManager mgr(dir.str());
  mgr.write(w, {}, 1, 0, 2);
  mgr.write(w, {}, 2, 0, 2);

  for (const auto& entry : fs::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("ckpt-")) continue;
    std::vector<std::uint8_t> file = slurp(entry.path().string());
    file.resize(file.size() / 2);  // truncate
    dump(entry.path().string(), file);
  }
  World target;
  buildWorld(target, 6);
  EXPECT_THROW((void)mgr.restoreLatest(target), CheckpointCorruption);
}

TEST(CheckpointManager, SkipsGenerationsFromOtherPlans) {
  TempDir dir("planhash");
  World w;
  buildWorld(w, 8);
  runtime::CheckpointManager mgr(dir.str());
  mgr.write(w, {}, 1, /*planHash=*/100, 2);
  mgr.write(w, {}, 2, /*planHash=*/200, 2);  // e.g. a different binary

  World target;
  buildWorld(target, 8);
  scramble(target, 1);
  const auto restored = mgr.restoreLatest(target, /*planHash=*/100);
  EXPECT_EQ(restored.meta.launchIndex, 1u);
  EXPECT_EQ(restored.fallbacks, 1);
}

TEST(CheckpointManager, CorruptCheckpointFaultIsCaughtOnRestore) {
  TempDir dir("inject");
  World w;
  buildWorld(w, 9);
  const std::vector<double> cleanVal(w.region("R").f64("val").begin(),
                                     w.region("R").f64("val").end());

  FaultInjector inj(123);
  FaultSpec corrupt;
  corrupt.kind = FaultKind::CorruptCheckpoint;
  corrupt.afterArrivals = 1;
  corrupt.maxFires = 1;
  inj.arm("checkpoint:write:2", corrupt);

  runtime::CheckpointManager mgr(dir.str());
  mgr.write(w, {}, 1, 0, 2, &inj);
  scramble(w, 5);
  mgr.write(w, {}, 2, 0, 2, &inj);  // silently damaged on the way to disk
  EXPECT_EQ(inj.totalFires(), 1u);

  World target;
  buildWorld(target, 9);
  scramble(target, 77);
  const auto restored = mgr.restoreLatest(target);
  EXPECT_EQ(restored.fallbacks, 1) << "damaged generation must be skipped";
  EXPECT_EQ(restored.meta.launchIndex, 1u);
  const std::vector<double> got(target.region("R").f64("val").begin(),
                                target.region("R").f64("val").end());
  EXPECT_EQ(got, cleanVal);
}

// Builds a version-1 framed file by hand: same magic / size / CRC framing,
// but header version 1 and the pre-hybrid flat run-length IndexSet payload
// (no container tag byte). This is byte-for-byte what a pre-hybrid build
// wrote to disk.
void dumpV1Frame(const std::string& path,
                 std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> file = {'D', 'P', 'C', 'K'};
  const auto putU32 = [&file](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      file.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  const auto putU64 = [&file](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      file.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  putU32(1);  // pre-hybrid format version
  putU64(payload.size());
  putU32(crc32(payload));
  file.insert(file.end(), payload.begin(), payload.end());
  dump(path, file);
}

// Namespace-scope (TEST bodies can't name Run: it collides with the
// inherited testing::Test::Run member): singleton runs {i, i+1} for
// i = lo, lo+2, ... below hi.
std::vector<Run> alternatingSingletons(Index lo, Index hi) {
  std::vector<Run> out;
  for (Index i = lo; i < hi; i += 2) out.push_back(Run{i, i + 1});
  return out;
}

void writeV1IndexSet(BinaryWriter& w, const IndexSet& set) {
  const auto runs = set.runs();
  w.u64(runs.size());
  for (const Run& run : runs) {
    w.i64(run.lo);
    w.i64(run.hi);
  }
}

TEST(CheckpointManager, PreHybridV1StreamRestoresBitExactly) {
  TempDir dir("v1compat");
  World w;
  buildWorld(w, 13);
  const Index nR = w.region("R").size();

  // Externals include a fragmented (alternating-singleton) subregion, the
  // shape most affected by the hybrid container switch on decode.
  std::map<std::string, Partition> externals;
  externals.emplace(
      "p_frag",
      Partition("R", {IndexSet::fromRuns(alternatingSingletons(0, nR)),
                      IndexSet::fromRuns(alternatingSingletons(1, nR))}));

  // v1 payload layout: meta, partition map (flat run lists), world snapshot.
  BinaryWriter payload;
  payload.u64(1);   // meta.generation
  payload.u64(7);   // meta.launchIndex
  payload.u64(21);  // meta.planHash
  payload.u64(2);   // meta.pieces
  payload.u64(externals.size());
  for (const auto& [name, part] : externals) {
    payload.str(name);
    payload.str(part.regionName());
    payload.u64(part.count());
    for (const IndexSet& sub : part.subregions()) {
      writeV1IndexSet(payload, sub);
    }
  }
  region::snapshotWorld(payload, w);  // field columns: unchanged since v1
  dumpV1Frame((dir.path / "ckpt-000001.dpc").string(), payload.payload());

  runtime::CheckpointManager mgr(dir.str());
  ASSERT_EQ(mgr.generations(), 1u);
  World target;
  buildWorld(target, 13);
  scramble(target, 31);
  const auto restored = mgr.restoreLatest(target, /*planHash=*/21);
  EXPECT_EQ(restored.fallbacks, 0);
  EXPECT_EQ(restored.meta.launchIndex, 7u);
  EXPECT_EQ(restored.meta.pieces, 2u);
  EXPECT_EQ(restored.externals, externals);
  expectWorldsBitwiseEqual(w, target);
}

}  // namespace
}  // namespace dpart
