#include "region/index_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/rng.hpp"

namespace dpart::region {
namespace {

TEST(IndexSet, DefaultIsEmpty) {
  IndexSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.runCount(), 0u);
  EXPECT_FALSE(s.contains(0));
}

TEST(IndexSet, IntervalBasics) {
  IndexSet s = IndexSet::interval(3, 8);
  EXPECT_EQ(s.size(), 5);
  EXPECT_EQ(s.runCount(), 1u);
  EXPECT_EQ(s.lowerBound(), 3);
  EXPECT_EQ(s.upperBound(), 8);
  EXPECT_FALSE(s.contains(2));
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(8));
}

TEST(IndexSet, EmptyInterval) {
  EXPECT_TRUE(IndexSet::interval(5, 5).empty());
  EXPECT_TRUE(IndexSet::interval(5, 2).empty());
}

TEST(IndexSet, FromIndicesSortsAndDedups) {
  IndexSet s = IndexSet::fromIndices({5, 1, 2, 2, 3, 9, 1});
  EXPECT_EQ(s.size(), 5);
  EXPECT_EQ(s.toVector(), (std::vector<Index>{1, 2, 3, 5, 9}));
  EXPECT_EQ(s.runCount(), 3u);  // [1,4) {5} {9}
}

TEST(IndexSet, InitializerList) {
  IndexSet s{4, 0, 1};
  EXPECT_EQ(s.toVector(), (std::vector<Index>{0, 1, 4}));
}

TEST(IndexSet, FromRunsCoalescesOverlapsAndAdjacency) {
  IndexSet s = IndexSet::fromRuns({{0, 3}, {3, 5}, {7, 9}, {8, 12}});
  EXPECT_EQ(s.runCount(), 2u);
  EXPECT_EQ(s, IndexSet::interval(0, 5).unionWith(IndexSet::interval(7, 12)));
}

TEST(IndexSet, UnionBasic) {
  IndexSet a = IndexSet::interval(0, 4);
  IndexSet b = IndexSet::interval(2, 8);
  EXPECT_EQ(a.unionWith(b), IndexSet::interval(0, 8));
}

TEST(IndexSet, UnionDisjointKeepsRuns) {
  IndexSet a = IndexSet::interval(0, 2);
  IndexSet b = IndexSet::interval(5, 7);
  IndexSet u = a.unionWith(b);
  EXPECT_EQ(u.size(), 4);
  EXPECT_EQ(u.runCount(), 2u);
}

TEST(IndexSet, IntersectBasic) {
  IndexSet a = IndexSet::fromRuns({{0, 5}, {10, 15}});
  IndexSet b = IndexSet::fromRuns({{3, 12}});
  EXPECT_EQ(a.intersectWith(b), IndexSet::fromRuns({{3, 5}, {10, 12}}));
}

TEST(IndexSet, IntersectEmpty) {
  IndexSet a = IndexSet::interval(0, 5);
  IndexSet b = IndexSet::interval(5, 10);
  EXPECT_TRUE(a.intersectWith(b).empty());
  EXPECT_FALSE(a.intersects(b));
}

TEST(IndexSet, SubtractCarvesHoles) {
  IndexSet a = IndexSet::interval(0, 10);
  IndexSet b = IndexSet::fromRuns({{2, 4}, {6, 7}});
  EXPECT_EQ(a.subtract(b), IndexSet::fromRuns({{0, 2}, {4, 6}, {7, 10}}));
}

TEST(IndexSet, SubtractAll) {
  IndexSet a = IndexSet::interval(3, 6);
  EXPECT_TRUE(a.subtract(IndexSet::interval(0, 100)).empty());
}

TEST(IndexSet, ContainsAll) {
  IndexSet a = IndexSet::fromRuns({{0, 10}, {20, 30}});
  EXPECT_TRUE(a.containsAll(IndexSet::fromRuns({{2, 5}, {25, 30}})));
  EXPECT_FALSE(a.containsAll(IndexSet::fromRuns({{5, 12}})));
  EXPECT_TRUE(a.containsAll(IndexSet{}));
  EXPECT_FALSE(IndexSet{}.containsAll(a));
}

TEST(IndexSet, ToStringFormat) {
  IndexSet s = IndexSet::fromRuns({{0, 4}, {7, 8}});
  EXPECT_EQ(s.toString(), "{[0,4) 7}");
}

TEST(IndexSetBuilder, AscendingFastPath) {
  IndexSetBuilder b;
  for (Index i = 0; i < 10; ++i) b.add(i * 2);
  IndexSet s = b.build();
  EXPECT_EQ(s.size(), 10);
  EXPECT_EQ(s.runCount(), 10u);
}

TEST(IndexSetBuilder, AdjacentCoalesce) {
  IndexSetBuilder b;
  b.add(0);
  b.add(1);
  b.addRun(2, 5);
  IndexSet s = b.build();
  EXPECT_EQ(s, IndexSet::interval(0, 5));
  EXPECT_EQ(s.runCount(), 1u);
}

TEST(IndexSetBuilder, UnsortedInput) {
  IndexSetBuilder b;
  b.add(9);
  b.add(1);
  b.addRun(3, 6);
  b.add(2);
  EXPECT_EQ(b.build(), IndexSet::fromIndices({1, 2, 3, 4, 5, 9}));
}

// ---- Property tests: IndexSet ops agree with std::set reference ----

class IndexSetPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static IndexSet randomSet(Rng& rng, std::set<Index>& ref) {
    std::vector<Index> v;
    const int n = static_cast<int>(rng.below(40));
    for (int i = 0; i < n; ++i) {
      Index x = rng.range(0, 64);
      v.push_back(x);
      ref.insert(x);
    }
    return IndexSet::fromIndices(std::move(v));
  }
};

TEST_P(IndexSetPropertyTest, SetAlgebraMatchesStdSet) {
  Rng rng(GetParam());
  std::set<Index> ra, rb;
  IndexSet a = randomSet(rng, ra);
  IndexSet b = randomSet(rng, rb);

  std::set<Index> runion = ra;
  runion.insert(rb.begin(), rb.end());
  std::set<Index> rinter, rdiff;
  std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::inserter(rinter, rinter.end()));
  std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                      std::inserter(rdiff, rdiff.end()));

  auto toVec = [](const std::set<Index>& s) {
    return std::vector<Index>(s.begin(), s.end());
  };
  EXPECT_EQ(a.unionWith(b).toVector(), toVec(runion));
  EXPECT_EQ(a.intersectWith(b).toVector(), toVec(rinter));
  EXPECT_EQ(a.subtract(b).toVector(), toVec(rdiff));
  EXPECT_EQ(a.intersects(b), !rinter.empty());
  EXPECT_EQ(a.containsAll(b),
            std::includes(ra.begin(), ra.end(), rb.begin(), rb.end()));
  for (Index i = 0; i < 64; ++i) {
    EXPECT_EQ(a.contains(i), ra.contains(i)) << "index " << i;
  }
}

TEST_P(IndexSetPropertyTest, AlgebraicIdentities) {
  Rng rng(GetParam() * 7919 + 13);
  std::set<Index> ra, rb, rc;
  IndexSet a = randomSet(rng, ra);
  IndexSet b = randomSet(rng, rb);
  IndexSet c = randomSet(rng, rc);

  // Commutativity / associativity / distributivity / De Morgan-ish.
  EXPECT_EQ(a.unionWith(b), b.unionWith(a));
  EXPECT_EQ(a.intersectWith(b), b.intersectWith(a));
  EXPECT_EQ(a.unionWith(b).unionWith(c), a.unionWith(b.unionWith(c)));
  EXPECT_EQ(a.intersectWith(b.unionWith(c)),
            a.intersectWith(b).unionWith(a.intersectWith(c)));
  EXPECT_EQ(a.subtract(b).subtract(c), a.subtract(b.unionWith(c)));
  // a = (a-b) u (a n b), disjointly.
  EXPECT_EQ(a.subtract(b).unionWith(a.intersectWith(b)), a);
  EXPECT_FALSE(a.subtract(b).intersects(b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexSetPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace dpart::region
