#include "ir/ir.hpp"

#include <gtest/gtest.h>

#include "ir/interp.hpp"
#include "support/check.hpp"

namespace dpart::ir {
namespace {

using region::FieldType;
using region::IndexSet;
using region::World;

TEST(ReduceOps, Semantics) {
  EXPECT_EQ(applyReduce(ReduceOp::Sum, 2.0, 3.0), 5.0);
  EXPECT_EQ(applyReduce(ReduceOp::Min, 2.0, 3.0), 2.0);
  EXPECT_EQ(applyReduce(ReduceOp::Max, 2.0, 3.0), 3.0);
  EXPECT_EQ(reduceIdentity(ReduceOp::Sum), 0.0);
  EXPECT_EQ(applyReduce(ReduceOp::Min, reduceIdentity(ReduceOp::Min), 7.0),
            7.0);
  EXPECT_EQ(applyReduce(ReduceOp::Max, reduceIdentity(ReduceOp::Max), -7.0),
            -7.0);
}

TEST(LoopBuilder, AssignsSequentialIds) {
  LoopBuilder b("l", "i", "R");
  b.loadF64("x", "R", "a", "i").compute("y", {"x"}, [](auto v) {
    return v[0] * 2;
  });
  b.store("R", "b", "i", "y");
  Loop loop = b.build();
  ASSERT_EQ(loop.body.size(), 3u);
  EXPECT_EQ(loop.body[0].id, 0);
  EXPECT_EQ(loop.body[1].id, 1);
  EXPECT_EQ(loop.body[2].id, 2);
  EXPECT_EQ(loop.stmtCount(), 3);
}

TEST(LoopBuilder, InnerLoopNesting) {
  LoopBuilder b("l", "i", "R");
  b.loadRange("rg", "R", "span", "i");
  b.beginInner("k", "rg");
  b.loadF64("v", "S", "val", "k");
  b.endInner();
  Loop loop = b.build();
  ASSERT_EQ(loop.body.size(), 2u);
  EXPECT_EQ(loop.body[1].kind, StmtKind::InnerLoop);
  ASSERT_EQ(loop.body[1].body.size(), 1u);
  EXPECT_EQ(loop.stmtCount(), 3);
}

TEST(LoopBuilder, UnclosedInnerThrows) {
  LoopBuilder b("l", "i", "R");
  b.loadRange("rg", "R", "span", "i");
  b.beginInner("k", "rg");
  EXPECT_THROW(b.build(), Error);
  EXPECT_THROW(b.beginInner("k2", "rg"), Error);
}

TEST(LoopPrinting, ReadableForms) {
  LoopBuilder b("upd", "p", "Particles");
  b.loadIdx("c", "Particles", "cell", "p");
  b.apply("c2", "h", "c");
  b.reduce("Particles", "pos", "p", "v");
  Loop loop = b.build();
  const std::string s = loop.toString();
  EXPECT_NE(s.find("for (p in Particles)"), std::string::npos);
  EXPECT_NE(s.find("c = Particles[p].cell"), std::string::npos);
  EXPECT_NE(s.find("c2 = h(c)"), std::string::npos);
  EXPECT_NE(s.find("Particles[p].pos += v"), std::string::npos);
}

// ---- Interpreter ----

class InterpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& r = world.addRegion("R", 8);
    r.addField("a", FieldType::F64);
    r.addField("b", FieldType::F64);
    auto a = r.f64("a");
    for (Index i = 0; i < 8; ++i) a[static_cast<std::size_t>(i)] = double(i);
  }
  World world;
};

TEST_F(InterpTest, CenteredCopyLoop) {
  LoopBuilder b("copy", "i", "R");
  b.loadF64("x", "R", "a", "i");
  b.compute("y", {"x"}, [](auto v) { return v[0] + 1.0; });
  b.store("R", "b", "i", "y");
  Loop loop = b.build();
  LoopRunner runner(world, loop);
  runner.runAll();
  auto bcol = world.region("R").f64("b");
  for (Index i = 0; i < 8; ++i) {
    EXPECT_EQ(bcol[static_cast<std::size_t>(i)], double(i) + 1.0);
  }
}

TEST_F(InterpTest, SubsetExecutionOnlyTouchesSubset) {
  LoopBuilder b("copy", "i", "R");
  b.loadF64("x", "R", "a", "i");
  b.store("R", "b", "i", "x");
  Loop loop = b.build();
  LoopRunner runner(world, loop);
  runner.run(IndexSet{1, 3});
  auto bcol = world.region("R").f64("b");
  EXPECT_EQ(bcol[1], 1.0);
  EXPECT_EQ(bcol[3], 3.0);
  EXPECT_EQ(bcol[0], 0.0);
  EXPECT_EQ(bcol[2], 0.0);
}

TEST_F(InterpTest, UncenteredReadThroughFn) {
  world.defineAffineFn("next", "R", "R",
                       [](Index i) { return (i + 1) % 8; });
  LoopBuilder b("shift", "i", "R");
  b.apply("j", "next", "i");
  b.loadF64("x", "R", "a", "j");
  b.store("R", "b", "i", "x");
  Loop loop = b.build();
  LoopRunner runner(world, loop);
  runner.runAll();
  auto bcol = world.region("R").f64("b");
  EXPECT_EQ(bcol[0], 1.0);
  EXPECT_EQ(bcol[7], 0.0);
}

TEST_F(InterpTest, UncenteredReductionAccumulates) {
  world.addRegion("S", 2).addField("sum", FieldType::F64);
  world.defineAffineFn("half", "R", "S",
                       [](Index i) { return i < 4 ? 0 : 1; });
  LoopBuilder b("acc", "i", "R");
  b.apply("j", "half", "i");
  b.loadF64("x", "R", "a", "i");
  b.reduce("S", "sum", "j", "x");
  Loop loop = b.build();
  LoopRunner runner(world, loop);
  runner.runAll();
  auto sum = world.region("S").f64("sum");
  EXPECT_EQ(sum[0], 0.0 + 1 + 2 + 3);
  EXPECT_EQ(sum[1], 4.0 + 5 + 6 + 7);
}

TEST_F(InterpTest, InnerLoopOverRanges) {
  // Sum a[lo..hi) per element, CSR-style.
  auto& rg = world.addRegion("Rows", 2);
  rg.addField("span", FieldType::Range);
  rg.addField("total", FieldType::F64);
  auto span = rg.range("span");
  span[0] = region::Run{0, 3};
  span[1] = region::Run{3, 8};
  LoopBuilder b("rowsum", "i", "Rows");
  b.loadRange("rg", "Rows", "span", "i");
  b.compute("acc0", {}, [](auto) { return 0.0; });
  b.beginInner("k", "rg");
  b.loadF64("v", "R", "a", "k");
  b.reduce("Rows", "total", "i", "v");
  b.endInner();
  Loop loop = b.build();
  LoopRunner runner(world, loop);
  runner.runAll();
  auto total = world.region("Rows").f64("total");
  EXPECT_EQ(total[0], 0.0 + 1 + 2);
  EXPECT_EQ(total[1], 3.0 + 4 + 5 + 6 + 7);
}

TEST_F(InterpTest, HooksObserveAndGuard) {
  struct CountingHooks : ExecHooks {
    int accesses = 0;
    int reducesHandled = 0;
    void onAccess(const Stmt&, Index) override { ++accesses; }
    bool handleReduce(const Stmt&, Index, double) override {
      ++reducesHandled;
      return true;  // swallow all reductions
    }
  };
  LoopBuilder b("acc", "i", "R");
  b.loadF64("x", "R", "a", "i");
  b.reduce("R", "b", "i", "x");
  Loop loop = b.build();
  LoopRunner runner(world, loop);
  CountingHooks hooks;
  runner.runAll(&hooks);
  EXPECT_EQ(hooks.accesses, 16);        // one load + one reduce per element
  EXPECT_EQ(hooks.reducesHandled, 8);
  auto bcol = world.region("R").f64("b");
  EXPECT_EQ(bcol[5], 0.0);  // reductions were swallowed by the hook
}

TEST_F(InterpTest, WriteGuardSkipsNonOwned) {
  struct OwnerHooks : ExecHooks {
    bool shouldWrite(const Stmt&, Index t) override { return t % 2 == 0; }
  };
  LoopBuilder b("copy", "i", "R");
  b.loadF64("x", "R", "a", "i");
  b.store("R", "b", "i", "x");
  Loop loop = b.build();
  LoopRunner runner(world, loop);
  OwnerHooks hooks;
  runner.runAll(&hooks);
  auto bcol = world.region("R").f64("b");
  EXPECT_EQ(bcol[2], 2.0);
  EXPECT_EQ(bcol[3], 0.0);
}

TEST_F(InterpTest, OutOfBoundsAccessThrows) {
  world.defineAffineFn("oob", "R", "R", [](Index i) { return i + 100; });
  LoopBuilder b("bad", "i", "R");
  b.apply("j", "oob", "i");
  b.loadF64("x", "R", "a", "j");
  b.store("R", "b", "i", "x");
  Loop loop = b.build();
  LoopRunner runner(world, loop);
  EXPECT_THROW(runner.runAll(), Error);
}

TEST_F(InterpTest, RunSerialExecutesAllLoops) {
  Program prog;
  prog.name = "two-phase";
  {
    LoopBuilder b("phase1", "i", "R");
    b.loadF64("x", "R", "a", "i");
    b.store("R", "b", "i", "x");
    prog.loops.push_back(b.build());
  }
  {
    LoopBuilder b("phase2", "i", "R");
    b.loadF64("x", "R", "b", "i");
    b.compute("y", {"x"}, [](auto v) { return v[0] * 10; });
    b.store("R", "b", "i", "y");
    prog.loops.push_back(b.build());
  }
  runSerial(world, prog);
  EXPECT_EQ(world.region("R").f64("b")[4], 40.0);
}

}  // namespace
}  // namespace dpart::ir
