// Differential tests for the parallel, memoizing evaluation pipeline: the
// pooled kernels and the memo cache must be observationally identical to the
// serial reference semantics, across point- and range-valued fns,
// out-of-bounds fn values, aliased sources, and empty subregions.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dpl/evaluator.hpp"
#include "region/dpl_ops.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace dpart::dpl {
namespace {

using region::FieldType;
using region::Index;
using region::IndexSet;
using region::Partition;
using region::Region;
using region::Run;
using region::World;

// A world with two regions A and B and fns in both directions:
//   A[.].to : A -> B (point, with out-of-bounds values)
//   A[.].span : A -> B (range, with empty and partially out-of-bounds runs)
//   B[.].to / B[.].span : the mirror images
//   affAB / affBA : affine maps that walk off both ends of the codomain
struct RandomWorld {
  RandomWorld(Rng& rng, Index n, Index m) : world() {
    Region& a = world.addRegion("A", n);
    Region& b = world.addRegion("B", m);
    fill(rng, a, n, m);
    fill(rng, b, m, n);
    world.defineFieldFn("A", "to", "B");
    world.defineRangeFn("A", "span", "B");
    world.defineFieldFn("B", "to", "A");
    world.defineRangeFn("B", "span", "A");
    world.defineAffineFn("affAB", "A", "B",
                         [m](Index i) { return i * 3 - m / 2; });
    world.defineAffineFn("affBA", "B", "A",
                         [n](Index i) { return n - 1 - i * 2; });
  }

  static void fill(Rng& rng, Region& r, Index n, Index codomain) {
    r.addField("to", FieldType::Idx);
    r.addField("span", FieldType::Range);
    auto to = r.idx("to");
    auto span = r.range("span");
    for (Index i = 0; i < n; ++i) {
      // ~10% of pointers fall outside [0, codomain) on either side.
      to[static_cast<std::size_t>(i)] = rng.range(-3, codomain + 3);
      // Runs: ~20% empty, bounds free to stick out of the codomain.
      Index lo = rng.range(-2, codomain + 2);
      Index len = rng.chance(0.2) ? 0 : rng.range(0, 5);
      span[static_cast<std::size_t>(i)] = Run{lo, lo + len};
    }
  }

  World world;
};

// A random partition with `pieces` subregions over [0, n): possibly aliased,
// possibly with empty subregions, possibly not covering the region.
Partition randomPartition(Rng& rng, const std::string& regionName, Index n,
                          std::size_t pieces) {
  std::vector<IndexSet> subs;
  subs.reserve(pieces);
  for (std::size_t j = 0; j < pieces; ++j) {
    if (rng.chance(0.15) || n == 0) {
      subs.push_back(IndexSet());  // empty subregion
      continue;
    }
    std::vector<Run> runs;
    const std::size_t k = 1 + rng.below(4);
    for (std::size_t t = 0; t < k; ++t) {
      const Index lo = rng.range(0, n);
      const Index len = rng.range(0, std::min<Index>(n - lo, 16) + 1);
      runs.push_back(Run{lo, lo + len});
    }
    subs.push_back(IndexSet::fromRuns(std::move(runs)));
  }
  return Partition(regionName, std::move(subs));
}

TEST(DplParallelEquivalence, KernelsMatchSerialReference) {
  ThreadPool pool(4);
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    Rng rng(0x9e3779b9 + trial);
    const Index n = rng.range(1, 600);
    const Index m = rng.range(1, 400);
    RandomWorld w(rng, n, m);
    const std::size_t pieces = 1 + rng.below(6);
    const Partition srcA = randomPartition(rng, "A", n, pieces);
    const Partition srcB = randomPartition(rng, "B", m, pieces);

    for (const char* fn : {"A[.].to", "A[.].span", "affAB"}) {
      EXPECT_EQ(region::imagePartition(w.world, srcA, fn, "B"),
                region::imagePartition(w.world, srcA, fn, "B", &pool))
          << "image fn=" << fn << " trial=" << trial;
    }
    for (const char* fn : {"A[.].to", "A[.].span", "affAB"}) {
      EXPECT_EQ(region::preimagePartition(w.world, "A", fn, srcB),
                region::preimagePartition(w.world, "A", fn, srcB, &pool))
          << "preimage fn=" << fn << " trial=" << trial;
    }
    const Partition other = randomPartition(rng, "A", n, pieces);
    EXPECT_EQ(region::unionPartitions(srcA, other),
              region::unionPartitions(srcA, other, &pool));
    EXPECT_EQ(region::intersectPartitions(srcA, other),
              region::intersectPartitions(srcA, other, &pool));
    EXPECT_EQ(region::subtractPartitions(srcA, other),
              region::subtractPartitions(srcA, other, &pool));
  }
}

// Whole-program differential: serial + memo-off vs pooled + memo-on.
TEST(DplParallelEquivalence, ProgramsMatchSerialReference) {
  for (std::uint64_t trial = 0; trial < 15; ++trial) {
    Rng rng(0xc0ffee + trial);
    const Index n = rng.range(1, 500);
    const Index m = rng.range(1, 300);
    RandomWorld w(rng, n, m);
    const std::size_t pieces = 1 + rng.below(5);

    Program prog;
    prog.append("PB", equalOf("B"));
    prog.append("Q1", preimage("A", "A[.].to", symbol("PB")));
    prog.append("Q2", image(symbol("Q1"), "A[.].span", "B"));
    prog.append("Q3", unionOf(preimage("A", "A[.].to", symbol("PB")),
                              preimage("A", "affAB", symbol("PB"))));
    prog.append("Q4", subtractOf(symbol("Q1"), symbol("Q3")));
    prog.append("Q5", intersectOf(image(symbol("Q3"), "A[.].to", "B"),
                                  image(symbol("Q3"), "A[.].to", "B")));

    Evaluator serial(w.world, pieces);
    serial.setMemoize(false);
    Evaluator parallel(w.world, pieces, /*threads=*/4);
    const Partition ext = randomPartition(rng, "B", m, pieces);
    serial.bind("X", ext);
    parallel.bind("X", ext);
    prog.append("Q6", unionOf(symbol("Q2"), symbol("X")));

    const auto& envA = serial.run(prog);
    const auto& envB = parallel.run(prog);
    ASSERT_EQ(envA.size(), envB.size());
    for (const auto& [name, part] : envA) {
      EXPECT_EQ(part, envB.at(name)) << name << " trial=" << trial;
    }
    EXPECT_EQ(serial.counters().cacheHits, 0u);
    EXPECT_GT(parallel.counters().cacheHits, 0u)
        << "duplicated subtrees should hit the memo cache";
  }
}

TEST(DplParallelEquivalence, DuplicatedSubexpressionsHitCache) {
  Rng rng(42);
  RandomWorld w(rng, 64, 32);
  Evaluator ev(w.world, 4);
  Program prog;
  prog.append("PB", equalOf("B"));
  // The same preimage subtree appears three times across two statements.
  prog.append("Q1", preimage("A", "A[.].to", symbol("PB")));
  prog.append("Q2", unionOf(preimage("A", "A[.].to", symbol("PB")),
                            preimage("A", "A[.].to", symbol("PB"))));
  ev.run(prog);
  EXPECT_GE(ev.counters().cacheHits, 2u);
  EXPECT_GT(ev.counters().cacheMisses, 0u);

  Evaluator ref(w.world, 4);
  ref.setMemoize(false);
  const auto& envRef = ref.run(prog);
  for (const auto& [name, part] : envRef) {
    EXPECT_EQ(part, ev.partition(name)) << name;
  }
  EXPECT_GT(ev.counters().ops[PerfCounters::kPreimage].invocations, 0u);
  EXPECT_GT(ev.counters().ops[PerfCounters::kPreimage].elements, 0u);
}

TEST(DplParallelEquivalence, CommutativeOperandOrderIsCanonicalized) {
  Rng rng(7);
  RandomWorld w(rng, 40, 20);
  Evaluator ev(w.world, 2);
  ev.bind("P", randomPartition(rng, "A", 40, 2));
  ev.bind("Q", randomPartition(rng, "A", 40, 2));
  const ExprPtr pq = unionOf(image(symbol("P"), "A[.].to", "B"),
                             image(symbol("Q"), "A[.].to", "B"));
  const ExprPtr qp = unionOf(image(symbol("Q"), "A[.].to", "B"),
                             image(symbol("P"), "A[.].to", "B"));
  const Partition first = ev.eval(pq);
  const std::uint64_t missesAfterFirst = ev.counters().cacheMisses;
  const Partition second = ev.eval(qp);  // same sets, flipped operand order
  EXPECT_EQ(first, second);
  EXPECT_EQ(ev.counters().cacheMisses, missesAfterFirst);
  // The union node itself hits (canonical operand order), short-circuiting
  // before the child images are even consulted.
  EXPECT_GE(ev.counters().cacheHits, 1u);
}

TEST(DplParallelEquivalence, RebindingInvalidatesCache) {
  Rng rng(11);
  RandomWorld w(rng, 40, 20);
  Evaluator ev(w.world, 2);
  ev.bind("P", Partition("A", {IndexSet::interval(0, 10), IndexSet()}));
  const ExprPtr e = image(symbol("P"), "A[.].to", "B");
  const Partition before = ev.eval(e);
  ev.bind("P", Partition("A", {IndexSet::interval(10, 40), IndexSet()}));
  const Partition after = ev.eval(e);
  // The rebound symbol must not serve the stale cached image.
  Evaluator ref(w.world, 2);
  ref.setMemoize(false);
  ref.bind("P", Partition("A", {IndexSet::interval(10, 40), IndexSet()}));
  EXPECT_EQ(after, ref.eval(e));
}

TEST(DplParallelEquivalence, EmptyRegionAndEmptyPartitionEdgeCases) {
  ThreadPool pool(3);
  World world;
  world.addRegion("A", 0);
  Region& b = world.addRegion("B", 5);
  b.addField("to", FieldType::Idx);
  auto to = b.idx("to");
  for (Index i = 0; i < 5; ++i) to[static_cast<std::size_t>(i)] = 7;  // OOB
  world.defineFieldFn("B", "to", "A");

  const Partition emptySrc("B", {IndexSet(), IndexSet(), IndexSet()});
  EXPECT_EQ(region::imagePartition(world, emptySrc, "B[.].to", "A"),
            region::imagePartition(world, emptySrc, "B[.].to", "A", &pool));
  const Partition pa("A", {IndexSet(), IndexSet()});
  EXPECT_EQ(region::preimagePartition(world, "B", "B[.].to", pa),
            region::preimagePartition(world, "B", "B[.].to", pa, &pool));
  // All fn values miss region A entirely: images are empty.
  const Partition full("B", {IndexSet::interval(0, 5), IndexSet()});
  const Partition img =
      region::imagePartition(world, full, "B[.].to", "A", &pool);
  EXPECT_TRUE(img.sub(0).empty());
}

}  // namespace
}  // namespace dpart::dpl
