// Unit tests for the CP propagation layer under the solver: interval bounds
// arithmetic, the DomainStore, vocabulary propagators (prunes, refutations,
// first-conflict provenance) and the restartable search heuristics.

#include "constraint/propagate.hpp"

#include <gtest/gtest.h>

#include "constraint/solver.hpp"
#include "constraint/system.hpp"

namespace dpart::constraint {
namespace {

using dpl::equalOf;
using dpl::image;
using dpl::preimage;
using dpl::subtractOf;
using dpl::symbol;
using dpl::unionOf;

constexpr std::size_t kMax = PieceBounds::kUnbounded;

class BoundsTest : public ::testing::Test {
 protected:
  BoundsTest() {
    sizes["R"] = 100;
    sizes["S"] = 10;
    env.regionSizes = &sizes;
    env.pieces = 4;
    env.rangeFns = &rangeFns;
    env.regionOf = [this](const std::string& sym) {
      auto it = symbolRegions.find(sym);
      return it == symbolRegions.end() ? std::string() : it->second;
    };
  }

  std::map<std::string, std::size_t> sizes;
  std::set<std::string> rangeFns;
  std::map<std::string, std::string> symbolRegions;
  BoundsEnv env;
};

TEST_F(BoundsTest, EqualIsExact) {
  const PieceBounds b = boundsOf(*equalOf("R"), env);
  EXPECT_EQ(b.maxPieceLo, 25u);  // ceil(100/4)
  EXPECT_EQ(b.maxPieceHi, 25u);
  EXPECT_EQ(b.totalLo, 100u);
  EXPECT_EQ(b.totalHi, 100u);
}

TEST_F(BoundsTest, EqualOfUnevenRegionRoundsUp) {
  sizes["T"] = 10;
  const PieceBounds b = boundsOf(*equalOf("T"), env);
  EXPECT_EQ(b.maxPieceLo, 3u);  // ceil(10/4)
  EXPECT_EQ(b.maxPieceHi, 3u);
}

TEST_F(BoundsTest, FixedSymbolIsAnyPartitionOfItsRegion) {
  symbolRegions["X"] = "S";
  const PieceBounds b = boundsOf(*symbol("X"), env);
  EXPECT_EQ(b.maxPieceLo, 0u);
  EXPECT_EQ(b.maxPieceHi, 10u);
  EXPECT_EQ(b.totalLo, 0u);
  EXPECT_EQ(b.totalHi, 40u);  // 4 pieces x 10
}

TEST_F(BoundsTest, UnknownSymbolIsUnbounded) {
  const PieceBounds b = boundsOf(*symbol("Y"), env);
  EXPECT_EQ(b.maxPieceHi, kMax);
  EXPECT_EQ(b.totalHi, kMax);
}

TEST_F(BoundsTest, UnionAddsUppersKeepsMaxLowers) {
  symbolRegions["X"] = "S";
  const PieceBounds b = boundsOf(*unionOf(equalOf("S"), symbol("X")), env);
  // equal(S): maxPiece exactly 3 (ceil(10/4)), total exactly 10.
  EXPECT_EQ(b.maxPieceLo, 3u);
  EXPECT_EQ(b.maxPieceHi, 10u);  // 3 + 10, clamped to |S| = 10
  EXPECT_EQ(b.totalLo, 10u);
  EXPECT_EQ(b.totalHi, 50u);  // 10 + 40
}

TEST_F(BoundsTest, IntersectTakesMinUppers) {
  symbolRegions["X"] = "S";
  const PieceBounds b =
      boundsOf(*dpl::intersectOf(equalOf("S"), symbol("X")), env);
  EXPECT_EQ(b.maxPieceLo, 0u);
  EXPECT_EQ(b.maxPieceHi, 3u);
  EXPECT_EQ(b.totalHi, 10u);
}

TEST_F(BoundsTest, SubtractLowersByUpperOfSubtrahend) {
  symbolRegions["X"] = "S";
  const PieceBounds b = boundsOf(*subtractOf(equalOf("R"), symbol("X")), env);
  // 25 - up-to-10 per piece; 100 - up-to-40 total.
  EXPECT_EQ(b.maxPieceLo, 15u);
  EXPECT_EQ(b.maxPieceHi, 25u);
  EXPECT_EQ(b.totalLo, 60u);
  EXPECT_EQ(b.totalHi, 100u);
}

TEST_F(BoundsTest, PointImageBoundedByArgAndTarget) {
  const PieceBounds b = boundsOf(*image(equalOf("R"), "f", "S"), env);
  // A point function maps <= 25 arg elements into <= |S| = 10 targets.
  EXPECT_EQ(b.maxPieceHi, 10u);
  EXPECT_EQ(b.totalHi, 40u);
}

TEST_F(BoundsTest, RangeImageOnlyBoundedByTarget) {
  rangeFns.insert("F");
  const PieceBounds b = boundsOf(*image(equalOf("S"), "F", "R"), env);
  // One range-valued entry can cover many targets: arg size is no bound.
  EXPECT_EQ(b.maxPieceHi, 100u);
  EXPECT_EQ(b.totalHi, 400u);
}

TEST_F(BoundsTest, PreimageBoundedBySourceRegion) {
  const PieceBounds b = boundsOf(*preimage("R", "f", equalOf("S")), env);
  EXPECT_EQ(b.maxPieceHi, 100u);
  EXPECT_EQ(b.totalHi, 400u);
}

TEST_F(BoundsTest, TotalLowerLiftsMaxPieceLower) {
  // equal(R) u equal(R): total >= 100 over 4 pieces forces a >= 25 piece.
  const PieceBounds b = boundsOf(*unionOf(equalOf("R"), equalOf("R")), env);
  EXPECT_GE(b.maxPieceLo, 25u);
}

// ---- DomainStore ----------------------------------------------------------

TEST(DomainStoreTest, PaperOrderIsIdentity) {
  DomainStore dom;
  dom.add("A", equalOf("R"));
  dom.add("B", equalOf("S"));
  dom.add("A", preimage("R", "f", equalOf("S")));
  EXPECT_EQ(dom.order(SearchHeuristic::PaperOrder),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(DomainStoreTest, SmallestDomainGroupsBySymbol) {
  DomainStore dom;
  dom.add("A", equalOf("R"));
  dom.add("B", equalOf("S"));
  dom.add("A", preimage("R", "f", equalOf("S")));
  // B has 1 live candidate, A has 2: B's indices come first.
  EXPECT_EQ(dom.order(SearchHeuristic::SmallestDomain),
            (std::vector<std::size_t>{1, 0, 2}));
  EXPECT_EQ(dom.liveCount("A"), 2u);
  dom.kill(0);
  EXPECT_EQ(dom.liveCount("A"), 1u);
}

// ---- Vocabulary propagators through the full solver -----------------------

class VocabSolveTest : public ::testing::Test {
 protected:
  SolverConfig config(SolverVocabulary vocab) {
    SolverConfig cfg;
    cfg.vocab = std::move(vocab);
    cfg.regionSizes = {{"R", 100}, {"S", 10}};
    cfg.pieces = 4;
    return cfg;
  }

  System iterSystem() {
    System sys;
    sys.declareSymbol("P1", "R");
    sys.addPart(symbol("P1"), "R");
    sys.addDisj(symbol("P1"));
    sys.addComp(symbol("P1"), "R");
    return sys;
  }
};

TEST_F(VocabSolveTest, EmptyVocabularySolvesAsUsual) {
  Solver solver(iterSystem(), {}, config({}));
  const Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok);
  EXPECT_EQ(sol.assignments.at("P1")->toString(), "equal(R)");
  EXPECT_FALSE(sol.conflict.valid());
}

TEST_F(VocabSolveTest, CapacityPigeonholeRefutesCompleteSymbol) {
  SolverVocabulary vocab;
  vocab.capacity["P1"] = 24;  // < ceil(100/4)
  Solver solver(iterSystem(), {}, config(std::move(vocab)));
  const Solution sol = solver.solve();
  ASSERT_FALSE(sol.ok);
  ASSERT_TRUE(sol.conflict.valid());
  EXPECT_EQ(sol.conflict.rule, "capacity-comp");
  EXPECT_EQ(sol.conflict.symbol, "P1");
  EXPECT_NE(sol.conflict.detail.find("cap=24"), std::string::npos);
  EXPECT_NE(sol.failure.find("capacity-comp"), std::string::npos);
}

TEST_F(VocabSolveTest, CapacityAtTheBoundSolves) {
  SolverVocabulary vocab;
  vocab.capacity["P1"] = 25;  // exactly ceil(100/4)
  Solver solver(iterSystem(), {}, config(std::move(vocab)));
  const Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok);
  EXPECT_GE(sol.stats.propagations, 1u);
}

TEST_F(VocabSolveTest, ReplicationCeilingBelowOneRefutesComplete) {
  SolverVocabulary vocab;
  vocab.replication["P1"] = {0.0, 0.5};  // total <= 50 < |R|
  Solver solver(iterSystem(), {}, config(std::move(vocab)));
  const Solution sol = solver.solve();
  ASSERT_FALSE(sol.ok);
  ASSERT_TRUE(sol.conflict.valid());
  EXPECT_EQ(sol.conflict.rule, "replicate-comp");
}

TEST_F(VocabSolveTest, ReplicationFloorAboveOneRefutesDisjoint) {
  SolverVocabulary vocab;
  vocab.replication["P1"] = {2.0, 0.0};  // total >= 200 > |R|
  Solver solver(iterSystem(), {}, config(std::move(vocab)));
  const Solution sol = solver.solve();
  ASSERT_FALSE(sol.ok);
  ASSERT_TRUE(sol.conflict.valid());
  EXPECT_EQ(sol.conflict.rule, "replicate-disj");
}

TEST_F(VocabSolveTest, SelfAntiAffinityRefutesCompleteSymbol) {
  SolverVocabulary vocab;
  vocab.antiAffine.push_back({"P1", "P1", "R.a", "R.b"});
  Solver solver(iterSystem(), {}, config(std::move(vocab)));
  const Solution sol = solver.solve();
  ASSERT_FALSE(sol.ok);
  ASSERT_TRUE(sol.conflict.valid());
  EXPECT_EQ(sol.conflict.rule, "anti-self");
  // Provenance names the originating fields, not just symbols.
  EXPECT_NE(sol.conflict.detail.find("R.a"), std::string::npos);
}

TEST_F(VocabSolveTest, ColocationForcesIdenticalAssignments) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.addPart(symbol("P1"), "R");
  sys.addDisj(symbol("P1"));
  sys.addComp(symbol("P1"), "R");
  sys.declareSymbol("P2", "R");
  sys.addPart(symbol("P2"), "R");
  SolverVocabulary vocab;
  vocab.colocated.push_back({"P1", "P2", "R.a", "R.b"});
  Solver solver(sys, {}, config(std::move(vocab)));
  const Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok);
  EXPECT_EQ(sol.assignments.at("P1")->toString(),
            sol.assignments.at("P2")->toString());
  EXPECT_GE(sol.stats.prunes + sol.stats.branches, 1u);
}

TEST_F(VocabSolveTest, ColocationAcrossRegionsIsInfeasibleWithProvenance) {
  // P1 (over R) can only become equal(R), P2 (over S) only equal(S): the
  // colocate prune empties P2's domain and the first conflict names the
  // rule, the symbol and the wanted expression.
  System sys;
  sys.declareSymbol("P1", "R");
  sys.addPart(symbol("P1"), "R");
  sys.addDisj(symbol("P1"));
  sys.addComp(symbol("P1"), "R");
  sys.declareSymbol("P2", "S");
  sys.addPart(symbol("P2"), "S");
  sys.addDisj(symbol("P2"));
  sys.addComp(symbol("P2"), "S");
  SolverVocabulary vocab;
  vocab.colocated.push_back({"P1", "P2", "R.a", "S.b"});
  Solver solver(sys, {}, config(std::move(vocab)));
  const Solution sol = solver.solve();
  ASSERT_FALSE(sol.ok);
  ASSERT_TRUE(sol.conflict.valid());
  EXPECT_EQ(sol.conflict.rule, "colocate");
  EXPECT_EQ(sol.conflict.symbol, "P2");
  EXPECT_NE(sol.conflict.detail.find("want=equal(R)"), std::string::npos);
}

TEST_F(VocabSolveTest, ColocationPrunesSurviveUnrelatedBranches) {
  // Regression: candidate lists are rebuilt at every search node, so the
  // colocate prune must rerun even when the intervening branch assigned an
  // unrelated symbol. Branch order is alphabetical here (equal depth):
  // A (pair member), then M (unrelated), then Z (partner) — the prune on Z
  // fires two branches below A's assignment. Before propagators reran at
  // every node this solved with Z = equal(T), silently dropping the
  // constraint.
  SolverConfig cfg = config({});
  cfg.regionSizes["T"] = 8;
  cfg.vocab.colocated.push_back({"A", "Z", "R.a", "T.b"});
  System sys;
  for (const auto& [name, region] :
       std::vector<std::pair<std::string, std::string>>{
           {"A", "R"}, {"M", "S"}, {"Z", "T"}}) {
    sys.declareSymbol(name, region);
    sys.addPart(symbol(name), region);
    sys.addDisj(symbol(name));
    sys.addComp(symbol(name), region);
  }
  Solver solver(sys, {}, cfg);
  const Solution sol = solver.solve();
  ASSERT_FALSE(sol.ok);
  ASSERT_TRUE(sol.conflict.valid());
  EXPECT_EQ(sol.conflict.rule, "colocate");
  EXPECT_EQ(sol.conflict.symbol, "Z");
}

TEST_F(VocabSolveTest, AntiAffinityBetweenDistinctSymbols) {
  // Both symbols' only candidate is equal(R); anti-affinity prunes P2's
  // copy (identical to P1's assignment, provably non-empty pieces) and the
  // system becomes infeasible.
  System sys;
  sys.declareSymbol("P1", "R");
  sys.addPart(symbol("P1"), "R");
  sys.addDisj(symbol("P1"));
  sys.addComp(symbol("P1"), "R");
  sys.declareSymbol("P2", "R");
  sys.addPart(symbol("P2"), "R");
  sys.addDisj(symbol("P2"));
  sys.addComp(symbol("P2"), "R");
  SolverVocabulary vocab;
  vocab.antiAffine.push_back({"P1", "P2", "R.a", "R.b"});
  Solver solver(sys, {}, config(std::move(vocab)));
  const Solution sol = solver.solve();
  ASSERT_FALSE(sol.ok);
  ASSERT_TRUE(sol.conflict.valid());
  EXPECT_EQ(sol.conflict.rule, "anti");
  EXPECT_NE(sol.conflict.detail.find("partner=P1"), std::string::npos);
}

TEST_F(VocabSolveTest, SyntaxDirectedEngineIgnoresVocabulary) {
  SolverVocabulary vocab;
  vocab.capacity["P1"] = 1;  // would be wildly infeasible under Propagation
  SolverConfig cfg = config(std::move(vocab));
  cfg.engine = SolverEngine::SyntaxDirected;
  Solver solver(iterSystem(), {}, cfg);
  const Solution sol = solver.solve();
  // The reference engine predates the vocabulary: it must still solve (the
  // parallelizer rejects vocab+SyntaxDirected before ever reaching here).
  EXPECT_TRUE(sol.ok);
  EXPECT_EQ(sol.stats.propagations, 0u);
}

TEST_F(VocabSolveTest, RestartsFireWhenBudgetExhausts) {
  // Three symbols need a depth-4 chain to solve; a 1-step first budget
  // forces at least one restart (with the flipped heuristic and a grown
  // budget) before the search can reach a leaf.
  System sys = iterSystem();
  sys.declareSymbol("P2", "R");
  sys.addPart(symbol("P2"), "R");
  sys.declareSymbol("P3", "R");
  sys.addPart(symbol("P3"), "R");
  SolverConfig cfg = config({});
  cfg.search.restartBudget = 1;  // force budget exhaustion + restart
  cfg.search.restartGrowth = 2.0;
  Solver solver(sys, {}, cfg);
  solver.setMaxSteps(64);
  const Solution sol = solver.solve();
  EXPECT_GE(sol.stats.restarts, 1u);
  ASSERT_TRUE(sol.ok);  // a grown budget eventually fits the search
  EXPECT_EQ(sol.assignments.at("P1")->toString(), "equal(R)");
}

TEST_F(VocabSolveTest, SmallestDomainHeuristicSolvesTheSameSystem) {
  SolverConfig cfg = config({});
  cfg.search.heuristic = SearchHeuristic::SmallestDomain;
  Solver solver(iterSystem(), {}, cfg);
  const Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok);
  EXPECT_EQ(sol.assignments.at("P1")->toString(), "equal(R)");
}

TEST(SearchHeuristicTest, Names) {
  EXPECT_STREQ(toString(SearchHeuristic::PaperOrder), "paper");
  EXPECT_STREQ(toString(SearchHeuristic::SmallestDomain), "smallest");
}

TEST(ConflictInfoTest, ToStringCarriesProvenance) {
  ConflictInfo c;
  EXPECT_FALSE(c.valid());
  c.symbol = "P1";
  c.rule = "capacity-comp";
  c.detail = "cap=3";
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.toString(), "capacity-comp on P1 (cap=3)");
}

}  // namespace
}  // namespace dpart::constraint
