#include <gtest/gtest.h>

#include "apps/circuit.hpp"
#include "apps/miniaero.hpp"
#include "apps/pennant.hpp"
#include "apps/spmv.hpp"
#include "apps/stencil.hpp"
#include "ir/interp.hpp"
#include "runtime/executor.hpp"
#include "sim/cluster.hpp"

namespace dpart::apps {
namespace {

constexpr double kTol = 1e-9;

// Runs `steps` serial iterations of an app program on a freshly built world
// and returns the field values to compare against.
template <typename App, typename... Args>
std::vector<double> serialField(int steps, const std::string& regionName,
                                const std::string& field, Args&&... args) {
  App app(std::forward<Args>(args)...);
  for (int s = 0; s < steps; ++s) {
    ir::runSerial(app.world(), app.program());
  }
  auto col = app.world().region(regionName).f64(field);
  return {col.begin(), col.end()};
}

void expectNear(const std::vector<double>& want, std::span<const double> got,
                const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(want[i], got[i], kTol * (1.0 + std::abs(want[i])))
        << what << "[" << i << "]";
  }
}

// ---- SpMV ----

TEST(SpmvApp, AutoExecutionMatchesSerial) {
  SpmvApp::Params p;
  p.rowsPerPiece = 64;
  p.pieces = 4;
  auto want = serialField<SpmvApp>(1, "Y", "val", p);

  SpmvApp app(p);
  SimSetup setup = app.autoSetup();
  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(app.world(), setup.plan, p.pieces, opts);
  exec.run();
  expectNear(want, app.world().region("Y").f64("val"), "Y.val");
  EXPECT_EQ(exec.bufferedElements(), 0u);  // centered reduction only
}

TEST(SpmvApp, SynthesizedPartitionsAlignWithRows) {
  SpmvApp::Params p;
  p.rowsPerPiece = 32;
  p.pieces = 4;
  SpmvApp app(p);
  SimSetup setup = app.autoSetup();
  const auto& iter = setup.partitions.at(setup.plan.loops[0].iterPartition);
  EXPECT_TRUE(iter.isDisjoint());
  EXPECT_TRUE(iter.isComplete(app.rows()));
  // Mat partition is the flattened IMAGE of the row ranges: disjoint and
  // complete too (CSR rows tile the nonzeros).
  const auto& mat = setup.partitions.at(setup.owners.at("Mat"));
  EXPECT_TRUE(mat.isDisjoint());
  EXPECT_TRUE(mat.isComplete(app.rows() * p.nnzPerRow));
  EXPECT_EQ(mat.maxRunCount(), 1u);
}

// ---- Stencil ----

TEST(StencilApp, AutoExecutionMatchesSerial) {
  StencilApp::Params p;
  p.rowsPerPiece = 16;
  p.cols = 24;
  p.pieces = 4;
  auto want = serialField<StencilApp>(2, "Grid", "in", p);

  StencilApp app(p);
  SimSetup setup = app.autoSetup();
  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(app.world(), setup.plan, p.pieces, opts);
  exec.run();
  exec.run();
  expectNear(want, app.world().region("Grid").f64("in"), "Grid.in");
}

TEST(StencilApp, ManualExecutionMatchesSerial) {
  StencilApp::Params p;
  p.rowsPerPiece = 16;
  p.cols = 24;
  p.pieces = 4;
  auto want = serialField<StencilApp>(2, "Grid", "in", p);

  StencilApp app(p);
  SimSetup setup = app.manualSetup();
  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(app.world(), setup.plan, p.pieces, opts);
  exec.run();
  exec.run();
  expectNear(want, app.world().region("Grid").f64("in"), "Grid.in");
}

TEST(StencilApp, ManualConsolidatesTransfers) {
  StencilApp::Params p;
  p.rowsPerPiece = 16;
  p.cols = 16;
  p.pieces = 4;
  StencilApp app(p);
  SimSetup autoSetup = app.autoSetup();
  StencilApp app2(p);
  SimSetup manualSetup = app2.manualSetup();

  sim::MachineConfig cfg;
  sim::ClusterSim simAuto(app.world(), cfg);
  for (const auto& [r, o] : autoSetup.owners) simAuto.setOwner(r, o);
  sim::ClusterSim simMan(app2.world(), cfg);
  for (const auto& [r, o] : manualSetup.owners) simMan.setOwner(r, o);

  const auto depthsA = sim::ClusterSim::depthsOf(autoSetup.plan.dpl);
  const auto depthsM = sim::ClusterSim::depthsOf(manualSetup.plan.dpl);
  auto ra = simAuto.simulateLoop(autoSetup.plan.loops[0],
                                 autoSetup.partitions, depthsA);
  auto rm = simMan.simulateLoop(manualSetup.plan.loops[0],
                                manualSetup.partitions, depthsM);
  // Manual's consolidated halos move fewer messages and do not re-send the
  // row that the +/-1 and +/-2 image partitions both cover.
  EXPECT_GT(ra.worst.messages, rm.worst.messages);
  EXPECT_GT(ra.totalGhostElems, rm.totalGhostElems);
}

// ---- MiniAero ----

TEST(MiniAeroApp, Has26LoopsAndRelaxesFaceLoops) {
  MiniAeroApp::Params p;
  p.nx = 4;
  p.ny = 4;
  p.nzPerPiece = 4;
  p.pieces = 2;
  MiniAeroApp app(p);
  EXPECT_EQ(app.program().loops.size(), 26u);
  SimSetup setup = app.autoSetup();
  int relaxed = 0;
  for (const auto& pl : setup.plan.loops) {
    if (pl.relaxed) {
      ++relaxed;
      for (const auto& [_, rp] : pl.reduces) {
        EXPECT_EQ(rp.strategy, optimize::ReduceStrategy::Guarded);
      }
    }
  }
  EXPECT_EQ(relaxed, 12);  // 3 face loops x 4 stages
}

TEST(MiniAeroApp, AutoExecutionMatchesSerial) {
  MiniAeroApp::Params p;
  p.nx = 4;
  p.ny = 4;
  p.nzPerPiece = 3;
  p.pieces = 3;
  auto want = serialField<MiniAeroApp>(1, "cells", "q", p);

  MiniAeroApp app(p);
  SimSetup setup = app.autoSetup();
  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(app.world(), setup.plan, p.pieces, opts);
  exec.run();
  expectNear(want, app.world().region("cells").f64("q"), "cells.q");
  EXPECT_EQ(exec.bufferedElements(), 0u);  // relaxation removed all buffers
}

TEST(MiniAeroApp, ManualMeshIsContiguousPerPiece) {
  MiniAeroApp::Params p;
  p.nx = 4;
  p.ny = 4;
  p.nzPerPiece = 4;
  p.pieces = 2;
  MiniAeroApp manual(p, /*duplicatedFaces=*/true);
  SimSetup setup = manual.manualSetup();
  const auto& pf = setup.partitions.at("pf");
  EXPECT_EQ(pf.maxRunCount(), 1u);

  MiniAeroApp autoApp(p);
  SimSetup autoSetup = autoApp.autoSetup();
  // The relaxed face iteration partition is aliased across slab borders and
  // fragmented (one chunk per face-direction group).
  bool sawFragmented = false;
  for (const auto& pl : autoSetup.plan.loops) {
    if (!pl.relaxed) continue;
    const auto& part = autoSetup.partitions.at(pl.iterPartition);
    if (part.maxRunCount() > 1) sawFragmented = true;
  }
  EXPECT_TRUE(sawFragmented);
}

// ---- Circuit ----

TEST(CircuitApp, AutoAndHintExecutionsMatchSerial) {
  CircuitApp::Params p;
  p.pieces = 4;
  p.nodesPerCluster = 128;
  p.wiresPerCluster = 256;
  auto want = serialField<CircuitApp>(2, "rn", "voltage", p);

  {
    CircuitApp app(p);
    SimSetup setup = app.autoSetup();
    runtime::ExecOptions opts;
    opts.validateAccesses = true;
    runtime::PlanExecutor exec(app.world(), setup.plan, p.pieces, opts);
    exec.run();
    exec.run();
    expectNear(want, app.world().region("rn").f64("voltage"), "auto voltage");
  }
  {
    CircuitApp app(p);
    SimSetup setup = app.hintSetup();
    runtime::ExecOptions opts;
    opts.validateAccesses = true;
    runtime::PlanExecutor exec(app.world(), setup.plan, p.pieces, opts);
    exec.bindExternal("pn_private", app.pnPrivate());
    exec.bindExternal("pn_shared", app.pnShared());
    exec.run();
    exec.run();
    expectNear(want, app.world().region("rn").f64("voltage"), "hint voltage");
  }
}

TEST(CircuitApp, ManualExecutionMatchesSerial) {
  CircuitApp::Params p;
  p.pieces = 4;
  p.nodesPerCluster = 128;
  p.wiresPerCluster = 256;
  auto want = serialField<CircuitApp>(2, "rn", "voltage", p);

  CircuitApp app(p);
  SimSetup setup = app.manualSetup();
  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(app.world(), setup.plan, p.pieces, opts);
  for (const auto& [name, part] : setup.partitions) {
    if (setup.plan.externalSymbols.contains(name)) {
      exec.bindExternal(name, part);
    }
  }
  exec.run();
  exec.run();
  expectNear(want, app.world().region("rn").f64("voltage"), "manual voltage");
}

TEST(CircuitApp, HintUsesUserPartitionsAndTightBuffers) {
  CircuitApp::Params p;
  p.pieces = 4;
  p.nodesPerCluster = 256;
  p.wiresPerCluster = 512;
  CircuitApp app(p);
  SimSetup hint = app.hintSetup();
  // Node-loop iteration partition is the user union, not equal(rn).
  const auto& nodeIter =
      hint.partitions.at(hint.plan.loops[2].iterPartition);
  EXPECT_TRUE(nodeIter.isDisjoint());
  EXPECT_TRUE(nodeIter.isComplete(app.totalNodes()));
  EXPECT_NE(hint.plan.dpl.toString().find("pn_private"), std::string::npos);

  // distribute_charge reductions use private sub-partitions.
  for (const auto& [_, rp] : hint.plan.loops[1].reduces) {
    EXPECT_EQ(rp.strategy, optimize::ReduceStrategy::PrivateSplit);
  }

  // The Auto configuration places all shared nodes in subregion 0 of
  // equal(rn).
  CircuitApp app2(p);
  SimSetup autoSetup = app2.autoSetup();
  const auto& owner = autoSetup.partitions.at(autoSetup.owners.at("rn"));
  EXPECT_TRUE(owner.sub(0).containsAll(
      region::IndexSet::interval(0, app2.sharedNodes())));
}

// ---- PENNANT ----

TEST(PennantApp, Has37Loops) {
  PennantApp::Params p;
  p.zx = 4;
  p.zyPerPiece = 4;
  p.pieces = 2;
  PennantApp app(p);
  EXPECT_EQ(app.program().loops.size(), 37u);
}

TEST(PennantApp, AllVariantsMatchSerial) {
  PennantApp::Params p;
  p.zx = 6;
  p.zyPerPiece = 4;
  p.pieces = 3;
  auto want = serialField<PennantApp>(1, "rp", "pu", p);
  auto wantE = serialField<PennantApp>(1, "rz", "ze", p);

  auto checkVariant = [&](const char* name, auto makeSetup) {
    PennantApp app(p);
    SimSetup setup = makeSetup(app);
    runtime::ExecOptions opts;
    opts.validateAccesses = true;
    runtime::PlanExecutor exec(app.world(), setup.plan, p.pieces, opts);
    for (const auto& [pname, part] : setup.partitions) {
      if (setup.plan.externalSymbols.contains(pname)) {
        exec.bindExternal(pname, part);
      }
    }
    exec.run();
    expectNear(want, app.world().region("rp").f64("pu"),
               std::string(name) + " rp.pu");
    expectNear(wantE, app.world().region("rz").f64("ze"),
               std::string(name) + " rz.ze");
  };
  checkVariant("auto", [](PennantApp& a) { return a.autoSetup(); });
  checkVariant("hint1", [](PennantApp& a) { return a.hint1Setup(); });
  checkVariant("hint2", [](PennantApp& a) { return a.hint2Setup(); });
  checkVariant("manual", [](PennantApp& a) { return a.manualSetup(); });
}

TEST(PennantApp, Hint2ReusesGeneratorPartitions) {
  PennantApp::Params p;
  p.zx = 6;
  p.zyPerPiece = 4;
  p.pieces = 4;
  PennantApp app(p);
  SimSetup setup = app.hint2Setup();
  // Side loops iterate directly on rs_p.
  bool sideOnRsP = false;
  for (const auto& pl : setup.plan.loops) {
    if (pl.loop->iterRegion == "rs" && pl.iterPartition == "rs_p") {
      sideOnRsP = true;
    }
  }
  EXPECT_TRUE(sideOnRsP);
  // Point reductions use the user-provided private sub-partition.
  bool usedExternalPrivate = false;
  for (const auto& pl : setup.plan.loops) {
    for (const auto& [_, rp] : pl.reduces) {
      if (rp.privatePart == "rp_p_private") usedExternalPrivate = true;
    }
  }
  EXPECT_TRUE(usedExternalPrivate);
}

TEST(PennantApp, DerivationDepthDropsFromHint1ToHint2) {
  PennantApp::Params p;
  p.zx = 6;
  p.zyPerPiece = 4;
  p.pieces = 4;
  PennantApp a1(p), a2(p);
  SimSetup h1 = a1.hint1Setup();
  SimSetup h2 = a2.hint2Setup();
  auto maxDepth = [](const parallelize::ParallelPlan& plan) {
    int m = 0;
    for (const auto& [_, d] : sim::ClusterSim::depthsOf(plan.dpl)) {
      m = std::max(m, d);
    }
    return m;
  };
  EXPECT_GT(maxDepth(h1.plan), maxDepth(h2.plan));
}

}  // namespace
}  // namespace dpart::apps
