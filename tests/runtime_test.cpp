#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/privileges.hpp"

namespace dpart::runtime {
namespace {

using region::FieldType;
using region::Index;
using region::IndexSet;
using region::Partition;
using region::World;

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallelFor(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SequentialReuse) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallelFor(50, [&](std::size_t i) {
      sum += static_cast<long>(i);
    });
  }
  EXPECT_EQ(sum.load(), 10 * (49 * 50 / 2));
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallelFor(8,
                                [&](std::size_t i) {
                                  if (i == 5) throw Error("boom");
                                }),
               Error);
  // Pool still usable afterwards.
  std::atomic<int> n{0};
  pool.parallelFor(4, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 4);
}

TEST(ThreadPool, ZeroTasksIsFine) {
  ThreadPool pool(2);
  pool.parallelFor(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, MoreTasksThanThreads) {
  ThreadPool pool(1);
  std::atomic<int> n{0};
  pool.parallelFor(64, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 64);
}

// ---- Privileges / non-interference ----

class PrivilegeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world.addRegion("R", 16).addField("a", FieldType::F64);
    world.region("R").addField("b", FieldType::F64);
    world.defineAffineFn("left", "R", "R",
                         [](Index i) { return i > 0 ? i - 1 : 15; });
  }

  World world;
};

TEST_F(PrivilegeTest, RequirementsOfStencilLoop) {
  ir::LoopBuilder b("stencil", "i", "R");
  b.apply("j", "left", "i");
  b.loadF64("x", "R", "a", "j");
  b.loadF64("c", "R", "a", "i");
  b.compute("y", {"x", "c"}, [](auto v) { return v[0] + v[1]; });
  b.store("R", "b", "i", "y");
  ir::Loop loop = b.build();

  parallelize::AutoParallelizer ap(world);
  ir::Program prog;
  prog.loops.push_back(loop);
  parallelize::ParallelPlan plan = ap.plan(prog);

  auto reqs = requirementsOf(plan.loops[0]);
  // Two partitions on R.a (ghost + centered) and one RW on R.b.
  int ro = 0, rw = 0;
  for (const auto& r : reqs) {
    if (r.privilege == Privilege::ReadOnly) ++ro;
    if (r.privilege == Privilege::ReadWrite) ++rw;
  }
  EXPECT_GE(ro, 1);
  EXPECT_EQ(rw, 1);

  // Non-interference holds for every task pair under the synthesized
  // partitions.
  PlanExecutor exec(world, plan, 4);
  exec.preparePartitions();
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_TRUE(nonInterfering(reqs, exec.partitions(), a, c))
          << "tasks " << a << " and " << c << " interfere";
    }
  }
}

TEST_F(PrivilegeTest, InterferenceDetectedOnOverlappingWrites) {
  std::map<std::string, Partition> parts;
  parts.emplace("P", Partition("R", {IndexSet::interval(0, 10),
                                     IndexSet::interval(5, 16)}));
  std::vector<RegionRequirement> reqs{
      RegionRequirement{"P", "R", "a", Privilege::ReadWrite}};
  EXPECT_FALSE(nonInterfering(reqs, parts, 0, 1));
  EXPECT_TRUE(nonInterfering(reqs, parts, 0, 0));
}

TEST_F(PrivilegeTest, ReadsAndReductionsCommute) {
  std::map<std::string, Partition> parts;
  parts.emplace("P", Partition("R", {IndexSet::interval(0, 10),
                                     IndexSet::interval(5, 16)}));
  std::vector<RegionRequirement> ro{
      RegionRequirement{"P", "R", "a", Privilege::ReadOnly}};
  std::vector<RegionRequirement> rd{
      RegionRequirement{"P", "R", "a", Privilege::Reduce}};
  EXPECT_TRUE(nonInterfering(ro, parts, 0, 1));
  EXPECT_TRUE(nonInterfering(rd, parts, 0, 1));
}

// ---- Executor misc ----

TEST(Executor, ValidateAccessesCatchesIllegalPlans) {
  // Hand-build a plan whose access partition is too small: the validator
  // must throw when an access escapes it.
  World world;
  world.addRegion("R", 8).addField("a", FieldType::F64);
  world.region("R").addField("b", FieldType::F64);
  world.defineAffineFn("next", "R", "R", [](Index i) { return (i + 1) % 8; });

  ir::Program prog;
  ir::LoopBuilder b("shift", "i", "R");
  b.apply("j", "next", "i");
  b.loadF64("x", "R", "a", "j");
  b.store("R", "b", "i", "x");
  prog.loops.push_back(b.build());

  parallelize::AutoParallelizer ap(world);
  parallelize::ParallelPlan plan = ap.plan(prog);

  // Sabotage: point the uncentered read at the iteration partition, which
  // does not contain the ghost element.
  for (auto& [stmtId, sym] : plan.loops[0].accessPartition) {
    sym = plan.loops[0].iterPartition;
  }
  ExecOptions opts;
  opts.validateAccesses = true;
  PlanExecutor exec(world, plan, 4, opts);
  EXPECT_THROW(exec.run(), Error);
}

TEST(Executor, RunIsRepeatable) {
  World world;
  world.addRegion("R", 16).addField("a", FieldType::F64);
  world.region("R").addField("b", FieldType::F64);
  auto a = world.region("R").f64("a");
  std::iota(a.begin(), a.end(), 0.0);

  ir::Program prog;
  ir::LoopBuilder b("accum", "i", "R");
  b.loadF64("x", "R", "a", "i");
  b.reduce("R", "b", "i", "x");
  prog.loops.push_back(b.build());

  parallelize::AutoParallelizer ap(world);
  parallelize::ParallelPlan plan = ap.plan(prog);
  PlanExecutor exec(world, plan, 4);
  exec.run();
  exec.run();
  EXPECT_EQ(world.region("R").f64("b")[5], 10.0);
}

TEST(Executor, PieceCountOneDegeneratesToSerial) {
  World world;
  world.addRegion("R", 8).addField("a", FieldType::F64);
  world.region("R").addField("b", FieldType::F64);
  auto a = world.region("R").f64("a");
  std::iota(a.begin(), a.end(), 1.0);
  ir::Program prog;
  ir::LoopBuilder b("copy", "i", "R");
  b.loadF64("x", "R", "a", "i");
  b.store("R", "b", "i", "x");
  prog.loops.push_back(b.build());
  parallelize::AutoParallelizer ap(world);
  parallelize::ParallelPlan plan = ap.plan(prog);
  PlanExecutor exec(world, plan, 1);
  exec.run();
  EXPECT_EQ(world.region("R").f64("b")[7], 8.0);
}

}  // namespace
}  // namespace dpart::runtime
