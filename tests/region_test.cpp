#include "region/region.hpp"

#include <gtest/gtest.h>

#include "region/world.hpp"
#include "support/check.hpp"

namespace dpart::region {
namespace {

TEST(Region, FieldsAreZeroInitialized) {
  Region r("Cells", 10);
  r.addField("vel", FieldType::F64);
  r.addField("next", FieldType::Idx);
  r.addField("span", FieldType::Range);
  for (double v : r.f64("vel")) EXPECT_EQ(v, 0.0);
  for (Index v : r.idx("next")) EXPECT_EQ(v, 0);
  for (const dpart::region::Run& v : r.range("span")) EXPECT_EQ(v.size(), 0);
}

TEST(Region, FieldTypeQueries) {
  Region r("R", 4);
  r.addField("a", FieldType::F64);
  r.addField("b", FieldType::Idx);
  EXPECT_EQ(r.fieldType("a"), FieldType::F64);
  EXPECT_EQ(r.fieldType("b"), FieldType::Idx);
  EXPECT_TRUE(r.hasField("a"));
  EXPECT_FALSE(r.hasField("c"));
  EXPECT_EQ(r.fieldNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(Region, WriteThroughSpan) {
  Region r("R", 3);
  r.addField("x", FieldType::F64);
  r.f64("x")[1] = 4.5;
  EXPECT_EQ(r.f64("x")[1], 4.5);
}

TEST(Region, DuplicateFieldThrows) {
  Region r("R", 3);
  r.addField("x", FieldType::F64);
  EXPECT_THROW(r.addField("x", FieldType::Idx), Error);
}

TEST(Region, WrongTypeAccessThrows) {
  Region r("R", 3);
  r.addField("x", FieldType::F64);
  EXPECT_THROW((void)r.idx("x"), Error);
  EXPECT_THROW((void)r.range("x"), Error);
  EXPECT_THROW((void)r.f64("missing"), Error);
}

TEST(Region, IndexSpace) {
  Region r("R", 7);
  EXPECT_EQ(r.indexSpace(), IndexSet::interval(0, 7));
}

TEST(World, RegionRegistry) {
  World w;
  w.addRegion("A", 5);
  w.addRegion("B", 6);
  EXPECT_TRUE(w.hasRegion("A"));
  EXPECT_FALSE(w.hasRegion("C"));
  EXPECT_EQ(w.region("B").size(), 6);
  EXPECT_EQ(w.regionNames(), (std::vector<std::string>{"A", "B"}));
  EXPECT_THROW(w.addRegion("A", 9), Error);
  EXPECT_THROW((void)w.region("C"), Error);
}

TEST(World, IdentityFnIsPredefined) {
  World w;
  EXPECT_TRUE(w.hasFn(kIdentityFnId));
  EXPECT_EQ(w.evalPoint(kIdentityFnId, 42), 42);
}

TEST(World, FieldFnEvaluation) {
  World w;
  Region& p = w.addRegion("Particles", 4);
  w.addRegion("Cells", 10);
  p.addField("cell", FieldType::Idx);
  p.idx("cell")[0] = 7;
  p.idx("cell")[3] = 2;
  const FnDef& f = w.defineFieldFn("Particles", "cell", "Cells");
  EXPECT_EQ(f.id, "Particles[.].cell");
  EXPECT_EQ(w.evalPoint(f.id, 0), 7);
  EXPECT_EQ(w.evalPoint(f.id, 3), 2);
}

TEST(World, AffineFnEvaluation) {
  World w;
  w.addRegion("R", 10);
  w.defineAffineFn("shift", "R", "R", [](Index i) { return i + 1; });
  EXPECT_EQ(w.evalPoint("shift", 4), 5);
}

TEST(World, RangeFnEvaluation) {
  World w;
  Region& r = w.addRegion("Ranges", 3);
  w.addRegion("Mat", 100);
  r.addField("span", FieldType::Range);
  r.range("span")[1] = dpart::region::Run{10, 20};
  const FnDef& f = w.defineRangeFn("Ranges", "span", "Mat");
  EXPECT_TRUE(f.isRangeValued());
  EXPECT_EQ(w.evalRange(f.id, 1), (dpart::region::Run{10, 20}));
  EXPECT_THROW((void)w.evalPoint(f.id, 1), Error);
}

TEST(World, PointEvalOnRangeFnAndViceVersaThrow) {
  World w;
  w.addRegion("R", 5);
  w.defineAffineFn("g", "R", "R", [](Index i) { return i; });
  EXPECT_THROW((void)w.evalRange("g", 0), Error);
}

TEST(World, DuplicateFnThrows) {
  World w;
  w.addRegion("R", 5);
  w.defineAffineFn("g", "R", "R", [](Index i) { return i; });
  EXPECT_THROW(
      w.defineAffineFn("g", "R", "R", [](Index i) { return i + 1; }), Error);
}

}  // namespace
}  // namespace dpart::region
