// Stable numeric codes on the error taxonomy (support/check.hpp).
//
// The numbers asserted here are a wire contract shared by the multi-process
// backend's TaskError frames and the plan service's Error responses:
// append-only, never renumbered. If one of these expectations fails, the
// enum was renumbered — fix the enum, not the test.

#include <gtest/gtest.h>

#include <string>

#include "constraint/vocab.hpp"
#include "runtime/executor.hpp"
#include "support/check.hpp"

namespace dpart {
namespace {

TEST(ErrorCodeTest, NumericValuesAreStable) {
  EXPECT_EQ(static_cast<int>(ErrorCode::Internal), 1);
  EXPECT_EQ(static_cast<int>(ErrorCode::TaskFailure), 2);
  EXPECT_EQ(static_cast<int>(ErrorCode::PartitionViolation), 3);
  EXPECT_EQ(static_cast<int>(ErrorCode::EvalFailure), 4);
  EXPECT_EQ(static_cast<int>(ErrorCode::CheckpointCorruption), 5);
  EXPECT_EQ(static_cast<int>(ErrorCode::Transport), 6);
  EXPECT_EQ(static_cast<int>(ErrorCode::NodeLoss), 7);
  EXPECT_EQ(static_cast<int>(ErrorCode::BadRequest), 8);
  EXPECT_EQ(static_cast<int>(ErrorCode::Overloaded), 9);
  EXPECT_EQ(static_cast<int>(ErrorCode::Infeasible), 10);
}

TEST(ErrorCodeTest, EveryTaxonomyClassReportsItsCode) {
  EXPECT_EQ(Error("x").errorCode(), ErrorCode::Internal);
  EXPECT_EQ(TaskFailure("x").errorCode(), ErrorCode::TaskFailure);
  EXPECT_EQ(PartitionViolation("x").errorCode(),
            ErrorCode::PartitionViolation);
  EXPECT_EQ(EvalFailure("x").errorCode(), ErrorCode::EvalFailure);
  EXPECT_EQ(CheckpointCorruption("x").errorCode(),
            ErrorCode::CheckpointCorruption);
  EXPECT_EQ(TransportError(3, "x").errorCode(), ErrorCode::Transport);
  EXPECT_EQ(runtime::NodeLossError(3, "x").errorCode(), ErrorCode::NodeLoss);
  EXPECT_EQ(constraint::InfeasibleError("x").errorCode(),
            ErrorCode::Infeasible);
}

TEST(ErrorCodeTest, CodeSurvivesCatchAsBase) {
  try {
    throw TransportError(5, "peer closed mid-frame");
  } catch (const Error& e) {
    EXPECT_EQ(e.errorCode(), ErrorCode::Transport);
  }
}

TEST(ErrorCodeTest, ToStringNamesEveryCode) {
  EXPECT_STREQ(toString(ErrorCode::Internal), "Error");
  EXPECT_STREQ(toString(ErrorCode::TaskFailure), "TaskFailure");
  EXPECT_STREQ(toString(ErrorCode::PartitionViolation), "PartitionViolation");
  EXPECT_STREQ(toString(ErrorCode::EvalFailure), "EvalFailure");
  EXPECT_STREQ(toString(ErrorCode::CheckpointCorruption),
               "CheckpointCorruption");
  EXPECT_STREQ(toString(ErrorCode::Transport), "TransportError");
  EXPECT_STREQ(toString(ErrorCode::NodeLoss), "NodeLossError");
  EXPECT_STREQ(toString(ErrorCode::BadRequest), "BadRequest");
  EXPECT_STREQ(toString(ErrorCode::Overloaded), "Overloaded");
  EXPECT_STREQ(toString(ErrorCode::Infeasible), "Infeasible");
  EXPECT_STREQ(toString(static_cast<ErrorCode>(60000)), "?");
}

// The round trip a failure takes across a process boundary: caught as the
// base class, encoded as (code, what), rethrown on the other side as the
// same concrete type with the message byte-identical.
TEST(ErrorCodeTest, ThrowErrorCodeRoundTripsTheSupportTaxonomy) {
  const auto roundTrip = [](const Error& original) {
    try {
      throwErrorCode(original.errorCode(), original.what());
    } catch (const Error& rethrown) {
      EXPECT_EQ(rethrown.errorCode(), original.errorCode());
      EXPECT_STREQ(rethrown.what(), original.what());
      return;
    }
    FAIL() << "throwErrorCode did not throw";
  };
  ErrorContext ctx;
  ctx.site = "task:flux:3";
  ctx.piece = 2;
  roundTrip(Error("invariant broken"));
  roundTrip(TaskFailure("task died", ctx));
  roundTrip(PartitionViolation("pieces overlap", ctx));
  roundTrip(EvalFailure("unbound symbol", ctx));
  roundTrip(CheckpointCorruption("bad magic"));
  roundTrip(TransportError(4, "recv timed out"));
}

TEST(ErrorCodeTest, ThrowErrorCodeRestoresTheConcreteType) {
  EXPECT_THROW(throwErrorCode(ErrorCode::PartitionViolation, "x"),
               PartitionViolation);
  EXPECT_THROW(throwErrorCode(ErrorCode::TaskFailure, "x"), TaskFailure);
  // TransportError keeps the node id it is reconstructed with.
  try {
    throwErrorCode(ErrorCode::Transport, "send failed", /*node=*/7);
  } catch (const TransportError& e) {
    EXPECT_EQ(e.node(), 7u);
  }
  // Codes whose class lives above support/ fall through to plain Error;
  // decode sites that speak them (coordinator, service client) handle them
  // before calling throwErrorCode.
  try {
    throwErrorCode(ErrorCode::NodeLoss, "node 2 presumed dead");
  } catch (const Error& e) {
    EXPECT_EQ(e.errorCode(), ErrorCode::Internal);
    EXPECT_STREQ(e.what(), "node 2 presumed dead");
  }
}

}  // namespace
}  // namespace dpart
