#include "analysis/parallelizable.hpp"

#include <gtest/gtest.h>

namespace dpart::analysis {
namespace {

using ir::LoopBuilder;
using region::FieldType;
using region::Index;
using region::World;

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& r = world.addRegion("R", 10);
    r.addField("a", FieldType::F64);
    r.addField("b", FieldType::F64);
    r.addField("ptr", FieldType::Idx);
    r.addField("span", FieldType::Range);
    auto& s = world.addRegion("S", 10);
    s.addField("x", FieldType::F64);
    s.addField("y", FieldType::F64);
    world.defineAffineFn("g", "R", "S", [](Index i) { return i; });
    world.defineFieldFn("R", "ptr", "S");
    world.defineRangeFn("R", "span", "S");
  }
  World world;
};

TEST_F(CheckTest, CenteredLoopIsParallelizable) {
  LoopBuilder b("l", "i", "R");
  b.loadF64("x", "R", "a", "i");
  b.store("R", "b", "i", "x");
  auto res = checkParallelizable(world, b.build());
  EXPECT_TRUE(res.ok) << res.reason;
  ASSERT_EQ(res.accesses.size(), 2u);
  EXPECT_TRUE(res.accesses[0].centered);
  EXPECT_EQ(res.accesses[0].mode, AccessMode::Read);
  EXPECT_EQ(res.accesses[1].mode, AccessMode::Write);
}

TEST_F(CheckTest, UncenteredReadIsAdmissible) {
  LoopBuilder b("l", "i", "R");
  b.apply("j", "g", "i");
  b.loadF64("x", "S", "x", "j");
  b.store("R", "b", "i", "x");
  auto res = checkParallelizable(world, b.build());
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_FALSE(res.accesses[0].centered);
}

TEST_F(CheckTest, UncenteredWriteRejected) {
  LoopBuilder b("l", "i", "R");
  b.apply("j", "g", "i");
  b.loadF64("x", "R", "a", "i");
  b.store("S", "x", "j", "x");
  auto res = checkParallelizable(world, b.build());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("not centered"), std::string::npos);
}

TEST_F(CheckTest, UncenteredReductionAllowed) {
  // Figure 7 shape: S[g(i)] += R[i].
  LoopBuilder b("l", "i", "R");
  b.apply("j", "g", "i");
  b.loadF64("x", "R", "a", "i");
  b.reduce("S", "x", "j", "x");
  auto res = checkParallelizable(world, b.build());
  EXPECT_TRUE(res.ok) << res.reason;
}

TEST_F(CheckTest, UncenteredReductionPlusReadOnSameFieldRejected) {
  LoopBuilder b("l", "i", "R");
  b.apply("j", "g", "i");
  b.loadF64("v", "S", "x", "j");  // read S.x
  b.reduce("S", "x", "j", "v");   // uncentered reduce S.x
  auto res = checkParallelizable(world, b.build());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("uncentered reduction and a read"),
            std::string::npos);
}

TEST_F(CheckTest, UncenteredReductionPlusReadOnOtherFieldAllowed) {
  // Per-field privileges: reading S.y while reducing into S.x is fine
  // (this is exactly MiniAero's read-face-properties / reduce-cell-flux
  // pattern, modulo regions).
  LoopBuilder b("l", "i", "R");
  b.apply("j", "g", "i");
  b.loadF64("v", "S", "y", "j");
  b.reduce("S", "x", "j", "v");
  auto res = checkParallelizable(world, b.build());
  EXPECT_TRUE(res.ok) << res.reason;
}

TEST_F(CheckTest, MixedUncenteredReduceOpsRejected) {
  LoopBuilder b("l", "i", "R");
  b.apply("j", "g", "i");
  b.loadF64("x", "R", "a", "i");
  b.reduce("S", "x", "j", "x", ir::ReduceOp::Sum);
  b.reduce("S", "x", "j", "x", ir::ReduceOp::Max);
  auto res = checkParallelizable(world, b.build());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("mixes reduction operators"), std::string::npos);
}

TEST_F(CheckTest, SameUncenteredReduceOpTwiceAllowed) {
  // Figure 11a: two uncentered reductions with the same operator.
  LoopBuilder b("l", "i", "R");
  b.apply("j1", "g", "i");
  b.apply("j2", "g", "i");
  b.loadF64("x", "R", "a", "i");
  b.reduce("S", "x", "j1", "x");
  b.reduce("S", "x", "j2", "x");
  auto res = checkParallelizable(world, b.build());
  EXPECT_TRUE(res.ok) << res.reason;
}

TEST_F(CheckTest, UncenteredReadPlusCenteredWriteSameFieldRejected) {
  world.defineAffineFn("gr", "R", "R", [](Index i) { return i; });
  LoopBuilder b("l", "i", "R");
  b.apply("j", "gr", "i");
  b.loadF64("x", "R", "a", "j");  // uncentered read R.a
  b.store("R", "a", "i", "x");    // centered write R.a
  auto res = checkParallelizable(world, b.build());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("uncentered read and a write"),
            std::string::npos);
}

TEST_F(CheckTest, StencilPatternAllowed) {
  // Uncentered reads of field a, centered writes of field b: the 9-point
  // stencil shape.
  world.defineAffineFn("gr", "R", "R", [](Index i) { return i; });
  LoopBuilder b("l", "i", "R");
  b.apply("j", "gr", "i");
  b.loadF64("x", "R", "a", "j");
  b.store("R", "b", "i", "x");
  auto res = checkParallelizable(world, b.build());
  EXPECT_TRUE(res.ok) << res.reason;
}

TEST_F(CheckTest, AliasOfLoopVarStaysCentered) {
  LoopBuilder b("l", "i", "R");
  b.alias("i2", "i");
  b.loadF64("x", "R", "a", "i2");
  b.store("R", "b", "i2", "x");
  auto res = checkParallelizable(world, b.build());
  EXPECT_TRUE(res.ok) << res.reason;
  EXPECT_TRUE(res.accesses[0].centered);
}

TEST_F(CheckTest, PointerDerivedIndexIsUncentered) {
  LoopBuilder b("l", "i", "R");
  b.loadIdx("j", "R", "ptr", "i");
  b.loadF64("x", "S", "x", "j");
  b.store("R", "b", "i", "x");
  auto res = checkParallelizable(world, b.build());
  EXPECT_TRUE(res.ok) << res.reason;
  // Accesses: centered read of R.ptr, uncentered read of S.x, write R.b.
  ASSERT_EQ(res.accesses.size(), 3u);
  EXPECT_TRUE(res.accesses[0].centered);
  EXPECT_FALSE(res.accesses[1].centered);
}

TEST_F(CheckTest, InnerLoopIndexIsUncentered) {
  LoopBuilder b("l", "i", "R");
  b.loadRange("rg", "R", "span", "i");
  b.beginInner("k", "rg");
  b.loadF64("x", "S", "x", "k");
  b.reduce("R", "b", "i", "x");
  b.endInner();
  auto res = checkParallelizable(world, b.build());
  EXPECT_TRUE(res.ok) << res.reason;
}

TEST_F(CheckTest, WriteThroughInnerLoopVarRejected) {
  LoopBuilder b("l", "i", "R");
  b.loadRange("rg", "R", "span", "i");
  b.loadF64("x", "R", "a", "i");
  b.beginInner("k", "rg");
  b.store("S", "x", "k", "x");
  b.endInner();
  auto res = checkParallelizable(world, b.build());
  EXPECT_FALSE(res.ok);
}

TEST_F(CheckTest, UnknownIterationRegionRejected) {
  LoopBuilder b("l", "i", "Nope");
  auto res = checkParallelizable(world, b.build());
  EXPECT_FALSE(res.ok);
}

TEST_F(CheckTest, ScalarUsedAsIndexRejected) {
  LoopBuilder b("l", "i", "R");
  b.loadF64("x", "R", "a", "i");
  b.loadF64("y", "R", "a", "x");  // x is a scalar
  auto res = checkParallelizable(world, b.build());
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.reason.find("not an index"), std::string::npos);
}

}  // namespace
}  // namespace dpart::analysis
