// Unit tests for the partition legality verifier (region/verify): every
// violation kind, the offending-index diagnostics, and the throwing wrapper
// used by the resilient executor.

#include <gtest/gtest.h>

#include "region/verify.hpp"
#include "support/check.hpp"

namespace dpart::region {
namespace {

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world.addRegion("R", 10);
    world.addRegion("Q", 6);
  }

  PartitionExpectation expect(const std::string& name, bool disjoint,
                              bool complete) {
    PartitionExpectation e;
    e.partition = name;
    e.region = "R";
    e.disjoint = disjoint;
    e.complete = complete;
    return e;
  }

  World world;
  std::map<std::string, Partition> env;
};

TEST_F(VerifyTest, LegalPartitionProducesOkReport) {
  env["P"] = Partition(
      "R", {IndexSet::interval(0, 5), IndexSet::interval(5, 10)});
  PartitionExpectation e = expect("P", true, true);
  e.pieces = 2;
  e.why = "iteration partition of loop 'flux'";
  VerifyReport report = verifyPartitions(world, env, {e});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.toString(), "partition verification OK");
  EXPECT_NO_THROW(verifyPartitionsOrThrow(world, env, {e}));
}

TEST_F(VerifyTest, OverlapReportsFirstSharedIndex) {
  env["P"] = Partition(
      "R", {IndexSet::interval(0, 5), IndexSet::interval(4, 10)});
  VerifyReport report =
      verifyPartitions(world, env, {expect("P", true, false)});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::NotDisjoint);
  EXPECT_EQ(report.violations[0].partition, "P");
  EXPECT_NE(report.violations[0].detail.find("first at index 4"),
            std::string::npos);
}

TEST_F(VerifyTest, GapReportsFirstMissingIndex) {
  env["P"] = Partition(
      "R", {IndexSet::interval(0, 3), IndexSet::interval(5, 10)});
  VerifyReport report =
      verifyPartitions(world, env, {expect("P", true, true)});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::NotComplete);
  EXPECT_NE(report.violations[0].detail.find("first at index 3"),
            std::string::npos);
}

TEST_F(VerifyTest, OutOfBoundsAlwaysChecked) {
  env["P"] = Partition(
      "R", {IndexSet::interval(0, 5), IndexSet::interval(5, 12)});
  // No opt-in flags at all: bounds are still validated.
  VerifyReport report =
      verifyPartitions(world, env, {expect("P", false, false)});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::OutOfBounds);
  EXPECT_NE(report.violations[0].detail.find("first at index 10"),
            std::string::npos);
}

TEST_F(VerifyTest, MissingPartitionReported) {
  VerifyReport report =
      verifyPartitions(world, env, {expect("nope", false, false)});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::MissingPartition);
  EXPECT_EQ(report.violations[0].partition, "nope");
}

TEST_F(VerifyTest, WrongParentRegionReported) {
  env["P"] = Partition("Q", {IndexSet::interval(0, 6)});
  VerifyReport report =
      verifyPartitions(world, env, {expect("P", false, false)});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::WrongRegion);
  EXPECT_NE(report.violations[0].detail.find("'Q'"), std::string::npos);
}

TEST_F(VerifyTest, PieceCountMismatchReported) {
  env["P"] = Partition(
      "R", {IndexSet::interval(0, 5), IndexSet::interval(5, 10)});
  PartitionExpectation e = expect("P", false, false);
  e.pieces = 3;
  VerifyReport report = verifyPartitions(world, env, {e});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::PieceCountMismatch);
  EXPECT_NE(report.violations[0].detail.find("has 2"), std::string::npos);
}

TEST_F(VerifyTest, ContainmentEscapeReportsIndex) {
  env["outer"] = Partition(
      "R", {IndexSet::interval(0, 2), IndexSet::interval(4, 8)});
  env["priv"] = Partition(
      "R", {IndexSet::interval(0, 3), IndexSet::interval(4, 6)});
  PartitionExpectation e = expect("priv", false, false);
  e.containedIn = "outer";
  VerifyReport report = verifyPartitions(world, env, {e});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::NotContained);
  EXPECT_NE(report.violations[0].detail.find("first at index 2"),
            std::string::npos);
}

TEST_F(VerifyTest, ContainmentTargetMustExist) {
  env["priv"] = Partition("R", {IndexSet::interval(0, 3)});
  PartitionExpectation e = expect("priv", false, false);
  e.containedIn = "outer";
  VerifyReport report = verifyPartitions(world, env, {e});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind, ViolationKind::MissingPartition);
  EXPECT_EQ(report.violations[0].partition, "outer");
}

TEST_F(VerifyTest, AllViolationsCollectedAndThrown) {
  env["A"] = Partition(
      "R", {IndexSet::interval(0, 6), IndexSet::interval(5, 10)});
  env["B"] = Partition(
      "R", {IndexSet::interval(0, 4), IndexSet::interval(6, 10)});
  PartitionExpectation a = expect("A", true, true);
  a.why = "Direct reduction target";
  PartitionExpectation b = expect("B", true, true);
  VerifyReport report = verifyPartitions(world, env, {a, b});
  EXPECT_EQ(report.violations.size(), 2u);  // not first-failure-only
  // Provenance strings ride along into the rendered report.
  EXPECT_NE(report.toString().find("Direct reduction target"),
            std::string::npos);
  try {
    verifyPartitionsOrThrow(world, env, {a, b});
    FAIL() << "expected PartitionViolation";
  } catch (const PartitionViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NotDisjoint 'A'"), std::string::npos);
    EXPECT_NE(what.find("NotComplete 'B'"), std::string::npos);
    EXPECT_EQ(e.context().partition, "A");
  }
}

}  // namespace
}  // namespace dpart::region
