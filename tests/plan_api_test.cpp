// The compile/execute split: SessionBuilder::compile() -> dpart::Plan,
// Session::execute(plan, world) — the API the plan service builds on. The
// fluent run()/build() path is a thin wrapper over the same two steps, so
// the split must be invisible to it (session_test covers that side).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "parallelize/solve_cache.hpp"
#include "runtime/plan.hpp"
#include "runtime/session.hpp"

namespace dpart {
namespace {

constexpr region::Index kParticles = 400;
constexpr region::Index kCells = 40;

void buildWorld(region::World& world) {
  auto& particles = world.addRegion("Particles", kParticles);
  auto& cells = world.addRegion("Cells", kCells);
  particles.addField("cell", region::FieldType::Idx);
  particles.addField("pos", region::FieldType::F64);
  cells.addField("vel", region::FieldType::F64);
  auto cell = particles.idx("cell");
  for (region::Index p = 0; p < kParticles; ++p) {
    cell[static_cast<std::size_t>(p)] = (p * 7) % kCells;
  }
  auto vel = cells.f64("vel");
  for (region::Index c = 0; c < kCells; ++c) {
    vel[static_cast<std::size_t>(c)] = 0.5 * double(c % 4);
  }
  world.defineFieldFn("Particles", "cell", "Cells");
}

ir::Program makeProgram() {
  ir::Program prog;
  prog.name = "plan_api_test";
  ir::LoopBuilder b("update", "p", "Particles");
  b.loadIdx("c", "Particles", "cell", "p");
  b.loadF64("v", "Cells", "vel", "c");
  b.compute("dp", {"v"}, [](auto v) { return 2.0 * v[0]; });
  b.reduce("Particles", "pos", "p", "dp");
  prog.loops.push_back(b.build());
  return prog;
}

bool bitwiseEqual(region::World& a, region::World& b) {
  auto x = a.region("Particles").f64("pos");
  auto y = b.region("Particles").f64("pos");
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(x[i]) !=
        std::bit_cast<std::uint64_t>(y[i])) {
      return false;
    }
  }
  return true;
}

TEST(PlanApi, CompileProducesAValidImmutablePlan) {
  region::World world;
  buildWorld(world);
  const Plan plan =
      Session::parallelize(makeProgram()).pieces(4).compile(world);
  EXPECT_TRUE(plan.valid());
  EXPECT_EQ(plan.pieces(), 4u);
  EXPECT_NE(plan.cacheKey(), 0u);
  EXPECT_FALSE(plan.cacheHit());  // no solve cache configured
  EXPECT_EQ(plan.stats().parallelLoops, 1);
  EXPECT_FALSE(plan.parallelPlan().dpl.toString().empty());
}

TEST(PlanApi, EmptyPlanIsInvalidAndRefusesEverything) {
  const Plan empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW((void)empty.parallelPlan(), Error);
  EXPECT_THROW((void)empty.pieces(), Error);
  region::World world;
  buildWorld(world);
  EXPECT_THROW((void)Session::execute(empty, world), Error);
}

TEST(PlanApi, CompileRequiresPieces) {
  region::World world;
  buildWorld(world);
  EXPECT_THROW((void)Session::parallelize(makeProgram()).compile(world),
               Error);
}

// Compile-then-execute must be bitwise identical to the fluent one-shot
// path (which is now a thin wrapper over it).
TEST(PlanApi, ExecuteMatchesFluentRunBitwise) {
  const ir::Program prog = makeProgram();

  region::World fluentWorld;
  buildWorld(fluentWorld);
  Session fluent = Session::parallelize(prog).pieces(4).run(fluentWorld);
  fluent.run();

  region::World splitWorld;
  buildWorld(splitWorld);
  const Plan plan = Session::parallelize(prog).pieces(4).compile(splitWorld);
  Session split = Session::execute(plan, splitWorld);
  split.run();
  split.run();

  EXPECT_TRUE(bitwiseEqual(fluentWorld, splitWorld));
  EXPECT_EQ(fluent.plan().dpl.toString(), split.plan().dpl.toString());
}

// One Plan, many Sessions: copies share a single payload, so every session
// executes the very same ParallelPlan object — the multi-tenant sharing the
// plan service relies on.
TEST(PlanApi, OnePlanIsSharedByManySessions) {
  region::World worldA;
  buildWorld(worldA);
  const Plan plan =
      Session::parallelize(makeProgram()).pieces(4).compile(worldA);

  region::World worldB;
  buildWorld(worldB);
  Session a = Session::execute(plan, worldA);
  Session b = Session::execute(plan, worldB);
  a.run();
  b.run();

  EXPECT_EQ(&a.plan(), &b.plan()) << "sessions must share one ParallelPlan";
  EXPECT_EQ(&a.plan(), &plan.parallelPlan());
  EXPECT_TRUE(bitwiseEqual(worldA, worldB));
}

// The plan handle outlives the builder and the world it was compiled
// against can differ from the one it executes in (same shapes).
TEST(PlanApi, FluentSessionExposesItsPlanForFurtherExecutes) {
  region::World worldA;
  buildWorld(worldA);
  Session first = Session::parallelize(makeProgram()).pieces(4).run(worldA);

  region::World worldB;
  buildWorld(worldB);
  Session second = Session::execute(first.compiledPlan(), worldB);
  second.run();

  EXPECT_EQ(&first.plan(), &second.plan());
  EXPECT_TRUE(bitwiseEqual(worldA, worldB));
}

// Wiring a SolveCache through compile(): the second compile of an
// isomorphic program skips the solve and says so in the plan's stats.
TEST(PlanApi, CompileUsesTheConfiguredSolveCache) {
  parallelize::SolveCache cache;
  parallelize::Options copts;
  copts.solveCache = &cache;

  region::World world;
  buildWorld(world);
  const Plan cold = Session::parallelize(makeProgram())
                        .pieces(4)
                        .compileOptions(copts)
                        .compile(world);
  const Plan warm = Session::parallelize(makeProgram())
                        .pieces(4)
                        .compileOptions(copts)
                        .compile(world);
  EXPECT_FALSE(cold.cacheHit());
  ASSERT_TRUE(warm.cacheHit());
  EXPECT_EQ(cold.cacheKey(), warm.cacheKey());
  EXPECT_EQ(cold.parallelPlan().dpl.toString(),
            warm.parallelPlan().dpl.toString());

  // Cached and fresh plans execute to bitwise-identical state.
  region::World worldCold;
  buildWorld(worldCold);
  region::World worldWarm;
  buildWorld(worldWarm);
  Session a = Session::execute(cold, worldCold);
  Session b = Session::execute(warm, worldWarm);
  a.run();
  b.run();
  EXPECT_TRUE(bitwiseEqual(worldCold, worldWarm));
}

}  // namespace
}  // namespace dpart
