#include "dpl/parser.hpp"

#include <gtest/gtest.h>

#include "constraint/solver.hpp"
#include "optimize/reduction_opt.hpp"
#include "support/check.hpp"

namespace dpart::dpl {
namespace {

void roundtrip(const ExprPtr& e) {
  ExprPtr parsed = parseExpr(e->toString());
  EXPECT_TRUE(exprEq(parsed, e)) << "printed: " << e->toString()
                                 << "\nreparsed: " << parsed->toString();
}

TEST(DplParser, Terms) {
  EXPECT_EQ(parseExpr("P1")->kind, ExprKind::Symbol);
  EXPECT_EQ(parseExpr("equal(R)")->kind, ExprKind::Equal);
  EXPECT_EQ(parseExpr("image(P1, f, R)")->kind, ExprKind::Image);
  EXPECT_EQ(parseExpr("preimage(R, f, P1)")->kind, ExprKind::Preimage);
}

TEST(DplParser, RoundtripsEveryShape) {
  roundtrip(symbol("P1"));
  roundtrip(equalOf("Cells"));
  roundtrip(image(symbol("P1"), "Particles[.].cell", "Cells"));
  roundtrip(preimage("Particles", "f_ID", equalOf("Cells")));
  roundtrip(unionOf(symbol("A"), symbol("B")));
  roundtrip(intersectOf(image(symbol("A"), "f", "R"),
                        subtractOf(symbol("B"), equalOf("R"))));
  roundtrip(subtractOf(
      image(preimage("R", "g", symbol("Q")), "g", "S"),
      unionOf(equalOf("S"), symbol("pExt"))));
}

TEST(DplParser, RoundtripsTheorem51Expression) {
  roundtrip(optimize::privateSubPartitionExpr(symbol("P"), "f", "R", "S"));
}

TEST(DplParser, SymbolsNamedLikeKeywordsStillParse) {
  // 'image' not followed by '(' is a plain symbol; so are u/n-containing
  // identifiers.
  EXPECT_EQ(parseExpr("union_part")->name, "union_part");
  EXPECT_EQ(parseExpr("(image u n1)")->toString(), "(image u n1)");
}

TEST(DplParser, ProgramRoundtrip) {
  Program prog;
  prog.append("P2", equalOf("Cells"));
  prog.append("P1", preimage("Particles", "Particles[.].cell", symbol("P2")));
  prog.append("P3", image(symbol("P2"), "h", "Cells"));
  prog.append("P5", symbol("P3"));
  Program parsed = parseProgram(prog.toString());
  EXPECT_EQ(parsed.toString(), prog.toString());
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed.stmts()[1].lhs, "P1");
}

TEST(DplParser, SolverOutputRoundtrips) {
  // The solver's emitted program for the Figure 2 system reparses exactly.
  constraint::System sys;
  sys.declareSymbol("P1", "Particles");
  sys.addComp(dpl::symbol("P1"), "Particles");
  sys.declareSymbol("P2", "Cells");
  sys.addComp(dpl::symbol("P2"), "Cells");
  sys.addSubset(image(dpl::symbol("P1"), "cell", "Cells"), dpl::symbol("P2"));
  sys.declareSymbol("P3", "Cells");
  sys.addSubset(image(dpl::symbol("P2"), "h", "Cells"), dpl::symbol("P3"));
  constraint::Solver solver(sys, {});
  auto sol = solver.solve();
  ASSERT_TRUE(sol.ok);
  const std::string printed = sol.program().toString();
  EXPECT_EQ(parseProgram(printed).toString(), printed);
}

TEST(DplParser, ErrorsCarryPosition) {
  EXPECT_THROW(parseExpr(""), Error);
  EXPECT_THROW(parseExpr("image(P1, f"), Error);
  EXPECT_THROW(parseExpr("(A ? B)"), Error);
  EXPECT_THROW(parseExpr("A B"), Error);  // trailing input
  EXPECT_THROW(parseProgram("P1 equal(R)"), Error);
  try {
    (void)parseExpr("(A u ))");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

}  // namespace
}  // namespace dpart::dpl
