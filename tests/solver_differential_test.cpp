// Differential tests between the propagation engine and the syntax-directed
// reference: with an empty vocabulary both must synthesize bit-for-bit
// identical plans on every application program, and an infeasible vocabulary
// must surface as InfeasibleError with first-conflict provenance.

#include <gtest/gtest.h>

#include "apps/circuit.hpp"
#include "apps/miniaero.hpp"
#include "apps/pennant.hpp"
#include "apps/spmv.hpp"
#include "apps/stencil.hpp"
#include "parallelize/parallelize.hpp"

namespace dpart::parallelize {
namespace {

/// Plans `program` twice — propagation vs syntax-directed — and requires the
/// full rendered plans (DPL program, loop plans, reduce handling) to match
/// bit for bit.
void expectEnginesAgree(const region::World& world,
                        const ir::Program& program, const char* what) {
  Options prop;
  prop.engine = constraint::SolverEngine::Propagation;
  ParallelPlan a = AutoParallelizer(world, prop).plan(program);

  Options ref;
  ref.engine = constraint::SolverEngine::SyntaxDirected;
  ParallelPlan b = AutoParallelizer(world, ref).plan(program);

  EXPECT_EQ(a.dpl.toString(), b.dpl.toString()) << what;
  EXPECT_EQ(a.toString(), b.toString()) << what;
  // The reference engine never runs propagators; the propagation engine must
  // not have needed any prunes to agree with it.
  EXPECT_EQ(a.stats.solve.prunes, 0u) << what;
  EXPECT_EQ(b.stats.solve.propagations, 0u) << what;
}

TEST(SolverDifferential, Spmv) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 32;
  p.pieces = 4;
  apps::SpmvApp app(p);
  expectEnginesAgree(app.world(), app.program(), "spmv");
}

TEST(SolverDifferential, Stencil) {
  apps::StencilApp::Params p;
  p.rowsPerPiece = 8;
  p.cols = 16;
  p.pieces = 4;
  apps::StencilApp app(p);
  expectEnginesAgree(app.world(), app.program(), "stencil");
}

TEST(SolverDifferential, MiniAero) {
  apps::MiniAeroApp::Params p;
  p.nx = 4;
  p.ny = 4;
  p.nzPerPiece = 4;
  p.pieces = 2;
  apps::MiniAeroApp app(p);
  expectEnginesAgree(app.world(), app.program(), "miniaero");
}

TEST(SolverDifferential, Circuit) {
  apps::CircuitApp::Params p;
  p.pieces = 4;
  p.nodesPerCluster = 32;
  p.wiresPerCluster = 128;
  apps::CircuitApp app(p);
  expectEnginesAgree(app.world(), app.program(), "circuit");
}

TEST(SolverDifferential, Pennant) {
  apps::PennantApp::Params p;
  p.zx = 4;
  p.zyPerPiece = 4;
  p.pieces = 2;
  apps::PennantApp app(p);
  expectEnginesAgree(app.world(), app.program(), "pennant");
}

// ---- Infeasible vocabularies --------------------------------------------

TEST(SolverDifferential, CapacityPigeonholeThrowsInfeasible) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 32;
  p.pieces = 4;
  apps::SpmvApp app(p);
  Options opts;
  opts.pieces = p.pieces;
  // 128 rows over 4 pieces force a 32-row piece; a 1-row budget is a
  // pigeonhole contradiction the propagators refute at the root.
  opts.vocab.capacities.push_back({"Y", 1});
  try {
    (void)AutoParallelizer(app.world(), opts).plan(app.program());
    FAIL() << "expected InfeasibleError";
  } catch (const constraint::InfeasibleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("capacity-comp"), std::string::npos) << what;
    EXPECT_NE(what.find("cap=1"), std::string::npos) << what;
    EXPECT_EQ(e.errorCode(), ErrorCode::Infeasible);
  }
}

TEST(SolverDifferential, SelfAntiAffinityThrowsInfeasible) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 32;
  p.pieces = 4;
  apps::SpmvApp app(p);
  Options opts;
  // Y.val's access partition must cover all rows; demanding it be disjoint
  // from itself is unsatisfiable, with the originating field in the trace.
  opts.vocab.affinities.push_back({"Y.val", "Y.val", /*together=*/false});
  try {
    (void)AutoParallelizer(app.world(), opts).plan(app.program());
    FAIL() << "expected InfeasibleError";
  } catch (const constraint::InfeasibleError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("anti-self"), std::string::npos) << what;
    EXPECT_NE(what.find("Y.val"), std::string::npos) << what;
  }
}

TEST(SolverDifferential, FeasibleVocabularyStillMatchesReferencePlan) {
  // A satisfiable vocabulary that never prunes the chosen candidates must
  // leave the synthesized plan identical to the unconstrained reference.
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 32;
  p.pieces = 4;
  apps::SpmvApp app(p);

  Options ref;
  ref.engine = constraint::SolverEngine::SyntaxDirected;
  ParallelPlan b = AutoParallelizer(app.world(), ref).plan(app.program());

  Options opts;
  opts.pieces = p.pieces;
  opts.vocab.capacities.push_back({"Y", 32});  // exactly ceil(128/4)
  ParallelPlan a = AutoParallelizer(app.world(), opts).plan(app.program());
  EXPECT_EQ(a.dpl.toString(), b.dpl.toString());
}

TEST(SolverDifferential, SyntaxDirectedRejectsVocabularies) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 8;
  p.pieces = 2;
  apps::SpmvApp app(p);
  Options opts;
  opts.engine = constraint::SolverEngine::SyntaxDirected;
  opts.pieces = p.pieces;
  opts.vocab.capacities.push_back({"Y", 8});
  EXPECT_THROW(
      { (void)AutoParallelizer(app.world(), opts).plan(app.program()); },
      Error);
}

}  // namespace
}  // namespace dpart::parallelize
