// Randomized wire-protocol fuzzing (satellite of the multi-process
// backend): mangled frames — truncated, bit-flipped, reordered, garbage —
// thrown at recvFrame and at a real forked worker process. The invariant
// under test is the robustness contract of docs/distributed-backend.md:
// every outcome is a decoded frame, a clean EOF, or a taxonomy error
// carrying the worker id — never a hang, a crash, or silently accepted
// corruption. The worker side must always exit (0 or 2) within a bounded
// wait, so a deadlocked coordinator/worker pair fails fast here instead of
// wedging CI.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "parallelize/parallelize.hpp"
#include "runtime/distributed/wire.hpp"
#include "runtime/distributed/worker.hpp"
#include "runtime/executor.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/serialize.hpp"

namespace dpart::runtime::dist {
namespace {

// TSan cannot follow a fork() that then starts threads: the worker's
// heartbeat thread collides with the cloned thread registry ("dup
// thread") and the child dies. Multi-process tests therefore skip under
// TSan — the plain and ASan/UBSan jobs still run them for real.
#if defined(__SANITIZE_THREAD__)
#define DPART_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DPART_TSAN 1
#endif
#endif
#if defined(DPART_TSAN)
#define DPART_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "fork-based backend unsupported under TSan"
#else
#define DPART_SKIP_UNDER_TSAN() (void)0
#endif

using region::FieldType;
using region::Index;
using region::World;

struct SocketPair {
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void closeA() {
    ::close(a);
    a = -1;
  }
  int a = -1;
  int b = -1;
};

constexpr std::uint64_t kCap = 1 << 20;
constexpr std::uint64_t kTimeout = 500'000;  // generous; EOF ends most cases

/// Serializes a valid frame to raw bytes by bouncing it off a socketpair.
std::vector<std::uint8_t> frameBytes(MsgType type,
                                     const std::vector<std::uint8_t>& payload) {
  SocketPair s;
  sendFrame(s.a, type, payload, 0);
  std::vector<std::uint8_t> bytes(17 + payload.size());
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t r = ::recv(s.b, bytes.data() + got, bytes.size() - got, 0);
    if (r <= 0) {
      ADD_FAILURE() << "short read while capturing frame bytes";
      return bytes;
    }
    got += static_cast<std::size_t>(r);
  }
  return bytes;
}

TEST(WireFuzz, MangledFramesNeverHangCrashOrPassUndetected) {
  Rng rng(0xF0221);
  // A pool of valid frames to mutate.
  std::vector<std::vector<std::uint8_t>> pool;
  {
    TaskMsg t;
    t.seq = 1;
    t.loop = "loop";
    t.piece = 0;
    pool.push_back(frameBytes(MsgType::Task, encodeTask(t)));
    ResultMsg m;
    m.seq = 1;
    m.piece = 0;
    pool.push_back(frameBytes(MsgType::Result, encodeResult(m)));
    pool.push_back(frameBytes(MsgType::Ping, {}));
    std::vector<std::uint8_t> blob(199);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.below(256));
    pool.push_back(frameBytes(MsgType::TaskError,
                              encodeTaskError({2, 1, "Error", "x"})));
    pool.push_back(frameBytes(MsgType::Result, blob));
  }

  int decoded = 0;
  int eofs = 0;
  int transportErrors = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::uint8_t> bytes = pool[rng.below(pool.size())];
    const std::size_t node = rng.below(8);
    switch (rng.below(5)) {
      case 0:  // truncate at a random boundary
        bytes.resize(rng.below(bytes.size() + 1));
        break;
      case 1: {  // flip 1-4 random bits
        const int flips = 1 + static_cast<int>(rng.below(4));
        for (int f = 0; f < flips && !bytes.empty(); ++f) {
          bytes[rng.below(bytes.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
        }
        break;
      }
      case 2: {  // reorder: a second frame's prefix spliced in front
        std::vector<std::uint8_t> other = pool[rng.below(pool.size())];
        other.resize(rng.below(other.size() + 1));
        other.insert(other.end(), bytes.begin(), bytes.end());
        bytes = std::move(other);
        break;
      }
      case 3: {  // pure garbage
        bytes.resize(1 + rng.below(64));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
        break;
      }
      case 4:  // intact (control group)
        break;
    }

    SocketPair s;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t r =
          ::send(s.a, bytes.data() + sent, bytes.size() - sent, 0);
      ASSERT_GT(r, 0);
      sent += static_cast<std::size_t>(r);
    }
    s.closeA();  // EOF after the mangled bytes: no read may wait forever

    try {
      auto frame = recvFrame(s.b, kTimeout, kCap, node);
      if (frame.has_value()) {
        ++decoded;
      } else {
        ++eofs;
      }
    } catch (const TransportError& e) {
      EXPECT_EQ(e.node(), node) << e.what();
      ++transportErrors;
    }
    // Any other exception type, or a hang, fails the test (gtest catches
    // foreign exceptions; ctest's per-test TIMEOUT catches hangs).
  }
  // The mix must actually exercise all three outcomes.
  EXPECT_GT(decoded, 0);
  EXPECT_GT(eofs + transportErrors, 0);
}

/// Minimal world + plan for worker-process fuzzing: one centered copy loop.
struct TinyApp {
  TinyApp() {
    region::Region& r = world.addRegion("R", 64);
    r.addField("val", FieldType::F64);
    r.addField("tmp", FieldType::F64);
    auto col = world.region("R").f64("val");
    for (std::size_t i = 0; i < col.size(); ++i) col[i] = 0.5 * double(i);
    ir::Program prog;
    prog.name = "tiny";
    ir::LoopBuilder b("copy", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.store("R", "tmp", "i", "x");
    prog.loops.push_back(b.build());
    parallelize::AutoParallelizer ap(world);
    plan = ap.plan(prog);
    exec = std::make_unique<PlanExecutor>(world, plan, kPieces,
                                          [] {
                                            ExecOptions o;
                                            o.threads = 1;
                                            return o;
                                          }());
    exec->preparePartitions();
  }
  static constexpr std::size_t kPieces = 2;
  World world;
  parallelize::ParallelPlan plan;
  std::unique_ptr<PlanExecutor> exec;
};

/// Forks a workerMain wired to fresh socketpairs; returns its pid and the
/// coordinator-side fds.
pid_t forkWorker(TinyApp& app, int* dataFd, int* controlFd) {
  int data[2];
  int ctrl[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, data), 0);
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, ctrl), 0);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ::close(data[0]);
    ::close(ctrl[0]);
    WorkerConfig wc;
    wc.world = &app.world;
    wc.plan = &app.plan;
    wc.env = &app.exec->partitions();
    wc.nodeId = 1;
    wc.dataFd = data[1];
    wc.controlFd = ctrl[1];
    wc.maxFrameBytes = kCap;
    wc.recvTimeoutMicros = 2'000'000;
    ::_exit(workerMain(wc));
  }
  ::close(data[1]);
  ::close(ctrl[1]);
  *dataFd = data[0];
  *controlFd = ctrl[0];
  return pid;
}

/// Reaps `pid` within `deadlineMicros`; fails the test on a hang (and
/// SIGKILLs the stray so the test binary itself never wedges).
int reapWithin(pid_t pid, std::uint64_t deadlineMicros) {
  const std::uint64_t step = 2'000;
  for (std::uint64_t waited = 0; waited < deadlineMicros; waited += step) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    ::usleep(static_cast<useconds_t>(step));
  }
  ADD_FAILURE() << "worker " << pid << " failed to exit in time";
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

void sendAll(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t r = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    ASSERT_GT(r, 0);
    sent += static_cast<std::size_t>(r);
  }
}

TEST(WireFuzz, WorkerProcessAlwaysExitsOnMangledInput) {
  DPART_SKIP_UNDER_TSAN();
  TinyApp app;
  Rng rng(0xF0222);
  TaskMsg task;
  task.seq = 1;
  task.loop = "copy";
  task.piece = 0;
  std::vector<std::uint8_t> valid;
  {
    SCOPED_TRACE("capture");
    valid = frameBytes(MsgType::Task, encodeTask(task));
  }

  for (int iter = 0; iter < 12; ++iter) {
    std::vector<std::uint8_t> bytes = valid;
    switch (rng.below(4)) {
      case 0:
        bytes.resize(17 + rng.below(bytes.size() - 17));  // truncated payload
        break;
      case 1:
        bytes[17 + rng.below(bytes.size() - 17)] ^= 0x10;  // payload bit flip
        break;
      case 2:  // garbage prefix: bad magic on the very first frame
        bytes[0] ^= 0xFF;
        break;
      case 3:  // wrong channel: a Pong where a Task belongs
        bytes = frameBytes(MsgType::Pong, {});
        break;
    }
    int dataFd = -1;
    int controlFd = -1;
    const pid_t pid = forkWorker(app, &dataFd, &controlFd);
    sendAll(dataFd, bytes);
    ::close(dataFd);  // EOF after the damage
    const int status = reapWithin(pid, 8'000'000);
    ::close(controlFd);
    ASSERT_TRUE(WIFEXITED(status)) << "worker crashed (signal "
                                   << WTERMSIG(status) << ")";
    // 0: treated as clean EOF; 2: transport/protocol failure. Either is a
    // loud, coordinator-recoverable outcome — anything else is a bug.
    EXPECT_TRUE(WEXITSTATUS(status) == 0 || WEXITSTATUS(status) == 2)
        << "exit " << WEXITSTATUS(status);
  }
}

TEST(WireFuzz, WorkerRunsTaskThenExitsCleanlyOnShutdown) {
  DPART_SKIP_UNDER_TSAN();
  TinyApp app;
  int dataFd = -1;
  int controlFd = -1;
  const pid_t pid = forkWorker(app, &dataFd, &controlFd);
  TaskMsg task;
  task.seq = 7;
  task.loop = "copy";
  task.piece = 1;
  sendFrame(dataFd, MsgType::Task, encodeTask(task), 1);
  auto frame = recvFrame(dataFd, 8'000'000, kCap, 1);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, MsgType::Result);
  BinaryReader r(frame->payload);
  const ResultMsg res = decodeResult(r);
  EXPECT_EQ(res.seq, 7u);
  EXPECT_EQ(res.piece, 1u);
  ASSERT_EQ(res.writes.size(), 1u);  // the copy loop's store footprint

  // Pings are answered from a dedicated thread, echoing the payload.
  sendFrame(controlFd, MsgType::Ping, std::vector<std::uint8_t>{9, 9}, 1);
  auto pong = recvFrame(controlFd, 8'000'000, kCap, 1);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, MsgType::Pong);
  EXPECT_EQ(pong->payload, (std::vector<std::uint8_t>{9, 9}));

  sendFrame(dataFd, MsgType::Shutdown, {}, 1);
  const int status = reapWithin(pid, 8'000'000);
  ::close(dataFd);
  ::close(controlFd);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(WireFuzz, WorkerReportsUnknownLoopAsTaxonomyError) {
  DPART_SKIP_UNDER_TSAN();
  TinyApp app;
  int dataFd = -1;
  int controlFd = -1;
  const pid_t pid = forkWorker(app, &dataFd, &controlFd);
  TaskMsg task;
  task.seq = 3;
  task.loop = "no_such_loop";
  task.piece = 0;
  sendFrame(dataFd, MsgType::Task, encodeTask(task), 1);
  auto frame = recvFrame(dataFd, 8'000'000, kCap, 1);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, MsgType::TaskError);
  BinaryReader r(frame->payload);
  const TaskErrorMsg err = decodeTaskError(r);
  EXPECT_EQ(err.kind, "Error");
  EXPECT_NE(err.what.find("no_such_loop"), std::string::npos);
  sendFrame(dataFd, MsgType::Shutdown, {}, 1);
  (void)reapWithin(pid, 8'000'000);
  ::close(dataFd);
  ::close(controlFd);
}

}  // namespace
}  // namespace dpart::runtime::dist
