// Randomized end-to-end property test: generate random (but parallelizable
// by construction) multi-loop programs over randomly wired regions,
// auto-parallelize them, execute on random piece counts with full access
// validation, and require the results to match the serial interpreter.
//
// This closes the loop on the paper's soundness claim: whatever partitioning
// strategy the solver picks — equal, preimage, unions of preimages under
// relaxation, private sub-partitions — the parallel execution must preserve
// the sequential semantics.

#include <gtest/gtest.h>

#include "ir/interp.hpp"
#include "parallelize/parallelize.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"

namespace dpart {
namespace {

using region::FieldType;
using region::Index;
using region::World;

struct FuzzCase {
  std::unique_ptr<World> world;
  ir::Program program;
};

// Two regions: A (with scalar fields a0,a1 and a pointer field into B) and
// B (with scalar fields b0,b1). Several affine maps on each.
FuzzCase makeCase(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase fc;
  fc.world = std::make_unique<World>();
  World& w = *fc.world;
  const Index nA = 32 + static_cast<Index>(rng.below(96));
  const Index nB = 16 + static_cast<Index>(rng.below(48));
  auto& A = w.addRegion("A", nA);
  auto& B = w.addRegion("B", nB);
  A.addField("a0", FieldType::F64);
  A.addField("a1", FieldType::F64);
  A.addField("ptr", FieldType::Idx);
  B.addField("b0", FieldType::F64);
  B.addField("b1", FieldType::F64);
  auto a0 = A.f64("a0");
  auto ptr = A.idx("ptr");
  for (Index i = 0; i < nA; ++i) {
    a0[static_cast<std::size_t>(i)] = rng.uniform();
    ptr[static_cast<std::size_t>(i)] = rng.range(0, nB);
  }
  auto b0 = B.f64("b0");
  for (Index i = 0; i < nB; ++i) {
    b0[static_cast<std::size_t>(i)] = rng.uniform();
  }
  w.defineFieldFn("A", "ptr", "B");
  const Index offA = rng.range(1, nA);
  w.defineAffineFn("gA", "A", "A",
                   [nA, offA](Index i) { return (i + offA) % nA; });
  const Index offB = rng.range(1, nB);
  w.defineAffineFn("gB", "A", "B",
                   [nB, offB](Index i) { return (i * 7 + offB) % nB; });
  w.defineAffineFn("hB", "B", "B",
                   [nB](Index i) { return (i + 1) % nB; });

  // Loop templates, each parallelizable by construction. Reduction
  // operators vary; conflicting same-field access combinations are avoided
  // per template, and templates only conflict across loops (which is
  // legal).
  fc.program.name = "fuzz" + std::to_string(seed);
  const int nLoops = 2 + static_cast<int>(rng.below(4));
  for (int l = 0; l < nLoops; ++l) {
    const int t = static_cast<int>(rng.below(5));
    const std::string ln = "loop" + std::to_string(l);
    switch (t) {
      case 0: {  // centered map on A
        ir::LoopBuilder b(ln, "i", "A");
        b.loadF64("x", "A", "a0", "i");
        b.compute("y", {"x"}, [](auto v) { return v[0] * 1.25 + 0.5; });
        b.store("A", "a1", "i", "y");
        fc.program.loops.push_back(b.build());
        break;
      }
      case 1: {  // uncentered read of B via pointer, centered write to A
        ir::LoopBuilder b(ln, "i", "A");
        b.loadIdx("j", "A", "ptr", "i");
        b.loadF64("x", "B", "b0", "j");
        b.apply("j2", "hB", "j");
        b.loadF64("x2", "B", "b0", "j2");
        b.compute("y", {"x", "x2"}, [](auto v) { return v[0] - v[1]; });
        b.store("A", "a1", "i", "y");
        fc.program.loops.push_back(b.build());
        break;
      }
      case 2: {  // single uncentered reduction to B (disjoint-reduction or
                 // relaxation territory, depending on group)
        const ir::ReduceOp op =
            rng.chance(0.5) ? ir::ReduceOp::Sum : ir::ReduceOp::Max;
        ir::LoopBuilder b(ln, "i", "A");
        b.loadF64("x", "A", "a0", "i");
        b.apply("j", "gB", "i");
        b.reduce("B", "b1", "j", "x", op);
        fc.program.loops.push_back(b.build());
        break;
      }
      case 3: {  // two uncentered reductions through different maps
        ir::LoopBuilder b(ln, "i", "A");
        b.loadF64("x", "A", "a0", "i");
        b.loadIdx("j1", "A", "ptr", "i");
        b.apply("j2", "gB", "i");
        b.reduce("B", "b1", "j1", "x");
        b.reduce("B", "b1", "j2", "x");
        fc.program.loops.push_back(b.build());
        break;
      }
      case 4: {  // centered loop on B mixing store and centered reduce
        ir::LoopBuilder b(ln, "j", "B");
        b.loadF64("x", "B", "b1", "j");
        b.compute("y", {"x"}, [](auto v) { return 0.5 * v[0]; });
        b.reduce("B", "b0", "j", "y");
        b.store("B", "b1", "j", "y");
        fc.program.loops.push_back(b.build());
        break;
      }
    }
  }
  return fc;
}

class RandomProgramTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramTest, AutoParallelExecutionMatchesSerial) {
  const std::uint64_t seed = GetParam();

  FuzzCase serial = makeCase(seed);
  for (int step = 0; step < 2; ++step) {
    ir::runSerial(*serial.world, serial.program);
  }

  Rng rng(seed * 31 + 7);
  const std::size_t pieces = 1 + rng.below(7);
  FuzzCase parallel = makeCase(seed);
  parallelize::AutoParallelizer ap(*parallel.world);
  parallelize::ParallelPlan plan = ap.plan(parallel.program);

  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(*parallel.world, plan, pieces, opts);
  for (int step = 0; step < 2; ++step) exec.run();

  for (const char* regionName : {"A", "B"}) {
    for (const std::string& field :
         serial.world->region(regionName).fieldNames()) {
      if (serial.world->region(regionName).fieldType(field) !=
          FieldType::F64) {
        continue;
      }
      auto want = serial.world->region(regionName).f64(field);
      auto got = parallel.world->region(regionName).f64(field);
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_NEAR(want[i], got[i], 1e-9 * (1 + std::abs(want[i])))
            << "seed " << seed << " pieces " << pieces << " " << regionName
            << "." << field << "[" << i << "]";
      }
    }
  }

  // Every iteration-space partition the solver chose must be complete
  // (COMP is a hard constraint from Algorithm 1).
  exec.preparePartitions();
  for (const auto& pl : plan.loops) {
    const auto& part = exec.partition(pl.iterPartition);
    EXPECT_TRUE(part.isComplete(
        parallel.world->region(pl.loop->iterRegion).size()))
        << "seed " << seed << " loop " << pl.loop->name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<std::uint64_t>(0, 60));

}  // namespace
}  // namespace dpart
