#include "dpl/evaluator.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace dpart::dpl {
namespace {

using region::FieldType;
using region::Index;
using region::IndexSet;
using region::Partition;
using region::Region;
using region::World;

// A small particles/cells world shaped like the paper's running example
// (Fig. 1): particles point to cells; h maps each cell to a neighbor.
class ParticlesCellsWorld : public ::testing::Test {
 protected:
  void SetUp() override {
    Region& particles = world.addRegion("Particles", 8);
    world.addRegion("Cells", 4);
    particles.addField("cell", FieldType::Idx);
    auto cell = particles.idx("cell");
    // Two particles per cell, laid out round-robin.
    for (Index p = 0; p < 8; ++p) cell[p] = p % 4;
    world.defineFieldFn("Particles", "cell", "Cells");
    world.defineAffineFn("h", "Cells", "Cells",
                         [](Index c) { return (c + 1) % 4; });
  }

  World world;
};

TEST_F(ParticlesCellsWorld, RunsFigure2ProgramB) {
  // P2 = P4 = equal(Cells, N); P1 = preimage(Particles, cell, P2);
  // P3 = P5 = image(P2, h, Cells).
  Program prog;
  prog.append("P2", equalOf("Cells"));
  prog.append("P4", symbol("P2"));
  prog.append("P1", preimage("Particles", "Particles[.].cell", symbol("P2")));
  prog.append("P3", image(symbol("P2"), "h", "Cells"));
  prog.append("P5", symbol("P3"));

  Evaluator ev(world, 2);
  const auto& env = ev.run(prog);

  const Partition& p2 = env.at("P2");
  EXPECT_TRUE(p2.isDisjoint());
  EXPECT_TRUE(p2.isComplete(4));

  const Partition& p1 = env.at("P1");
  // Cells {0,1} own particles {0,1,4,5}; cells {2,3} own {2,3,6,7}.
  EXPECT_EQ(p1.sub(0), (IndexSet{0, 1, 4, 5}));
  EXPECT_EQ(p1.sub(1), (IndexSet{2, 3, 6, 7}));
  EXPECT_TRUE(p1.isDisjoint());
  EXPECT_TRUE(p1.isComplete(8));

  const Partition& p3 = env.at("P3");
  // h({0,1}) = {1,2}; h({2,3}) = {3,0}.
  EXPECT_EQ(p3.sub(0), IndexSet::interval(1, 3));
  EXPECT_EQ(p3.sub(1), (IndexSet{0, 3}));

  // Legality: each image is contained in its constraint's upper bound.
  const Partition imgCell = region::imagePartition(
      world, p1, "Particles[.].cell", "Cells");
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(p2.sub(i).containsAll(imgCell.sub(i)));
  }
}

TEST_F(ParticlesCellsWorld, ExternalBindingsAreVisible) {
  Evaluator ev(world, 2);
  Partition custom("Cells", {IndexSet{0, 2}, IndexSet{1, 3}});
  ev.bind("pCells", custom);
  EXPECT_TRUE(ev.has("pCells"));
  Program prog;
  prog.append("P3", image(symbol("pCells"), "h", "Cells"));
  const auto& env = ev.run(prog);
  EXPECT_EQ(env.at("P3").sub(0), (IndexSet{1, 3}));
  EXPECT_EQ(env.at("P3").sub(1), (IndexSet{0, 2}));
}

TEST_F(ParticlesCellsWorld, UnboundSymbolThrows) {
  Evaluator ev(world, 2);
  EXPECT_THROW(ev.eval(symbol("nope")), Error);
  EXPECT_THROW((void)ev.partition("nope"), Error);
}

TEST_F(ParticlesCellsWorld, EqualUsesPieceCount) {
  Evaluator ev(world, 4);
  Partition p = ev.eval(equalOf("Particles"));
  EXPECT_EQ(p.count(), 4u);
  EXPECT_EQ(ev.pieces(), 4u);
}

TEST_F(ParticlesCellsWorld, SetOperatorEvaluation) {
  Evaluator ev(world, 2);
  ev.bind("A", Partition("Cells", {IndexSet{0, 1}, IndexSet{2, 3}}));
  ev.bind("B", Partition("Cells", {IndexSet{1, 2}, IndexSet{3}}));
  EXPECT_EQ(ev.eval(unionOf(symbol("A"), symbol("B"))).sub(0),
            (IndexSet{0, 1, 2}));
  EXPECT_EQ(ev.eval(intersectOf(symbol("A"), symbol("B"))).sub(0),
            (IndexSet{1}));
  EXPECT_EQ(ev.eval(subtractOf(symbol("A"), symbol("B"))).sub(1),
            (IndexSet{2}));
}

TEST_F(ParticlesCellsWorld, RebindOverwrites) {
  Evaluator ev(world, 2);
  ev.bind("A", Partition("Cells", {IndexSet{0}}));
  ev.bind("A", Partition("Cells", {IndexSet{1}}));
  EXPECT_EQ(ev.partition("A").sub(0), (IndexSet{1}));
}

}  // namespace
}  // namespace dpart::dpl
