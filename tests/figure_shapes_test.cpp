// Locks the qualitative shapes of the paper's Figure 14 into the test
// suite at small scale (up to 16 simulated nodes), so regressions in the
// solver, the optimizers or the cost model that would change the
// reproduction's conclusions fail CI rather than only skewing the benches.

#include <gtest/gtest.h>

#include "apps/circuit.hpp"
#include "apps/miniaero.hpp"
#include "apps/pennant.hpp"
#include "apps/spmv.hpp"
#include "apps/stencil.hpp"
#include "sim/cluster.hpp"

namespace dpart::apps {
namespace {

double stepTime(const region::World& world, const SimSetup& setup) {
  sim::ClusterSim cs(world, sim::MachineConfig{});
  for (const auto& [r, o] : setup.owners) cs.setOwner(r, o);
  return cs.simulateStep(setup.plan, setup.partitions);
}

TEST(FigureShapes, SpmvStaysNearIdeal) {
  auto time = [](int nodes) {
    SpmvApp::Params p;
    p.rowsPerPiece = 2048;
    p.pieces = static_cast<std::size_t>(nodes);
    SpmvApp app(p);
    return stepTime(app.world(), app.autoSetup());
  };
  const double t1 = time(1);
  const double t16 = time(16);
  EXPECT_LT(t16, t1 * 1.25) << "SpMV weak scaling regressed";
}

TEST(FigureShapes, StencilManualBeatsAutoSlightly) {
  StencilApp::Params p;
  p.rowsPerPiece = 64;
  p.cols = 64;
  p.pieces = 8;
  StencilApp a1(p), a2(p);
  const double tAuto = stepTime(a1.world(), a1.autoSetup());
  const double tMan = stepTime(a2.world(), a2.manualSetup());
  EXPECT_GT(tAuto, tMan);             // manual wins...
  EXPECT_LT(tAuto, tMan * 1.15);      // ...but only slightly (paper: ~3%)
}

TEST(FigureShapes, MiniAeroAutoWithinFewPercentOfManual) {
  MiniAeroApp::Params p;
  p.nx = 8;
  p.ny = 8;
  p.nzPerPiece = 8;
  p.pieces = 8;
  MiniAeroApp a1(p);
  MiniAeroApp a2(p, /*duplicatedFaces=*/true);
  const double tAuto = stepTime(a1.world(), a1.autoSetup());
  const double tMan = stepTime(a2.world(), a2.manualSetup());
  EXPECT_LT(std::abs(tAuto - tMan), tMan * 0.15);
}

TEST(FigureShapes, CircuitAutoCollapsesAndHintRecovers) {
  auto times = [](int nodes) {
    CircuitApp::Params p;
    p.pieces = static_cast<std::size_t>(nodes);
    p.nodesPerCluster = 1024;
    p.wiresPerCluster = 4096;
    CircuitApp a1(p), a2(p);
    return std::pair{stepTime(a1.world(), a1.autoSetup()),
                     stepTime(a2.world(), a2.hintSetup())};
  };
  auto [auto2, hint2] = times(2);
  auto [auto16, hint16] = times(16);
  // Hint stays flat; Auto degrades markedly by 16 nodes.
  EXPECT_LT(hint16, hint2 * 1.3);
  EXPECT_GT(auto16, hint16 * 1.5) << "Auto's shared-node hotspot vanished";
  // At 2 nodes they are still close.
  EXPECT_LT(auto2, hint2 * 1.3);
}

TEST(FigureShapes, PennantHintOrderingHolds) {
  PennantApp::Params p;
  p.zx = 16;
  p.zyPerPiece = 16;
  p.pieces = 16;
  PennantApp a1(p), a2(p), a3(p), a4(p);
  const double tAuto = stepTime(a1.world(), a1.autoSetup());
  const double tHint1 = stepTime(a2.world(), a2.hint1Setup());
  const double tHint2 = stepTime(a3.world(), a3.hint2Setup());
  const double tMan = stepTime(a4.world(), a4.manualSetup());
  // Auto is far behind; Hint1 >= Hint2 ~= Manual.
  EXPECT_GT(tAuto, tHint1 * 1.3);
  EXPECT_GE(tHint1, tHint2 * 0.999);
  EXPECT_LT(std::abs(tHint2 - tMan), tMan * 0.05);
}

}  // namespace
}  // namespace dpart::apps
