// Soundness of the lemma engine (paper Fig. 8) against ground truth: for
// randomly generated expression trees over randomly partitioned regions,
// anything Entailment proves — PART, DISJ, COMP, or a subset — must hold
// for the actually evaluated partitions. (The prover is deliberately
// incomplete, so no converse check.)

#include <gtest/gtest.h>

#include "constraint/entail.hpp"
#include "dpl/evaluator.hpp"
#include "support/rng.hpp"

namespace dpart::constraint {
namespace {

using dpl::ExprPtr;
using region::Index;
using region::IndexSet;
using region::Partition;
using region::World;

struct Ground {
  World world;
  System hypotheses;
  dpl::Evaluator evaluator{world, 3};
  std::vector<ExprPtr> pool;  // generated expressions
  Rng rng{0};

  explicit Ground(std::uint64_t seed) : rng(seed) {
    world.addRegion("R", 24);
    world.addRegion("S", 18);
    table.resize(24);
    for (auto& v : table) v = rng.range(0, 18);
    world.defineAffineFn("f", "R", "S", [this](Index i) {
      return table[static_cast<std::size_t>(i)];
    });
    world.defineAffineFn("g", "S", "R",
                         [](Index i) { return (i * 5 + 1) % 24; });

    // Three bound symbols with random shapes; their true properties are
    // asserted as hypotheses (like user-provided external partitions).
    bind("A", "R");
    bind("B", "R");
    bind("C", "S");
    pool.push_back(dpl::equalOf("R"));
    pool.push_back(dpl::equalOf("S"));
  }

  void bind(const std::string& name, const std::string& regionName) {
    const Index n = world.region(regionName).size();
    std::vector<IndexSet> subs;
    const bool disjoint = rng.chance(0.5);
    IndexSet taken;
    for (int j = 0; j < 3; ++j) {
      std::vector<Index> idx;
      for (Index i = 0; i < n; ++i) {
        if (rng.chance(0.35)) idx.push_back(i);
      }
      IndexSet s = IndexSet::fromIndices(std::move(idx));
      if (disjoint) {
        s = s.subtract(taken);
        taken = taken.unionWith(s);
      }
      subs.push_back(std::move(s));
    }
    Partition p(regionName, std::move(subs));
    hypotheses.declareSymbol(name, regionName, /*fixed=*/true);
    if (p.isDisjoint()) hypotheses.addDisj(dpl::symbol(name), true);
    if (p.isComplete(n)) hypotheses.addComp(dpl::symbol(name), regionName, true);
    evaluator.bind(name, std::move(p));
    pool.push_back(dpl::symbol(name));
  }

  // Random expression of bounded depth over one region.
  ExprPtr randomExpr(int depth) {
    if (depth == 0 || rng.chance(0.3)) {
      return pool[rng.below(pool.size())];
    }
    switch (rng.below(6)) {
      case 0:
        return dpl::unionOf(randomExprOver("R", depth - 1),
                            randomExprOver("R", depth - 1));
      case 1:
        return dpl::intersectOf(randomExprOver("S", depth - 1),
                                randomExprOver("S", depth - 1));
      case 2:
        return dpl::subtractOf(randomExprOver("R", depth - 1),
                               randomExprOver("R", depth - 1));
      case 3:
        return dpl::image(randomExprOver("R", depth - 1), "f", "S");
      case 4:
        return dpl::preimage("R", "f", randomExprOver("S", depth - 1));
      default:
        return dpl::image(randomExprOver("S", depth - 1), "g", "R");
    }
  }

  // Random expression guaranteed to partition `regionName`.
  ExprPtr randomExprOver(const std::string& regionName, int depth) {
    for (int tries = 0; tries < 50; ++tries) {
      ExprPtr e = randomExpr(depth);
      Entailment ent(hypotheses, {});
      if (ent.regionOf(e) == regionName) return e;
    }
    return dpl::equalOf(regionName);
  }

  std::vector<Index> table;
};

class EntailSoundnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EntailSoundnessTest, ProvenPredicatesHoldOnGroundTruth) {
  Ground ground(GetParam());
  Entailment ent(ground.hypotheses, {});
  for (int k = 0; k < 40; ++k) {
    ExprPtr e = ground.randomExpr(3);
    const std::string regionName = ent.regionOf(e);
    if (regionName.empty()) continue;
    Partition p = ground.evaluator.eval(e);
    const Index n = ground.world.region(regionName).size();

    if (ent.provePart(e, regionName)) {
      EXPECT_EQ(p.regionName(), regionName) << e->toString();
      for (std::size_t j = 0; j < p.count(); ++j) {
        EXPECT_TRUE(IndexSet::interval(0, n).containsAll(p.sub(j)))
            << e->toString();
      }
    }
    if (ent.proveDisj(e)) {
      EXPECT_TRUE(p.isDisjoint()) << "proved DISJ but not disjoint: "
                                  << e->toString();
    }
    if (ent.proveComp(e, regionName)) {
      EXPECT_TRUE(p.isComplete(n)) << "proved COMP but not complete: "
                                   << e->toString();
    }
  }
}

TEST_P(EntailSoundnessTest, ProvenSubsetsHoldOnGroundTruth) {
  Ground ground(GetParam() + 1000);
  Entailment ent(ground.hypotheses, {});
  int proven = 0;
  for (int k = 0; k < 60; ++k) {
    ExprPtr a = ground.randomExpr(2);
    ExprPtr b = ground.randomExpr(2);
    if (ent.regionOf(a).empty() || ent.regionOf(a) != ent.regionOf(b)) {
      continue;
    }
    if (!ent.proveSubset(a, b)) continue;
    ++proven;
    Partition pa = ground.evaluator.eval(a);
    Partition pb = ground.evaluator.eval(b);
    ASSERT_EQ(pa.count(), pb.count());
    for (std::size_t j = 0; j < pa.count(); ++j) {
      EXPECT_TRUE(pb.sub(j).containsAll(pa.sub(j)))
          << a->toString() << "  <=  " << b->toString();
    }
  }
  // The generator produces plenty of trivially provable pairs (x <= x u y,
  // x n y <= x, ...); make sure the test isn't vacuous.
  EXPECT_GT(proven, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntailSoundnessTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace dpart::constraint
