// Cross-component consistency checks:
//  - the cluster simulator's reduction-buffer accounting is an upper bound
//    on what the executor actually buffers (the simulator charges subregion
//    extents; the executor counts touched elements);
//  - every app plan satisfies Legion-style non-interference between every
//    pair of tasks under the partitions the solver synthesized;
//  - degenerate inputs (empty programs, one-element regions) stay sane.

#include <gtest/gtest.h>

#include "apps/circuit.hpp"
#include "apps/pennant.hpp"
#include "apps/stencil.hpp"
#include "runtime/executor.hpp"
#include "runtime/privileges.hpp"
#include "sim/cluster.hpp"

namespace dpart {
namespace {

TEST(Consistency, SimBufferAccountingBoundsExecutor) {
  apps::CircuitApp::Params p;
  p.pieces = 4;
  p.nodesPerCluster = 512;
  p.wiresPerCluster = 1024;
  apps::CircuitApp app(p);
  apps::SimSetup setup = app.hintSetup();

  sim::ClusterSim csim(app.world(), sim::MachineConfig{});
  for (const auto& [r, o] : setup.owners) csim.setOwner(r, o);
  auto depths = sim::ClusterSim::depthsOf(setup.plan.dpl);
  std::int64_t simBuffered = 0;
  for (const auto& pl : setup.plan.loops) {
    simBuffered +=
        csim.simulateLoop(pl, setup.partitions, depths).totalBufferedElems;
  }

  runtime::PlanExecutor exec(app.world(), setup.plan, p.pieces);
  exec.bindExternal("pn_private", app.pnPrivate());
  exec.bindExternal("pn_shared", app.pnShared());
  exec.run();

  EXPECT_GE(static_cast<std::uint64_t>(simBuffered),
            exec.bufferedElements());
  // And the private sub-partitions actually bite: far less is buffered
  // than the reduction partitions' total extent.
  std::int64_t fullExtent = 0;
  for (const auto& pl : setup.plan.loops) {
    for (const auto& [_, rp] : pl.reduces) {
      fullExtent += setup.partitions.at(rp.partition).totalElements();
    }
  }
  EXPECT_LT(simBuffered, fullExtent / 4);
}

// Non-interference (the condition Legion enforces dynamically) holds for
// every task pair of every loop of every app plan.
template <typename App, typename MakeSetup>
void checkNonInterference(App& app, MakeSetup makeSetup, std::size_t pieces) {
  apps::SimSetup setup = makeSetup(app);
  for (const auto& pl : setup.plan.loops) {
    auto reqs = runtime::requirementsOf(pl);
    for (std::size_t a = 0; a < pieces; ++a) {
      for (std::size_t b = a + 1; b < pieces; ++b) {
        ASSERT_TRUE(runtime::nonInterfering(reqs, setup.partitions, a, b))
            << pl.loop->name << " tasks " << a << "/" << b;
      }
    }
  }
}

TEST(Consistency, StencilPlansAreNonInterfering) {
  apps::StencilApp::Params p;
  p.rowsPerPiece = 16;
  p.cols = 32;
  p.pieces = 4;
  apps::StencilApp app(p);
  checkNonInterference(app, [](auto& a) { return a.autoSetup(); }, 4);
  apps::StencilApp app2(p);
  checkNonInterference(app2, [](auto& a) { return a.manualSetup(); }, 4);
}

TEST(Consistency, CircuitPlansAreNonInterfering) {
  apps::CircuitApp::Params p;
  p.pieces = 4;
  p.nodesPerCluster = 256;
  p.wiresPerCluster = 512;
  apps::CircuitApp app(p);
  checkNonInterference(app, [](auto& a) { return a.autoSetup(); }, 4);
  apps::CircuitApp app2(p);
  checkNonInterference(app2, [](auto& a) { return a.hintSetup(); }, 4);
}

TEST(Consistency, PennantPlansAreNonInterfering) {
  apps::PennantApp::Params p;
  p.zx = 6;
  p.zyPerPiece = 4;
  p.pieces = 4;
  apps::PennantApp app(p);
  checkNonInterference(app, [](auto& a) { return a.autoSetup(); }, 4);
  apps::PennantApp app2(p);
  checkNonInterference(app2, [](auto& a) { return a.hint2Setup(); }, 4);
}

TEST(Consistency, EmptyProgramYieldsEmptyPlan) {
  region::World world;
  world.addRegion("R", 4).addField("a", region::FieldType::F64);
  parallelize::AutoParallelizer ap(world);
  parallelize::ParallelPlan plan = ap.plan(ir::Program{"empty", {}});
  EXPECT_TRUE(plan.dpl.empty());
  EXPECT_TRUE(plan.loops.empty());
  runtime::PlanExecutor exec(world, plan, 2);
  exec.run();  // no-op, no throw
}

TEST(Consistency, OneElementRegions) {
  region::World world;
  world.addRegion("R", 1).addField("a", region::FieldType::F64);
  world.region("R").addField("b", region::FieldType::F64);
  world.region("R").f64("a")[0] = 3.0;
  ir::Program prog;
  ir::LoopBuilder b("tiny", "i", "R");
  b.loadF64("x", "R", "a", "i");
  b.store("R", "b", "i", "x");
  prog.loops.push_back(b.build());
  parallelize::AutoParallelizer ap(world);
  parallelize::ParallelPlan plan = ap.plan(prog);
  runtime::PlanExecutor exec(world, plan, 4);  // more pieces than elements
  exec.run();
  EXPECT_EQ(world.region("R").f64("b")[0], 3.0);
}

TEST(Consistency, PlanIsReusableAcrossExecutors) {
  apps::StencilApp::Params p;
  p.rowsPerPiece = 8;
  p.cols = 16;
  p.pieces = 2;
  apps::StencilApp app(p);
  apps::SimSetup setup = app.autoSetup();
  // The same plan drives a fresh executor after a first one finished.
  runtime::PlanExecutor e1(app.world(), setup.plan, 2);
  e1.run();
  runtime::PlanExecutor e2(app.world(), setup.plan, 2);
  e2.run();
}

}  // namespace
}  // namespace dpart
