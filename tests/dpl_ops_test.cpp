#include "region/dpl_ops.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dpart::region {
namespace {

// Fixture replicating the paper's Figure 3: f(i) = (i + 1) % 5 over a
// five-element region partitioned as P = <{0,1,2}, {3,4}>.
class Figure3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    world.addRegion("R", 5);
    world.addRegion("S", 5);
    world.defineAffineFn("f", "R", "S", [](Index i) { return (i + 1) % 5; });
    p = Partition("R", {IndexSet::interval(0, 3), IndexSet::interval(3, 5)});
  }

  World world;
  Partition p;
};

TEST_F(Figure3Test, ImageMatchesPaperFigure) {
  // image maps {0,1,2} -> {1,2,3} and {3,4} -> {4,0}.
  Partition img = imagePartition(world, p, "f", "S");
  EXPECT_EQ(img.sub(0), IndexSet::interval(1, 4));
  EXPECT_EQ(img.sub(1), (IndexSet{0, 4}));
}

TEST_F(Figure3Test, PreimageMatchesPaperFigure) {
  // With P' = <{0,1,2}, {3,4}> on S, preimage(R, f, P') gives
  // f^-1({0,1,2}) = {4,0,1} and f^-1({3,4}) = {2,3}.
  Partition pre = preimagePartition(world, "R", "f", p);
  EXPECT_EQ(pre.sub(0), (IndexSet{0, 1, 4}));
  EXPECT_EQ(pre.sub(1), IndexSet::interval(2, 4));
}

TEST(EqualPartition, BalancedSizes) {
  World w;
  w.addRegion("R", 10);
  Partition p = equalPartition(w, "R", 3);
  ASSERT_EQ(p.count(), 3u);
  EXPECT_EQ(p.sub(0).size(), 4);
  EXPECT_EQ(p.sub(1).size(), 3);
  EXPECT_EQ(p.sub(2).size(), 3);
  EXPECT_TRUE(p.isDisjoint());
  EXPECT_TRUE(p.isComplete(10));
}

TEST(EqualPartition, MorePiecesThanElements) {
  World w;
  w.addRegion("R", 2);
  Partition p = equalPartition(w, "R", 5);
  ASSERT_EQ(p.count(), 5u);
  EXPECT_TRUE(p.isDisjoint());
  EXPECT_TRUE(p.isComplete(2));
  EXPECT_EQ(p.totalElements(), 2);
}

TEST(EqualPartition, ZeroPiecesThrows) {
  World w;
  w.addRegion("R", 2);
  EXPECT_THROW(equalPartition(w, "R", 0), Error);
}

TEST(ImagePartition, FieldFn) {
  World w;
  Region& particles = w.addRegion("Particles", 6);
  w.addRegion("Cells", 4);
  particles.addField("cell", FieldType::Idx);
  auto cell = particles.idx("cell");
  cell[0] = 0;
  cell[1] = 1;
  cell[2] = 1;
  cell[3] = 3;
  cell[4] = 3;
  cell[5] = 2;
  w.defineFieldFn("Particles", "cell", "Cells");
  Partition p("Particles",
              {IndexSet::interval(0, 3), IndexSet::interval(3, 6)});
  Partition img = imagePartition(w, p, "Particles[.].cell", "Cells");
  EXPECT_EQ(img.sub(0), IndexSet::interval(0, 2));
  EXPECT_EQ(img.sub(1), (IndexSet{2, 3}));
  EXPECT_EQ(img.regionName(), "Cells");
}

TEST(ImagePartition, OutOfBoundsValuesAreClipped) {
  World w;
  w.addRegion("R", 4);
  w.addRegion("S", 2);
  w.defineAffineFn("f", "R", "S", [](Index i) { return i; });
  Partition p("R", {IndexSet::interval(0, 4)});
  Partition img = imagePartition(w, p, "f", "S");
  EXPECT_EQ(img.sub(0), IndexSet::interval(0, 2));
}

TEST(PreimagePartition, AliasedTargets) {
  // Two subregions that both contain index 1: the preimage of any k with
  // f(k)=1 must land in both.
  World w;
  w.addRegion("R", 4);
  w.addRegion("S", 3);
  w.defineAffineFn("f", "R", "S", [](Index i) { return i % 3; });
  Partition p("S", {IndexSet{0, 1}, IndexSet{1, 2}});
  Partition pre = preimagePartition(w, "R", "f", p);
  // f: 0->0, 1->1, 2->2, 3->0.
  EXPECT_EQ(pre.sub(0), (IndexSet{0, 1, 3}));
  EXPECT_EQ(pre.sub(1), (IndexSet{1, 2}));
}

TEST(RangeOps, GeneralizedImageFlattensRanges) {
  // Section 4: IMAGE over a Range field (CSR rows).
  World w;
  Region& ranges = w.addRegion("Ranges", 3);
  w.addRegion("Mat", 12);
  ranges.addField("span", FieldType::Range);
  auto span = ranges.range("span");
  span[0] = region::Run{0, 4};
  span[1] = region::Run{4, 9};
  span[2] = region::Run{9, 12};
  w.defineRangeFn("Ranges", "span", "Mat");
  Partition p("Ranges", {IndexSet::interval(0, 2), IndexSet::interval(2, 3)});
  Partition img = imagePartition(w, p, "Ranges[.].span", "Mat");
  EXPECT_EQ(img.sub(0), IndexSet::interval(0, 9));
  EXPECT_EQ(img.sub(1), IndexSet::interval(9, 12));
}

TEST(RangeOps, GeneralizedPreimage) {
  // PREIMAGE(R, F, E)[i] = { l | exists k in E[i], k in F(l) }.
  World w;
  Region& ranges = w.addRegion("Ranges", 3);
  w.addRegion("Mat", 12);
  ranges.addField("span", FieldType::Range);
  auto span = ranges.range("span");
  span[0] = region::Run{0, 4};
  span[1] = region::Run{4, 9};
  span[2] = region::Run{9, 12};
  w.defineRangeFn("Ranges", "span", "Mat");
  Partition mat("Mat", {IndexSet::interval(0, 6), IndexSet::interval(6, 12)});
  Partition pre = preimagePartition(w, "Ranges", "Ranges[.].span", mat);
  // Row 0 covers [0,4) -> piece 0 only; row 1 covers [4,9) -> both pieces;
  // row 2 covers [9,12) -> piece 1 only.
  EXPECT_EQ(pre.sub(0), IndexSet::interval(0, 2));
  EXPECT_EQ(pre.sub(1), IndexSet::interval(1, 3));
}

TEST(PartitionSetOps, SubregionWise) {
  Partition a("R", {IndexSet::interval(0, 4), IndexSet::interval(8, 12)});
  Partition b("R", {IndexSet::interval(2, 6), IndexSet::interval(10, 14)});
  EXPECT_EQ(unionPartitions(a, b).sub(0), IndexSet::interval(0, 6));
  EXPECT_EQ(intersectPartitions(a, b).sub(1), IndexSet::interval(10, 12));
  EXPECT_EQ(subtractPartitions(a, b).sub(0), IndexSet::interval(0, 2));
}

TEST(PartitionSetOps, MismatchedOperandsThrow) {
  Partition a("R", {IndexSet::interval(0, 4)});
  Partition b("R", {IndexSet::interval(0, 4), IndexSet::interval(4, 8)});
  Partition c("S", {IndexSet::interval(0, 4)});
  EXPECT_THROW(unionPartitions(a, b), Error);
  EXPECT_THROW(intersectPartitions(a, c), Error);
}

// ---- Property tests over random functions and partitions ----

class DplOpsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static constexpr Index kDomain = 40;
  static constexpr Index kRange = 30;

  void SetUp() override {
    Rng rng(GetParam());
    world.addRegion("R", kDomain);
    world.addRegion("S", kRange);
    fnTable.resize(kDomain);
    for (Index i = 0; i < kDomain; ++i) fnTable[i] = rng.range(0, kRange);
    world.defineAffineFn("f", "R", "S",
                         [this](Index i) { return fnTable[i]; });
    // Random 4-piece (possibly aliased, possibly incomplete) partition of R.
    std::vector<IndexSet> subs;
    for (int j = 0; j < 4; ++j) {
      std::vector<Index> idx;
      for (Index i = 0; i < kDomain; ++i) {
        if (rng.chance(0.3)) idx.push_back(i);
      }
      subs.push_back(IndexSet::fromIndices(std::move(idx)));
    }
    part = Partition("R", std::move(subs));
  }

  World world;
  std::vector<Index> fnTable;
  Partition part;
};

TEST_P(DplOpsPropertyTest, ImageDefinition) {
  Partition img = imagePartition(world, part, "f", "S");
  for (std::size_t j = 0; j < part.count(); ++j) {
    // Every mapped point is present...
    part.sub(j).forEach([&](Index k) {
      EXPECT_TRUE(img.sub(j).contains(fnTable[k]));
    });
    // ...and nothing else is.
    img.sub(j).forEach([&](Index v) {
      bool hasSource = false;
      part.sub(j).forEach([&](Index k) { hasSource |= fnTable[k] == v; });
      EXPECT_TRUE(hasSource) << "spurious image element " << v;
    });
  }
}

TEST_P(DplOpsPropertyTest, PreimageDefinition) {
  Partition onS("S", {IndexSet::interval(0, kRange / 2),
                      IndexSet::interval(kRange / 2, kRange)});
  Partition pre = preimagePartition(world, "R", "f", onS);
  for (std::size_t j = 0; j < onS.count(); ++j) {
    for (Index k = 0; k < kDomain; ++k) {
      EXPECT_EQ(pre.sub(j).contains(k), onS.sub(j).contains(fnTable[k]));
    }
  }
}

TEST_P(DplOpsPropertyTest, ImageOfPreimageIsContained) {
  // The L14-adjacent fact the solver relies on:
  //   image(preimage(R, f, E), f, S) subseteq E.
  Partition onS("S", {IndexSet::interval(0, 10), IndexSet::interval(10, 25)});
  Partition pre = preimagePartition(world, "R", "f", onS);
  Partition img = imagePartition(world, pre, "f", "S");
  for (std::size_t j = 0; j < onS.count(); ++j) {
    EXPECT_TRUE(onS.sub(j).containsAll(img.sub(j)));
  }
}

TEST_P(DplOpsPropertyTest, PreimagePreservesDisjointnessAndCompleteness) {
  // Lemmas L7 and L12 for point-valued functions.
  World w2;
  w2.addRegion("R", kDomain);
  w2.addRegion("S", kRange);
  w2.defineAffineFn("f", "R", "S", [this](Index i) { return fnTable[i]; });
  Partition onS = equalPartition(w2, "S", 5);
  ASSERT_TRUE(onS.isDisjoint());
  ASSERT_TRUE(onS.isComplete(kRange));
  Partition pre = preimagePartition(w2, "R", "f", onS);
  EXPECT_TRUE(pre.isDisjoint());
  EXPECT_TRUE(pre.isComplete(kDomain));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DplOpsPropertyTest,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace dpart::region
