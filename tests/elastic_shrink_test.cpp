// Elastic-recovery acceptance tests: a node permanently lost mid-run makes
// the executor restore the latest checkpoint, shrink to the surviving piece
// count (re-evaluating the machine-size-agnostic constraint solution — no
// new solve), resume from the checkpointed launch index, and finish with
// fields *bitwise* identical to a fault-free run at the shrunken piece
// count. Bitwise comparability across piece counts requires ops whose
// application order per target is piece-count invariant: in-place Sum
// (Guarded/Direct apply ascending-i within the single owning task) and
// Min/Max anywhere (grouping-insensitive bitwise).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "parallelize/parallelize.hpp"
#include "runtime/executor.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace dpart {
namespace {

namespace fs = std::filesystem;

using optimize::ReduceStrategy;
using region::FieldType;
using region::Index;
using region::World;

constexpr int kSteps = 3;
constexpr std::size_t kPieces = 4;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("dpart_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
  fs::path path;
};

// Same region shapes as fault_recovery_test: f = i/3 exactly onto [0, |S|).
void buildWorld(World& w, std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const Index nS = 12 + static_cast<Index>(rng.below(9));
  const Index nR = 3 * nS;
  region::Region& r = w.addRegion("R", nR);
  r.addField("val", FieldType::F64);
  r.addField("tmp", FieldType::F64);
  region::Region& s = w.addRegion("S", nS);
  s.addField("acc", FieldType::F64);
  s.addField("acc2", FieldType::F64);
  w.defineAffineFn("f", "R", "S", [](Index i) { return i / 3; });
  w.defineAffineFn("g", "R", "S",
                   [nS](Index i) { return (i / 3 + 5) % nS; });
  for (const char* field : {"val", "tmp"}) {
    auto col = w.region("R").f64(field);
    for (std::size_t i = 0; i < col.size(); ++i) {
      col[i] = double(rng.range(-50, 50)) * 0.5;
    }
  }
  for (const char* field : {"acc", "acc2"}) {
    auto col = w.region("S").f64(field);
    for (std::size_t i = 0; i < col.size(); ++i) {
      col[i] = double(rng.range(-10, 10));
    }
  }
}

// Single-loop scatter whose reduction strategy the optimizer picks
// deterministically (see fault_recovery_test).
ir::Program makeScatter(ir::ReduceOp op, bool blockRelaxation,
                        bool twoReductions) {
  ir::Program prog;
  prog.name = "shrink";
  ir::LoopBuilder b("scatter", "i", "R");
  b.loadF64("x", "R", "val", "i");
  b.apply("j", "f", "i");
  b.reduce("S", "acc", "j", "x", op);
  if (twoReductions) {
    b.apply("j2", "g", "i");
    b.reduce("S", "acc", "j2", "x", op);
  }
  if (blockRelaxation) {
    b.store("R", "val", "i", "x");
  }
  prog.loops.push_back(b.build());
  return prog;
}

// Multi-loop pipeline mixing all strategies with shrink-safe ops: centered
// copy, Guarded Sum, Direct Sum, PrivateSplit Min.
ir::Program makePipeline() {
  ir::Program prog;
  prog.name = "pipeline";
  {
    ir::LoopBuilder b("centered", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.store("R", "tmp", "i", "x");
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("gather", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.apply("j", "g", "i");
    b.reduce("S", "acc", "j", "x", ir::ReduceOp::Sum);
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("blocked", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.apply("j", "f", "i");
    b.reduce("S", "acc2", "j", "x", ir::ReduceOp::Sum);
    b.store("R", "val", "i", "x");
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("psplit", "i", "R");
    b.loadF64("x", "R", "tmp", "i");
    b.apply("j", "f", "i");
    b.reduce("S", "acc2", "j", "x", ir::ReduceOp::Min);
    b.apply("j2", "g", "i");
    b.reduce("S", "acc2", "j2", "x", ir::ReduceOp::Min);
    b.store("R", "tmp", "i", "x");
    prog.loops.push_back(b.build());
  }
  return prog;
}

void expectBitwiseEqual(World& want, World& got, const std::string& region,
                        const char* field) {
  auto a = want.region(region).f64(field);
  auto b = got.region(region).f64(field);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << region << "." << field << "[" << i << "] " << a[i]
        << " != " << b[i];
  }
}

void expectAllFieldsEqual(World& want, World& got) {
  expectBitwiseEqual(want, got, "R", "val");
  expectBitwiseEqual(want, got, "R", "tmp");
  expectBitwiseEqual(want, got, "S", "acc");
  expectBitwiseEqual(want, got, "S", "acc2");
}

/// Clean run at `pieces` pieces for kSteps steps.
void runClean(World& w, const ir::Program& prog,
              const parallelize::Options& popts, std::size_t pieces) {
  parallelize::AutoParallelizer ap(w, popts);
  parallelize::ParallelPlan plan = ap.plan(prog);
  runtime::PlanExecutor exec(w, plan, pieces);
  for (int s = 0; s < kSteps; ++s) exec.run();
}

/// Runs `prog` at kPieces with node 2 dying permanently on its second
/// launch; asserts exactly one restore + shrink and bitwise identity with a
/// fault-free run at kPieces - 1.
void runNodeLossDifferential(std::uint64_t seed, const ir::Program& prog,
                             const parallelize::Options& popts,
                             ReduceStrategy expected) {
  World clean;
  buildWorld(clean, seed);
  runClean(clean, prog, popts, kPieces - 1);

  World faulty;
  buildWorld(faulty, seed);
  parallelize::AutoParallelizer ap(faulty, popts);
  parallelize::ParallelPlan plan = ap.plan(prog);
  for (const auto& loop : plan.loops) {
    for (const auto& [_, rp] : loop.reduces) {
      EXPECT_EQ(rp.strategy, expected)
          << "loop '" << loop.loop->name << "' got "
          << optimize::toString(rp.strategy);
    }
  }

  FaultInjector inj(seed);
  FaultSpec loss;
  loss.kind = FaultKind::PermanentCrash;
  loss.afterArrivals = 2;  // node 2's second task attempt = second launch
  loss.maxFires = 1;
  inj.arm("node:2", loss);

  TempDir dir("shrink");
  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  opts.checkpoint.dir = dir.str();
  opts.checkpoint.everyNLaunches = 1;
  opts.verifyPartitions = true;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(faulty, plan, kPieces, opts);
  for (int s = 0; s < kSteps; ++s) exec.run();

  EXPECT_EQ(inj.firesAt("node:2"), 1u);
  EXPECT_EQ(exec.checkpointRestores(), 1u);
  EXPECT_EQ(exec.elasticShrinks(), 1u);
  EXPECT_EQ(exec.pieces(), kPieces - 1);
  EXPECT_EQ(exec.launchesDone(),
            static_cast<std::uint64_t>(kSteps * plan.loops.size()));
  EXPECT_NO_THROW(exec.verifyPartitions());  // legality after the shrink
  expectAllFieldsEqual(clean, faulty);
}

TEST(ElasticShrink, GuardedSumBitwiseAfterNodeLoss) {
  runNodeLossDifferential(3, makeScatter(ir::ReduceOp::Sum, false, false),
                          parallelize::Options{}, ReduceStrategy::Guarded);
}

TEST(ElasticShrink, DirectSumBitwiseAfterNodeLoss) {
  runNodeLossDifferential(4, makeScatter(ir::ReduceOp::Sum, true, false),
                          parallelize::Options{}, ReduceStrategy::Direct);
}

TEST(ElasticShrink, PrivateSplitMinBitwiseAfterNodeLoss) {
  runNodeLossDifferential(5, makeScatter(ir::ReduceOp::Min, true, true),
                          parallelize::Options{},
                          ReduceStrategy::PrivateSplit);
}

TEST(ElasticShrink, BufferedMaxBitwiseAfterNodeLoss) {
  parallelize::Options popts;
  popts.enableRelaxation = false;
  popts.enableDisjointReduction = false;
  popts.enablePrivateSubPartitions = false;
  runNodeLossDifferential(6, makeScatter(ir::ReduceOp::Max, true, true),
                          popts, ReduceStrategy::Buffered);
}

TEST(ElasticShrink, MultiLoopPipelineResumesMidStep) {
  const std::uint64_t seed = 11;
  const ir::Program prog = makePipeline();

  World clean;
  buildWorld(clean, seed);
  runClean(clean, prog, parallelize::Options{}, kPieces - 1);

  World faulty;
  buildWorld(faulty, seed);
  parallelize::AutoParallelizer ap(faulty);
  parallelize::ParallelPlan plan = ap.plan(prog);

  FaultInjector inj(seed);
  FaultSpec loss;
  loss.kind = FaultKind::PermanentCrash;
  // Node 2's 7th task attempt: launch 6 of 12 = loop 2 of step 1, so the
  // restore rewinds into the middle of a step and must resume with the
  // right loop of the right step.
  loss.afterArrivals = 7;
  loss.maxFires = 1;
  inj.arm("node:2", loss);

  TempDir dir("pipeline");
  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  opts.checkpoint.dir = dir.str();
  opts.checkpoint.everyNLaunches = 2;  // restore rolls back up to 2 launches
  opts.verifyPartitions = true;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(faulty, plan, kPieces, opts);
  for (int s = 0; s < kSteps; ++s) exec.run();

  EXPECT_EQ(inj.firesAt("node:2"), 1u);
  EXPECT_EQ(exec.checkpointRestores(), 1u);
  EXPECT_EQ(exec.elasticShrinks(), 1u);
  EXPECT_NO_THROW(exec.verifyPartitions());
  expectAllFieldsEqual(clean, faulty);
}

TEST(ElasticShrink, RetryExhaustionEscalatesToNodeLoss) {
  const std::uint64_t seed = 42;
  const ir::Program prog = makeScatter(ir::ReduceOp::Sum, false, false);

  World clean;
  buildWorld(clean, seed);
  runClean(clean, prog, parallelize::Options{}, kPieces - 1);

  World faulty;
  buildWorld(faulty, seed);
  parallelize::AutoParallelizer ap(faulty);
  parallelize::ParallelPlan plan = ap.plan(prog);

  FaultInjector inj(seed);
  FaultSpec crash;  // fails attempts 0 and 1 back to back: replay exhausted
  crash.kind = FaultKind::Crash;
  crash.probability = 1.0;
  crash.maxFires = 2;
  inj.arm("task:scatter:1", crash);

  TempDir dir("exhaust");
  std::atomic<std::uint64_t> slept{0};
  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  opts.resilience.taskReplay = true;
  opts.resilience.maxTaskRetries = 1;
  opts.resilience.retryBackoffMicros = 200000;  // 200ms: must go through the hook
  opts.resilience.sleepMicros = [&slept](std::uint64_t us) {
    slept.fetch_add(us, std::memory_order_relaxed);
  };
  opts.checkpoint.dir = dir.str();
  opts.verifyPartitions = true;
  runtime::PlanExecutor exec(faulty, plan, kPieces, opts);
  for (int s = 0; s < kSteps; ++s) exec.run();

  // One in-place replay (attempt 1) before escalation, then the restore
  // declares piece 1's host dead and shrinks.
  EXPECT_GE(exec.taskReplays(), 1u);
  EXPECT_EQ(exec.checkpointRestores(), 1u);
  EXPECT_EQ(exec.elasticShrinks(), 1u);
  EXPECT_EQ(exec.pieces(), kPieces - 1);
  EXPECT_GE(slept.load(), 200000u) << "backoff bypassed the sleep hook";
  expectAllFieldsEqual(clean, faulty);
}

TEST(ElasticShrink, LoopFaultRestoresWithoutShrink) {
  const std::uint64_t seed = 8;
  const ir::Program prog = makeScatter(ir::ReduceOp::Sum, false, false);

  // No node died, so the reference runs at the FULL piece count.
  World clean;
  buildWorld(clean, seed);
  runClean(clean, prog, parallelize::Options{}, kPieces);

  World faulty;
  buildWorld(faulty, seed);
  parallelize::AutoParallelizer ap(faulty);
  parallelize::ParallelPlan plan = ap.plan(prog);

  FaultInjector inj(seed);
  FaultSpec crash;
  crash.kind = FaultKind::Crash;
  crash.afterArrivals = 2;  // second launch dies at the launch level
  crash.maxFires = 1;
  inj.arm("loop:scatter", crash);

  TempDir dir("loopfault");
  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  opts.checkpoint.dir = dir.str();
  opts.verifyPartitions = true;
  runtime::PlanExecutor exec(faulty, plan, kPieces, opts);
  for (int s = 0; s < kSteps; ++s) exec.run();

  EXPECT_EQ(exec.checkpointRestores(), 1u);
  EXPECT_EQ(exec.elasticShrinks(), 0u) << "no node was lost";
  EXPECT_EQ(exec.pieces(), kPieces);
  expectAllFieldsEqual(clean, faulty);
}

TEST(ElasticShrink, NodeLossWithoutCheckpointsPropagates) {
  const std::uint64_t seed = 2;
  const ir::Program prog = makeScatter(ir::ReduceOp::Sum, false, false);
  World w;
  buildWorld(w, seed);
  parallelize::AutoParallelizer ap(w);
  parallelize::ParallelPlan plan = ap.plan(prog);

  FaultInjector inj(seed);
  FaultSpec loss;
  loss.kind = FaultKind::PermanentCrash;
  loss.afterArrivals = 1;
  loss.maxFires = 1;
  inj.arm("node:0", loss);

  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  opts.resilience.taskReplay = true;  // in-place replay must NOT catch a lost node
  runtime::PlanExecutor exec(w, plan, kPieces, opts);
  EXPECT_THROW(exec.run(), runtime::NodeLossError);
  EXPECT_EQ(exec.taskReplays(), 0u);
}

}  // namespace
}  // namespace dpart
