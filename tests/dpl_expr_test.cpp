#include "dpl/expr.hpp"

#include <gtest/gtest.h>

#include "dpl/program.hpp"

namespace dpart::dpl {
namespace {

TEST(Expr, PrintsPaperSyntax) {
  ExprPtr e = image(symbol("P1"), "h", "Cells");
  EXPECT_EQ(e->toString(), "image(P1, h, Cells)");
  EXPECT_EQ(preimage("R", "g", equalOf("S"))->toString(),
            "preimage(R, g, equal(S))");
  EXPECT_EQ(unionOf(symbol("A"), symbol("B"))->toString(), "(A u B)");
  EXPECT_EQ(subtractOf(symbol("A"), intersectOf(symbol("B"), symbol("C")))
                ->toString(),
            "(A - (B n C))");
}

TEST(Expr, StructuralEquality) {
  ExprPtr a = image(symbol("P"), "f", "R");
  ExprPtr b = image(symbol("P"), "f", "R");
  ExprPtr c = image(symbol("P"), "g", "R");
  EXPECT_TRUE(exprEq(a, b));
  EXPECT_FALSE(exprEq(a, c));
  EXPECT_FALSE(exprEq(a, symbol("P")));
  EXPECT_TRUE(exprEq(nullptr, nullptr));
  EXPECT_FALSE(exprEq(a, nullptr));
}

TEST(Expr, CollectSymbols) {
  ExprPtr e = unionOf(image(symbol("P1"), "f", "R"),
                      subtractOf(symbol("P2"), equalOf("R")));
  std::set<std::string> syms;
  e->collectSymbols(syms);
  EXPECT_EQ(syms, (std::set<std::string>{"P1", "P2"}));
}

TEST(Expr, ClosedUnder) {
  ExprPtr e = image(symbol("P1"), "f", "R");
  EXPECT_FALSE(e->closedUnder({"P1"}));
  EXPECT_TRUE(e->closedUnder({"P2"}));
  EXPECT_TRUE(equalOf("R")->closedUnder({"P1", "P2"}));
}

TEST(Expr, Substitute) {
  ExprPtr e = unionOf(symbol("P1"), image(symbol("P2"), "f", "R"));
  ExprPtr s = substitute(e, {{"P2", equalOf("R")}});
  EXPECT_EQ(s->toString(), "(P1 u image(equal(R), f, R))");
  // Identity substitution returns the same node (sharing preserved).
  EXPECT_EQ(substitute(e, {{"P9", equalOf("R")}}), e);
}

TEST(Expr, Depth) {
  EXPECT_EQ(symbol("P")->depth(), 0);
  EXPECT_EQ(equalOf("R")->depth(), 0);
  EXPECT_EQ(image(symbol("P"), "f", "R")->depth(), 1);
  EXPECT_EQ(subtractOf(image(symbol("P"), "f", "R"),
                       image(preimage("R", "f", symbol("Q")), "f", "R"))
                ->depth(),
            3);
}

TEST(Expr, UnionOfVector) {
  ExprPtr u = unionOf({symbol("A"), symbol("B"), symbol("C")});
  EXPECT_EQ(u->toString(), "((A u B) u C)");
  EXPECT_EQ(unionOf({symbol("X")})->toString(), "X");
}

TEST(Program, AppendAndPrint) {
  Program prog;
  prog.append("P1", equalOf("R"));
  prog.append("P2", image(symbol("P1"), "f", "S"));
  EXPECT_EQ(prog.toString(), "P1 = equal(R)\nP2 = image(P1, f, S)\n");
  EXPECT_EQ(prog.size(), 2u);
  EXPECT_EQ(prog.constructedPartitions(), 2u);
}

TEST(Program, CseAliasesRepeatedRhs) {
  // Paper Fig. 2b ends with P3 = P5 = image(P2, h, Cells): CSE turns the
  // second construction into an alias.
  Program prog;
  prog.append("P2", equalOf("Cells"));
  prog.append("P3", image(symbol("P2"), "h", "Cells"));
  prog.append("P5", image(symbol("P2"), "h", "Cells"));
  Program cse = prog.withCse();
  EXPECT_EQ(cse.stmts()[2].rhs->toString(), "P3");
  EXPECT_EQ(cse.constructedPartitions(), 2u);
}

TEST(Program, CseSeesThroughAliases) {
  Program prog;
  prog.append("P1", equalOf("R"));
  prog.append("P2", symbol("P1"));
  prog.append("P3", image(symbol("P2"), "f", "S"));
  prog.append("P4", image(symbol("P1"), "f", "S"));
  Program cse = prog.withCse();
  // P3's rhs normalizes to image(P1,...) so P4 aliases P3.
  EXPECT_EQ(cse.stmts()[3].rhs->toString(), "P3");
}

}  // namespace
}  // namespace dpart::dpl
