// Property tests for region::equalWeighted — the weighted counterpart of
// equal(R, n) the adaptive repartitioner substitutes for skewed loops. The
// operator must keep equal's structural guarantees (contiguous single-run
// pieces, disjoint, complete, no gratuitously empty pieces) for *every*
// weight vector, and balance piece weights within the documented
// prefix-sum bound. Cross-checked against the partition legality verifier,
// exactly as the executor does after a rebalance.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "region/dpl_ops.hpp"
#include "region/verify.hpp"

namespace dpart::region {
namespace {

double pieceWeight(const IndexSet& sub, const std::vector<double>& weights) {
  double total = 0;
  sub.forEach([&](Index i) {
    const double w = weights[static_cast<std::size_t>(i)];
    total += w > 0 ? w : 0.0;
  });
  return total;
}

void checkStructure(const World& world, const Partition& p,
                    std::size_t pieces) {
  const Index n = world.region(p.regionName()).size();
  ASSERT_EQ(p.count(), pieces);
  Index lo = 0;
  for (std::size_t j = 0; j < pieces; ++j) {
    const IndexSet& sub = p.sub(j);
    // Contiguous: each piece is a single interval...
    ASSERT_LE(sub.runs().size(), 1u) << "piece " << j << " is fragmented";
    if (!sub.runs().empty()) {
      // ...and the intervals tile [0, n) in order (disjoint + complete).
      EXPECT_EQ(sub.runs().front().lo, lo);
      lo = sub.runs().front().hi;
    }
    // No empty piece while indices remain.
    if (lo < n) {
      EXPECT_FALSE(sub.empty()) << "piece " << j << " empty with "
                                << (n - lo) << " indices remaining";
    }
  }
  EXPECT_EQ(lo, n) << "pieces do not cover the region";

  // The same facts through the verifier — the check every rebalance runs.
  PartitionExpectation e;
  e.partition = "W";
  e.region = p.regionName();
  e.pieces = pieces;
  e.disjoint = true;
  e.complete = true;
  std::map<std::string, Partition> env;
  env.emplace("W", p);
  const VerifyReport report = verifyPartitions(world, env, {e});
  EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(EqualWeighted, RandomizedPropertySweep) {
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> sizeDist(1, 400);
  std::uniform_int_distribution<int> pieceDist(1, 16);
  std::uniform_real_distribution<double> weightDist(0.0, 10.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  for (int iter = 0; iter < 200; ++iter) {
    const Index n = sizeDist(rng);
    const auto pieces = static_cast<std::size_t>(pieceDist(rng));
    World world;
    world.addRegion("R", n);

    std::vector<double> weights(static_cast<std::size_t>(n));
    double total = 0;
    double maxW = 0;
    for (double& w : weights) {
      w = weightDist(rng);
      if (coin(rng) < 0.15) w = 0.0;           // zero-weight stretches
      if (coin(rng) < 0.05) w = -w;            // negatives (clamped to 0)
      if (coin(rng) < 0.02) w = 500.0;         // spikes
      const double clamped = w > 0 ? w : 0.0;
      total += clamped;
      maxW = std::max(maxW, clamped);
    }

    const Partition p = equalWeighted(world, "R", weights, pieces);
    checkStructure(world, p, pieces);

    if (total <= 0) continue;
    const double ideal = total / static_cast<double>(pieces);
    double minPiece = total;
    double maxPiece = 0;
    for (std::size_t j = 0; j < pieces; ++j) {
      const double w = pieceWeight(p.sub(j), weights);
      minPiece = std::min(minPiece, w);
      maxPiece = std::max(maxPiece, w);
      // The documented prefix-sum balance bound.
      EXPECT_LE(w, ideal + 2 * maxW + 1e-9)
          << "piece " << j << " of " << pieces << " over " << n
          << " indices holds " << w << " (ideal " << ideal << ", max weight "
          << maxW << ")";
    }
    // Fine-grained weights (no index is a large fraction of a piece) keep
    // every cut within one weight of its target, bounding the max/min piece
    // weight ratio by (ideal + w_max) / (ideal - w_max) <= 5/3.
    if (maxW <= ideal / 4 && static_cast<Index>(pieces) <= n) {
      EXPECT_GE(minPiece, ideal - maxW - 1e-9);
      EXPECT_LE(maxPiece / minPiece, 5.0 / 3.0 + 1e-9);
    }
  }
}

TEST(EqualWeighted, AllZeroWeightsDegradeToEqual) {
  World world;
  world.addRegion("R", 17);
  const std::vector<double> zeros(17, 0.0);
  const Partition weighted = equalWeighted(world, "R", zeros, 4);
  const Partition plain = equalPartition(world, "R", 4);
  ASSERT_EQ(weighted.count(), plain.count());
  for (std::size_t j = 0; j < plain.count(); ++j) {
    EXPECT_TRUE(weighted.sub(j) == plain.sub(j)) << "piece " << j;
  }
}

TEST(EqualWeighted, SkewMovesTheCut) {
  World world;
  world.addRegion("R", 100);
  // First 10 indices are 9x the cost of the rest: a balanced 2-piece split
  // puts the cut right after the heavy prefix region.
  std::vector<double> weights(100, 1.0);
  for (std::size_t i = 0; i < 10; ++i) weights[i] = 9.0;
  const Partition p = equalWeighted(world, "R", weights, 2);
  // total = 90 + 90 = 180, half = 90: cut where prefix reaches 90.
  ASSERT_EQ(p.sub(0).runs().size(), 1u);
  EXPECT_EQ(p.sub(0).runs().front().hi, 10);
  EXPECT_EQ(static_cast<Index>(p.sub(1).size()), 90);
}

TEST(EqualWeighted, SpikeGetsItsOwnPiece) {
  World world;
  world.addRegion("R", 50);
  std::vector<double> weights(50, 1e-6);
  weights[20] = 1000.0;
  const Partition p = equalWeighted(world, "R", weights, 4);
  checkStructure(world, p, 4);
  // The spike dominates every cut target, so the piece holding index 20
  // carries almost the whole weight but the partition stays legal.
  bool found = false;
  for (std::size_t j = 0; j < 4; ++j) {
    if (p.sub(j).contains(20)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EqualWeighted, MorePiecesThanIndices) {
  World world;
  world.addRegion("R", 3);
  const std::vector<double> weights{5.0, 1.0, 1.0};
  const Partition p = equalWeighted(world, "R", weights, 8);
  checkStructure(world, p, 8);
  std::size_t nonEmpty = 0;
  for (std::size_t j = 0; j < 8; ++j) {
    if (!p.sub(j).empty()) ++nonEmpty;
  }
  EXPECT_EQ(nonEmpty, 3u);  // every index placed, trailing pieces empty
}

TEST(EqualWeighted, SinglePieceTakesEverything) {
  World world;
  world.addRegion("R", 12);
  const std::vector<double> weights(12, 2.5);
  const Partition p = equalWeighted(world, "R", weights, 1);
  ASSERT_EQ(p.count(), 1u);
  EXPECT_EQ(static_cast<Index>(p.sub(0).size()), 12);
}

TEST(EqualWeighted, WrongWeightCountThrows) {
  World world;
  world.addRegion("R", 10);
  const std::vector<double> weights(7, 1.0);
  EXPECT_THROW(static_cast<void>(equalWeighted(world, "R", weights, 2)),
               Error);
}

}  // namespace
}  // namespace dpart::region
