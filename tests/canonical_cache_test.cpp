// The canonical plan-cache key (constraint/canonical + parallelize/solve_cache):
//
//  - isomorphic programs — renamed regions / fields / fns / partitions,
//    reordered statements and loops — produce the same canonical hash and
//    rendering, and the second compile is served from the cache;
//  - structurally distinct programs produce different keys;
//  - a cache-served plan is bitwise-identical to a fresh solve, on a
//    hand-built program and on all five Fig. 14 apps.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "apps/circuit.hpp"
#include "apps/miniaero.hpp"
#include "apps/pennant.hpp"
#include "apps/spmv.hpp"
#include "apps/stencil.hpp"
#include "constraint/canonical.hpp"
#include "parallelize/parallelize.hpp"
#include "parallelize/solve_cache.hpp"

namespace dpart {
namespace {

using constraint::CanonicalForm;
using constraint::CanonicalLoop;
using constraint::NameMaps;
using constraint::System;
using parallelize::AutoParallelizer;
using parallelize::ParallelPlan;
using parallelize::SolveCache;

// Everything observable about a compiled plan except timings: the loop
// plans, the DPL program, the resolved system and the external symbols.
std::string fingerprint(const ParallelPlan& plan) {
  std::ostringstream os;
  os << plan.toString();
  os << "=== dpl ===\n" << plan.dpl.toString();
  os << "=== system ===\n" << plan.system.toString();
  os << "=== externals ===\n";
  for (const std::string& s : plan.externalSymbols) os << s << '\n';
  return os.str();
}

// ---------------------------------------------------------------------------
// canonicalize() unit behavior
// ---------------------------------------------------------------------------

TEST(Canonicalize, RenamedSystemsShareHashAndRendering) {
  System a;
  a.declareSymbol("P1", "Particles");
  a.declareSymbol("P2", "Cells");
  a.addDisj(dpl::symbol("P1"));
  a.addComp(dpl::symbol("P1"), "Particles");
  a.addSubset(dpl::image(dpl::symbol("P1"), "cell", "Cells"),
              dpl::symbol("P2"));

  System b;  // same shape, every name different, conjuncts reordered
  b.declareSymbol("Qc", "Boxes");
  b.declareSymbol("Qa", "Atoms");
  b.addSubset(dpl::image(dpl::symbol("Qa"), "box", "Boxes"),
              dpl::symbol("Qc"));
  b.addComp(dpl::symbol("Qa"), "Atoms");
  b.addDisj(dpl::symbol("Qa"));

  CanonicalForm fa = constraint::canonicalize(
      {CanonicalLoop{&a, false, {}}}, {}, {}, 0);
  CanonicalForm fb = constraint::canonicalize(
      {CanonicalLoop{&b, false, {}}}, {}, {}, 0);
  EXPECT_EQ(fa.hash, fb.hash);
  EXPECT_EQ(fa.rendering, fb.rendering);
  // The two labelings map corresponding symbols to the same canonical name.
  EXPECT_EQ(fa.toCanonical.symbol("P1"), fb.toCanonical.symbol("Qa"));
  EXPECT_EQ(fa.toCanonical.symbol("P2"), fb.toCanonical.symbol("Qc"));
  EXPECT_EQ(fa.toCanonical.region("Particles"), fb.toCanonical.region("Atoms"));
  EXPECT_EQ(fa.toCanonical.fn("cell"), fb.toCanonical.fn("box"));
}

TEST(Canonicalize, StructurallyDistinctSystemsDiffer) {
  System a;
  a.declareSymbol("P1", "R");
  a.addDisj(dpl::symbol("P1"));

  System b;
  b.declareSymbol("P1", "R");
  b.addComp(dpl::symbol("P1"), "R");  // COMP instead of DISJ

  CanonicalForm fa =
      constraint::canonicalize({CanonicalLoop{&a, false, {}}}, {}, {}, 0);
  CanonicalForm fb =
      constraint::canonicalize({CanonicalLoop{&b, false, {}}}, {}, {}, 0);
  EXPECT_NE(fa.rendering, fb.rendering);
  EXPECT_NE(fa.hash, fb.hash);
}

TEST(Canonicalize, LoopAttributesArePartOfTheKey) {
  System a;
  a.declareSymbol("P1", "R");
  CanonicalForm plain =
      constraint::canonicalize({CanonicalLoop{&a, false, {}}}, {}, {}, 0);
  CanonicalForm relaxed =
      constraint::canonicalize({CanonicalLoop{&a, true, {}}}, {}, {}, 0);
  CanonicalForm reducing =
      constraint::canonicalize({CanonicalLoop{&a, false, {"P1"}}}, {}, {}, 0);
  CanonicalForm options =
      constraint::canonicalize({CanonicalLoop{&a, false, {}}}, {}, {}, 7);
  EXPECT_NE(plain.hash, relaxed.hash);
  EXPECT_NE(plain.hash, reducing.hash);
  EXPECT_NE(plain.hash, options.hash);
}

TEST(Canonicalize, SymmetricSymbolsGetDistinctCanonicalNames) {
  // Two fully interchangeable symbols: refinement alone cannot split them,
  // so individualization must — and both orderings canonicalize identically.
  System a;
  a.declareSymbol("P1", "R");
  a.declareSymbol("P2", "R");
  a.addDisj(dpl::symbol("P1"));
  a.addDisj(dpl::symbol("P2"));

  System b;
  b.declareSymbol("Q9", "S");
  b.declareSymbol("Q0", "S");
  b.addDisj(dpl::symbol("Q0"));
  b.addDisj(dpl::symbol("Q9"));

  CanonicalForm fa =
      constraint::canonicalize({CanonicalLoop{&a, false, {}}}, {}, {}, 0);
  CanonicalForm fb =
      constraint::canonicalize({CanonicalLoop{&b, false, {}}}, {}, {}, 0);
  EXPECT_EQ(fa.hash, fb.hash);
  EXPECT_EQ(fa.rendering, fb.rendering);
  EXPECT_NE(fa.toCanonical.symbol("P1"), fa.toCanonical.symbol("P2"));
}

TEST(NameMapsTest, MapExprAndInvertRoundTrip) {
  NameMaps m;
  m.symbols = {{"P1", "s0"}};
  m.regions = {{"R", "r0"}, {"S", "r1"}};
  m.fns = {{"f", "f0"}};
  dpl::ExprPtr e = dpl::unionOf(
      dpl::image(dpl::symbol("P1"), "f", "S"),
      dpl::preimage("R", "f", dpl::equalOf("S")));
  dpl::ExprPtr mapped = constraint::mapExpr(e, m);
  EXPECT_EQ(mapped->toString(),
            "(image(s0, f0, r1) u preimage(r0, f0, equal(r1)))");
  dpl::ExprPtr back = constraint::mapExpr(mapped, m.inverted());
  EXPECT_TRUE(dpl::exprEq(e, back));
  // f_ID passes through unrenamed.
  dpl::ExprPtr id = dpl::image(dpl::symbol("P1"), "f_ID", "R");
  EXPECT_EQ(constraint::mapExpr(id, m)->toString(), "image(s0, f_ID, r0)");
}

// ---------------------------------------------------------------------------
// End-to-end: isomorphic programs share one solve
// ---------------------------------------------------------------------------

// The quickstart particles/cells world under arbitrary names, with the
// independent statements of the first loop optionally reordered.
struct Names {
  std::string particles, cells, cellField, pos, vel, acc, h;
};

void buildWorld(region::World& world, const Names& n) {
  constexpr region::Index kParticles = 100;
  constexpr region::Index kCells = 10;
  auto& particles = world.addRegion(n.particles, kParticles);
  auto& cells = world.addRegion(n.cells, kCells);
  particles.addField(n.cellField, region::FieldType::Idx);
  particles.addField(n.pos, region::FieldType::F64);
  cells.addField(n.vel, region::FieldType::F64);
  cells.addField(n.acc, region::FieldType::F64);
  auto cell = particles.idx(n.cellField);
  for (region::Index p = 0; p < kParticles; ++p) {
    cell[static_cast<std::size_t>(p)] = p % kCells;
  }
  world.defineFieldFn(n.particles, n.cellField, n.cells);
  world.defineAffineFn(n.h, n.cells, n.cells,
                       [](region::Index c) { return (c + 1) % 10; });
}

// With `reordered`, the two field loads through `c` swap (fields do not
// appear in constraint systems, and both loads chain through the same
// rebound variable, so the inferred systems are isomorphic) and the two
// loops swap program order. Note that NOT every statement reorder preserves
// the key: Algorithm 1's access rebinding is order-sensitive, so moving an
// access before the one it chains through changes the constraint structure
// itself — such programs genuinely need their own solve.
ir::Program figureProgram(const Names& n, bool reordered) {
  ir::Program prog;
  prog.name = "figure1";
  ir::Loop particlesLoop, cellsLoop;
  {
    ir::LoopBuilder b("update_particles", "p", n.particles);
    b.loadIdx("c", n.particles, n.cellField, "p");
    if (reordered) {
      b.loadF64("v2", n.cells, n.acc, "c");
      b.loadF64("v1", n.cells, n.vel, "c");
    } else {
      b.loadF64("v1", n.cells, n.vel, "c");
      b.loadF64("v2", n.cells, n.acc, "c");
    }
    b.compute("dp", {"v1", "v2"},
              [](auto v) { return 0.5 * v[0] + 0.25 * v[1]; });
    b.reduce(n.particles, n.pos, "p", "dp");
    particlesLoop = b.build();
  }
  {
    ir::LoopBuilder b("update_cells", "c", n.cells);
    b.loadF64("a1", n.cells, n.acc, "c");
    b.apply("c2", n.h, "c");
    b.loadF64("a2", n.cells, n.acc, "c2");
    b.compute("dv", {"a1", "a2"},
              [](auto v) { return v[0] + 0.5 * v[1]; });
    b.reduce(n.cells, n.vel, "c", "dv");
    cellsLoop = b.build();
  }
  if (reordered) {
    prog.loops.push_back(std::move(cellsLoop));
    prog.loops.push_back(std::move(particlesLoop));
  } else {
    prog.loops.push_back(std::move(particlesLoop));
    prog.loops.push_back(std::move(cellsLoop));
  }
  return prog;
}

const Names kNamesA{"Particles", "Cells", "cell", "pos", "vel", "acc", "h"};
const Names kNamesB{"Atoms", "Boxes", "box", "q", "w", "a", "nbr"};

TEST(SolveCacheTest, IsomorphicProgramsCollideAndShareOneSolve) {
  SolveCache cache;
  parallelize::Options opts;
  opts.solveCache = &cache;

  region::World worldA;
  buildWorld(worldA, kNamesA);
  AutoParallelizer apA(worldA, opts);
  ParallelPlan planA = apA.plan(figureProgram(kNamesA, false));
  EXPECT_FALSE(planA.stats.cacheHit);

  // Renamed everything + reordered statements: same canonical key, served
  // from the cache.
  region::World worldB;
  buildWorld(worldB, kNamesB);
  AutoParallelizer apB(worldB, opts);
  ParallelPlan planB = apB.plan(figureProgram(kNamesB, true));
  EXPECT_EQ(planA.stats.cacheKey, planB.stats.cacheKey);
  EXPECT_TRUE(planB.stats.cacheHit);

  // The cache-served plan matches a fresh solve of the renamed program up
  // to DPL statement order: the cached entry replays the first program's
  // assignment order, the fresh solve assigns in this program's loop order.
  // (Exact bitwise identity holds when the *same* program is resubmitted —
  // see the Fig. 14 cases below.)
  AutoParallelizer apFresh(worldB);
  ParallelPlan planFresh = apFresh.plan(figureProgram(kNamesB, true));
  EXPECT_FALSE(planFresh.stats.cacheHit);
  auto sortedLines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);) lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sortedLines(fingerprint(planB)), sortedLines(fingerprint(planFresh)));

  SolveCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.renderingConflicts, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SolveCacheTest, StructurallyDistinctProgramsDoNotCollide) {
  SolveCache cache;
  parallelize::Options opts;
  opts.solveCache = &cache;

  region::World worldA;
  buildWorld(worldA, kNamesA);
  AutoParallelizer apA(worldA, opts);
  ParallelPlan planA = apA.plan(figureProgram(kNamesA, false));

  // Same world, structurally different program: the second loop reads vel
  // through the neighbor map instead of reducing into it.
  region::World worldC;
  buildWorld(worldC, kNamesA);
  ir::Program prog = figureProgram(kNamesA, false);
  {
    ir::LoopBuilder b("smooth", "c", "Cells");
    b.loadF64("a1", "Cells", "acc", "c");
    b.compute("dv", {"a1"}, [](auto v) { return v[0]; });
    b.reduce("Cells", "vel", "c", "dv");
    prog.loops[1] = b.build();
  }
  AutoParallelizer apC(worldC, opts);
  ParallelPlan planC = apC.plan(prog);
  EXPECT_NE(planA.stats.cacheKey, planC.stats.cacheKey);
  EXPECT_FALSE(planC.stats.cacheHit);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SolveCacheTest, OptionsArePartOfTheKey) {
  SolveCache cache;
  parallelize::Options opts;
  opts.solveCache = &cache;

  region::World world;
  buildWorld(world, kNamesA);
  AutoParallelizer ap(world, opts);
  ParallelPlan p1 = ap.plan(figureProgram(kNamesA, false));

  parallelize::Options noUnify = opts;
  noUnify.enableUnification = false;
  AutoParallelizer ap2(world, noUnify);
  ParallelPlan p2 = ap2.plan(figureProgram(kNamesA, false));
  EXPECT_NE(p1.stats.cacheKey, p2.stats.cacheKey);
  EXPECT_FALSE(p2.stats.cacheHit);
}

TEST(SolveCacheTest, LruEvictionBoundsEntries) {
  SolveCache cache(1);
  parallelize::Options opts;
  opts.solveCache = &cache;

  region::World world;
  buildWorld(world, kNamesA);
  AutoParallelizer ap(world, opts);
  (void)ap.plan(figureProgram(kNamesA, false));

  parallelize::Options noRelax = opts;
  noRelax.enableRelaxation = false;
  AutoParallelizer ap2(world, noRelax);
  (void)ap2.plan(figureProgram(kNamesA, false));
  EXPECT_EQ(cache.stats().entries, 1u);

  // First entry was evicted: compiling the original again misses.
  ParallelPlan p3 = ap.plan(figureProgram(kNamesA, false));
  EXPECT_FALSE(p3.stats.cacheHit);
}

// ---------------------------------------------------------------------------
// All five Fig. 14 apps: cache-served == fresh, bit for bit
// ---------------------------------------------------------------------------

void expectCachedPlanIdentical(region::World& world,
                               const ir::Program& program) {
  SolveCache cache;
  parallelize::Options opts;
  opts.solveCache = &cache;

  AutoParallelizer cold(world, opts);
  ParallelPlan fresh = cold.plan(program);
  EXPECT_FALSE(fresh.stats.cacheHit);

  AutoParallelizer warm(world, opts);
  ParallelPlan served = warm.plan(program);
  ASSERT_TRUE(served.stats.cacheHit);
  EXPECT_EQ(served.stats.cacheKey, fresh.stats.cacheKey);
  EXPECT_EQ(fingerprint(served), fingerprint(fresh));
}

TEST(SolveCacheFig14, Spmv) {
  apps::SpmvApp app({.rowsPerPiece = 64, .nnzPerRow = 3, .pieces = 4});
  expectCachedPlanIdentical(app.world(), app.program());
}

TEST(SolveCacheFig14, Stencil) {
  apps::StencilApp app({.rowsPerPiece = 8, .cols = 8, .pieces = 4});
  expectCachedPlanIdentical(app.world(), app.program());
}

TEST(SolveCacheFig14, MiniAero) {
  apps::MiniAeroApp app({.nx = 4, .ny = 4, .nzPerPiece = 4, .pieces = 4});
  expectCachedPlanIdentical(app.world(), app.program());
}

TEST(SolveCacheFig14, Circuit) {
  apps::CircuitApp app({.pieces = 4, .nodesPerCluster = 32,
                        .wiresPerCluster = 64});
  expectCachedPlanIdentical(app.world(), app.program());
}

TEST(SolveCacheFig14, Pennant) {
  apps::PennantApp app({.zx = 4, .zyPerPiece = 4, .pieces = 4});
  expectCachedPlanIdentical(app.world(), app.program());
}

}  // namespace
}  // namespace dpart
