#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <thread>
#include <vector>

#include "support/check.hpp"
#include "support/json.hpp"

// Global allocation counter for the overhead-guard test: every path through
// operator new bumps it, so "tracing disabled allocates nothing" is checked
// directly rather than inferred from timings.
namespace {
std::atomic<std::uint64_t> gAllocs{0};
}  // namespace

// GCC cannot see that the replaced operator new hands malloc-compatible
// pointers to the replaced operator delete below.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  gAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  gAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dpart {
namespace {

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.beginSpan("t", "never"), 0u);
  tracer.instant("t", "never");
  tracer.counter("never", 1);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Trace, SpansNestAndBalance) {
  Tracer tracer;
  tracer.enable();
  {
    TraceSpan outer(&tracer, "test", "outer");
    ASSERT_TRUE(outer.active());
    {
      TraceSpan inner(&tracer, "test", "inner");
      EXPECT_NE(inner.id(), outer.id());
      EXPECT_EQ(currentTraceSpanId(), inner.id());
    }
    EXPECT_EQ(currentTraceSpanId(), outer.id());
  }
  EXPECT_EQ(currentTraceSpanId(), 0u);

  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::Begin);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  // End names are backfilled from the matching Begin at export time.
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::End);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[3].name, "outer");
  // seq is chronological.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
}

TEST(Trace, EndIsIdempotentAndAnnotateLandsOnEndEvent) {
  Tracer tracer;
  tracer.enable();
  TraceSpan span(&tracer, "test", "work");
  span.annotate("\"elements\":42");
  span.end();
  span.end();  // second end must be a no-op
  EXPECT_FALSE(span.active());

  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::End);
  EXPECT_EQ(events[1].args, "\"elements\":42");
}

TEST(Trace, ChromeJsonSchema) {
  Tracer tracer;
  tracer.enable();
  {
    TraceSpan span(&tracer, "compile", "phase.solve", "\"vars\":3");
    tracer.instant("executor", "task.replay", "\"site\":\"task:x:1\"");
    tracer.counter("pieces", 8);
  }

  const json::Value doc = json::parse(tracer.toChromeJson());
  ASSERT_TRUE(doc.isObject());
  const json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.isArray());
  ASSERT_EQ(events.items.size(), 4u);  // B, i, C, E
  for (const json::Value& e : events.items) {
    ASSERT_TRUE(e.isObject());
    EXPECT_TRUE(e.at("ph").isString());
    EXPECT_TRUE(e.at("ts").isNumber());
    EXPECT_TRUE(e.at("pid").isNumber());
    EXPECT_TRUE(e.at("tid").isNumber());
    EXPECT_TRUE(e.at("cat").isString());
  }
  EXPECT_EQ(events.items[0].at("ph").str, "B");
  EXPECT_EQ(events.items[0].at("name").str, "phase.solve");
  EXPECT_EQ(events.items[0].at("args").at("vars").number, 3);
  EXPECT_EQ(events.items[1].at("ph").str, "i");
  EXPECT_EQ(events.items[2].at("ph").str, "C");
  EXPECT_EQ(events.items[3].at("ph").str, "E");
}

TEST(Trace, OverflowDropsButExportStaysBalanced) {
  Tracer tracer(/*capacity=*/4);
  tracer.enable();
  const std::uint64_t outer = tracer.beginSpan("t", "outer");
  const std::uint64_t inner = tracer.beginSpan("t", "inner");
  for (int i = 0; i < 16; ++i) tracer.instant("t", "filler");
  tracer.endSpan(inner);  // dropped: ring is full
  tracer.endSpan(outer);  // dropped: ring is full
  EXPECT_GT(tracer.droppedEvents(), 0u);

  // The exporter synthesizes the missing Ends, so per-thread B/E balance.
  int depth = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (e.phase == TraceEvent::Phase::Begin) ++depth;
    if (e.phase == TraceEvent::Phase::End) --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NO_THROW(json::parse(tracer.toChromeJson()));
}

TEST(Trace, SpanTotalsReconstructPhaseBreakdown) {
  Tracer tracer;
  tracer.enable();
  for (int i = 0; i < 3; ++i) {
    TraceSpan span(&tracer, "compile", "phase.infer");
  }
  { TraceSpan span(&tracer, "compile", "phase.solve"); }
  const std::map<std::string, double> totals = tracer.spanTotalsMs();
  ASSERT_TRUE(totals.contains("phase.infer"));
  ASSERT_TRUE(totals.contains("phase.solve"));
  EXPECT_GE(totals.at("phase.infer"), 0.0);
}

TEST(Trace, ThreadedRecordingKeepsPerThreadBalance) {
  Tracer tracer;
  tracer.enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < 64; ++i) {
        TraceSpan span(&tracer, "test", "worker" + std::to_string(t));
        tracer.instant("test", "tick");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::map<std::uint32_t, int> depth;
  for (const TraceEvent& e : tracer.events()) {
    if (e.phase == TraceEvent::Phase::Begin) ++depth[e.tid];
    if (e.phase == TraceEvent::Phase::End) {
      --depth[e.tid];
      EXPECT_GE(depth[e.tid], 0);
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST(Trace, WriteChromeTraceRoundTripsThroughAFile) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "dpart_trace_test.json";
  Tracer tracer;
  tracer.enable();
  { TraceSpan span(&tracer, "test", "file \"quoted\"\nname"); }
  tracer.writeChromeTrace(path.string());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const json::Value doc = json::parse(text);
  EXPECT_EQ(doc.at("traceEvents").items[0].at("name").str,
            "file \"quoted\"\nname");
  std::filesystem::remove(path);
}

// The overhead guard of the API redesign: with tracing disabled (null or
// disabled tracer), DPART_TRACE_SPAN must not allocate — the name expression
// is never evaluated and the span object stays empty.
TEST(Trace, DisabledSpanMacroDoesNotAllocate) {
  Tracer tracer;  // never enabled
  const std::string component = "a long component name defeating SSO";

  auto hotPath = [&](Tracer* t) {
    for (int i = 0; i < 1000; ++i) {
      DPART_TRACE_SPAN(t, "hot",
                       component + ".op" + std::to_string(i));  // deferred
    }
  };

  hotPath(nullptr);  // warm up lazy runtime allocations
  const std::uint64_t before = gAllocs.load(std::memory_order_relaxed);
  hotPath(nullptr);
  hotPath(&tracer);
  const std::uint64_t after = gAllocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);

  // Sanity: the same loop with the tracer enabled does evaluate names.
  tracer.enable();
  hotPath(&tracer);
  EXPECT_GT(gAllocs.load(std::memory_order_relaxed), after);
  EXPECT_GT(tracer.size(), 0u);
}

TEST(Trace, ErrorContextCapturesTheOpenSpan) {
  Tracer tracer;
  tracer.enable();
  TraceSpan span(&tracer, "test", "failing.phase");
  ASSERT_NE(span.id(), 0u);
  // ErrorContext's spanId defaults to the innermost open span, so every
  // taxonomy error thrown under a span can be located on the timeline.
  ErrorContext ctx;
  ctx.site = "task:x:1";
  const TaskFailure err("task died", ctx);
  const std::string what = err.what();
  EXPECT_NE(what.find("span=" + std::to_string(span.id())), std::string::npos)
      << what;
  EXPECT_EQ(err.context().spanId, span.id());

  span.end();
  const TaskFailure bare("task died", ErrorContext{});
  EXPECT_EQ(bare.context().spanId, 0u);
}

}  // namespace
}  // namespace dpart
