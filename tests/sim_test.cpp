#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apps/spmv.hpp"
#include "apps/stencil.hpp"

namespace dpart::sim {
namespace {

TEST(DepthsOf, CumulativeThroughReferences) {
  dpl::Program prog;
  prog.append("A", dpl::equalOf("R"));
  prog.append("B", dpl::image(dpl::symbol("A"), "f", "S"));
  prog.append("C", dpl::subtractOf(dpl::image(dpl::symbol("B"), "g", "T"),
                                   dpl::symbol("B")));
  prog.append("D", dpl::symbol("C"));
  auto d = ClusterSim::depthsOf(prog);
  EXPECT_EQ(d.at("A"), 0);
  EXPECT_EQ(d.at("B"), 1);
  EXPECT_EQ(d.at("C"), 3);  // 1 (B) + expr depth 2
  EXPECT_EQ(d.at("D"), 3);  // alias inherits its target's depth
}

TEST(ClusterSim, SpmvHasNoYGhosts) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 64;
  p.pieces = 4;
  apps::SpmvApp app(p);
  apps::SimSetup setup = app.autoSetup();
  ClusterSim sim(app.world(), MachineConfig{});
  for (const auto& [r, o] : setup.owners) sim.setOwner(r, o);
  auto depths = ClusterSim::depthsOf(setup.plan.dpl);
  auto res = sim.simulateLoop(setup.plan.loops[0], setup.partitions, depths);
  // Only the X vector band overlap leaks off-node: tiny ghost volume.
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_LT(res.totalGhostElems, app.rows() / 4);
  EXPECT_EQ(res.totalBufferedElems, 0);
}

TEST(ClusterSim, StencilGhostRowsMatchTopology) {
  apps::StencilApp::Params p;
  p.rowsPerPiece = 16;
  p.cols = 32;
  p.pieces = 4;
  apps::StencilApp app(p);
  apps::SimSetup setup = app.autoSetup();
  ClusterSim sim(app.world(), MachineConfig{});
  for (const auto& [r, o] : setup.owners) sim.setOwner(r, o);
  auto depths = ClusterSim::depthsOf(setup.plan.dpl);
  auto res = sim.simulateLoop(setup.plan.loops[0], setup.partitions, depths);
  // Per direction the +/-1 and +/-2 image partitions move 1 and 2 ghost
  // rows respectively (3 per direction): interior pieces 6 rows, edge
  // pieces 3. Total = (2 x 6 + 2 x 3) rows.
  EXPECT_EQ(res.totalGhostElems, (2 * 6 + 2 * 3) * p.cols);
  // The add_back loop is all-centered: zero communication.
  auto res2 = sim.simulateLoop(setup.plan.loops[1], setup.partitions, depths);
  EXPECT_EQ(res2.totalGhostElems, 0);
  EXPECT_EQ(res2.worst.messages, 0);
}

TEST(ClusterSim, StepTimeIsSumOfLoops) {
  apps::StencilApp::Params p;
  p.rowsPerPiece = 8;
  p.cols = 16;
  p.pieces = 2;
  apps::StencilApp app(p);
  apps::SimSetup setup = app.autoSetup();
  ClusterSim sim(app.world(), MachineConfig{});
  for (const auto& [r, o] : setup.owners) sim.setOwner(r, o);
  auto depths = ClusterSim::depthsOf(setup.plan.dpl);
  double sum = 0;
  for (const auto& pl : setup.plan.loops) {
    sum += sim.simulateLoop(pl, setup.partitions, depths).seconds;
  }
  EXPECT_DOUBLE_EQ(sim.simulateStep(setup.plan, setup.partitions), sum);
}

TEST(ClusterSimResilience, ZeroMtbfDisablesTheFailureModel) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 64;
  p.pieces = 4;
  apps::SpmvApp app(p);
  apps::SimSetup setup = app.autoSetup();
  ClusterSim sim(app.world(), MachineConfig{});  // nodeMtbfSeconds = 0
  for (const auto& [r, o] : setup.owners) sim.setOwner(r, o);
  StepSimResult step =
      sim.simulateStepResilient(setup.plan, setup.partitions);
  EXPECT_DOUBLE_EQ(step.resilientSeconds, step.seconds);
  EXPECT_EQ(step.expectedFailures, 0.0);
  EXPECT_DOUBLE_EQ(sim.simulateStep(setup.plan, setup.partitions),
                   step.seconds);
}

TEST(ClusterSimResilience, MtbfChargesSnapshotAndReplayOverhead) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 64;
  p.pieces = 4;
  apps::SpmvApp app(p);
  apps::SimSetup setup = app.autoSetup();

  MachineConfig faulty;
  faulty.nodeMtbfSeconds = 1.0;  // absurdly failure-heavy, for visibility
  ClusterSim sim(app.world(), faulty);
  for (const auto& [r, o] : setup.owners) sim.setOwner(r, o);
  StepSimResult step =
      sim.simulateStepResilient(setup.plan, setup.partitions);
  EXPECT_GT(step.resilientSeconds, step.seconds);
  EXPECT_GT(step.expectedFailures, 0.0);

  // Per-loop: the snapshotted write footprint (SpMV stores y centered) is
  // what the recovery term is priced from.
  auto depths = ClusterSim::depthsOf(setup.plan.dpl);
  LoopSimResult r =
      sim.simulateLoop(setup.plan.loops[0], setup.partitions, depths);
  EXPECT_GT(r.totalFootprintElems, 0);
  EXPECT_GT(r.resilientSeconds, r.seconds);

  // Shrinking the MTBF strictly raises the expected-replay overhead.
  MachineConfig worse = faulty;
  worse.nodeMtbfSeconds = 0.1;
  ClusterSim simWorse(app.world(), worse);
  for (const auto& [r2, o] : setup.owners) simWorse.setOwner(r2, o);
  StepSimResult stepWorse =
      simWorse.simulateStepResilient(setup.plan, setup.partitions);
  EXPECT_GT(stepWorse.resilientSeconds, step.resilientSeconds);
  EXPECT_GT(stepWorse.expectedFailures, step.expectedFailures);
  EXPECT_DOUBLE_EQ(stepWorse.seconds, step.seconds);  // fault-free unchanged
}

TEST(CheckpointCost, ZeroMtbfMeansZeroWaste) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 64;
  p.pieces = 4;
  apps::SpmvApp app(p);
  ClusterSim sim(app.world(), MachineConfig{});  // nodeMtbfSeconds = 0
  CheckpointCost cc = sim.checkpointCost(4, 2.0);
  EXPECT_EQ(cc.wasteFraction, 0.0);
  EXPECT_DOUBLE_EQ(cc.checkpointedSeconds, 2.0);
}

TEST(CheckpointCost, YoungDalyIntervalAndWaste) {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 64;
  p.pieces = 4;
  apps::SpmvApp app(p);

  MachineConfig faulty;
  faulty.nodeMtbfSeconds = 86400;
  ClusterSim sim(app.world(), faulty);
  const int nodes = 4;
  CheckpointCost cc = sim.checkpointCost(nodes, 2.0);

  EXPECT_GT(cc.stateBytesPerNode, 0.0);
  EXPECT_GT(cc.checkpointSeconds, 0.0);
  // tau = sqrt(2 * delta * M) with M the whole-system MTBF.
  const double mtbf = faulty.nodeMtbfSeconds / nodes;
  EXPECT_DOUBLE_EQ(cc.systemMtbfSeconds, mtbf);
  EXPECT_DOUBLE_EQ(cc.intervalSeconds,
                   std::sqrt(2.0 * cc.checkpointSeconds * mtbf));
  EXPECT_GT(cc.wasteFraction, 0.0);
  EXPECT_DOUBLE_EQ(cc.checkpointedSeconds, 2.0 * (1.0 + cc.wasteFraction));

  // Less reliable machine -> shorter optimal interval, more waste.
  MachineConfig worse = faulty;
  worse.nodeMtbfSeconds = 8640;
  ClusterSim simWorse(app.world(), worse);
  CheckpointCost worseCc = simWorse.checkpointCost(nodes, 2.0);
  EXPECT_LT(worseCc.intervalSeconds, cc.intervalSeconds);
  EXPECT_GT(worseCc.wasteFraction, cc.wasteFraction);
}

TEST(CheckpointCost, SpmvScaleOverheadStaysUnderFifteenPercent) {
  // The fig14a acceptance bound: Young/Daly checkpointing of the SpMV
  // working set at 256 nodes with one failure per node-day costs < 15%.
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 16384;
  p.nnzPerRow = 5;
  p.pieces = 256;
  apps::SpmvApp app(p);
  apps::SimSetup setup = app.autoSetup();

  MachineConfig faulty;
  faulty.nodeMtbfSeconds = 86400;
  ClusterSim sim(app.world(), faulty);
  for (const auto& [r, o] : setup.owners) sim.setOwner(r, o);
  const double step = sim.simulateStep(setup.plan, setup.partitions);
  CheckpointCost cc = sim.checkpointCost(256, step);
  EXPECT_GT(cc.wasteFraction, 0.0);
  EXPECT_LT(cc.wasteFraction, 0.15);
}

}  // namespace
}  // namespace dpart::sim
