// Partitioning-as-a-service: PlanServer/PlanClient over the DPMG framing,
// the shape-only wire protocol, the cross-tenant plan cache, per-tenant
// metrics isolation, and the stable error taxonomy crossing the wire.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ir/ir.hpp"
#include "runtime/session.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace dpart::service {
namespace {

constexpr region::Index kParticles = 400;
constexpr region::Index kCells = 40;

void buildWorld(region::World& world) {
  auto& particles = world.addRegion("Particles", kParticles);
  auto& cells = world.addRegion("Cells", kCells);
  particles.addField("cell", region::FieldType::Idx);
  particles.addField("pos", region::FieldType::F64);
  cells.addField("vel", region::FieldType::F64);
  world.defineFieldFn("Particles", "cell", "Cells");
}

ir::Program makeProgram(const std::string& name = "service_test") {
  ir::Program prog;
  prog.name = name;
  ir::LoopBuilder b("update", "p", "Particles");
  b.loadIdx("c", "Particles", "cell", "p");
  b.loadF64("v", "Cells", "vel", "c");
  b.compute("dp", {"v"}, [](auto v) { return 2.0 * v[0]; });
  b.reduce("Particles", "pos", "p", "dp");
  prog.loops.push_back(b.build());
  return prog;
}

/// Same structure as makeProgram under renamed regions/fields/symbols — the
/// isomorphic cross-tenant program that must hit the shared plan cache.
void buildRenamedWorld(region::World& world) {
  auto& atoms = world.addRegion("Atoms", kParticles);
  auto& bins = world.addRegion("Bins", kCells);
  atoms.addField("bin", region::FieldType::Idx);
  atoms.addField("x", region::FieldType::F64);
  bins.addField("force", region::FieldType::F64);
  world.defineFieldFn("Atoms", "bin", "Bins");
}

ir::Program makeRenamedProgram() {
  ir::Program prog;
  prog.name = "renamed";
  ir::LoopBuilder b("step", "a", "Atoms");
  b.loadIdx("k", "Atoms", "bin", "a");
  b.loadF64("f", "Bins", "force", "k");
  b.compute("dx", {"f"}, [](auto f) { return f[0]; });
  b.reduce("Atoms", "x", "a", "dx");
  prog.loops.push_back(b.build());
  return prog;
}

PlanRequest makeRequest(const std::string& tenant, region::World& world,
                        const ir::Program& prog, std::uint64_t pieces = 4) {
  PlanRequest req;
  req.tenant = tenant;
  req.pieces = pieces;
  req.world = WorldShape::describe(world);
  req.program = prog;
  return req;
}

/// Starts a loopback-TCP server with sensible test options.
struct ServerFixture {
  explicit ServerFixture(ServerOptions opts = {}) : server(tuned(opts)) {
    server.start();
  }
  static ServerOptions tuned(ServerOptions opts) {
    if (opts.recvTimeoutMicros == 5'000'000) {
      opts.recvTimeoutMicros = 10'000'000;
    }
    return opts;
  }
  PlanServer server;
};

TEST(ServiceProtocol, RequestSurvivesTheWire) {
  region::World world;
  buildWorld(world);
  PlanRequest req = makeRequest("acme", world, makeProgram());
  req.enableRelaxation = false;
  req.enableUnification = false;

  const std::vector<std::uint8_t> bytes = encodeRequest(req);
  BinaryReader r(bytes);
  const PlanRequest got = decodeRequest(r);

  EXPECT_EQ(got.tenant, "acme");
  EXPECT_EQ(got.pieces, 4u);
  EXPECT_FALSE(got.enableRelaxation);
  EXPECT_TRUE(got.enableDisjointReduction);
  EXPECT_FALSE(got.enableUnification);
  ASSERT_EQ(got.world.regions.size(), 2u);
  const RegionShape* particles = nullptr;
  for (const RegionShape& rs : got.world.regions) {
    if (rs.name == "Particles") particles = &rs;
  }
  ASSERT_NE(particles, nullptr);
  EXPECT_EQ(particles->size, kParticles);
  EXPECT_EQ(particles->fields.size(), 2u);
  ASSERT_EQ(got.world.fns.size(), 1u);
  ASSERT_EQ(got.program.loops.size(), 1u);
  EXPECT_EQ(got.program.loops[0].name, "update");
  EXPECT_EQ(got.program.loops[0].body.size(),
            req.program.loops[0].body.size());
}

TEST(ServiceProtocol, MaterializedShapeCompilesLikeTheOriginal) {
  region::World world;
  buildWorld(world);
  const ir::Program prog = makeProgram();
  const Plan local = Session::parallelize(prog).pieces(4).compile(world);

  // describe -> encode -> decode -> materialize, then compile the decoded
  // program (placeholder closures) against the placeholder world: the
  // symbolic pipeline must produce the identical plan and cache key.
  PlanRequest req = makeRequest("", world, prog);
  const std::vector<std::uint8_t> bytes = encodeRequest(req);
  BinaryReader r(bytes);
  const PlanRequest got = decodeRequest(r);
  region::World shaped = got.world.materialize(region::Index(1) << 20);
  const Plan remote =
      Session::parallelize(got.program).pieces(4).compile(shaped);

  EXPECT_EQ(local.cacheKey(), remote.cacheKey());
  EXPECT_EQ(local.parallelPlan().dpl.toString(),
            remote.parallelPlan().dpl.toString());
}

TEST(ServiceProtocol, VocabularySurvivesTheWire) {
  region::World world;
  buildWorld(world);
  PlanRequest req = makeRequest("acme", world, makeProgram());
  req.vocab.capacities.push_back({"Cells", 12});
  req.vocab.affinities.push_back({"Cells.vel", "Particles.pos", true});
  req.vocab.affinities.push_back({"Cells.vel", "Cells.vel", false});
  req.vocab.replications.push_back({"Cells", 0.5, 3.0});

  const std::vector<std::uint8_t> bytes = encodeRequest(req);
  BinaryReader r(bytes);
  const PlanRequest got = decodeRequest(r);

  ASSERT_EQ(got.vocab.capacities.size(), 1u);
  EXPECT_EQ(got.vocab.capacities[0].region, "Cells");
  EXPECT_EQ(got.vocab.capacities[0].maxPerPiece, 12u);
  ASSERT_EQ(got.vocab.affinities.size(), 2u);
  EXPECT_EQ(got.vocab.affinities[0].fieldA, "Cells.vel");
  EXPECT_EQ(got.vocab.affinities[0].fieldB, "Particles.pos");
  EXPECT_TRUE(got.vocab.affinities[0].together);
  EXPECT_FALSE(got.vocab.affinities[1].together);
  ASSERT_EQ(got.vocab.replications.size(), 1u);
  EXPECT_EQ(got.vocab.replications[0].region, "Cells");
  EXPECT_DOUBLE_EQ(got.vocab.replications[0].minFactor, 0.5);
  EXPECT_DOUBLE_EQ(got.vocab.replications[0].maxFactor, 3.0);
  EXPECT_EQ(got.vocab.rendered(), req.vocab.rendered());
}

TEST(ServiceProtocol, SolveCountersSurviveTheWire) {
  PlanResponse resp;
  resp.cacheKey = 7;
  resp.propagations = 54;
  resp.prunes = 4;
  resp.branches = 11;
  resp.backtracks = 2;
  resp.restarts = 1;
  const std::vector<std::uint8_t> bytes = encodeResponse(resp);
  BinaryReader r(bytes);
  const PlanResponse got = decodeResponse(r);
  EXPECT_EQ(got.propagations, 54u);
  EXPECT_EQ(got.prunes, 4u);
  EXPECT_EQ(got.branches, 11u);
  EXPECT_EQ(got.backtracks, 2u);
  EXPECT_EQ(got.restarts, 1u);
}

TEST(ServiceProtocol, ErrorReplyRoundTripsAndRethrows) {
  const ErrorReplyMsg msg{ErrorCode::PartitionViolation, "piece 3 overlaps"};
  const std::vector<std::uint8_t> bytes = encodeError(msg);
  BinaryReader r(bytes);
  const ErrorReplyMsg got = decodeError(r);
  EXPECT_EQ(got.code, ErrorCode::PartitionViolation);
  EXPECT_EQ(got.what, "piece 3 overlaps");
  EXPECT_THROW(throwServiceError(got.code, got.what), PartitionViolation);
  EXPECT_THROW(throwServiceError(ErrorCode::BadRequest, "x"), BadRequest);
  EXPECT_THROW(throwServiceError(ErrorCode::Overloaded, "x"), Overloaded);
  EXPECT_THROW(throwServiceError(ErrorCode::Infeasible, "no solution"),
               constraint::InfeasibleError);
}

TEST(ServiceProtocol, HostileShapesAreRejected) {
  // Oversized region: the size cap must fire before any allocation.
  WorldShape big;
  big.regions.push_back(RegionShape{"R", region::Index(1) << 40, {}});
  EXPECT_THROW((void)big.materialize(region::Index(1) << 20), BadRequest);

  // Duplicate region name.
  WorldShape dup;
  dup.regions.push_back(RegionShape{"R", 8, {}});
  dup.regions.push_back(RegionShape{"R", 8, {}});
  EXPECT_THROW((void)dup.materialize(region::Index(1) << 20), BadRequest);

  // Truncated payload decodes to BadRequest-able corruption, not UB.
  region::World world;
  buildWorld(world);
  std::vector<std::uint8_t> bytes =
      encodeRequest(makeRequest("", world, makeProgram()));
  bytes.resize(bytes.size() / 2);
  BinaryReader r(bytes);
  EXPECT_THROW((void)decodeRequest(r), Error);
}

TEST(ServiceServer, ServesAPlanThatMatchesLocalCompile) {
  region::World world;
  buildWorld(world);
  const ir::Program prog = makeProgram();
  const Plan local = Session::parallelize(prog).pieces(4).compile(world);

  ServerFixture fx;
  PlanClient client = PlanClient::connectTcp(fx.server.port());
  const PlanResponse resp =
      client.parallelize(makeRequest("acme", world, prog));

  EXPECT_EQ(resp.cacheKey, local.cacheKey());
  EXPECT_FALSE(resp.cacheHit);
  EXPECT_EQ(resp.dpl, local.parallelPlan().dpl.toString());
  EXPECT_EQ(resp.parallelLoops, 1);
  ASSERT_EQ(resp.loops.size(), 1u);
  EXPECT_EQ(resp.loops[0].name, "update");
  EXPECT_GT(resp.serverMs, 0.0);
  EXPECT_GT(client.counters().bytesSent, 0u);
  EXPECT_GT(client.counters().messagesRecv, 0u);
}

TEST(ServiceServer, UnixSocketWorksToo) {
  ServerOptions opts;
  opts.unixPath = "service_test.sock";
  ServerFixture fx(opts);
  region::World world;
  buildWorld(world);
  PlanClient client = PlanClient::connectUnix(fx.server.unixPath());
  const PlanResponse resp =
      client.parallelize(makeRequest("", world, makeProgram()));
  EXPECT_NE(resp.cacheKey, 0u);
}

TEST(ServiceServer, IsomorphicProgramsAcrossTenantsShareOneSolve) {
  ServerFixture fx;
  region::World worldA;
  buildWorld(worldA);
  region::World worldB;
  buildRenamedWorld(worldB);

  PlanClient a = PlanClient::connectTcp(fx.server.port());
  PlanClient b = PlanClient::connectTcp(fx.server.port());
  const PlanResponse cold =
      a.parallelize(makeRequest("tenant-a", worldA, makeProgram()));
  const PlanResponse warm =
      b.parallelize(makeRequest("tenant-b", worldB, makeRenamedProgram()));

  EXPECT_FALSE(cold.cacheHit);
  EXPECT_TRUE(warm.cacheHit) << "renamed-but-isomorphic program must hit "
                                "the cross-tenant cache";
  EXPECT_EQ(cold.cacheKey, warm.cacheKey);

  // Resubmitting the identical program is bitwise the same DPL.
  const PlanResponse again =
      a.parallelize(makeRequest("tenant-a", worldA, makeProgram()));
  EXPECT_TRUE(again.cacheHit);
  EXPECT_EQ(again.dpl, cold.dpl);

  // Per-tenant metrics stay isolated; the rollup sees everything.
  MetricsRegistry& ta = fx.server.tenantMetrics("tenant-a");
  MetricsRegistry& tb = fx.server.tenantMetrics("tenant-b");
  EXPECT_EQ(ta.counter("tenant.requests").value(), 2u);
  EXPECT_EQ(tb.counter("tenant.requests").value(), 1u);
  EXPECT_EQ(ta.counter("tenant.cache.hits").value(), 1u);
  EXPECT_EQ(tb.counter("tenant.cache.hits").value(), 1u);
  EXPECT_EQ(fx.server.serviceMetrics().counter("service.requests").value(),
            3u);
  const parallelize::SolveCache::Stats cs = fx.server.cacheStats();
  EXPECT_EQ(cs.entries, 1u);
  // The renamed program reached the canonical (L2) cache and hit; the
  // byte-identical resubmission was absorbed by the exact-request response
  // memo (L1) and never touched the compiler.
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(
      fx.server.serviceMetrics().counter("service.cache.exactHits").value(),
      1u);
}

TEST(ServiceServer, ErrorTaxonomyTravelsWithStableCodes) {
  ServerFixture fx;
  region::World world;
  buildWorld(world);

  // pieces == 0 -> BadRequest, connection stays usable afterwards.
  PlanClient client = PlanClient::connectTcp(fx.server.port());
  EXPECT_THROW(
      (void)client.parallelize(makeRequest("", world, makeProgram(), 0)),
      BadRequest);

  // Unknown region in the program body -> server-side compile Error travels
  // back; the client rethrows and the connection still serves.
  ir::Program bad = makeProgram();
  bad.loops[0].iterRegion = "NoSuchRegion";
  EXPECT_THROW((void)client.parallelize(makeRequest("", world, bad)), Error);

  // Garbage payload inside a structurally valid frame (magic + CRC fine,
  // bytes inside meaningless) -> BadRequest, not a crash.
  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(fx.server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::vector<std::uint8_t> junk(64, 0xAB);
    framing::sendFrame(fd, static_cast<std::uint8_t>(MsgType::Request), junk,
                       /*node=*/0);
    auto reply = framing::recvFrame(
        fd, 10'000'000, 64ull << 20, /*node=*/0,
        static_cast<std::uint8_t>(MsgType::Request),
        static_cast<std::uint8_t>(MsgType::Shutdown));
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(static_cast<MsgType>(reply->type), MsgType::ErrorReply);
    BinaryReader r(reply->payload);
    EXPECT_EQ(decodeError(r).code, ErrorCode::BadRequest);
    ::close(fd);
  }

  // A healthy request afterwards still succeeds on the same connection.
  const PlanResponse ok =
      client.parallelize(makeRequest("", world, makeProgram()));
  EXPECT_NE(ok.cacheKey, 0u);
  EXPECT_GT(fx.server.serviceMetrics()
                .counter("service.errors",
                         {{"kind", toString(ErrorCode::BadRequest)}})
                .value(),
            0u);
}

TEST(ServiceServer, MalformedFramesOnlyKillTheirOwnConnection) {
  ServerFixture fx;

  // A hostile client writes bytes that are not a DPMG frame at all.
  PlanClient victim = PlanClient::connectTcp(fx.server.port());
  {
    PlanClient hostileConn = PlanClient::connectTcp(fx.server.port());
    // Reach under the abstraction: raw garbage on a fresh socket.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(fx.server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const char garbage[] = "this is not a DPMG frame, not even close";
    ASSERT_GT(::write(fd, garbage, sizeof(garbage)), 0);
    ::close(fd);
  }

  // The server survived and still serves well-formed clients.
  region::World world;
  buildWorld(world);
  const PlanResponse resp =
      victim.parallelize(makeRequest("", world, makeProgram()));
  EXPECT_NE(resp.cacheKey, 0u);
}

TEST(ServiceServer, OverloadedWhenTheAdmissionQueueIsFull) {
  ServerOptions opts;
  opts.queueCapacity = 0;  // reject every connection at admission
  ServerFixture fx(opts);
  PlanClient client = PlanClient::connectTcp(fx.server.port());
  region::World world;
  buildWorld(world);
  EXPECT_THROW((void)client.parallelize(makeRequest("", world, makeProgram())),
               Overloaded);
  EXPECT_GT(fx.server.serviceMetrics().counter("service.rejected").value(),
            0u);
}

TEST(ServiceServer, StatsRequestReturnsRollupAndTenantJson) {
  ServerFixture fx;
  region::World world;
  buildWorld(world);
  PlanClient client = PlanClient::connectTcp(fx.server.port());
  (void)client.parallelize(makeRequest("acme", world, makeProgram()));
  (void)client.parallelize(makeRequest("acme", world, makeProgram()));

  const std::string rollup = client.stats();
  EXPECT_NE(rollup.find("service.requests"), std::string::npos);
  EXPECT_NE(rollup.find("service.cache.hits"), std::string::npos);
  EXPECT_NE(rollup.find("service.latency.p50Ms"), std::string::npos);
  EXPECT_NE(rollup.find("service.latency.p99Ms"), std::string::npos);

  const std::string tenant = client.stats("acme");
  EXPECT_NE(tenant.find("tenant.requests"), std::string::npos);
  EXPECT_EQ(tenant.find("service.requests"), std::string::npos)
      << "tenant stats must not leak the service rollup";
}

TEST(ServiceServer, ManyConcurrentClientsAllGetTheSamePlan) {
  ServerOptions opts;
  opts.workers = 4;
  ServerFixture fx(opts);
  constexpr int kClients = 16;
  std::vector<std::thread> threads;
  std::vector<std::string> dpls(kClients);
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      try {
        region::World world;
        buildWorld(world);
        PlanClient c = PlanClient::connectTcp(fx.server.port());
        const PlanResponse r = c.parallelize(
            makeRequest("tenant-" + std::to_string(i % 4), world,
                        makeProgram()));
        dpls[static_cast<std::size_t>(i)] = r.dpl;
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(dpls[static_cast<std::size_t>(i)], dpls[0])
        << "cached plans must be identical across clients";
  }
  const parallelize::SolveCache::Stats cs = fx.server.cacheStats();
  EXPECT_EQ(cs.entries, 1u);
  // Every request is either an L1 (exact-request memo) or L2 (canonical)
  // hit, except the handful of cold solves racing before the first insert;
  // the service counters roll both levels up.
  MetricsRegistry& sm = fx.server.serviceMetrics();
  const std::uint64_t hits = sm.counter("service.cache.hits").value();
  const std::uint64_t misses = sm.counter("service.cache.misses").value();
  EXPECT_EQ(hits + misses, static_cast<std::uint64_t>(kClients));
  EXPECT_GE(hits, static_cast<std::uint64_t>(kClients - 4))
      << "at most #workers concurrent cold solves may race per key";
}

TEST(ServiceServer, InfeasibleVocabularyTravelsAsItsOwnCode) {
  ServerFixture fx;
  region::World world;
  buildWorld(world);
  PlanClient client = PlanClient::connectTcp(fx.server.port());

  // 400 particles over 4 pieces force a 100-element piece: a 10-element
  // capacity is a pigeonhole contradiction. The request is well-formed, so
  // the failure must travel as Infeasible — not BadRequest — and carry the
  // first conflict's provenance.
  PlanRequest req = makeRequest("acme", world, makeProgram());
  req.vocab.capacities.push_back({"Particles", 10});
  try {
    (void)client.parallelize(req);
    FAIL() << "expected InfeasibleError";
  } catch (const constraint::InfeasibleError& e) {
    EXPECT_EQ(e.errorCode(), ErrorCode::Infeasible);
    EXPECT_NE(std::string(e.what()).find("capacity-comp"),
              std::string::npos);
  }

  // A malformed vocabulary on the same connection is BadRequest instead.
  PlanRequest bad = makeRequest("acme", world, makeProgram());
  bad.vocab.affinities.push_back({"NoSuchRegion.f", "Cells.vel", true});
  EXPECT_THROW((void)client.parallelize(bad), BadRequest);

  // The connection survives both failures.
  const PlanResponse ok =
      client.parallelize(makeRequest("acme", world, makeProgram()));
  EXPECT_NE(ok.cacheKey, 0u);
}

TEST(ServiceServer, FeasibleVocabularyCompilesAndReportsCounters) {
  ServerFixture fx;
  region::World world;
  buildWorld(world);
  PlanClient client = PlanClient::connectTcp(fx.server.port());

  PlanRequest req = makeRequest("acme", world, makeProgram());
  req.vocab.capacities.push_back({"Particles", 100});  // exactly 400/4
  const PlanResponse resp = client.parallelize(req);
  EXPECT_FALSE(resp.cacheHit);  // vocab compiles bypass the solve cache
  EXPECT_NE(resp.dpl, "");
  EXPECT_GT(resp.propagations, 0u);

  // The same request without the vocabulary must not collide with the
  // constrained compile in any cache layer.
  const PlanResponse plain =
      client.parallelize(makeRequest("acme", world, makeProgram()));
  EXPECT_EQ(plain.propagations, 0u);
}

TEST(ServiceServer, ShutdownFrameStopsTheServer) {
  ServerFixture fx;
  PlanClient client = PlanClient::connectTcp(fx.server.port());
  client.shutdownServer();
  fx.server.waitForStopRequest();
  fx.server.stop();
  EXPECT_FALSE(fx.server.running());
}

}  // namespace
}  // namespace dpart::service
