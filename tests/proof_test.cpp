// Proof-certificate emission: successful and infeasible compiles write DPRF
// certificates (consumed by tools/proof_check), the compile stats surface
// their size, and proof-emitting compiles bypass the solve cache.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/spmv.hpp"
#include "parallelize/solve_cache.hpp"
#include "runtime/session.hpp"

namespace dpart {
namespace {

std::vector<std::string> readLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool hasLineStarting(const std::vector<std::string>& lines,
                     const std::string& prefix) {
  for (const std::string& l : lines) {
    if (l.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

apps::SpmvApp::Params smallParams() {
  apps::SpmvApp::Params p;
  p.rowsPerPiece = 16;
  p.pieces = 4;
  return p;
}

TEST(ProofEmission, SuccessfulCompileWritesCheckableCertificate) {
  apps::SpmvApp app(smallParams());
  const std::string path = ::testing::TempDir() + "proof_ok.dprf";
  Plan plan = Session::parallelize(app.program())
                  .pieces(4)
                  .proof(path)
                  .compile(app.world());
  EXPECT_GT(plan.stats().proofEvents, 0u);
  EXPECT_GT(plan.stats().proofBytes, 0u);

  const std::vector<std::string> lines = readLines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.front(), "cert DPRF 1");
  // The trailer declares the certificate's own length: `end N`.
  std::istringstream tail(lines.back());
  std::string word;
  std::size_t declared = 0;
  tail >> word >> declared;
  EXPECT_EQ(word, "end");
  EXPECT_EQ(declared, lines.size());
  EXPECT_TRUE(hasLineStarting(lines, "begin search"));
  EXPECT_TRUE(hasLineStarting(lines, "solution"));
  EXPECT_TRUE(hasLineStarting(lines, "assign "));
  EXPECT_TRUE(hasLineStarting(lines, "expect "));
  EXPECT_FALSE(hasLineStarting(lines, "infeasible"));
}

TEST(ProofEmission, InfeasibleCompileWritesCertificateBeforeThrowing) {
  apps::SpmvApp app(smallParams());
  const std::string path = ::testing::TempDir() + "proof_infeasible.dprf";
  bool threw = false;
  try {
    (void)Session::parallelize(app.program())
        .pieces(4)
        .capacity("Y", 1)  // pigeonhole: ceil(64/4) = 16 > 1
        .proof(path)
        .compile(app.world());
  } catch (const constraint::InfeasibleError& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos);
  }
  ASSERT_TRUE(threw);

  const std::vector<std::string> lines = readLines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.front(), "cert DPRF 1");
  EXPECT_TRUE(hasLineStarting(lines, "vocab capacity "));
  EXPECT_TRUE(hasLineStarting(lines, "infeasible "));
  EXPECT_FALSE(hasLineStarting(lines, "solution"));
}

TEST(ProofEmission, VocabularyCertificateEchoesAllConstraintKinds) {
  apps::SpmvApp app(smallParams());
  const std::string path = ::testing::TempDir() + "proof_vocab.dprf";
  Plan plan = Session::parallelize(app.program())
                  .pieces(4)
                  .capacity("Y", 16)
                  .replication("Y", 0.0, 4.0)
                  .proof(path)
                  .compile(app.world());
  EXPECT_GT(plan.stats().proofEvents, 0u);
  const std::vector<std::string> lines = readLines(path);
  EXPECT_TRUE(hasLineStarting(lines, "vocab capacity "));
  EXPECT_TRUE(hasLineStarting(lines, "vocab replicate "));
  EXPECT_TRUE(hasLineStarting(lines, "solution"));
}

TEST(ProofEmission, ProofCompilesBypassTheSolveCache) {
  apps::SpmvApp app(smallParams());
  parallelize::SolveCache cache;

  parallelize::Options warm;
  warm.solveCache = &cache;
  parallelize::ParallelPlan first =
      parallelize::AutoParallelizer(app.world(), warm).plan(app.program());
  EXPECT_FALSE(first.stats.cacheHit);

  // Same program again: served from the cache...
  parallelize::ParallelPlan again =
      parallelize::AutoParallelizer(app.world(), warm).plan(app.program());
  EXPECT_TRUE(again.stats.cacheHit);

  // ...but a proof-emitting compile must rerun the real solve (a cached
  // solution has no search trail to certify).
  parallelize::Options proving = warm;
  proving.proofFile = ::testing::TempDir() + "proof_nocache.dprf";
  parallelize::ParallelPlan proved =
      parallelize::AutoParallelizer(app.world(), proving).plan(app.program());
  EXPECT_FALSE(proved.stats.cacheHit);
  EXPECT_GT(proved.stats.proofEvents, 0u);
  EXPECT_EQ(proved.dpl.toString(), first.dpl.toString());
}

}  // namespace
}  // namespace dpart
