#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "support/json.hpp"
#include "support/perf_counters.hpp"

namespace dpart {
namespace {

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  registry.counter("requests").inc();
  registry.counter("requests").inc(4);
  EXPECT_EQ(registry.counter("requests").value(), 5u);

  registry.gauge("temperature").set(21.5);
  registry.gauge("temperature").add(0.5);
  EXPECT_DOUBLE_EQ(registry.gauge("temperature").value(), 22.0);

  MetricHistogram& h = registry.histogram("latencyMs", {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(5000.0);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 5005.5);
  const std::vector<std::uint64_t> buckets = h.bucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, LabelsMakeDistinctSeries) {
  MetricsRegistry registry;
  registry.counter("errorsTotal", {{"kind", "TaskFailure"}}).inc(3);
  registry.counter("errorsTotal", {{"kind", "EvalFailure"}}).inc();
  EXPECT_EQ(registry.counter("errorsTotal", {{"kind", "TaskFailure"}}).value(),
            3u);
  EXPECT_EQ(registry.counter("errorsTotal", {{"kind", "EvalFailure"}}).value(),
            1u);
  // The unlabelled series is yet another metric.
  EXPECT_EQ(registry.counter("errorsTotal").value(), 0u);
}

TEST(Metrics, ReferencesAreStableAcrossLaterRegistrations) {
  MetricsRegistry registry;
  MetricCounter& c = registry.counter("first");
  for (int i = 0; i < 100; ++i) {
    registry.counter("other" + std::to_string(i));
  }
  c.inc(7);  // the early reference must still point at the live metric
  EXPECT_EQ(registry.counter("first").value(), 7u);
}

TEST(Metrics, SnapshotRestoreRoundTrip) {
  MetricsRegistry a;
  a.counter("launches").inc(12);
  a.gauge("compile.solveMs", {{"app", "spmv"}}).set(1.75);
  a.histogram("taskMs", {1.0, 8.0}).observe(3.0);

  const MetricsRegistry::Snapshot snap = a.snapshot();
  MetricsRegistry b;
  b.restore(snap);
  EXPECT_EQ(b.snapshot(), snap);
  EXPECT_EQ(b.counter("launches").value(), 12u);
  EXPECT_DOUBLE_EQ(b.gauge("compile.solveMs", {{"app", "spmv"}}).value(), 1.75);

  // Mutating the restored registry keeps going from the restored state.
  b.counter("launches").inc();
  EXPECT_EQ(b.counter("launches").value(), 13u);
  EXPECT_NE(b.snapshot(), snap);
}

TEST(Metrics, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry a;
  a.counter("zeta").inc();
  a.counter("alpha").inc();
  MetricsRegistry b;
  b.counter("alpha").inc();
  b.counter("zeta").inc();
  // Registration order must not leak into the snapshot.
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(Metrics, JsonExportParsesAndCarriesEverySeries) {
  MetricsRegistry registry;
  registry.counter("errorsTotal", {{"kind", "TaskFailure"}}).inc(2);
  registry.gauge("pieces").set(8);
  registry.histogram("latencyMs", {1.0}).observe(0.5);

  const json::Value doc = json::parse(registry.toJson());
  const json::Value& metrics = doc.at("metrics");
  ASSERT_TRUE(metrics.isArray());
  ASSERT_EQ(metrics.items.size(), 3u);
  bool sawCounter = false;
  for (const json::Value& m : metrics.items) {
    EXPECT_TRUE(m.at("name").isString());
    EXPECT_TRUE(m.at("type").isString());
    if (m.at("name").str == "errorsTotal") {
      sawCounter = true;
      EXPECT_EQ(m.at("type").str, "counter");
      EXPECT_EQ(m.at("labels").at("kind").str, "TaskFailure");
      EXPECT_EQ(m.at("value").number, 2);
    }
    if (m.at("name").str == "latencyMs") {
      EXPECT_EQ(m.at("type").str, "histogram");
      ASSERT_TRUE(m.at("buckets").isArray());
      EXPECT_EQ(m.at("buckets").items.size(), 2u);
      EXPECT_TRUE(m.at("count").isNumber());
      EXPECT_TRUE(m.at("sum").isNumber());
    }
  }
  EXPECT_TRUE(sawCounter);
}

TEST(Metrics, WriteJsonRoundTripsThroughAFile) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "dpart_metrics_test.json";
  MetricsRegistry registry;
  registry.counter("launches").inc(3);
  registry.writeJson(path.string());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const json::Value doc = json::parse(text);
  EXPECT_EQ(doc.at("metrics").items.size(), 1u);
  std::filesystem::remove(path);
}

TEST(Metrics, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry registry;
  MetricCounter& c = registry.counter("hits");
  MetricHistogram& h = registry.histogram("obs", {0.5});
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kIters);
  EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kIters);
  EXPECT_EQ(h.bucketCounts()[1], std::uint64_t(kThreads) * kIters);
}

TEST(Metrics, PerfCountersExportPublishesFixedSchema) {
  PerfCounters counters;
  counters.ops[PerfCounters::kImage].record(0.002, 100, 7);
  counters.cacheHits = 5;
  counters.injectedStallMicros = 1234;

  MetricsRegistry registry;
  counters.exportTo(registry);
  // Every declared operator appears, even the ones never invoked.
  for (std::size_t i = 0; i < PerfCounters::kNumOps; ++i) {
    const MetricLabels labels{{"op", PerfCounters::opName(i)}};
    EXPECT_GE(registry.gauge("dpl.op.calls", labels).value(), 0.0);
  }
  EXPECT_DOUBLE_EQ(
      registry.gauge("dpl.op.calls", {{"op", "image"}}).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("dpl.op.elements", {{"op", "image"}}).value(), 100.0);
  EXPECT_DOUBLE_EQ(registry.gauge("dpl.cache.hits").value(), 5.0);
  EXPECT_DOUBLE_EQ(registry.gauge("dpl.injected_stall_us").value(), 1234.0);

  // toJson carries the same fixed schema (satellite of the bench fix).
  const json::Value doc = json::parse(counters.toJson());
  EXPECT_EQ(doc.at("injected_stall_us").number, 1234);
  for (std::size_t i = 0; i < PerfCounters::kNumOps; ++i) {
    EXPECT_TRUE(doc.at("ops").has(PerfCounters::opName(i)));
  }
}

}  // namespace
}  // namespace dpart
