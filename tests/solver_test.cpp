#include "constraint/solver.hpp"

#include <gtest/gtest.h>

#include "constraint/entail.hpp"

namespace dpart::constraint {
namespace {

using dpl::equalOf;
using dpl::image;
using dpl::preimage;
using dpl::symbol;
using dpl::unionOf;

// ---- Entailment engine (Fig. 8 lemmas) ----

class EntailTest : public ::testing::Test {
 protected:
  System sys;
};

TEST_F(EntailTest, L1EqualIsPartDisjComp) {
  Entailment ent(sys, {});
  EXPECT_TRUE(ent.provePart(equalOf("R"), "R"));
  EXPECT_TRUE(ent.proveDisj(equalOf("R")));
  EXPECT_TRUE(ent.proveComp(equalOf("R"), "R"));
  EXPECT_FALSE(ent.proveComp(equalOf("R"), "S"));
}

TEST_F(EntailTest, L2L3ImagePreimageArePartitions) {
  Entailment ent(sys, {});
  EXPECT_TRUE(ent.provePart(image(equalOf("R"), "f", "S"), "S"));
  EXPECT_FALSE(ent.provePart(image(equalOf("R"), "f", "S"), "R"));
  EXPECT_TRUE(ent.provePart(preimage("R", "f", equalOf("S")), "R"));
}

TEST_F(EntailTest, L4SetOpsPreservePart) {
  Entailment ent(sys, {});
  auto a = equalOf("R");
  auto b = image(equalOf("R"), "f", "R");
  EXPECT_TRUE(ent.provePart(unionOf(a, b), "R"));
  EXPECT_TRUE(ent.provePart(dpl::intersectOf(a, b), "R"));
  EXPECT_TRUE(ent.provePart(dpl::subtractOf(a, b), "R"));
}

TEST_F(EntailTest, L7PreimagePreservesCompleteness) {
  Entailment ent(sys, {});
  EXPECT_TRUE(ent.proveComp(preimage("R", "f", equalOf("S")), "R"));
  // ...but images do not.
  EXPECT_FALSE(ent.proveComp(image(equalOf("S"), "f", "R"), "R"));
}

TEST_F(EntailTest, L7ExcludedForRangeValuedFns) {
  Entailment ent(sys, {"F"});
  EXPECT_FALSE(ent.proveComp(preimage("R", "F", equalOf("S")), "R"));
}

TEST_F(EntailTest, L9L10L12DisjointnessPropagation) {
  Entailment ent(sys, {});
  auto img = image(equalOf("R"), "f", "S");  // not provably disjoint
  EXPECT_FALSE(ent.proveDisj(img));
  EXPECT_TRUE(ent.proveDisj(dpl::intersectOf(img, equalOf("S"))));
  EXPECT_FALSE(ent.proveDisj(dpl::intersectOf(img, img)));
  EXPECT_TRUE(ent.proveDisj(dpl::subtractOf(equalOf("S"), img)));
  EXPECT_FALSE(ent.proveDisj(dpl::subtractOf(img, equalOf("S"))));
  EXPECT_TRUE(ent.proveDisj(preimage("R", "f", equalOf("S"))));
}

TEST_F(EntailTest, L12ExcludedForRangeValuedFns) {
  Entailment ent(sys, {"F"});
  EXPECT_FALSE(ent.proveDisj(preimage("R", "F", equalOf("S"))));
  EXPECT_TRUE(ent.proveDisj(preimage("R", "f", equalOf("S"))));
}

TEST_F(EntailTest, L6UnionCompleteness) {
  Entailment ent(sys, {});
  auto img = image(equalOf("S"), "f", "R");
  EXPECT_TRUE(ent.proveComp(unionOf(equalOf("R"), img), "R"));
  EXPECT_TRUE(ent.proveComp(unionOf(img, equalOf("R")), "R"));
  EXPECT_FALSE(ent.proveComp(unionOf(img, img), "R"));
}

TEST_F(EntailTest, ImageOfPreimageSubset) {
  Entailment ent(sys, {});
  // image(preimage(R, f, equal(S)), f, S) <= equal(S).
  auto pre = preimage("R", "f", equalOf("S"));
  EXPECT_TRUE(ent.proveSubset(image(pre, "f", "S"), equalOf("S")));
  // Not for a different function.
  EXPECT_FALSE(ent.proveSubset(image(pre, "g", "S"), equalOf("S")));
}

TEST_F(EntailTest, SubsetStructuralRules) {
  Entailment ent(sys, {});
  auto a = equalOf("R");
  auto b = image(equalOf("R"), "f", "R");
  EXPECT_TRUE(ent.proveSubset(dpl::intersectOf(a, b), a));
  EXPECT_TRUE(ent.proveSubset(dpl::subtractOf(a, b), a));
  EXPECT_TRUE(ent.proveSubset(a, unionOf(b, a)));
  EXPECT_TRUE(ent.proveSubset(unionOf(a, a), a));
  EXPECT_FALSE(ent.proveSubset(unionOf(a, b), a));
}

TEST_F(EntailTest, HypothesisSubsetAndTransitivity) {
  sys.declareSymbol("A", "R");
  sys.declareSymbol("B", "R");
  sys.declareSymbol("C", "R");
  sys.addSubset(symbol("A"), symbol("B"));
  sys.addSubset(symbol("B"), symbol("C"));
  Entailment ent(sys, {});
  EXPECT_TRUE(ent.proveSubset(symbol("A"), symbol("B")));
  EXPECT_TRUE(ent.proveSubset(symbol("A"), symbol("C")));
  EXPECT_FALSE(ent.proveSubset(symbol("C"), symbol("A")));
}

TEST_F(EntailTest, L8DisjointnessFlowsRightToLeft) {
  sys.declareSymbol("A", "R");
  sys.declareSymbol("B", "R");
  sys.addSubset(symbol("A"), symbol("B"));
  sys.addDisj(symbol("B"));
  Entailment ent(sys, {});
  EXPECT_TRUE(ent.proveDisj(symbol("A")));
  EXPECT_FALSE(ent.proveDisj(symbol("B")) &&
               ent.proveDisj(symbol("C")));  // C unknown
}

TEST_F(EntailTest, L5CompletenessFlowsUpward) {
  sys.declareSymbol("A", "R");
  sys.declareSymbol("B", "R");
  sys.addSubset(symbol("A"), symbol("B"));
  sys.addComp(symbol("A"), "R");
  Entailment ent(sys, {});
  EXPECT_TRUE(ent.proveComp(symbol("B"), "R"));
}

TEST_F(EntailTest, L14ViaHypothesis) {
  sys.declareSymbol("E1", "R2");
  sys.declareSymbol("E2", "R1");
  sys.addSubset(symbol("E1"), preimage("R2", "f", symbol("E2")));
  Entailment ent(sys, {});
  EXPECT_TRUE(ent.proveSubset(image(symbol("E1"), "f", "R1"), symbol("E2")));
  // L14 does not hold for range-valued functions.
  Entailment entRange(sys, {"f"});
  EXPECT_FALSE(
      entRange.proveSubset(image(symbol("E1"), "f", "R1"), symbol("E2")));
}

// ---- Solver (Algorithm 2) ----

// Example 2 system: PART(P1,R), COMP(P1,R), DISJ(P1), PART(P2,S),
// image(P1,g,S) <= P2, PART(P3,R), P1 <= P3.
System example2System() {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.addComp(symbol("P1"), "R");
  sys.addDisj(symbol("P1"));
  sys.declareSymbol("P2", "S");
  sys.addSubset(image(symbol("P1"), "g", "S"), symbol("P2"));
  sys.declareSymbol("P3", "R");
  sys.addSubset(symbol("P1"), symbol("P3"));
  return sys;
}

TEST(SolverTest, Example2EqualThenStrengthen) {
  Solver solver(example2System(), {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  EXPECT_EQ(sol.assignments.at("P1")->toString(), "equal(R)");
  EXPECT_EQ(sol.assignments.at("P2")->toString(),
            "image(equal(R), g, S)");
  EXPECT_EQ(sol.assignments.at("P3")->toString(), "equal(R)");
  // After CSE the program reads P1 = equal(R); P2 = image(P1,...); P3 = P1,
  // matching the paper's printed solution.
  const std::string prog = sol.program().toString();
  EXPECT_NE(prog.find("P1 = equal(R)"), std::string::npos);
  EXPECT_NE(prog.find("P2 = image(P1, g, S)"), std::string::npos);
  EXPECT_NE(prog.find("P3 = P1"), std::string::npos);
}

TEST(SolverTest, Example3PreimageUnderDisjointness) {
  System sys = example2System();
  sys.addDisj(symbol("P2"));
  Solver solver(sys, {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  // The paper's Example 3: P2 = equal(S), P1 = preimage(R, g, P2).
  EXPECT_EQ(sol.assignments.at("P2")->toString(), "equal(S)");
  EXPECT_EQ(sol.assignments.at("P1")->toString(),
            "preimage(R, g, equal(S))");
  const std::string prog = sol.program().toString();
  EXPECT_NE(prog.find("P2 = equal(S)"), std::string::npos);
  EXPECT_NE(prog.find("P1 = preimage(R, g, P2)"), std::string::npos);
}

TEST(SolverTest, Figure2ProgramBShape) {
  // Figure 1c constraints after unification (Fig. 9b):
  //   COMP(P1, Particles), COMP(P2, Cells),
  //   image(P1, cell, Cells) <= P2, image(P2, h, Cells) <= P3.
  System sys;
  sys.declareSymbol("P1", "Particles");
  sys.addComp(symbol("P1"), "Particles");
  sys.declareSymbol("P2", "Cells");
  sys.addComp(symbol("P2"), "Cells");
  sys.addSubset(image(symbol("P1"), "cell", "Cells"), symbol("P2"));
  sys.declareSymbol("P3", "Cells");
  sys.addSubset(image(symbol("P2"), "h", "Cells"), symbol("P3"));

  Solver solver(sys, {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  // Program B: P2 = equal(Cells); P1 = preimage(Particles, cell, P2);
  // P3 = image(P2, h, Cells) — 3 constructed partitions, not program A's 5.
  EXPECT_EQ(sol.assignments.at("P2")->toString(), "equal(Cells)");
  EXPECT_EQ(sol.assignments.at("P1")->toString(),
            "preimage(Particles, cell, equal(Cells))");
  EXPECT_EQ(sol.assignments.at("P3")->toString(),
            "image(equal(Cells), h, Cells)");
  EXPECT_EQ(sol.program().constructedPartitions(), 3u);
}

TEST(SolverTest, TrivialSolutionAlwaysExistsForInferredShapes) {
  // A chain with no DISJ/COMP pressure resolves by equal + strengthening.
  System sys;
  sys.declareSymbol("P1", "R");
  sys.addComp(symbol("P1"), "R");
  sys.declareSymbol("P2", "S");
  sys.addSubset(image(symbol("P1"), "f", "S"), symbol("P2"));
  sys.declareSymbol("P3", "T");
  sys.addSubset(image(symbol("P2"), "g", "T"), symbol("P3"));
  Solver solver(sys, {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  EXPECT_EQ(sol.assignments.at("P3")->toString(),
            "image(image(equal(R), f, S), g, T)");
}

TEST(SolverTest, MultipleBoundsUnionize) {
  // Two uncentered reads into the same partition symbol.
  System sys;
  sys.declareSymbol("P1", "R");
  sys.addComp(symbol("P1"), "R");
  sys.declareSymbol("P2", "S");
  sys.addSubset(image(symbol("P1"), "f", "S"), symbol("P2"));
  sys.addSubset(image(symbol("P1"), "g", "S"), symbol("P2"));
  Solver solver(sys, {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  const std::string p2 = sol.assignments.at("P2")->toString();
  EXPECT_NE(p2.find(" u "), std::string::npos);
  EXPECT_NE(p2.find("image(equal(R), f, S)"), std::string::npos);
  EXPECT_NE(p2.find("image(equal(R), g, S)"), std::string::npos);
}

TEST(SolverTest, Figure11MultipleUncenteredReductionsWithoutRelaxationFails) {
  // Example 7: DISJ(P1) with *two* uncentered reductions through different
  // functions and both reduction partitions forced disjoint: unsolvable
  // (the union of preimages is not provably disjoint).
  System sys;
  sys.declareSymbol("P1", "R");
  sys.addComp(symbol("P1"), "R");
  sys.addDisj(symbol("P1"));
  sys.declareSymbol("P2", "S");
  sys.addSubset(image(symbol("P1"), "f", "S"), symbol("P2"));
  sys.addDisj(symbol("P2"));
  sys.declareSymbol("P3", "S");
  sys.addSubset(image(symbol("P1"), "g", "S"), symbol("P3"));
  sys.addDisj(symbol("P3"));
  Solver solver(sys, {});
  Solution sol = solver.solve();
  EXPECT_FALSE(sol.ok);
}

TEST(SolverTest, Figure11RelaxedFormSolvable) {
  // After the Section 5.1 relaxation the DISJ on the iteration space is
  // dropped, guarded reductions demand disjoint *complete* reduction
  // partitions, and the iteration space must cover their preimages so that
  // every contribution is produced by some task. The solver then uses the
  // union of preimages for P1 (the paper's Example 7 outcome).
  System sys;
  sys.declareSymbol("P1", "R");
  sys.addComp(symbol("P1"), "R");
  sys.declareSymbol("P2", "S");
  sys.addDisj(symbol("P2"));
  sys.addComp(symbol("P2"), "S");
  sys.declareSymbol("P3", "S");
  sys.addDisj(symbol("P3"));
  sys.addComp(symbol("P3"), "S");
  sys.addSubset(preimage("R", "f", symbol("P2")), symbol("P1"));
  sys.addSubset(preimage("R", "g", symbol("P3")), symbol("P1"));
  Solver solver(sys, {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  EXPECT_EQ(sol.assignments.at("P2")->toString(), "equal(S)");
  EXPECT_EQ(sol.assignments.at("P3")->toString(), "equal(S)");
  EXPECT_EQ(sol.assignments.at("P1")->toString(),
            "(preimage(R, f, equal(S)) u preimage(R, g, equal(S)))");
}

TEST(SolverTest, ExternalCandidatePreferredOverEqual) {
  // Circuit-style hint: DISJ and COMP asserted on pn_private u pn_shared.
  System ext;
  ext.declareSymbol("pn_private", "rn", /*fixed=*/true);
  ext.declareSymbol("pn_shared", "rn", /*fixed=*/true);
  auto u = unionOf(symbol("pn_private"), symbol("pn_shared"));
  ext.addDisj(u, /*assumed=*/true);
  ext.addComp(u, "rn", /*assumed=*/true);

  System sys;
  sys.declareSymbol("P1", "rn");
  sys.addComp(symbol("P1"), "rn");
  sys.merge(ext, /*assumed=*/true);

  Solver solver(sys, {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  EXPECT_EQ(sol.assignments.at("P1")->toString(),
            "(pn_private u pn_shared)");
}

TEST(SolverTest, FixedSymbolsAreNeverAssigned) {
  System sys;
  sys.declareSymbol("pX", "R", /*fixed=*/true);
  sys.declareSymbol("P1", "R");
  sys.addComp(symbol("P1"), "R");
  Solver solver(sys, {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  EXPECT_FALSE(sol.assignments.contains("pX"));
}

TEST(SolverTest, SpmvFigure10Program) {
  // Figure 10b: P1 = equal(Y); P2 = image(P1, f_ID, Ranges);
  // P3 = IMAGE(P2, Ranges[.], Mat); P4 = image(P3, Mat[.].ind, X).
  System sys;
  sys.declareSymbol("P1", "Y");
  sys.addComp(symbol("P1"), "Y");
  sys.declareSymbol("P2", "Ranges");
  sys.addSubset(image(symbol("P1"), "f_ID", "Ranges"), symbol("P2"));
  sys.declareSymbol("P3", "Mat");
  sys.addSubset(image(image(symbol("P1"), "f_ID", "Ranges"),
                      "Ranges[.].span", "Mat"),
                symbol("P3"));
  sys.declareSymbol("P4", "X");
  sys.addSubset(image(symbol("P3"), "Mat[.].ind", "X"), symbol("P4"));

  Solver solver(sys, {"Ranges[.].span"});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  const std::string prog = sol.program().toString();
  EXPECT_NE(prog.find("P1 = equal(Y)"), std::string::npos);
  EXPECT_NE(prog.find("P2 = image(P1, f_ID, Ranges)"), std::string::npos);
  EXPECT_NE(prog.find("P3 = image(P2, Ranges[.].span, Mat)"),
            std::string::npos);
  EXPECT_NE(prog.find("P4 = image(P3, Mat[.].ind, X)"), std::string::npos);
}

TEST(SolverTest, UnsolvableRecursiveConstraintFails) {
  // Section 3.2's recursion example: image(P1, f, R) <= P1 with no fixed
  // partition provided is unsatisfiable in the constraint language.
  System sys;
  sys.declareSymbol("P1", "R");
  sys.addComp(symbol("P1"), "R");
  sys.addSubset(image(symbol("P1"), "f", "R"), symbol("P1"));
  Solver solver(sys, {});
  solver.setMaxSteps(5000);
  Solution sol = solver.solve();
  EXPECT_FALSE(sol.ok);
}

TEST(SolverTest, RecursiveConstraintWithFixedPartitionSolvable) {
  // PENNANT Hint2: recursive constraints on a *fixed* partition are fine —
  // they are user-asserted hypotheses, not synthesis obligations.
  System sys;
  sys.declareSymbol("rs_p", "rs", /*fixed=*/true);
  sys.addSubset(image(symbol("rs_p"), "mapss3", "rs"), symbol("rs_p"),
                /*assumed=*/true);
  sys.declareSymbol("P1", "rs");
  sys.addComp(symbol("P1"), "rs");
  sys.addComp(symbol("rs_p"), "rs", /*assumed=*/true);
  Solver solver(sys, {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  EXPECT_EQ(sol.assignments.at("P1")->toString(), "rs_p");
}

}  // namespace
}  // namespace dpart::constraint
