#include "constraint/unify.hpp"

#include <gtest/gtest.h>

#include "constraint/solver.hpp"

namespace dpart::constraint {
namespace {

using dpl::image;
using dpl::symbol;
using dpl::unionOf;

TEST(ConstraintGraph, ExtractsBothEdgeForms) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("P2", "R");
  sys.declareSymbol("P3", "S");
  sys.addSubset(symbol("P1"), symbol("P2"));
  sys.addSubset(image(symbol("P1"), "f", "S"), symbol("P3"));
  // Non-graph forms are ignored.
  sys.addSubset(dpl::preimage("R", "f", symbol("P3")), symbol("P1"));
  auto edges = constraintGraph(sys);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].from, "P1");
  EXPECT_EQ(edges[0].to, "P2");
  EXPECT_EQ(edges[0].label, "");
  EXPECT_EQ(edges[1].from, "P1");
  EXPECT_EQ(edges[1].to, "P3");
  EXPECT_EQ(edges[1].label, "f");
}

TEST(CollapsePlainEdges, Example4FoldsCenteredAccesses) {
  // Figure 6: P1 <= P2 and P1 <= P4 collapse onto P1 (Example 4).
  System sys;
  sys.declareSymbol("P1", "Particles");
  sys.addComp(symbol("P1"), "Particles");
  sys.declareSymbol("P2", "Particles");
  sys.addSubset(symbol("P1"), symbol("P2"));
  sys.declareSymbol("P3", "Cells");
  sys.addSubset(image(symbol("P1"), "f1", "Cells"), symbol("P3"));
  sys.declareSymbol("P4", "Particles");
  sys.addSubset(symbol("P1"), symbol("P4"));

  std::map<std::string, std::string> renames;
  collapsePlainEdges(sys, renames, {});
  EXPECT_EQ(renames.at("P2"), "P1");
  EXPECT_EQ(renames.at("P4"), "P1");
  EXPECT_FALSE(sys.hasSymbol("P2"));
  EXPECT_FALSE(sys.hasSymbol("P4"));
  EXPECT_TRUE(sys.hasSymbol("P3"));
  // Exactly the image edge remains.
  EXPECT_EQ(sys.subsets().size(), 1u);
}

TEST(CollapsePlainEdges, NeverEliminatesFixedPartitions) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("pExt", "R", /*fixed=*/true);
  sys.addSubset(symbol("P1"), symbol("pExt"));
  std::map<std::string, std::string> renames;
  collapsePlainEdges(sys, renames, {});
  EXPECT_TRUE(sys.hasSymbol("pExt"));
  EXPECT_TRUE(renames.empty());
}

// The paper's Figure 9: loop 1 yields P1 ->cell P2 ->h P3; loop 2 yields
// P4 (complete) ->h P5. Unification must produce P2 = P4 and P3 = P5.
TEST(UnifySystems, Figure9CommonSubgraph) {
  System c1;
  c1.declareSymbol("P1", "Particles");
  c1.addComp(symbol("P1"), "Particles");
  c1.declareSymbol("P2", "Cells");
  c1.addSubset(image(symbol("P1"), "cell", "Cells"), symbol("P2"));
  c1.declareSymbol("P3", "Cells");
  c1.addSubset(image(symbol("P2"), "h", "Cells"), symbol("P3"));

  System c2;
  c2.declareSymbol("P4", "Cells");
  c2.addComp(symbol("P4"), "Cells");
  c2.declareSymbol("P5", "Cells");
  c2.addSubset(image(symbol("P4"), "h", "Cells"), symbol("P5"));

  UnifyResult res = unifySystems({c1, c2}, {});
  // c1 is bigger, so P4/P5 are renamed into P2/P3.
  EXPECT_EQ(res.resolve("P4"), "P2");
  EXPECT_EQ(res.resolve("P5"), "P3");
  // The merged system has P2 complete (inherited from the iteration space
  // of loop 2) and only two image subsets.
  EXPECT_TRUE(res.system.requiresComp("P2"));
  EXPECT_EQ(res.system.subsets().size(), 2u);

  // Solving the unified system gives program B of Figure 2.
  Solver solver(res.system, {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  EXPECT_EQ(sol.assignments.at("P2")->toString(), "equal(Cells)");
  EXPECT_EQ(sol.assignments.at("P1")->toString(),
            "preimage(Particles, cell, equal(Cells))");
  EXPECT_EQ(sol.program().constructedPartitions(), 3u);
}

TEST(UnifySystems, InconsistentUnificationRejected) {
  // Section 3.2's recursion hazard: unifying P1 and P2 in
  // image(P1, f, R) <= P2 would create an unsatisfiable recursive
  // constraint, so the unifier must leave them distinct.
  System c1;
  c1.declareSymbol("P1", "R");
  c1.addComp(symbol("P1"), "R");
  c1.declareSymbol("P2", "R");
  c1.addSubset(image(symbol("P1"), "f", "R"), symbol("P2"));

  System c2;
  c2.declareSymbol("Q1", "R");
  c2.addComp(symbol("Q1"), "R");
  c2.declareSymbol("Q2", "R");
  c2.addSubset(image(symbol("Q1"), "f", "R"), symbol("Q2"));

  UnifyResult res = unifySystems({c1, c2}, {});
  // The isomorphic chains unify pairwise (P1=Q1, P2=Q2): consistent.
  EXPECT_EQ(res.resolve("Q1"), "P1");
  EXPECT_EQ(res.resolve("Q2"), "P2");
  // P1 and P2 themselves are never merged.
  EXPECT_TRUE(res.system.hasSymbol("P1"));
  EXPECT_TRUE(res.system.hasSymbol("P2"));
  Solver solver(res.system, {});
  EXPECT_TRUE(solver.solve().ok);
}

TEST(UnifySystems, Example6ExternalConstraint) {
  // Loop constraints (post-collapse): P1 ->cell P2 ->h P3, with
  // COMP(P1, Particles). External: pParticles ->cell pCells with both
  // fixed, pParticles asserted complete+disjoint.
  System loops;
  loops.declareSymbol("P1", "Particles");
  loops.addComp(symbol("P1"), "Particles");
  loops.declareSymbol("P2", "Cells");
  loops.addSubset(image(symbol("P1"), "cell", "Cells"), symbol("P2"));
  loops.declareSymbol("P3", "Cells");
  loops.addSubset(image(symbol("P2"), "h", "Cells"), symbol("P3"));

  System ext;
  ext.declareSymbol("pParticles", "Particles", /*fixed=*/true);
  ext.declareSymbol("pCells", "Cells", /*fixed=*/true);
  System extMarked;
  extMarked.merge(ext, /*assumed=*/true);
  extMarked.addSubset(image(symbol("pParticles"), "cell", "Cells"),
                      symbol("pCells"), /*assumed=*/true);
  extMarked.addComp(symbol("pParticles"), "Particles", /*assumed=*/true);
  extMarked.addDisj(symbol("pParticles"), /*assumed=*/true);

  UnifyResult res = unifySystems({loops, extMarked}, {});
  // Fixed symbols survive: P1 -> pParticles, P2 -> pCells.
  EXPECT_EQ(res.resolve("P1"), "pParticles");
  EXPECT_EQ(res.resolve("P2"), "pCells");

  Solver solver(res.system, {});
  Solution sol = solver.solve();
  ASSERT_TRUE(sol.ok) << sol.failure;
  // Only P3 needs construction: image(pCells, h, Cells) — the paper's
  // Example 6 outcome.
  EXPECT_EQ(sol.assignments.size(), 1u);
  EXPECT_EQ(sol.assignments.at("P3")->toString(),
            "image(pCells, h, Cells)");
}

TEST(UnifySystems, NoCommonSubgraphJustConjoins) {
  System c1;
  c1.declareSymbol("P1", "R");
  c1.addComp(symbol("P1"), "R");
  System c2;
  c2.declareSymbol("Q1", "S");
  c2.addComp(symbol("Q1"), "S");
  UnifyResult res = unifySystems({c1, c2}, {});
  EXPECT_TRUE(res.renames.empty());
  EXPECT_TRUE(res.system.hasSymbol("P1"));
  EXPECT_TRUE(res.system.hasSymbol("Q1"));
}

TEST(UnifySystems, RegionMismatchBlocksUnification) {
  System c1;
  c1.declareSymbol("P1", "R");
  c1.declareSymbol("P2", "S");
  c1.addSubset(image(symbol("P1"), "f", "S"), symbol("P2"));
  System c2;
  c2.declareSymbol("Q1", "T");  // different region: cannot unify with P1
  c2.declareSymbol("Q2", "S");
  c2.addSubset(image(symbol("Q1"), "f", "S"), symbol("Q2"));
  UnifyResult res = unifySystems({c1, c2}, {});
  EXPECT_FALSE(res.renames.contains("Q1"));
  EXPECT_TRUE(res.system.hasSymbol("Q1"));
}

TEST(UnifyResult, ResolveFollowsChains) {
  UnifyResult res;
  res.renames["A"] = "B";
  res.renames["B"] = "C";
  EXPECT_EQ(res.resolve("A"), "C");
  EXPECT_EQ(res.resolve("C"), "C");
  EXPECT_EQ(res.resolve("X"), "X");
}

}  // namespace
}  // namespace dpart::constraint
