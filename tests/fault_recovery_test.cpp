// The PR's acceptance test: randomized crash-recovery differential runs.
// Each generated program executes once fault-free and once under injected
// task faults (crashes mid-task, poisoned results, stragglers) with
// bounded-retry replay enabled; final region contents must be *bitwise*
// identical, across all four reduction strategies (Direct, Guarded,
// Buffered, PrivateSplit), and the partition legality verifier must pass
// after every replay.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <set>
#include <string>

#include "parallelize/parallelize.hpp"
#include "runtime/executor.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace dpart {
namespace {

using optimize::ReduceStrategy;
using region::FieldType;
using region::Index;
using region::World;

constexpr int kSteps = 2;

// Randomized sizes and field contents; region shapes keep f = i/3 exactly
// onto [0, |S|).
void buildWorld(World& w, std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const Index nS = 12 + static_cast<Index>(rng.below(9));
  const Index nR = 3 * nS;
  region::Region& r = w.addRegion("R", nR);
  r.addField("val", FieldType::F64);
  r.addField("tmp", FieldType::F64);
  region::Region& s = w.addRegion("S", nS);
  s.addField("acc", FieldType::F64);
  s.addField("acc2", FieldType::F64);
  w.defineAffineFn("f", "R", "S", [](Index i) { return i / 3; });
  w.defineAffineFn("g", "R", "S",
                   [nS](Index i) { return (i / 3 + 5) % nS; });
  for (const char* field : {"val", "tmp"}) {
    auto col = w.region("R").f64(field);
    for (std::size_t i = 0; i < col.size(); ++i) {
      col[i] = double(rng.range(-50, 50)) * 0.5;
    }
  }
  for (const char* field : {"acc", "acc2"}) {
    auto col = w.region("S").f64(field);
    for (std::size_t i = 0; i < col.size(); ++i) {
      col[i] = double(rng.range(-10, 10));
    }
  }
}

ir::ReduceOp opFor(std::uint64_t seed) {
  static constexpr ir::ReduceOp kOps[] = {ir::ReduceOp::Sum,
                                          ir::ReduceOp::Min,
                                          ir::ReduceOp::Max};
  return kOps[seed % 3];
}

// The single-loop shape from reduce_strategies_test, whose strategy the
// optimizer picks deterministically: one uncentered reduction (relaxable ->
// Guarded), optionally store-blocked (-> Direct), optionally through a
// second function (blocked -> PrivateSplit; with optimizations off ->
// Buffered).
ir::Program makeStrategyProgram(std::uint64_t seed, bool blockRelaxation,
                                bool twoReductions) {
  const ir::ReduceOp op = opFor(seed);
  ir::Program prog;
  prog.name = "strategy";
  ir::LoopBuilder b("scatter", "i", "R");
  b.loadF64("x", "R", "val", "i");
  b.apply("j", "f", "i");
  b.reduce("S", "acc", "j", "x", op);
  if (twoReductions) {
    b.apply("j2", "g", "i");
    b.reduce("S", "acc", "j2", "x", op);
  }
  if (blockRelaxation) {
    b.store("R", "val", "i", "x");  // idempotent, but blocks relaxation
  }
  prog.loops.push_back(b.build());
  return prog;
}

// A multi-loop integration program: a centered copy plus three scatter
// loops whose partition symbols unify across loops. Exercises replay with
// several loop launches per step and ownership-guarded centered writes.
ir::Program makeIntegrationProgram(std::uint64_t seed) {
  const ir::ReduceOp op1 = opFor(seed);
  const ir::ReduceOp op2 = opFor(seed / 3);
  ir::Program prog;
  prog.name = "resilience";
  {
    ir::LoopBuilder b("centered", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.store("R", "tmp", "i", "x");
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("gather", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.apply("j", "g", "i");
    b.reduce("S", "acc", "j", "x", op1);
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("blocked", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.apply("j", "f", "i");
    b.reduce("S", "acc2", "j", "x", op2);
    b.store("R", "val", "i", "x");
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("psplit", "i", "R");
    b.loadF64("x", "R", "tmp", "i");
    b.apply("j", "f", "i");
    b.reduce("S", "acc2", "j", "x", op1);
    b.apply("j2", "g", "i");
    b.reduce("S", "acc2", "j2", "x", op1);
    b.store("R", "tmp", "i", "x");
    prog.loops.push_back(b.build());
  }
  return prog;
}

void expectBitwiseEqual(World& want, World& got, const std::string& region,
                        const char* field) {
  auto a = want.region(region).f64(field);
  auto b = got.region(region).f64(field);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << region << "." << field << "[" << i << "] " << a[i]
        << " != " << b[i];
  }
}

// Runs `prog` once fault-free and once under injected faults with replay
// enabled; asserts replays actually happened, partitions stay legal, and
// every field ends bitwise identical. `poisonLoop` pins one deterministic
// Poison fault so at least one replay is guaranteed.
void runDifferential(std::uint64_t seed, const ir::Program& prog,
                     const parallelize::Options& popts,
                     const std::string& poisonLoop,
                     ReduceStrategy expected) {
  const std::size_t pieces = 2 + seed % 5;

  // Reference: the same parallel plan, executed fault-free.
  World clean;
  buildWorld(clean, seed);
  parallelize::AutoParallelizer apClean(clean, popts);
  parallelize::ParallelPlan planClean = apClean.plan(prog);
  runtime::PlanExecutor cleanExec(clean, planClean, pieces);
  for (int s = 0; s < kSteps; ++s) cleanExec.run();

  // Subject: identical world, plan and piece count, but every task family
  // armed with faults and the resilient replay path enabled. maxFires=3
  // per site with maxTaskRetries=5 guarantees every task converges.
  World faulty;
  buildWorld(faulty, seed);
  parallelize::AutoParallelizer apFaulty(faulty, popts);
  parallelize::ParallelPlan plan = apFaulty.plan(prog);

  for (const auto& loop : plan.loops) {
    for (const auto& [_, rp] : loop.reduces) {
      EXPECT_EQ(rp.strategy, expected)
          << "loop '" << loop.loop->name << "' got "
          << optimize::toString(rp.strategy);
    }
  }

  FaultInjector inj(seed);
  FaultSpec crash;
  crash.kind = FaultKind::Crash;
  crash.probability = 0.5;
  crash.maxFires = 3;
  inj.arm("task:", crash);
  FaultSpec poison;  // deterministic: guarantees at least one replay
  poison.kind = FaultKind::Poison;
  poison.afterArrivals = 1;
  poison.maxFires = 1;
  inj.arm("task:" + poisonLoop + ":0", poison);
  FaultSpec slow;  // stragglers shuffle timing but must not change results
  slow.kind = FaultKind::Straggler;
  slow.probability = 0.25;
  slow.stragglerMicros = 50;
  inj.arm("task:" + poisonLoop + ":1", slow);

  std::atomic<std::uint64_t> slept{0};
  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  opts.resilience.taskReplay = true;
  opts.resilience.maxTaskRetries = 5;
  opts.resilience.retryBackoffMicros = 1;
  opts.resilience.sleepMicros = [&slept](std::uint64_t us) {
    slept.fetch_add(us, std::memory_order_relaxed);
  };
  opts.verifyPartitions = true;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(faulty, plan, pieces, opts);
  for (int s = 0; s < kSteps; ++s) exec.run();

  EXPECT_GT(inj.totalFires(), 0u);
  EXPECT_GE(exec.taskReplays(), 1u);  // the pinned poison site at least
  EXPECT_NO_THROW(exec.verifyPartitions());  // legality after all replays

  // Injected stalls are accounted separately from real work and every
  // stall/backoff went through the hook, so the test never truly sleeps.
  const std::uint64_t stalls = exec.injectedStallMicros();
  EXPECT_EQ(stalls, 50 * inj.firesAt("task:" + poisonLoop + ":1"));
  EXPECT_GE(slept.load(), stalls + exec.taskReplays());

  expectBitwiseEqual(clean, faulty, "R", "val");
  expectBitwiseEqual(clean, faulty, "R", "tmp");
  expectBitwiseEqual(clean, faulty, "S", "acc");
  expectBitwiseEqual(clean, faulty, "S", "acc2");
}

class CrashRecovery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashRecovery, BitwiseIdenticalUnderGuarded) {
  runDifferential(GetParam(), makeStrategyProgram(GetParam(), false, false),
                  parallelize::Options{}, "scatter",
                  ReduceStrategy::Guarded);
}

TEST_P(CrashRecovery, BitwiseIdenticalUnderDirect) {
  runDifferential(GetParam(), makeStrategyProgram(GetParam(), true, false),
                  parallelize::Options{}, "scatter", ReduceStrategy::Direct);
}

TEST_P(CrashRecovery, BitwiseIdenticalUnderPrivateSplit) {
  runDifferential(GetParam(), makeStrategyProgram(GetParam(), true, true),
                  parallelize::Options{}, "scatter",
                  ReduceStrategy::PrivateSplit);
}

TEST_P(CrashRecovery, BitwiseIdenticalUnderBuffered) {
  parallelize::Options popts;
  popts.enableRelaxation = false;
  popts.enableDisjointReduction = false;
  popts.enablePrivateSubPartitions = false;
  runDifferential(GetParam(), makeStrategyProgram(GetParam(), true, true),
                  popts, "scatter", ReduceStrategy::Buffered);
}

TEST_P(CrashRecovery, BitwiseIdenticalAcrossUnifiedLoops) {
  // Multi-loop integration: unification merges partition symbols across the
  // four loops, so the exact per-loop strategies are an optimizer decision;
  // the replay invariants must hold regardless.
  const std::uint64_t seed = GetParam();
  const ir::Program prog = makeIntegrationProgram(seed);
  const std::size_t pieces = 2 + seed % 5;

  World clean;
  buildWorld(clean, seed);
  parallelize::AutoParallelizer apClean(clean);
  parallelize::ParallelPlan planClean = apClean.plan(prog);
  runtime::PlanExecutor cleanExec(clean, planClean, pieces);
  for (int s = 0; s < kSteps; ++s) cleanExec.run();

  World faulty;
  buildWorld(faulty, seed);
  parallelize::AutoParallelizer apFaulty(faulty);
  parallelize::ParallelPlan plan = apFaulty.plan(prog);

  FaultInjector inj(seed);
  FaultSpec crash;
  crash.kind = FaultKind::Crash;
  crash.probability = 0.5;
  crash.maxFires = 3;
  inj.arm("task:", crash);
  FaultSpec poison;
  poison.kind = FaultKind::Poison;
  poison.afterArrivals = 1;
  poison.maxFires = 1;
  inj.arm("task:centered:0", poison);

  std::atomic<std::uint64_t> slept{0};
  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  opts.resilience.taskReplay = true;
  opts.resilience.maxTaskRetries = 5;
  opts.resilience.retryBackoffMicros = 1;
  opts.resilience.sleepMicros = [&slept](std::uint64_t us) {
    slept.fetch_add(us, std::memory_order_relaxed);
  };
  opts.verifyPartitions = true;
  opts.validateAccesses = true;
  runtime::PlanExecutor exec(faulty, plan, pieces, opts);
  for (int s = 0; s < kSteps; ++s) exec.run();

  EXPECT_GE(exec.taskReplays(), 1u);
  EXPECT_GE(slept.load(), exec.taskReplays());  // backoff used the hook
  EXPECT_NO_THROW(exec.verifyPartitions());
  expectBitwiseEqual(clean, faulty, "R", "val");
  expectBitwiseEqual(clean, faulty, "R", "tmp");
  expectBitwiseEqual(clean, faulty, "S", "acc");
  expectBitwiseEqual(clean, faulty, "S", "acc2");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecovery,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace dpart
