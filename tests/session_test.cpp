#include "runtime/session.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "ir/interp.hpp"
#include "support/fault.hpp"
#include "support/json.hpp"

namespace dpart {
namespace {

namespace fs = std::filesystem;

constexpr region::Index kParticles = 600;
constexpr region::Index kCells = 60;

// The Figure 1 pair of loops — two launches per run(), pointer and affine
// index functions, a reduction — enough surface to exercise every traced
// layer.
void buildWorld(region::World& world) {
  auto& particles = world.addRegion("Particles", kParticles);
  auto& cells = world.addRegion("Cells", kCells);
  particles.addField("cell", region::FieldType::Idx);
  particles.addField("pos", region::FieldType::F64);
  cells.addField("vel", region::FieldType::F64);
  cells.addField("acc", region::FieldType::F64);
  auto cell = particles.idx("cell");
  for (region::Index p = 0; p < kParticles; ++p) {
    cell[static_cast<std::size_t>(p)] = (p * 13) % kCells;
  }
  auto vel = cells.f64("vel");
  auto acc = cells.f64("acc");
  for (region::Index c = 0; c < kCells; ++c) {
    vel[static_cast<std::size_t>(c)] = 0.25 * double(c % 5);
    acc[static_cast<std::size_t>(c)] = 0.125 * double(c % 3);
  }
  world.defineFieldFn("Particles", "cell", "Cells");
  world.defineAffineFn("h", "Cells", "Cells",
                       [](region::Index c) { return (c + 1) % kCells; });
}

ir::Program makeProgram() {
  ir::Program prog;
  prog.name = "session_test";
  {
    ir::LoopBuilder b("update_particles", "p", "Particles");
    b.loadIdx("c", "Particles", "cell", "p");
    b.loadF64("v1", "Cells", "vel", "c");
    b.apply("c2", "h", "c");
    b.loadF64("v2", "Cells", "vel", "c2");
    b.compute("dp", {"v1", "v2"}, [](auto v) { return v[0] + 0.5 * v[1]; });
    b.reduce("Particles", "pos", "p", "dp");
    prog.loops.push_back(b.build());
  }
  {
    ir::LoopBuilder b("update_cells", "c", "Cells");
    b.loadF64("a1", "Cells", "acc", "c");
    b.apply("c2", "h", "c");
    b.loadF64("a2", "Cells", "acc", "c2");
    b.compute("dv", {"a1", "a2"}, [](auto v) { return v[0] - v[1]; });
    b.reduce("Cells", "vel", "c", "dv");
    prog.loops.push_back(b.build());
  }
  return prog;
}

bool bitwiseEqual(region::World& a, region::World& b,
                  const std::string& regionName, const char* field) {
  auto x = a.region(regionName).f64(field);
  auto y = b.region(regionName).f64(field);
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(x[i]) !=
        std::bit_cast<std::uint64_t>(y[i])) {
      return false;
    }
  }
  return true;
}

std::set<std::string> spanNames(const Tracer& tracer) {
  std::set<std::string> names;
  for (const TraceEvent& e : tracer.events()) names.insert(e.name);
  return names;
}

TEST(Session, BuilderRequiresPieces) {
  region::World world;
  buildWorld(world);
  EXPECT_THROW((void)Session::parallelize(makeProgram()).build(world), Error);
}

// The core API-redesign guarantee: the facade is pure wiring. A Session run
// must produce bitwise-identical fields to driving AutoParallelizer and
// PlanExecutor by hand with the same options.
TEST(Session, MatchesManualWiringBitwise) {
  const ir::Program prog = makeProgram();
  constexpr std::size_t kPieces = 4;

  region::World manualWorld;
  buildWorld(manualWorld);
  runtime::ExecOptions opts;
  opts.validateAccesses = true;
  parallelize::AutoParallelizer ap(manualWorld);
  parallelize::ParallelPlan manualPlan = ap.plan(prog);
  runtime::PlanExecutor exec(manualWorld, manualPlan, kPieces, opts);
  exec.run();
  exec.run();

  region::World sessionWorld;
  buildWorld(sessionWorld);
  Session session = Session::parallelize(prog)
                        .pieces(kPieces)
                        .options(opts)
                        .run(sessionWorld);
  session.run();

  EXPECT_TRUE(bitwiseEqual(manualWorld, sessionWorld, "Particles", "pos"));
  EXPECT_TRUE(bitwiseEqual(manualWorld, sessionWorld, "Cells", "vel"));
  EXPECT_EQ(session.plan().dpl.toString(), manualPlan.dpl.toString());
  EXPECT_EQ(session.executor().launchesDone(), exec.launchesDone());
}

TEST(Session, PlansOnceAndPersistsExecutorAcrossRuns) {
  region::World world;
  buildWorld(world);
  Session session =
      Session::parallelize(makeProgram()).pieces(4).build(world);
  EXPECT_EQ(session.executor().launchesDone(), 0u);
  session.run();
  session.run();
  session.run();
  EXPECT_EQ(session.executor().launchesDone(),
            3u * session.plan().loops.size());
  EXPECT_EQ(session.stats().parallelLoops, 2);
}

TEST(Session, TraceCoversEveryLayer) {
  region::World world;
  buildWorld(world);
  runtime::ExecOptions opts;
  opts.observability.trace = true;
  Session session = Session::parallelize(makeProgram())
                        .pieces(4)
                        .options(opts)
                        .run(world);

  ASSERT_NE(session.tracer(), nullptr);
  const std::set<std::string> names = spanNames(*session.tracer());
  // Analysis phases (the paper's Table 1 rows).
  for (const char* phase : {"compile", "phase.infer", "phase.relax",
                            "phase.unify", "phase.solve", "phase.synthesize"}) {
    EXPECT_TRUE(names.contains(phase)) << "missing span " << phase;
  }
  // Runtime layer.
  for (const char* span :
       {"preparePartitions", "run", "launch:update_particles",
        "launch:update_cells", "task:update_particles", "task:update_cells"}) {
    EXPECT_TRUE(names.contains(span)) << "missing span " << span;
  }
  // DPL operator kernels: the plan for Figure 1 at least builds equal and
  // image partitions.
  EXPECT_TRUE(names.contains("dpl:equal")) << "missing dpl op span";
  EXPECT_TRUE(names.contains("dpl:image")) << "missing dpl op span";

  // The trace aggregation reconstructs per-phase totals.
  const auto totals = session.tracer()->spanTotalsMs();
  EXPECT_GE(totals.at("compile"), totals.at("phase.infer"));

  // And the whole document is valid Chrome trace JSON.
  EXPECT_NO_THROW(json::parse(session.tracer()->toChromeJson()));
}

TEST(Session, MetricsPublishCompileAndExecutorGauges) {
  region::World world;
  buildWorld(world);
  Session session =
      Session::parallelize(makeProgram()).pieces(4).run(world);

  MetricsRegistry& mx = session.metrics();
  EXPECT_GE(mx.gauge("compile.inferMs").value(), 0.0);
  EXPECT_GE(mx.gauge("compile.unifyMs").value(), 0.0);
  EXPECT_GE(mx.gauge("compile.solveMs").value(), 0.0);
  EXPECT_GE(mx.gauge("compile.rewriteMs").value(), 0.0);
  EXPECT_DOUBLE_EQ(mx.gauge("compile.parallelLoops").value(), 2.0);
  EXPECT_DOUBLE_EQ(mx.gauge("executor.launchesDone").value(), 2.0);
  EXPECT_DOUBLE_EQ(mx.gauge("executor.pieces").value(), 4.0);
  EXPECT_GE(mx.gauge("dpl.op.calls", {{"op", "image"}}).value(), 1.0);
}

TEST(Session, ErrorsCarrySpanIdsAndCountIntoMetrics) {
  region::World world;
  buildWorld(world);

  FaultInjector injector(7);
  FaultSpec crash;
  crash.kind = FaultKind::Crash;
  crash.afterArrivals = 1;
  crash.maxFires = 1;
  injector.arm("task:update_particles:1", crash);

  runtime::ExecOptions opts;
  opts.observability.trace = true;
  opts.resilience.taskReplay = true;
  opts.resilience.maxTaskRetries = 2;
  opts.resilience.faultInjector = &injector;
  Session session = Session::parallelize(makeProgram())
                        .pieces(4)
                        .options(opts)
                        .run(world);

  EXPECT_EQ(session.executor().taskReplays(), 1u);
  EXPECT_EQ(
      session.metrics().counter("errorsTotal", {{"kind", "TaskFailure"}})
          .value(),
      1u);
  EXPECT_DOUBLE_EQ(session.metrics().gauge("executor.taskReplays").value(),
                   1.0);

  // The replay shows up on the timeline as an instant with its fault site.
  bool sawReplay = false;
  for (const TraceEvent& e : session.tracer()->events()) {
    if (e.phase == TraceEvent::Phase::Instant && e.name == "task.replay") {
      sawReplay = true;
      EXPECT_NE(e.args.find("task:update_particles:1"), std::string::npos)
          << e.args;
    }
  }
  EXPECT_TRUE(sawReplay);

  // Results still match serial despite the injected crash.
  region::World serial;
  buildWorld(serial);
  ir::runSerial(serial, makeProgram());
  auto got = world.region("Particles").f64("pos");
  auto want = serial.region("Particles").f64("pos");
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-12);
  }
}

TEST(Session, WritesTraceAndMetricsArtifacts) {
  const fs::path traceFile =
      fs::temp_directory_path() / "dpart_session_trace.json";
  const fs::path metricsFile =
      fs::temp_directory_path() / "dpart_session_metrics.json";
  fs::remove(traceFile);
  fs::remove(metricsFile);

  region::World world;
  buildWorld(world);
  runtime::ExecOptions opts;
  opts.observability.traceFile = traceFile.string();
  opts.observability.metricsFile = metricsFile.string();
  Session session = Session::parallelize(makeProgram())
                        .pieces(4)
                        .options(opts)
                        .run(world);

  auto slurp = [](const fs::path& p) {
    std::ifstream in(p);
    EXPECT_TRUE(in.good()) << p;
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const json::Value trace = json::parse(slurp(traceFile));
  EXPECT_FALSE(trace.at("traceEvents").items.empty());
  const json::Value metrics = json::parse(slurp(metricsFile));
  EXPECT_FALSE(metrics.at("metrics").items.empty());

  // Artifacts are rewritten after every run (latest run wins).
  const std::size_t eventsAfterFirst = trace.at("traceEvents").items.size();
  session.run();
  const json::Value trace2 = json::parse(slurp(traceFile));
  EXPECT_GT(trace2.at("traceEvents").items.size(), eventsAfterFirst);

  fs::remove(traceFile);
  fs::remove(metricsFile);
}

TEST(Session, BorrowedObservabilityInstancesAreUsedNotOwned) {
  Tracer tracer;
  MetricsRegistry metrics;
  region::World world;
  buildWorld(world);

  runtime::ExecOptions opts;
  opts.observability.trace = true;
  opts.observability.tracer = &tracer;
  opts.observability.metrics = &metrics;
  {
    Session session = Session::parallelize(makeProgram())
                          .pieces(4)
                          .options(opts)
                          .run(world);
    EXPECT_EQ(session.tracer(), &tracer);
    EXPECT_EQ(&session.metrics(), &metrics);
  }
  // The caller-owned instances outlive the session with the data intact.
  EXPECT_GT(tracer.size(), 0u);
  EXPECT_GE(metrics.gauge("compile.parallelLoops").value(), 2.0);
}

}  // namespace
}  // namespace dpart
