// FaultInjector semantics (determinism, arrival triggers, fire bounds,
// prefix matching), the error taxonomy's context rendering, the thread
// pool's fail-fast behavior, and fault sites in the DPL evaluator and the
// executor when resilience is *off*.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "dpl/evaluator.hpp"
#include "ir/ir.hpp"
#include "parallelize/parallelize.hpp"
#include "region/world.hpp"
#include "runtime/executor.hpp"
#include "support/fault.hpp"
#include "support/thread_pool.hpp"

namespace dpart {
namespace {

using region::FieldType;
using region::Index;
using region::World;

FaultSpec crashSpec(double probability) {
  FaultSpec spec;
  spec.kind = FaultKind::Crash;
  spec.probability = probability;
  return spec;
}

TEST(FaultInjector, SameSeedSamePattern) {
  FaultInjector a(7), b(7), c(8);
  for (FaultInjector* inj : {&a, &b, &c}) {
    inj->arm("task:", crashSpec(0.4));
  }
  std::vector<bool> pa, pb, pc;
  for (int i = 0; i < 64; ++i) {
    pa.push_back(a.fire("task:flux:3").has_value());
    pb.push_back(b.fire("task:flux:3").has_value());
    pc.push_back(c.fire("task:flux:3").has_value());
  }
  EXPECT_EQ(pa, pb);  // decisions are pure in (seed, site, arrival)
  EXPECT_NE(pa, pc);  // and actually depend on the seed
  EXPECT_EQ(a.totalFires(), b.totalFires());
  EXPECT_GT(a.totalFires(), 0u);   // p=0.4 over 64 arrivals
  EXPECT_LT(a.totalFires(), 64u);
}

TEST(FaultInjector, AfterArrivalsFiresOnExactlyTheNthArrival) {
  FaultInjector inj(1);
  FaultSpec spec;
  spec.afterArrivals = 3;
  inj.arm("task:", spec);
  for (std::uint64_t n = 1; n <= 10; ++n) {
    EXPECT_EQ(inj.fire("task:a:0").has_value(), n == 3) << "arrival " << n;
  }
  EXPECT_EQ(inj.arrivals("task:a:0"), 10u);
  EXPECT_EQ(inj.totalFires(), 1u);
}

TEST(FaultInjector, MaxFiresBoundsEachConcreteSite) {
  FaultInjector inj(1);
  FaultSpec spec = crashSpec(1.0);
  spec.maxFires = 2;
  inj.arm("task:", spec);
  for (int n = 0; n < 5; ++n) inj.fire("task:a:0");
  for (int n = 0; n < 5; ++n) inj.fire("task:a:1");
  // The bound is per concrete site, not per armed prefix: with maxFires=2 a
  // retrying executor needs at most 2 replays of any one task.
  EXPECT_EQ(inj.firesAt("task:a:0"), 2u);
  EXPECT_EQ(inj.firesAt("task:a:1"), 2u);
  EXPECT_EQ(inj.firesAt("task:"), 4u);
  EXPECT_EQ(inj.totalFires(), 4u);
}

TEST(FaultInjector, LongestArmedPrefixWins) {
  FaultInjector inj(1);
  inj.arm("task:", crashSpec(0.0));      // blanket: never fire
  inj.arm("task:flux:1", crashSpec(1.0));  // pin one task: always fire
  EXPECT_FALSE(inj.fire("task:flux:0").has_value());
  EXPECT_TRUE(inj.fire("task:flux:1").has_value());
  EXPECT_FALSE(inj.fire("loop:flux").has_value());  // unarmed family
  inj.disarm("task:flux:1");
  EXPECT_FALSE(inj.fire("task:flux:1").has_value());
}

TEST(FaultInjector, EmptyPrefixMatchesEverySite) {
  FaultInjector inj(1);
  inj.arm("", crashSpec(1.0));
  EXPECT_TRUE(inj.fire("dpl:image").has_value());
  EXPECT_TRUE(inj.fire("anything").has_value());
}

TEST(FaultInjector, StragglerCarriesStallAndMagnitude) {
  FaultInjector inj(1);
  FaultSpec spec;
  spec.kind = FaultKind::Straggler;
  spec.stragglerMicros = 123;
  inj.arm("task:", spec);
  auto fault = inj.fire("task:a:0");
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultKind::Straggler);
  EXPECT_EQ(fault->stragglerMicros, 123u);
  EXPECT_GE(fault->magnitude, 0.0);
  EXPECT_LT(fault->magnitude, 1.0);
}

TEST(ErrorTaxonomy, ContextRendersOnlySetFields) {
  ErrorContext ctx;
  ctx.site = "task:flux:3";
  ctx.loop = "flux";
  ctx.piece = 3;
  ctx.attempt = 1;
  TaskFailure failure("boom", ctx);
  const std::string what = failure.what();
  EXPECT_NE(what.find("boom"), std::string::npos);
  EXPECT_NE(what.find("site=task:flux:3"), std::string::npos);
  EXPECT_NE(what.find("loop=flux"), std::string::npos);
  EXPECT_NE(what.find("piece=3"), std::string::npos);
  EXPECT_NE(what.find("attempt=1"), std::string::npos);
  EXPECT_EQ(what.find("field="), std::string::npos);  // unset: omitted
  EXPECT_EQ(failure.context().piece, 3);

  EXPECT_STREQ(TaskFailure("bare").what(), "bare");  // empty context: no brackets

  // Every taxonomy member is catchable as dpart::Error, so pre-existing
  // EXPECT_THROW(..., Error) call sites keep passing.
  static_assert(std::is_base_of_v<Error, TaskFailure>);
  static_assert(std::is_base_of_v<Error, PartitionViolation>);
  static_assert(std::is_base_of_v<Error, EvalFailure>);
}

TEST(ThreadPoolFailFast, RemainingIndicesAreNotClaimedAfterAnError) {
  ThreadPool pool(4);
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(pool.parallelFor(100000,
                                [&](std::size_t) {
                                  executed.fetch_add(1);
                                  throw Error("boom");
                                }),
               Error);
  // Each participant (workers + the caller) can claim at most one index
  // before the first failure publishes next_ = jobSize_.
  EXPECT_LE(executed.load(), pool.threadCount() + 1);
}

TEST(ThreadPoolFailFast, PoolIsReusableAfterAFailedJob) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallelFor(8, [](std::size_t) { throw Error("boom"); }), Error);
  std::atomic<std::size_t> executed{0};
  pool.parallelFor(16, [&](std::size_t) { executed.fetch_add(1); });
  EXPECT_EQ(executed.load(), 16u);
}

TEST(EvaluatorFaults, CrashAtOperatorSiteThrowsEvalFailureWithSite) {
  World w;
  w.addRegion("R", 12);
  w.defineAffineFn("f", "R", "R", [](Index i) { return i; });
  FaultInjector inj(3);
  FaultSpec spec;
  spec.afterArrivals = 1;
  inj.arm("dpl:image", spec);

  dpl::Program prog;
  prog.append("P", dpl::equalOf("R"));
  prog.append("Q", dpl::image(dpl::symbol("P"), "f", "R"));
  dpl::Evaluator eval(w, 3);
  eval.setFaultInjector(&inj);
  try {
    eval.run(prog);
    FAIL() << "expected EvalFailure";
  } catch (const EvalFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("site=dpl:image"), std::string::npos);
    EXPECT_NE(what.find("injected fault"), std::string::npos);
  }
  // equal() evaluated before the crash site and was untouched.
  EXPECT_TRUE(eval.has("P"));
}

TEST(EvaluatorFaults, StatementFailuresNameTheStatement) {
  World w;
  w.addRegion("R", 8);
  dpl::Program prog;
  prog.append("Y", dpl::unionOf(dpl::symbol("X"), dpl::symbol("X")));
  dpl::Evaluator eval(w, 2);
  try {
    eval.run(prog);
    FAIL() << "expected EvalFailure";
  } catch (const EvalFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("evaluating DPL statement 'Y"), std::string::npos);
    EXPECT_NE(what.find("unbound partition symbol 'X'"), std::string::npos);
  }
}

// A tiny centered pipeline: one loop copying R.val into R.tmp. Its plan has
// a disjoint+complete iteration partition, which the poisoned evaluator
// result must violate.
struct CenteredCase {
  World world;
  parallelize::ParallelPlan plan;

  CenteredCase() {
    region::Region& r = world.addRegion("R", 24);
    r.addField("val", FieldType::F64);
    r.addField("tmp", FieldType::F64);
    auto val = world.region("R").f64("val");
    for (std::size_t i = 0; i < val.size(); ++i) val[i] = double(i);
    ir::Program prog;
    prog.name = "centered";
    ir::LoopBuilder b("copy", "i", "R");
    b.loadF64("x", "R", "val", "i");
    b.store("R", "tmp", "i", "x");
    prog.loops.push_back(b.build());
    parallelize::AutoParallelizer ap(world);
    plan = ap.plan(prog);
  }
};

TEST(EvaluatorFaults, PoisonedPartitionIsCaughtByTheVerifier) {
  CenteredCase c;
  FaultInjector inj(11);
  FaultSpec spec;
  spec.kind = FaultKind::Poison;
  spec.afterArrivals = 1;
  inj.arm("dpl:", spec);

  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  opts.verifyPartitions = true;
  runtime::PlanExecutor exec(c.world, c.plan, 4, opts);
  EXPECT_THROW(exec.preparePartitions(), PartitionViolation);
  EXPECT_GT(inj.totalFires(), 0u);
}

TEST(ExecutorFaults, CrashWithoutResilienceAbortsTheRun) {
  CenteredCase c;
  FaultInjector inj(5);
  FaultSpec spec = crashSpec(1.0);
  spec.maxFires = 1;
  inj.arm("task:", spec);
  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  runtime::PlanExecutor exec(c.world, c.plan, 4, opts);
  EXPECT_THROW(exec.run(), TaskFailure);
  EXPECT_EQ(exec.taskReplays(), 0u);
}

TEST(ExecutorFaults, RetryExhaustionWrapsTheLastFailure) {
  CenteredCase c;
  FaultInjector inj(5);
  inj.arm("task:copy:0", crashSpec(1.0));  // unbounded fires on one task
  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  opts.resilience.taskReplay = true;
  opts.resilience.maxTaskRetries = 2;
  runtime::PlanExecutor exec(c.world, c.plan, 4, opts);
  try {
    exec.run();
    FAIL() << "expected TaskFailure";
  } catch (const TaskFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("task failed after 3 attempt(s)"), std::string::npos);
    EXPECT_NE(what.find("task:copy:0"), std::string::npos);
  }
}

TEST(ExecutorFaults, LoopSiteCrashFailsBeforeAnyMutation) {
  CenteredCase c;
  FaultInjector inj(5);
  FaultSpec spec = crashSpec(1.0);
  inj.arm("loop:copy", spec);
  runtime::ExecOptions opts;
  opts.resilience.faultInjector = &inj;
  runtime::PlanExecutor exec(c.world, c.plan, 4, opts);
  EXPECT_THROW(exec.run(), TaskFailure);
  auto tmp = c.world.region("R").f64("tmp");
  for (std::size_t i = 0; i < tmp.size(); ++i) {
    EXPECT_EQ(tmp[i], 0.0) << "loop-site faults fire before launch";
  }
}

}  // namespace
}  // namespace dpart
