#include "constraint/system.hpp"

#include <gtest/gtest.h>

#include "constraint/graphviz.hpp"
#include "support/check.hpp"

namespace dpart::constraint {
namespace {

using dpl::equalOf;
using dpl::image;
using dpl::preimage;
using dpl::symbol;

TEST(System, DeclareAndQuerySymbols) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("pX", "S", /*fixed=*/true);
  EXPECT_TRUE(sys.hasSymbol("P1"));
  EXPECT_FALSE(sys.hasSymbol("P2"));
  EXPECT_EQ(sys.regionOf("P1"), "R");
  EXPECT_FALSE(sys.isFixed("P1"));
  EXPECT_TRUE(sys.isFixed("pX"));
  EXPECT_EQ(sys.symbols(), (std::set<std::string>{"P1", "pX"}));
  EXPECT_EQ(sys.openSymbols(), (std::set<std::string>{"P1"}));
  EXPECT_THROW((void)sys.regionOf("nope"), Error);
}

TEST(System, RedeclareSameRegionIsIdempotent) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("P1", "R");
  EXPECT_EQ(sys.preds().size(), 1u);  // one PART pred, not two
  EXPECT_THROW(sys.declareSymbol("P1", "S"), Error);
}

TEST(System, RedeclareCanPromoteToFixed) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("P1", "R", /*fixed=*/true);
  EXPECT_TRUE(sys.isFixed("P1"));
}

TEST(System, RequiresDisjCompAreSymbolSpecific) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("P2", "R");
  sys.addDisj(symbol("P1"));
  sys.addComp(symbol("P2"), "R");
  // DISJ on a non-symbol expression does not mark the symbols inside it.
  sys.addDisj(dpl::unionOf(symbol("P1"), symbol("P2")));
  EXPECT_TRUE(sys.requiresDisj("P1"));
  EXPECT_FALSE(sys.requiresDisj("P2"));
  EXPECT_TRUE(sys.requiresComp("P2"));
  EXPECT_FALSE(sys.requiresComp("P1"));
}

TEST(System, MergeMarksAssumed) {
  System ext;
  ext.declareSymbol("pX", "R");
  ext.addComp(symbol("pX"), "R");
  ext.addSubset(symbol("pX"), symbol("pX"));

  System sys;
  sys.declareSymbol("P1", "R");
  sys.merge(ext, /*assumed=*/true);
  EXPECT_TRUE(sys.isFixed("pX"));  // assumed merge fixes the symbols
  bool sawAssumedComp = false;
  for (const Pred& p : sys.preds()) {
    if (p.kind == Pred::Kind::Comp) sawAssumedComp = p.assumed;
  }
  EXPECT_TRUE(sawAssumedComp);
  ASSERT_EQ(sys.subsets().size(), 1u);
  EXPECT_TRUE(sys.subsets()[0].assumed);
}

TEST(System, SubstitutedGroundsAndDropsTautologies) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("P2", "S");
  sys.addComp(symbol("P1"), "R");
  sys.addSubset(image(symbol("P1"), "f", "S"), symbol("P2"));
  sys.addSubset(symbol("P1"), symbol("P1"));  // tautology

  System g = sys.substituted({{"P1", equalOf("R")}});
  EXPECT_FALSE(g.hasSymbol("P1"));
  EXPECT_TRUE(g.hasSymbol("P2"));
  // The tautology vanished; the image subset got grounded.
  ASSERT_EQ(g.subsets().size(), 1u);
  EXPECT_EQ(g.subsets()[0].toString(), "image(equal(R), f, S) <= P2");
  // COMP obligation survives, grounded.
  bool sawComp = false;
  for (const Pred& p : g.preds()) {
    if (p.kind == Pred::Kind::Comp) {
      sawComp = true;
      EXPECT_EQ(p.expr->toString(), "equal(R)");
    }
  }
  EXPECT_TRUE(sawComp);
}

TEST(System, SubstitutedDeduplicates) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("P2", "R");
  sys.addSubset(symbol("P1"), symbol("P2"));
  sys.addSubset(symbol("P1"), symbol("P2"));
  System g = sys.substituted({});
  EXPECT_EQ(g.subsets().size(), 1u);
}

TEST(System, RenameSymbolMergesDeclarations) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("P2", "R");
  sys.addComp(symbol("P2"), "R");
  sys.addSubset(image(symbol("P2"), "f", "R"), symbol("P1"));
  sys.renameSymbol("P2", "P1");
  EXPECT_FALSE(sys.hasSymbol("P2"));
  EXPECT_TRUE(sys.requiresComp("P1"));
  ASSERT_EQ(sys.subsets().size(), 1u);
  EXPECT_EQ(sys.subsets()[0].toString(), "image(P1, f, R) <= P1");
}

TEST(System, RenameAcrossRegionsThrows) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("P2", "S");
  EXPECT_THROW(sys.renameSymbol("P2", "P1"), Error);
}

TEST(System, DepthFollowsSubsetChains) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("P2", "S");
  sys.declareSymbol("P3", "T");
  sys.addSubset(image(symbol("P1"), "f", "S"), symbol("P2"));
  sys.addSubset(image(symbol("P2"), "g", "T"), symbol("P3"));
  EXPECT_EQ(sys.depth("P1"), 0);
  EXPECT_EQ(sys.depth("P2"), 1);
  EXPECT_EQ(sys.depth("P3"), 2);
}

TEST(System, DepthTerminatesOnRecursiveConstraints) {
  // PENNANT Hint2's recursive external constraint must not hang depth().
  System sys;
  sys.declareSymbol("rs_p", "rs", /*fixed=*/true);
  sys.addSubset(image(symbol("rs_p"), "mapss3", "rs"), symbol("rs_p"));
  EXPECT_GE(sys.depth("rs_p"), 0);  // just has to return
}

TEST(System, ToStringListsEverything) {
  System sys;
  sys.declareSymbol("P1", "R");
  sys.declareSymbol("pX", "R", /*fixed=*/true);
  sys.addComp(symbol("P1"), "R");
  sys.addSubset(symbol("pX"), symbol("P1"));
  const std::string s = sys.toString();
  EXPECT_NE(s.find("P1 : partition of R"), std::string::npos);
  EXPECT_NE(s.find("fixed pX"), std::string::npos);
  EXPECT_NE(s.find("COMP(P1, R)"), std::string::npos);
  EXPECT_NE(s.find("pX <= P1"), std::string::npos);
}

TEST(SymbolGen, FreshNamesAreSequentialAndPrefixed) {
  SymbolGen gen;
  EXPECT_EQ(gen.fresh(), "P1");
  EXPECT_EQ(gen.fresh(), "P2");
  SymbolGen custom("Q");
  EXPECT_EQ(custom.fresh(), "Q1");
}

// ---- Graphviz export ----

TEST(Graphviz, RendersFigure1cStyleGraph) {
  System sys;
  sys.declareSymbol("P1", "Particles");
  sys.addComp(symbol("P1"), "Particles");
  sys.declareSymbol("P2", "Cells");
  sys.addSubset(image(symbol("P1"), "cell", "Cells"), symbol("P2"));
  sys.declareSymbol("P3", "Cells");
  sys.addSubset(image(symbol("P2"), "h", "Cells"), symbol("P3"));
  sys.declareSymbol("pExt", "Cells", /*fixed=*/true);
  sys.addDisj(symbol("pExt"));
  sys.addSubset(preimage("Particles", "cell", symbol("pExt")), symbol("P1"));

  const std::string dot = toGraphviz(sys, "fig1c");
  EXPECT_NE(dot.find("digraph \"fig1c\""), std::string::npos);
  // Complete iteration partition is shaded.
  EXPECT_NE(dot.find("\"P1\" [label=\"P1\\nParticles\", style=filled"),
            std::string::npos);
  // Fixed partitions are boxes; DISJ gets double peripheries.
  EXPECT_NE(dot.find("\"pExt\" [label=\"pExt\\nCells\", shape=box, "
                     "peripheries=2]"),
            std::string::npos);
  // Labeled image edges.
  EXPECT_NE(dot.find("\"P1\" -> \"P2\" [label=\"cell\"];"),
            std::string::npos);
  EXPECT_NE(dot.find("\"P2\" -> \"P3\" [label=\"h\"];"), std::string::npos);
  // The preimage subset appears as an annotation.
  EXPECT_NE(dot.find("shape=note"), std::string::npos);
  EXPECT_NE(dot.find("preimage(Particles, cell, pExt) <= P1"),
            std::string::npos);
}

TEST(Graphviz, EscapesQuotes) {
  System sys;
  sys.declareSymbol("P\"1", "R");
  const std::string dot = toGraphviz(sys);
  EXPECT_NE(dot.find("P\\\"1"), std::string::npos);
}

}  // namespace
}  // namespace dpart::constraint
