#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "constraint/vocab.hpp"
#include "ir/ir.hpp"
#include "region/world.hpp"
#include "support/check.hpp"
#include "support/serialize.hpp"

namespace dpart::service {

/// Wire protocol of the plan service (docs/service.md).
///
/// Every message travels as one "DPMG" CRC-framed message (support/framing,
/// the layer shared with the multi-process backend) on an AF_UNIX or
/// loopback TCP stream socket. The service owns the type range [32, 37];
/// the backend owns [1, 7] — the ranges are disjoint so a frame from the
/// wrong protocol is rejected at the frame layer, before any payload
/// decoding.
///
/// A parallelize request carries the tenant id, the compiler knobs, the
/// serialized loop IR and the region/function *shapes* of the requester's
/// World. Shapes suffice: the constraint pipeline is symbolic — it consults
/// region sizes, field types and function domains/codomains, never field
/// values or function semantics — so Compute closures and affine-function
/// bodies do not travel, and the server compiles against a placeholder
/// materialization. The response is the plan: the synthesized DPL program,
/// per-loop partition assignments, compile stats and the canonical cache
/// key. Failures travel as (ErrorCode, what) pairs and are rethrown as the
/// matching dpart::Error taxonomy subclass client-side.

enum class MsgType : std::uint8_t {
  Request = 32,       ///< client -> server: PlanRequest
  Response = 33,      ///< server -> client: PlanResponse
  ErrorReply = 34,    ///< server -> client: (ErrorCode, what)
  StatsRequest = 35,  ///< client -> server: tenant name ("" = service rollup)
  StatsReply = 36,    ///< server -> client: MetricsRegistry snapshot JSON
  Shutdown = 37,      ///< client -> server: stop serving and exit
};

[[nodiscard]] const char* toString(MsgType t);

/// Request was syntactically or semantically malformed: truncated payload,
/// out-of-range enum value, unknown region/field/function reference,
/// oversized region declaration, missing pieces. Never retryable as-is.
class BadRequest : public Error {
 public:
  explicit BadRequest(const std::string& what) : Error(what) {}
  [[nodiscard]] ErrorCode errorCode() const noexcept override {
    return ErrorCode::BadRequest;
  }
};

/// The server's admission queue was full when the connection arrived. The
/// request was not admitted; retrying after a backoff is safe.
class Overloaded : public Error {
 public:
  explicit Overloaded(const std::string& what) : Error(what) {}
  [[nodiscard]] ErrorCode errorCode() const noexcept override {
    return ErrorCode::Overloaded;
  }
};

/// Rethrows a decoded (code, what) pair as the matching taxonomy subclass,
/// covering the service-level codes before delegating the support-level
/// ones to throwErrorCode.
[[noreturn]] void throwServiceError(ErrorCode code, const std::string& what);

/// Shape of one field: enough to re-create it server-side, no values.
struct FieldShape {
  std::string name;
  region::FieldType type = region::FieldType::F64;
};

/// Shape of one region: name, index-space size, field shapes.
struct RegionShape {
  std::string name;
  region::Index size = 0;
  std::vector<FieldShape> fields;
};

/// Shape of one index function: the symbolic metadata the constraint
/// pipeline consults. Affine evaluators do not travel — the server
/// registers a placeholder body under the same id.
struct FnShape {
  std::string id;
  region::FnKind kind = region::FnKind::Affine;
  std::string domainRegion;
  std::string rangeRegion;
  std::string field;  ///< FieldPtr / FieldRange only
};

/// The requester's World, reduced to what compilation needs.
struct WorldShape {
  std::vector<RegionShape> regions;
  std::vector<FnShape> fns;

  /// Captures the shape of an existing World (regions, fields, fns).
  [[nodiscard]] static WorldShape describe(const region::World& world);

  /// Builds a compile-only World from the shape. Affine fns get identity
  /// placeholder bodies (legal: the solver never evaluates them). Throws
  /// BadRequest on an inconsistent shape or any region larger than
  /// `maxElements` (a hostile size would otherwise drive the field-column
  /// allocation).
  [[nodiscard]] region::World materialize(region::Index maxElements) const;
};

/// One parallelize request.
struct PlanRequest {
  std::string tenant;        ///< metrics namespace; "" lands in "anonymous"
  std::uint64_t pieces = 0;  ///< target piece count (must be > 0)
  /// Compiler knobs (parallelize::Options without the cache pointer).
  bool enableRelaxation = true;
  bool enableDisjointReduction = true;
  bool enablePrivateSubPartitions = true;
  bool enableUnification = true;
  WorldShape world;
  ir::Program program;  ///< Compute closures are dropped in transit
  /// External-constraint vocabulary (capacity / co-location / anti-affinity
  /// / replication), enforced by the propagation solver. A provably
  /// unsatisfiable set fails with ErrorCode::Infeasible — the request was
  /// well-formed (not BadRequest); the partitioning problem it poses has no
  /// solution.
  constraint::Vocabulary vocab;
};

/// Per-loop slice of the response.
struct LoopPlanInfo {
  std::string name;
  std::string iterPartition;
  bool relaxed = false;
};

/// One successful parallelize response.
struct PlanResponse {
  std::uint64_t cacheKey = 0;  ///< canonical constraint-graph hash
  bool cacheHit = false;       ///< served from the cross-tenant plan cache
  double inferMs = 0;
  double canonMs = 0;
  double unifyMs = 0;
  double solveMs = 0;
  double rewriteMs = 0;
  int parallelLoops = 0;
  double serverMs = 0;  ///< server-side wall time, admission to response
  std::string dpl;      ///< synthesized DPL partitioning program
  std::vector<LoopPlanInfo> loops;
  std::vector<std::string> externalSymbols;
  /// Propagation-engine counters (compile.propagate.* gauges; all zero on a
  /// cache hit or for unconstrained compiles solved without search).
  std::uint64_t propagations = 0;
  std::uint64_t prunes = 0;
  std::uint64_t branches = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t restarts = 0;
};

/// Error payload: the taxonomy crossing the wire.
struct ErrorReplyMsg {
  ErrorCode code = ErrorCode::Internal;
  std::string what;
};

[[nodiscard]] std::vector<std::uint8_t> encodeRequest(const PlanRequest& m);
[[nodiscard]] PlanRequest decodeRequest(BinaryReader& r);

[[nodiscard]] std::vector<std::uint8_t> encodeResponse(const PlanResponse& m);
[[nodiscard]] PlanResponse decodeResponse(BinaryReader& r);

[[nodiscard]] std::vector<std::uint8_t> encodeError(const ErrorReplyMsg& m);
[[nodiscard]] ErrorReplyMsg decodeError(BinaryReader& r);

/// StatsRequest payload is the tenant name; StatsReply payload is a JSON
/// document (MetricsRegistry snapshot), both as one string.
[[nodiscard]] std::vector<std::uint8_t> encodeString(const std::string& s);
[[nodiscard]] std::string decodeString(BinaryReader& r);

}  // namespace dpart::service
