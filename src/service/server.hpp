#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "parallelize/solve_cache.hpp"
#include "service/protocol.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace dpart::service {

/// Configuration of one PlanServer (docs/service.md).
struct ServerOptions {
  /// AF_UNIX listening socket path. When empty, the server listens on
  /// loopback TCP at `tcpPort` instead (0 = kernel-assigned; see port()).
  std::string unixPath;
  std::uint16_t tcpPort = 0;
  /// Bounded worker pool: how many requests compile concurrently.
  std::size_t workers = 4;
  /// Admission queue bound. A connection arriving with the queue full is
  /// refused with ErrorCode::Overloaded and closed.
  std::size_t queueCapacity = 256;
  /// Frame-size cap handed to the shared framing layer (checked before any
  /// allocation the declared size would drive).
  std::uint64_t maxFrameBytes = 64ull << 20;
  /// Per-connection receive deadline between frames. A client that goes
  /// quiet longer than this has its connection closed, releasing the
  /// worker. 0 waits forever (don't, outside tests).
  std::uint64_t recvTimeoutMicros = 5'000'000;
  /// Plan cache capacity (cross-tenant, keyed on the canonical
  /// constraint-graph hash; LRU beyond this many entries).
  std::size_t cacheCapacity = 1024;
  /// Exact-request response memo capacity (the L1 in front of the
  /// canonical cache): finished responses keyed on the raw request bytes
  /// with the tenant field excluded, so a byte-identical resubmission —
  /// from any tenant — skips decoding shapes into a World and
  /// re-canonicalizing the constraint graph entirely. FIFO beyond this
  /// many entries; 0 disables it.
  std::size_t responseCacheCapacity = 256;
  /// Largest region a request may declare; bounds the compile-only World
  /// materialization a hostile shape could drive.
  region::Index maxRegionElements = region::Index(1) << 28;
  /// Optional tracer (borrowed): each request is recorded as a
  /// "service.request" span with the compile phases nested inside.
  Tracer* tracer = nullptr;
};

/// Multi-tenant partitioning-as-a-service front end.
///
/// A long-running server that accepts parallelize requests — serialized
/// loop IR plus region shapes — over AF_UNIX or loopback TCP, compiles
/// them through the regular SessionBuilder::compile() pipeline, and replies
/// with the synthesized plan. The plan cache is two-level: an exact-request
/// response memo (L1, keyed on the raw request bytes minus the tenant)
/// absorbs byte-identical resubmissions without touching the compiler at
/// all, and all tenants share one SolveCache (L2) keyed on the
/// unification-canonical constraint-graph hash, so isomorphic programs
/// across tenants cost one solve total; per-tenant request/hit/miss/error
/// counts are isolated in one MetricsRegistry per tenant, with
/// service-level rollups (service.requests, service.cache.{hits,misses},
/// service.queue.depth, latency histogram + p50/p99 gauges) in the service
/// registry. Failures travel back as the structured error taxonomy with
/// stable numeric codes.
///
/// Threading: one accept thread feeds a bounded admission queue of
/// connections; `workers` worker threads pop connections and serve them to
/// completion (a connection may carry many sequential requests). stop() —
/// or a Shutdown frame from any client — drains everything and joins.
class PlanServer {
 public:
  explicit PlanServer(ServerOptions options);
  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;
  ~PlanServer();

  /// Binds, listens and launches the accept/worker threads. Throws
  /// TransportError when the socket cannot be set up.
  void start();

  /// Requests shutdown, drains the queue and joins all threads. Safe to
  /// call twice; called by the destructor. Must not be called from a
  /// worker thread (a Shutdown frame triggers the non-joining half).
  void stop();

  /// Blocks until a stop was requested (Shutdown frame or stop()). The
  /// dpart-serve main loop parks here.
  void waitForStopRequest();

  /// The non-joining half of stop(): requests shutdown and returns
  /// immediately. Safe from signal-handler-ish contexts and worker threads;
  /// follow up with stop() from a regular thread to join.
  void requestStop() { beginStop(); }

  [[nodiscard]] bool running() const;

  /// Bound TCP port (TCP mode only; valid after start()).
  [[nodiscard]] std::uint16_t port() const { return boundPort_; }
  [[nodiscard]] const std::string& unixPath() const {
    return options_.unixPath;
  }

  /// Service-level rollup metrics (live; thread-safe).
  [[nodiscard]] MetricsRegistry& serviceMetrics() { return service_; }

  /// The per-tenant registry, created on first use. "" maps to
  /// "anonymous".
  [[nodiscard]] MetricsRegistry& tenantMetrics(const std::string& tenant);

  /// Cross-tenant plan cache statistics.
  [[nodiscard]] parallelize::SolveCache::Stats cacheStats() const {
    return cache_.stats();
  }

  /// The JSON document a StatsRequest for `tenant` returns ("" = service
  /// rollup, with latency p50/p99 gauges refreshed from the histogram).
  [[nodiscard]] std::string statsJson(const std::string& tenant);

 private:
  struct PendingConn {
    int fd = -1;
    std::uint64_t enqueuedMicros = 0;
  };

  void acceptLoop();
  void workerLoop();
  /// Serves one connection until EOF, error, timeout or shutdown.
  void serveConnection(PendingConn conn);
  /// Handles one Request frame; always answers with Response or ErrorReply
  /// (send failures propagate as TransportError to the caller).
  void handleRequest(int fd, const std::vector<std::uint8_t>& payload);
  void sendError(int fd, ErrorCode code, const std::string& what);
  /// The non-joining half of stop(): flips the flag and wakes everyone.
  void beginStop();

  /// L1 lookup/insert (thread-safe; first insert wins, FIFO eviction).
  [[nodiscard]] std::optional<PlanResponse> responseCacheLookup(
      std::uint64_t key);
  void responseCacheInsert(std::uint64_t key, const PlanResponse& resp);

  ServerOptions options_;
  parallelize::SolveCache cache_;
  MetricsRegistry service_;

  std::mutex responseCacheMutex_;
  std::unordered_map<std::uint64_t, PlanResponse> responseCache_;
  std::deque<std::uint64_t> responseCacheOrder_;

  std::mutex tenantsMutex_;
  std::map<std::string, std::unique_ptr<MetricsRegistry>> tenants_;

  int listenFd_ = -1;
  std::uint16_t boundPort_ = 0;
  std::thread acceptThread_;
  std::vector<std::thread> workers_;

  std::mutex queueMutex_;
  /// Wakes workers (new connection admitted, or stopping). Stop-watchers
  /// wait on stopCv_ instead: sharing one CV would let an admission's
  /// notify_one land on a thread parked in waitForStopRequest(), which
  /// re-checks its predicate and swallows the wakeup — the queued
  /// connection would never be served.
  std::condition_variable queueCv_;
  std::condition_variable stopCv_;
  std::deque<PendingConn> queue_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace dpart::service
