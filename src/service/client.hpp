#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"
#include "support/framing.hpp"

namespace dpart::service {

/// Blocking client for one PlanServer connection.
///
/// A PlanClient holds one AF_UNIX or loopback-TCP connection and issues
/// synchronous request/response exchanges over it. An ErrorReply from the
/// server is rethrown locally as the matching dpart::Error taxonomy subclass
/// (same stable code, same message), so remote failures look exactly like
/// local ones to the caller. Move-only; the destructor closes the socket.
class PlanClient {
 public:
  /// Connects to a server's AF_UNIX socket at `path`.
  [[nodiscard]] static PlanClient connectUnix(
      const std::string& path, std::uint64_t timeoutMicros = 30'000'000);

  /// Connects to a server's loopback TCP port.
  [[nodiscard]] static PlanClient connectTcp(
      std::uint16_t port, std::uint64_t timeoutMicros = 30'000'000);

  PlanClient(PlanClient&& other) noexcept;
  PlanClient& operator=(PlanClient&& other) noexcept;
  PlanClient(const PlanClient&) = delete;
  PlanClient& operator=(const PlanClient&) = delete;
  ~PlanClient();

  /// Sends one parallelize request and waits for the plan. Throws the
  /// server's error (BadRequest, Overloaded, PartitionViolation, ...) on an
  /// ErrorReply, TransportError when the connection fails.
  [[nodiscard]] PlanResponse parallelize(const PlanRequest& request);

  /// Fetches the metrics JSON for `tenant` ("" = service-level rollup).
  [[nodiscard]] std::string stats(const std::string& tenant = {});

  /// Asks the server to stop. The server begins draining immediately; this
  /// connection is done afterwards.
  void shutdownServer();

  /// Wire tallies of this connection (bytes / messages, both directions).
  [[nodiscard]] const framing::NetCounters& counters() const {
    return counters_;
  }

 private:
  PlanClient(int fd, std::uint64_t timeoutMicros);

  /// One request/response exchange; decodes ErrorReply into a throw.
  [[nodiscard]] framing::RawFrame roundTrip(MsgType send,
                                            std::vector<std::uint8_t> payload,
                                            MsgType expect);

  int fd_ = -1;
  std::uint64_t timeoutMicros_ = 30'000'000;
  framing::NetCounters counters_;
};

}  // namespace dpart::service
