#include "service/protocol.hpp"

namespace dpart::service {

namespace {

constexpr int kMaxInnerDepth = 4;

void writeStmt(BinaryWriter& w, const ir::Stmt& s, int depth) {
  DPART_CHECK(depth < kMaxInnerDepth, "inner loops nested too deeply");
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.i64(s.id);
  w.str(s.var);
  w.str(s.region);
  w.str(s.field);
  w.str(s.idxVar);
  w.str(s.src);
  w.str(s.fn);
  w.u8(static_cast<std::uint8_t>(s.op));
  w.u64(s.args.size());
  for (const std::string& a : s.args) w.str(a);
  w.str(s.loopVar);
  w.str(s.rangeVar);
  w.u64(s.body.size());
  for (const ir::Stmt& b : s.body) writeStmt(w, b, depth + 1);
}

ir::Stmt readStmt(BinaryReader& r, int depth) {
  if (depth >= kMaxInnerDepth) {
    throw BadRequest("request declares inner loops nested deeper than " +
                     std::to_string(kMaxInnerDepth));
  }
  ir::Stmt s;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(ir::StmtKind::InnerLoop)) {
    throw BadRequest("unknown statement kind " + std::to_string(kind));
  }
  s.kind = static_cast<ir::StmtKind>(kind);
  s.id = static_cast<int>(r.i64());
  s.var = r.str();
  s.region = r.str();
  s.field = r.str();
  s.idxVar = r.str();
  s.src = r.str();
  s.fn = r.str();
  const std::uint8_t op = r.u8();
  if (op > static_cast<std::uint8_t>(ir::ReduceOp::Max)) {
    throw BadRequest("unknown reduce op " + std::to_string(op));
  }
  s.op = static_cast<ir::ReduceOp>(op);
  const std::uint64_t nArgs = r.u64();
  s.args.reserve(static_cast<std::size_t>(nArgs));
  for (std::uint64_t i = 0; i < nArgs; ++i) s.args.push_back(r.str());
  if (s.kind == ir::StmtKind::Compute) {
    // Closures do not travel. The pipeline only consults a Compute's args
    // (dataflow); the placeholder keeps the statement evaluable should a
    // diagnostic path ever call it.
    s.compute = [](std::span<const double>) { return 0.0; };
  }
  s.loopVar = r.str();
  s.rangeVar = r.str();
  const std::uint64_t nBody = r.u64();
  s.body.reserve(static_cast<std::size_t>(nBody));
  for (std::uint64_t i = 0; i < nBody; ++i) {
    s.body.push_back(readStmt(r, depth + 1));
  }
  return s;
}

}  // namespace

const char* toString(MsgType t) {
  switch (t) {
    case MsgType::Request: return "Request";
    case MsgType::Response: return "Response";
    case MsgType::ErrorReply: return "ErrorReply";
    case MsgType::StatsRequest: return "StatsRequest";
    case MsgType::StatsReply: return "StatsReply";
    case MsgType::Shutdown: return "Shutdown";
  }
  return "?";
}

void throwServiceError(ErrorCode code, const std::string& what) {
  switch (code) {
    case ErrorCode::BadRequest: throw BadRequest(what);
    case ErrorCode::Overloaded: throw Overloaded(what);
    case ErrorCode::Infeasible: throw constraint::InfeasibleError(what);
    default: throwErrorCode(code, what);
  }
}

WorldShape WorldShape::describe(const region::World& world) {
  WorldShape shape;
  for (const std::string& name : world.regionNames()) {
    const region::Region& r = world.region(name);
    RegionShape rs;
    rs.name = name;
    rs.size = r.size();
    for (const std::string& field : r.fieldNames()) {
      rs.fields.push_back(FieldShape{field, r.fieldType(field)});
    }
    shape.regions.push_back(std::move(rs));
  }
  for (const std::string& id : world.fnIds()) {
    const region::FnDef& fn = world.fn(id);
    shape.fns.push_back(FnShape{fn.id, fn.kind, fn.domainRegion,
                                fn.rangeRegion, fn.field});
  }
  return shape;
}

region::World WorldShape::materialize(region::Index maxElements) const {
  region::World world;
  for (const RegionShape& rs : regions) {
    if (rs.size < 0 || rs.size > maxElements) {
      throw BadRequest("region '" + rs.name + "' declares " +
                       std::to_string(rs.size) +
                       " elements, exceeding the server cap of " +
                       std::to_string(maxElements));
    }
    if (world.hasRegion(rs.name)) {
      throw BadRequest("duplicate region '" + rs.name + "'");
    }
    region::Region& r = world.addRegion(rs.name, rs.size);
    for (const FieldShape& fs : rs.fields) r.addField(fs.name, fs.type);
  }
  for (const FnShape& fs : fns) {
    if (!world.hasRegion(fs.domainRegion) || !world.hasRegion(fs.rangeRegion)) {
      throw BadRequest("fn '" + fs.id + "' references an unknown region");
    }
    switch (fs.kind) {
      case region::FnKind::FieldPtr:
        world.defineFieldFn(fs.domainRegion, fs.field, fs.rangeRegion);
        break;
      case region::FnKind::FieldRange:
        world.defineRangeFn(fs.domainRegion, fs.field, fs.rangeRegion);
        break;
      case region::FnKind::Affine:
        // The body never travels; the solver is symbolic, so an identity
        // placeholder under the requester's id preserves the plan.
        world.defineAffineFn(fs.id, fs.domainRegion, fs.rangeRegion,
                             [](region::Index i) { return i; });
        break;
      case region::FnKind::Identity:
        throw BadRequest("the identity fn is implicit and cannot be defined");
    }
  }
  return world;
}

std::vector<std::uint8_t> encodeRequest(const PlanRequest& m) {
  BinaryWriter w;
  w.str(m.tenant);
  w.u64(m.pieces);
  std::uint8_t flags = 0;
  if (m.enableRelaxation) flags |= 1;
  if (m.enableDisjointReduction) flags |= 2;
  if (m.enablePrivateSubPartitions) flags |= 4;
  if (m.enableUnification) flags |= 8;
  w.u8(flags);
  w.u64(m.world.regions.size());
  for (const RegionShape& rs : m.world.regions) {
    w.str(rs.name);
    w.i64(rs.size);
    w.u64(rs.fields.size());
    for (const FieldShape& fs : rs.fields) {
      w.str(fs.name);
      w.u8(static_cast<std::uint8_t>(fs.type));
    }
  }
  w.u64(m.world.fns.size());
  for (const FnShape& fs : m.world.fns) {
    w.str(fs.id);
    w.u8(static_cast<std::uint8_t>(fs.kind));
    w.str(fs.domainRegion);
    w.str(fs.rangeRegion);
    w.str(fs.field);
  }
  w.str(m.program.name);
  w.u64(m.program.loops.size());
  for (const ir::Loop& loop : m.program.loops) {
    w.str(loop.name);
    w.str(loop.loopVar);
    w.str(loop.iterRegion);
    w.u64(loop.body.size());
    for (const ir::Stmt& s : loop.body) writeStmt(w, s, 0);
  }
  w.u64(m.vocab.capacities.size());
  for (const constraint::CapacityBound& cb : m.vocab.capacities) {
    w.str(cb.region);
    w.u64(cb.maxPerPiece);
  }
  w.u64(m.vocab.affinities.size());
  for (const constraint::FieldAffinity& fa : m.vocab.affinities) {
    w.str(fa.fieldA);
    w.str(fa.fieldB);
    w.u8(fa.together ? 1 : 0);
  }
  w.u64(m.vocab.replications.size());
  for (const constraint::ReplicationBound& rb : m.vocab.replications) {
    w.str(rb.region);
    w.f64(rb.minFactor);
    w.f64(rb.maxFactor);
  }
  return w.take();
}

PlanRequest decodeRequest(BinaryReader& r) {
  PlanRequest m;
  m.tenant = r.str();
  m.pieces = r.u64();
  const std::uint8_t flags = r.u8();
  m.enableRelaxation = (flags & 1) != 0;
  m.enableDisjointReduction = (flags & 2) != 0;
  m.enablePrivateSubPartitions = (flags & 4) != 0;
  m.enableUnification = (flags & 8) != 0;
  const std::uint64_t nRegions = r.u64();
  m.world.regions.reserve(static_cast<std::size_t>(nRegions));
  for (std::uint64_t i = 0; i < nRegions; ++i) {
    RegionShape rs;
    rs.name = r.str();
    rs.size = r.i64();
    const std::uint64_t nFields = r.u64();
    rs.fields.reserve(static_cast<std::size_t>(nFields));
    for (std::uint64_t k = 0; k < nFields; ++k) {
      FieldShape fs;
      fs.name = r.str();
      const std::uint8_t type = r.u8();
      if (type > static_cast<std::uint8_t>(region::FieldType::Range)) {
        throw BadRequest("unknown field type " + std::to_string(type));
      }
      fs.type = static_cast<region::FieldType>(type);
      rs.fields.push_back(std::move(fs));
    }
    m.world.regions.push_back(std::move(rs));
  }
  const std::uint64_t nFns = r.u64();
  m.world.fns.reserve(static_cast<std::size_t>(nFns));
  for (std::uint64_t i = 0; i < nFns; ++i) {
    FnShape fs;
    fs.id = r.str();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(region::FnKind::FieldRange)) {
      throw BadRequest("unknown fn kind " + std::to_string(kind));
    }
    fs.kind = static_cast<region::FnKind>(kind);
    fs.domainRegion = r.str();
    fs.rangeRegion = r.str();
    fs.field = r.str();
    m.world.fns.push_back(std::move(fs));
  }
  m.program.name = r.str();
  const std::uint64_t nLoops = r.u64();
  m.program.loops.reserve(static_cast<std::size_t>(nLoops));
  for (std::uint64_t i = 0; i < nLoops; ++i) {
    ir::Loop loop;
    loop.name = r.str();
    loop.loopVar = r.str();
    loop.iterRegion = r.str();
    const std::uint64_t nStmts = r.u64();
    loop.body.reserve(static_cast<std::size_t>(nStmts));
    for (std::uint64_t k = 0; k < nStmts; ++k) {
      loop.body.push_back(readStmt(r, 0));
    }
    m.program.loops.push_back(std::move(loop));
  }
  const std::uint64_t nCaps = r.u64();
  m.vocab.capacities.reserve(static_cast<std::size_t>(nCaps));
  for (std::uint64_t i = 0; i < nCaps; ++i) {
    constraint::CapacityBound cb;
    cb.region = r.str();
    cb.maxPerPiece = static_cast<std::size_t>(r.u64());
    m.vocab.capacities.push_back(std::move(cb));
  }
  const std::uint64_t nAff = r.u64();
  m.vocab.affinities.reserve(static_cast<std::size_t>(nAff));
  for (std::uint64_t i = 0; i < nAff; ++i) {
    constraint::FieldAffinity fa;
    fa.fieldA = r.str();
    fa.fieldB = r.str();
    fa.together = r.u8() != 0;
    m.vocab.affinities.push_back(std::move(fa));
  }
  const std::uint64_t nRep = r.u64();
  m.vocab.replications.reserve(static_cast<std::size_t>(nRep));
  for (std::uint64_t i = 0; i < nRep; ++i) {
    constraint::ReplicationBound rb;
    rb.region = r.str();
    rb.minFactor = r.f64();
    rb.maxFactor = r.f64();
    m.vocab.replications.push_back(std::move(rb));
  }
  r.expectEnd();
  return m;
}

std::vector<std::uint8_t> encodeResponse(const PlanResponse& m) {
  BinaryWriter w;
  w.u64(m.cacheKey);
  w.u8(m.cacheHit ? 1 : 0);
  w.f64(m.inferMs);
  w.f64(m.canonMs);
  w.f64(m.unifyMs);
  w.f64(m.solveMs);
  w.f64(m.rewriteMs);
  w.i64(m.parallelLoops);
  w.f64(m.serverMs);
  w.str(m.dpl);
  w.u64(m.loops.size());
  for (const LoopPlanInfo& lp : m.loops) {
    w.str(lp.name);
    w.str(lp.iterPartition);
    w.u8(lp.relaxed ? 1 : 0);
  }
  w.u64(m.externalSymbols.size());
  for (const std::string& s : m.externalSymbols) w.str(s);
  w.u64(m.propagations);
  w.u64(m.prunes);
  w.u64(m.branches);
  w.u64(m.backtracks);
  w.u64(m.restarts);
  return w.take();
}

PlanResponse decodeResponse(BinaryReader& r) {
  PlanResponse m;
  m.cacheKey = r.u64();
  m.cacheHit = r.u8() != 0;
  m.inferMs = r.f64();
  m.canonMs = r.f64();
  m.unifyMs = r.f64();
  m.solveMs = r.f64();
  m.rewriteMs = r.f64();
  m.parallelLoops = static_cast<int>(r.i64());
  m.serverMs = r.f64();
  m.dpl = r.str();
  const std::uint64_t nLoops = r.u64();
  m.loops.reserve(static_cast<std::size_t>(nLoops));
  for (std::uint64_t i = 0; i < nLoops; ++i) {
    LoopPlanInfo lp;
    lp.name = r.str();
    lp.iterPartition = r.str();
    lp.relaxed = r.u8() != 0;
    m.loops.push_back(std::move(lp));
  }
  const std::uint64_t nExternal = r.u64();
  m.externalSymbols.reserve(static_cast<std::size_t>(nExternal));
  for (std::uint64_t i = 0; i < nExternal; ++i) {
    m.externalSymbols.push_back(r.str());
  }
  m.propagations = r.u64();
  m.prunes = r.u64();
  m.branches = r.u64();
  m.backtracks = r.u64();
  m.restarts = r.u64();
  r.expectEnd();
  return m;
}

std::vector<std::uint8_t> encodeError(const ErrorReplyMsg& m) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(m.code));
  w.str(m.what);
  return w.take();
}

ErrorReplyMsg decodeError(BinaryReader& r) {
  ErrorReplyMsg m;
  m.code = static_cast<ErrorCode>(r.u32());
  m.what = r.str();
  r.expectEnd();
  return m;
}

std::vector<std::uint8_t> encodeString(const std::string& s) {
  BinaryWriter w;
  w.str(s);
  return w.take();
}

std::string decodeString(BinaryReader& r) {
  std::string s = r.str();
  r.expectEnd();
  return s;
}

}  // namespace dpart::service
