#include "service/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "runtime/session.hpp"
#include "support/framing.hpp"

namespace dpart::service {

namespace {

std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool debugEnabled() {
  static const bool on = std::getenv("DPART_SERVE_DEBUG") != nullptr;
  return on;
}

#define SERVE_DEBUG(...)                         \
  do {                                           \
    if (debugEnabled()) {                        \
      std::fprintf(stderr, "serve: " __VA_ARGS__); \
      std::fputc('\n', stderr);                  \
    }                                            \
  } while (0)

[[noreturn]] void setupFail(const std::string& what) {
  throw TransportError(0, "plan server: " + what + ": " +
                              std::strerror(errno));
}

/// Latency histogram bounds (milliseconds): sub-ms warm hits through
/// multi-second cold solves.
std::vector<double> latencyBoundsMs() {
  return {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
          1000, 2500, 5000, 10000};
}

/// FNV-1a over a byte range; keys the exact-request response memo.
std::uint64_t fnv64Bytes(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Upper bound of the bucket where the q-quantile falls (the conventional
/// conservative histogram-quantile estimate).
double histogramQuantile(const MetricHistogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0) return 0;
  const auto buckets = h.bucketCounts();
  const auto& bounds = h.bounds();
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target) {
      return i < bounds.size() ? bounds[i]
                               : bounds.empty() ? 0 : bounds.back();
    }
  }
  return bounds.empty() ? 0 : bounds.back();
}

}  // namespace

PlanServer::PlanServer(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cacheCapacity) {}

PlanServer::~PlanServer() { stop(); }

void PlanServer::start() {
  DPART_CHECK(!started_, "PlanServer::start called twice");
  DPART_CHECK(options_.workers > 0, "PlanServer needs at least one worker");
  if (!options_.unixPath.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    DPART_CHECK(options_.unixPath.size() < sizeof(addr.sun_path),
                "unix socket path too long");
    std::strncpy(addr.sun_path, options_.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) setupFail("socket");
    ::unlink(options_.unixPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      setupFail("bind " + options_.unixPath);
    }
  } else {
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) setupFail("socket");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcpPort);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      setupFail("bind 127.0.0.1:" + std::to_string(options_.tcpPort));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      setupFail("getsockname");
    }
    boundPort_ = ntohs(bound.sin_port);
  }
  if (::listen(listenFd_, SOMAXCONN) < 0) setupFail("listen");

  started_ = true;
  stopping_ = false;
  acceptThread_ = std::thread([this] { acceptLoop(); });
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

void PlanServer::beginStop() {
  {
    std::lock_guard<std::mutex> lock(queueMutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
  queueCv_.notify_all();
  stopCv_.notify_all();
}

void PlanServer::stop() {
  if (!started_) return;
  beginStop();
  if (acceptThread_.joinable()) acceptThread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(queueMutex_);
    for (const PendingConn& c : queue_) ::close(c.fd);
    queue_.clear();
  }
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (!options_.unixPath.empty()) ::unlink(options_.unixPath.c_str());
  started_ = false;
}

void PlanServer::waitForStopRequest() {
  std::unique_lock<std::mutex> lock(queueMutex_);
  stopCv_.wait(lock, [this] { return stopping_; });
}

bool PlanServer::running() const { return started_; }

MetricsRegistry& PlanServer::tenantMetrics(const std::string& tenant) {
  const std::string name = tenant.empty() ? "anonymous" : tenant;
  std::lock_guard<std::mutex> lock(tenantsMutex_);
  auto& slot = tenants_[name];
  if (slot == nullptr) {
    slot = std::make_unique<MetricsRegistry>();
    service_.gauge("service.tenants")
        .set(static_cast<double>(tenants_.size()));
  }
  return *slot;
}

std::string PlanServer::statsJson(const std::string& tenant) {
  if (!tenant.empty()) return tenantMetrics(tenant).toJson();
  MetricHistogram& lat =
      service_.histogram("service.latencyMs", latencyBoundsMs());
  service_.gauge("service.latency.p50Ms").set(histogramQuantile(lat, 0.50));
  service_.gauge("service.latency.p99Ms").set(histogramQuantile(lat, 0.99));
  const parallelize::SolveCache::Stats cs = cache_.stats();
  service_.gauge("service.cache.entries")
      .set(static_cast<double>(cs.entries));
  {
    std::lock_guard<std::mutex> lock(responseCacheMutex_);
    service_.gauge("service.cache.exactEntries")
        .set(static_cast<double>(responseCache_.size()));
  }
  return service_.toJson();
}

void PlanServer::acceptLoop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(queueMutex_);
      if (stopping_) return;
    }
    pollfd pfd{listenFd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;  // raced with shutdown or transient error
    SERVE_DEBUG("accepted fd=%d", fd);
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queueMutex_);
      if (!stopping_ && queue_.size() < options_.queueCapacity) {
        queue_.push_back(PendingConn{fd, nowMicros()});
        service_.gauge("service.queue.depth")
            .set(static_cast<double>(queue_.size()));
        admitted = true;
      }
    }
    if (admitted) {
      SERVE_DEBUG("admitted fd=%d", fd);
      queueCv_.notify_one();
    } else {
      // Admission control: refuse rather than queue unboundedly. The
      // refusal is best-effort — a client that already vanished is just
      // closed.
      service_.counter("service.rejected").inc();
      try {
        sendError(fd, ErrorCode::Overloaded,
                  "plan service admission queue is full (capacity " +
                      std::to_string(options_.queueCapacity) +
                      "); retry later");
      } catch (const Error&) {
      }
      ::close(fd);
    }
  }
}

void PlanServer::workerLoop() {
  while (true) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock(queueMutex_);
      queueCv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      conn = queue_.front();
      queue_.pop_front();
      service_.gauge("service.queue.depth")
          .set(static_cast<double>(queue_.size()));
    }
    SERVE_DEBUG("worker popped fd=%d", conn.fd);
    serveConnection(conn);
    SERVE_DEBUG("worker done fd=%d", conn.fd);
    ::close(conn.fd);
  }
}

void PlanServer::serveConnection(PendingConn conn) {
  service_
      .histogram("service.queueWaitMs",
                 {0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000})
      .observe(static_cast<double>(nowMicros() - conn.enqueuedMicros) / 1000.0);
  while (true) {
    {
      std::lock_guard<std::mutex> lock(queueMutex_);
      if (stopping_) return;
    }
    std::optional<framing::RawFrame> frame;
    try {
      frame = framing::recvFrame(
          conn.fd, options_.recvTimeoutMicros, options_.maxFrameBytes,
          /*node=*/0, static_cast<std::uint8_t>(MsgType::Request),
          static_cast<std::uint8_t>(MsgType::Shutdown));
    } catch (const TransportError& e) {
      // Malformed frame, CRC mismatch, mid-frame EOF or idle timeout: the
      // connection is unusable — count it and drop the client. The server
      // must survive hostile bytes; only this connection pays.
      service_
          .counter("service.errors",
                   {{"kind", toString(ErrorCode::Transport)}})
          .inc();
      SERVE_DEBUG("fd=%d transport error: %s", conn.fd, e.what());
      return;
    }
    if (!frame) {
      SERVE_DEBUG("fd=%d clean EOF", conn.fd);
      return;  // clean EOF between frames
    }
    SERVE_DEBUG("fd=%d frame type=%u size=%zu", conn.fd, unsigned(frame->type),
                frame->payload.size());
    switch (static_cast<MsgType>(frame->type)) {
      case MsgType::Request:
        try {
          handleRequest(conn.fd, frame->payload);
        } catch (const TransportError&) {
          return;  // client went away mid-reply
        }
        break;
      case MsgType::StatsRequest: {
        std::string tenant;
        try {
          BinaryReader r(frame->payload);
          tenant = decodeString(r);
        } catch (const Error&) {
          return;
        }
        try {
          framing::sendFrame(conn.fd,
                             static_cast<std::uint8_t>(MsgType::StatsReply),
                             encodeString(statsJson(tenant)), /*node=*/0);
        } catch (const TransportError&) {
          return;
        }
        break;
      }
      case MsgType::Shutdown:
        beginStop();
        return;
      default:
        // Response/StatsReply/ErrorReply are server->client only.
        sendError(conn.fd, ErrorCode::BadRequest,
                  std::string("unexpected ") +
                      toString(static_cast<MsgType>(frame->type)) +
                      " frame from a client");
        return;
    }
  }
}

std::optional<PlanResponse> PlanServer::responseCacheLookup(
    std::uint64_t key) {
  std::lock_guard<std::mutex> lock(responseCacheMutex_);
  const auto it = responseCache_.find(key);
  if (it == responseCache_.end()) return std::nullopt;
  return it->second;
}

void PlanServer::responseCacheInsert(std::uint64_t key,
                                     const PlanResponse& resp) {
  std::lock_guard<std::mutex> lock(responseCacheMutex_);
  // First insert wins: concurrent compiles of the same request all produce
  // the same plan (the L2 cache guarantees it), so keeping the first keeps
  // responses bitwise stable.
  if (!responseCache_.emplace(key, resp).second) return;
  responseCacheOrder_.push_back(key);
  while (responseCacheOrder_.size() > options_.responseCacheCapacity) {
    responseCache_.erase(responseCacheOrder_.front());
    responseCacheOrder_.pop_front();
  }
}

void PlanServer::sendError(int fd, ErrorCode code, const std::string& what) {
  framing::sendFrame(fd, static_cast<std::uint8_t>(MsgType::ErrorReply),
                     encodeError(ErrorReplyMsg{code, what}), /*node=*/0);
}

void PlanServer::handleRequest(int fd,
                               const std::vector<std::uint8_t>& payload) {
  const std::uint64_t t0 = nowMicros();
  std::string tenant;
  try {
    PlanRequest req;
    try {
      BinaryReader r(payload);
      req = decodeRequest(r);
    } catch (const CheckpointCorruption& e) {
      // Bounds-checked payload decoding failed: structurally valid frame,
      // malformed request inside.
      throw BadRequest(std::string("malformed request payload: ") + e.what());
    }
    tenant = req.tenant;
    if (req.pieces == 0) {
      throw BadRequest("request must set pieces > 0");
    }

    // L1: the tenant travels first on the wire as (u64 length, bytes), so
    // hashing everything after it keys the memo on the exact request —
    // pieces, flags, shapes and program — while staying tenant-agnostic.
    // A byte-identical resubmission from any tenant is answered from the
    // finished response without materializing a World or re-canonicalizing
    // the constraint graph.
    std::uint64_t memoKey = 0;
    const std::size_t tenantPrefix = sizeof(std::uint64_t) + tenant.size();
    const bool memoEnabled = options_.responseCacheCapacity > 0 &&
                             payload.size() >= tenantPrefix;
    if (memoEnabled) {
      memoKey = fnv64Bytes(payload.data() + tenantPrefix,
                           payload.size() - tenantPrefix);
      if (std::optional<PlanResponse> hit = responseCacheLookup(memoKey)) {
        PlanResponse resp = std::move(*hit);
        resp.cacheHit = true;
        // No compile ran; the phase timings belong to the request that
        // populated the memo, not this one.
        resp.inferMs = resp.canonMs = resp.unifyMs = resp.solveMs =
            resp.rewriteMs = 0;
        resp.serverMs = static_cast<double>(nowMicros() - t0) / 1000.0;

        service_.counter("service.requests").inc();
        service_.counter("service.cache.hits").inc();
        service_.counter("service.cache.exactHits").inc();
        service_.histogram("service.latencyMs", latencyBoundsMs())
            .observe(resp.serverMs);
        MetricsRegistry& tm = tenantMetrics(tenant);
        tm.counter("tenant.requests").inc();
        tm.counter("tenant.cache.hits").inc();
        tm.gauge("tenant.lastLatencyMs").set(resp.serverMs);

        framing::sendFrame(fd, static_cast<std::uint8_t>(MsgType::Response),
                           encodeResponse(resp), /*node=*/0);
        return;
      }
    }

    region::World world = req.world.materialize(options_.maxRegionElements);

    // Vocabulary *shape* errors are the client's fault (BadRequest);
    // *infeasibility* is only ever decided by the solver and travels as its
    // own stable code (ErrorCode::Infeasible).
    for (const constraint::CapacityBound& cb : req.vocab.capacities) {
      if (!world.hasRegion(cb.region)) {
        throw BadRequest("capacity bound names unknown region '" +
                         cb.region + "'");
      }
      if (cb.maxPerPiece == 0) {
        throw BadRequest("capacity bound on '" + cb.region +
                         "' must be positive");
      }
    }
    for (const constraint::ReplicationBound& rb : req.vocab.replications) {
      if (!world.hasRegion(rb.region)) {
        throw BadRequest("replication bound names unknown region '" +
                         rb.region + "'");
      }
    }
    for (const constraint::FieldAffinity& fa : req.vocab.affinities) {
      for (const std::string& f : {fa.fieldA, fa.fieldB}) {
        const auto dot = f.find('.');
        if (dot == std::string::npos || dot == 0 || dot + 1 >= f.size() ||
            !world.hasRegion(f.substr(0, dot))) {
          throw BadRequest("affinity field '" + f +
                           "' must name an existing 'region.field'");
        }
      }
    }

    parallelize::Options copts;
    copts.enableRelaxation = req.enableRelaxation;
    copts.enableDisjointReduction = req.enableDisjointReduction;
    copts.enablePrivateSubPartitions = req.enablePrivateSubPartitions;
    copts.enableUnification = req.enableUnification;
    copts.solveCache = &cache_;
    copts.vocab = req.vocab;

    Plan plan;
    {
      DPART_TRACE_SPAN(options_.tracer, "service", "service.request");
      plan = Session::parallelize(req.program)
                 .pieces(static_cast<std::size_t>(req.pieces))
                 .compileOptions(copts)
                 .compile(world, options_.tracer);
    }

    PlanResponse resp;
    const parallelize::CompileStats& st = plan.stats();
    resp.cacheKey = st.cacheKey;
    resp.cacheHit = st.cacheHit;
    resp.inferMs = st.inferMs;
    resp.canonMs = st.canonMs;
    resp.unifyMs = st.unifyMs;
    resp.solveMs = st.solveMs;
    resp.rewriteMs = st.rewriteMs;
    resp.parallelLoops = st.parallelLoops;
    resp.propagations = st.solve.propagations;
    resp.prunes = st.solve.prunes;
    resp.branches = st.solve.branches;
    resp.backtracks = st.solve.backtracks;
    resp.restarts = st.solve.restarts;
    resp.dpl = plan.parallelPlan().dpl.toString();
    for (const parallelize::PlannedLoop& pl : plan.parallelPlan().loops) {
      resp.loops.push_back(
          LoopPlanInfo{pl.loop->name, pl.iterPartition, pl.relaxed});
    }
    for (const std::string& s : plan.parallelPlan().externalSymbols) {
      resp.externalSymbols.push_back(s);
    }
    resp.serverMs = static_cast<double>(nowMicros() - t0) / 1000.0;

    if (memoEnabled) responseCacheInsert(memoKey, resp);

    // Metrics first, reply second: a client that has its response in hand
    // must be able to observe the request in the counters.
    service_.counter("service.requests").inc();
    service_.counter(st.cacheHit ? "service.cache.hits"
                                 : "service.cache.misses")
        .inc();
    service_.histogram("service.latencyMs", latencyBoundsMs())
        .observe(resp.serverMs);
    MetricsRegistry& tm = tenantMetrics(tenant);
    tm.counter("tenant.requests").inc();
    tm.counter(st.cacheHit ? "tenant.cache.hits" : "tenant.cache.misses")
        .inc();
    tm.gauge("tenant.lastLatencyMs").set(resp.serverMs);

    framing::sendFrame(fd, static_cast<std::uint8_t>(MsgType::Response),
                       encodeResponse(resp), /*node=*/0);
  } catch (const TransportError&) {
    throw;  // reply could not be delivered; caller drops the connection
  } catch (const Error& e) {
    // The whole taxonomy travels as (stable code, message).
    service_.counter("service.requests").inc();
    service_
        .counter("service.errors", {{"kind", toString(e.errorCode())}})
        .inc();
    tenantMetrics(tenant)
        .counter("tenant.errors", {{"kind", toString(e.errorCode())}})
        .inc();
    sendError(fd, e.errorCode(), e.what());
  }
}

}  // namespace dpart::service
