#include "service/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dpart::service {

namespace {

[[noreturn]] void connectFail(const std::string& target) {
  throw TransportError(0, "plan client: cannot connect to " + target + ": " +
                              std::strerror(errno));
}

}  // namespace

PlanClient PlanClient::connectUnix(const std::string& path,
                                   std::uint64_t timeoutMicros) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DPART_CHECK(path.size() < sizeof(addr.sun_path),
              "unix socket path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) connectFail(path);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    connectFail(path);
  }
  return PlanClient(fd, timeoutMicros);
}

PlanClient PlanClient::connectTcp(std::uint16_t port,
                                  std::uint64_t timeoutMicros) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) connectFail("127.0.0.1:" + std::to_string(port));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    connectFail("127.0.0.1:" + std::to_string(port));
  }
  return PlanClient(fd, timeoutMicros);
}

PlanClient::PlanClient(int fd, std::uint64_t timeoutMicros)
    : fd_(fd), timeoutMicros_(timeoutMicros) {}

PlanClient::PlanClient(PlanClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeoutMicros_(other.timeoutMicros_),
      counters_(other.counters_) {}

PlanClient& PlanClient::operator=(PlanClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    timeoutMicros_ = other.timeoutMicros_;
    counters_ = other.counters_;
  }
  return *this;
}

PlanClient::~PlanClient() {
  if (fd_ >= 0) ::close(fd_);
}

framing::RawFrame PlanClient::roundTrip(MsgType send,
                                        std::vector<std::uint8_t> payload,
                                        MsgType expect) {
  DPART_CHECK(fd_ >= 0, "PlanClient was moved from");
  framing::sendFrame(fd_, static_cast<std::uint8_t>(send), payload,
                     /*node=*/0, &counters_);
  auto frame = framing::recvFrame(
      fd_, timeoutMicros_, /*maxFrameBytes=*/64ull << 20, /*node=*/0,
      static_cast<std::uint8_t>(MsgType::Request),
      static_cast<std::uint8_t>(MsgType::Shutdown), &counters_);
  if (!frame) {
    throw TransportError(0, "plan server closed the connection mid-exchange");
  }
  if (static_cast<MsgType>(frame->type) == MsgType::ErrorReply) {
    BinaryReader r(frame->payload);
    const ErrorReplyMsg err = decodeError(r);
    throwServiceError(err.code, err.what);
  }
  if (static_cast<MsgType>(frame->type) != expect) {
    throw TransportError(0, std::string("plan server sent ") +
                                toString(static_cast<MsgType>(frame->type)) +
                                " where " + toString(expect) +
                                " was expected");
  }
  return std::move(*frame);
}

PlanResponse PlanClient::parallelize(const PlanRequest& request) {
  framing::RawFrame frame =
      roundTrip(MsgType::Request, encodeRequest(request), MsgType::Response);
  BinaryReader r(frame.payload);
  return decodeResponse(r);
}

std::string PlanClient::stats(const std::string& tenant) {
  framing::RawFrame frame =
      roundTrip(MsgType::StatsRequest, encodeString(tenant),
                MsgType::StatsReply);
  BinaryReader r(frame.payload);
  return decodeString(r);
}

void PlanClient::shutdownServer() {
  DPART_CHECK(fd_ >= 0, "PlanClient was moved from");
  framing::sendFrame(fd_, static_cast<std::uint8_t>(MsgType::Shutdown), {},
                     /*node=*/0, &counters_);
}

}  // namespace dpart::service
