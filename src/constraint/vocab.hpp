#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace dpart::constraint {

/// External-constraint vocabulary (beyond the paper's Section 3.3 partition
/// predicates): placement requirements a production scheduler imposes on the
/// synthesized partitions. Users state them in *field/region* terms; the
/// parallelizer translates them onto the solver's partition symbols after
/// unification (see SolverVocabulary) where the propagation engine enforces
/// them (constraint/propagate).

/// No piece of any partition of `region` may hold more than `maxPerPiece`
/// elements — a per-node memory/capacity budget.
struct CapacityBound {
  std::string region;
  std::size_t maxPerPiece = 0;
};

/// Placement affinity between two fields, each named "region.field".
/// together=true (co-location): both fields' access partitions must be
/// piecewise identical, so piece j of each lands on the same node.
/// together=false (anti-affinity): the partitions must be piecewise
/// disjoint, so no node owns both fields' copies of the same index.
struct FieldAffinity {
  std::string fieldA;
  std::string fieldB;
  bool together = true;
};

/// The total number of elements a partition of `region` materializes,
/// summed over pieces, must stay within [minFactor, maxFactor] x |region|.
/// maxFactor <= 0 means unbounded above. minFactor > 1 demands replication
/// (ghosting); maxFactor < 1 caps it below full coverage.
struct ReplicationBound {
  std::string region;
  double minFactor = 0.0;
  double maxFactor = 0.0;
};

/// The user-facing constraint set, in field/region vocabulary. Carried by
/// parallelize::Options, dpart::SessionBuilder and the service PlanRequest.
struct Vocabulary {
  std::vector<CapacityBound> capacities;
  std::vector<FieldAffinity> affinities;
  std::vector<ReplicationBound> replications;

  [[nodiscard]] bool empty() const {
    return capacities.empty() && affinities.empty() && replications.empty();
  }

  /// Deterministic one-line-per-entry rendering (sorted); folded into the
  /// solve-cache key so vocabularies distinguish otherwise identical
  /// compiles, and echoed into proof certificates.
  [[nodiscard]] std::string rendered() const;
};

/// The same constraints translated onto post-unification partition symbols
/// (what the propagators consume). Pairs keep the originating field names
/// for first-conflict provenance.
struct SolverVocabulary {
  struct SymbolPair {
    std::string symA, symB;    ///< partition symbols (post-unification)
    std::string fieldA, fieldB;  ///< originating "region.field" names
  };

  /// symbol -> max elements per piece.
  std::map<std::string, std::size_t> capacity;
  /// symbol -> [minFactor, maxFactor] on total materialized elements
  /// relative to |region| (maxFactor <= 0: unbounded above).
  std::map<std::string, std::pair<double, double>> replication;
  std::vector<SymbolPair> colocated;
  std::vector<SymbolPair> antiAffine;

  [[nodiscard]] bool empty() const {
    return capacity.empty() && replication.empty() && colocated.empty() &&
           antiAffine.empty();
  }
};

/// The constraint set admits no solution — distinct from BadRequest (the
/// request was well-formed; the partitioning problem it poses is provably
/// unsatisfiable). Carries the first conflict's provenance in what().
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
  [[nodiscard]] ErrorCode errorCode() const noexcept override {
    return ErrorCode::Infeasible;
  }
};

}  // namespace dpart::constraint
