#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "constraint/proof.hpp"
#include "constraint/system.hpp"
#include "constraint/vocab.hpp"
#include "dpl/expr.hpp"

namespace dpart::constraint {

/// Search-node value ordering.
enum class SearchHeuristic {
  /// The paper's Algorithm 2 order: Rule 1 (preimage), Rule 2 (union of
  /// lower bounds), Rule 3 (externals then equal) interleaved across
  /// symbols. With an empty vocabulary this reproduces the syntax-directed
  /// solver's search (and therefore its solutions) exactly.
  PaperOrder,
  /// First-fail: group candidates by symbol, smallest live domain first.
  SmallestDomain,
};

[[nodiscard]] const char* toString(SearchHeuristic h);

/// Restart schedule: each attempt runs with a step budget; on exhaustion the
/// search restarts with the alternate heuristic and a grown budget, until
/// the solver's total step budget (Solver::setMaxSteps) is spent. The
/// default first budget is far above anything the paper's programs need, so
/// restarts never fire for them and plan bit-identity is preserved.
struct SearchOptions {
  SearchHeuristic heuristic = SearchHeuristic::PaperOrder;
  std::size_t restartBudget = 65536;
  double restartGrowth = 4.0;
};

/// Propagation-engine counters (surfaced as compile.propagate.* gauges).
struct SolveStats {
  std::size_t propagations = 0;  ///< propagator executions
  std::size_t prunes = 0;        ///< candidates removed by propagators
  std::size_t branches = 0;      ///< search-tree edges taken
  std::size_t backtracks = 0;    ///< failed nodes unwound
  std::size_t restarts = 0;      ///< heuristic restarts
};

/// First-conflict provenance for an infeasible vocabulary: which constraint
/// first emptied which symbol's options, and why.
struct ConflictInfo {
  std::string symbol;      ///< partition symbol that became unassignable
  std::string rule;        ///< propagator rule id (e.g. "capacity-comp")
  std::string detail;      ///< human-readable justification

  [[nodiscard]] bool valid() const { return !rule.empty(); }
  [[nodiscard]] std::string toString() const;
};

/// Interval bounds on the pieces a ground DPL expression materializes:
/// [maxPieceLo, maxPieceHi] bounds the largest piece's element count and
/// [totalLo, totalHi] the sum over all pieces. Derived structurally from
/// region sizes alone (fixed external symbols are unknown partitions of a
/// known region), so every bound holds for *any* assignment of externals —
/// which is what makes propagator prunes sound and the certificate's
/// arithmetic independently re-checkable.
struct PieceBounds {
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();
  std::size_t maxPieceLo = 0;
  std::size_t maxPieceHi = kUnbounded;
  std::size_t totalLo = 0;
  std::size_t totalHi = kUnbounded;
};

/// Environment for the interval arithmetic.
struct BoundsEnv {
  const std::map<std::string, std::size_t>* regionSizes = nullptr;
  std::size_t pieces = 0;
  const std::set<std::string>* rangeFns = nullptr;
  /// Region a (fixed) symbol partitions; "" when unknown.
  std::function<std::string(const std::string&)> regionOf;
};

[[nodiscard]] PieceBounds boundsOf(const dpl::Expr& e, const BoundsEnv& env);

/// Per-node domain store over the flat candidate list the paper's candidate
/// generation produced for this search node. Candidates keep their global
/// (paper) order; propagators flip live flags off.
class DomainStore {
 public:
  struct Entry {
    std::string symbol;
    dpl::ExprPtr expr;
    bool live = true;
  };

  void add(std::string symbol, dpl::ExprPtr expr);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Entry& entry(std::size_t i) const { return entries_[i]; }
  [[nodiscard]] bool live(std::size_t i) const { return entries_[i].live; }
  void kill(std::size_t i) { entries_[i].live = false; }

  [[nodiscard]] std::size_t liveCount(const std::string& symbol) const;
  [[nodiscard]] const std::vector<std::size_t>& indicesOf(
      const std::string& symbol) const;
  [[nodiscard]] std::vector<std::string> symbols() const;

  /// Iteration order for branching under the given heuristic. PaperOrder is
  /// the identity permutation; SmallestDomain stably groups by symbol with
  /// the fewest live candidates first.
  [[nodiscard]] std::vector<std::size_t> order(SearchHeuristic h) const;

 private:
  std::vector<Entry> entries_;
  std::map<std::string, std::vector<std::size_t>> bySymbol_;
  static const std::vector<std::size_t> kEmpty;
};

/// Shared state one propagation-to-fixpoint pass operates on.
struct PropagationContext {
  DomainStore* dom = nullptr;
  /// Current grounded partial assignment (values fully substituted).
  const std::map<std::string, dpl::ExprPtr>* partial = nullptr;
  /// The node's substituted system (for requiresDisj/requiresComp/regionOf).
  const System* system = nullptr;
  BoundsEnv bounds;
  ProofLog* proof = nullptr;
  std::size_t nodeId = 0;
  SolveStats* stats = nullptr;

  /// Out: symbols whose domains shrank in the current propagator run.
  std::set<std::string> changed;
  /// Out: symbol refuted outright (search node fails immediately).
  bool refuted = false;
  ConflictInfo conflict;

  void prune(std::size_t idx, const std::string& rule,
             const std::string& detail);
  void refute(const std::string& symbol, const std::string& rule,
              const std::string& detail);
};

/// A watched constraint: prunes candidate domains (or refutes a symbol)
/// from the current partial assignment. Propagators watching a symbol are
/// re-queued when that symbol is assigned; propagators that consume the
/// per-node candidate lists additionally rerun at every node (candidate
/// generation is node-local).
class Propagator {
 public:
  virtual ~Propagator() = default;
  [[nodiscard]] virtual std::string id() const = 0;
  [[nodiscard]] virtual const std::set<std::string>& watches() const = 0;
  [[nodiscard]] virtual bool rerunEveryNode() const { return false; }
  virtual void propagate(PropagationContext& ctx) = 0;
};

/// Builds the propagator set for a translated vocabulary. Empty vocabulary
/// => empty set => the engine's search degenerates to the paper's.
[[nodiscard]] std::vector<std::unique_ptr<Propagator>> makePropagators(
    const SolverVocabulary& vocab);

}  // namespace dpart::constraint
