#pragma once

#include <string>

#include "constraint/system.hpp"

namespace dpart::constraint {

/// Renders a constraint system as a Graphviz digraph in the style of the
/// paper's Figures 1c and 9: one node per partition symbol (shaded when a
/// COMP predicate requires completeness, double-circled when DISJ requires
/// disjointness, box-shaped for fixed/external partitions), an unlabeled
/// edge for P1 <= P2, and an f-labeled edge for image(P1, f, R) <= P2.
/// Subset constraints of other shapes are rendered as dashed annotation
/// nodes so nothing in the system is hidden.
std::string toGraphviz(const System& system, const std::string& name = "C");

}  // namespace dpart::constraint
