#include "constraint/unify.hpp"

#include <algorithm>

#include "constraint/solver.hpp"
#include "support/check.hpp"

namespace dpart::constraint {

using dpl::ExprKind;

std::vector<GraphEdge> constraintGraph(const System& system) {
  std::vector<GraphEdge> edges;
  for (const Subset& sc : system.subsets()) {
    if (sc.rhs->kind != ExprKind::Symbol) continue;
    if (sc.lhs->kind == ExprKind::Symbol) {
      edges.push_back(GraphEdge{sc.lhs->name, sc.rhs->name, ""});
    } else if (sc.lhs->kind == ExprKind::Image &&
               sc.lhs->arg->kind == ExprKind::Symbol) {
      edges.push_back(GraphEdge{sc.lhs->arg->name, sc.rhs->name, sc.lhs->fn});
    }
  }
  return edges;
}

std::string UnifyResult::resolve(std::string symbol) const {
  auto it = renames.find(symbol);
  while (it != renames.end()) {
    symbol = it->second;
    it = renames.find(symbol);
  }
  return symbol;
}

namespace {

bool solvable(const System& system,
              const std::map<std::string, dpl::ExprPtr>& initial,
              const std::set<std::string>& rangeFns) {
  Solver solver(system, rangeFns);
  solver.setMaxSteps(20000);
  return static_cast<bool>(solver.solve(initial));
}

// A candidate unification: pairs (loser, survivor) induced by one common
// subgraph, plus its edge count (the size metric for greedy ordering).
struct CandidateUnification {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::size_t edgeCount = 0;
};

// Builds candidate unifications between the node sets of graphs A (within
// `combined`) and B. Nodes pair when their regions match and at most one is
// fixed; identical symbols act as anchors (they connect product edges but
// are not themselves unified). Connected components of the product graph are
// the candidate common subgraphs.
std::vector<CandidateUnification> commonSubgraphs(
    const System& combined, const std::vector<GraphEdge>& edgesA,
    const std::vector<GraphEdge>& edgesB, const std::set<std::string>& nodesA,
    const std::set<std::string>& nodesB) {
  struct ProductNode {
    std::string a;
    std::string b;
  };
  std::vector<ProductNode> nodes;
  std::map<std::pair<std::string, std::string>, std::size_t> nodeIndex;
  auto addNode = [&](const std::string& a, const std::string& b) {
    auto key = std::make_pair(a, b);
    auto it = nodeIndex.find(key);
    if (it != nodeIndex.end()) return it->second;
    if (!combined.hasSymbol(a) || !combined.hasSymbol(b)) {
      return static_cast<std::size_t>(-1);
    }
    if (a != b) {
      if (combined.regionOf(a) != combined.regionOf(b)) {
        return static_cast<std::size_t>(-1);
      }
      if (combined.isFixed(a) && combined.isFixed(b)) {
        return static_cast<std::size_t>(-1);
      }
    }
    const std::size_t idx = nodes.size();
    nodes.push_back(ProductNode{a, b});
    nodeIndex.emplace(key, idx);
    return idx;
  };

  // Union-find over product nodes, connected by matching-label edges.
  std::vector<std::size_t> parent;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::vector<std::size_t> edgeCountOf;

  std::vector<std::pair<std::size_t, std::size_t>> productEdges;
  for (const GraphEdge& ea : edgesA) {
    for (const GraphEdge& eb : edgesB) {
      if (ea.label != eb.label) continue;
      const std::size_t u = addNode(ea.from, eb.from);
      const std::size_t v = addNode(ea.to, eb.to);
      if (u == static_cast<std::size_t>(-1) ||
          v == static_cast<std::size_t>(-1)) {
        continue;
      }
      productEdges.emplace_back(u, v);
    }
  }
  (void)nodesA;
  (void)nodesB;

  parent.resize(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) parent[i] = i;
  edgeCountOf.assign(nodes.size(), 0);
  for (const auto& [u, v] : productEdges) {
    const std::size_t ru = find(u);
    const std::size_t rv = find(v);
    if (ru != rv) parent[ru] = rv;
  }
  std::map<std::size_t, CandidateUnification> components;
  for (const auto& [u, v] : productEdges) {
    components[find(u)].edgeCount += 1;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto it = components.find(find(i));
    if (it == components.end()) continue;  // isolated pair: no edge gain
    if (nodes[i].a == nodes[i].b) continue;  // anchor
    it->second.pairs.emplace_back(nodes[i].a, nodes[i].b);
  }

  std::vector<CandidateUnification> out;
  for (auto& [root, cand] : components) {
    if (cand.pairs.empty()) continue;
    // Enforce injectivity greedily: each symbol participates at most once.
    std::set<std::string> used;
    std::vector<std::pair<std::string, std::string>> filtered;
    for (auto& pr : cand.pairs) {
      if (used.contains(pr.first) || used.contains(pr.second)) continue;
      used.insert(pr.first);
      used.insert(pr.second);
      filtered.push_back(pr);
    }
    cand.pairs = std::move(filtered);
    if (!cand.pairs.empty()) out.push_back(std::move(cand));
  }
  std::sort(out.begin(), out.end(),
            [](const CandidateUnification& x, const CandidateUnification& y) {
              return x.edgeCount > y.edgeCount;
            });
  return out;
}

// Orients a pair (a from the accumulated system, b from the incoming one)
// into (loser, survivor): fixed symbols always survive; otherwise the
// accumulated system's symbol does (Algorithm 3 line 16 renames C' into C).
std::pair<std::string, std::string> orient(const System& sys,
                                           const std::string& a,
                                           const std::string& b) {
  if (sys.isFixed(b)) return {a, b};
  return {b, a};
}

}  // namespace

void collapsePlainEdges(System& system,
                        std::map<std::string, std::string>& renames,
                        const std::set<std::string>& rangeFns) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const GraphEdge& e : constraintGraph(system)) {
      if (!e.label.empty()) continue;
      if (e.from == e.to) continue;
      if (system.isFixed(e.to)) continue;  // never eliminate a user partition
      if (!system.hasSymbol(e.from) || !system.hasSymbol(e.to)) continue;
      if (system.regionOf(e.from) != system.regionOf(e.to)) continue;
      System trial = system;
      trial.renameSymbol(e.to, e.from);
      if (!solvable(trial, {}, rangeFns)) continue;
      system = std::move(trial);
      renames[e.to] = e.from;
      changed = true;
      break;  // graph changed; restart scan
    }
  }
}

UnifyResult unifySystems(std::vector<System> systems,
                         const std::set<std::string>& rangeFns) {
  UnifyResult result;
  if (systems.empty()) return result;

  // Algorithm 3 line 3: biggest system first.
  std::sort(systems.begin(), systems.end(),
            [](const System& a, const System& b) {
              return a.preds().size() + a.subsets().size() >
                     b.preds().size() + b.subsets().size();
            });

  System combined = std::move(systems.front());
  for (std::size_t i = 1; i < systems.size(); ++i) {
    System next = std::move(systems[i]);
    // Repeatedly unify along the biggest viable common subgraph between the
    // accumulated system and the incoming one (lines 7-16).
    bool progress = true;
    while (progress) {
      progress = false;
      System merged = combined;
      merged.merge(next);
      const auto edgesA = constraintGraph(combined);
      const auto edgesB = constraintGraph(next);
      const auto candidates = commonSubgraphs(
          merged, edgesA, edgesB, combined.symbols(), next.symbols());
      for (const CandidateUnification& cand : candidates) {
        std::map<std::string, dpl::ExprPtr> initial;
        std::vector<std::pair<std::string, std::string>> oriented;
        bool valid = true;
        for (const auto& [a, b] : cand.pairs) {
          auto [loser, survivor] = orient(merged, a, b);
          if (initial.contains(loser)) {
            valid = false;
            break;
          }
          initial[loser] = dpl::symbol(survivor);
          oriented.emplace_back(loser, survivor);
        }
        if (!valid || initial.empty()) continue;
        if (!solvable(merged, initial, rangeFns)) continue;
        // Accept: apply renames to both systems.
        for (const auto& [loser, survivor] : oriented) {
          for (System* sys : {&combined, &next}) {
            if (!sys->hasSymbol(loser)) continue;
            if (!sys->hasSymbol(survivor)) {
              sys->declareSymbol(survivor, sys->regionOf(loser),
                                 merged.isFixed(survivor));
            }
            sys->renameSymbol(loser, survivor);
          }
          result.renames[loser] = survivor;
        }
        progress = true;
        break;
      }
    }
    combined.merge(next);
    combined = combined.substituted({});  // dedup shared conjuncts
  }
  result.system = std::move(combined);
  return result;
}

}  // namespace dpart::constraint
