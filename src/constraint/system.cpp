#include "constraint/system.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace dpart::constraint {

std::string Pred::toString() const {
  switch (kind) {
    case Kind::Part:
      return "PART(" + expr->toString() + ", " + region + ")";
    case Kind::Disj:
      return "DISJ(" + expr->toString() + ")";
    case Kind::Comp:
      return "COMP(" + expr->toString() + ", " + region + ")";
  }
  DPART_UNREACHABLE("bad Pred::Kind");
}

std::string Subset::toString() const {
  return lhs->toString() + " <= " + rhs->toString();
}

void System::declareSymbol(const std::string& name, const std::string& region,
                           bool fixed) {
  auto it = symbolRegion_.find(name);
  if (it != symbolRegion_.end()) {
    DPART_CHECK(it->second == region,
                "symbol '" + name + "' re-declared with different region");
    if (fixed) fixed_.insert(name);
    return;
  }
  symbolRegion_.emplace(name, region);
  if (fixed) fixed_.insert(name);
  preds_.push_back(Pred{Pred::Kind::Part, dpl::symbol(name), region});
}

const std::string& System::regionOf(const std::string& symbol) const {
  auto it = symbolRegion_.find(symbol);
  DPART_CHECK(it != symbolRegion_.end(),
              "undeclared partition symbol '" + symbol + "'");
  return it->second;
}

std::set<std::string> System::symbols() const {
  std::set<std::string> out;
  for (const auto& [name, _] : symbolRegion_) out.insert(name);
  return out;
}

std::set<std::string> System::openSymbols() const {
  std::set<std::string> out;
  for (const auto& [name, _] : symbolRegion_) {
    if (!fixed_.contains(name)) out.insert(name);
  }
  return out;
}

void System::addDisj(ExprPtr expr, bool assumed) {
  preds_.push_back(Pred{Pred::Kind::Disj, std::move(expr), "", assumed});
}

void System::addComp(ExprPtr expr, std::string region, bool assumed) {
  preds_.push_back(
      Pred{Pred::Kind::Comp, std::move(expr), std::move(region), assumed});
}

void System::addPart(ExprPtr expr, std::string region, bool assumed) {
  preds_.push_back(
      Pred{Pred::Kind::Part, std::move(expr), std::move(region), assumed});
}

void System::addSubset(ExprPtr lhs, ExprPtr rhs, bool assumed) {
  subsets_.push_back(Subset{std::move(lhs), std::move(rhs), assumed});
}

bool System::requiresDisj(const std::string& symbol) const {
  return std::any_of(preds_.begin(), preds_.end(), [&](const Pred& p) {
    return p.kind == Pred::Kind::Disj &&
           p.expr->kind == dpl::ExprKind::Symbol && p.expr->name == symbol;
  });
}

bool System::requiresComp(const std::string& symbol) const {
  return std::any_of(preds_.begin(), preds_.end(), [&](const Pred& p) {
    return p.kind == Pred::Kind::Comp &&
           p.expr->kind == dpl::ExprKind::Symbol && p.expr->name == symbol;
  });
}

void System::merge(const System& other, bool assumed) {
  for (const auto& [name, reg] : other.symbolRegion_) {
    declareSymbol(name, reg, other.fixed_.contains(name) || assumed);
  }
  for (Pred p : other.preds_) {
    // Symbol PART preds were re-added by declareSymbol; skip duplicates.
    if (p.kind == Pred::Kind::Part && p.expr->kind == dpl::ExprKind::Symbol) {
      continue;
    }
    p.assumed = p.assumed || assumed;
    preds_.push_back(std::move(p));
  }
  for (Subset sc : other.subsets_) {
    sc.assumed = sc.assumed || assumed;
    subsets_.push_back(std::move(sc));
  }
}

System System::substituted(const std::map<std::string, ExprPtr>& subst) const {
  System out;
  for (const auto& [name, reg] : symbolRegion_) {
    if (subst.contains(name)) continue;
    out.declareSymbol(name, reg, fixed_.contains(name));
  }
  std::set<std::string> seen;
  for (const Pred& p : preds_) {
    if (p.kind == Pred::Kind::Part && p.expr->kind == dpl::ExprKind::Symbol &&
        !subst.contains(p.expr->name)) {
      continue;  // re-added by declareSymbol above
    }
    Pred q = p;
    q.expr = dpl::substitute(p.expr, subst);
    if (seen.insert(q.toString() + (q.assumed ? "#a" : "")).second) {
      out.preds_.push_back(std::move(q));
    }
  }
  for (const Subset& sc : subsets_) {
    Subset q = sc;
    q.lhs = dpl::substitute(sc.lhs, subst);
    q.rhs = dpl::substitute(sc.rhs, subst);
    if (dpl::exprEq(q.lhs, q.rhs)) continue;  // tautology
    if (seen.insert(q.toString() + (q.assumed ? "#a" : "")).second) {
      out.subsets_.push_back(std::move(q));
    }
  }
  return out;
}

void System::renameSymbol(const std::string& from, const std::string& to) {
  DPART_CHECK(symbolRegion_.contains(to),
              "rename target '" + to + "' not declared");
  DPART_CHECK(regionOf(from) == regionOf(to),
              "cannot unify partitions of different regions");
  std::map<std::string, ExprPtr> subst{{from, dpl::symbol(to)}};
  const bool wasFixed = fixed_.contains(from);
  *this = substituted(subst);
  if (wasFixed) fixed_.insert(to);
}

int System::depth(const std::string& symbol) const {
  // Longest chain through subset constraints. The inference algorithm never
  // creates cycles among solver symbols, but external (fixed) recursive
  // constraints may (PENNANT Hint2); we bound recursion to the symbol count.
  const int limit = static_cast<int>(symbolRegion_.size()) + 1;
  std::function<int(const std::string&, int)> go =
      [&](const std::string& sym, int fuel) -> int {
    if (fuel <= 0) return 0;
    int best = 0;
    for (const Subset& sc : subsets_) {
      if (sc.rhs->kind != dpl::ExprKind::Symbol || sc.rhs->name != sym) {
        continue;
      }
      std::set<std::string> lhsSyms;
      sc.lhs->collectSymbols(lhsSyms);
      for (const std::string& s : lhsSyms) {
        if (s == sym) continue;
        best = std::max(best, 1 + go(s, fuel - 1));
      }
      best = std::max(best, lhsSyms.empty() ? 1 : best);
    }
    return best;
  };
  return go(symbol, limit);
}

std::string System::toString() const {
  std::ostringstream os;
  for (const auto& [name, reg] : symbolRegion_) {
    os << (fixed_.contains(name) ? "fixed " : "") << name << " : partition of "
       << reg << '\n';
  }
  for (const Pred& p : preds_) {
    if (p.kind == Pred::Kind::Part && p.expr->kind == dpl::ExprKind::Symbol) {
      continue;  // implied by the declarations above
    }
    os << p.toString() << '\n';
  }
  for (const Subset& s : subsets_) os << s.toString() << '\n';
  return os.str();
}

}  // namespace dpart::constraint
