#include "constraint/graphviz.hpp"

#include <sstream>

#include "constraint/unify.hpp"

namespace dpart::constraint {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string toGraphviz(const System& system, const std::string& name) {
  std::ostringstream os;
  os << "digraph \"" << escape(name) << "\" {\n";
  os << "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
  for (const std::string& sym : system.symbols()) {
    os << "  \"" << escape(sym) << "\" [";
    os << "label=\"" << escape(sym) << "\\n" << escape(system.regionOf(sym))
       << '"';
    if (system.isFixed(sym)) os << ", shape=box";
    if (system.requiresComp(sym)) os << ", style=filled, fillcolor=gray85";
    if (system.requiresDisj(sym)) os << ", peripheries=2";
    os << "];\n";
  }
  for (const GraphEdge& e : constraintGraph(system)) {
    os << "  \"" << escape(e.from) << "\" -> \"" << escape(e.to) << '"';
    if (!e.label.empty()) os << " [label=\"" << escape(e.label) << "\"]";
    os << ";\n";
  }
  // Any subset constraint that is not one of the two graph-edge forms is
  // still shown, as a dashed annotation.
  int annot = 0;
  for (const Subset& sc : system.subsets()) {
    const bool plain = sc.lhs->kind == dpl::ExprKind::Symbol &&
                       sc.rhs->kind == dpl::ExprKind::Symbol;
    const bool image = sc.lhs->kind == dpl::ExprKind::Image &&
                       sc.lhs->arg->kind == dpl::ExprKind::Symbol &&
                       sc.rhs->kind == dpl::ExprKind::Symbol;
    if (plain || image) continue;
    const std::string id = "annot" + std::to_string(annot++);
    os << "  \"" << id << "\" [shape=note, style=dashed, label=\""
       << escape(sc.toString()) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dpart::constraint
