#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "constraint/system.hpp"

namespace dpart::constraint {

/// Canonicalization of constraint-graph isomorphism classes.
///
/// Algorithm 3's unification already treats two loops as "the same" when
/// their constraint graphs are isomorphic under a renaming of partition
/// symbols; this module lifts that to whole programs so a compile result can
/// be cached across tenants: two programs whose pre-unification constraint
/// systems are isomorphic under a joint renaming of partition symbols,
/// regions and function ids receive the same canonical form — the same
/// 64-bit hash (the plan-cache key) and the same canonical rendering (the
/// collision guard) — together with the renaming itself, so a solve cached
/// under one tenant's names can be rebound into another tenant's names.
/// "Distribution Constraints: The Chase" grounds why this is sound:
/// entailment between distribution-constraint systems is structural, so
/// isomorphic systems have isomorphic solution sets.

/// A rename over the three name spaces a constraint system mentions.
/// Names absent from a map pass through unchanged (the identity function id
/// `f_ID` is deliberately never renamed: it is structural, not symbolic).
struct NameMaps {
  std::map<std::string, std::string> symbols;
  std::map<std::string, std::string> regions;
  std::map<std::string, std::string> fns;

  [[nodiscard]] const std::string& symbol(const std::string& name) const;
  [[nodiscard]] const std::string& region(const std::string& name) const;
  [[nodiscard]] const std::string& fn(const std::string& name) const;

  /// Swaps keys and values of every map (requires each to be injective).
  [[nodiscard]] NameMaps inverted() const;
};

/// Rebuilds an expression with every symbol / region / fn renamed.
[[nodiscard]] dpl::ExprPtr mapExpr(const dpl::ExprPtr& e, const NameMaps& m);

/// Rebuilds a system with every name mapped (declarations, predicates and
/// subset conjuncts alike); fixedness and assumed flags are preserved.
[[nodiscard]] System mapSystem(const System& s, const NameMaps& m);

/// One loop's contribution to the canonical form: its (post-relaxation)
/// constraint system plus the loop-level facts the downstream pipeline
/// consumes before solving — whether the loop was relaxed and which
/// partition symbols its uncentered reductions target (these drive the
/// Section 5.1 disjoint-reduction attempt, so they are part of the key).
struct CanonicalLoop {
  const System* system = nullptr;
  bool relaxed = false;
  std::vector<std::string> reduceTargets;
};

/// The canonical form of one program's pre-unification constraint state.
struct CanonicalForm {
  /// Cache key: 64-bit hash of `rendering`.
  std::uint64_t hash = 0;
  /// Complete, faithful text of the canonicalized systems (sorted conjuncts
  /// in canonical names). Two programs share a cache entry iff their
  /// renderings are byte-equal — the guard that makes a hash collision
  /// between structurally distinct programs harmless.
  std::string rendering;
  /// Request names -> canonical names ("s0..", "r0..", "f0.."), covering
  /// every symbol, region and fn the systems mention.
  NameMaps toCanonical;
};

/// Canonicalizes the given per-loop systems plus external constraint
/// systems via color refinement over the joint colored constraint graph
/// (symbols, regions, fns and loop tags as nodes; conjuncts as labeled
/// hyperedges), with deterministic individualization of residual ties.
/// `rangeFns` colors range-valued fns differently from point fns (the
/// lemma engine distinguishes them), and `optionBits` folds the compile
/// options that change the pipeline's output into the key. `extraKey` is
/// additional raw (non-canonicalized) key material appended verbatim to the
/// rendering and hash — the parallelizer passes the external-vocabulary
/// rendering plus pieces and region sizes, so vocabulary-constrained
/// compiles never collide with unconstrained ones.
///
/// Isomorphic inputs produce identical hash + rendering; the labeling is an
/// isomorphism onto the canonical form whenever the rendering matches, so
/// correctness of a cache hit never depends on the tie-breaking heuristic.
[[nodiscard]] CanonicalForm canonicalize(
    const std::vector<CanonicalLoop>& loops,
    const std::vector<const System*>& externals,
    const std::set<std::string>& rangeFns, std::uint64_t optionBits,
    const std::string& extraKey = {});

}  // namespace dpart::constraint
