#include "constraint/vocab.hpp"

#include <algorithm>
#include <sstream>

namespace dpart::constraint {

std::string Vocabulary::rendered() const {
  std::vector<std::string> lines;
  for (const CapacityBound& c : capacities) {
    lines.push_back("capacity " + c.region + " " +
                    std::to_string(c.maxPerPiece));
  }
  for (const FieldAffinity& a : affinities) {
    // Normalize pair order so {A,B} and {B,A} render identically.
    const std::string& lo = std::min(a.fieldA, a.fieldB);
    const std::string& hi = std::max(a.fieldA, a.fieldB);
    lines.push_back(std::string(a.together ? "colocate " : "anti ") + lo +
                    " " + hi);
  }
  for (const ReplicationBound& r : replications) {
    std::ostringstream os;
    os << "replicate " << r.region << " " << r.minFactor << " "
       << r.maxFactor;
    lines.push_back(os.str());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace dpart::constraint
