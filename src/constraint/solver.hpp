#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "constraint/system.hpp"
#include "dpl/program.hpp"

namespace dpart::constraint {

/// Result of constraint resolution.
struct Solution {
  bool ok = false;
  std::string failure;  ///< first unprovable conjunct / search exhaustion

  /// Ground expression synthesized for each open symbol (references only
  /// DPL operators and fixed external symbols).
  std::map<std::string, ExprPtr> assignments;
  /// Assignment order (respects derivation dependencies).
  std::vector<std::string> order;
  /// The fully substituted, verified system (diagnostics / tests).
  System resolved;

  /// Emits the solution as a DPL program with subexpression CSE, so derived
  /// partitions reference earlier ones (paper Fig. 2b / Fig. 10b shapes).
  [[nodiscard]] dpl::Program program() const;

  explicit operator bool() const { return ok; }
};

/// Algorithm 2: resolves a partitioning constraint system into one equality
/// per open partition symbol, backtracking over candidate expressions and
/// validating leaves with the lemma engine.
///
/// Candidate preference implements the paper's heuristics:
///  1. preimage for image-subsets with closed RHS (disjointness flows
///     right-to-left; lemmas L12/L14),
///  2. union of closed lower bounds (L13),
///  3. for DISJ/COMP symbols in descending subset-depth order: externally
///     provided partitions first (partition reuse, Section 3.3), then
///     equal(R) (L1).
class Solver {
 public:
  /// `rangeFns` lists range-valued fn ids (Section 4 lemma exclusions).
  Solver(System system, std::set<std::string> rangeFns);

  /// Solves, optionally starting from initial equalities (used both for
  /// external fixes and for unification consistency checks, where values may
  /// be other symbols of the system).
  [[nodiscard]] Solution solve(
      const std::map<std::string, ExprPtr>& initial = {});

  /// Search budget (backtracking steps); generous default, never hit by the
  /// paper's benchmarks.
  void setMaxSteps(std::size_t n) { maxSteps_ = n; }

 private:
  struct Candidate {
    std::string symbol;
    ExprPtr expr;
  };

  bool solveRec(const std::map<std::string, ExprPtr>& partial,
                std::vector<std::string>& order, Solution& out);
  [[nodiscard]] std::vector<Candidate> candidates(const System& c) const;
  [[nodiscard]] std::vector<ExprPtr> externalCandidates(
      const System& c, const std::string& region, bool needDisj,
      bool needComp) const;

  System system_;
  std::set<std::string> rangeFns_;
  std::size_t maxSteps_ = 200000;
  std::size_t steps_ = 0;
};

}  // namespace dpart::constraint
