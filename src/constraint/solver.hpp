#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "constraint/propagate.hpp"
#include "constraint/system.hpp"
#include "constraint/vocab.hpp"
#include "dpl/program.hpp"

namespace dpart::constraint {

class ProofLog;

/// Which resolution engine runs the search.
enum class SolverEngine {
  /// CP propagation loop: per-node domain stores over the paper's candidate
  /// expressions, watched-constraint propagator queue for the external
  /// vocabulary, restartable search heuristics, optional proof logging.
  /// With an empty vocabulary its search — and therefore its solutions —
  /// are identical to SyntaxDirected (differential-tested).
  Propagation,
  /// The original Algorithm 2 recursive resolution, kept as the reference
  /// implementation for differential testing.
  SyntaxDirected,
};

/// Per-solve configuration of the propagation engine.
struct SolverConfig {
  SolverEngine engine = SolverEngine::Propagation;
  /// Vocabulary constraints translated onto this system's symbols.
  SolverVocabulary vocab;
  /// |R| per region name (propagator arithmetic; may be empty, in which
  /// case vocabulary propagators never fire).
  std::map<std::string, std::size_t> regionSizes;
  /// Piece count partitions will be materialized at (0 = unknown).
  std::size_t pieces = 0;
  SearchOptions search;
  /// Proof certificate sink; the caller emits the header (model + system)
  /// and the solver appends the search trail. nullptr disables logging.
  ProofLog* proof = nullptr;
};

/// Result of constraint resolution.
struct Solution {
  bool ok = false;
  std::string failure;  ///< first unprovable conjunct / search exhaustion

  /// Ground expression synthesized for each open symbol (references only
  /// DPL operators and fixed external symbols).
  std::map<std::string, ExprPtr> assignments;
  /// Assignment order (respects derivation dependencies).
  std::vector<std::string> order;
  /// The fully substituted, verified system (diagnostics / tests).
  System resolved;
  /// Propagation-engine counters (all zero under SyntaxDirected).
  SolveStats stats;
  /// First-conflict provenance when the failure stems from the external
  /// vocabulary (valid() iff a propagator emptied a symbol's options).
  ConflictInfo conflict;

  /// Emits the solution as a DPL program with subexpression CSE, so derived
  /// partitions reference earlier ones (paper Fig. 2b / Fig. 10b shapes).
  [[nodiscard]] dpl::Program program() const;

  explicit operator bool() const { return ok; }
};

/// Algorithm 2: resolves a partitioning constraint system into one equality
/// per open partition symbol, backtracking over candidate expressions and
/// validating leaves with the lemma engine.
///
/// Candidate preference implements the paper's heuristics:
///  1. preimage for image-subsets with closed RHS (disjointness flows
///     right-to-left; lemmas L12/L14),
///  2. union of closed lower bounds (L13),
///  3. for DISJ/COMP symbols in descending subset-depth order: externally
///     provided partitions first (partition reuse, Section 3.3), then
///     equal(R) (L1).
///
/// The default engine wraps that candidate generation in a CP propagation
/// loop (constraint/propagate): each search node's candidates seed a domain
/// store, vocabulary propagators prune it through a watched-constraint
/// queue, and the branching order is a restartable heuristic. See
/// docs/solver.md.
class Solver {
 public:
  /// `rangeFns` lists range-valued fn ids (Section 4 lemma exclusions).
  Solver(System system, std::set<std::string> rangeFns);
  Solver(System system, std::set<std::string> rangeFns, SolverConfig config);

  /// Solves, optionally starting from initial equalities (used both for
  /// external fixes and for unification consistency checks, where values may
  /// be other symbols of the system).
  [[nodiscard]] Solution solve(
      const std::map<std::string, ExprPtr>& initial = {});

  /// Search budget (backtracking steps across all restart attempts);
  /// generous default, never hit by the paper's benchmarks.
  void setMaxSteps(std::size_t n) { maxSteps_ = n; }

 private:
  struct Candidate {
    std::string symbol;
    ExprPtr expr;
  };

  bool solveRec(const std::map<std::string, ExprPtr>& partial,
                std::vector<std::string>& order, Solution& out);
  bool searchNode(const std::map<std::string, ExprPtr>& partial,
                  std::vector<std::string>& order, Solution& out,
                  std::size_t parentId, const std::string& branchedSymbol,
                  SearchHeuristic heuristic);
  [[nodiscard]] Solution solvePropagation(
      const std::map<std::string, ExprPtr>& initial);
  [[nodiscard]] std::vector<Candidate> candidates(const System& c) const;
  [[nodiscard]] std::vector<ExprPtr> externalCandidates(
      const System& c, const std::string& region, bool needDisj,
      bool needComp) const;

  System system_;
  std::set<std::string> rangeFns_;
  SolverConfig config_;
  std::size_t maxSteps_ = 200000;
  std::size_t steps_ = 0;
  std::size_t stepCap_ = 0;     ///< current attempt's cumulative step cap
  bool budgetHit_ = false;      ///< current attempt stopped on its cap
  std::size_t nodeCounter_ = 0;
  ConflictInfo conflict_;
  std::vector<std::unique_ptr<Propagator>> propagators_;
};

}  // namespace dpart::constraint
