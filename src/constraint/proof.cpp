#include "constraint/proof.hpp"

namespace dpart::constraint {

void ProofLog::line(const std::string& s) {
  os_ << s << '\n';
  ++events_;
  bytes_ += s.size() + 1;
}

void ProofLog::begin(std::size_t pieces) {
  line("cert DPRF 1");
  line("pieces " + std::to_string(pieces));
}

void ProofLog::region(const std::string& name, std::size_t size) {
  line("region " + name + " " + std::to_string(size));
}

void ProofLog::pointFn(const std::string& id, const std::string& domain,
                       const std::string& range,
                       const std::vector<long long>& table) {
  std::string s = "fn " + id + " point " + domain + " " + range;
  for (long long v : table) {
    s += ' ';
    s += std::to_string(v);
  }
  line(s);
}

void ProofLog::rangeFn(const std::string& id, const std::string& domain,
                       const std::string& range,
                       const std::vector<std::pair<long long, long long>>&
                           table) {
  std::string s = "fn " + id + " range " + domain + " " + range;
  for (const auto& [lo, hi] : table) {
    s += ' ';
    s += std::to_string(lo);
    s += ':';
    s += std::to_string(hi);
  }
  line(s);
}

void ProofLog::symbol(const std::string& name, bool fixed,
                      const std::string& region) {
  line("symbol " + name + (fixed ? " fixed " : " open ") + region);
}

void ProofLog::conjuncts(const System& system) {
  for (const Pred& p : system.preds()) {
    std::string s = std::string("conjunct ") +
                    (p.assumed ? "assumed " : "required ");
    switch (p.kind) {
      case Pred::Kind::Part: s += "part " + p.region + " "; break;
      case Pred::Kind::Disj: s += "disj "; break;
      case Pred::Kind::Comp: s += "comp " + p.region + " "; break;
    }
    s += p.expr->toString();
    line(s);
  }
  for (const Subset& sc : system.subsets()) {
    line(std::string("conjunct ") + (sc.assumed ? "assumed " : "required ") +
         "subset " + sc.lhs->toString() + " <= " + sc.rhs->toString());
  }
}

void ProofLog::vocabulary(const SolverVocabulary& vocab) {
  for (const auto& [sym, cap] : vocab.capacity) {
    line("vocab capacity " + sym + " " + std::to_string(cap));
  }
  for (const auto& [sym, bounds] : vocab.replication) {
    line("vocab replicate " + sym + " " + std::to_string(bounds.first) +
         " " + std::to_string(bounds.second));
  }
  for (const SolverVocabulary::SymbolPair& p : vocab.colocated) {
    line("vocab colocate " + p.symA + " " + p.symB + " " + p.fieldA + " " +
         p.fieldB);
  }
  for (const SolverVocabulary::SymbolPair& p : vocab.antiAffine) {
    line("vocab anti " + p.symA + " " + p.symB + " " + p.fieldA + " " +
         p.fieldB);
  }
}

void ProofLog::beginSearch() { line("begin search"); }

void ProofLog::restart(std::size_t attempt, const std::string& heuristic,
                       std::size_t budget) {
  line("restart " + std::to_string(attempt) + " " + heuristic + " " +
       std::to_string(budget));
}

void ProofLog::node(std::size_t id, std::size_t parent,
                    const std::string& branchedSymbol) {
  line("node " + std::to_string(id) + " " + std::to_string(parent) + " " +
       (branchedSymbol.empty() ? "-" : branchedSymbol));
}

void ProofLog::candidate(std::size_t node, std::size_t idx,
                         const std::string& symbol, const dpl::ExprPtr& expr) {
  line("cand " + std::to_string(node) + " " + std::to_string(idx) + " " +
       symbol + " " + expr->toString());
}

void ProofLog::dedup(std::size_t node, std::size_t idx) {
  line("dedup " + std::to_string(node) + " " + std::to_string(idx));
}

void ProofLog::prune(std::size_t node, std::size_t idx,
                     const std::string& rule, const std::string& detail) {
  line("prune " + std::to_string(node) + " " + std::to_string(idx) + " " +
       rule + (detail.empty() ? "" : " " + detail));
}

void ProofLog::refute(std::size_t node, const std::string& symbol,
                      const std::string& rule, const std::string& detail) {
  line("refute " + std::to_string(node) + " " + symbol + " " + rule +
       (detail.empty() ? "" : " " + detail));
}

void ProofLog::branch(std::size_t node, std::size_t idx) {
  line("branch " + std::to_string(node) + " " + std::to_string(idx));
}

void ProofLog::leafOk(std::size_t node) {
  line("leaf " + std::to_string(node) + " ok");
}

void ProofLog::leafBad(std::size_t node, const std::string& conjunct) {
  line("leaf " + std::to_string(node) + " bad " + conjunct);
}

void ProofLog::backtrack(std::size_t node) {
  line("backtrack " + std::to_string(node));
}

void ProofLog::exhausted(std::size_t node) {
  line("exhausted " + std::to_string(node));
}

void ProofLog::budget(std::size_t node) {
  line("budget " + std::to_string(node));
}

void ProofLog::solution(const std::vector<std::string>& order,
                        const std::map<std::string, dpl::ExprPtr>&
                            assignments) {
  line("solution");
  for (const std::string& sym : order) {
    line("assign " + sym + " " + assignments.at(sym)->toString());
  }
}

void ProofLog::infeasible(const std::string& detail) {
  line("infeasible " + detail);
}

void ProofLog::planStmt(const std::string& name, const dpl::ExprPtr& expr) {
  line("dplstmt " + name + " " + expr->toString());
}

void ProofLog::expectation(const std::string& l) { line("expect " + l); }

std::string ProofLog::finish() {
  if (!finished_) {
    line("end " + std::to_string(events_ + 1));
    finished_ = true;
  }
  return os_.str();
}

}  // namespace dpart::constraint
