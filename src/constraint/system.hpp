#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dpl/expr.hpp"

namespace dpart::constraint {

using dpl::ExprPtr;

/// Predicate on a partition expression (paper Fig. 5):
///   PART(E, R)  — E is a partition of region R
///   DISJ(E)     — E is disjoint
///   COMP(E, R)  — E is complete over R
struct Pred {
  enum class Kind { Part, Disj, Comp };
  Kind kind{};
  ExprPtr expr;
  std::string region;  // Part/Comp
  /// Assumed conjuncts are user-asserted external invariants (Section 3.3):
  /// they serve as hypotheses and are not themselves proof obligations.
  bool assumed = false;

  [[nodiscard]] std::string toString() const;
};

/// Subset constraint E1 <= E2 (subregion-wise containment).
struct Subset {
  ExprPtr lhs;
  ExprPtr rhs;
  bool assumed = false;  ///< see Pred::assumed

  [[nodiscard]] std::string toString() const;
};

/// A system of partitioning constraints over named partition symbols.
///
/// Symbols are registered with the region they partition; *fixed* symbols
/// are externally provided partitions (Section 3.3) that the solver must not
/// synthesize expressions for.
class System {
 public:
  /// Registers a partition symbol. Registering also records PART(P, R).
  void declareSymbol(const std::string& name, const std::string& region,
                     bool fixed = false);

  [[nodiscard]] bool hasSymbol(const std::string& name) const {
    return symbolRegion_.contains(name);
  }
  [[nodiscard]] const std::string& regionOf(const std::string& symbol) const;
  [[nodiscard]] bool isFixed(const std::string& symbol) const {
    return fixed_.contains(symbol);
  }

  /// All declared symbols / only the non-fixed ones the solver must resolve.
  [[nodiscard]] std::set<std::string> symbols() const;
  [[nodiscard]] std::set<std::string> openSymbols() const;

  void addDisj(ExprPtr expr, bool assumed = false);
  void addComp(ExprPtr expr, std::string region, bool assumed = false);
  /// Adds a general PART predicate on a non-symbol expression (symbol PART
  /// predicates are implied by declareSymbol).
  void addPart(ExprPtr expr, std::string region, bool assumed = false);
  void addSubset(ExprPtr lhs, ExprPtr rhs, bool assumed = false);

  [[nodiscard]] const std::vector<Pred>& preds() const { return preds_; }
  [[nodiscard]] const std::vector<Subset>& subsets() const {
    return subsets_;
  }

  [[nodiscard]] bool requiresDisj(const std::string& symbol) const;
  [[nodiscard]] bool requiresComp(const std::string& symbol) const;

  /// Conjoins another system (used to combine per-loop constraints and
  /// external constraints). Shared symbols must agree on their region.
  /// With `assumed`, the other system's conjuncts become hypotheses (this is
  /// how user-provided external constraints enter).
  void merge(const System& other, bool assumed = false);

  /// Applies a symbol substitution to every conjunct, drops tautological
  /// subsets (E <= E), and deduplicates identical conjuncts.
  [[nodiscard]] System substituted(
      const std::map<std::string, ExprPtr>& subst) const;

  /// Renames a symbol everywhere (unification); `to` may be an existing
  /// symbol of the same region.
  void renameSymbol(const std::string& from, const std::string& to);

  /// depth(P) = k for the longest chain E1 <= ... <= Ek <= P through subset
  /// constraints whose RHS are symbols (Algorithm 2's resolution order).
  [[nodiscard]] int depth(const std::string& symbol) const;

  [[nodiscard]] std::string toString() const;

 private:
  std::vector<Pred> preds_;
  std::vector<Subset> subsets_;
  std::map<std::string, std::string> symbolRegion_;
  std::set<std::string> fixed_;
};

/// Generates fresh partition symbol names P1, P2, ... (optionally prefixed,
/// so constraints from different loops stay distinguishable).
class SymbolGen {
 public:
  explicit SymbolGen(std::string prefix = "P") : prefix_(std::move(prefix)) {}
  std::string fresh() { return prefix_ + std::to_string(++count_); }

 private:
  std::string prefix_;
  int count_ = 0;
};

}  // namespace dpart::constraint
