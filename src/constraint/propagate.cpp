#include "constraint/propagate.hpp"

#include <algorithm>

namespace dpart::constraint {

using dpl::Expr;
using dpl::ExprKind;

const char* toString(SearchHeuristic h) {
  switch (h) {
    case SearchHeuristic::PaperOrder: return "paper";
    case SearchHeuristic::SmallestDomain: return "smallest";
  }
  return "?";
}

std::string ConflictInfo::toString() const {
  std::string out = rule + " on " + symbol;
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

// ---- interval arithmetic -------------------------------------------------

namespace {

constexpr std::size_t kMax = PieceBounds::kUnbounded;

std::size_t satAdd(std::size_t a, std::size_t b) {
  return a > kMax - b ? kMax : a + b;
}

std::size_t satMul(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kMax || b == kMax) return kMax;
  return a > kMax / b ? kMax : a * b;
}

std::size_t satSub(std::size_t a, std::size_t b) { return a > b ? a - b : 0; }

std::size_t ceilDiv(std::size_t s, std::size_t n) {
  if (n == 0) return s == 0 ? 0 : kMax;
  if (s == kMax) return kMax;
  return (s + n - 1) / n;
}

std::size_t sizeOf(const BoundsEnv& env, const std::string& region) {
  if (region.empty() || env.regionSizes == nullptr) return kMax;
  auto it = env.regionSizes->find(region);
  return it == env.regionSizes->end() ? kMax : it->second;
}

/// Region the expression's pieces are subsets of ("" when unknown).
std::string targetRegion(const Expr& e, const BoundsEnv& env) {
  switch (e.kind) {
    case ExprKind::Equal:
    case ExprKind::Image:
    case ExprKind::Preimage:
      return e.region;
    case ExprKind::Symbol:
      return env.regionOf ? env.regionOf(e.name) : std::string();
    case ExprKind::Union:
    case ExprKind::Intersect:
    case ExprKind::Subtract: {
      std::string t = targetRegion(*e.lhs, env);
      return t.empty() ? targetRegion(*e.rhs, env) : t;
    }
  }
  return {};
}

}  // namespace

PieceBounds boundsOf(const Expr& e, const BoundsEnv& env) {
  const std::size_t n = env.pieces;
  PieceBounds out;
  switch (e.kind) {
    case ExprKind::Equal: {
      const std::size_t s = sizeOf(env, e.region);
      if (s == kMax) break;  // unknown region: everything stays unbounded
      // equal(R) splits R into n near-even chunks: exact bounds.
      const std::size_t mp = ceilDiv(s, n);
      return PieceBounds{mp, mp, s, s};
    }
    case ExprKind::Symbol: {
      // A fixed external partition of a known region: each piece is a
      // subregion of R (PART), nothing else is known.
      const std::size_t s =
          sizeOf(env, env.regionOf ? env.regionOf(e.name) : std::string());
      out.maxPieceHi = s;
      out.totalHi = satMul(n, s);
      break;
    }
    case ExprKind::Union: {
      const PieceBounds a = boundsOf(*e.lhs, env);
      const PieceBounds b = boundsOf(*e.rhs, env);
      out.maxPieceLo = std::max(a.maxPieceLo, b.maxPieceLo);
      out.maxPieceHi = satAdd(a.maxPieceHi, b.maxPieceHi);
      out.totalLo = std::max(a.totalLo, b.totalLo);
      out.totalHi = satAdd(a.totalHi, b.totalHi);
      break;
    }
    case ExprKind::Intersect: {
      const PieceBounds a = boundsOf(*e.lhs, env);
      const PieceBounds b = boundsOf(*e.rhs, env);
      out.maxPieceHi = std::min(a.maxPieceHi, b.maxPieceHi);
      out.totalHi = std::min(a.totalHi, b.totalHi);
      break;
    }
    case ExprKind::Subtract: {
      const PieceBounds a = boundsOf(*e.lhs, env);
      const PieceBounds b = boundsOf(*e.rhs, env);
      out.maxPieceLo = satSub(a.maxPieceLo, b.maxPieceHi);
      out.maxPieceHi = a.maxPieceHi;
      out.totalLo = satSub(a.totalLo, b.totalHi);
      out.totalHi = a.totalHi;
      break;
    }
    case ExprKind::Image: {
      const PieceBounds a = boundsOf(*e.arg, env);
      const std::size_t sT = sizeOf(env, e.region);
      const bool rangeValued =
          env.rangeFns != nullptr && env.rangeFns->contains(e.fn);
      // A point fn maps each element to one target element, so a piece's
      // image is no larger than the piece; a range fn can expand.
      out.maxPieceHi = rangeValued ? sT : std::min(a.maxPieceHi, sT);
      out.totalHi =
          rangeValued ? satMul(n, sT) : std::min(a.totalHi, satMul(n, sT));
      break;
    }
    case ExprKind::Preimage: {
      const std::size_t sS = sizeOf(env, e.region);
      out.maxPieceHi = sS;
      out.totalHi = satMul(n, sS);
      break;
    }
  }
  // Pieces are subregions of the target region.
  const std::size_t sTarget = sizeOf(env, targetRegion(e, env));
  out.maxPieceHi = std::min(out.maxPieceHi, sTarget);
  // Pigeonhole: totalLo elements spread over n pieces force a big piece.
  out.maxPieceLo = std::max(out.maxPieceLo, ceilDiv(out.totalLo, n));
  out.maxPieceHi = std::min(out.maxPieceHi, out.totalHi);
  return out;
}

// ---- domain store --------------------------------------------------------

const std::vector<std::size_t> DomainStore::kEmpty;

void DomainStore::add(std::string symbol, dpl::ExprPtr expr) {
  bySymbol_[symbol].push_back(entries_.size());
  entries_.push_back(Entry{std::move(symbol), std::move(expr), true});
}

std::size_t DomainStore::liveCount(const std::string& symbol) const {
  std::size_t count = 0;
  for (std::size_t i : indicesOf(symbol)) {
    if (entries_[i].live) ++count;
  }
  return count;
}

const std::vector<std::size_t>& DomainStore::indicesOf(
    const std::string& symbol) const {
  auto it = bySymbol_.find(symbol);
  return it == bySymbol_.end() ? kEmpty : it->second;
}

std::vector<std::string> DomainStore::symbols() const {
  std::vector<std::string> out;
  out.reserve(bySymbol_.size());
  for (const auto& [sym, idxs] : bySymbol_) out.push_back(sym);
  return out;
}

std::vector<std::size_t> DomainStore::order(SearchHeuristic h) const {
  std::vector<std::size_t> out;
  out.reserve(entries_.size());
  if (h == SearchHeuristic::PaperOrder) {
    for (std::size_t i = 0; i < entries_.size(); ++i) out.push_back(i);
    return out;
  }
  std::vector<std::pair<std::size_t, std::string>> ranked;
  for (const auto& [sym, idxs] : bySymbol_) {
    ranked.emplace_back(liveCount(sym), sym);
  }
  std::sort(ranked.begin(), ranked.end());
  for (const auto& [count, sym] : ranked) {
    for (std::size_t i : indicesOf(sym)) out.push_back(i);
  }
  return out;
}

// ---- propagation context -------------------------------------------------

void PropagationContext::prune(std::size_t idx, const std::string& rule,
                               const std::string& detail) {
  if (!dom->live(idx)) return;
  dom->kill(idx);
  changed.insert(dom->entry(idx).symbol);
  if (stats != nullptr) ++stats->prunes;
  if (proof != nullptr) proof->prune(nodeId, idx, rule, detail);
  if (!conflict.valid() && dom->liveCount(dom->entry(idx).symbol) == 0) {
    conflict.symbol = dom->entry(idx).symbol;
    conflict.rule = rule;
    conflict.detail = detail;
  }
}

void PropagationContext::refute(const std::string& symbol,
                                const std::string& rule,
                                const std::string& detail) {
  refuted = true;
  if (!conflict.valid()) {
    conflict.symbol = symbol;
    conflict.rule = rule;
    conflict.detail = detail;
  }
  if (proof != nullptr) proof->refute(nodeId, symbol, rule, detail);
}

// ---- propagators ---------------------------------------------------------

namespace {

bool isOpen(const PropagationContext& ctx, const std::string& symbol) {
  return ctx.system->hasSymbol(symbol) && !ctx.system->isFixed(symbol) &&
         !ctx.partial->contains(symbol);
}

/// Known size of a region, or kUnbounded (propagators then stay silent —
/// never prune on a size they cannot justify).
std::size_t knownSize(const PropagationContext& ctx,
                      const std::string& region) {
  auto it = ctx.bounds.regionSizes->find(region);
  return it == ctx.bounds.regionSizes->end() ? kMax : it->second;
}

/// Per-node capacity bound on one symbol's candidates, with a pigeonhole
/// refutation when the symbol must be complete: any complete partition of R
/// into n pieces has a piece of at least ceil(|R|/n) elements.
class CapacityPropagator final : public Propagator {
 public:
  CapacityPropagator(std::string symbol, std::size_t cap)
      : symbol_(std::move(symbol)), cap_(cap), watches_{symbol_} {}

  [[nodiscard]] std::string id() const override {
    return "capacity(" + symbol_ + ")";
  }
  [[nodiscard]] const std::set<std::string>& watches() const override {
    return watches_;
  }
  [[nodiscard]] bool rerunEveryNode() const override { return true; }

  void propagate(PropagationContext& ctx) override {
    if (!isOpen(ctx, symbol_)) return;
    const std::string& region = ctx.system->regionOf(symbol_);
    const std::size_t s = knownSize(ctx, region);
    if (s != kMax && ctx.bounds.pieces > 0 &&
        ctx.system->requiresComp(symbol_)) {
      const std::size_t need = (s + ctx.bounds.pieces - 1) / ctx.bounds.pieces;
      if (need > cap_) {
        ctx.refute(symbol_, "capacity-comp",
                   "region=" + region + " size=" + std::to_string(s) +
                       " pieces=" + std::to_string(ctx.bounds.pieces) +
                       " cap=" + std::to_string(cap_) +
                       " minMaxPiece=" + std::to_string(need));
        return;
      }
    }
    for (std::size_t idx : ctx.dom->indicesOf(symbol_)) {
      if (!ctx.dom->live(idx)) continue;
      const PieceBounds b = boundsOf(*ctx.dom->entry(idx).expr, ctx.bounds);
      if (b.maxPieceLo > cap_) {
        ctx.prune(idx, "capacity",
                  "region=" + region + " cap=" + std::to_string(cap_) +
                      " maxPieceLo=" + std::to_string(b.maxPieceLo));
      }
    }
  }

 private:
  std::string symbol_;
  std::size_t cap_;
  std::set<std::string> watches_;
};

/// Replication-factor window on one symbol's total materialized elements,
/// with COMP/DISJ refutations (a complete partition totals at least |R|, a
/// disjoint one at most |R|).
class ReplicationPropagator final : public Propagator {
 public:
  ReplicationPropagator(std::string symbol, double minFactor, double maxFactor)
      : symbol_(std::move(symbol)),
        min_(minFactor),
        max_(maxFactor),
        watches_{symbol_} {}

  [[nodiscard]] std::string id() const override {
    return "replicate(" + symbol_ + ")";
  }
  [[nodiscard]] const std::set<std::string>& watches() const override {
    return watches_;
  }
  [[nodiscard]] bool rerunEveryNode() const override { return true; }

  void propagate(PropagationContext& ctx) override {
    if (!isOpen(ctx, symbol_)) return;
    const std::string& region = ctx.system->regionOf(symbol_);
    const std::size_t s = knownSize(ctx, region);
    if (s == kMax) return;
    const auto sd = static_cast<double>(s);
    if (s > 0 && max_ > 0 && max_ < 1.0 &&
        ctx.system->requiresComp(symbol_)) {
      ctx.refute(symbol_, "replicate-comp",
                 "region=" + region + " size=" + std::to_string(s) +
                     " maxFactor=" + std::to_string(max_));
      return;
    }
    if (s > 0 && min_ > 1.0 && ctx.system->requiresDisj(symbol_)) {
      ctx.refute(symbol_, "replicate-disj",
                 "region=" + region + " size=" + std::to_string(s) +
                     " minFactor=" + std::to_string(min_));
      return;
    }
    for (std::size_t idx : ctx.dom->indicesOf(symbol_)) {
      if (!ctx.dom->live(idx)) continue;
      const PieceBounds b = boundsOf(*ctx.dom->entry(idx).expr, ctx.bounds);
      if (max_ > 0 && static_cast<double>(b.totalLo) > max_ * sd) {
        ctx.prune(idx, "replicate-max",
                  "region=" + region + " maxFactor=" + std::to_string(max_) +
                      " totalLo=" + std::to_string(b.totalLo));
      } else if (min_ > 0 && b.totalHi != PieceBounds::kUnbounded &&
                 static_cast<double>(b.totalHi) < min_ * sd) {
        ctx.prune(idx, "replicate-min",
                  "region=" + region + " minFactor=" + std::to_string(min_) +
                      " totalHi=" + std::to_string(b.totalHi));
      }
    }
  }

 private:
  std::string symbol_;
  double min_;
  double max_;
  std::set<std::string> watches_;
};

/// Co-location: once one side of the pair is assigned, the other side's
/// candidates must be the identical expression (same partition => same
/// placement). Enforced up to expression identity.
class ColocatePropagator final : public Propagator {
 public:
  explicit ColocatePropagator(SolverVocabulary::SymbolPair pair)
      : pair_(std::move(pair)), watches_{pair_.symA, pair_.symB} {}

  [[nodiscard]] std::string id() const override {
    return "colocate(" + pair_.symA + "," + pair_.symB + ")";
  }
  [[nodiscard]] const std::set<std::string>& watches() const override {
    return watches_;
  }
  // The prune consumes the node-local candidate list, which searchNode
  // rebuilds from scratch at every node: the partner may have been assigned
  // on an ancestor branch, so waiting for a watched-symbol change this node
  // would drop the constraint after any unrelated branch.
  [[nodiscard]] bool rerunEveryNode() const override { return true; }

  void propagate(PropagationContext& ctx) override {
    direct(ctx, pair_.symA, pair_.symB);
    direct(ctx, pair_.symB, pair_.symA);
  }

 private:
  void direct(PropagationContext& ctx, const std::string& from,
              const std::string& to) {
    auto it = ctx.partial->find(from);
    if (it == ctx.partial->end() || !isOpen(ctx, to)) return;
    const std::string want = it->second->toString();
    for (std::size_t idx : ctx.dom->indicesOf(to)) {
      if (!ctx.dom->live(idx)) continue;
      if (ctx.dom->entry(idx).expr->toString() != want) {
        ctx.prune(idx, "colocate",
                  "partner=" + from + " fields=" + pair_.fieldA + "," +
                      pair_.fieldB + " want=" + want);
      }
    }
  }

  SolverVocabulary::SymbolPair pair_;
  std::set<std::string> watches_;
};

/// Anti-affinity: the two partitions must be piecewise disjoint. When
/// unification collapsed both fields onto one symbol this is refutable
/// outright (a complete partition of a non-empty region cannot be disjoint
/// from itself); otherwise identical candidate expressions with a provably
/// non-empty piece total are pruned.
class AntiAffinityPropagator final : public Propagator {
 public:
  explicit AntiAffinityPropagator(SolverVocabulary::SymbolPair pair)
      : pair_(std::move(pair)), watches_{pair_.symA, pair_.symB} {}

  [[nodiscard]] std::string id() const override {
    return "anti(" + pair_.symA + "," + pair_.symB + ")";
  }
  [[nodiscard]] const std::set<std::string>& watches() const override {
    return watches_;
  }
  // Candidate lists are node-local (see ColocatePropagator): rerun always,
  // both for the self-pair refutation and the ancestor-assignment prunes.
  [[nodiscard]] bool rerunEveryNode() const override { return true; }

  void propagate(PropagationContext& ctx) override {
    if (pair_.symA == pair_.symB) {
      self(ctx);
      return;
    }
    direct(ctx, pair_.symA, pair_.symB);
    direct(ctx, pair_.symB, pair_.symA);
  }

 private:
  void self(PropagationContext& ctx) {
    const std::string& sym = pair_.symA;
    if (!isOpen(ctx, sym)) return;
    const std::string& region = ctx.system->regionOf(sym);
    const std::size_t s = knownSize(ctx, region);
    if (s == kMax) return;
    if (s > 0 && ctx.system->requiresComp(sym)) {
      ctx.refute(sym, "anti-self",
                 "fields=" + pair_.fieldA + "," + pair_.fieldB + " region=" +
                     region + " size=" + std::to_string(s));
      return;
    }
    for (std::size_t idx : ctx.dom->indicesOf(sym)) {
      if (!ctx.dom->live(idx)) continue;
      const PieceBounds b = boundsOf(*ctx.dom->entry(idx).expr, ctx.bounds);
      if (b.totalLo > 0) {
        ctx.prune(idx, "anti-self",
                  "fields=" + pair_.fieldA + "," + pair_.fieldB +
                      " totalLo=" + std::to_string(b.totalLo));
      }
    }
  }

  void direct(PropagationContext& ctx, const std::string& from,
              const std::string& to) {
    auto it = ctx.partial->find(from);
    if (it == ctx.partial->end() || !isOpen(ctx, to)) return;
    const std::string avoid = it->second->toString();
    for (std::size_t idx : ctx.dom->indicesOf(to)) {
      if (!ctx.dom->live(idx)) continue;
      if (ctx.dom->entry(idx).expr->toString() != avoid) continue;
      const PieceBounds b = boundsOf(*ctx.dom->entry(idx).expr, ctx.bounds);
      if (b.totalLo > 0) {
        ctx.prune(idx, "anti",
                  "partner=" + from + " fields=" + pair_.fieldA + "," +
                      pair_.fieldB + " totalLo=" + std::to_string(b.totalLo));
      }
    }
  }

  SolverVocabulary::SymbolPair pair_;
  std::set<std::string> watches_;
};

}  // namespace

std::vector<std::unique_ptr<Propagator>> makePropagators(
    const SolverVocabulary& vocab) {
  std::vector<std::unique_ptr<Propagator>> out;
  for (const auto& [sym, cap] : vocab.capacity) {
    out.push_back(std::make_unique<CapacityPropagator>(sym, cap));
  }
  for (const auto& [sym, bounds] : vocab.replication) {
    out.push_back(std::make_unique<ReplicationPropagator>(sym, bounds.first,
                                                          bounds.second));
  }
  for (const SolverVocabulary::SymbolPair& p : vocab.colocated) {
    out.push_back(std::make_unique<ColocatePropagator>(p));
  }
  for (const SolverVocabulary::SymbolPair& p : vocab.antiAffine) {
    out.push_back(std::make_unique<AntiAffinityPropagator>(p));
  }
  return out;
}

}  // namespace dpart::constraint
