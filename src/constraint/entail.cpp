#include "constraint/entail.hpp"

#include "support/check.hpp"

namespace dpart::constraint {

using dpl::Expr;
using dpl::ExprKind;

namespace {
// Proof search depth bound; systems are shallow, and hypothesis chaining
// (transitivity, L5/L8) is the only source of recursion growth.
constexpr int kFuel = 10;
}  // namespace

Entailment::Entailment(const System& hypotheses,
                       std::set<std::string> rangeFns)
    : hyp_(hypotheses), rangeFns_(std::move(rangeFns)) {}

std::string Entailment::regionOf(const ExprPtr& e) const {
  switch (e->kind) {
    case ExprKind::Symbol:
      return hyp_.hasSymbol(e->name) ? hyp_.regionOf(e->name) : "";
    case ExprKind::Equal:
    case ExprKind::Image:
    case ExprKind::Preimage:
      return e->region;
    case ExprKind::Union:
    case ExprKind::Intersect:
    case ExprKind::Subtract: {
      std::string l = regionOf(e->lhs);
      return l.empty() ? regionOf(e->rhs) : l;
    }
  }
  DPART_UNREACHABLE("bad ExprKind");
}

bool Entailment::provePart(const ExprPtr& e, const std::string& region) {
  switch (e->kind) {
    case ExprKind::Symbol:
      // A declared symbol is a partition of its declared region.
      return hyp_.hasSymbol(e->name) && hyp_.regionOf(e->name) == region;
    case ExprKind::Equal:   // L1
    case ExprKind::Image:   // L2
    case ExprKind::Preimage:  // L3
      return e->region == region;
    case ExprKind::Union:  // L4
      return provePart(e->lhs, region) && provePart(e->rhs, region);
    case ExprKind::Intersect:  // L4 (either operand suffices set-wise)
      return provePart(e->lhs, region) || provePart(e->rhs, region);
    case ExprKind::Subtract:  // L4 (the minuend suffices set-wise)
      return provePart(e->lhs, region);
  }
  DPART_UNREACHABLE("bad ExprKind");
}

bool Entailment::proveDisj(const ExprPtr& e) { return proveDisjFuel(e, kFuel); }

bool Entailment::proveDisjFuel(const ExprPtr& e, int fuel) {
  if (fuel <= 0) return false;
  // Hypothesis: an asserted/established DISJ on a structurally equal expr.
  for (const Pred& p : hyp_.preds()) {
    if (p.kind == Pred::Kind::Disj && usable(p) && dpl::exprEq(p.expr, e)) {
      return true;
    }
  }
  switch (e->kind) {
    case ExprKind::Equal:  // L1
      return true;
    case ExprKind::Intersect:  // L9
      if (proveDisjFuel(e->lhs, fuel - 1) || proveDisjFuel(e->rhs, fuel - 1)) {
        return true;
      }
      break;
    case ExprKind::Subtract:  // L10
      if (proveDisjFuel(e->lhs, fuel - 1)) return true;
      break;
    case ExprKind::Preimage:  // L12 — point-valued functions only
      if (pointFn(e->fn) && proveDisjFuel(e->arg, fuel - 1)) return true;
      break;
    case ExprKind::Image:
      // image(preimage(R, f, E), f, S) <= E (point f), so by L8 it is
      // disjoint whenever E is.
      if (pointFn(e->fn) && e->arg->kind == ExprKind::Preimage &&
          e->arg->fn == e->fn && proveDisjFuel(e->arg->arg, fuel - 1)) {
        return true;
      }
      break;
    case ExprKind::Symbol:
    case ExprKind::Union:
      break;
  }
  // L8: E <= E2 (hypothesis) and DISJ(E2).
  for (const Subset& sc : hyp_.subsets()) {
    if (usable(sc) && dpl::exprEq(sc.lhs, e) && !dpl::exprEq(sc.rhs, e) &&
        proveDisjFuel(sc.rhs, fuel - 1)) {
      return true;
    }
  }
  return false;
}

bool Entailment::proveComp(const ExprPtr& e, const std::string& region) {
  return proveCompFuel(e, region, kFuel);
}

bool Entailment::proveCompFuel(const ExprPtr& e, const std::string& region,
                               int fuel) {
  if (fuel <= 0) return false;
  for (const Pred& p : hyp_.preds()) {
    if (p.kind == Pred::Kind::Comp && usable(p) && p.region == region &&
        dpl::exprEq(p.expr, e)) {
      return true;
    }
  }
  switch (e->kind) {
    case ExprKind::Equal:  // L1
      return e->region == region;
    case ExprKind::Union:  // L6
      if (proveCompFuel(e->lhs, region, fuel - 1) ||
          proveCompFuel(e->rhs, region, fuel - 1)) {
        return true;
      }
      break;
    case ExprKind::Preimage: {  // L7 — point-valued functions only
      if (e->region == region && pointFn(e->fn)) {
        const std::string argRegion = regionOf(e->arg);
        if (!argRegion.empty() && proveCompFuel(e->arg, argRegion, fuel - 1)) {
          return true;
        }
      }
      break;
    }
    case ExprKind::Symbol:
    case ExprKind::Image:
    case ExprKind::Intersect:
    case ExprKind::Subtract:
      break;
  }
  // L5: E1 <= E (hypothesis) with COMP(E1, R) and PART(E, R).
  for (const Subset& sc : hyp_.subsets()) {
    if (usable(sc) && dpl::exprEq(sc.rhs, e) && !dpl::exprEq(sc.lhs, e) &&
        provePart(e, region) && proveCompFuel(sc.lhs, region, fuel - 1)) {
      return true;
    }
  }
  return false;
}

bool Entailment::proveSubset(const ExprPtr& lhs, const ExprPtr& rhs) {
  return proveSubsetFuel(lhs, rhs, kFuel);
}

bool Entailment::proveSubsetFuel(const ExprPtr& lhs, const ExprPtr& rhs,
                                 int fuel) {
  if (fuel <= 0) return false;
  if (dpl::exprEq(lhs, rhs)) return true;
  for (const Subset& sc : hyp_.subsets()) {
    if (usable(sc) && dpl::exprEq(sc.lhs, lhs) && dpl::exprEq(sc.rhs, rhs)) {
      return true;
    }
  }

  // Structural decompositions of the left-hand side.
  switch (lhs->kind) {
    case ExprKind::Union:  // L13
      if (proveSubsetFuel(lhs->lhs, rhs, fuel - 1) &&
          proveSubsetFuel(lhs->rhs, rhs, fuel - 1)) {
        return true;
      }
      break;
    case ExprKind::Intersect:  // (A n B) <= A (and <= B)
      if (proveSubsetFuel(lhs->lhs, rhs, fuel - 1) ||
          proveSubsetFuel(lhs->rhs, rhs, fuel - 1)) {
        return true;
      }
      break;
    case ExprKind::Subtract:  // (A - B) <= A
      if (proveSubsetFuel(lhs->lhs, rhs, fuel - 1)) return true;
      break;
    case ExprKind::Image:
      // image(preimage(R, f, E), f, S) <= E for point-valued f; combined
      // with transitivity this also covers L14's conclusion.
      if (pointFn(lhs->fn) && lhs->arg->kind == ExprKind::Preimage &&
          lhs->arg->fn == lhs->fn &&
          proveSubsetFuel(lhs->arg->arg, rhs, fuel - 1)) {
        return true;
      }
      // Monotonicity: image(E1, f, R) <= image(E2, f, R) when E1 <= E2.
      if (rhs->kind == ExprKind::Image && lhs->fn == rhs->fn &&
          lhs->region == rhs->region &&
          proveSubsetFuel(lhs->arg, rhs->arg, fuel - 1)) {
        return true;
      }
      // L14: E1 <= preimage(R1, f, E2) implies image(E1, f, R2) <= E2
      // (point-valued f only).
      if (pointFn(lhs->fn)) {
        for (const Subset& sc : hyp_.subsets()) {
          if (usable(sc) && dpl::exprEq(sc.lhs, lhs->arg) &&
              sc.rhs->kind == ExprKind::Preimage && sc.rhs->fn == lhs->fn &&
              proveSubsetFuel(sc.rhs->arg, rhs, fuel - 1)) {
            return true;
          }
        }
      }
      break;
    case ExprKind::Preimage:
      // Monotonicity of preimage.
      if (rhs->kind == ExprKind::Preimage && lhs->fn == rhs->fn &&
          lhs->region == rhs->region &&
          proveSubsetFuel(lhs->arg, rhs->arg, fuel - 1)) {
        return true;
      }
      break;
    case ExprKind::Symbol:
    case ExprKind::Equal:
      break;
  }

  // Structural decompositions of the right-hand side.
  switch (rhs->kind) {
    case ExprKind::Union:  // A <= (B u C) if A <= B or A <= C
      if (proveSubsetFuel(lhs, rhs->lhs, fuel - 1) ||
          proveSubsetFuel(lhs, rhs->rhs, fuel - 1)) {
        return true;
      }
      break;
    case ExprKind::Intersect:  // A <= (B n C) iff A <= B and A <= C
      if (proveSubsetFuel(lhs, rhs->lhs, fuel - 1) &&
          proveSubsetFuel(lhs, rhs->rhs, fuel - 1)) {
        return true;
      }
      break;
    default:
      break;
  }

  // Transitivity through hypothesis subsets: lhs <= M (hyp), M <= rhs.
  for (const Subset& sc : hyp_.subsets()) {
    if (usable(sc) && dpl::exprEq(sc.lhs, lhs) && !dpl::exprEq(sc.rhs, rhs) &&
        proveSubsetFuel(sc.rhs, rhs, fuel - 1)) {
      return true;
    }
  }
  return false;
}

bool Entailment::prove(const Pred& pred) {
  switch (pred.kind) {
    case Pred::Kind::Part:
      return provePart(pred.expr, pred.region);
    case Pred::Kind::Disj:
      return proveDisj(pred.expr);
    case Pred::Kind::Comp:
      return proveComp(pred.expr, pred.region);
  }
  DPART_UNREACHABLE("bad Pred::Kind");
}

bool Entailment::prove(const Subset& subset) {
  return proveSubset(subset.lhs, subset.rhs);
}

std::string checkResolved(const System& system,
                          const std::set<std::string>& rangeFns) {
  Entailment ent(system, rangeFns);
  for (const Pred& p : system.preds()) {
    if (p.assumed) continue;
    ent.excludeConjunct(p.toString());
    if (!ent.prove(p)) return p.toString();
  }
  for (const Subset& sc : system.subsets()) {
    if (sc.assumed) continue;
    ent.excludeConjunct(sc.toString());
    if (!ent.prove(sc)) return sc.toString();
  }
  ent.excludeConjunct("");
  return "";
}

}  // namespace dpart::constraint
