#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "constraint/system.hpp"

namespace dpart::constraint {

/// One edge of a constraint graph (paper Fig. 9): an unlabeled edge encodes
/// P1 <= P2 and an edge labeled with a function symbol f encodes
/// image(P1, f, R) <= P2. These are the only subset forms inference emits.
struct GraphEdge {
  std::string from;
  std::string to;
  std::string label;  ///< "" for plain subset edges
};

/// Extracts the constraint graph of a system.
std::vector<GraphEdge> constraintGraph(const System& system);

/// Result of combining and unifying per-loop (and external) systems.
struct UnifyResult {
  System system;
  /// Eliminated symbol -> surviving symbol, for mapping per-loop access
  /// symbols to the final unified names.
  std::map<std::string, std::string> renames;

  /// Follows rename chains to the surviving name.
  [[nodiscard]] std::string resolve(std::string symbol) const;
};

/// Intra-system simplification: collapses plain subset edges P <= Q between
/// symbols of the same region by unifying Q into P when the system stays
/// solvable (the paper's Example 4, which folds the partitions of centered
/// accesses into the iteration-space partition).
void collapsePlainEdges(System& system,
                        std::map<std::string, std::string>& renames,
                        const std::set<std::string>& rangeFns);

/// Algorithm 3 (UnifyAndSolve's unification phase): combines the given
/// systems, greedily unifying symbols along maximal common subgraphs of
/// their constraint graphs, validating each unification by solvability.
/// Systems should arrive with external conjuncts already marked assumed.
UnifyResult unifySystems(std::vector<System> systems,
                         const std::set<std::string>& rangeFns);

}  // namespace dpart::constraint
