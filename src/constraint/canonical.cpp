#include "constraint/canonical.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/check.hpp"

namespace dpart::constraint {

namespace {

// The identity function id (region::kIdentityFnId). Redefined here rather
// than included so the constraint layer keeps depending only on dpl.
const std::string kIdentityFn = "f_ID";

// --- 64-bit FNV-1a, the same primitive the Evaluator's memo cache uses. ---

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv64(const std::string& s,
                    std::uint64_t h = kFnvOffset) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // Feed each byte of v through FNV so mixing is order-sensitive.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

// --- Graph nodes ------------------------------------------------------------

enum class NodeKind : std::uint8_t { Sym, Region, Fn, Loop };

struct NodeKey {
  NodeKind kind{};
  // Sym/Region/Fn: the name; Loop: the system's index rendered as text (loop
  // tags have no request-visible name — they exist only to keep conjuncts of
  // different loops from mingling during refinement).
  std::string name;

  bool operator<(const NodeKey& o) const {
    if (kind != o.kind) return kind < o.kind;
    return name < o.name;
  }
  bool operator==(const NodeKey& o) const {
    return kind == o.kind && name == o.name;
  }
};

struct Canonicalizer {
  std::vector<CanonicalLoop> loops;    // loop systems then externals
  std::set<std::string> rangeFns;
  std::uint64_t optionBits = 0;
  std::string extraKey;
  std::size_t externalStart = 0;       // index of first external system

  std::vector<NodeKey> nodes;          // stable order: sorted by key
  std::map<NodeKey, std::size_t> nodeIndex;
  std::vector<std::uint64_t> color;    // current color per node
  // Incidence contributions gathered during one refinement round:
  // per node, the multiset of (conjunct signature mixed with position).
  std::vector<std::vector<std::uint64_t>> touches;

  /// One step of a compiled conjunct-signature program: mix a constant
  /// (colorOf < 0) or the current color of a node (colorOf >= 0) into the
  /// running signature.
  struct Token {
    std::int64_t colorOf = -1;
    std::uint64_t value = 0;
  };

  /// One conjunct, compiled once: refinement rounds replay the token
  /// program against the current coloring instead of re-walking expression
  /// trees and name maps every round (the refinement loop runs
  /// O(individualizations x rounds-to-fixpoint) times, so per-round cost
  /// dominates canonicalization).
  struct Compiled {
    std::uint64_t tag = 0;
    std::size_t loopNode = 0;
    std::vector<Token> tokens;
    std::vector<std::pair<std::size_t, std::uint64_t>> mentions;
  };
  std::vector<Compiled> conjuncts;

  std::size_t node(NodeKind kind, const std::string& name) {
    auto it = nodeIndex.find(NodeKey{kind, name});
    DPART_CHECK(it != nodeIndex.end(),
                "canonicalize: unregistered graph node '" + name + "'");
    return it->second;
  }

  void registerNode(NodeKind kind, const std::string& name) {
    NodeKey key{kind, name};
    if (!nodeIndex.contains(key)) nodeIndex.emplace(key, 0);
  }

  void registerExprNodes(const dpl::ExprPtr& e) {
    if (!e) return;
    switch (e->kind) {
      case dpl::ExprKind::Symbol:
        registerNode(NodeKind::Sym, e->name);
        return;
      case dpl::ExprKind::Union:
      case dpl::ExprKind::Intersect:
      case dpl::ExprKind::Subtract:
        registerExprNodes(e->lhs);
        registerExprNodes(e->rhs);
        return;
      case dpl::ExprKind::Image:
      case dpl::ExprKind::Preimage:
        registerExprNodes(e->arg);
        registerNode(NodeKind::Fn, e->fn);
        registerNode(NodeKind::Region, e->region);
        return;
      case dpl::ExprKind::Equal:
        registerNode(NodeKind::Region, e->region);
        return;
    }
    DPART_UNREACHABLE("bad ExprKind");
  }

  void collectNodes() {
    for (std::size_t i = 0; i < loops.size(); ++i) {
      registerNode(NodeKind::Loop, std::to_string(i));
      const System& sys = *loops[i].system;
      for (const std::string& s : sys.symbols()) {
        registerNode(NodeKind::Sym, s);
        registerNode(NodeKind::Region, sys.regionOf(s));
      }
      for (const Pred& p : sys.preds()) {
        registerExprNodes(p.expr);
        if (!p.region.empty()) registerNode(NodeKind::Region, p.region);
      }
      for (const Subset& sc : sys.subsets()) {
        registerExprNodes(sc.lhs);
        registerExprNodes(sc.rhs);
      }
      for (const std::string& t : loops[i].reduceTargets) {
        registerNode(NodeKind::Sym, t);
      }
    }
    // Freeze: node index = rank in sorted key order. This order is input-name
    // dependent and is used only as a stable working order; canonical ranks
    // come from colors alone.
    nodes.reserve(nodeIndex.size());
    for (auto& [key, idx] : nodeIndex) {
      idx = nodes.size();
      nodes.push_back(key);
    }
  }

  /// Kind-intrinsic initial color, independent of any input name. `f_ID` is
  /// the one exception: it is structural (every program has it; it is never
  /// renamed), so it gets a reserved color of its own.
  void initColors() {
    color.assign(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeKey& k = nodes[i];
      std::uint64_t c = fnv64("kind");
      c = mix(c, static_cast<std::uint64_t>(k.kind));
      switch (k.kind) {
        case NodeKind::Sym:
          break;  // fixedness enters via declaration conjuncts per system
        case NodeKind::Region:
          break;
        case NodeKind::Fn:
          c = mix(c, k.name == kIdentityFn ? 2
                     : rangeFns.contains(k.name) ? 1
                                                 : 0);
          break;
        case NodeKind::Loop: {
          const std::size_t li = std::stoul(k.name);
          c = mix(c, loops[li].relaxed ? 1 : 0);
          c = mix(c, li >= externalStart ? 1 : 0);
          break;
        }
      }
      color[i] = c;
    }
  }

  void touch(std::size_t nodeIdx, std::uint64_t conjunctSig,
             std::uint64_t pos) {
    touches[nodeIdx].push_back(mix(conjunctSig, pos));
  }

  /// Compiles an expression into tokens: constants marking the structure,
  /// color references at every node position. Mirrors the shape the old
  /// per-round recursive signature walk hashed; only the numeric values
  /// differ, and nothing downstream depends on those (canonical ranks come
  /// from color ORDER, the rendering from ranks).
  void compileExpr(const dpl::ExprPtr& e, std::uint64_t path, Compiled& out) {
    DPART_CHECK(e != nullptr, "canonicalize: null expression");
    out.tokens.push_back(
        Token{-1, mix(fnv64("expr"), static_cast<std::uint64_t>(e->kind))});
    switch (e->kind) {
      case dpl::ExprKind::Symbol: {
        const std::size_t n = node(NodeKind::Sym, e->name);
        out.mentions.emplace_back(n, path);
        out.tokens.push_back(Token{static_cast<std::int64_t>(n), 0});
        return;
      }
      case dpl::ExprKind::Union:
      case dpl::ExprKind::Intersect:
      case dpl::ExprKind::Subtract:
        compileExpr(e->lhs, mix(path, 1), out);
        compileExpr(e->rhs, mix(path, 2), out);
        return;
      case dpl::ExprKind::Image:
      case dpl::ExprKind::Preimage: {
        compileExpr(e->arg, mix(path, 1), out);
        const std::size_t fn = node(NodeKind::Fn, e->fn);
        const std::size_t rg = node(NodeKind::Region, e->region);
        out.mentions.emplace_back(fn, mix(path, 3));
        out.mentions.emplace_back(rg, mix(path, 4));
        out.tokens.push_back(Token{static_cast<std::int64_t>(fn), 0});
        out.tokens.push_back(Token{static_cast<std::int64_t>(rg), 0});
        return;
      }
      case dpl::ExprKind::Equal: {
        const std::size_t rg = node(NodeKind::Region, e->region);
        out.mentions.emplace_back(rg, mix(path, 4));
        out.tokens.push_back(Token{static_cast<std::int64_t>(rg), 0});
        return;
      }
    }
    DPART_UNREACHABLE("bad ExprKind");
  }

  void compileConjunct(std::uint64_t tag, std::size_t loopIdx,
                       const std::vector<const dpl::ExprPtr*>& exprs,
                       const std::vector<std::size_t>& extraNodes) {
    Compiled c;
    c.tag = tag;
    c.loopNode = node(NodeKind::Loop, std::to_string(loopIdx));
    std::uint64_t slot = fnv64("slot");
    for (const dpl::ExprPtr* e : exprs) {
      slot = mix(slot, 1);
      c.tokens.push_back(Token{-1, slot});
      compileExpr(*e, slot, c);
    }
    for (std::size_t n : extraNodes) {
      slot = mix(slot, 2);
      c.mentions.emplace_back(n, slot);
      c.tokens.push_back(Token{static_cast<std::int64_t>(n), 0});
    }
    conjuncts.push_back(std::move(c));
  }

  void compileAllConjuncts() {
    for (std::size_t i = 0; i < loops.size(); ++i) {
      const System& sys = *loops[i].system;
      for (const std::string& s : sys.symbols()) {
        std::uint64_t tag = fnv64("decl");
        tag = mix(tag, sys.isFixed(s) ? 1 : 0);
        compileConjunct(tag, i, {},
                        {node(NodeKind::Sym, s),
                         node(NodeKind::Region, sys.regionOf(s))});
      }
      for (const Pred& p : sys.preds()) {
        // Symbol PART preds are implied by declarations; skip them so the
        // graph does not double-count what `decl` conjuncts already carry.
        if (p.kind == Pred::Kind::Part &&
            p.expr->kind == dpl::ExprKind::Symbol) {
          continue;
        }
        std::uint64_t tag = fnv64("pred");
        tag = mix(tag, static_cast<std::uint64_t>(p.kind));
        tag = mix(tag, p.assumed ? 1 : 0);
        std::vector<std::size_t> extra;
        if (!p.region.empty()) extra.push_back(node(NodeKind::Region, p.region));
        compileConjunct(tag, i, {&p.expr}, extra);
      }
      for (const Subset& sc : sys.subsets()) {
        std::uint64_t tag = fnv64("subset");
        tag = mix(tag, sc.assumed ? 1 : 0);
        compileConjunct(tag, i, {&sc.lhs, &sc.rhs}, {});
      }
      for (const std::string& t : loops[i].reduceTargets) {
        compileConjunct(fnv64("reduce-target"), i, {},
                        {node(NodeKind::Sym, t)});
      }
    }
  }

  /// One refinement round over the compiled conjuncts; returns the
  /// partition (node -> class rank).
  std::size_t rounds = 0;
  std::size_t individualizations = 0;

  std::vector<std::size_t> refineRound() {
    ++rounds;
    const std::uint64_t atLoop = fnv64("@loop");
    const std::uint64_t rf = fnv64("rf");
    touches.resize(nodes.size());
    for (std::vector<std::uint64_t>& t : touches) t.clear();
    for (const Compiled& c : conjuncts) {
      std::uint64_t sig = mix(c.tag, color[c.loopNode]);
      for (const Token& t : c.tokens) {
        sig = mix(sig, t.colorOf >= 0
                           ? color[static_cast<std::size_t>(t.colorOf)]
                           : t.value);
      }
      touch(c.loopNode, sig, atLoop);
      for (const auto& [n, pos] : c.mentions) touch(n, sig, pos);
    }
    std::vector<std::uint64_t> next(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      // Sort in place (multiset semantics) and fold; the buffer's capacity
      // is reused across rounds.
      std::sort(touches[i].begin(), touches[i].end());
      std::uint64_t h = mix(color[i], rf);
      for (std::uint64_t v : touches[i]) h = mix(h, v);
      next[i] = h;
    }
    color = std::move(next);
    // Partition = ranks of the distinct colors.
    std::vector<std::uint64_t> distinct = color;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    std::vector<std::size_t> part(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      part[i] = static_cast<std::size_t>(
          std::lower_bound(distinct.begin(), distinct.end(), color[i]) -
          distinct.begin());
    }
    return part;
  }

  /// Refines to a fixed point of the partition. Convergence is detected on
  /// the CLASS COUNT, not the rank vector: colors are rehashed every round,
  /// so rank labels permute even once the partition is stable, but
  /// refinement only ever splits classes — the count is monotone and stops
  /// growing exactly at the fixed point. (Comparing rank vectors here made
  /// every fixpoint run to its |nodes|-round safety cap.)
  std::vector<std::size_t> refineToFixpoint() {
    std::vector<std::size_t> part = refineRound();
    if (part.empty()) return part;
    std::size_t classes =
        1 + *std::max_element(part.begin(), part.end());
    // The partition only ever splits, so at most |nodes| productive rounds.
    for (std::size_t round = 0; round <= nodes.size(); ++round) {
      std::vector<std::size_t> next = refineRound();
      const std::size_t nextClasses =
          1 + *std::max_element(next.begin(), next.end());
      part = std::move(next);
      if (nextClasses <= classes) return part;
      classes = nextClasses;
    }
    return part;
  }

  /// Splits residual tied classes one node at a time. The choice of which
  /// node to individualize is a heuristic (first member in input-name order
  /// of the lowest-rank non-singleton class): a "wrong" choice can only make
  /// two isomorphic inputs land on different canonical forms (a cache miss,
  /// caught by the rendering guard) — never on the same form, because the
  /// rendering is a faithful image of the input.
  void individualize() {
    std::vector<std::size_t> part = refineToFixpoint();
    for (;;) {
      // Class rank -> members (in node order, i.e. sorted input names).
      std::map<std::size_t, std::vector<std::size_t>> classes;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        classes[part[i]].push_back(i);
      }
      const auto tied =
          std::find_if(classes.begin(), classes.end(),
                       [](const auto& c) { return c.second.size() > 1; });
      if (tied == classes.end()) return;
      ++individualizations;
      color[tied->second.front()] =
          mix(color[tied->second.front()], fnv64("indiv"));
      part = refineToFixpoint();
    }
  }

  CanonicalForm finish() {
    CanonicalForm out;
    // Canonical names: rank nodes of each kind by final color. All colors
    // are distinct after individualization.
    struct Ranked {
      std::uint64_t color;
      std::size_t idx;
    };
    std::map<NodeKind, std::vector<Ranked>> byKind;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      byKind[nodes[i].kind].push_back(Ranked{color[i], i});
    }
    std::vector<std::string> loopNames(loops.size());
    for (auto& [kind, ranked] : byKind) {
      std::sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                                 const Ranked& b) {
        return a.color < b.color;
      });
      std::size_t rank = 0;
      for (const Ranked& r : ranked) {
        const std::string& name = nodes[r.idx].name;
        switch (kind) {
          case NodeKind::Sym:
            out.toCanonical.symbols[name] = "s" + std::to_string(rank);
            break;
          case NodeKind::Region:
            out.toCanonical.regions[name] = "r" + std::to_string(rank);
            break;
          case NodeKind::Fn:
            if (name != kIdentityFn) {
              out.toCanonical.fns[name] = "f" + std::to_string(rank);
            }
            break;
          case NodeKind::Loop:
            loopNames[std::stoul(name)] = "L" + std::to_string(rank);
            break;
        }
        ++rank;
      }
    }

    // Rendering: the full canonicalized constraint state, loops in canonical
    // order, conjuncts sorted textually. Byte-equality of two renderings is
    // byte-equality of the inputs' canonical images — the collision guard.
    std::vector<std::string> loopTexts(loops.size());
    for (std::size_t i = 0; i < loops.size(); ++i) {
      const System& sys = *loops[i].system;
      std::ostringstream os;
      os << "loop " << loopNames[i] << " relaxed=" << (loops[i].relaxed ? 1 : 0)
         << " external=" << (i >= externalStart ? 1 : 0) << '\n';
      std::vector<std::string> lines;
      for (const std::string& s : sys.symbols()) {
        lines.push_back("  decl " + out.toCanonical.symbol(s) + " : " +
                        out.toCanonical.region(sys.regionOf(s)) +
                        (sys.isFixed(s) ? " fixed" : ""));
      }
      for (const Pred& p : sys.preds()) {
        if (p.kind == Pred::Kind::Part &&
            p.expr->kind == dpl::ExprKind::Symbol) {
          continue;
        }
        Pred q = p;
        q.expr = mapExpr(p.expr, out.toCanonical);
        q.region = out.toCanonical.region(p.region);
        lines.push_back(std::string("  pred ") + (q.assumed ? "assumed " : "") +
                        q.toString());
      }
      for (const Subset& sc : sys.subsets()) {
        Subset q = sc;
        q.lhs = mapExpr(sc.lhs, out.toCanonical);
        q.rhs = mapExpr(sc.rhs, out.toCanonical);
        lines.push_back(std::string("  sub ") + (q.assumed ? "assumed " : "") +
                        q.toString());
      }
      std::vector<std::string> targets;
      targets.reserve(loops[i].reduceTargets.size());
      for (const std::string& t : loops[i].reduceTargets) {
        targets.push_back(out.toCanonical.symbol(t));
      }
      std::sort(targets.begin(), targets.end());
      for (const std::string& t : targets) lines.push_back("  reduce " + t);
      std::sort(lines.begin(), lines.end());
      for (const std::string& l : lines) os << l << '\n';
      loopTexts[i] = os.str();
    }
    std::sort(loopTexts.begin(), loopTexts.end());

    std::ostringstream os;
    os << "options " << optionBits << '\n';
    // Caller-supplied key material outside the constraint graph (external
    // vocabulary, pieces, region sizes); raw names, not canonicalized.
    if (!extraKey.empty()) os << "extra " << extraKey << '\n';
    std::vector<std::string> rf;
    for (const std::string& f : rangeFns) {
      // Range fns the systems never mention cannot affect the solve.
      if (out.toCanonical.fns.contains(f)) {
        rf.push_back(out.toCanonical.fn(f));
      }
    }
    std::sort(rf.begin(), rf.end());
    os << "rangefns";
    for (const std::string& f : rf) os << ' ' << f;
    os << '\n';
    for (const std::string& t : loopTexts) os << t;
    out.rendering = os.str();
    out.hash = fnv64(out.rendering);
    return out;
  }
};

}  // namespace

const std::string& NameMaps::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  return it == symbols.end() ? name : it->second;
}

const std::string& NameMaps::region(const std::string& name) const {
  auto it = regions.find(name);
  return it == regions.end() ? name : it->second;
}

const std::string& NameMaps::fn(const std::string& name) const {
  auto it = fns.find(name);
  return it == fns.end() ? name : it->second;
}

NameMaps NameMaps::inverted() const {
  NameMaps out;
  auto invert = [](const std::map<std::string, std::string>& m,
                   std::map<std::string, std::string>& into) {
    for (const auto& [k, v] : m) {
      DPART_CHECK(into.emplace(v, k).second,
                  "NameMaps::inverted: non-injective map at '" + v + "'");
    }
  };
  invert(symbols, out.symbols);
  invert(regions, out.regions);
  invert(fns, out.fns);
  return out;
}

dpl::ExprPtr mapExpr(const dpl::ExprPtr& e, const NameMaps& m) {
  DPART_CHECK(e != nullptr, "mapExpr: null expression");
  switch (e->kind) {
    case dpl::ExprKind::Symbol:
      return dpl::symbol(m.symbol(e->name));
    case dpl::ExprKind::Union:
      return dpl::unionOf(mapExpr(e->lhs, m), mapExpr(e->rhs, m));
    case dpl::ExprKind::Intersect:
      return dpl::intersectOf(mapExpr(e->lhs, m), mapExpr(e->rhs, m));
    case dpl::ExprKind::Subtract:
      return dpl::subtractOf(mapExpr(e->lhs, m), mapExpr(e->rhs, m));
    case dpl::ExprKind::Image:
      return dpl::image(mapExpr(e->arg, m), m.fn(e->fn), m.region(e->region));
    case dpl::ExprKind::Preimage:
      return dpl::preimage(m.region(e->region), m.fn(e->fn),
                           mapExpr(e->arg, m));
    case dpl::ExprKind::Equal:
      return dpl::equalOf(m.region(e->region));
  }
  DPART_UNREACHABLE("bad ExprKind");
}

System mapSystem(const System& s, const NameMaps& m) {
  System out;
  for (const std::string& sym : s.symbols()) {
    out.declareSymbol(m.symbol(sym), m.region(s.regionOf(sym)),
                      s.isFixed(sym));
  }
  for (const Pred& p : s.preds()) {
    // Symbol PART preds were re-added by declareSymbol above.
    if (p.kind == Pred::Kind::Part && p.expr->kind == dpl::ExprKind::Symbol) {
      continue;
    }
    switch (p.kind) {
      case Pred::Kind::Part:
        out.addPart(mapExpr(p.expr, m), m.region(p.region), p.assumed);
        break;
      case Pred::Kind::Disj:
        out.addDisj(mapExpr(p.expr, m), p.assumed);
        break;
      case Pred::Kind::Comp:
        out.addComp(mapExpr(p.expr, m), m.region(p.region), p.assumed);
        break;
    }
  }
  for (const Subset& sc : s.subsets()) {
    out.addSubset(mapExpr(sc.lhs, m), mapExpr(sc.rhs, m), sc.assumed);
  }
  return out;
}

CanonicalForm canonicalize(const std::vector<CanonicalLoop>& loops,
                           const std::vector<const System*>& externals,
                           const std::set<std::string>& rangeFns,
                           std::uint64_t optionBits,
                           const std::string& extraKey) {
  Canonicalizer c;
  c.loops = loops;
  c.externalStart = loops.size();
  for (const System* ext : externals) {
    c.loops.push_back(CanonicalLoop{ext, false, {}});
  }
  c.rangeFns = rangeFns;
  c.optionBits = optionBits;
  c.extraKey = extraKey;
  c.collectNodes();
  c.initColors();
  c.compileAllConjuncts();
  c.individualize();
  if (std::getenv("DPART_CANON_DEBUG") != nullptr) {
    std::size_t tokens = 0;
    std::size_t mentions = 0;
    for (const auto& cj : c.conjuncts) {
      tokens += cj.tokens.size();
      mentions += cj.mentions.size();
    }
    std::fprintf(stderr,
                 "canonicalize: nodes=%zu conjuncts=%zu tokens=%zu "
                 "mentions=%zu rounds=%zu indiv=%zu\n",
                 c.nodes.size(), c.conjuncts.size(), tokens, mentions,
                 c.rounds, c.individualizations);
  }
  return c.finish();
}

}  // namespace dpart::constraint
