#pragma once

#include <set>
#include <string>

#include "constraint/system.hpp"

namespace dpart::constraint {

/// Deductive engine over the DPL lemmas of the paper's Figure 8 (L1-L14)
/// plus direct set-theoretic consequences of the operator definitions.
///
/// The engine proves PART / DISJ / COMP predicates and subset constraints on
/// *ground* expressions (symbols are either fixed external partitions or
/// already substituted away), given a set of hypothesis predicates and
/// subsets — the other conjuncts of the system plus user-asserted external
/// invariants.
///
/// Range-valued functions (the generalized IMAGE/PREIMAGE of Section 4) are
/// excluded from lemmas L7, L12 and L14, which only hold for point-valued
/// functions.
class Entailment {
 public:
  /// `rangeFns` lists the function ids that are range-valued.
  Entailment(const System& hypotheses, std::set<std::string> rangeFns);

  [[nodiscard]] bool provePart(const ExprPtr& e, const std::string& region);
  [[nodiscard]] bool proveDisj(const ExprPtr& e);
  [[nodiscard]] bool proveComp(const ExprPtr& e, const std::string& region);
  [[nodiscard]] bool proveSubset(const ExprPtr& lhs, const ExprPtr& rhs);

  /// Proves a whole predicate / subset conjunct.
  [[nodiscard]] bool prove(const Pred& pred);
  [[nodiscard]] bool prove(const Subset& subset);

  /// Region a ground expression partitions, where derivable ("" otherwise).
  [[nodiscard]] std::string regionOf(const ExprPtr& e) const;

  /// Excludes one conjunct (by its printed form) from the hypothesis set —
  /// Algorithm 2's leaf check proves each conjunct from the *others*.
  void excludeConjunct(std::string printed) { excluded_ = std::move(printed); }

 private:
  [[nodiscard]] bool pointFn(const std::string& fnId) const {
    return !rangeFns_.contains(fnId);
  }
  bool proveDisjFuel(const ExprPtr& e, int fuel);
  bool proveCompFuel(const ExprPtr& e, const std::string& region, int fuel);
  bool proveSubsetFuel(const ExprPtr& lhs, const ExprPtr& rhs, int fuel);

  // Assumed (user-asserted) conjuncts are always usable as hypotheses;
  // only the proof obligation itself is excluded.
  [[nodiscard]] bool usable(const Pred& p) const {
    return p.assumed || excluded_.empty() || p.toString() != excluded_;
  }
  [[nodiscard]] bool usable(const Subset& s) const {
    return s.assumed || excluded_.empty() || s.toString() != excluded_;
  }

  const System& hyp_;
  std::set<std::string> rangeFns_;
  std::string excluded_;
};

/// Checks Algorithm 2's leaf condition: every non-assumed ground conjunct of
/// `system` is entailed by the remaining conjuncts and the DPL lemmas.
/// Returns the first unprovable conjunct's description, or "" when
/// consistent.
std::string checkResolved(const System& system,
                          const std::set<std::string>& rangeFns);

}  // namespace dpart::constraint
