#include "constraint/solver.hpp"

#include <algorithm>

#include "constraint/entail.hpp"
#include "support/check.hpp"

namespace dpart::constraint {

using dpl::ExprKind;
using dpl::ExprPtr;

dpl::Program Solution::program() const {
  dpl::Program prog;
  for (const std::string& sym : order) {
    prog.append(sym, assignments.at(sym));
  }
  return prog.withCse();
}

Solver::Solver(System system, std::set<std::string> rangeFns)
    : system_(std::move(system)), rangeFns_(std::move(rangeFns)) {}

Solution Solver::solve(const std::map<std::string, ExprPtr>& initial) {
  steps_ = 0;
  Solution out;
  std::vector<std::string> order;
  if (!solveRec(initial, order, out)) {
    out.ok = false;
    if (out.failure.empty()) out.failure = "no resolution found";
  }
  return out;
}

std::vector<ExprPtr> Solver::externalCandidates(const System& c,
                                                const std::string& region,
                                                bool needDisj,
                                                bool needComp) const {
  // Closed expressions the user asserted predicates about (Section 3.3),
  // plus bare fixed symbols of the right region. Filter by provability of
  // the needed predicates.
  std::vector<ExprPtr> raw;
  std::set<std::string> seen;
  const std::set<std::string> open = c.openSymbols();
  auto consider = [&](const ExprPtr& e) {
    if (!e->closedUnder(open)) return;
    if (!seen.insert(e->toString()).second) return;
    raw.push_back(e);
  };
  for (const Pred& p : c.preds()) {
    if (!p.assumed) continue;
    consider(p.expr);
  }
  for (const std::string& sym : c.symbols()) {
    if (c.isFixed(sym) && c.regionOf(sym) == region) {
      consider(dpl::symbol(sym));
    }
  }
  Entailment ent(c, rangeFns_);
  std::vector<ExprPtr> out;
  for (const ExprPtr& e : raw) {
    if (!ent.provePart(e, region)) continue;
    if (needDisj && !ent.proveDisj(e)) continue;
    if (needComp && !ent.proveComp(e, region)) continue;
    out.push_back(e);
  }
  return out;
}

std::vector<Solver::Candidate> Solver::candidates(const System& c) const {
  std::vector<Candidate> cands;
  const std::set<std::string> open = c.openSymbols();

  // Rule 1 (Algorithm 2 lines 11-15): image(P, f, R) <= E with closed E and
  // open P: candidate P = preimage(R', f, E). Point-valued fns only — L14
  // does not hold for the generalized IMAGE.
  for (const Subset& sc : c.subsets()) {
    if (sc.lhs->kind != ExprKind::Image) continue;
    if (sc.lhs->arg->kind != ExprKind::Symbol) continue;
    const std::string& p = sc.lhs->arg->name;
    if (!open.contains(p)) continue;
    if (rangeFns_.contains(sc.lhs->fn)) continue;
    if (!sc.rhs->closedUnder(open)) continue;
    cands.push_back(Candidate{
        p, dpl::preimage(c.regionOf(p), sc.lhs->fn, sc.rhs)});
  }

  // Rule 2 (lines 16-18): P whose lower bounds are all closed: candidate
  // P = union of the bounds (L13).
  for (const std::string& p : open) {
    std::vector<ExprPtr> bounds;
    bool allClosed = true;
    for (const Subset& sc : c.subsets()) {
      if (sc.rhs->kind != ExprKind::Symbol || sc.rhs->name != p) continue;
      if (!sc.lhs->closedUnder(open)) {
        allClosed = false;
        break;
      }
      bounds.push_back(sc.lhs);
    }
    if (!allClosed || bounds.empty()) continue;
    cands.push_back(Candidate{p, dpl::unionOf(bounds)});
  }

  // Rule 3 (lines 19-27): DISJ symbols then COMP symbols, deepest first.
  // Externally provided partitions are preferred over fresh equal(R)
  // (partition reuse, Section 3.3).
  std::vector<std::pair<int, std::string>> byDepth;
  for (const std::string& p : open) byDepth.emplace_back(c.depth(p), p);
  std::sort(byDepth.begin(), byDepth.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  auto addRule3 = [&](bool wantDisj) {
    for (const auto& [depth, p] : byDepth) {
      const bool needDisj = c.requiresDisj(p);
      const bool needComp = c.requiresComp(p);
      if (wantDisj ? !needDisj : (!needComp || needDisj)) continue;
      const std::string& region = c.regionOf(p);
      for (const ExprPtr& e : externalCandidates(c, region, needDisj,
                                                 needComp)) {
        cands.push_back(Candidate{p, e});
      }
      cands.push_back(Candidate{p, dpl::equalOf(region)});
    }
  };
  addRule3(/*wantDisj=*/true);
  addRule3(/*wantDisj=*/false);

  // Fallback: any remaining symbol (no bounds, no predicates) gets equal(R);
  // keeps the solver total on degenerate inputs.
  for (const std::string& p : open) {
    cands.push_back(Candidate{p, dpl::equalOf(c.regionOf(p))});
  }
  return cands;
}

bool Solver::solveRec(const std::map<std::string, ExprPtr>& partial,
                      std::vector<std::string>& order, Solution& out) {
  if (++steps_ > maxSteps_) {
    out.failure = "search budget exhausted";
    return false;
  }
  const System c = system_.substituted(partial);
  const std::set<std::string> open = c.openSymbols();
  if (open.empty()) {
    const std::string bad = checkResolved(c, rangeFns_);
    if (!bad.empty()) {
      if (out.failure.empty()) out.failure = "unprovable conjunct: " + bad;
      return false;
    }
    out.ok = true;
    out.assignments = partial;
    out.order = order;
    out.resolved = c;
    return true;
  }

  std::set<std::string> tried;  // avoid retrying identical equalities
  for (const Candidate& cand : candidates(c)) {
    if (!tried.insert(cand.symbol + " = " + cand.expr->toString()).second) {
      continue;
    }
    std::map<std::string, ExprPtr> next = partial;
    next[cand.symbol] = cand.expr;
    // Ground the new equality against earlier assignments so every value
    // stays fully substituted.
    for (auto& [sym, expr] : next) {
      expr = dpl::substitute(expr, next);
    }
    order.push_back(cand.symbol);
    if (solveRec(next, order, out)) return true;
    order.pop_back();
    if (steps_ > maxSteps_) return false;
  }
  if (out.failure.empty()) {
    out.failure = "no candidate resolves symbol set";
  }
  return false;
}

}  // namespace dpart::constraint
