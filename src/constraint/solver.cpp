#include "constraint/solver.hpp"

#include <algorithm>

#include "constraint/entail.hpp"
#include "constraint/proof.hpp"
#include "support/check.hpp"

namespace dpart::constraint {

using dpl::ExprKind;
using dpl::ExprPtr;

dpl::Program Solution::program() const {
  dpl::Program prog;
  for (const std::string& sym : order) {
    prog.append(sym, assignments.at(sym));
  }
  return prog.withCse();
}

Solver::Solver(System system, std::set<std::string> rangeFns)
    : system_(std::move(system)), rangeFns_(std::move(rangeFns)) {}

Solver::Solver(System system, std::set<std::string> rangeFns,
               SolverConfig config)
    : system_(std::move(system)),
      rangeFns_(std::move(rangeFns)),
      config_(std::move(config)) {}

Solution Solver::solve(const std::map<std::string, ExprPtr>& initial) {
  steps_ = 0;
  if (config_.engine == SolverEngine::Propagation) {
    return solvePropagation(initial);
  }
  stepCap_ = maxSteps_;
  Solution out;
  std::vector<std::string> order;
  if (!solveRec(initial, order, out)) {
    out.ok = false;
    if (out.failure.empty()) out.failure = "no resolution found";
  }
  return out;
}

// ---- propagation engine --------------------------------------------------

namespace {
SearchHeuristic flip(SearchHeuristic h) {
  return h == SearchHeuristic::PaperOrder ? SearchHeuristic::SmallestDomain
                                          : SearchHeuristic::PaperOrder;
}
}  // namespace

Solution Solver::solvePropagation(
    const std::map<std::string, ExprPtr>& initial) {
  propagators_ = makePropagators(config_.vocab);
  conflict_ = ConflictInfo{};
  nodeCounter_ = 0;
  ProofLog* proof = config_.proof;
  if (proof != nullptr) proof->beginSearch();

  Solution out;
  SearchHeuristic heuristic = config_.search.heuristic;
  std::size_t budget = config_.search.restartBudget == 0
                           ? maxSteps_
                           : config_.search.restartBudget;
  std::size_t attempt = 0;
  while (true) {
    budgetHit_ = false;
    stepCap_ = std::min(steps_ + budget, maxSteps_);
    out.failure.clear();
    std::vector<std::string> order;
    if (searchNode(initial, order, out, /*parentId=*/0, /*branchedSymbol=*/"",
                   heuristic)) {
      out.conflict = ConflictInfo{};
      if (proof != nullptr) proof->solution(out.order, out.assignments);
      return out;
    }
    if (!budgetHit_) {
      // Genuine exhaustion: the system is unsatisfiable under the current
      // vocabulary (or unprovable by the lemma engine).
      out.ok = false;
      out.conflict = conflict_;
      if (conflict_.valid()) {
        out.failure = "infeasible vocabulary: " + conflict_.toString();
      } else if (out.failure.empty()) {
        out.failure = "no resolution found";
      }
      if (proof != nullptr) {
        proof->infeasible(conflict_.valid() ? conflict_.toString()
                                            : out.failure);
      }
      return out;
    }
    if (steps_ >= maxSteps_) {
      out.ok = false;
      out.failure = "search budget exhausted";
      out.conflict = conflict_;
      return out;
    }
    // Restart with the alternate heuristic and a grown budget; the step
    // count carries over so the total stays bounded by maxSteps_.
    ++attempt;
    ++out.stats.restarts;
    heuristic = attempt == 1 ? flip(config_.search.heuristic)
                             : config_.search.heuristic;
    budget = static_cast<std::size_t>(
        static_cast<double>(budget) *
        std::max(1.0, config_.search.restartGrowth));
    if (proof != nullptr) {
      proof->restart(attempt, constraint::toString(heuristic), budget);
    }
  }
}

bool Solver::searchNode(const std::map<std::string, ExprPtr>& partial,
                        std::vector<std::string>& order, Solution& out,
                        std::size_t parentId,
                        const std::string& branchedSymbol,
                        SearchHeuristic heuristic) {
  ProofLog* proof = config_.proof;
  if (++steps_ > stepCap_) {
    budgetHit_ = true;
    if (proof != nullptr) proof->budget(parentId);
    return false;
  }
  const std::size_t id = nodeCounter_++;
  if (proof != nullptr) proof->node(id, parentId, branchedSymbol);

  const System c = system_.substituted(partial);
  const std::set<std::string> open = c.openSymbols();
  if (open.empty()) {
    const std::string bad = checkResolved(c, rangeFns_);
    if (!bad.empty()) {
      if (out.failure.empty()) out.failure = "unprovable conjunct: " + bad;
      if (proof != nullptr) proof->leafBad(id, bad);
      return false;
    }
    if (proof != nullptr) proof->leafOk(id);
    out.ok = true;
    out.assignments = partial;
    out.order = order;
    out.resolved = c;
    return true;
  }

  // The paper's candidate generation seeds this node's domain store; the
  // candidates keep their Algorithm 2 order.
  DomainStore dom;
  for (const Candidate& cand : candidates(c)) {
    dom.add(cand.symbol, cand.expr);
  }
  if (proof != nullptr) {
    for (std::size_t i = 0; i < dom.size(); ++i) {
      proof->candidate(id, i, dom.entry(i).symbol, dom.entry(i).expr);
    }
  }

  // Propagate to fixpoint through the watched-constraint queue: seed with
  // the propagators affected by the branching assignment (all of them at
  // the root, and always those that consume the node-local candidate
  // lists), then chase domain changes.
  PropagationContext ctx;
  ctx.dom = &dom;
  ctx.partial = &partial;
  ctx.system = &c;
  ctx.bounds.regionSizes = &config_.regionSizes;
  ctx.bounds.pieces = config_.pieces;
  ctx.bounds.rangeFns = &rangeFns_;
  ctx.bounds.regionOf = [&c](const std::string& sym) {
    return c.hasSymbol(sym) ? c.regionOf(sym) : std::string();
  };
  ctx.proof = proof;
  ctx.nodeId = id;
  ctx.stats = &out.stats;

  std::vector<std::size_t> queue;
  std::vector<char> queued(propagators_.size(), 0);
  auto enqueue = [&](std::size_t i) {
    if (queued[i] == 0) {
      queued[i] = 1;
      queue.push_back(i);
    }
  };
  for (std::size_t i = 0; i < propagators_.size(); ++i) {
    if (branchedSymbol.empty() || propagators_[i]->rerunEveryNode() ||
        propagators_[i]->watches().contains(branchedSymbol)) {
      enqueue(i);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::size_t i = queue[head];
    queued[i] = 0;
    ctx.changed.clear();
    propagators_[i]->propagate(ctx);
    ++out.stats.propagations;
    if (ctx.refuted) break;
    for (const std::string& sym : ctx.changed) {
      for (std::size_t j = 0; j < propagators_.size(); ++j) {
        if (j != i && propagators_[j]->watches().contains(sym)) enqueue(j);
      }
    }
  }
  if (ctx.conflict.valid() && !conflict_.valid()) conflict_ = ctx.conflict;
  if (ctx.refuted) {
    // A symbol was refuted for every possible expression: no extension of
    // this node can assign it, so the node fails outright.
    return false;
  }

  std::set<std::string> tried;  // avoid retrying identical equalities
  for (std::size_t idx : dom.order(heuristic)) {
    if (!dom.live(idx)) continue;
    const DomainStore::Entry& entry = dom.entry(idx);
    if (!tried.insert(entry.symbol + " = " + entry.expr->toString()).second) {
      if (proof != nullptr) proof->dedup(id, idx);
      continue;
    }
    std::map<std::string, ExprPtr> next = partial;
    next[entry.symbol] = entry.expr;
    // Ground the new equality against earlier assignments so every value
    // stays fully substituted.
    for (auto& [sym, expr] : next) {
      expr = dpl::substitute(expr, next);
    }
    order.push_back(entry.symbol);
    if (proof != nullptr) proof->branch(id, idx);
    ++out.stats.branches;
    if (searchNode(next, order, out, id, entry.symbol, heuristic)) {
      return true;
    }
    ++out.stats.backtracks;
    if (proof != nullptr) proof->backtrack(id);
    order.pop_back();
    if (budgetHit_) return false;
  }
  if (proof != nullptr) proof->exhausted(id);
  if (out.failure.empty()) {
    out.failure = "no candidate resolves symbol set";
  }
  return false;
}

// ---- shared candidate generation ----------------------------------------

std::vector<ExprPtr> Solver::externalCandidates(const System& c,
                                                const std::string& region,
                                                bool needDisj,
                                                bool needComp) const {
  // Closed expressions the user asserted predicates about (Section 3.3),
  // plus bare fixed symbols of the right region. Filter by provability of
  // the needed predicates.
  std::vector<ExprPtr> raw;
  std::set<std::string> seen;
  const std::set<std::string> open = c.openSymbols();
  auto consider = [&](const ExprPtr& e) {
    if (!e->closedUnder(open)) return;
    if (!seen.insert(e->toString()).second) return;
    raw.push_back(e);
  };
  for (const Pred& p : c.preds()) {
    if (!p.assumed) continue;
    consider(p.expr);
  }
  for (const std::string& sym : c.symbols()) {
    if (c.isFixed(sym) && c.regionOf(sym) == region) {
      consider(dpl::symbol(sym));
    }
  }
  Entailment ent(c, rangeFns_);
  std::vector<ExprPtr> out;
  for (const ExprPtr& e : raw) {
    if (!ent.provePart(e, region)) continue;
    if (needDisj && !ent.proveDisj(e)) continue;
    if (needComp && !ent.proveComp(e, region)) continue;
    out.push_back(e);
  }
  return out;
}

std::vector<Solver::Candidate> Solver::candidates(const System& c) const {
  std::vector<Candidate> cands;
  const std::set<std::string> open = c.openSymbols();

  // Rule 1 (Algorithm 2 lines 11-15): image(P, f, R) <= E with closed E and
  // open P: candidate P = preimage(R', f, E). Point-valued fns only — L14
  // does not hold for the generalized IMAGE.
  for (const Subset& sc : c.subsets()) {
    if (sc.lhs->kind != ExprKind::Image) continue;
    if (sc.lhs->arg->kind != ExprKind::Symbol) continue;
    const std::string& p = sc.lhs->arg->name;
    if (!open.contains(p)) continue;
    if (rangeFns_.contains(sc.lhs->fn)) continue;
    if (!sc.rhs->closedUnder(open)) continue;
    cands.push_back(Candidate{
        p, dpl::preimage(c.regionOf(p), sc.lhs->fn, sc.rhs)});
  }

  // Rule 2 (lines 16-18): P whose lower bounds are all closed: candidate
  // P = union of the bounds (L13).
  for (const std::string& p : open) {
    std::vector<ExprPtr> bounds;
    bool allClosed = true;
    for (const Subset& sc : c.subsets()) {
      if (sc.rhs->kind != ExprKind::Symbol || sc.rhs->name != p) continue;
      if (!sc.lhs->closedUnder(open)) {
        allClosed = false;
        break;
      }
      bounds.push_back(sc.lhs);
    }
    if (!allClosed || bounds.empty()) continue;
    cands.push_back(Candidate{p, dpl::unionOf(bounds)});
  }

  // Rule 3 (lines 19-27): DISJ symbols then COMP symbols, deepest first.
  // Externally provided partitions are preferred over fresh equal(R)
  // (partition reuse, Section 3.3).
  std::vector<std::pair<int, std::string>> byDepth;
  for (const std::string& p : open) byDepth.emplace_back(c.depth(p), p);
  std::sort(byDepth.begin(), byDepth.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  auto addRule3 = [&](bool wantDisj) {
    for (const auto& [depth, p] : byDepth) {
      const bool needDisj = c.requiresDisj(p);
      const bool needComp = c.requiresComp(p);
      if (wantDisj ? !needDisj : (!needComp || needDisj)) continue;
      const std::string& region = c.regionOf(p);
      for (const ExprPtr& e : externalCandidates(c, region, needDisj,
                                                 needComp)) {
        cands.push_back(Candidate{p, e});
      }
      cands.push_back(Candidate{p, dpl::equalOf(region)});
    }
  };
  addRule3(/*wantDisj=*/true);
  addRule3(/*wantDisj=*/false);

  // Fallback: any remaining symbol (no bounds, no predicates) gets equal(R);
  // keeps the solver total on degenerate inputs.
  for (const std::string& p : open) {
    cands.push_back(Candidate{p, dpl::equalOf(c.regionOf(p))});
  }
  return cands;
}

// ---- legacy syntax-directed engine (differential reference) --------------

bool Solver::solveRec(const std::map<std::string, ExprPtr>& partial,
                      std::vector<std::string>& order, Solution& out) {
  if (++steps_ > maxSteps_) {
    out.failure = "search budget exhausted";
    return false;
  }
  const System c = system_.substituted(partial);
  const std::set<std::string> open = c.openSymbols();
  if (open.empty()) {
    const std::string bad = checkResolved(c, rangeFns_);
    if (!bad.empty()) {
      if (out.failure.empty()) out.failure = "unprovable conjunct: " + bad;
      return false;
    }
    out.ok = true;
    out.assignments = partial;
    out.order = order;
    out.resolved = c;
    return true;
  }

  std::set<std::string> tried;  // avoid retrying identical equalities
  for (const Candidate& cand : candidates(c)) {
    if (!tried.insert(cand.symbol + " = " + cand.expr->toString()).second) {
      continue;
    }
    std::map<std::string, ExprPtr> next = partial;
    next[cand.symbol] = cand.expr;
    // Ground the new equality against earlier assignments so every value
    // stays fully substituted.
    for (auto& [sym, expr] : next) {
      expr = dpl::substitute(expr, next);
    }
    order.push_back(cand.symbol);
    if (solveRec(next, order, out)) return true;
    order.pop_back();
    if (steps_ > maxSteps_) return false;
  }
  if (out.failure.empty()) {
    out.failure = "no candidate resolves symbol set";
  }
  return false;
}

}  // namespace dpart::constraint
