#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "constraint/system.hpp"
#include "constraint/vocab.hpp"
#include "dpl/program.hpp"

namespace dpart::constraint {

/// Machine-checkable proof certificate writer ("DPRF 1" format).
///
/// A certificate records everything an *independent* checker needs to
/// revalidate one solve without trusting the solver: the ground model
/// (region sizes and full fn tables), the constraint system, the external
/// vocabulary, and then the complete search trail — every candidate
/// considered at every node, every propagator prune with its justification,
/// every branch and backtrack — ending in either a solution (plus the final
/// DPL program and the runtime verifier's expectations, so the checker can
/// cross-validate against region/verify semantics) or an infeasibility
/// trace. tools/proof_check replays it; docs/solver.md documents the line
/// grammar with a worked example.
///
/// The format is line-oriented: one event per line, space-separated tokens,
/// DPL expressions (which contain spaces) always last on their line except
/// the `subset` conjunct, whose two expressions are separated by a literal
/// " <= " token (never produced inside an expression).
class ProofLog {
 public:
  // ---- header ----
  void begin(std::size_t pieces);
  void region(const std::string& name, std::size_t size);
  /// Point-valued fn table: fn(domain.lo + i) for every domain index.
  void pointFn(const std::string& id, const std::string& domain,
               const std::string& range, const std::vector<long long>& table);
  /// Range-valued fn table: half-open [lo, hi) per domain index.
  void rangeFn(const std::string& id, const std::string& domain,
               const std::string& range,
               const std::vector<std::pair<long long, long long>>& table);
  void symbol(const std::string& name, bool fixed, const std::string& region);
  /// Emits every conjunct of the system in structured (non-pretty) form.
  void conjuncts(const System& system);
  void vocabulary(const SolverVocabulary& vocab);

  // ---- search trail ----
  void beginSearch();
  void restart(std::size_t attempt, const std::string& heuristic,
               std::size_t budget);
  /// `branchedSymbol` is the symbol assigned on the edge from the parent
  /// ("-" at the root).
  void node(std::size_t id, std::size_t parent,
            const std::string& branchedSymbol);
  void candidate(std::size_t node, std::size_t idx, const std::string& symbol,
                 const dpl::ExprPtr& expr);
  void dedup(std::size_t node, std::size_t idx);
  /// Propagator pruned one candidate; `rule` + `detail` justify it.
  void prune(std::size_t node, std::size_t idx, const std::string& rule,
             const std::string& detail);
  /// Propagator refuted a symbol outright (no expression can ever satisfy
  /// the constraint); the node — and with it the whole search — fails.
  void refute(std::size_t node, const std::string& symbol,
              const std::string& rule, const std::string& detail);
  void branch(std::size_t node, std::size_t idx);
  void leafOk(std::size_t node);
  void leafBad(std::size_t node, const std::string& conjunct);
  void backtrack(std::size_t node);
  void exhausted(std::size_t node);
  /// Step budget hit: the trail is truncated and proves nothing.
  void budget(std::size_t node);

  // ---- verdict ----
  void solution(const std::vector<std::string>& order,
                const std::map<std::string, dpl::ExprPtr>& assignments);
  void infeasible(const std::string& detail);

  // ---- plan cross-validation section ----
  void planStmt(const std::string& name, const dpl::ExprPtr& expr);
  /// One runtime partition expectation (mirrors region/verify fields);
  /// rendered as key=value tokens. Empty string / zero fields mean "not
  /// constrained".
  void expectation(const std::string& line);

  [[nodiscard]] std::size_t events() const { return events_; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

  /// Terminates the certificate and returns its full text.
  [[nodiscard]] std::string finish();

 private:
  void line(const std::string& s);

  std::ostringstream os_;
  std::size_t events_ = 0;
  std::size_t bytes_ = 0;
  bool finished_ = false;
};

}  // namespace dpart::constraint
