#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "region/partition.hpp"
#include "region/world.hpp"
#include "support/fault.hpp"

namespace dpart::parallelize {
struct ParallelPlan;
}  // namespace dpart::parallelize

namespace dpart::runtime {

/// Metadata stored with every checkpoint generation.
struct CheckpointMeta {
  std::uint64_t generation = 0;
  /// Number of loop launches completed when the checkpoint was taken; a
  /// restore resumes execution from this launch index.
  std::uint64_t launchIndex = 0;
  /// FNV-1a hash of the plan the run was executing; restoreLatest skips
  /// checkpoints taken under a different plan.
  std::uint64_t planHash = 0;
  /// Piece count at checkpoint time (informational — a restore may shrink).
  std::uint64_t pieces = 0;
};

/// Durable end-of-launch checkpoints with bounded retention.
///
/// Layout inside the checkpoint directory:
///   ckpt-NNNNNN.dpc  — framed (support/serialize) blob per generation
///   MANIFEST         — one text line per retained generation
/// Every file is written atomically (temp file + rename), so a crash during
/// a checkpoint leaves at worst a stale .tmp, never a torn generation. A
/// corrupted generation is detected on read (CRC32) and restoreLatest falls
/// back to the next older one.
class CheckpointManager {
 public:
  /// Scans `dir` (created if missing) for existing generations, so a
  /// restarted process resumes numbering and can restore what the previous
  /// incarnation wrote.
  explicit CheckpointManager(std::string dir, int retain = 3);

  /// Takes one checkpoint: meta + full World snapshot + externally bound
  /// partitions. `injector`, when set, is consulted at the site
  /// "checkpoint:write:<generation>" — a CorruptCheckpoint fault flips
  /// payload bytes after the CRC is computed, modelling silent media
  /// corruption. Retention: the oldest generations beyond `retain` are
  /// deleted and the MANIFEST is rewritten.
  void write(const region::World& world,
             const std::map<std::string, region::Partition>& externals,
             std::uint64_t launchIndex, std::uint64_t planHash,
             std::uint64_t pieces, FaultInjector* injector = nullptr);

  struct Restored {
    CheckpointMeta meta;
    std::map<std::string, region::Partition> externals;
    /// Generations that had to be skipped (corrupt or wrong plan) before a
    /// valid one was found.
    int fallbacks = 0;
  };

  /// Restores the newest valid generation into `world`. Corrupt generations
  /// (unreadable, CRC mismatch, schema mismatch) and — when `planHash` is
  /// non-zero — generations from a different plan are skipped newest-first.
  /// Throws CheckpointCorruption when no generation survives.
  [[nodiscard]] Restored restoreLatest(region::World& world,
                                       std::uint64_t planHash = 0);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::size_t generations() const { return generations_.size(); }
  [[nodiscard]] std::uint64_t latestGeneration() const {
    return generations_.empty() ? 0 : generations_.back();
  }

  /// FNV-1a over the plan's printed form — stable across runs of the same
  /// binary and cheap enough to compute per checkpoint.
  [[nodiscard]] static std::uint64_t hashPlan(
      const parallelize::ParallelPlan& plan);

 private:
  [[nodiscard]] std::string fileFor(std::uint64_t generation) const;
  void rewriteManifest(
      const std::vector<std::pair<std::uint64_t, CheckpointMeta>>& kept);

  std::string dir_;
  int retain_;
  std::vector<std::uint64_t> generations_;  // ascending
  std::map<std::uint64_t, CheckpointMeta> metas_;
};

}  // namespace dpart::runtime
