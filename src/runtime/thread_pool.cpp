#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace dpart::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::workerMain() {
  std::unique_lock lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return stop_ || next_ < jobSize_; });
    if (stop_) return;
    while (next_ < jobSize_) {
      const std::size_t idx = next_++;
      ++inFlight_;
      lock.unlock();
      try {
        (*job_)(idx);
      } catch (...) {
        lock.lock();
        if (!error_) error_ = std::current_exception();
        --inFlight_;
        continue;
      }
      lock.lock();
      --inFlight_;
    }
    done_.notify_all();
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  std::unique_lock lock(mutex_);
  job_ = &fn;
  jobSize_ = n;
  next_ = 0;
  error_ = nullptr;
  wake_.notify_all();
  // The caller participates too, so parallelFor works even on a pool whose
  // workers are busy elsewhere (not possible here, but cheap insurance).
  while (next_ < jobSize_) {
    const std::size_t idx = next_++;
    ++inFlight_;
    lock.unlock();
    try {
      fn(idx);
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      --inFlight_;
      continue;
    }
    lock.lock();
    --inFlight_;
  }
  done_.wait(lock, [this] { return inFlight_ == 0 && next_ >= jobSize_; });
  job_ = nullptr;
  jobSize_ = 0;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace dpart::runtime
