#include "runtime/session.hpp"

#include "support/check.hpp"

namespace dpart {

struct Session::Impl {
  region::World* world = nullptr;
  /// The builder's options with the observability pointers resolved to the
  /// session-owned instances where the caller supplied none.
  runtime::ExecOptions options;
  std::unique_ptr<Tracer> ownedTracer;
  std::unique_ptr<MetricsRegistry> ownedMetrics;
  /// Shared immutable compile artifact. The executor references the
  /// ParallelPlan inside its payload, which the shared_ptr keeps
  /// address-stable however the Session moves or how many sessions share
  /// the plan.
  Plan compiled;
  std::unique_ptr<runtime::PlanExecutor> executor;

  /// Points observability at session-owned instances wherever the caller
  /// supplied none; honors an explicit trace request on a caller-owned
  /// tracer.
  void resolveObservability() {
    ObservabilityOptions& obs = options.observability;
    const bool wantTrace = obs.trace || !obs.traceFile.empty();
    if (obs.tracer == nullptr && wantTrace) {
      ownedTracer = std::make_unique<Tracer>(obs.traceCapacity);
      obs.tracer = ownedTracer.get();
    }
    if (ownedTracer != nullptr) {
      ownedTracer->enable();
    } else if (obs.tracer != nullptr && wantTrace) {
      // Caller-owned tracer with an explicit trace request: switch it on;
      // without the request the caller's enable state is respected.
      obs.tracer->enable();
    }
    if (obs.metrics == nullptr) {
      ownedMetrics = std::make_unique<MetricsRegistry>();
      obs.metrics = ownedMetrics.get();
    }
  }

  /// Publishes the Table 1 compile gauges and wires an executor up to the
  /// compiled plan (shared by the fluent build() and Session::execute()).
  void finish(region::World& w) {
    world = &w;
    const parallelize::CompileStats& st = compiled.stats();
    MetricsRegistry& mx = *options.observability.metrics;
    mx.gauge("compile.inferMs").set(st.inferMs);
    mx.gauge("compile.unifyMs").set(st.unifyMs);
    mx.gauge("compile.solveMs").set(st.solveMs);
    mx.gauge("compile.rewriteMs").set(st.rewriteMs);
    mx.gauge("compile.canonMs").set(st.canonMs);
    mx.gauge("compile.cacheHit").set(st.cacheHit ? 1 : 0);
    mx.gauge("compile.parallelLoops").set(st.parallelLoops);
    mx.gauge("compile.propagate.propagations")
        .set(static_cast<double>(st.solve.propagations));
    mx.gauge("compile.propagate.prunes")
        .set(static_cast<double>(st.solve.prunes));
    mx.gauge("compile.propagate.branches")
        .set(static_cast<double>(st.solve.branches));
    mx.gauge("compile.propagate.backtracks")
        .set(static_cast<double>(st.solve.backtracks));
    mx.gauge("compile.propagate.restarts")
        .set(static_cast<double>(st.solve.restarts));
    mx.gauge("compile.proof.events")
        .set(static_cast<double>(st.proofEvents));
    mx.gauge("compile.proof.bytes").set(static_cast<double>(st.proofBytes));
    executor = std::make_unique<runtime::PlanExecutor>(
        w, compiled.parallelPlan(), compiled.pieces(), options);
  }
};

SessionBuilder Session::parallelize(const ir::Program& program) {
  return SessionBuilder(program);
}

Session Session::execute(Plan plan, region::World& world,
                         runtime::ExecOptions opts) {
  DPART_CHECK(plan.valid(),
              "Session::execute needs a compiled Plan "
              "(SessionBuilder::compile)");
  auto impl = std::make_unique<Impl>();
  impl->options = std::move(opts);
  impl->resolveObservability();
  impl->compiled = std::move(plan);
  impl->finish(world);
  return Session(std::move(impl));
}

Session::Session(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;
Session::~Session() = default;

void Session::run() {
  impl_->executor->run();
  writeArtifacts();
}

std::size_t Session::rebalances() const {
  return impl_->executor->rebalances();
}

const parallelize::ParallelPlan& Session::plan() const {
  return impl_->compiled.parallelPlan();
}

const parallelize::CompileStats& Session::stats() const {
  return impl_->compiled.stats();
}

const Plan& Session::compiledPlan() const { return impl_->compiled; }

runtime::PlanExecutor& Session::executor() { return *impl_->executor; }

const runtime::PlanExecutor& Session::executor() const {
  return *impl_->executor;
}

const std::map<std::string, region::Partition>& Session::partitions() const {
  return impl_->executor->partitions();
}

const region::Partition& Session::partition(const std::string& name) const {
  return impl_->executor->partition(name);
}

Tracer* Session::tracer() const {
  return impl_->options.observability.tracer;
}

MetricsRegistry& Session::metrics() const {
  return *impl_->options.observability.metrics;
}

void Session::writeArtifacts() const {
  const ObservabilityOptions& obs = impl_->options.observability;
  if (obs.tracer != nullptr && !obs.traceFile.empty()) {
    obs.tracer->writeChromeTrace(obs.traceFile);
  }
  if (!obs.metricsFile.empty()) {
    obs.metrics->writeJson(obs.metricsFile);
  }
}

SessionBuilder::SessionBuilder(const ir::Program& program)
    : program_(program) {}

SessionBuilder& SessionBuilder::options(runtime::ExecOptions opts) {
  options_ = std::move(opts);
  return *this;
}

SessionBuilder& SessionBuilder::compileOptions(parallelize::Options opts) {
  compileOptions_ = opts;
  return *this;
}

SessionBuilder& SessionBuilder::pieces(std::size_t n) {
  pieces_ = n;
  return *this;
}

SessionBuilder& SessionBuilder::external(std::string name,
                                         region::Partition partition) {
  externals_.emplace_back(std::move(name), std::move(partition));
  return *this;
}

SessionBuilder& SessionBuilder::externalConstraint(constraint::System system) {
  externalConstraints_.push_back(std::move(system));
  return *this;
}

SessionBuilder& SessionBuilder::capacity(std::string region,
                                         std::size_t maxPerPiece) {
  compileOptions_.vocab.capacities.push_back(
      {std::move(region), maxPerPiece});
  return *this;
}

SessionBuilder& SessionBuilder::colocate(std::string fieldA,
                                         std::string fieldB) {
  compileOptions_.vocab.affinities.push_back(
      {std::move(fieldA), std::move(fieldB), /*together=*/true});
  return *this;
}

SessionBuilder& SessionBuilder::antiAffinity(std::string fieldA,
                                             std::string fieldB) {
  compileOptions_.vocab.affinities.push_back(
      {std::move(fieldA), std::move(fieldB), /*together=*/false});
  return *this;
}

SessionBuilder& SessionBuilder::replication(std::string region,
                                            double minFactor,
                                            double maxFactor) {
  compileOptions_.vocab.replications.push_back(
      {std::move(region), minFactor, maxFactor});
  return *this;
}

SessionBuilder& SessionBuilder::proof(std::string file) {
  compileOptions_.proofFile = std::move(file);
  return *this;
}

SessionBuilder& SessionBuilder::adaptive(runtime::RebalancePolicy policy) {
  policy.enabled = true;
  options_.adaptive = policy;
  return *this;
}

Plan SessionBuilder::compile(region::World& world, Tracer* tracer) {
  return compileInternal(world, tracer);
}

Plan SessionBuilder::compileInternal(region::World& world, Tracer* tracer) {
  DPART_CHECK(pieces_ > 0, "SessionBuilder::pieces() must be set (> 0)");
  auto payload = std::make_shared<Plan::Payload>();
  payload->pieces = pieces_;
  // The vocabulary propagators and proof certificates reason about concrete
  // piece counts; the builder's piece count is authoritative.
  compileOptions_.pieces = pieces_;
  parallelize::AutoParallelizer parallelizer(world, compileOptions_);
  parallelizer.setTracer(tracer);
  for (const constraint::System& sys : externalConstraints_) {
    parallelizer.addExternalConstraint(sys);
  }
  payload->plan = parallelizer.plan(program_);
  return Plan(std::move(payload));
}

Session SessionBuilder::build(region::World& world) {
  auto impl = std::make_unique<Session::Impl>();
  impl->options = std::move(options_);
  impl->resolveObservability();

  {
    DPART_TRACE_SPAN(impl->options.observability.tracer, "compile", "compile");
    impl->compiled =
        compileInternal(world, impl->options.observability.tracer);
  }

  impl->finish(world);
  for (auto& [name, part] : externals_) {
    impl->executor->bindExternal(name, std::move(part));
  }
  return Session(std::move(impl));
}

Session SessionBuilder::run(region::World& world) {
  Session session = build(world);
  session.run();
  return session;
}

}  // namespace dpart
