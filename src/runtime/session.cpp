#include "runtime/session.hpp"

#include "support/check.hpp"

namespace dpart {

struct Session::Impl {
  region::World* world = nullptr;
  /// The builder's options with the observability pointers resolved to the
  /// session-owned instances where the caller supplied none.
  runtime::ExecOptions options;
  std::unique_ptr<Tracer> ownedTracer;
  std::unique_ptr<MetricsRegistry> ownedMetrics;
  parallelize::ParallelPlan plan;
  // References impl->plan; Impl lives on the heap, so moving the Session
  // never invalidates the executor's plan reference.
  std::unique_ptr<runtime::PlanExecutor> executor;
};

SessionBuilder Session::parallelize(const ir::Program& program) {
  return SessionBuilder(program);
}

Session::Session(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;
Session::~Session() = default;

void Session::run() {
  impl_->executor->run();
  writeArtifacts();
}

std::size_t Session::rebalances() const {
  return impl_->executor->rebalances();
}

const parallelize::ParallelPlan& Session::plan() const { return impl_->plan; }

const parallelize::CompileStats& Session::stats() const {
  return impl_->plan.stats;
}

runtime::PlanExecutor& Session::executor() { return *impl_->executor; }

const runtime::PlanExecutor& Session::executor() const {
  return *impl_->executor;
}

const std::map<std::string, region::Partition>& Session::partitions() const {
  return impl_->executor->partitions();
}

const region::Partition& Session::partition(const std::string& name) const {
  return impl_->executor->partition(name);
}

Tracer* Session::tracer() const {
  return impl_->options.observability.tracer;
}

MetricsRegistry& Session::metrics() const {
  return *impl_->options.observability.metrics;
}

void Session::writeArtifacts() const {
  const ObservabilityOptions& obs = impl_->options.observability;
  if (obs.tracer != nullptr && !obs.traceFile.empty()) {
    obs.tracer->writeChromeTrace(obs.traceFile);
  }
  if (!obs.metricsFile.empty()) {
    obs.metrics->writeJson(obs.metricsFile);
  }
}

SessionBuilder::SessionBuilder(const ir::Program& program)
    : program_(program) {}

SessionBuilder& SessionBuilder::options(runtime::ExecOptions opts) {
  options_ = std::move(opts);
  return *this;
}

SessionBuilder& SessionBuilder::compileOptions(parallelize::Options opts) {
  compileOptions_ = opts;
  return *this;
}

SessionBuilder& SessionBuilder::pieces(std::size_t n) {
  pieces_ = n;
  return *this;
}

SessionBuilder& SessionBuilder::external(std::string name,
                                         region::Partition partition) {
  externals_.emplace_back(std::move(name), std::move(partition));
  return *this;
}

SessionBuilder& SessionBuilder::externalConstraint(constraint::System system) {
  externalConstraints_.push_back(std::move(system));
  return *this;
}

SessionBuilder& SessionBuilder::adaptive(runtime::RebalancePolicy policy) {
  policy.enabled = true;
  options_.adaptive = policy;
  return *this;
}

Session SessionBuilder::build(region::World& world) {
  DPART_CHECK(pieces_ > 0, "SessionBuilder::pieces() must be set (> 0)");
  auto impl = std::make_unique<Session::Impl>();
  impl->world = &world;
  impl->options = std::move(options_);

  ObservabilityOptions& obs = impl->options.observability;
  const bool wantTrace = obs.trace || !obs.traceFile.empty();
  if (obs.tracer == nullptr && wantTrace) {
    impl->ownedTracer = std::make_unique<Tracer>(obs.traceCapacity);
    obs.tracer = impl->ownedTracer.get();
  }
  if (impl->ownedTracer != nullptr) {
    impl->ownedTracer->enable();
  } else if (obs.tracer != nullptr && wantTrace) {
    // Caller-owned tracer with an explicit trace request: switch it on;
    // without the request the caller's enable state is respected.
    obs.tracer->enable();
  }
  if (obs.metrics == nullptr) {
    impl->ownedMetrics = std::make_unique<MetricsRegistry>();
    obs.metrics = impl->ownedMetrics.get();
  }

  {
    DPART_TRACE_SPAN(obs.tracer, "compile", "compile");
    parallelize::AutoParallelizer parallelizer(world, compileOptions_);
    parallelizer.setTracer(obs.tracer);
    for (const constraint::System& sys : externalConstraints_) {
      parallelizer.addExternalConstraint(sys);
    }
    impl->plan = parallelizer.plan(program_);
  }

  // Publish the Table 1 phase breakdown alongside the trace spans.
  const parallelize::CompileStats& st = impl->plan.stats;
  MetricsRegistry& mx = *obs.metrics;
  mx.gauge("compile.inferMs").set(st.inferMs);
  mx.gauge("compile.unifyMs").set(st.unifyMs);
  mx.gauge("compile.solveMs").set(st.solveMs);
  mx.gauge("compile.rewriteMs").set(st.rewriteMs);
  mx.gauge("compile.parallelLoops").set(st.parallelLoops);

  impl->executor = std::make_unique<runtime::PlanExecutor>(
      world, impl->plan, pieces_, impl->options);
  for (auto& [name, part] : externals_) {
    impl->executor->bindExternal(name, std::move(part));
  }
  return Session(std::move(impl));
}

Session SessionBuilder::run(region::World& world) {
  Session session = build(world);
  session.run();
  return session;
}

}  // namespace dpart
