#pragma once

#include <map>
#include <string>
#include <vector>

#include "parallelize/parallelize.hpp"
#include "region/partition.hpp"

namespace dpart::runtime {

/// Access privilege a task requests on a (partition, field) pair — the
/// Legion-style region requirement our runtime checks non-interference with.
enum class Privilege { ReadOnly, ReadWrite, Reduce };

const char* toString(Privilege p);

struct RegionRequirement {
  std::string partition;  ///< partition symbol the task indexes with
  std::string region;
  std::string field;
  Privilege privilege{};

  [[nodiscard]] std::string toString() const;
};

/// Derives the region requirements of one planned loop (one entry per
/// accessed field, with the strongest privilege requested on it).
std::vector<RegionRequirement> requirementsOf(
    const parallelize::PlannedLoop& loop);

/// Checks that two tasks (subregion indices ia, ib of the same loop launch)
/// cannot interfere: for every pair of requirements on the same region and
/// field, either both are reads, both are reductions, or their actual
/// subregions are disjoint. This is the noninterference condition Legion
/// enforces dynamically; the tests run it against the partitions the solver
/// synthesized.
bool nonInterfering(const std::vector<RegionRequirement>& reqs,
                    const std::map<std::string, region::Partition>& partitions,
                    std::size_t ia, std::size_t ib);

}  // namespace dpart::runtime
