#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "region/partition.hpp"
#include "region/world.hpp"
#include "runtime/options.hpp"
#include "support/metrics.hpp"

namespace dpart::runtime {

/// The metrics schema the executor publishes per-piece task CPU times
/// under (thread CPU seconds — see ThreadCpuTimer for why not wall time),
/// shared with the Rebalancer's harvesting side so the two cannot drift.
/// One gauge per (loop, piece) accumulates total task seconds; one counter
/// per loop counts completed launches; their ratio is the mean task time
/// the imbalance estimate is built from.
MetricGauge& taskSecondsGauge(MetricsRegistry& metrics,
                              const std::string& loop, std::size_t piece);
MetricCounter& launchCounter(MetricsRegistry& metrics, const std::string& loop);

/// Skew-aware adaptive repartitioning (DESIGN.md §11).
///
/// The solver always synthesizes *unweighted* `equal` base partitions
/// (Algorithm 2), optimal only when work per index point is uniform. The
/// Rebalancer closes the loop at runtime: it harvests per-piece task wall
/// CPU times from the MetricsRegistry the executor publishes into, estimates a
/// per-index weight vector from them, and builds a replacement base
/// partition with region::equalWeighted. The executor routes that partition
/// through the external-binding path of Section 3.3 — derived
/// image/preimage partitions are re-evaluated against the new base, never
/// re-solved, exactly like the elastic-shrink machinery.
///
/// Stability controls (RebalancePolicy): a launch-count warmup before the
/// signal is trusted, a trigger threshold on the window imbalance
/// (max piece time / mean piece time), a hysteresis band widening the
/// threshold for repeat triggers on the same loop, a cooldown of launches
/// under the new partition before the loop may trigger again, and a cap on
/// total rebalances. Uniform workloads must never trigger.
///
/// Not thread-safe: the executor drives it from the launch thread, between
/// launches.
class Rebalancer {
 public:
  Rebalancer(RebalancePolicy policy, MetricsRegistry& metrics)
      : policy_(policy), metrics_(&metrics) {}

  /// Folds the metrics published since the loop's window began into the
  /// loop's observation window. Called once per completed launch. The first
  /// call for a loop (re)baselines the window at the current metric values,
  /// so that launch is never counted. A piece count change (elastic shrink)
  /// discards the window — times measured on a different machine shape
  /// carry no signal for this one.
  void observe(const std::string& loop, std::size_t pieces);

  /// True when the loop's window says a rebalance is warranted under the
  /// policy (warmup served, imbalance past the (hysteresis-widened)
  /// trigger, cooldown expired, cap not reached).
  [[nodiscard]] bool shouldRebalance(const std::string& loop) const;

  /// Builds the weighted replacement for `iter` (the loop's current
  /// iteration partition over `regionName`) from the window's mean per-piece
  /// seconds, and resets the loop's window so the new partition is judged
  /// only on launches it actually served. Call only after shouldRebalance().
  [[nodiscard]] region::Partition rebuild(const region::World& world,
                                          const std::string& regionName,
                                          const region::Partition& iter,
                                          const std::string& loop);

  /// Per-index weights implied by per-piece times: every index of piece j
  /// gets weight seconds[j] / |piece j|, and indices no piece covers get the
  /// mean covered weight (no opinion, average cost). Exposed for the sim's
  /// 256-node projection and for direct unit testing.
  [[nodiscard]] static std::vector<double> estimateWeights(
      const region::Partition& iter, const std::vector<double>& pieceSeconds,
      region::Index regionSize);

  /// Imbalance of the loop's current window (max piece time / mean piece
  /// time; 0 until a launch lands in the window). Exposed for gauges and
  /// tests.
  [[nodiscard]] double imbalance(const std::string& loop) const;

  /// Mean per-piece seconds over the loop's current window (empty until a
  /// launch lands in the window).
  [[nodiscard]] std::vector<double> windowMeans(const std::string& loop) const;

  /// Rebalances performed so far (counts toward RebalancePolicy::maxRebalances).
  [[nodiscard]] std::size_t rebalances() const { return rebalances_; }

  /// Drops every observation window (checkpoint restore / elastic shrink:
  /// the measured times no longer describe the machine). The rebalance
  /// count — and with it the maxRebalances cap — persists.
  void reset() { windows_.clear(); }

  [[nodiscard]] const RebalancePolicy& policy() const { return policy_; }

 private:
  /// Per-loop observation window. Gauges/counters are monotone
  /// accumulators, so a window is a baseline snapshot plus deltas.
  struct Window {
    std::size_t pieces = 0;
    std::uint64_t baseLaunches = 0;     ///< launch counter at window start
    std::vector<double> baseSeconds;    ///< per-piece gauge at window start
    std::uint64_t launches = 0;         ///< launches inside the window
    std::vector<double> meanSeconds;    ///< per-piece mean over the window
    double imbalance = 0;
    bool rebalanced = false;  ///< this loop already triggered at least once
  };

  /// Re-baselines the window at the metrics' current values.
  void restartWindow(Window& w, const std::string& loop, std::size_t pieces);

  RebalancePolicy policy_;
  MetricsRegistry* metrics_;
  std::map<std::string, Window> windows_;
  std::size_t rebalances_ = 0;
};

}  // namespace dpart::runtime
