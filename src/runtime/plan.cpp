#include "runtime/plan.hpp"

#include "support/check.hpp"

namespace dpart {

const parallelize::ParallelPlan& Plan::parallelPlan() const {
  DPART_CHECK(valid(), "empty Plan: compile one with SessionBuilder::compile");
  return payload_->plan;
}

const parallelize::CompileStats& Plan::stats() const {
  return parallelPlan().stats;
}

std::uint64_t Plan::cacheKey() const { return stats().cacheKey; }

bool Plan::cacheHit() const { return stats().cacheHit; }

std::size_t Plan::pieces() const {
  DPART_CHECK(valid(), "empty Plan: compile one with SessionBuilder::compile");
  return payload_->pieces;
}

}  // namespace dpart
