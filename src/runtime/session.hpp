#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "constraint/system.hpp"
#include "ir/ir.hpp"
#include "parallelize/parallelize.hpp"
#include "region/partition.hpp"
#include "region/world.hpp"
#include "runtime/executor.hpp"
#include "runtime/options.hpp"
#include "runtime/plan.hpp"

namespace dpart {

class SessionBuilder;

/// The one-stop facade over the whole pipeline: auto-parallelization
/// (AutoParallelizer), partition materialization and loop execution
/// (PlanExecutor), and the observability layer (Tracer + MetricsRegistry),
/// owned together and wired through every layer. Built fluently:
///
///   auto session = Session::parallelize(program)
///                      .pieces(8)
///                      .options(opts)          // runtime::ExecOptions
///                      .external("FIX", fix)   // Section 3.3 partitions
///                      .run(world);            // plan + execute once
///   session.run();                             // further timesteps
///
/// Compilation and execution also split explicitly: compile() produces an
/// immutable, shareable dpart::Plan and Session::execute() builds a session
/// around a precompiled plan without re-running the compiler — the API the
/// plan service uses to hand one cached plan to many tenants:
///
///   dpart::Plan plan =
///       Session::parallelize(program).pieces(8).compile(world);
///   auto session = Session::execute(plan, world, opts);
///   session.run();
///
/// The fluent run()/build() path is a thin wrapper over compile()+execute().
/// Planning happens exactly once; the executor (and with it the global
/// launch index, checkpoint state and fault-injection wiring) persists
/// across run() calls, so multi-timestep simulations behave identically to
/// driving PlanExecutor by hand. When ObservabilityOptions::traceFile /
/// metricsFile are set, the session owns a Tracer / MetricsRegistry and
/// rewrites both files at the end of every run() (latest run wins).
class Session {
 public:
  /// Entry point: start building a session for `program`.
  [[nodiscard]] static SessionBuilder parallelize(const ir::Program& program);

  /// Builds a session around a precompiled `plan` (from
  /// SessionBuilder::compile(), possibly shared with other sessions or
  /// served from the plan cache) without re-running the compiler. External
  /// partitions can be bound through executor().bindExternal() before the
  /// first run().
  [[nodiscard]] static Session execute(Plan plan, region::World& world,
                                       runtime::ExecOptions opts = {});

  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  ~Session();

  /// Executes every planned loop once (one timestep) and refreshes the
  /// trace/metrics artifacts. See PlanExecutor::run() for fault semantics.
  void run();

  /// Adaptive rebalances performed so far (see SessionBuilder::adaptive).
  [[nodiscard]] std::size_t rebalances() const;

  [[nodiscard]] const parallelize::ParallelPlan& plan() const;
  [[nodiscard]] const parallelize::CompileStats& stats() const;

  /// The immutable compile artifact this session executes — copy it to
  /// share the plan with further Session::execute() calls.
  [[nodiscard]] const Plan& compiledPlan() const;

  /// The executor driving the plan — the escape hatch for everything the
  /// facade does not wrap (taskReplays(), checkpointManager(), ...).
  [[nodiscard]] runtime::PlanExecutor& executor();
  [[nodiscard]] const runtime::PlanExecutor& executor() const;

  [[nodiscard]] const std::map<std::string, region::Partition>& partitions()
      const;
  [[nodiscard]] const region::Partition& partition(
      const std::string& name) const;

  /// The session's tracer: the ObservabilityOptions-supplied one, the
  /// session-owned one, or nullptr when tracing is off entirely.
  [[nodiscard]] Tracer* tracer() const;

  /// The session's metrics registry (never null: the session owns one when
  /// the options did not supply one).
  [[nodiscard]] MetricsRegistry& metrics() const;

  /// Writes the trace / metrics artifacts configured in
  /// ObservabilityOptions now (also done automatically after every run()).
  void writeArtifacts() const;

 private:
  friend class SessionBuilder;
  struct Impl;
  explicit Session(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Fluent configuration collected before the one-time planning step. All
/// setters return *this; build()/run() consume the builder.
class SessionBuilder {
 public:
  explicit SessionBuilder(const ir::Program& program);

  /// Runtime options (threads, validation, resilience, checkpointing,
  /// observability).
  SessionBuilder& options(runtime::ExecOptions opts);
  /// Compiler options (relaxation, unification, ... ablations).
  SessionBuilder& compileOptions(parallelize::Options opts);
  /// Number of pieces / parallel tasks (required, must be > 0).
  SessionBuilder& pieces(std::size_t n);
  /// Binds an externally constructed partition (Section 3.3).
  SessionBuilder& external(std::string name, region::Partition partition);
  /// Registers user-provided invariants on external partitions.
  SessionBuilder& externalConstraint(constraint::System system);

  // ---- External-constraint vocabulary (docs/constraint-language.md) ----
  /// No piece of any partition of `region` may hold more than `maxPerPiece`
  /// elements.
  SessionBuilder& capacity(std::string region, std::size_t maxPerPiece);
  /// The access partitions of two "region.field" fields must be piecewise
  /// identical (same piece -> same node).
  SessionBuilder& colocate(std::string fieldA, std::string fieldB);
  /// The access partitions of two "region.field" fields must be piecewise
  /// disjoint (no node owns both fields' copy of the same index).
  SessionBuilder& antiAffinity(std::string fieldA, std::string fieldB);
  /// Total materialized elements of any partition of `region` must stay in
  /// [minFactor, maxFactor] x |region| (maxFactor <= 0: unbounded above).
  SessionBuilder& replication(std::string region, double minFactor,
                              double maxFactor = 0.0);
  /// Writes a machine-checkable proof certificate of the solve (DPRF
  /// format, docs/solver.md) to `file`; tools/proof_check replays it.
  SessionBuilder& proof(std::string file);
  /// Enables skew-aware adaptive repartitioning (runtime/rebalance): the
  /// executor watches per-piece task times and swaps skewed loops'
  /// `equal` bases for weighted partitions under `policy`'s trigger /
  /// hysteresis / cooldown / cap controls. `policy.enabled` is forced on.
  SessionBuilder& adaptive(runtime::RebalancePolicy policy = {});

  /// Runs the compiler only: infer / relax / canonicalize / (cached)
  /// solve / synthesize against `world`'s region shapes, returning the
  /// result as an immutable shareable Plan. No executor is built and no
  /// loop runs; pass the Plan to Session::execute() — as many times as
  /// needed — to run it. `tracer`, when given, records the compile phases
  /// as "compile"-category spans (the plan service passes its own).
  [[nodiscard]] Plan compile(region::World& world, Tracer* tracer = nullptr);

  /// Plans (once) and wires up the executor without running any loop —
  /// compile() + Session::execute() with this builder's options.
  [[nodiscard]] Session build(region::World& world);
  /// build() followed by one Session::run().
  [[nodiscard]] Session run(region::World& world);

 private:
  [[nodiscard]] Plan compileInternal(region::World& world, Tracer* tracer);

  ir::Program program_;
  runtime::ExecOptions options_;
  parallelize::Options compileOptions_;
  std::size_t pieces_ = 0;
  std::vector<std::pair<std::string, region::Partition>> externals_;
  std::vector<constraint::System> externalConstraints_;
};

}  // namespace dpart
