#include "runtime/distributed/worker.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <memory>
#include <thread>
#include <vector>

#include "ir/interp.hpp"
#include "runtime/distributed/wire.hpp"
#include "runtime/task_exec.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace dpart::runtime::dist {

namespace {

using region::Index;
using region::IndexSet;

/// Blocks until `fd` is readable or hung up (no deadline: idle waits
/// between frames are the coordinator's to supervise, via heartbeats).
void waitReadable(int fd) {
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, -1) >= 0) return;
    if (errno != EINTR) return;  // recv will surface the error
  }
}

/// Answers Pings on the control channel until EOF. Runs on its own thread
/// so a worker grinding through a long task still proves it is alive.
void heartbeatLoop(const WorkerConfig& cfg) {
  try {
    for (;;) {
      waitReadable(cfg.controlFd);
      auto frame = recvFrame(cfg.controlFd, cfg.recvTimeoutMicros,
                             cfg.maxFrameBytes, cfg.nodeId);
      if (!frame.has_value()) return;  // coordinator closed the channel
      if (frame->type == MsgType::Ping) {
        sendFrame(cfg.controlFd, MsgType::Pong, frame->payload, cfg.nodeId);
      } else if (frame->type == MsgType::Shutdown) {
        return;
      }
    }
  } catch (...) {
    // A broken control channel is not fatal by itself: the data channel
    // decides the worker's fate, and a silent worker is killed by the
    // coordinator's heartbeat timeout anyway.
  }
}

/// Overwrites the worker's stale cells with the coordinator's
/// authoritative values (the explicit ghost-region exchange).
void applyRefresh(region::World& world,
                  const std::vector<FieldSlice>& refresh) {
  for (const FieldSlice& s : refresh) {
    auto column = world.region(s.region).f64(s.field);
    std::size_t k = 0;
    s.indices.forEach([&](Index i) {
      column[static_cast<std::size_t>(i)] = s.values[k++];
    });
  }
}

const parallelize::PlannedLoop* findLoop(const parallelize::ParallelPlan& plan,
                                         const std::string& name) {
  for (const parallelize::PlannedLoop& pl : plan.loops) {
    if (pl.loop->name == name) return &pl;
  }
  return nullptr;
}

/// Runs one task with exactly the in-process executor's machinery
/// (runtime/task_exec) and packages its observable effect: the in-place
/// write footprint's values plus the buffered-reduction contributions.
ResultMsg runTask(const WorkerConfig& cfg, const TaskMsg& task) {
  const ThreadCpuTimer timer;
  const parallelize::PlannedLoop* loop = findLoop(*cfg.plan, task.loop);
  DPART_CHECK(loop != nullptr, "worker has no loop named '" + task.loop + "'");
  const std::size_t j = static_cast<std::size_t>(task.piece);
  const auto& env = *cfg.env;
  const region::Partition& iter = env.at(loop->iterPartition);
  DPART_CHECK(j < iter.count(), "task piece out of range");

  applyRefresh(*cfg.world, task.refresh);

  // Ownership guards, hooks and footprints are derived exactly as in the
  // in-process path — from the same (fork-inherited) partitions, so both
  // backends make identical write/skip decisions.
  std::vector<IndexSet> ownership;
  const bool needOwnership = hasCenteredWrite(*loop) && !iter.isDisjoint();
  if (needOwnership) ownership = disjointify(iter);
  const IndexSet* own = needOwnership ? &ownership[j] : nullptr;

  TaskFootprint footprint = buildFootprint(*cfg.world, *loop, j, env, own);
  TaskHooks hooks(*loop, j, env, cfg.validateAccesses, own);
  ir::LoopRunner runner(*cfg.world, *loop->loop);
  runner.run(iter.sub(j), &hooks);

  ResultMsg result;
  result.seq = task.seq;
  result.piece = task.piece;
  for (const TaskFootprint::Patch& p : footprint.patches()) {
    FieldSlice slice;
    slice.region = p.region;
    slice.field = p.field;
    slice.indices = p.indices;
    slice.values.reserve(static_cast<std::size_t>(p.indices.size()));
    p.indices.forEach([&](Index i) {
      slice.values.push_back(p.column[static_cast<std::size_t>(i)]);
    });
    result.writes.push_back(std::move(slice));
  }
  // reduces() is a std::map keyed by stmt id, so slices arrive sorted the
  // way the deterministic merge iterates them.
  for (auto& [stmtId, st] : hooks.reduces()) {
    if (st.buffer.empty()) continue;
    ReduceSlice rs;
    rs.stmtId = stmtId;
    rs.op = static_cast<std::uint8_t>(st.op);
    rs.entries.assign(st.buffer.begin(), st.buffer.end());
    std::sort(rs.entries.begin(), rs.entries.end());
    result.reduces.push_back(std::move(rs));
  }
  result.taskSeconds = timer.seconds();
  return result;
}

}  // namespace

int workerMain(const WorkerConfig& cfg) {
  std::thread heartbeat([&cfg] { heartbeatLoop(cfg); });
  // The process exits via _exit(), which tears the thread down with the
  // address space; there is no clean-join handshake to get wrong.
  heartbeat.detach();

  try {
    for (;;) {
      waitReadable(cfg.dataFd);
      auto frame = recvFrame(cfg.dataFd, cfg.recvTimeoutMicros,
                             cfg.maxFrameBytes, cfg.nodeId);
      if (!frame.has_value()) return 0;  // coordinator went away: fold
      if (frame->type == MsgType::Shutdown) return 0;
      if (frame->type != MsgType::Task) {
        // Protocol confusion is unrecoverable worker-side; die loudly and
        // let the coordinator's retry/escalation policy decide.
        return 2;
      }
      TaskMsg task;
      try {
        BinaryReader r(frame->payload);
        task = decodeTask(r);
      } catch (const CheckpointCorruption&) {
        return 2;  // malformed Task payload that passed CRC: give up
      }
      try {
        const ResultMsg result = runTask(cfg, task);
        sendFrame(cfg.dataFd, MsgType::Result, encodeResult(result),
                  cfg.nodeId);
      } catch (const Error& e) {
        // One handler for the whole taxonomy: the subclass's stable numeric
        // code travels the wire and the coordinator rethrows from it.
        TaskErrorMsg err{task.seq, task.piece, toString(e.errorCode()),
                         e.what(), e.errorCode()};
        sendFrame(cfg.dataFd, MsgType::TaskError, encodeTaskError(err),
                  cfg.nodeId);
      }
    }
  } catch (const TransportError&) {
    return 2;
  } catch (...) {
    return 2;
  }
}

}  // namespace dpart::runtime::dist
