#include "runtime/distributed/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "ir/ir.hpp"
#include "runtime/distributed/worker.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_exec.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/sleep.hpp"
#include "support/trace.hpp"

namespace dpart::runtime::dist {

namespace {

using region::Index;
using region::IndexSet;
using region::Partition;

std::uint64_t monoMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string fieldKey(const std::string& region, const std::string& field) {
  return region + "." + field;
}

const ir::Stmt* findStmt(const parallelize::PlannedLoop& loop, int stmtId) {
  const ir::Stmt* found = nullptr;
  loop.loop->forEachStmt([&](const ir::Stmt& s) {
    if (s.id == stmtId) found = &s;
  });
  return found;
}

}  // namespace

Coordinator::Coordinator(region::World& world,
                         const parallelize::ParallelPlan& plan,
                         const ExecOptions& options)
    : world_(world), plan_(plan), options_(options) {}

Coordinator::~Coordinator() { shutdown(); }

void Coordinator::countError(const char* kind) const {
  if (options_.observability.metrics != nullptr) {
    options_.observability.metrics->counter("errorsTotal", {{"kind", kind}})
        .inc();
  }
}

void Coordinator::sleepFor(std::uint64_t micros) const {
  sleepOrHook(options_.resilience.sleepMicros, micros);
}

void Coordinator::ensureWorkers(
    const std::map<std::string, Partition>& env,
    const std::vector<std::size_t>& liveNodes, std::uint64_t prepareEpoch) {
  if (spawned_ && prepareEpoch == epoch_ && liveNodes == liveNodes_) return;
  // Partitions were re-evaluated (first prepare, restore, shrink or
  // rebalance): the fleet's fork-inherited view of them is stale, so the
  // whole fleet is replaced by fresh copy-on-write snapshots.
  shutdown();
  env_ = &env;
  liveNodes_ = liveNodes;
  epoch_ = prepareEpoch;
  workers_.assign(liveNodes.size(), Worker{});
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    workers_[j].nodeId = liveNodes[j];
  }
  for (std::size_t j = 0; j < workers_.size(); ++j) spawnWorker(j);
  spawned_ = true;
  if (Tracer* tr = options_.observability.tracer;
      tr != nullptr && tr->enabled()) {
    tr->instant("dist", "fleet.spawn",
                "\"workers\":" + std::to_string(workers_.size()) +
                    ",\"epoch\":" + std::to_string(epoch_));
  }
}

void Coordinator::spawnWorker(std::size_t j) {
  Worker& w = workers_[j];
  int data[2];
  int ctrl[2];
  DPART_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, data) == 0,
              std::string("socketpair failed: ") + std::strerror(errno));
  DPART_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, ctrl) == 0,
              std::string("socketpair failed: ") + std::strerror(errno));
  const pid_t pid = ::fork();
  DPART_CHECK(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    // Worker process. Close the coordinator-side ends and every other
    // worker's descriptors (a crashing sibling must not be kept half-alive
    // by our copies of its sockets), run the worker body, and _exit without
    // ever returning into the parent's stack.
    ::close(data[0]);
    ::close(ctrl[0]);
    for (const Worker& other : workers_) {
      if (&other == &w) continue;
      if (other.dataFd >= 0) ::close(other.dataFd);
      if (other.controlFd >= 0) ::close(other.controlFd);
    }
    WorkerConfig wc;
    wc.world = &world_;
    wc.plan = &plan_;
    wc.env = env_;
    wc.validateAccesses = options_.validateAccesses;
    wc.nodeId = w.nodeId;
    wc.dataFd = data[1];
    wc.controlFd = ctrl[1];
    wc.maxFrameBytes = options_.distributed.maxFrameBytes;
    wc.recvTimeoutMicros = options_.distributed.recvTimeoutMicros;
    ::_exit(workerMain(wc));
  }
  ::close(data[1]);
  ::close(ctrl[1]);
  w.pid = pid;
  w.dataFd = data[0];
  w.controlFd = ctrl[0];
  w.killedByInjector = false;
  ++w.generation;
  w.lastPongMicros = monoMicros();
  w.dirty.clear();
}

void Coordinator::destroyWorker(std::size_t j, bool sendShutdown) {
  Worker& w = workers_[j];
  if (sendShutdown && w.dataFd >= 0 && w.pid >= 0) {
    try {
      sendFrame(w.dataFd, MsgType::Shutdown, {}, w.nodeId, &net_);
    } catch (const TransportError&) {
      // Already dead; SIGKILL below is the ground truth.
    }
  }
  if (w.dataFd >= 0) ::close(w.dataFd);
  if (w.controlFd >= 0) ::close(w.controlFd);
  w.dataFd = w.controlFd = -1;
  if (w.pid >= 0) {
    // SIGKILL after the Shutdown courtesy: reaping below must terminate
    // even if the worker is wedged mid-task. Harmless if already exited.
    ::kill(w.pid, SIGKILL);
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    w.pid = -1;
  }
}

void Coordinator::shutdown() {
  for (std::size_t j = 0; j < workers_.size(); ++j) {
    destroyWorker(j, /*sendShutdown=*/true);
  }
  spawned_ = false;
}

std::vector<FieldSlice> Coordinator::buildRefresh(
    const parallelize::PlannedLoop& loop, std::size_t j) {
  Worker& w = workers_[j];
  if (w.dirty.empty()) return {};

  // Everything the task may read or ship back: LoadF64 read sets (the
  // assigned access subregion, or the whole region when the planner left a
  // load unassigned) plus the in-place write/reduce footprint. The
  // footprint matters even where the task never reads: the worker returns
  // ALL footprint indices (e.g. a Guarded reduce's whole guard set), so any
  // stale footprint cell would round-trip back over a fresher coordinator
  // value.
  std::map<std::pair<std::string, std::string>, IndexSet> needed;
  auto addNeed = [&](const std::string& region, const std::string& field,
                     const IndexSet& set) {
    auto key = std::make_pair(region, field);
    auto it = needed.find(key);
    if (it == needed.end()) {
      needed.emplace(std::move(key), set);
    } else {
      it->second = it->second.unionWith(set);
    }
  };
  loop.loop->forEachStmt([&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::LoadF64) return;
    auto it = loop.accessPartition.find(s.id);
    if (it != loop.accessPartition.end()) {
      addNeed(s.region, s.field, env_->at(it->second).sub(j));
    } else {
      addNeed(s.region, s.field, world_.region(s.region).indexSpace());
    }
  });
  const Partition& iter = env_->at(loop.iterPartition);
  std::vector<IndexSet> ownership;
  const bool needOwnership = hasCenteredWrite(loop) && !iter.isDisjoint();
  if (needOwnership) ownership = disjointify(iter);
  const IndexSet* own = needOwnership ? &ownership[j] : nullptr;
  TaskFootprint footprint = buildFootprint(world_, loop, j, *env_, own);
  for (const TaskFootprint::Patch& p : footprint.patches()) {
    addNeed(p.region, p.field, p.indices);
  }

  std::vector<FieldSlice> out;
  for (const auto& [key, set] : needed) {
    auto dit = w.dirty.find(fieldKey(key.first, key.second));
    if (dit == w.dirty.end()) continue;
    IndexSet stale = set.intersectWith(dit->second);
    if (stale.empty()) continue;
    FieldSlice slice;
    slice.region = key.first;
    slice.field = key.second;
    auto column = world_.region(slice.region).f64(slice.field);
    slice.values.reserve(static_cast<std::size_t>(stale.size()));
    stale.forEach([&](Index i) {
      slice.values.push_back(column[static_cast<std::size_t>(i)]);
    });
    dit->second = dit->second.subtract(stale);
    if (dit->second.empty()) w.dirty.erase(dit);
    slice.indices = std::move(stale);
    out.push_back(std::move(slice));
  }
  return out;
}

void Coordinator::sendTask(std::size_t j, const parallelize::PlannedLoop& loop,
                           std::uint64_t seq, LaunchStats& stats,
                           bool countGhost) {
  Worker& w = workers_[j];
  if (w.pid < 0) {
    ErrorContext ctx;
    ctx.piece = static_cast<int>(j);
    throw TransportError(w.nodeId, "worker process is not running",
                         std::move(ctx));
  }
  TaskMsg msg;
  msg.seq = seq;
  msg.loop = loop.loop->name;
  msg.piece = j;
  msg.refresh = buildRefresh(loop, j);
  if (countGhost) {
    stats.ghostElems += sliceElements(msg.refresh);
    stats.ghostMessages += msg.refresh.size();
  }
  // A "net:<loop>:<piece>" Poison site puts a genuinely corrupt frame on
  // the wire: the payload is damaged after the CRC is computed, the worker
  // rejects it and dies, and the coordinator's reconnect path must recover.
  std::function<void(std::vector<std::uint8_t>&)> tamper;
  if (FaultInjector* injector = options_.resilience.faultInjector;
      injector != nullptr) {
    const std::string site =
        "net:" + loop.loop->name + ":" + std::to_string(j);
    if (auto fault = injector->fire(site);
        fault && fault->kind == FaultKind::Poison) {
      tamper = [](std::vector<std::uint8_t>& bytes) {
        if (!bytes.empty()) bytes[bytes.size() / 2] ^= 0x40;
      };
    }
  }
  sendFrame(w.dataFd, MsgType::Task, encodeTask(msg), w.nodeId, &net_,
            tamper);
}

void Coordinator::fireTaskFaults(const parallelize::PlannedLoop& loop,
                                 std::size_t j, LaunchStats& stats) {
  FaultInjector* injector = options_.resilience.faultInjector;
  if (injector == nullptr) return;
  Worker& w = workers_[j];
  const std::size_t nodeId = w.nodeId;
  const std::string site =
      "task:" + loop.loop->name + ":" + std::to_string(j);
  const std::string nodeSite = "node:" + std::to_string(nodeId);
  Tracer* tr = options_.observability.tracer;
  for (int attempt = 0;; ++attempt) {
    if (auto fault = injector->fire(nodeSite);
        fault && fault->kind == FaultKind::PermanentCrash) {
      // The real thing: SIGKILL the worker process, then escalate as
      // NodeLossError so only a checkpoint restore with the node removed
      // (elastic shrink) recovers. The launch has applied nothing to the
      // coordinator's World, so there is no partial state to roll back.
      w.killedByInjector = true;
      if (w.pid >= 0) ::kill(w.pid, SIGKILL);
      if (tr != nullptr && tr->enabled()) {
        tr->instant("dist", "node.kill",
                    "\"node\":" + std::to_string(nodeId) +
                        ",\"pid\":" + std::to_string(w.pid));
      }
      destroyWorker(j, /*sendShutdown=*/false);
      ErrorContext ctx;
      ctx.site = nodeSite;
      ctx.loop = loop.loop->name;
      ctx.piece = static_cast<int>(j);
      ctx.attempt = attempt;
      throw NodeLossError(nodeId, "injected fault: node lost permanently",
                          std::move(ctx));
    }
    auto fault = injector->fire(site);
    if (!fault) return;
    ErrorContext ctx;
    ctx.site = site;
    ctx.loop = loop.loop->name;
    ctx.piece = static_cast<int>(j);
    ctx.attempt = attempt;
    switch (fault->kind) {
      case FaultKind::Straggler:
        stats.stallMicros += fault->stragglerMicros;
        sleepFor(fault->stragglerMicros);
        return;
      case FaultKind::PermanentCrash: {
        w.killedByInjector = true;
        if (w.pid >= 0) ::kill(w.pid, SIGKILL);
        destroyWorker(j, /*sendShutdown=*/false);
        throw NodeLossError(nodeId, "injected fault: node lost permanently",
                            std::move(ctx));
      }
      case FaultKind::CorruptCheckpoint:
        return;  // only meaningful at checkpoint:write sites
      case FaultKind::Poison:
      case FaultKind::Crash: {
        const char* what = fault->kind == FaultKind::Poison
                               ? "injected fault: task result poisoned"
                               : "injected fault: task crashed mid-run";
        countError("TaskFailure");
        // Replay is trivial here: the fault fired before dispatch, so no
        // worker-side state exists to restore — same observable outcome as
        // the in-process footprint snapshot/restore cycle.
        if (!options_.resilience.taskReplay) {
          throw TaskFailure(what, std::move(ctx));
        }
        if (attempt >= options_.resilience.maxTaskRetries) {
          const TaskFailure inner(what, std::move(ctx));
          ErrorContext outer = inner.context();
          outer.attempt = attempt;
          throw TaskFailure(std::string("task failed after ") +
                                std::to_string(attempt + 1) +
                                " attempt(s): " + inner.what(),
                            std::move(outer));
        }
        ++stats.replays;
        if (tr != nullptr && tr->enabled()) {
          tr->instant("executor", "task.replay",
                      "\"site\":\"" + jsonEscape(site) +
                          "\",\"node\":" + std::to_string(nodeId) +
                          ",\"attempt\":" + std::to_string(attempt));
        }
        if (options_.resilience.retryBackoffMicros > 0) {
          sleepFor(options_.resilience.retryBackoffMicros << attempt);
        }
        continue;
      }
    }
  }
}

void Coordinator::recoverWorker(std::size_t j,
                                const parallelize::PlannedLoop& loop,
                                int& reconnects, const std::string& why) {
  Worker& w = workers_[j];
  const std::size_t nodeId = w.nodeId;
  ErrorContext ctx;
  ctx.site = "node:" + std::to_string(nodeId);
  ctx.loop = loop.loop->name;
  ctx.piece = static_cast<int>(j);
  MetricsRegistry* mx = options_.observability.metrics;
  Tracer* tr = options_.observability.tracer;
  if (w.killedByInjector) {
    // A deliberate kill is a node loss, not a flaky link: no reconnect.
    destroyWorker(j, /*sendShutdown=*/false);
    throw NodeLossError(nodeId, "worker process killed by fault injection",
                        std::move(ctx));
  }
  for (;;) {
    if (reconnects >= options_.distributed.maxReconnects) {
      destroyWorker(j, /*sendShutdown=*/false);
      throw NodeLossError(
          nodeId,
          "worker lost after " + std::to_string(reconnects) +
              " reconnect attempt(s): " + why,
          std::move(ctx));
    }
    // Capped exponential backoff, routed through the sleep hook so tests
    // (and simulations) observe the schedule without real waiting.
    const std::uint64_t backoff =
        std::min(options_.distributed.reconnectBackoffMicros
                     << static_cast<unsigned>(reconnects),
                 options_.distributed.maxBackoffMicros);
    ++reconnects;
    if (mx != nullptr) mx->counter("executor.net.reconnectsTotal").inc();
    if (tr != nullptr && tr->enabled()) {
      tr->instant("dist", "reconnect",
                  "\"node\":" + std::to_string(nodeId) +
                      ",\"attempt\":" + std::to_string(reconnects) +
                      ",\"backoff_us\":" + std::to_string(backoff) +
                      ",\"why\":\"" + jsonEscape(why) + "\"");
    }
    sleepFor(backoff);
    destroyWorker(j, /*sendShutdown=*/false);
    spawnWorker(j);
    try {
      // The respawned worker is a fresh copy-on-write snapshot of the
      // coordinator (results are only applied after the full launch
      // collects), so the resent task needs no refresh slices.
      LaunchStats ignore;
      sendTask(j, loop, launchSeq_, ignore, /*countGhost=*/false);
      if (mx != nullptr) mx->counter("executor.net.retriesTotal").inc();
      return;
    } catch (const TransportError&) {
      countError("TransportError");
    }
  }
}

void Coordinator::applyResults(const parallelize::PlannedLoop& loop,
                               std::vector<ResultMsg>& results,
                               LaunchStats& stats) {
  const std::size_t n = pieces();
  auto markDirty = [&](std::size_t m, const std::string& region,
                       const std::string& field, const IndexSet& set) {
    IndexSet& d = workers_[m].dirty[fieldKey(region, field)];
    d = d.unionWith(set);
  };
  // In-place write-backs first (disjoint across tasks by the plan's
  // legality properties), in piece order — these cells were written during
  // task execution in the in-process backend, before any buffer merge.
  for (std::size_t j = 0; j < n; ++j) {
    for (const FieldSlice& s : results[j].writes) {
      auto column = world_.region(s.region).f64(s.field);
      std::size_t k = 0;
      s.indices.forEach([&](Index i) {
        column[static_cast<std::size_t>(i)] = s.values[k++];
      });
      // Every other worker's fork now disagrees with these cells.
      for (std::size_t m = 0; m < n; ++m) {
        if (m != j) markDirty(m, s.region, s.field, s.indices);
      }
    }
  }
  // Then buffered-reduction merges in exactly the in-process order: piece
  // ascending, stmtId ascending (the worker emits a std::map), entries
  // sorted by target index — bitwise-identical floating-point results.
  for (std::size_t j = 0; j < n; ++j) {
    for (const ReduceSlice& rs : results[j].reduces) {
      const ir::Stmt* stmt = findStmt(loop, static_cast<int>(rs.stmtId));
      DPART_CHECK(stmt != nullptr,
                  "worker result names unknown reduce stmt " +
                      std::to_string(rs.stmtId));
      auto column = world_.region(stmt->region).f64(stmt->field);
      std::vector<Index> touched;
      touched.reserve(rs.entries.size());
      for (const auto& [target, value] : rs.entries) {
        double& cell = column[static_cast<std::size_t>(target)];
        cell = ir::applyReduce(static_cast<ir::ReduceOp>(rs.op), cell, value);
        touched.push_back(target);
      }
      // Merged cells are stale on EVERY fork, including the contributor's:
      // its local copy buffered the contribution without applying it.
      const IndexSet touchedSet = IndexSet::fromIndices(std::move(touched));
      for (std::size_t m = 0; m < n; ++m) {
        markDirty(m, stmt->region, stmt->field, touchedSet);
      }
      stats.bufferedElements += rs.entries.size();
    }
    stats.taskSeconds[j] = results[j].taskSeconds;
  }
}

void Coordinator::publishNetMetrics() {
  MetricsRegistry* mx = options_.observability.metrics;
  if (mx == nullptr) return;
  mx->counter("executor.net.bytesSentTotal")
      .inc(net_.bytesSent - publishedNet_.bytesSent);
  mx->counter("executor.net.bytesRecvTotal")
      .inc(net_.bytesRecv - publishedNet_.bytesRecv);
  mx->counter("executor.net.messagesSentTotal")
      .inc(net_.messagesSent - publishedNet_.messagesSent);
  mx->counter("executor.net.messagesRecvTotal")
      .inc(net_.messagesRecv - publishedNet_.messagesRecv);
  publishedNet_ = net_;
}

LaunchStats Coordinator::runLoop(const parallelize::PlannedLoop& loop) {
  DPART_CHECK(spawned_, "ensureWorkers() must precede runLoop()");
  const std::size_t n = pieces();
  LaunchStats stats;
  stats.taskSeconds.assign(n, 0.0);
  const std::uint64_t seq = ++launchSeq_;
  MetricsRegistry* mx = options_.observability.metrics;
  Tracer* tr = options_.observability.tracer;

  // Coordinator-side fault sites fire before dispatch (in-process arrival
  // order: node site, then task site, per attempt), so "node:<id>" maps to
  // a real SIGKILL and task replays re-roll the injector without any
  // worker-side state to unwind.
  for (std::size_t j = 0; j < n; ++j) fireTaskFaults(loop, j, stats);

  // Dispatch: refresh slices (the ghost exchange) + launch order, with a
  // bounded respawn-and-resend path for transient transport failures.
  int reconnects = 0;
  for (std::size_t j = 0; j < n; ++j) {
    try {
      sendTask(j, loop, seq, stats, /*countGhost=*/true);
    } catch (const TransportError&) {
      countError("TransportError");
      recoverWorker(j, loop, reconnects, "task dispatch failed");
    }
  }
  lastGhost_[loop.loop->name] = {stats.ghostElems, stats.ghostMessages};
  if (mx != nullptr) {
    mx->counter("executor.net.ghostElemsTotal", {{"loop", loop.loop->name}})
        .inc(stats.ghostElems);
    mx->counter("executor.net.ghostMessagesTotal",
                {{"loop", loop.loop->name}})
        .inc(stats.ghostMessages);
  }

  // Collect: poll the fleet's data channels for Results and the control
  // channels for Pongs, pinging at the heartbeat cadence. A worker that
  // stops answering for heartbeatTimeoutMicros is SIGKILLed and escalated
  // exactly like an injected permanent node crash.
  std::vector<ResultMsg> results(n);
  std::vector<bool> done(n, false);
  std::size_t remaining = n;
  const std::uint64_t hbInterval =
      options_.distributed.heartbeatIntervalMicros;
  const std::uint64_t hbTimeout = options_.distributed.heartbeatTimeoutMicros;
  const bool heartbeats = hbInterval > 0 && hbTimeout > 0;
  std::uint64_t now = monoMicros();
  for (Worker& w : workers_) w.lastPongMicros = now;
  std::uint64_t nextPing = now + hbInterval;

  auto handleData = [&](std::size_t j) {
    Worker& w = workers_[j];
    auto frame = recvFrame(w.dataFd, options_.distributed.recvTimeoutMicros,
                           options_.distributed.maxFrameBytes, w.nodeId,
                           &net_);
    if (!frame.has_value()) {
      countError("TransportError");
      recoverWorker(j, loop, reconnects, "worker closed its data channel");
      return;
    }
    if (frame->type == MsgType::Result) {
      ResultMsg res;
      try {
        BinaryReader r(frame->payload);
        res = decodeResult(r);
      } catch (const CheckpointCorruption& e) {
        countError("TransportError");
        recoverWorker(j, loop, reconnects,
                      std::string("malformed Result payload: ") + e.what());
        return;
      }
      if (res.seq != seq || res.piece != j) {
        // A stale or reordered acknowledgment; the worker's stream is no
        // longer trustworthy for this launch.
        countError("TransportError");
        recoverWorker(j, loop, reconnects, "out-of-order Result frame");
        return;
      }
      results[j] = std::move(res);
      done[j] = true;
      --remaining;
      return;
    }
    if (frame->type == MsgType::TaskError) {
      TaskErrorMsg err;
      try {
        BinaryReader r(frame->payload);
        err = decodeTaskError(r);
      } catch (const CheckpointCorruption& e) {
        countError("TransportError");
        recoverWorker(j, loop, reconnects,
                      std::string("malformed TaskError payload: ") + e.what());
        return;
      }
      ErrorContext ctx;
      ctx.site = "node:" + std::to_string(w.nodeId);
      ctx.loop = loop.loop->name;
      ctx.piece = static_cast<int>(j);
      // Dispatch on the stable numeric code, not the kind string. A
      // PartitionViolation is a legality failure and must propagate as
      // itself (replay would just violate again); every other code — a
      // worker-side TaskFailure, EvalFailure, plain Error — escalates as a
      // retryable TaskFailure so the bounded replay policy applies.
      if (err.code == ErrorCode::PartitionViolation) {
        throw PartitionViolation("worker reported: " + err.what,
                                 std::move(ctx));
      }
      countError("TaskFailure");
      throw TaskFailure("worker reported: " + err.what, std::move(ctx));
    }
    countError("TransportError");
    recoverWorker(j, loop, reconnects,
                  std::string("unexpected ") + toString(frame->type) +
                      " frame on the data channel");
  };

  while (remaining > 0) {
    now = monoMicros();
    if (heartbeats && now >= nextPing) {
      for (std::size_t j = 0; j < n; ++j) {
        if (done[j] || workers_[j].pid < 0) continue;
        try {
          sendFrame(workers_[j].controlFd, MsgType::Ping, {},
                    workers_[j].nodeId, &net_);
          if (mx != nullptr) {
            mx->counter("executor.heartbeat.pingsTotal").inc();
          }
        } catch (const TransportError&) {
          // The data channel (HUP) or the timeout below will notice.
        }
      }
      nextPing = now + hbInterval;
    }
    if (heartbeats) {
      for (std::size_t j = 0; j < n; ++j) {
        Worker& w = workers_[j];
        if (done[j] || w.pid < 0) continue;
        if (now - w.lastPongMicros <= hbTimeout) continue;
        if (mx != nullptr) {
          mx->counter("executor.heartbeat.timeoutsTotal").inc();
        }
        if (tr != nullptr && tr->enabled()) {
          tr->instant("dist", "heartbeat.timeout",
                      "\"node\":" + std::to_string(w.nodeId) +
                          ",\"silent_us\":" +
                          std::to_string(now - w.lastPongMicros));
        }
        const std::size_t nodeId = w.nodeId;
        ::kill(w.pid, SIGKILL);
        destroyWorker(j, /*sendShutdown=*/false);
        ErrorContext ctx;
        ctx.site = "node:" + std::to_string(nodeId);
        ctx.loop = loop.loop->name;
        ctx.piece = static_cast<int>(j);
        throw NodeLossError(nodeId,
                            "worker heartbeat timed out after " +
                                std::to_string(now - w.lastPongMicros) +
                                "us",
                            std::move(ctx));
      }
    }

    std::vector<pollfd> fds;
    std::vector<std::pair<std::size_t, bool>> who;  // (worker, isControl)
    for (std::size_t j = 0; j < n; ++j) {
      if (done[j] || workers_[j].pid < 0) continue;
      fds.push_back({workers_[j].dataFd, POLLIN, 0});
      who.emplace_back(j, false);
      fds.push_back({workers_[j].controlFd, POLLIN, 0});
      who.emplace_back(j, true);
    }
    if (fds.empty()) {
      // Every undone worker is dead with no fd to watch; recover them.
      for (std::size_t j = 0; j < n; ++j) {
        if (!done[j] && workers_[j].pid < 0) {
          countError("TransportError");
          recoverWorker(j, loop, reconnects, "worker process is gone");
        }
      }
      continue;
    }
    int waitMs = 100;
    if (heartbeats) {
      const std::uint64_t due = nextPing > now ? nextPing - now : 0;
      waitMs = static_cast<int>(
          std::min<std::uint64_t>(due / 1000 + 1, 1000));
    }
    const int pr = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          waitMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw TransportError(0, std::string("transport: poll: ") +
                                  std::strerror(errno));
    }
    if (pr == 0) continue;
    bool fleetChanged = false;
    for (std::size_t k = 0; k < fds.size() && !fleetChanged; ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const auto [j, isControl] = who[k];
      if (done[j] || workers_[j].pid < 0) continue;
      const std::uint64_t gen = workers_[j].generation;
      if (isControl) {
        try {
          auto frame = recvFrame(workers_[j].controlFd,
                                 options_.distributed.recvTimeoutMicros,
                                 options_.distributed.maxFrameBytes,
                                 workers_[j].nodeId, &net_);
          if (frame.has_value() && frame->type == MsgType::Pong) {
            workers_[j].lastPongMicros = monoMicros();
            if (mx != nullptr) {
              mx->counter("executor.heartbeat.pongsTotal").inc();
            }
          }
        } catch (const TransportError&) {
          // Control-channel damage alone is not fatal: the heartbeat
          // timeout or the data channel decides this worker's fate.
        }
      } else {
        try {
          handleData(j);
        } catch (const TransportError& e) {
          countError("TransportError");
          recoverWorker(j, loop, reconnects, e.what());
        }
        // A respawn replaced fds; the rest of this poll round is stale.
        fleetChanged = workers_[j].generation != gen;
      }
    }
  }

  // Atomic apply: only now, with every task's result in hand, does the
  // coordinator's World change. Everything above could throw and leave the
  // World exactly as the launch found it.
  applyResults(loop, results, stats);
  publishNetMetrics();
  return stats;
}

}  // namespace dpart::runtime::dist
