#pragma once

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "parallelize/parallelize.hpp"
#include "region/partition.hpp"
#include "region/world.hpp"
#include "runtime/options.hpp"
#include "runtime/distributed/wire.hpp"

namespace dpart::runtime::dist {

/// What one distributed launch did, folded back into the executor's
/// resilience/observability tallies so both backends report identically.
struct LaunchStats {
  std::vector<double> taskSeconds;     ///< per piece, worker CPU seconds
  std::size_t bufferedElements = 0;    ///< reduction-buffer entries merged
  std::size_t replays = 0;             ///< injected-fault task replays
  std::uint64_t stallMicros = 0;       ///< injected straggler stalls
  std::uint64_t ghostElems = 0;        ///< refresh elements shipped
  std::uint64_t ghostMessages = 0;     ///< non-empty refresh slices shipped
};

/// The coordinator of the multi-process shared-nothing backend
/// (docs/distributed-backend.md).
///
/// Each "node" is a real forked worker process reached over a pair of
/// AF_UNIX stream sockets (data + control). The worker inherits the
/// coordinator's World, plan and evaluated partitions by fork()'s
/// copy-on-write snapshot — the shard arrives by fork — so any partition
/// re-evaluation (restore, elastic shrink, rebalance) respawns the fleet,
/// keyed on the executor's prepare epoch.
///
/// Launches are atomic: all tasks are dispatched, all results collected,
/// and only then are write-backs applied and reduction buffers merged into
/// the coordinator's World, in exactly the in-process merge order. An
/// escalation (NodeLossError, TaskFailure, PartitionViolation) before the
/// apply leaves the World untouched, so the executor's existing
/// checkpoint-restore / elastic-shrink recovery works unchanged.
///
/// Liveness: the coordinator pings every busy worker's control channel at
/// heartbeatIntervalMicros; a worker that misses pongs for
/// heartbeatTimeoutMicros is SIGKILLed and escalated as NodeLossError —
/// exactly the fate of an injected "node:<id>" PermanentCrash, which this
/// backend maps to a real SIGKILL of the worker process. Transient
/// transport failures (EOF, CRC mismatch, timeouts) are retried with a
/// bounded respawn-and-resend loop under capped exponential backoff
/// (sleeps routed through ResilienceOptions::sleepMicros), and escalate to
/// NodeLossError only when DistributedOptions::maxReconnects is exhausted.
class Coordinator {
 public:
  Coordinator(region::World& world, const parallelize::ParallelPlan& plan,
              const ExecOptions& options);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Brings the worker fleet in sync with the executor's state: on the
  /// first call, or whenever `prepareEpoch` or `liveNodes` changed, the old
  /// fleet is destroyed and one worker per entry of `liveNodes` is forked
  /// from the current coordinator state. `env` must outlive the fleet.
  void ensureWorkers(const std::map<std::string, region::Partition>& env,
                     const std::vector<std::size_t>& liveNodes,
                     std::uint64_t prepareEpoch);

  /// Runs one loop launch across the fleet (see class comment). Throws
  /// NodeLossError / TaskFailure / PartitionViolation with the same
  /// semantics as the in-process executor.
  [[nodiscard]] LaunchStats runLoop(const parallelize::PlannedLoop& loop);

  /// Shuts the fleet down (Shutdown frame, then SIGKILL, then reap). Safe
  /// to call repeatedly; the destructor calls it.
  void shutdown();

  /// Wire tallies since construction (the executor.net.* metrics source).
  [[nodiscard]] const NetCounters& netCounters() const { return net_; }

  /// Pid of worker j, or -1 when not running. Tests use this to SIGSTOP /
  /// SIGKILL real worker processes from outside the fault injector.
  [[nodiscard]] pid_t workerPid(std::size_t j) const {
    return j < workers_.size() ? workers_[j].pid : -1;
  }

  /// Ghost traffic of the most recent launch of each loop, for validating
  /// sim/ClusterSim's communication model against measured bytes/messages.
  [[nodiscard]] const std::map<std::string, std::pair<std::uint64_t,
                                                      std::uint64_t>>&
  lastGhostTraffic() const {
    return lastGhost_;
  }

 private:
  struct Worker {
    pid_t pid = -1;
    int dataFd = -1;
    int controlFd = -1;
    std::size_t nodeId = 0;
    /// Set when a "node:<id>" fault site SIGKILLed this worker on purpose:
    /// its death must escalate as NodeLossError immediately instead of
    /// entering the transient respawn-and-resend path.
    bool killedByInjector = false;
    /// Bumped on every (re)spawn; lets the collect loop detect that poll
    /// results it is iterating refer to a worker that has since been
    /// replaced (fd numbers get reused).
    std::uint64_t generation = 0;
    std::uint64_t lastPongMicros = 0;
    /// Stale cells per "region.field": indices whose coordinator value has
    /// changed since this worker last saw them. Cleared on (re)spawn — a
    /// fresh fork is an exact copy.
    std::map<std::string, region::IndexSet> dirty;
  };

  void spawnWorker(std::size_t j);
  void destroyWorker(std::size_t j, bool sendShutdown);
  /// Respawn-and-resend with capped exponential backoff; throws
  /// NodeLossError when maxReconnects is exhausted or the death was
  /// deliberate (killedByInjector / heartbeat timeout).
  void recoverWorker(std::size_t j, const parallelize::PlannedLoop& loop,
                     int& reconnects, const std::string& why);
  [[nodiscard]] std::vector<FieldSlice> buildRefresh(
      const parallelize::PlannedLoop& loop, std::size_t j);
  void sendTask(std::size_t j, const parallelize::PlannedLoop& loop,
                std::uint64_t seq, LaunchStats& stats, bool countGhost);
  /// Fires the coordinator-side "node:"/"task:" fault sites for piece j,
  /// mirroring the in-process replay semantics. Returns the number of
  /// replays simulated.
  void fireTaskFaults(const parallelize::PlannedLoop& loop, std::size_t j,
                      LaunchStats& stats);
  void applyResults(const parallelize::PlannedLoop& loop,
                    std::vector<ResultMsg>& results, LaunchStats& stats);
  void publishNetMetrics();
  void countError(const char* kind) const;
  void sleepFor(std::uint64_t micros) const;
  [[nodiscard]] std::size_t pieces() const { return workers_.size(); }

  region::World& world_;
  const parallelize::ParallelPlan& plan_;
  const ExecOptions& options_;
  const std::map<std::string, region::Partition>* env_ = nullptr;
  std::vector<Worker> workers_;
  std::vector<std::size_t> liveNodes_;
  std::uint64_t epoch_ = 0;
  bool spawned_ = false;
  std::uint64_t launchSeq_ = 0;
  NetCounters net_;
  NetCounters publishedNet_;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> lastGhost_;
};

}  // namespace dpart::runtime::dist
