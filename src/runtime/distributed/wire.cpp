#include "runtime/distributed/wire.hpp"

#include "region/snapshot.hpp"
#include "support/check.hpp"

namespace dpart::runtime::dist {

namespace {

void writeSlices(BinaryWriter& w, const std::vector<FieldSlice>& slices) {
  w.u64(slices.size());
  for (const FieldSlice& s : slices) {
    w.str(s.region);
    w.str(s.field);
    region::writeIndexSet(w, s.indices);
    DPART_CHECK(s.values.size() ==
                    static_cast<std::size_t>(s.indices.size()),
                "field slice value/index count mismatch");
    for (double v : s.values) w.f64(v);
  }
}

std::vector<FieldSlice> readSlices(BinaryReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<FieldSlice> slices;
  slices.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    FieldSlice s;
    s.region = r.str();
    s.field = r.str();
    s.indices = region::readIndexSet(r);
    s.values.reserve(static_cast<std::size_t>(s.indices.size()));
    for (region::Index k = 0; k < s.indices.size(); ++k) {
      s.values.push_back(r.f64());
    }
    slices.push_back(std::move(s));
  }
  return slices;
}

}  // namespace

const char* toString(MsgType t) {
  switch (t) {
    case MsgType::Hello: return "Hello";
    case MsgType::Task: return "Task";
    case MsgType::Result: return "Result";
    case MsgType::TaskError: return "TaskError";
    case MsgType::Ping: return "Ping";
    case MsgType::Pong: return "Pong";
    case MsgType::Shutdown: return "Shutdown";
  }
  return "?";
}

void sendFrame(int fd, MsgType type, std::span<const std::uint8_t> payload,
               std::size_t node, NetCounters* counters,
               const std::function<void(std::vector<std::uint8_t>&)>& tamper) {
  framing::sendFrame(fd, static_cast<std::uint8_t>(type), payload, node,
                     counters, tamper);
}

std::optional<Frame> recvFrame(int fd, std::uint64_t timeoutMicros,
                               std::uint64_t maxFrameBytes, std::size_t node,
                               NetCounters* counters) {
  std::optional<framing::RawFrame> raw = framing::recvFrame(
      fd, timeoutMicros, maxFrameBytes, node,
      static_cast<std::uint8_t>(MsgType::Hello),
      static_cast<std::uint8_t>(MsgType::Shutdown), counters);
  if (!raw) return std::nullopt;
  Frame frame;
  frame.type = static_cast<MsgType>(raw->type);
  frame.payload = std::move(raw->payload);
  return frame;
}

std::vector<std::uint8_t> encodeTask(const TaskMsg& m) {
  BinaryWriter w;
  w.u64(m.seq);
  w.str(m.loop);
  w.u64(m.piece);
  writeSlices(w, m.refresh);
  return w.take();
}

TaskMsg decodeTask(BinaryReader& r) {
  TaskMsg m;
  m.seq = r.u64();
  m.loop = r.str();
  m.piece = r.u64();
  m.refresh = readSlices(r);
  r.expectEnd();
  return m;
}

std::vector<std::uint8_t> encodeResult(const ResultMsg& m) {
  BinaryWriter w;
  w.u64(m.seq);
  w.u64(m.piece);
  writeSlices(w, m.writes);
  w.u64(m.reduces.size());
  for (const ReduceSlice& rs : m.reduces) {
    w.i64(rs.stmtId);
    w.u8(rs.op);
    w.u64(rs.entries.size());
    for (const auto& [target, value] : rs.entries) {
      w.i64(target);
      w.f64(value);
    }
  }
  w.f64(m.taskSeconds);
  return w.take();
}

ResultMsg decodeResult(BinaryReader& r) {
  ResultMsg m;
  m.seq = r.u64();
  m.piece = r.u64();
  m.writes = readSlices(r);
  const std::uint64_t nReduces = r.u64();
  m.reduces.reserve(static_cast<std::size_t>(nReduces));
  for (std::uint64_t i = 0; i < nReduces; ++i) {
    ReduceSlice rs;
    rs.stmtId = r.i64();
    rs.op = r.u8();
    const std::uint64_t nEntries = r.u64();
    rs.entries.reserve(static_cast<std::size_t>(nEntries));
    for (std::uint64_t k = 0; k < nEntries; ++k) {
      const region::Index target = r.i64();
      const double value = r.f64();
      rs.entries.emplace_back(target, value);
    }
    m.reduces.push_back(std::move(rs));
  }
  m.taskSeconds = r.f64();
  r.expectEnd();
  return m;
}

std::vector<std::uint8_t> encodeTaskError(const TaskErrorMsg& m) {
  BinaryWriter w;
  w.u64(m.seq);
  w.u64(m.piece);
  w.str(m.kind);
  w.str(m.what);
  w.u32(static_cast<std::uint32_t>(m.code));
  return w.take();
}

TaskErrorMsg decodeTaskError(BinaryReader& r) {
  TaskErrorMsg m;
  m.seq = r.u64();
  m.piece = r.u64();
  m.kind = r.str();
  m.what = r.str();
  m.code = static_cast<ErrorCode>(r.u32());
  r.expectEnd();
  return m;
}

std::uint64_t sliceElements(const std::vector<FieldSlice>& s) {
  std::uint64_t total = 0;
  for (const FieldSlice& slice : s) {
    total += static_cast<std::uint64_t>(slice.indices.size());
  }
  return total;
}

}  // namespace dpart::runtime::dist
