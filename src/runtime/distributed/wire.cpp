#include "runtime/distributed/wire.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "region/snapshot.hpp"
#include "support/check.hpp"

namespace dpart::runtime::dist {

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'D', 'P', 'M', 'G'};
// Header: magic[4] | type u8 | payload size u64 | crc32 u32.
constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 4;

void putU32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void putU64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t getU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(in[i]) << (8 * i);
  return v;
}

std::uint64_t getU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(in[i]) << (8 * i);
  return v;
}

[[noreturn]] void transportFail(std::size_t node, const std::string& what) {
  ErrorContext ctx;
  ctx.piece = -1;
  throw TransportError(node, "transport: " + what + " (node " +
                                 std::to_string(node) + ")",
                       std::move(ctx));
}

std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Reads exactly n bytes under the deadline. Returns false on EOF before
/// the first byte when allowEof; throws TransportError otherwise.
bool readFully(int fd, std::uint8_t* buf, std::size_t n,
               std::uint64_t timeoutMicros, std::size_t node, bool allowEof) {
  const std::uint64_t deadline =
      timeoutMicros == 0 ? 0 : nowMicros() + timeoutMicros;
  std::size_t got = 0;
  while (got < n) {
    int waitMs = -1;
    if (deadline != 0) {
      const std::uint64_t now = nowMicros();
      if (now >= deadline) {
        transportFail(node, "recv timed out after " +
                                std::to_string(timeoutMicros) + "us (" +
                                std::to_string(got) + "/" +
                                std::to_string(n) + " bytes)");
      }
      waitMs = static_cast<int>((deadline - now) / 1000 + 1);
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, waitMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      transportFail(node, std::string("poll: ") + std::strerror(errno));
    }
    if (pr == 0) continue;  // re-check the deadline
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      transportFail(node, std::string("recv: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && allowEof) return false;
      transportFail(node, "peer closed mid-frame (" + std::to_string(got) +
                              "/" + std::to_string(n) + " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void writeFully(int fd, const std::uint8_t* buf, std::size_t n,
                std::size_t node) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE (-> TransportError) instead of
    // killing the process with SIGPIPE.
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      transportFail(node, std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

void writeSlices(BinaryWriter& w, const std::vector<FieldSlice>& slices) {
  w.u64(slices.size());
  for (const FieldSlice& s : slices) {
    w.str(s.region);
    w.str(s.field);
    region::writeIndexSet(w, s.indices);
    DPART_CHECK(s.values.size() ==
                    static_cast<std::size_t>(s.indices.size()),
                "field slice value/index count mismatch");
    for (double v : s.values) w.f64(v);
  }
}

std::vector<FieldSlice> readSlices(BinaryReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<FieldSlice> slices;
  slices.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    FieldSlice s;
    s.region = r.str();
    s.field = r.str();
    s.indices = region::readIndexSet(r);
    s.values.reserve(static_cast<std::size_t>(s.indices.size()));
    for (region::Index k = 0; k < s.indices.size(); ++k) {
      s.values.push_back(r.f64());
    }
    slices.push_back(std::move(s));
  }
  return slices;
}

}  // namespace

const char* toString(MsgType t) {
  switch (t) {
    case MsgType::Hello: return "Hello";
    case MsgType::Task: return "Task";
    case MsgType::Result: return "Result";
    case MsgType::TaskError: return "TaskError";
    case MsgType::Ping: return "Ping";
    case MsgType::Pong: return "Pong";
    case MsgType::Shutdown: return "Shutdown";
  }
  return "?";
}

void sendFrame(int fd, MsgType type, std::span<const std::uint8_t> payload,
               std::size_t node, NetCounters* counters,
               const std::function<void(std::vector<std::uint8_t>&)>& tamper) {
  std::vector<std::uint8_t> frame(kHeaderSize + payload.size());
  std::memcpy(frame.data(), kMagic.data(), kMagic.size());
  frame[4] = static_cast<std::uint8_t>(type);
  putU64(frame.data() + 5, payload.size());
  putU32(frame.data() + 13, crc32(payload));
  if (tamper) {
    // Silent-corruption model, as in writeFramedFile: the checksum was
    // computed from the intact payload, then the bytes on the wire are
    // damaged — the receiver must catch the mismatch.
    std::vector<std::uint8_t> damaged(payload.begin(), payload.end());
    tamper(damaged);
    damaged.resize(payload.size());  // tamper may not change the length
    std::memcpy(frame.data() + kHeaderSize, damaged.data(), damaged.size());
  } else if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderSize, payload.data(), payload.size());
  }
  writeFully(fd, frame.data(), frame.size(), node);
  if (counters != nullptr) {
    counters->bytesSent += frame.size();
    ++counters->messagesSent;
  }
}

std::optional<Frame> recvFrame(int fd, std::uint64_t timeoutMicros,
                               std::uint64_t maxFrameBytes, std::size_t node,
                               NetCounters* counters) {
  std::array<std::uint8_t, kHeaderSize> header;
  if (!readFully(fd, header.data(), header.size(), timeoutMicros, node,
                 /*allowEof=*/true)) {
    return std::nullopt;
  }
  if (std::memcmp(header.data(), kMagic.data(), kMagic.size()) != 0) {
    transportFail(node, "bad frame magic");
  }
  const std::uint8_t type = header[4];
  if (type < static_cast<std::uint8_t>(MsgType::Hello) ||
      type > static_cast<std::uint8_t>(MsgType::Shutdown)) {
    transportFail(node, "unknown frame type " + std::to_string(type));
  }
  const std::uint64_t size = getU64(header.data() + 5);
  // Cap check BEFORE the allocation the declared size would drive.
  if (size > maxFrameBytes) {
    transportFail(node, "frame declares " + std::to_string(size) +
                            " payload bytes, exceeding the " +
                            std::to_string(maxFrameBytes) + "-byte cap");
  }
  const std::uint32_t want = getU32(header.data() + 13);
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(static_cast<std::size_t>(size));
  if (size > 0) {
    readFully(fd, frame.payload.data(), frame.payload.size(), timeoutMicros,
              node, /*allowEof=*/false);
  }
  if (crc32(frame.payload) != want) {
    transportFail(node, std::string("frame failed CRC32 check (") +
                            toString(frame.type) + ")");
  }
  if (counters != nullptr) {
    counters->bytesRecv += kHeaderSize + frame.payload.size();
    ++counters->messagesRecv;
  }
  return frame;
}

std::vector<std::uint8_t> encodeTask(const TaskMsg& m) {
  BinaryWriter w;
  w.u64(m.seq);
  w.str(m.loop);
  w.u64(m.piece);
  writeSlices(w, m.refresh);
  return w.take();
}

TaskMsg decodeTask(BinaryReader& r) {
  TaskMsg m;
  m.seq = r.u64();
  m.loop = r.str();
  m.piece = r.u64();
  m.refresh = readSlices(r);
  r.expectEnd();
  return m;
}

std::vector<std::uint8_t> encodeResult(const ResultMsg& m) {
  BinaryWriter w;
  w.u64(m.seq);
  w.u64(m.piece);
  writeSlices(w, m.writes);
  w.u64(m.reduces.size());
  for (const ReduceSlice& rs : m.reduces) {
    w.i64(rs.stmtId);
    w.u8(rs.op);
    w.u64(rs.entries.size());
    for (const auto& [target, value] : rs.entries) {
      w.i64(target);
      w.f64(value);
    }
  }
  w.f64(m.taskSeconds);
  return w.take();
}

ResultMsg decodeResult(BinaryReader& r) {
  ResultMsg m;
  m.seq = r.u64();
  m.piece = r.u64();
  m.writes = readSlices(r);
  const std::uint64_t nReduces = r.u64();
  m.reduces.reserve(static_cast<std::size_t>(nReduces));
  for (std::uint64_t i = 0; i < nReduces; ++i) {
    ReduceSlice rs;
    rs.stmtId = r.i64();
    rs.op = r.u8();
    const std::uint64_t nEntries = r.u64();
    rs.entries.reserve(static_cast<std::size_t>(nEntries));
    for (std::uint64_t k = 0; k < nEntries; ++k) {
      const region::Index target = r.i64();
      const double value = r.f64();
      rs.entries.emplace_back(target, value);
    }
    m.reduces.push_back(std::move(rs));
  }
  m.taskSeconds = r.f64();
  r.expectEnd();
  return m;
}

std::vector<std::uint8_t> encodeTaskError(const TaskErrorMsg& m) {
  BinaryWriter w;
  w.u64(m.seq);
  w.u64(m.piece);
  w.str(m.kind);
  w.str(m.what);
  return w.take();
}

TaskErrorMsg decodeTaskError(BinaryReader& r) {
  TaskErrorMsg m;
  m.seq = r.u64();
  m.piece = r.u64();
  m.kind = r.str();
  m.what = r.str();
  r.expectEnd();
  return m;
}

std::uint64_t sliceElements(const std::vector<FieldSlice>& s) {
  std::uint64_t total = 0;
  for (const FieldSlice& slice : s) {
    total += static_cast<std::uint64_t>(slice.indices.size());
  }
  return total;
}

}  // namespace dpart::runtime::dist
