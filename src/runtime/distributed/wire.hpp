#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "region/index_set.hpp"
#include "support/check.hpp"
#include "support/framing.hpp"
#include "support/serialize.hpp"

namespace dpart::runtime::dist {

/// Wire protocol of the multi-process backend (docs/distributed-backend.md).
///
/// Every message travels as one "DPMG" CRC-framed message on an AF_UNIX
/// stream socket — the shared frame layer lives in support/framing (also
/// spoken by the plan service); this module contributes the backend's
/// message-type vocabulary and payload codecs, reusing the bounds-checked
/// BinaryReader for payload decoding.

enum class MsgType : std::uint8_t {
  Hello = 1,      ///< worker -> coordinator: ready (nodeId, epoch)
  Task = 2,       ///< coordinator -> worker: refresh slices + launch order
  Result = 3,     ///< worker -> coordinator: write-back slices + buffers
  TaskError = 4,  ///< worker -> coordinator: task raised a taxonomy error
  Ping = 5,       ///< coordinator -> worker (control channel)
  Pong = 6,       ///< worker -> coordinator (control channel)
  Shutdown = 7,   ///< coordinator -> worker: exit cleanly
};

[[nodiscard]] const char* toString(MsgType t);

/// One received frame.
struct Frame {
  MsgType type = MsgType::Hello;
  std::vector<std::uint8_t> payload;
};

/// Send/receive tallies of one endpoint (coordinator keeps one per run and
/// publishes it as the executor.net.* metrics).
using NetCounters = framing::NetCounters;

/// Writes one frame to `fd`. `node` only labels the TransportError thrown
/// on a send failure (EPIPE to a dead worker, etc.). `tamper`, when set, is
/// applied to a copy of the payload AFTER the checksum is computed — the
/// hook "net:" Poison fault sites use to put a genuinely corrupt frame on
/// the wire that the receiver must reject by CRC.
void sendFrame(int fd, MsgType type, std::span<const std::uint8_t> payload,
               std::size_t node, NetCounters* counters = nullptr,
               const std::function<void(std::vector<std::uint8_t>&)>& tamper =
                   {});

/// Reads one frame from `fd` under a deadline. Returns std::nullopt on a
/// clean EOF at a frame boundary (peer closed between messages). Throws
/// TransportError(node) on: poll timeout (`timeoutMicros`; 0 = wait
/// forever), EOF mid-frame, socket error, bad magic, unknown type, a
/// declared payload size above `maxFrameBytes` (checked before
/// allocation), or CRC mismatch.
[[nodiscard]] std::optional<Frame> recvFrame(int fd,
                                             std::uint64_t timeoutMicros,
                                             std::uint64_t maxFrameBytes,
                                             std::size_t node,
                                             NetCounters* counters = nullptr);

/// One (region, field) slice of F64 column data with its index set —
/// the unit of both ghost refresh (coordinator -> worker) and write-back
/// (worker -> coordinator). Values are bit-exact: doubles travel as their
/// IEEE-754 bit patterns (BinaryWriter::f64), which is what makes the
/// multi-process backend bitwise identical to the in-process one.
struct FieldSlice {
  std::string region;
  std::string field;
  region::IndexSet indices;
  std::vector<double> values;  ///< one per index, in ascending index order
};

/// Launch order for one task (Task payload).
struct TaskMsg {
  std::uint64_t seq = 0;    ///< launch sequence number, echoed by Result
  std::string loop;         ///< planned loop name
  std::uint64_t piece = 0;  ///< task index j
  std::vector<FieldSlice> refresh;  ///< stale cells to overwrite before run
};

/// One reduce statement's buffered contributions (Result payload).
struct ReduceSlice {
  std::int64_t stmtId = 0;
  std::uint8_t op = 0;  ///< ir::ReduceOp
  /// (target, accumulated value), sorted by target — the order the
  /// in-process merge applies.
  std::vector<std::pair<region::Index, double>> entries;
};

/// Task outcome (Result payload).
struct ResultMsg {
  std::uint64_t seq = 0;
  std::uint64_t piece = 0;
  std::vector<FieldSlice> writes;  ///< the task's in-place write footprint
  std::vector<ReduceSlice> reduces;  ///< sorted by stmtId
  double taskSeconds = 0;  ///< worker-side thread CPU seconds
};

/// Task raised a taxonomy error worker-side (TaskError payload). The
/// stable numeric code (ErrorCode in support/check.hpp) is authoritative —
/// the coordinator switches on it to rethrow the right taxonomy subclass;
/// `kind` is its rendered name, kept on the wire for log lines and the
/// errorsTotal metric label.
struct TaskErrorMsg {
  std::uint64_t seq = 0;
  std::uint64_t piece = 0;
  std::string kind;  ///< toString(code): "PartitionViolation", "Error", ...
  std::string what;  ///< full message (ErrorContext already rendered in)
  ErrorCode code = ErrorCode::Internal;
};

[[nodiscard]] std::vector<std::uint8_t> encodeTask(const TaskMsg& m);
[[nodiscard]] TaskMsg decodeTask(BinaryReader& r);

[[nodiscard]] std::vector<std::uint8_t> encodeResult(const ResultMsg& m);
[[nodiscard]] ResultMsg decodeResult(BinaryReader& r);

[[nodiscard]] std::vector<std::uint8_t> encodeTaskError(const TaskErrorMsg& m);
[[nodiscard]] TaskErrorMsg decodeTaskError(BinaryReader& r);

/// Total elements across a set of slices (ghost-traffic accounting).
[[nodiscard]] std::uint64_t sliceElements(const std::vector<FieldSlice>& s);

}  // namespace dpart::runtime::dist
