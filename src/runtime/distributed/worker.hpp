#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "parallelize/parallelize.hpp"
#include "region/partition.hpp"
#include "region/world.hpp"

namespace dpart::runtime::dist {

/// Everything a forked worker process needs to run tasks. All pointers
/// refer to the coordinator's objects, which the worker owns for free after
/// fork(): the child's copy-on-write address space carries the World's full
/// field data, the compiled plan and the evaluated partition environment —
/// the "shard arrives by fork" transport of the process model
/// (docs/distributed-backend.md). The coordinator re-forks workers whenever
/// partitions are re-evaluated (restore, shrink, rebalance), so a worker's
/// view of `env` is immutable for its lifetime.
struct WorkerConfig {
  region::World* world = nullptr;
  const parallelize::ParallelPlan* plan = nullptr;
  const std::map<std::string, region::Partition>* env = nullptr;
  bool validateAccesses = false;
  std::uint64_t nodeId = 0;
  int dataFd = -1;     ///< Task/Result/TaskError/Shutdown
  int controlFd = -1;  ///< Ping/Pong (answered by a dedicated thread, so
                       ///< liveness probes succeed during long tasks)
  std::uint64_t maxFrameBytes = 0;
  std::uint64_t recvTimeoutMicros = 0;  ///< mid-frame deadline; idle waits
                                        ///< between frames are unbounded
};

/// Body of a worker process. Runs until a Shutdown frame or data-channel
/// EOF (exit code 0), or a transport/internal failure (exit code 2). The
/// caller must pass the return value to _exit() immediately — a forked
/// child must never return into the parent's stack (test harnesses, atexit
/// handlers).
[[nodiscard]] int workerMain(const WorkerConfig& config);

}  // namespace dpart::runtime::dist
