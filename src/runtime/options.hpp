#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "region/partition.hpp"
#include "support/fault.hpp"
#include "support/observability.hpp"

namespace dpart::runtime {

/// Task-replay resilience knobs (DESIGN.md §7). Grouped so call sites read
/// as `opts.resilience.taskReplay = true` and so Session can expose the
/// group wholesale.
struct ResilienceOptions {
  /// Enables task-level replay: each task's in-place write footprint (its
  /// subregion plus in-place reduction targets) is snapshotted before the
  /// first attempt and restored before every retry, so replay is idempotent
  /// under all four reduction strategies.
  bool taskReplay = false;
  /// Maximum replays per task per loop launch before the TaskFailure
  /// propagates (taskReplay mode only).
  int maxTaskRetries = 3;
  /// Base of the exponential backoff between replays, microseconds
  /// (attempt k sleeps base << k); 0 disables the backoff.
  std::uint64_t retryBackoffMicros = 0;
  /// Fault injector consulted at the "loop:<name>", "task:<loop>:<piece>",
  /// "node:<id>" and "dpl:<op>" sites; nullptr disables injection.
  FaultInjector* faultInjector = nullptr;
  /// Replaces the real sleep behind straggler stalls and retry backoff, so
  /// fault tests run without wall-clock delays. Must be thread-safe (tasks
  /// sleep concurrently); empty keeps real sleeping.
  std::function<void(std::uint64_t)> sleepMicros;
};

/// Durable checkpoint/restore knobs (DESIGN.md §8).
struct CheckpointOptions {
  /// Directory for durable end-of-launch checkpoints (created if missing);
  /// empty disables checkpointing, and with it restore/elastic-shrink
  /// escalation.
  std::string dir;
  /// Take a checkpoint after every N completed loop launches. A baseline
  /// checkpoint (launch 0) is always taken before the first launch.
  int everyNLaunches = 1;
  /// Checkpoint generations kept on disk (older ones are deleted).
  int retain = 3;
  /// Give up (propagate the fault) after this many checkpoint restores.
  int maxRestores = 16;
  /// Rebuilds an externally bound partition for a new piece count after an
  /// elastic shrink. Without it, a shrink with externals whose piece count
  /// no longer matches fails the restore.
  std::function<region::Partition(const std::string&, std::size_t)>
      externalRebind;
};

/// Execution options for PlanExecutor / Session, grouped by concern:
/// scheduling and validation at the top level, with nested resilience,
/// checkpoint and observability option sets.
struct ExecOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Check every region access against the subregion its statement was
  /// assigned — the dynamic partition-legality check used by the tests.
  /// Violations throw PartitionViolation with loop/field/stmt/index context.
  bool validateAccesses = false;
  /// Run the partition legality verifier (region/verify) after
  /// preparePartitions() and after any loop launch that replayed a task.
  bool verifyPartitions = false;
  ResilienceOptions resilience;
  CheckpointOptions checkpoint;
  ObservabilityOptions observability;
};

}  // namespace dpart::runtime
