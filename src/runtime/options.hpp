#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "region/partition.hpp"
#include "support/fault.hpp"
#include "support/observability.hpp"

namespace dpart::runtime {

/// Task-replay resilience knobs (DESIGN.md §7). Grouped so call sites read
/// as `opts.resilience.taskReplay = true` and so Session can expose the
/// group wholesale.
struct ResilienceOptions {
  /// Enables task-level replay: each task's in-place write footprint (its
  /// subregion plus in-place reduction targets) is snapshotted before the
  /// first attempt and restored before every retry, so replay is idempotent
  /// under all four reduction strategies.
  bool taskReplay = false;
  /// Maximum replays per task per loop launch before the TaskFailure
  /// propagates (taskReplay mode only).
  int maxTaskRetries = 3;
  /// Base of the exponential backoff between replays, microseconds
  /// (attempt k sleeps base << k); 0 disables the backoff.
  std::uint64_t retryBackoffMicros = 0;
  /// Fault injector consulted at the "loop:<name>", "task:<loop>:<piece>",
  /// "node:<id>" and "dpl:<op>" sites; nullptr disables injection.
  FaultInjector* faultInjector = nullptr;
  /// Replaces the real sleep behind straggler stalls and retry backoff, so
  /// fault tests run without wall-clock delays. Must be thread-safe (tasks
  /// sleep concurrently); empty keeps real sleeping.
  std::function<void(std::uint64_t)> sleepMicros;
};

/// Durable checkpoint/restore knobs (DESIGN.md §8).
struct CheckpointOptions {
  /// Directory for durable end-of-launch checkpoints (created if missing);
  /// empty disables checkpointing, and with it restore/elastic-shrink
  /// escalation.
  std::string dir;
  /// Take a checkpoint after every N completed loop launches. A baseline
  /// checkpoint (launch 0) is always taken before the first launch.
  int everyNLaunches = 1;
  /// Checkpoint generations kept on disk (older ones are deleted).
  int retain = 3;
  /// Give up (propagate the fault) after this many checkpoint restores.
  int maxRestores = 16;
  /// Rebuilds an externally bound partition for a new piece count after an
  /// elastic shrink. Without it, a shrink with externals whose piece count
  /// no longer matches fails the restore.
  std::function<region::Partition(const std::string&, std::size_t)>
      externalRebind;
};

/// Skew-aware adaptive repartitioning knobs (DESIGN.md §11). The executor
/// measures per-piece task CPU times, publishes them through the metrics
/// registry, and — when the imbalance of a loop's measured times crosses the
/// trigger — swaps that loop's `equal` base partition for a weighted one
/// (region::equalWeighted) routed through the external-binding path of
/// Section 3.3: derived image/preimage partitions are re-evaluated, never
/// re-solved, exactly like an elastic shrink.
struct RebalancePolicy {
  /// Master switch; Session::adaptive() turns it on.
  bool enabled = false;
  /// Rebalance when a loop's window imbalance (max piece time / mean piece
  /// time, averaged over the observation window) reaches this. 1.0 means
  /// perfectly balanced; the default tolerates 30% critical-path slack,
  /// comfortably above scheduler noise on uniform workloads.
  double triggerImbalance = 1.3;
  /// Hysteresis band: any rebalance after the first for a loop requires
  /// imbalance >= triggerImbalance * (1 + hysteresis), so two states
  /// straddling the bare threshold cannot oscillate.
  double hysteresis = 0.1;
  /// Launches of a loop observed before its imbalance is trusted (the first
  /// launches include cold caches and partition materialization jitter).
  /// The loop's very first launch establishes the observation window's
  /// metric baseline and is never counted, so the earliest possible trigger
  /// is after launch warmupLaunches + 1.
  int warmupLaunches = 2;
  /// Launches observed under the *new* partition before the loop may
  /// trigger again (the window resets on every rebalance).
  int cooldownLaunches = 2;
  /// Total rebalances allowed per executor, across all loops.
  int maxRebalances = 4;
  /// Launches whose critical-path task time is below this are not fed into
  /// the observation window: times that small are scheduler noise, not a
  /// balance signal. 0 trusts every launch.
  double minTaskSeconds = 0;
};

/// Which execution backend runs a plan's loop launches.
enum class ExecBackend {
  /// Tasks run on a thread pool inside this process (the default; all
  /// resilience faults are simulated in-address-space).
  InProcess,
  /// Tasks run on real forked worker processes over local sockets
  /// (runtime/distributed): each node holds its own copy of the World,
  /// ghost refreshes and reduction merges travel as framed messages, and
  /// "node:<id>" fault sites SIGKILL the actual worker process.
  MultiProcess,
};

/// Knobs of the multi-process backend (runtime/distributed). All sleeps the
/// transport performs (reconnect backoff) are routed through
/// ResilienceOptions::sleepMicros when set; heartbeat *timing* uses the
/// real clock, since it measures the liveness of a separate process.
struct DistributedOptions {
  ExecBackend backend = ExecBackend::InProcess;
  /// Coordinator pings each busy worker this often (microseconds).
  std::uint64_t heartbeatIntervalMicros = 50'000;
  /// A worker that answers no ping for this long is declared dead
  /// (SIGKILLed and escalated like NodeLossError).
  std::uint64_t heartbeatTimeoutMicros = 2'000'000;
  /// Transient transport failures (unexpected worker death, socket error,
  /// corrupt frame) tolerated per worker per launch before escalating to
  /// node loss. Each retry respawns the worker from the coordinator's
  /// authoritative state.
  int maxReconnects = 2;
  /// Base of the capped exponential reconnect backoff, microseconds
  /// (attempt k sleeps min(base << k, maxBackoffMicros)).
  std::uint64_t reconnectBackoffMicros = 1'000;
  /// Cap on a single reconnect backoff sleep, microseconds.
  std::uint64_t maxBackoffMicros = 200'000;
  /// Largest wire-frame payload either side will accept; a corrupt length
  /// prefix beyond this fails fast instead of attempting the allocation.
  std::uint64_t maxFrameBytes = std::uint64_t{1} << 30;
  /// Deadline for receiving one expected frame from a live worker,
  /// microseconds. Distinct from the heartbeat timeout: this bounds how
  /// long a *partial* frame may dribble in.
  std::uint64_t recvTimeoutMicros = 10'000'000;
};

/// Execution options for PlanExecutor / Session, grouped by concern:
/// scheduling and validation at the top level, with nested resilience,
/// checkpoint and observability option sets.
struct ExecOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Check every region access against the subregion its statement was
  /// assigned — the dynamic partition-legality check used by the tests.
  /// Violations throw PartitionViolation with loop/field/stmt/index context.
  bool validateAccesses = false;
  /// Run the partition legality verifier (region/verify) after
  /// preparePartitions() and after any loop launch that replayed a task.
  bool verifyPartitions = false;
  ResilienceOptions resilience;
  CheckpointOptions checkpoint;
  ObservabilityOptions observability;
  RebalancePolicy adaptive;
  DistributedOptions distributed;
};

}  // namespace dpart::runtime
