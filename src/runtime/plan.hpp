#pragma once

#include <cstdint>
#include <memory>

#include "parallelize/parallelize.hpp"

namespace dpart {

class Session;
class SessionBuilder;

/// An immutable compilation artifact: the ParallelPlan produced by the
/// auto-parallelizer together with its CompileStats (canonical cache key,
/// phase timings, cache-hit flag) and the piece count it was compiled for.
///
/// A Plan is a cheap handle — copies share one heap payload — and is safe
/// to execute from many Sessions at once, including concurrently:
/// PlanExecutor only ever reads the plan (adaptive rebalancing rewrites a
/// private copy of the DPL program, never the plan itself), and the shared
/// payload keeps the ParallelPlan address-stable for as long as any
/// executor references it. This is the unit the plan service caches and
/// hands to every tenant whose program canonicalizes to the same key.
///
/// Produced by SessionBuilder::compile(); consumed by Session::execute():
///
///   dpart::Plan plan =
///       Session::parallelize(program).pieces(8).compile(world);
///   auto session = Session::execute(plan, world);   // no recompile
///   session.run();
///
/// A default-constructed Plan is empty (valid() == false); every other
/// accessor checks validity.
class Plan {
 public:
  Plan() = default;

  /// False only for a default-constructed (empty) Plan.
  [[nodiscard]] bool valid() const { return payload_ != nullptr; }

  /// The compiled plan: DPL partitioning program + per-loop launch plans.
  [[nodiscard]] const parallelize::ParallelPlan& parallelPlan() const;

  /// Table 1 phase breakdown, canonical cache key, cache-hit flag.
  [[nodiscard]] const parallelize::CompileStats& stats() const;

  /// The unification-canonical constraint-graph hash (CompileStats::cacheKey)
  /// — equal for isomorphic programs, the solve-cache / plan-service key.
  [[nodiscard]] std::uint64_t cacheKey() const;

  /// Whether this compile skipped collapse+unify+solve via the solve cache.
  [[nodiscard]] bool cacheHit() const;

  /// The piece count the plan was compiled for (SessionBuilder::pieces).
  [[nodiscard]] std::size_t pieces() const;

 private:
  friend class Session;
  friend class SessionBuilder;
  struct Payload {
    parallelize::ParallelPlan plan;
    std::size_t pieces = 0;
  };
  explicit Plan(std::shared_ptr<const Payload> payload)
      : payload_(std::move(payload)) {}
  std::shared_ptr<const Payload> payload_;
};

}  // namespace dpart
