#include "runtime/checkpoint.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <optional>
#include <sstream>

#include "parallelize/parallelize.hpp"
#include "region/snapshot.hpp"
#include "support/serialize.hpp"

namespace dpart::runtime {

namespace fs = std::filesystem;

namespace {

constexpr const char* kFilePrefix = "ckpt-";
constexpr const char* kFileSuffix = ".dpc";

/// Parses "ckpt-NNNNNN.dpc" → NNNNNN, or nullopt for unrelated files.
std::optional<std::uint64_t> generationOf(const std::string& filename) {
  const std::string prefix = kFilePrefix;
  const std::string suffix = kFileSuffix;
  if (filename.size() <= prefix.size() + suffix.size() ||
      !filename.starts_with(prefix) || !filename.ends_with(suffix)) {
    return std::nullopt;
  }
  const char* first = filename.data() + prefix.size();
  const char* last = filename.data() + filename.size() - suffix.size();
  std::uint64_t gen = 0;
  const auto [ptr, ec] = std::from_chars(first, last, gen);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return gen;
}

void writeMeta(BinaryWriter& w, const CheckpointMeta& meta) {
  w.u64(meta.generation);
  w.u64(meta.launchIndex);
  w.u64(meta.planHash);
  w.u64(meta.pieces);
}

CheckpointMeta readMeta(BinaryReader& r) {
  CheckpointMeta meta;
  meta.generation = r.u64();
  meta.launchIndex = r.u64();
  meta.planHash = r.u64();
  meta.pieces = r.u64();
  return meta;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, int retain)
    : dir_(std::move(dir)), retain_(retain) {
  DPART_CHECK(!dir_.empty(), "checkpoint directory must be non-empty");
  DPART_CHECK(retain_ >= 1, "checkpoint retention must keep at least one");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  DPART_CHECK(!ec, "cannot create checkpoint dir '" + dir_ + "': " +
                       ec.message());
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    if (auto gen = generationOf(entry.path().filename().string())) {
      generations_.push_back(*gen);
    }
  }
  std::sort(generations_.begin(), generations_.end());
}

std::string CheckpointManager::fileFor(std::uint64_t generation) const {
  std::ostringstream os;
  os << kFilePrefix;
  std::string digits = std::to_string(generation);
  for (std::size_t pad = digits.size(); pad < 6; ++pad) os << '0';
  os << digits << kFileSuffix;
  return (fs::path(dir_) / os.str()).string();
}

void CheckpointManager::write(
    const region::World& world,
    const std::map<std::string, region::Partition>& externals,
    std::uint64_t launchIndex, std::uint64_t planHash, std::uint64_t pieces,
    FaultInjector* injector) {
  const std::uint64_t gen = latestGeneration() + 1;
  CheckpointMeta meta{gen, launchIndex, planHash, pieces};

  BinaryWriter w;
  writeMeta(w, meta);
  region::writePartitionMap(w, externals);
  // World last: restore parses meta and externals first, then restoreWorld's
  // own staging + expectEnd makes the World commit the final act of a fully
  // validated read.
  region::snapshotWorld(w, world);
  const std::vector<std::uint8_t> payload = w.take();

  std::function<void(std::vector<std::uint8_t>&)> tamper;
  if (injector != nullptr) {
    const auto fault =
        injector->fire("checkpoint:write:" + std::to_string(gen));
    if (fault && fault->kind == FaultKind::CorruptCheckpoint) {
      const double magnitude = fault->magnitude;
      tamper = [magnitude](std::vector<std::uint8_t>& blob) {
        if (blob.empty()) return;
        const auto at = static_cast<std::size_t>(
            magnitude * static_cast<double>(blob.size()));
        blob[std::min(at, blob.size() - 1)] ^= 0xFF;
      };
    }
  }
  writeFramedFile(fileFor(gen), payload, tamper);
  generations_.push_back(gen);
  metas_[gen] = meta;

  while (generations_.size() > static_cast<std::size_t>(retain_)) {
    const std::uint64_t oldest = generations_.front();
    std::error_code ec;
    fs::remove(fileFor(oldest), ec);  // best-effort; manifest is truth
    generations_.erase(generations_.begin());
    metas_.erase(oldest);
  }

  std::vector<std::pair<std::uint64_t, CheckpointMeta>> kept;
  for (std::uint64_t g : generations_) {
    auto it = metas_.find(g);
    kept.emplace_back(g, it == metas_.end() ? CheckpointMeta{g, 0, 0, 0}
                                            : it->second);
  }
  rewriteManifest(kept);
}

void CheckpointManager::rewriteManifest(
    const std::vector<std::pair<std::uint64_t, CheckpointMeta>>& kept) {
  std::ostringstream os;
  for (const auto& [gen, meta] : kept) {
    os << gen << ' ' << fs::path(fileFor(gen)).filename().string() << " launch="
       << meta.launchIndex << " plan=" << meta.planHash
       << " pieces=" << meta.pieces << '\n';
  }
  const std::string text = os.str();
  writeFileAtomic(
      (fs::path(dir_) / "MANIFEST").string(),
      std::span(reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size()));
}

CheckpointManager::Restored CheckpointManager::restoreLatest(
    region::World& world, std::uint64_t planHash) {
  Restored out;
  std::string lastError = "no checkpoint generations in '" + dir_ + "'";
  for (auto it = generations_.rbegin(); it != generations_.rend(); ++it) {
    const std::uint64_t gen = *it;
    try {
      std::uint32_t version = kSerializeVersion;
      const std::vector<std::uint8_t> payload =
          readFramedFile(fileFor(gen), &version);
      BinaryReader r(payload);
      r.setFormatVersion(version);
      CheckpointMeta meta = readMeta(r);
      if (meta.generation != gen) {
        throw CheckpointCorruption(
            "checkpoint generation mismatch: file says " +
            std::to_string(meta.generation) + ", expected " +
            std::to_string(gen));
      }
      if (planHash != 0 && meta.planHash != planHash) {
        ++out.fallbacks;
        lastError = "generation " + std::to_string(gen) +
                    " was taken under a different plan";
        continue;
      }
      std::map<std::string, region::Partition> externals =
          region::readPartitionMap(r);
      region::restoreWorld(r, world);
      out.meta = meta;
      out.externals = std::move(externals);
      return out;
    } catch (const CheckpointCorruption& e) {
      ++out.fallbacks;
      lastError = e.what();
    }
  }
  throw CheckpointCorruption("no valid checkpoint to restore (tried " +
                             std::to_string(generations_.size()) +
                             " generation(s); last error: " + lastError + ")");
}

std::uint64_t CheckpointManager::hashPlan(const parallelize::ParallelPlan& plan) {
  const std::string text = plan.toString();
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h == 0 ? 1 : h;  // 0 means "any plan" to restoreLatest
}

}  // namespace dpart::runtime
