#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dpl/evaluator.hpp"
#include "ir/interp.hpp"
#include "parallelize/parallelize.hpp"
#include "region/partition.hpp"
#include "region/verify.hpp"
#include "region/world.hpp"
#include "runtime/thread_pool.hpp"
#include "support/fault.hpp"
#include "support/perf_counters.hpp"

namespace dpart::runtime {

struct ExecOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Check every region access against the subregion its statement was
  /// assigned — the dynamic partition-legality check used by the tests.
  /// Violations throw PartitionViolation with loop/field/stmt/index context.
  bool validateAccesses = false;
  /// Fault injector consulted at the "loop:<name>", "task:<loop>:<piece>"
  /// and "dpl:<op>" sites; nullptr disables injection.
  FaultInjector* faultInjector = nullptr;
  /// Enables task-level replay: each task's in-place write footprint (its
  /// subregion plus in-place reduction targets; see DESIGN.md §7) is
  /// snapshotted before the first attempt and restored before every retry,
  /// so replay is idempotent under all four reduction strategies.
  bool resilient = false;
  /// Maximum replays per task per loop launch before the TaskFailure
  /// propagates (resilient mode only).
  int maxTaskRetries = 3;
  /// Base of the exponential backoff between replays, microseconds
  /// (attempt k sleeps base << k); 0 disables the backoff.
  std::uint64_t retryBackoffMicros = 0;
  /// Run the partition legality verifier (region/verify) after
  /// preparePartitions() and after any loop launch that replayed a task.
  bool verifyPartitions = false;
};

/// Derives the legality properties a plan assumes of its evaluated
/// partitions: iteration partitions complete (and disjoint unless relaxed),
/// Direct reduction targets disjoint, Guarded reduction partitions disjoint
/// and complete, private sub-partitions disjoint and contained in their
/// reduction partition, and every accessed partition in bounds with one
/// subregion per piece.
[[nodiscard]] std::vector<region::PartitionExpectation> planExpectations(
    const parallelize::ParallelPlan& plan, std::size_t pieces);

/// Executes a ParallelPlan: evaluates its DPL program to concrete
/// partitions, then runs each planned loop as `pieces` tasks on a thread
/// pool, honoring the plan's reduction strategies:
///
///  - Direct reductions apply in place (target partition disjoint);
///  - Guarded reductions (relaxed loops, Sec. 5.1) apply only when the
///    target lies in the task's reduction subregion;
///  - Buffered reductions accumulate into a per-task buffer merged after
///    the loop (the Legion reduction-instance mechanism);
///  - PrivateSplit reductions apply in place inside the private
///    sub-partition (Thm. 5.1) and buffer only the shared remainder.
///
/// Centered writes and centered reductions are ownership-guarded when the
/// iteration partition is aliased, so duplicated iterations (relaxation)
/// stay race-free and apply exactly once.
class PlanExecutor {
 public:
  PlanExecutor(region::World& world, const parallelize::ParallelPlan& plan,
               std::size_t pieces, ExecOptions options = {});

  /// Binds an externally constructed partition (Section 3.3) before
  /// preparePartitions().
  void bindExternal(const std::string& name, region::Partition partition);

  /// Evaluates the plan's DPL program. Called automatically by run() if
  /// needed; exposed so tests and benchmarks can inspect partitions.
  void preparePartitions();

  /// Runs all planned loops once, in program order.
  void run();

  /// Runs one planned loop (partitions must be prepared).
  void runLoop(const parallelize::PlannedLoop& loop);

  /// Checks every evaluated partition against the properties the plan
  /// assumed (see planExpectations); throws PartitionViolation listing all
  /// violations. Called automatically when options.verifyPartitions is on.
  void verifyPartitions() const;

  /// Task replays performed so far (resilient mode).
  [[nodiscard]] std::size_t taskReplays() const { return replays_.load(); }

  [[nodiscard]] const std::map<std::string, region::Partition>& partitions()
      const;
  [[nodiscard]] const region::Partition& partition(
      const std::string& name) const;
  [[nodiscard]] std::size_t pieces() const { return pieces_; }

  /// Total elements accumulated through reduction buffers so far (tests and
  /// benchmarks use this to verify the Section 5 optimizations actually
  /// eliminate buffer traffic).
  [[nodiscard]] std::size_t bufferedElements() const {
    return bufferedElements_;
  }

  /// Partition-materialization counters (per-operator wall time, cache
  /// hits/misses, elements touched, runs produced); see support/perf_counters.
  [[nodiscard]] const PerfCounters& counters() const {
    return evaluator_.counters();
  }

 private:
  region::World& world_;
  const parallelize::ParallelPlan& plan_;
  std::size_t pieces_;
  ExecOptions options_;
  // The evaluator borrows the task pool for its parallel operator kernels,
  // so pool_ must outlive (be declared before) evaluator_.
  ThreadPool pool_;
  dpl::Evaluator evaluator_;
  bool prepared_ = false;
  std::size_t bufferedElements_ = 0;
  std::atomic<std::size_t> replays_{0};
};

}  // namespace dpart::runtime
