#pragma once

#include <map>
#include <string>

#include "dpl/evaluator.hpp"
#include "ir/interp.hpp"
#include "parallelize/parallelize.hpp"
#include "region/partition.hpp"
#include "region/world.hpp"
#include "runtime/thread_pool.hpp"
#include "support/perf_counters.hpp"

namespace dpart::runtime {

struct ExecOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Check every region access against the subregion its statement was
  /// assigned — the dynamic partition-legality check used by the tests.
  bool validateAccesses = false;
};

/// Executes a ParallelPlan: evaluates its DPL program to concrete
/// partitions, then runs each planned loop as `pieces` tasks on a thread
/// pool, honoring the plan's reduction strategies:
///
///  - Direct reductions apply in place (target partition disjoint);
///  - Guarded reductions (relaxed loops, Sec. 5.1) apply only when the
///    target lies in the task's reduction subregion;
///  - Buffered reductions accumulate into a per-task buffer merged after
///    the loop (the Legion reduction-instance mechanism);
///  - PrivateSplit reductions apply in place inside the private
///    sub-partition (Thm. 5.1) and buffer only the shared remainder.
///
/// Centered writes and centered reductions are ownership-guarded when the
/// iteration partition is aliased, so duplicated iterations (relaxation)
/// stay race-free and apply exactly once.
class PlanExecutor {
 public:
  PlanExecutor(region::World& world, const parallelize::ParallelPlan& plan,
               std::size_t pieces, ExecOptions options = {});

  /// Binds an externally constructed partition (Section 3.3) before
  /// preparePartitions().
  void bindExternal(const std::string& name, region::Partition partition);

  /// Evaluates the plan's DPL program. Called automatically by run() if
  /// needed; exposed so tests and benchmarks can inspect partitions.
  void preparePartitions();

  /// Runs all planned loops once, in program order.
  void run();

  /// Runs one planned loop (partitions must be prepared).
  void runLoop(const parallelize::PlannedLoop& loop);

  [[nodiscard]] const std::map<std::string, region::Partition>& partitions()
      const;
  [[nodiscard]] const region::Partition& partition(
      const std::string& name) const;
  [[nodiscard]] std::size_t pieces() const { return pieces_; }

  /// Total elements accumulated through reduction buffers so far (tests and
  /// benchmarks use this to verify the Section 5 optimizations actually
  /// eliminate buffer traffic).
  [[nodiscard]] std::size_t bufferedElements() const {
    return bufferedElements_;
  }

  /// Partition-materialization counters (per-operator wall time, cache
  /// hits/misses, elements touched, runs produced); see support/perf_counters.
  [[nodiscard]] const PerfCounters& counters() const {
    return evaluator_.counters();
  }

 private:
  region::World& world_;
  const parallelize::ParallelPlan& plan_;
  std::size_t pieces_;
  ExecOptions options_;
  // The evaluator borrows the task pool for its parallel operator kernels,
  // so pool_ must outlive (be declared before) evaluator_.
  ThreadPool pool_;
  dpl::Evaluator evaluator_;
  bool prepared_ = false;
  std::size_t bufferedElements_ = 0;
};

}  // namespace dpart::runtime
