#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dpl/evaluator.hpp"
#include "ir/interp.hpp"
#include "parallelize/parallelize.hpp"
#include "region/partition.hpp"
#include "region/verify.hpp"
#include "region/world.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/options.hpp"
#include "runtime/rebalance.hpp"
#include "support/fault.hpp"
#include "support/perf_counters.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dpart::runtime {

namespace dist {
class Coordinator;
struct LaunchStats;
}  // namespace dist

/// A node died for good (FaultKind::PermanentCrash on a "node:<id>" site, or
/// a task that exhausted its replays and whose host is therefore presumed
/// dead). Deliberately NOT a TaskFailure: in-place replay must not catch it —
/// the only recovery is a checkpoint restore with the node removed from the
/// machine (elastic shrink).
class NodeLossError : public Error {
 public:
  NodeLossError(std::size_t node, const std::string& what,
                ErrorContext context = {})
      : Error(what + context.describe()),
        node_(node),
        context_(std::move(context)) {}
  [[nodiscard]] ErrorCode errorCode() const noexcept override {
    return ErrorCode::NodeLoss;
  }
  [[nodiscard]] std::size_t node() const { return node_; }
  [[nodiscard]] const ErrorContext& context() const { return context_; }

 private:
  std::size_t node_;
  ErrorContext context_;
};

/// Derives the legality properties a plan assumes of its evaluated
/// partitions. The implementation lives in parallelize (proof certificates
/// embed the same expectations at compile time); this alias keeps the
/// historical runtime:: spelling working.
using parallelize::planExpectations;

/// Executes a ParallelPlan: evaluates its DPL program to concrete
/// partitions, then runs each planned loop as `pieces` tasks on a thread
/// pool, honoring the plan's reduction strategies:
///
///  - Direct reductions apply in place (target partition disjoint);
///  - Guarded reductions (relaxed loops, Sec. 5.1) apply only when the
///    target lies in the task's reduction subregion;
///  - Buffered reductions accumulate into a per-task buffer merged after
///    the loop (the Legion reduction-instance mechanism);
///  - PrivateSplit reductions apply in place inside the private
///    sub-partition (Thm. 5.1) and buffer only the shared remainder.
///
/// Centered writes and centered reductions are ownership-guarded when the
/// iteration partition is aliased, so duplicated iterations (relaxation)
/// stay race-free and apply exactly once.
class PlanExecutor {
 public:
  PlanExecutor(region::World& world, const parallelize::ParallelPlan& plan,
               std::size_t pieces, ExecOptions options = {});
  ~PlanExecutor();  // out of line: owns the forward-declared Coordinator

  /// Binds an externally constructed partition (Section 3.3) before
  /// preparePartitions().
  void bindExternal(const std::string& name, region::Partition partition);

  /// Evaluates the plan's DPL program. Called automatically by run() if
  /// needed; exposed so tests and benchmarks can inspect partitions.
  void preparePartitions();

  /// Runs all planned loops once, in program order. With checkpointing
  /// enabled (CheckpointOptions::dir), every completed launch advances a
  /// global launch index, checkpoints are taken at the configured cadence,
  /// and a NodeLossError (or a task that exhausted its replays) triggers a
  /// restore from the latest valid checkpoint — shrinking to the surviving
  /// piece count when a node was lost — and resumption from the
  /// checkpointed launch index.
  void run();

  /// Runs one planned loop (partitions must be prepared).
  void runLoop(const parallelize::PlannedLoop& loop);

  /// Checks every evaluated partition against the properties the plan
  /// assumed (see planExpectations); throws PartitionViolation listing all
  /// violations. Called automatically when options.verifyPartitions is on.
  void verifyPartitions() const;

  /// Task replays performed so far (ResilienceOptions::taskReplay mode).
  [[nodiscard]] std::size_t taskReplays() const { return replays_.load(); }

  /// Checkpoint restores performed so far (checkpointing mode).
  [[nodiscard]] std::size_t checkpointRestores() const {
    return checkpointRestores_;
  }

  /// Restores that shrank the machine because a node was permanently lost.
  [[nodiscard]] std::size_t elasticShrinks() const { return elasticShrinks_; }

  /// Adaptive rebalances performed so far (RebalancePolicy::enabled mode):
  /// launches where a loop's `equal` base partition was replaced by a
  /// weighted one because the measured per-piece task times were skewed.
  [[nodiscard]] std::size_t rebalances() const { return rebalances_; }

  /// Loop launches completed (across run() calls; rewound by a restore).
  [[nodiscard]] std::uint64_t launchesDone() const { return launchesDone_; }

  /// Total injected straggler stall time, task-level plus DPL-operator
  /// level. Kept out of every operator wall-time counter so the bench JSON
  /// stays comparable between faulty and fault-free runs.
  [[nodiscard]] std::uint64_t injectedStallMicros() const {
    return stallMicros_.load() + evaluator_.counters().injectedStallMicros;
  }

  /// The CheckpointManager behind this executor, or nullptr when
  /// checkpointing is disabled.
  [[nodiscard]] CheckpointManager* checkpointManager() {
    return checkpoints_.get();
  }

  [[nodiscard]] const std::map<std::string, region::Partition>& partitions()
      const;
  [[nodiscard]] const region::Partition& partition(
      const std::string& name) const;
  [[nodiscard]] std::size_t pieces() const { return pieces_; }

  /// Total elements accumulated through reduction buffers so far (tests and
  /// benchmarks use this to verify the Section 5 optimizations actually
  /// eliminate buffer traffic).
  [[nodiscard]] std::size_t bufferedElements() const {
    return bufferedElements_;
  }

  /// Partition-materialization counters (per-operator wall time, cache
  /// hits/misses, elements touched, runs produced); see support/perf_counters.
  [[nodiscard]] const PerfCounters& counters() const {
    return evaluator_.counters();
  }

  /// Publishes the executor- and evaluator-level tallies into the
  /// configured metrics registry (no-op without one). Called at the end of
  /// every run(); exposed so Session / tests can force a flush.
  void publishMetrics() const;

  /// The multi-process backend's coordinator, or nullptr when running
  /// in-process (ExecBackend::InProcess) or before the first distributed
  /// launch. Tests and the sim-validation tooling use it to read measured
  /// wire traffic.
  [[nodiscard]] dist::Coordinator* coordinator() { return coordinator_.get(); }

 private:
  /// Sleeps via ResilienceOptions::sleepMicros when set, for real otherwise.
  void sleepFor(std::uint64_t micros) const;

  [[nodiscard]] Tracer* tracer() const {
    return options_.observability.tracer;
  }

  /// Bumps errorsTotal{kind=...} (no-op without a metrics registry).
  void countError(const char* kind) const;

  /// Takes one checkpoint at the current launch index.
  void checkpoint();

  /// Restores the latest valid checkpoint (removing `lostNode` from the
  /// machine first, when set), re-derives every partition at the surviving
  /// piece count, verifies legality, and rewinds launchesDone_.
  void restoreFromCheckpoint(std::optional<std::size_t> lostNode);

  /// The DPL program preparePartitions() evaluates: the plan's program
  /// until a rebalance replaces a base symbol, then the program minus the
  /// replaced definitions (the weighted partitions are bound externally).
  [[nodiscard]] const dpl::Program& activeProgram() const {
    return rebalancedBases_.empty() ? plan_.dpl : activeDpl_;
  }

  /// Runs one launch on the multi-process backend: syncs the worker fleet
  /// with the current prepare epoch, delegates to the Coordinator, and
  /// folds its LaunchStats into the executor's tallies.
  void runLoopDistributed(const parallelize::PlannedLoop& loop,
                          TraceSpan& launchSpan);

  /// Publishes the per-piece task seconds and imbalance of one completed
  /// launch (both backends report through this).
  void publishLaunchMetrics(const parallelize::PlannedLoop& loop,
                            const std::vector<double>& taskSeconds) const;

  /// Feeds the completed launch's per-piece times to the Rebalancer and,
  /// when the policy says so, swaps the loop's `equal` base for a weighted
  /// partition and re-evaluates every derived partition (Section 3.3 path —
  /// no re-solve), verifying legality unconditionally afterwards.
  void maybeRebalance(const parallelize::PlannedLoop& loop);

  region::World& world_;
  const parallelize::ParallelPlan& plan_;
  std::size_t pieces_;
  ExecOptions options_;
  // The evaluator borrows the task pool for its parallel operator kernels,
  // so pool_ must outlive (be declared before) evaluator_.
  ThreadPool pool_;
  dpl::Evaluator evaluator_;
  bool prepared_ = false;
  std::size_t bufferedElements_ = 0;
  std::atomic<std::size_t> replays_{0};
  /// Node ids still alive; task j of a launch runs on liveNodes_[j], and
  /// pieces_ == liveNodes_.size() at all times.
  std::vector<std::size_t> liveNodes_;
  /// Externally bound partitions, remembered for checkpointing and for
  /// rebinding after a restore.
  std::map<std::string, region::Partition> externals_;
  std::unique_ptr<CheckpointManager> checkpoints_;
  /// Metrics registry created when adaptive mode is on but the caller
  /// supplied none: the Rebalancer's cost signal must have somewhere to
  /// live. options_.observability.metrics points at it.
  std::unique_ptr<MetricsRegistry> ownedMetrics_;
  std::unique_ptr<Rebalancer> rebalancer_;
  /// Base symbols currently replaced by weighted partitions, and the plan's
  /// DPL program minus their definitions. Checkpoints deliberately exclude
  /// these: a restore reverts to the solver's unweighted bases (the window
  /// that justified the weights is stale after a restore/shrink anyway).
  std::map<std::string, region::Partition> rebalancedBases_;
  dpl::Program activeDpl_;
  std::size_t rebalances_ = 0;
  /// Lazily created when the first launch runs with
  /// ExecBackend::MultiProcess.
  std::unique_ptr<dist::Coordinator> coordinator_;
  /// Bumped by every successful preparePartitions(): the Coordinator
  /// respawns its fork-inherited worker fleet when this changes.
  std::uint64_t prepareEpoch_ = 0;
  std::uint64_t planHash_ = 0;
  std::uint64_t launchesDone_ = 0;
  std::size_t checkpointRestores_ = 0;
  std::size_t elasticShrinks_ = 0;
  std::atomic<std::uint64_t> stallMicros_{0};
};

}  // namespace dpart::runtime
