#include "runtime/task_exec.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace dpart::runtime {

using optimize::ReduceStrategy;
using region::Index;
using region::IndexSet;
using region::Partition;

TaskHooks::TaskHooks(const parallelize::PlannedLoop& loop, std::size_t piece,
                     const std::map<std::string, Partition>& env,
                     bool validate, const IndexSet* ownership)
    : loop_(loop), piece_(piece), env_(env), validate_(validate),
      ownership_(ownership) {
  for (const auto& [stmtId, rp] : loop.reduces) {
    ReduceState st;
    st.strategy = rp.strategy;
    if (rp.strategy == ReduceStrategy::Guarded) {
      st.guard = &env.at(rp.partition).sub(piece);
    } else if (rp.strategy == ReduceStrategy::PrivateSplit) {
      st.privSet = &env.at(rp.privatePart).sub(piece);
    }
    reduces_.emplace(stmtId, std::move(st));
  }
}

void TaskHooks::onAccess(const ir::Stmt& stmt, Index target) {
  if (!validate_) return;
  auto it = loop_.accessPartition.find(stmt.id);
  if (it == loop_.accessPartition.end()) {
    ErrorContext ctx;
    ctx.loop = loop_.loop->name;
    ctx.stmtId = stmt.id;
    ctx.piece = static_cast<int>(piece_);
    throw PartitionViolation(
        "access with no assigned partition: " + stmt.toString(),
        std::move(ctx));
  }
  const IndexSet& sub = env_.at(it->second).sub(piece_);
  // Guarded reductions may compute targets outside the task's subregion;
  // the guard rejects them before any memory access, so only *applied*
  // accesses are checked (handled in handleReduce).
  auto rit = reduces_.find(stmt.id);
  if (rit != reduces_.end() &&
      (rit->second.strategy == ReduceStrategy::Guarded)) {
    return;
  }
  if (!sub.contains(target)) {
    ErrorContext ctx;
    ctx.loop = loop_.loop->name;
    ctx.partition = it->second;
    ctx.field = stmt.region + "." + stmt.field;
    ctx.stmtId = stmt.id;
    ctx.index = target;
    ctx.piece = static_cast<int>(piece_);
    throw PartitionViolation(
        "illegal access: " + stmt.toString() + " touches index " +
            std::to_string(target) + " outside subregion " +
            std::to_string(piece_) + " of " + it->second,
        std::move(ctx));
  }
}

bool TaskHooks::shouldWrite(const ir::Stmt&, Index target) {
  return ownership_ == nullptr || ownership_->contains(target);
}

bool TaskHooks::handleReduce(const ir::Stmt& stmt, Index target,
                             double value) {
  auto it = reduces_.find(stmt.id);
  if (it == reduces_.end()) {
    // Centered reduction: ownership-guarded under aliased iteration.
    if (ownership_ != nullptr && !ownership_->contains(target)) {
      return true;  // another task owns this duplicated iteration
    }
    return false;
  }
  ReduceState& st = it->second;
  st.op = stmt.op;
  switch (st.strategy) {
    case ReduceStrategy::Direct:
      return false;
    case ReduceStrategy::Guarded:
      return !st.guard->contains(target);  // skip if not ours
    case ReduceStrategy::Buffered:
      break;
    case ReduceStrategy::PrivateSplit:
      if (st.privSet->contains(target)) return false;
      break;
  }
  auto [slot, inserted] =
      st.buffer.try_emplace(target, ir::reduceIdentity(stmt.op));
  slot->second = ir::applyReduce(stmt.op, slot->second, value);
  return true;
}

std::vector<IndexSet> disjointify(const Partition& p) {
  std::vector<IndexSet> owned;
  owned.reserve(p.count());
  IndexSet claimed;
  for (std::size_t j = 0; j < p.count(); ++j) {
    owned.push_back(p.sub(j).subtract(claimed));
    claimed = claimed.unionWith(p.sub(j));
  }
  return owned;
}

bool hasCenteredWrite(const parallelize::PlannedLoop& loop) {
  bool centered = false;
  loop.loop->forEachStmt([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::StoreF64 ||
        (s.kind == ir::StmtKind::ReduceF64 && !loop.reduces.contains(s.id))) {
      centered = true;
    }
  });
  return centered;
}

void TaskFootprint::add(std::span<double> column, const std::string& regionName,
                        const std::string& field, IndexSet set) {
  if (set.empty()) return;
  const std::string key = regionName + "." + field;
  auto [it, inserted] = byField_.try_emplace(key, patches_.size());
  if (inserted) {
    patches_.push_back(Patch{regionName, field, column, std::move(set), {}});
  } else {
    Patch& p = patches_[it->second];
    p.indices = p.indices.unionWith(set);
  }
}

void TaskFootprint::capture() {
  for (Patch& p : patches_) {
    p.saved.clear();
    p.saved.reserve(static_cast<std::size_t>(p.indices.size()));
    p.indices.forEach([&p](Index i) {
      p.saved.push_back(p.column[static_cast<std::size_t>(i)]);
    });
  }
}

void TaskFootprint::restore() const {
  for (const Patch& p : patches_) {
    std::size_t k = 0;
    p.indices.forEach([&p, &k](Index i) {
      p.column[static_cast<std::size_t>(i)] = p.saved[k++];
    });
  }
}

void TaskFootprint::poison() const {
  for (const Patch& p : patches_) {
    p.indices.forEach([&p](Index i) {
      p.column[static_cast<std::size_t>(i)] =
          std::numeric_limits<double>::quiet_NaN();
    });
  }
}

TaskFootprint buildFootprint(region::World& world,
                             const parallelize::PlannedLoop& loop,
                             std::size_t j,
                             const std::map<std::string, Partition>& env,
                             const IndexSet* ownership) {
  TaskFootprint fp;
  loop.loop->forEachStmt([&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::StoreF64 && s.kind != ir::StmtKind::ReduceF64)
      return;
    const IndexSet* set = nullptr;
    IndexSet guarded;
    auto rit = loop.reduces.find(s.id);
    if (s.kind == ir::StmtKind::ReduceF64 && rit != loop.reduces.end()) {
      switch (rit->second.strategy) {
        case ReduceStrategy::Direct:
          set = &env.at(loop.accessPartition.at(s.id)).sub(j);
          break;
        case ReduceStrategy::Guarded:
          set = &env.at(rit->second.partition).sub(j);
          break;
        case ReduceStrategy::Buffered:
          return;  // task-local buffer; nothing written in place
        case ReduceStrategy::PrivateSplit:
          set = &env.at(rit->second.privatePart).sub(j);
          break;
      }
    } else {
      // Centered store / centered reduction: the task writes its iteration
      // subregion, narrowed to its ownership set under aliased iteration.
      const IndexSet& acc = env.at(loop.accessPartition.at(s.id)).sub(j);
      if (ownership != nullptr) {
        guarded = acc.intersectWith(*ownership);
        set = &guarded;
      } else {
        set = &acc;
      }
    }
    fp.add(world.region(s.region).f64(s.field), s.region, s.field, *set);
  });
  return fp;
}

IndexSet prefixOf(const IndexSet& iters, double frac) {
  const Index want = static_cast<Index>(
      static_cast<double>(iters.size()) * std::clamp(frac, 0.0, 1.0));
  region::IndexSetBuilder builder;
  Index taken = 0;
  for (const region::Run& r : iters.runs()) {
    if (taken >= want) break;
    const Index take = std::min(r.size(), want - taken);
    builder.addRun(r.lo, r.lo + take);
    taken += take;
  }
  return builder.build();
}

}  // namespace dpart::runtime
