#include "runtime/rebalance.hpp"

#include <algorithm>

#include "region/dpl_ops.hpp"
#include "support/check.hpp"

namespace dpart::runtime {

using region::Index;
using region::Partition;

MetricGauge& taskSecondsGauge(MetricsRegistry& metrics,
                              const std::string& loop, std::size_t piece) {
  return metrics.gauge("executor.task.secondsTotal",
                       {{"loop", loop}, {"piece", std::to_string(piece)}});
}

MetricCounter& launchCounter(MetricsRegistry& metrics,
                             const std::string& loop) {
  return metrics.counter("executor.task.launches", {{"loop", loop}});
}

void Rebalancer::restartWindow(Window& w, const std::string& loop,
                               std::size_t pieces) {
  w.pieces = pieces;
  w.baseLaunches = launchCounter(*metrics_, loop).value();
  w.baseSeconds.resize(pieces);
  for (std::size_t j = 0; j < pieces; ++j) {
    w.baseSeconds[j] = taskSecondsGauge(*metrics_, loop, j).value();
  }
  w.launches = 0;
  w.meanSeconds.clear();
  w.imbalance = 0;
}

void Rebalancer::observe(const std::string& loop, std::size_t pieces) {
  Window& w = windows_[loop];
  if (w.pieces != pieces) restartWindow(w, loop, pieces);
  w.launches = launchCounter(*metrics_, loop).value() - w.baseLaunches;
  if (w.launches == 0) {
    w.meanSeconds.clear();
    w.imbalance = 0;
    return;
  }
  w.meanSeconds.resize(pieces);
  double total = 0;
  double worst = 0;
  for (std::size_t j = 0; j < pieces; ++j) {
    const double delta =
        taskSecondsGauge(*metrics_, loop, j).value() - w.baseSeconds[j];
    const double mean = delta / static_cast<double>(w.launches);
    w.meanSeconds[j] = mean;
    total += mean;
    worst = std::max(worst, mean);
  }
  // Sub-threshold launches are scheduler noise, not a balance signal: hold
  // the window at "no opinion" rather than trigger on microsecond jitter.
  if (worst < policy_.minTaskSeconds) {
    w.imbalance = 0;
    return;
  }
  const double mean = total / static_cast<double>(pieces);
  w.imbalance = mean > 0 ? worst / mean : 0;
}

bool Rebalancer::shouldRebalance(const std::string& loop) const {
  if (!policy_.enabled) return false;
  if (rebalances_ >= static_cast<std::size_t>(
                         std::max(0, policy_.maxRebalances))) {
    return false;
  }
  auto it = windows_.find(loop);
  if (it == windows_.end()) return false;
  const Window& w = it->second;
  // Warmup before the first trigger; after a rebalance the window restarts,
  // so the same bound doubles as the cooldown under the new partition.
  const int need = w.rebalanced
                       ? std::max(policy_.warmupLaunches,
                                  policy_.cooldownLaunches)
                       : policy_.warmupLaunches;
  if (w.launches < static_cast<std::uint64_t>(std::max(1, need))) return false;
  double threshold = policy_.triggerImbalance;
  if (w.rebalanced) threshold *= 1.0 + policy_.hysteresis;
  return w.imbalance >= threshold;
}

double Rebalancer::imbalance(const std::string& loop) const {
  auto it = windows_.find(loop);
  return it == windows_.end() ? 0 : it->second.imbalance;
}

std::vector<double> Rebalancer::windowMeans(const std::string& loop) const {
  auto it = windows_.find(loop);
  return it == windows_.end() ? std::vector<double>{} : it->second.meanSeconds;
}

std::vector<double> Rebalancer::estimateWeights(
    const Partition& iter, const std::vector<double>& pieceSeconds,
    Index regionSize) {
  DPART_CHECK(pieceSeconds.size() == iter.count(),
              "estimateWeights: one time per piece required");
  std::vector<double> weights(static_cast<std::size_t>(regionSize), -1.0);
  double coveredSum = 0;
  Index covered = 0;
  for (std::size_t j = 0; j < iter.count(); ++j) {
    const region::IndexSet& sub = iter.sub(j);
    if (sub.empty()) continue;
    const double perIndex = std::max(0.0, pieceSeconds[j]) /
                            static_cast<double>(sub.size());
    sub.forEach([&](Index i) {
      if (i < 0 || i >= regionSize) return;
      // Aliased iteration partitions may cover an index twice; keep the
      // larger estimate (the index is at least that expensive somewhere).
      double& slot = weights[static_cast<std::size_t>(i)];
      if (slot < 0) {
        slot = perIndex;
        coveredSum += perIndex;
        ++covered;
      } else if (perIndex > slot) {
        coveredSum += perIndex - slot;
        slot = perIndex;
      }
    });
  }
  // Uncovered indices get the mean covered weight: no measurement means no
  // opinion, and an average-cost guess keeps the split near-neutral there.
  const double fill = covered > 0 ? coveredSum / static_cast<double>(covered)
                                  : 1.0;
  for (double& w : weights) {
    if (w < 0) w = fill;
  }
  return weights;
}

Partition Rebalancer::rebuild(const region::World& world,
                              const std::string& regionName,
                              const Partition& iter, const std::string& loop) {
  Window& w = windows_.at(loop);
  DPART_CHECK(!w.meanSeconds.empty(),
              "rebuild() without an observed window for loop '" + loop + "'");
  const std::vector<double> weights =
      estimateWeights(iter, w.meanSeconds, world.region(regionName).size());
  Partition replacement =
      region::equalWeighted(world, regionName, weights, iter.count());
  ++rebalances_;
  w.rebalanced = true;
  restartWindow(w, loop, w.pieces);
  return replacement;
}

}  // namespace dpart::runtime
