#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/interp.hpp"
#include "parallelize/parallelize.hpp"
#include "region/partition.hpp"
#include "region/world.hpp"

namespace dpart::runtime {

/// The per-task execution core shared by the in-process PlanExecutor and the
/// multi-process distributed worker (runtime/distributed/worker). Both
/// backends must run a task through *exactly* this machinery: the reduction
/// strategies, ownership guards and footprint sets below define the task's
/// observable effect, and the two backends are required to produce bitwise
/// identical fields (tests/distributed_exec_test.cpp enforces it).

/// Per-task execution hooks implementing the plan's reduction strategies and
/// (optionally) access validation.
class TaskHooks final : public ir::ExecHooks {
 public:
  struct ReduceState {
    optimize::ReduceStrategy strategy = optimize::ReduceStrategy::Direct;
    const region::IndexSet* guard = nullptr;  // Guarded: reduction subregion
    const region::IndexSet* privSet = nullptr;  // PrivateSplit: private sub
    std::unordered_map<region::Index, double> buffer;
    ir::ReduceOp op = ir::ReduceOp::Sum;
  };

  TaskHooks(const parallelize::PlannedLoop& loop, std::size_t piece,
            const std::map<std::string, region::Partition>& env, bool validate,
            const region::IndexSet* ownership);

  void onAccess(const ir::Stmt& stmt, region::Index target) override;
  bool shouldWrite(const ir::Stmt&, region::Index target) override;
  bool handleReduce(const ir::Stmt& stmt, region::Index target,
                    double value) override;

  /// Reduction state per reduce statement, keyed (and therefore iterated)
  /// in ascending stmt id order — the order the buffer merge relies on.
  std::map<int, ReduceState>& reduces() { return reduces_; }

 private:
  const parallelize::PlannedLoop& loop_;
  std::size_t piece_;
  const std::map<std::string, region::Partition>& env_;
  bool validate_;
  const region::IndexSet* ownership_;
  std::map<int, ReduceState> reduces_;
};

/// One task's in-place write footprint: for every (region, field) the task
/// may write in place, the exact index set and (once captured) the
/// pre-execution values. Restoring the footprint undoes every partial
/// effect of a failed attempt. The plan guarantees these sets are disjoint
/// across tasks — stores target the (disjoint or ownership-guarded)
/// iteration subregion, Direct reductions a provably disjoint partition,
/// Guarded reductions their disjoint guard, PrivateSplit reductions the
/// disjoint private sub-partition, and Buffered reductions touch nothing in
/// place until the post-loop merge — so a restore never clobbers another
/// task's completed work (DESIGN.md §7). The distributed worker ships the
/// same sets back as its result: they are precisely the bytes the task is
/// entitled to have changed.
class TaskFootprint {
 public:
  struct Patch {
    std::string region;
    std::string field;
    std::span<double> column;
    region::IndexSet indices;
    std::vector<double> saved;
  };

  void add(std::span<double> column, const std::string& regionName,
           const std::string& field, region::IndexSet set);

  /// Saves the current field values over the footprint.
  void capture();

  /// Restores the captured values (capture() must have run).
  void restore() const;

  /// Overwrites the footprint with garbage — the worst state a dying task
  /// can leave behind without breaking write isolation.
  void poison() const;

  [[nodiscard]] const std::vector<Patch>& patches() const { return patches_; }

 private:
  std::map<std::string, std::size_t> byField_;
  std::vector<Patch> patches_;
};

/// Collects task j's in-place write footprint from the plan's metadata.
[[nodiscard]] TaskFootprint buildFootprint(
    region::World& world, const parallelize::PlannedLoop& loop, std::size_t j,
    const std::map<std::string, region::Partition>& env,
    const region::IndexSet* ownership);

/// Builds a first-claim disjointification of an aliased partition: index i
/// is owned by the lowest-numbered subregion containing it.
[[nodiscard]] std::vector<region::IndexSet> disjointify(
    const region::Partition& p);

/// Whether the loop has a centered write (store, or reduce with no planned
/// strategy) that needs ownership-guarding under an aliased iteration
/// partition.
[[nodiscard]] bool hasCenteredWrite(const parallelize::PlannedLoop& loop);

/// Deterministic prefix of an index set holding ~frac of its elements, in
/// iteration order — the part of a task that "ran before the node died".
[[nodiscard]] region::IndexSet prefixOf(const region::IndexSet& iters,
                                        double frac);

}  // namespace dpart::runtime
