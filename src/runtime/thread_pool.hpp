#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dpart::runtime {

/// Minimal blocking-fork-join thread pool.
///
/// parallelFor(n, fn) runs fn(0..n-1) across the pool and blocks until all
/// complete; the first exception thrown by any worker is rethrown in the
/// caller. Work is distributed by an atomic cursor, so unbalanced tasks
/// (e.g. the hot subregion in the Circuit "Auto" configuration) do not idle
/// the rest of the pool.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

 private:
  void workerMain();
  bool runOne();  // returns false when there is no work

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t jobSize_ = 0;
  std::size_t next_ = 0;
  std::size_t inFlight_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dpart::runtime
