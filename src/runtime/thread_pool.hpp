#pragma once

// The pool implementation was lifted to support/thread_pool.hpp so the DPL
// evaluator (which sits below the runtime) can parallelize its operator
// kernels. This header keeps the historical runtime::ThreadPool name alive.
#include "support/thread_pool.hpp"

namespace dpart::runtime {

using dpart::ThreadPool;

}  // namespace dpart::runtime
