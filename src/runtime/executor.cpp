#include "runtime/executor.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "runtime/distributed/coordinator.hpp"
#include "runtime/task_exec.hpp"
#include "support/check.hpp"
#include "support/sleep.hpp"
#include "support/timer.hpp"

namespace dpart::runtime {

using optimize::ReduceStrategy;
using region::Index;
using region::IndexSet;
using region::Partition;

PlanExecutor::PlanExecutor(region::World& world,
                           const parallelize::ParallelPlan& plan,
                           std::size_t pieces, ExecOptions options)
    : world_(world),
      plan_(plan),
      pieces_(pieces),
      options_(options),
      pool_(options.threads),
      evaluator_(world, pieces, pool_) {
  DPART_CHECK(pieces_ > 0, "need at least one piece");
  evaluator_.setFaultInjector(options_.resilience.faultInjector);
  evaluator_.setSleepHook(options_.resilience.sleepMicros);
  evaluator_.setTracer(options_.observability.tracer);
  liveNodes_.resize(pieces_);
  for (std::size_t j = 0; j < pieces_; ++j) liveNodes_[j] = j;
  if (!options_.checkpoint.dir.empty()) {
    DPART_CHECK(options_.checkpoint.everyNLaunches >= 1,
                "CheckpointOptions::everyNLaunches must be at least 1");
    checkpoints_ = std::make_unique<CheckpointManager>(
        options_.checkpoint.dir, options_.checkpoint.retain);
    planHash_ = CheckpointManager::hashPlan(plan_);
  }
  if (options_.adaptive.enabled) {
    if (options_.observability.metrics == nullptr) {
      // The Rebalancer's cost signal lives in the metrics registry; adaptive
      // mode without one gets a private registry.
      ownedMetrics_ = std::make_unique<MetricsRegistry>();
      options_.observability.metrics = ownedMetrics_.get();
    }
    rebalancer_ = std::make_unique<Rebalancer>(
        options_.adaptive, *options_.observability.metrics);
  }
}

PlanExecutor::~PlanExecutor() = default;

void PlanExecutor::countError(const char* kind) const {
  if (options_.observability.metrics != nullptr) {
    options_.observability.metrics->counter("errorsTotal", {{"kind", kind}})
        .inc();
  }
}

void PlanExecutor::publishMetrics() const {
  MetricsRegistry* mx = options_.observability.metrics;
  if (mx == nullptr) return;
  mx->gauge("executor.taskReplays").set(static_cast<double>(replays_.load()));
  mx->gauge("executor.checkpointRestores")
      .set(static_cast<double>(checkpointRestores_));
  mx->gauge("executor.elasticShrinks")
      .set(static_cast<double>(elasticShrinks_));
  mx->gauge("executor.launchesDone").set(static_cast<double>(launchesDone_));
  mx->gauge("executor.bufferedElements")
      .set(static_cast<double>(bufferedElements_));
  mx->gauge("executor.pieces").set(static_cast<double>(pieces_));
  mx->gauge("executor.rebalances").set(static_cast<double>(rebalances_));
  mx->gauge("executor.injectedStallMicros")
      .set(static_cast<double>(injectedStallMicros()));
  evaluator_.counters().exportTo(*mx);
}

void PlanExecutor::bindExternal(const std::string& name,
                                Partition partition) {
  DPART_CHECK(!prepared_, "bindExternal() must precede preparePartitions()");
  externals_.insert_or_assign(name, partition);
  evaluator_.bind(name, std::move(partition));
}

void PlanExecutor::sleepFor(std::uint64_t micros) const {
  sleepOrHook(options_.resilience.sleepMicros, micros);
}

void PlanExecutor::preparePartitions() {
  if (prepared_) return;
  DPART_TRACE_SPAN(tracer(), "executor", "preparePartitions");
  for (const std::string& ext : plan_.externalSymbols) {
    DPART_CHECK(evaluator_.has(ext),
                "external partition '" + ext + "' was not bound");
  }
  // Rebalanced base symbols are bound like externals (Section 3.3) and
  // their defining statements elided from the evaluated program, so every
  // derived partition re-materializes against the weighted base.
  for (const auto& [name, part] : rebalancedBases_) {
    evaluator_.bind(name, part);
  }
  try {
    evaluator_.run(activeProgram());
  } catch (const EvalFailure&) {
    countError("EvalFailure");
    throw;
  }
  prepared_ = true;
  // Any re-evaluation (first prepare, restore, shrink, rebalance) advances
  // the epoch; the distributed backend respawns its fork-inherited worker
  // fleet when it observes a new value.
  ++prepareEpoch_;
  if (options_.verifyPartitions) verifyPartitions();
}

void PlanExecutor::verifyPartitions() const {
  DPART_CHECK(prepared_, "partitions not prepared");
  DPART_TRACE_SPAN(tracer(), "executor", "verifyPartitions");
  region::verifyPartitionsOrThrow(world_, evaluator_.env(),
                                  planExpectations(plan_, pieces_));
}

const std::map<std::string, Partition>& PlanExecutor::partitions() const {
  DPART_CHECK(prepared_, "partitions not prepared");
  return evaluator_.env();
}

const Partition& PlanExecutor::partition(const std::string& name) const {
  DPART_CHECK(prepared_, "partitions not prepared");
  return evaluator_.partition(name);
}

void PlanExecutor::runLoop(const parallelize::PlannedLoop& loop) {
  preparePartitions();

  DPART_TRACE_SPAN_NAMED(launchSpan, tracer(), "executor",
                         "launch:" + loop.loop->name);

  if (options_.resilience.faultInjector != nullptr) {
    const std::string site = "loop:" + loop.loop->name;
    if (auto fault = options_.resilience.faultInjector->fire(site)) {
      if (fault->kind == FaultKind::Straggler) {
        stallMicros_.fetch_add(fault->stragglerMicros,
                               std::memory_order_relaxed);
        sleepFor(fault->stragglerMicros);
      } else if (fault->kind != FaultKind::CorruptCheckpoint) {
        // Loop-level faults fire before any task mutates state, so there is
        // nothing to roll back — the launch simply failed.
        ErrorContext ctx;
        ctx.site = site;
        ctx.loop = loop.loop->name;
        countError("TaskFailure");
        throw TaskFailure("injected fault: loop launch failed",
                          std::move(ctx));
      }
    }
  }

  const Partition& iter = partition(loop.iterPartition);
  DPART_CHECK(iter.count() == pieces_,
              "iteration partition piece count mismatch");

  if (options_.distributed.backend == ExecBackend::MultiProcess) {
    runLoopDistributed(loop, launchSpan);
    return;
  }

  // Ownership guards are only needed when duplicated iterations could apply
  // a centered write/reduction twice.
  std::vector<IndexSet> ownership;
  const bool needOwnership = hasCenteredWrite(loop) && !iter.isDisjoint();
  if (needOwnership) ownership = disjointify(iter);

  ir::LoopRunner runner(world_, *loop.loop);
  std::vector<std::unique_ptr<TaskHooks>> hooks(pieces_);
  const auto& env = partitions();
  // Per-piece task CPU seconds for this launch — the adaptive
  // repartitioner's cost signal. Thread CPU time, not wall time: on an
  // oversubscribed pool wall time measures time-slicing, while CPU seconds
  // stay proportional to the piece's work (and project to per-node wall
  // time on a distributed machine, where each piece has its node to
  // itself). Disjoint slots per task, published to the metrics registry
  // after the launch completes.
  MetricsRegistry* mx = options_.observability.metrics;
  std::vector<double> taskSeconds(mx != nullptr ? pieces_ : 0, 0.0);
  std::atomic<std::size_t> loopReplays{0};
  // Replays already performed must survive an escalating failure (retry
  // exhaustion aborts the launch mid-parallelFor), so merge on every exit.
  struct ReplayMerge {
    std::atomic<std::size_t>& from;
    std::atomic<std::size_t>& to;
    ~ReplayMerge() {
      to.fetch_add(from.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }
  } replayMerge{loopReplays, replays_};

  auto runTask = [&](std::size_t j) {
    const ThreadCpuTimer taskTimer;
    const IndexSet* own = needOwnership ? &ownership[j] : nullptr;
    const IndexSet& iters = iter.sub(j);
    const std::string site =
        "task:" + loop.loop->name + ":" + std::to_string(j);
    // Task j of every launch runs on node liveNodes_[j]; the node site is
    // keyed on the (stable) node id, not the (shrinkable) piece number, so
    // "node:2" still names the same machine after an elastic shrink.
    const std::size_t nodeId = liveNodes_[j];
    const std::string nodeSite = "node:" + std::to_string(nodeId);
    FaultInjector* injector = options_.resilience.faultInjector;

    DPART_TRACE_SPAN_NAMED(taskSpan, tracer(), "executor",
                           "task:" + loop.loop->name);
    taskSpan.annotate("\"piece\":" + std::to_string(j) +
                      ",\"node\":" + std::to_string(nodeId));

    // The footprint sets are needed to snapshot (taskReplay mode) and as the
    // target of Poison faults; skip building them entirely otherwise.
    TaskFootprint footprint;
    if (options_.resilience.taskReplay || injector != nullptr) {
      footprint = buildFootprint(world_, loop, j, env, own);
    }
    if (options_.resilience.taskReplay) footprint.capture();

    for (int attempt = 0;; ++attempt) {
      hooks[j] = std::make_unique<TaskHooks>(loop, j, env,
                                             options_.validateAccesses, own);
      try {
        if (injector != nullptr) {
          if (auto fault = injector->fire(nodeSite);
              fault && fault->kind == FaultKind::PermanentCrash) {
            // The host dies mid-task: a deterministic prefix of the work
            // lands in memory, then the machine is gone for good. Thrown as
            // NodeLossError (not TaskFailure) so in-place replay cannot
            // catch it — only a checkpoint restore with the node removed
            // recovers.
            runner.run(prefixOf(iters, fault->magnitude), hooks[j].get());
            ErrorContext ctx;
            ctx.site = nodeSite;
            ctx.loop = loop.loop->name;
            ctx.piece = static_cast<int>(j);
            ctx.attempt = attempt;
            throw NodeLossError(nodeId,
                                "injected fault: node lost permanently",
                                std::move(ctx));
          }
          if (auto fault = injector->fire(site)) {
            ErrorContext ctx;
            ctx.site = site;
            ctx.loop = loop.loop->name;
            ctx.piece = static_cast<int>(j);
            ctx.attempt = attempt;
            switch (fault->kind) {
              case FaultKind::Straggler:
                stallMicros_.fetch_add(fault->stragglerMicros,
                                       std::memory_order_relaxed);
                sleepFor(fault->stragglerMicros);
                break;
              case FaultKind::Poison:
                // A dying node scribbles over its own write footprint —
                // replay must restore every corrupted cell.
                footprint.poison();
                throw TaskFailure("injected fault: task result poisoned",
                                  std::move(ctx));
              case FaultKind::Crash:
                // Execute a deterministic prefix, then die mid-task,
                // leaving region state genuinely half-mutated.
                runner.run(prefixOf(iters, fault->magnitude), hooks[j].get());
                throw TaskFailure("injected fault: task crashed mid-run",
                                  std::move(ctx));
              case FaultKind::PermanentCrash:
                // Same death as at the node site, for callers that arm
                // "task:..." directly.
                runner.run(prefixOf(iters, fault->magnitude), hooks[j].get());
                throw NodeLossError(nodeId,
                                    "injected fault: node lost permanently",
                                    std::move(ctx));
              case FaultKind::CorruptCheckpoint:
                break;  // only meaningful at checkpoint:write sites
            }
          }
        }
        runner.run(iters, hooks[j].get());
        break;
      } catch (const TaskFailure& failure) {
        countError("TaskFailure");
        // Only task deaths are replayable; partition violations and
        // evaluation failures propagate immediately.
        if (!options_.resilience.taskReplay) throw;
        footprint.restore();
        if (attempt >= options_.resilience.maxTaskRetries) {
          ErrorContext ctx = failure.context();
          ctx.attempt = attempt;
          throw TaskFailure(
              std::string("task failed after ") +
                  std::to_string(attempt + 1) + " attempt(s): " +
                  failure.what(),
              std::move(ctx));
        }
        loopReplays.fetch_add(1, std::memory_order_relaxed);
        if (Tracer* tr = tracer(); tr != nullptr && tr->enabled()) {
          tr->instant("executor", "task.replay",
                      "\"site\":\"" + jsonEscape(site) +
                          "\",\"fault_site\":\"" +
                          jsonEscape(failure.context().site) +
                          "\",\"node\":" + std::to_string(nodeId) +
                          ",\"attempt\":" + std::to_string(attempt));
        }
        if (options_.resilience.retryBackoffMicros > 0) {
          sleepFor(options_.resilience.retryBackoffMicros << attempt);
        }
      }
    }
    if (mx != nullptr) taskSeconds[j] = taskTimer.seconds();
  };
  try {
    pool_.parallelFor(pieces_, runTask);
  } catch (const NodeLossError&) {
    countError("NodeLossError");
    throw;
  } catch (const PartitionViolation&) {
    countError("PartitionViolation");
    throw;
  }

  // Merge reduction buffers in task order (deterministic).
  for (std::size_t j = 0; j < pieces_; ++j) {
    for (auto& [stmtId, st] : hooks[j]->reduces()) {
      if (st.buffer.empty()) continue;
      const ir::Stmt* stmt = nullptr;
      loop.loop->forEachStmt([&](const ir::Stmt& s) {
        if (s.id == stmtId) stmt = &s;
      });
      DPART_CHECK(stmt != nullptr);
      auto field = world_.region(stmt->region).f64(stmt->field);
      // Sort for determinism across unordered_map iteration orders.
      std::vector<std::pair<Index, double>> entries(st.buffer.begin(),
                                                    st.buffer.end());
      std::sort(entries.begin(), entries.end());
      for (const auto& [target, value] : entries) {
        double& cell = field[static_cast<std::size_t>(target)];
        cell = ir::applyReduce(st.op, cell, value);
      }
      bufferedElements_ += entries.size();
    }
  }

  // Replays restored state from snapshots; re-check the legality properties
  // the recovery relied on.
  if (options_.verifyPartitions && loopReplays.load() > 0) {
    verifyPartitions();
  }
  launchSpan.annotate("\"pieces\":" + std::to_string(pieces_) +
                      ",\"replays\":" + std::to_string(loopReplays.load()) +
                      ",\"buffered_elements\":" +
                      std::to_string(bufferedElements_));

  if (mx != nullptr) publishLaunchMetrics(loop, taskSeconds);
  if (rebalancer_ != nullptr) maybeRebalance(loop);
}

void PlanExecutor::publishLaunchMetrics(
    const parallelize::PlannedLoop& loop,
    const std::vector<double>& taskSeconds) const {
  MetricsRegistry* mx = options_.observability.metrics;
  if (mx == nullptr || taskSeconds.size() != pieces_) return;
  double total = 0;
  double worst = 0;
  for (std::size_t j = 0; j < pieces_; ++j) {
    taskSecondsGauge(*mx, loop.loop->name, j).add(taskSeconds[j]);
    total += taskSeconds[j];
    worst = std::max(worst, taskSeconds[j]);
  }
  launchCounter(*mx, loop.loop->name).inc();
  const double meanSec = total / static_cast<double>(pieces_);
  const double imbalance = meanSec > 0 ? worst / meanSec : 1.0;
  mx->gauge("executor.imbalance").set(imbalance);
  mx->gauge("executor.imbalance", {{"loop", loop.loop->name}}).set(imbalance);
}

void PlanExecutor::runLoopDistributed(const parallelize::PlannedLoop& loop,
                                      TraceSpan& launchSpan) {
  if (coordinator_ == nullptr) {
    coordinator_ = std::make_unique<dist::Coordinator>(world_, plan_,
                                                       options_);
  }
  coordinator_->ensureWorkers(partitions(), liveNodes_, prepareEpoch_);
  dist::LaunchStats stats;
  try {
    stats = coordinator_->runLoop(loop);
  } catch (const NodeLossError&) {
    countError("NodeLossError");
    throw;
  } catch (const PartitionViolation&) {
    countError("PartitionViolation");
    throw;
  }
  // The coordinator already counted TaskFailure / TransportError events (it
  // sees each injected or wire-level failure, not just the escalations), so
  // only the launch tallies are folded here.
  replays_.fetch_add(stats.replays, std::memory_order_relaxed);
  stallMicros_.fetch_add(stats.stallMicros, std::memory_order_relaxed);
  bufferedElements_ += stats.bufferedElements;
  if (options_.verifyPartitions && stats.replays > 0) verifyPartitions();
  launchSpan.annotate("\"pieces\":" + std::to_string(pieces_) +
                      ",\"replays\":" + std::to_string(stats.replays) +
                      ",\"buffered_elements\":" +
                      std::to_string(bufferedElements_) +
                      ",\"ghost_elems\":" + std::to_string(stats.ghostElems) +
                      ",\"ghost_messages\":" +
                      std::to_string(stats.ghostMessages));
  publishLaunchMetrics(loop, stats.taskSeconds);
  if (rebalancer_ != nullptr) maybeRebalance(loop);
}

void PlanExecutor::maybeRebalance(const parallelize::PlannedLoop& loop) {
  const std::string& name = loop.loop->name;
  rebalancer_->observe(name, pieces_);
  if (!rebalancer_->shouldRebalance(name)) return;
  const std::string base = parallelize::equalBaseSymbol(plan_, loop);
  if (base.empty()) return;  // not equal-derived; nothing to substitute

  DPART_TRACE_SPAN_NAMED(span, tracer(), "executor", "rebalance");
  span.annotate("\"loop\":\"" + jsonEscape(name) + "\",\"base\":\"" +
                jsonEscape(base) + "\",\"imbalance\":" +
                std::to_string(rebalancer_->imbalance(name)) +
                ",\"pieces\":" + std::to_string(pieces_));

  region::Partition weighted = rebalancer_->rebuild(
      world_, loop.loop->iterRegion, partition(loop.iterPartition), name);
  rebalancedBases_.insert_or_assign(base, std::move(weighted));
  std::set<std::string> replaced;
  for (const auto& [sym, _] : rebalancedBases_) replaced.insert(sym);
  activeDpl_ = plan_.dpl.withoutDefinitions(replaced);
  prepared_ = false;
  preparePartitions();
  // Unconditional legality pass: every rebalance must leave partitions the
  // plan's proofs still hold on, whatever options.verifyPartitions says.
  region::verifyPartitionsOrThrow(world_, evaluator_.env(),
                                  planExpectations(plan_, pieces_));
  ++rebalances_;
}

void PlanExecutor::checkpoint() {
  DPART_TRACE_SPAN_NAMED(span, tracer(), "executor", "checkpoint");
  span.annotate("\"launch\":" + std::to_string(launchesDone_) +
                ",\"pieces\":" + std::to_string(pieces_));
  checkpoints_->write(world_, externals_, launchesDone_, planHash_, pieces_,
                      options_.resilience.faultInjector);
}

void PlanExecutor::restoreFromCheckpoint(std::optional<std::size_t> lostNode) {
  DPART_TRACE_SPAN_NAMED(span, tracer(), "executor", "restore");
  if (lostNode.has_value()) {
    auto it = std::find(liveNodes_.begin(), liveNodes_.end(), *lostNode);
    if (it != liveNodes_.end()) liveNodes_.erase(it);
    DPART_CHECK(!liveNodes_.empty(), "no surviving nodes to restore onto");
  }
  CheckpointManager::Restored restored = [&] {
    try {
      return checkpoints_->restoreLatest(world_, planHash_);
    } catch (const CheckpointCorruption&) {
      countError("CheckpointCorruption");
      throw;
    }
  }();
  ++checkpointRestores_;
  if (liveNodes_.size() != pieces_) {
    // Elastic shrink: the constraint solution is machine-size-agnostic, so
    // the same DPL program re-evaluates at the surviving piece count — no
    // new solve, no hand migration of state.
    pieces_ = liveNodes_.size();
    ++elasticShrinks_;
    if (Tracer* tr = tracer(); tr != nullptr && tr->enabled()) {
      tr->instant("executor", "elastic.shrink",
                  "\"lost_node\":" +
                      std::to_string(lostNode.has_value()
                                         ? static_cast<long long>(*lostNode)
                                         : -1LL) +
                      ",\"surviving_pieces\":" + std::to_string(pieces_));
    }
  }
  span.annotate("\"restores\":" + std::to_string(checkpointRestores_) +
                ",\"pieces\":" + std::to_string(pieces_) +
                (lostNode.has_value()
                     ? ",\"lost_node\":" + std::to_string(*lostNode)
                     : std::string{}));
  // Revert any adaptive rebalances: checkpoints record only the true
  // externals, so the restored state re-derives from the solver's unweighted
  // bases, and the observation windows that justified the weights are stale
  // on the (possibly shrunken) machine.
  rebalancedBases_.clear();
  activeDpl_ = dpl::Program{};
  if (rebalancer_ != nullptr) rebalancer_->reset();
  evaluator_.reset(pieces_);
  externals_.clear();
  for (auto& [name, part] : restored.externals) {
    Partition rebound;
    if (part.count() == pieces_) {
      rebound = std::move(part);
    } else if (options_.checkpoint.externalRebind) {
      rebound = options_.checkpoint.externalRebind(name, pieces_);
    } else {
      throw Error("external partition '" + name + "' was checkpointed with " +
                  std::to_string(part.count()) +
                  " piece(s) but the machine shrank to " +
                  std::to_string(pieces_) +
                  "; set CheckpointOptions::externalRebind to rebuild it");
    }
    externals_.insert_or_assign(name, rebound);
    evaluator_.bind(name, std::move(rebound));
  }
  prepared_ = false;
  preparePartitions();
  // Unconditional post-restore legality pass: resuming on partitions that
  // silently broke the plan's assumptions would corrupt state far from the
  // fault, so recovery always pays for the verifier.
  region::verifyPartitionsOrThrow(world_, evaluator_.env(),
                                  planExpectations(plan_, pieces_));
  launchesDone_ = restored.meta.launchIndex;
}

void PlanExecutor::run() {
  DPART_TRACE_SPAN(tracer(), "executor", "run");
  preparePartitions();
  if (plan_.loops.empty()) {
    publishMetrics();
    return;
  }
  if (checkpoints_ != nullptr && checkpoints_->generations() == 0) {
    // Baseline generation: a fault in the very first launch must have
    // something to restore to.
    checkpoint();
  }
  const std::size_t nLoops = plan_.loops.size();
  // The launch index is global across run() calls: launch L executes loop
  // L % nLoops, so a restore that rewinds into a previous step replays the
  // right loops in the right order.
  const std::uint64_t target = launchesDone_ + nLoops;
  while (launchesDone_ < target) {
    const bool mayRestore =
        checkpoints_ != nullptr &&
        checkpointRestores_ <
            static_cast<std::size_t>(options_.checkpoint.maxRestores);
    try {
      runLoop(plan_.loops[launchesDone_ % nLoops]);
    } catch (const NodeLossError& loss) {
      if (!mayRestore) throw;
      restoreFromCheckpoint(loss.node());
      continue;
    } catch (const TaskFailure& failure) {
      if (!mayRestore) throw;
      const int piece = failure.context().piece;
      if (piece >= 0 && static_cast<std::size_t>(piece) < liveNodes_.size()) {
        // Replay exhaustion: the task died maxTaskRetries + 1 times in a
        // row, so its host is presumed permanently gone and removed from
        // the machine before the restore.
        restoreFromCheckpoint(liveNodes_[static_cast<std::size_t>(piece)]);
      } else {
        // Launch-level failure with no culprit node: restore without
        // shrinking.
        restoreFromCheckpoint(std::nullopt);
      }
      continue;
    }
    ++launchesDone_;
    if (checkpoints_ != nullptr &&
        launchesDone_ % static_cast<std::uint64_t>(
                            options_.checkpoint.everyNLaunches) ==
            0) {
      checkpoint();
    }
  }
  publishMetrics();
}

}  // namespace dpart::runtime
