#include "runtime/executor.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "support/check.hpp"

namespace dpart::runtime {

using optimize::ReduceStrategy;
using region::Index;
using region::IndexSet;
using region::Partition;

PlanExecutor::PlanExecutor(region::World& world,
                           const parallelize::ParallelPlan& plan,
                           std::size_t pieces, ExecOptions options)
    : world_(world),
      plan_(plan),
      pieces_(pieces),
      options_(options),
      pool_(options.threads),
      evaluator_(world, pieces, pool_) {
  DPART_CHECK(pieces_ > 0, "need at least one piece");
}

void PlanExecutor::bindExternal(const std::string& name,
                                Partition partition) {
  DPART_CHECK(!prepared_, "bindExternal() must precede preparePartitions()");
  evaluator_.bind(name, std::move(partition));
}

void PlanExecutor::preparePartitions() {
  if (prepared_) return;
  for (const std::string& ext : plan_.externalSymbols) {
    DPART_CHECK(evaluator_.has(ext),
                "external partition '" + ext + "' was not bound");
  }
  evaluator_.run(plan_.dpl);
  prepared_ = true;
}

const std::map<std::string, Partition>& PlanExecutor::partitions() const {
  DPART_CHECK(prepared_, "partitions not prepared");
  return evaluator_.env();
}

const Partition& PlanExecutor::partition(const std::string& name) const {
  DPART_CHECK(prepared_, "partitions not prepared");
  return evaluator_.partition(name);
}

namespace {

// Per-task execution hooks implementing the plan's reduction strategies and
// (optionally) access validation.
class TaskHooks final : public ir::ExecHooks {
 public:
  struct ReduceState {
    ReduceStrategy strategy = ReduceStrategy::Direct;
    const IndexSet* guard = nullptr;    // Guarded: task's reduction subregion
    const IndexSet* privSet = nullptr;  // PrivateSplit: private subregion
    std::unordered_map<Index, double> buffer;
    ir::ReduceOp op = ir::ReduceOp::Sum;
  };

  TaskHooks(const parallelize::PlannedLoop& loop, std::size_t piece,
            const std::map<std::string, Partition>& env, bool validate,
            const IndexSet* ownership)
      : loop_(loop), piece_(piece), env_(env), validate_(validate),
        ownership_(ownership) {
    for (const auto& [stmtId, rp] : loop.reduces) {
      ReduceState st;
      st.strategy = rp.strategy;
      if (rp.strategy == ReduceStrategy::Guarded) {
        st.guard = &env.at(rp.partition).sub(piece);
      } else if (rp.strategy == ReduceStrategy::PrivateSplit) {
        st.privSet = &env.at(rp.privatePart).sub(piece);
      }
      reduces_.emplace(stmtId, std::move(st));
    }
  }

  void onAccess(const ir::Stmt& stmt, Index target) override {
    if (!validate_) return;
    auto it = loop_.accessPartition.find(stmt.id);
    DPART_CHECK(it != loop_.accessPartition.end(),
                "access with no assigned partition: " + stmt.toString());
    const IndexSet& sub = env_.at(it->second).sub(piece_);
    // Guarded reductions may compute targets outside the task's subregion;
    // the guard rejects them before any memory access, so only *applied*
    // accesses are checked (handled in handleReduce).
    auto rit = reduces_.find(stmt.id);
    if (rit != reduces_.end() &&
        (rit->second.strategy == ReduceStrategy::Guarded)) {
      return;
    }
    DPART_CHECK(sub.contains(target),
                "illegal access: " + stmt.toString() + " touches index " +
                    std::to_string(target) + " outside subregion " +
                    std::to_string(piece_) + " of " + it->second);
  }

  bool shouldWrite(const ir::Stmt&, Index target) override {
    return ownership_ == nullptr || ownership_->contains(target);
  }

  bool handleReduce(const ir::Stmt& stmt, Index target,
                    double value) override {
    auto it = reduces_.find(stmt.id);
    if (it == reduces_.end()) {
      // Centered reduction: ownership-guarded under aliased iteration.
      if (ownership_ != nullptr && !ownership_->contains(target)) {
        return true;  // another task owns this duplicated iteration
      }
      return false;
    }
    ReduceState& st = it->second;
    st.op = stmt.op;
    switch (st.strategy) {
      case ReduceStrategy::Direct:
        return false;
      case ReduceStrategy::Guarded:
        return !st.guard->contains(target);  // skip if not ours
      case ReduceStrategy::Buffered:
        break;
      case ReduceStrategy::PrivateSplit:
        if (st.privSet->contains(target)) return false;
        break;
    }
    auto [slot, inserted] =
        st.buffer.try_emplace(target, ir::reduceIdentity(stmt.op));
    slot->second = ir::applyReduce(stmt.op, slot->second, value);
    return true;
  }

  std::map<int, ReduceState>& reduces() { return reduces_; }

 private:
  const parallelize::PlannedLoop& loop_;
  std::size_t piece_;
  const std::map<std::string, Partition>& env_;
  bool validate_;
  const IndexSet* ownership_;
  std::map<int, ReduceState> reduces_;
};

// Builds a first-claim disjointification of an aliased partition: index i is
// owned by the lowest-numbered subregion containing it.
std::vector<IndexSet> disjointify(const Partition& p) {
  std::vector<IndexSet> owned;
  owned.reserve(p.count());
  IndexSet claimed;
  for (std::size_t j = 0; j < p.count(); ++j) {
    owned.push_back(p.sub(j).subtract(claimed));
    claimed = claimed.unionWith(p.sub(j));
  }
  return owned;
}

}  // namespace

void PlanExecutor::runLoop(const parallelize::PlannedLoop& loop) {
  preparePartitions();
  const Partition& iter = partition(loop.iterPartition);
  DPART_CHECK(iter.count() == pieces_,
              "iteration partition piece count mismatch");

  // Ownership guards are only needed when duplicated iterations could apply
  // a centered write/reduction twice.
  bool hasCenteredWrite = false;
  loop.loop->forEachStmt([&](const ir::Stmt& s) {
    if (s.kind == ir::StmtKind::StoreF64 ||
        (s.kind == ir::StmtKind::ReduceF64 && !loop.reduces.contains(s.id))) {
      hasCenteredWrite = true;
    }
  });
  std::vector<IndexSet> ownership;
  const bool needOwnership = hasCenteredWrite && !iter.isDisjoint();
  if (needOwnership) ownership = disjointify(iter);

  ir::LoopRunner runner(world_, *loop.loop);
  std::vector<std::unique_ptr<TaskHooks>> hooks(pieces_);
  const auto& env = partitions();
  pool_.parallelFor(pieces_, [&](std::size_t j) {
    hooks[j] = std::make_unique<TaskHooks>(
        loop, j, env, options_.validateAccesses,
        needOwnership ? &ownership[j] : nullptr);
    runner.run(iter.sub(j), hooks[j].get());
  });

  // Merge reduction buffers in task order (deterministic).
  for (std::size_t j = 0; j < pieces_; ++j) {
    for (auto& [stmtId, st] : hooks[j]->reduces()) {
      if (st.buffer.empty()) continue;
      const ir::Stmt* stmt = nullptr;
      loop.loop->forEachStmt([&](const ir::Stmt& s) {
        if (s.id == stmtId) stmt = &s;
      });
      DPART_CHECK(stmt != nullptr);
      auto field = world_.region(stmt->region).f64(stmt->field);
      // Sort for determinism across unordered_map iteration orders.
      std::vector<std::pair<Index, double>> entries(st.buffer.begin(),
                                                    st.buffer.end());
      std::sort(entries.begin(), entries.end());
      for (const auto& [target, value] : entries) {
        double& cell = field[static_cast<std::size_t>(target)];
        cell = ir::applyReduce(st.op, cell, value);
      }
      bufferedElements_ += entries.size();
    }
  }
}

void PlanExecutor::run() {
  preparePartitions();
  for (const parallelize::PlannedLoop& loop : plan_.loops) {
    runLoop(loop);
  }
}

}  // namespace dpart::runtime
