#include "runtime/privileges.hpp"

#include "support/check.hpp"

namespace dpart::runtime {

const char* toString(Privilege p) {
  switch (p) {
    case Privilege::ReadOnly:
      return "RO";
    case Privilege::ReadWrite:
      return "RW";
    case Privilege::Reduce:
      return "RD";
  }
  DPART_UNREACHABLE("bad Privilege");
}

std::string RegionRequirement::toString() const {
  return partition + " (" + region + "." + field + ", " +
         runtime::toString(privilege) + ")";
}

std::vector<RegionRequirement> requirementsOf(
    const parallelize::PlannedLoop& loop) {
  // Key: region.field.partition -> strongest privilege.
  std::map<std::string, RegionRequirement> merged;
  loop.loop->forEachStmt([&](const ir::Stmt& s) {
    Privilege priv;
    switch (s.kind) {
      case ir::StmtKind::LoadF64:
      case ir::StmtKind::LoadIdx:
      case ir::StmtKind::LoadRange:
        priv = Privilege::ReadOnly;
        break;
      case ir::StmtKind::StoreF64:
        priv = Privilege::ReadWrite;
        break;
      case ir::StmtKind::ReduceF64:
        priv = loop.reduces.contains(s.id) ? Privilege::Reduce
                                           : Privilege::ReadWrite;
        break;
      default:
        return;
    }
    auto it = loop.accessPartition.find(s.id);
    DPART_CHECK(it != loop.accessPartition.end(),
                "no partition assigned to stmt of " + loop.loop->name);
    const std::string key = s.region + "." + s.field + "." + it->second;
    auto [slot, inserted] = merged.try_emplace(
        key, RegionRequirement{it->second, s.region, s.field, priv});
    if (!inserted) {
      // RW dominates Reduce dominates RO.
      if (priv == Privilege::ReadWrite ||
          (priv == Privilege::Reduce &&
           slot->second.privilege == Privilege::ReadOnly)) {
        slot->second.privilege = priv;
      }
    }
  });
  std::vector<RegionRequirement> out;
  out.reserve(merged.size());
  for (auto& [_, req] : merged) out.push_back(std::move(req));
  return out;
}

bool nonInterfering(
    const std::vector<RegionRequirement>& reqs,
    const std::map<std::string, region::Partition>& partitions,
    std::size_t ia, std::size_t ib) {
  if (ia == ib) return true;
  for (const RegionRequirement& a : reqs) {
    for (const RegionRequirement& b : reqs) {
      if (a.region != b.region || a.field != b.field) continue;
      if (a.privilege == Privilege::ReadOnly &&
          b.privilege == Privilege::ReadOnly) {
        continue;
      }
      if (a.privilege == Privilege::Reduce &&
          b.privilege == Privilege::Reduce) {
        continue;  // same-operator reductions commute
      }
      auto pa = partitions.find(a.partition);
      auto pb = partitions.find(b.partition);
      DPART_CHECK(pa != partitions.end() && pb != partitions.end(),
                  "unevaluated partition in requirement");
      if (pa->second.sub(ia).intersects(pb->second.sub(ib))) return false;
    }
  }
  return true;
}

}  // namespace dpart::runtime
