#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/infer.hpp"
#include "analysis/parallelizable.hpp"
#include "constraint/system.hpp"
#include "dpl/expr.hpp"

namespace dpart::optimize {

/// How one reduction statement will be executed (Section 5).
enum class ReduceStrategy {
  Direct,        ///< centered, or uncentered into a disjoint partition
  Guarded,       ///< relaxed loop: apply only if the target is in the
                 ///< task's (disjoint, complete) reduction subregion
  Buffered,      ///< uncentered into an aliased partition: per-task buffer,
                 ///< merged after the loop
  PrivateSplit,  ///< Theorem 5.1: direct into the private sub-partition,
                 ///< buffered only for the shared remainder
};

const char* toString(ReduceStrategy s);

/// Per-reduction plan produced by the optimizer.
struct ReducePlan {
  int stmtId = -1;
  ReduceStrategy strategy = ReduceStrategy::Direct;
  /// Guarded/Buffered/PrivateSplit: symbol of the reduction partition.
  std::string partition;
  /// PrivateSplit: symbols of the private sub-partition and shared rest.
  std::string privatePart;
  std::string sharedPart;
};

/// Decision about one loop's reduction handling, made before unification.
struct LoopReductionPlan {
  bool relaxed = false;
  std::vector<ReducePlan> reduces;
};

/// Whether a loop is eligible for the Section 5.1 relaxation: it has
/// uncentered reductions, every write access is an uncentered reduction
/// (duplicated iterations then only re-execute reads and guarded
/// reductions), and every uncentered reduction maps the loop variable
/// directly (bound of the form image(P_iter, f, S)), so the coverage
/// constraint preimage(S', f, P_red) <= P_iter is expressible.
bool isRelaxable(const analysis::ParallelizableResult& accesses,
                 const analysis::LoopConstraints& constraints);

/// Applies the relaxation to a loop's constraint system (Section 5.1):
/// removes DISJ(P_iter), removes the image subset of each uncentered
/// reduction, and adds DISJ/COMP on the reduction partitions plus the
/// preimage coverage subsets. Returns the guarded reduce plans.
LoopReductionPlan relaxLoop(const analysis::ParallelizableResult& accesses,
                            analysis::LoopConstraints& constraints);

/// Theorem 5.1: for a disjoint partition expressed by `p` over region
/// `iterRegion`, builds the private sub-partition expression of
/// image(p, fn, targetRegion):
///
///   f_S(P) - f_S( f_R^{-1}(f_S(P)) - P )
dpl::ExprPtr privateSubPartitionExpr(const dpl::ExprPtr& p,
                                     const std::string& fn,
                                     const std::string& iterRegion,
                                     const std::string& targetRegion);

}  // namespace dpart::optimize
