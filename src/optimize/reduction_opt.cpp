#include "optimize/reduction_opt.hpp"

#include "support/check.hpp"

namespace dpart::optimize {

using analysis::AccessMode;
using dpl::ExprKind;
using dpl::ExprPtr;

const char* toString(ReduceStrategy s) {
  switch (s) {
    case ReduceStrategy::Direct:
      return "direct";
    case ReduceStrategy::Guarded:
      return "guarded";
    case ReduceStrategy::Buffered:
      return "buffered";
    case ReduceStrategy::PrivateSplit:
      return "private-split";
  }
  DPART_UNREACHABLE("bad ReduceStrategy");
}

namespace {

// True when the bound expression is image(P_iter, f, S) — the reduction
// indexes S through one function of the loop variable.
bool isDirectIterImage(const ExprPtr& bound, const std::string& iterSymbol) {
  return bound->kind == ExprKind::Image &&
         bound->arg->kind == ExprKind::Symbol &&
         bound->arg->name == iterSymbol;
}

}  // namespace

bool isRelaxable(const analysis::ParallelizableResult& accesses,
                 const analysis::LoopConstraints& constraints) {
  bool anyUncenteredReduce = false;
  for (const analysis::AccessInfo& a : accesses.accesses) {
    if (a.mode == AccessMode::Write) return false;  // centered stores
    if (a.mode == AccessMode::Reduce) {
      if (a.centered) return false;  // duplicated iterations double-count
      anyUncenteredReduce = true;
      const ExprPtr& bound = constraints.stmtRawBound.at(a.stmt->id);
      if (!isDirectIterImage(bound, constraints.iterSymbol)) return false;
    }
  }
  return anyUncenteredReduce;
}

LoopReductionPlan relaxLoop(const analysis::ParallelizableResult& accesses,
                            analysis::LoopConstraints& constraints) {
  LoopReductionPlan plan;
  plan.relaxed = true;

  // Rebuild the system without DISJ(P_iter) and with the relaxed form of
  // each uncentered reduction's constraints.
  constraint::System rebuilt;
  const constraint::System& old = constraints.system;

  std::map<int, const analysis::AccessInfo*> reduceByStmt;
  std::set<std::string> reduceSymbols;
  for (const analysis::AccessInfo& a : accesses.accesses) {
    if (a.mode == AccessMode::Reduce && !a.centered) {
      reduceByStmt[a.stmt->id] = &a;
      reduceSymbols.insert(constraints.stmtSymbol.at(a.stmt->id));
    }
  }

  for (const std::string& sym : old.symbols()) {
    rebuilt.declareSymbol(sym, old.regionOf(sym), old.isFixed(sym));
  }
  for (const constraint::Pred& p : old.preds()) {
    if (p.kind == constraint::Pred::Kind::Disj &&
        p.expr->kind == ExprKind::Symbol &&
        p.expr->name == constraints.iterSymbol) {
      continue;  // drop DISJ(P_iter)
    }
    if (p.kind == constraint::Pred::Kind::Part &&
        p.expr->kind == ExprKind::Symbol) {
      continue;  // re-added by declareSymbol
    }
    if (p.kind == constraint::Pred::Kind::Disj) {
      rebuilt.addDisj(p.expr, p.assumed);
    } else if (p.kind == constraint::Pred::Kind::Comp) {
      rebuilt.addComp(p.expr, p.region, p.assumed);
    } else {
      rebuilt.addPart(p.expr, p.region, p.assumed);
    }
  }
  // Map each uncentered-reduce symbol to its *raw* bound (the pure
  // Algorithm 1 image of the iteration symbol), which carries the function
  // the relaxed coverage constraint needs even when the recorded subset was
  // chained through an earlier access's symbol.
  std::map<std::string, ExprPtr> rawBoundOf;
  for (const auto& [stmtId, access] : reduceByStmt) {
    (void)access;
    rawBoundOf[constraints.stmtSymbol.at(stmtId)] =
        constraints.stmtRawBound.at(stmtId);
  }
  for (const constraint::Subset& sc : old.subsets()) {
    // Replace the subset bounding each reduce partition with the relaxed
    // constraints: DISJ+COMP on the reduce partition plus preimage coverage
    // of the iteration space.
    if (sc.rhs->kind == ExprKind::Symbol &&
        reduceSymbols.contains(sc.rhs->name)) {
      const std::string& pRed = sc.rhs->name;
      const ExprPtr& raw = rawBoundOf.at(pRed);
      DPART_CHECK(isDirectIterImage(raw, constraints.iterSymbol),
                  "relaxLoop on a non-relaxable reduction");
      const std::string& region = raw->region;
      rebuilt.addDisj(dpl::symbol(pRed));
      rebuilt.addComp(dpl::symbol(pRed), region);
      rebuilt.addSubset(
          dpl::preimage(old.regionOf(constraints.iterSymbol), raw->fn,
                        dpl::symbol(pRed)),
          dpl::symbol(constraints.iterSymbol));
      continue;
    }
    rebuilt.addSubset(sc.lhs, sc.rhs, sc.assumed);
  }
  constraints.system = std::move(rebuilt);

  for (const auto& [stmtId, access] : reduceByStmt) {
    ReducePlan rp;
    rp.stmtId = stmtId;
    rp.strategy = ReduceStrategy::Guarded;
    rp.partition = constraints.stmtSymbol.at(stmtId);
    plan.reduces.push_back(rp);
  }
  return plan;
}

dpl::ExprPtr privateSubPartitionExpr(const ExprPtr& p, const std::string& fn,
                                     const std::string& iterRegion,
                                     const std::string& targetRegion) {
  // f_S(P)
  ExprPtr fsp = dpl::image(p, fn, targetRegion);
  // f_R^{-1}(f_S(P))
  ExprPtr preExt = dpl::preimage(iterRegion, fn, fsp);
  // f_R^{-1}(f_S(P)) - P : elements of other subregions pointing into ours
  ExprPtr foreign = dpl::subtractOf(preExt, p);
  // f_S(foreign) : the shared part of the image
  ExprPtr shared = dpl::image(foreign, fn, targetRegion);
  // private = f_S(P) - shared
  return dpl::subtractOf(fsp, shared);
}

}  // namespace dpart::optimize
